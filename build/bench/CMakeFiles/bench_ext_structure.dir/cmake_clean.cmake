file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_structure.dir/bench_ext_structure.cc.o"
  "CMakeFiles/bench_ext_structure.dir/bench_ext_structure.cc.o.d"
  "bench_ext_structure"
  "bench_ext_structure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_structure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
