# Empty dependencies file for bench_ext_structure.
# This may be replaced when dependencies are built.
