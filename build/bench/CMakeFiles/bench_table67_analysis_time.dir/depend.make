# Empty dependencies file for bench_table67_analysis_time.
# This may be replaced when dependencies are built.
