
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table3_reduction_time.cc" "bench/CMakeFiles/bench_table3_reduction_time.dir/bench_table3_reduction_time.cc.o" "gcc" "bench/CMakeFiles/bench_table3_reduction_time.dir/bench_table3_reduction_time.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/eval/CMakeFiles/edgeshed_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/stream/CMakeFiles/edgeshed_stream.dir/DependInfo.cmake"
  "/root/repo/build/src/estimate/CMakeFiles/edgeshed_estimate.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/edgeshed_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/baseline/CMakeFiles/edgeshed_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/edgeshed_core.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/edgeshed_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/edgeshed_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edgeshed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
