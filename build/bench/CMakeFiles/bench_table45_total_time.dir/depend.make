# Empty dependencies file for bench_table45_total_time.
# This may be replaced when dependencies are built.
