# Empty dependencies file for bench_ext_baselines_estimators.
# This may be replaced when dependencies are built.
