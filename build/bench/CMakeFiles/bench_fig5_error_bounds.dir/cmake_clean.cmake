file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_error_bounds.dir/bench_fig5_error_bounds.cc.o"
  "CMakeFiles/bench_fig5_error_bounds.dir/bench_fig5_error_bounds.cc.o.d"
  "bench_fig5_error_bounds"
  "bench_fig5_error_bounds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_error_bounds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
