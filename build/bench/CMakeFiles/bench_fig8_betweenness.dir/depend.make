# Empty dependencies file for bench_fig8_betweenness.
# This may be replaced when dependencies are built.
