file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_betweenness.dir/bench_fig8_betweenness.cc.o"
  "CMakeFiles/bench_fig8_betweenness.dir/bench_fig8_betweenness.cc.o.d"
  "bench_fig8_betweenness"
  "bench_fig8_betweenness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_betweenness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
