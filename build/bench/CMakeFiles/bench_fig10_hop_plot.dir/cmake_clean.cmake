file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_hop_plot.dir/bench_fig10_hop_plot.cc.o"
  "CMakeFiles/bench_fig10_hop_plot.dir/bench_fig10_hop_plot.cc.o.d"
  "bench_fig10_hop_plot"
  "bench_fig10_hop_plot.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_hop_plot.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
