# Empty dependencies file for bench_fig10_hop_plot.
# This may be replaced when dependencies are built.
