# Empty dependencies file for bench_table10_link_prediction.
# This may be replaced when dependencies are built.
