# Empty dependencies file for bench_table89_topk_utility.
# This may be replaced when dependencies are built.
