file(REMOVE_RECURSE
  "CMakeFiles/edgeshed_cli.dir/edgeshed_cli.cc.o"
  "CMakeFiles/edgeshed_cli.dir/edgeshed_cli.cc.o.d"
  "edgeshed"
  "edgeshed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeshed_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
