# Empty compiler generated dependencies file for edgeshed_cli.
# This may be replaced when dependencies are built.
