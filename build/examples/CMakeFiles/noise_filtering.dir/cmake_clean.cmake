file(REMOVE_RECURSE
  "CMakeFiles/noise_filtering.dir/noise_filtering.cpp.o"
  "CMakeFiles/noise_filtering.dir/noise_filtering.cpp.o.d"
  "noise_filtering"
  "noise_filtering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/noise_filtering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
