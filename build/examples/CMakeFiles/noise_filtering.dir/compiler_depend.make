# Empty compiler generated dependencies file for noise_filtering.
# This may be replaced when dependencies are built.
