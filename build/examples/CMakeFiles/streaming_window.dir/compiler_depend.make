# Empty compiler generated dependencies file for streaming_window.
# This may be replaced when dependencies are built.
