file(REMOVE_RECURSE
  "CMakeFiles/streaming_window.dir/streaming_window.cpp.o"
  "CMakeFiles/streaming_window.dir/streaming_window.cpp.o.d"
  "streaming_window"
  "streaming_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
