file(REMOVE_RECURSE
  "CMakeFiles/resource_constrained_pipeline.dir/resource_constrained_pipeline.cpp.o"
  "CMakeFiles/resource_constrained_pipeline.dir/resource_constrained_pipeline.cpp.o.d"
  "resource_constrained_pipeline"
  "resource_constrained_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/resource_constrained_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
