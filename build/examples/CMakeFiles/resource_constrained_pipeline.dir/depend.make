# Empty dependencies file for resource_constrained_pipeline.
# This may be replaced when dependencies are built.
