# Empty dependencies file for estimate_properties.
# This may be replaced when dependencies are built.
