file(REMOVE_RECURSE
  "CMakeFiles/estimate_properties.dir/estimate_properties.cpp.o"
  "CMakeFiles/estimate_properties.dir/estimate_properties.cpp.o.d"
  "estimate_properties"
  "estimate_properties.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/estimate_properties.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
