# Empty compiler generated dependencies file for uds_views_test.
# This may be replaced when dependencies are built.
