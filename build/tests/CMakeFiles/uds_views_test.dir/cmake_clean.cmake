file(REMOVE_RECURSE
  "CMakeFiles/uds_views_test.dir/uds_views_test.cc.o"
  "CMakeFiles/uds_views_test.dir/uds_views_test.cc.o.d"
  "uds_views_test"
  "uds_views_test.pdb"
  "uds_views_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/uds_views_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
