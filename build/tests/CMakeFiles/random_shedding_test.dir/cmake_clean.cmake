file(REMOVE_RECURSE
  "CMakeFiles/random_shedding_test.dir/random_shedding_test.cc.o"
  "CMakeFiles/random_shedding_test.dir/random_shedding_test.cc.o.d"
  "random_shedding_test"
  "random_shedding_test.pdb"
  "random_shedding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_shedding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
