# Empty dependencies file for random_shedding_test.
# This may be replaced when dependencies are built.
