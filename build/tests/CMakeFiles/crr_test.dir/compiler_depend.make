# Empty compiler generated dependencies file for crr_test.
# This may be replaced when dependencies are built.
