file(REMOVE_RECURSE
  "CMakeFiles/crr_test.dir/crr_test.cc.o"
  "CMakeFiles/crr_test.dir/crr_test.cc.o.d"
  "crr_test"
  "crr_test.pdb"
  "crr_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
