file(REMOVE_RECURSE
  "CMakeFiles/bipartite_matcher_test.dir/bipartite_matcher_test.cc.o"
  "CMakeFiles/bipartite_matcher_test.dir/bipartite_matcher_test.cc.o.d"
  "bipartite_matcher_test"
  "bipartite_matcher_test.pdb"
  "bipartite_matcher_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bipartite_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
