# Empty dependencies file for tcm_sketch_test.
# This may be replaced when dependencies are built.
