file(REMOVE_RECURSE
  "CMakeFiles/tcm_sketch_test.dir/tcm_sketch_test.cc.o"
  "CMakeFiles/tcm_sketch_test.dir/tcm_sketch_test.cc.o.d"
  "tcm_sketch_test"
  "tcm_sketch_test.pdb"
  "tcm_sketch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tcm_sketch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
