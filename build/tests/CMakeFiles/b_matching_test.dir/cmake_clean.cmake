file(REMOVE_RECURSE
  "CMakeFiles/b_matching_test.dir/b_matching_test.cc.o"
  "CMakeFiles/b_matching_test.dir/b_matching_test.cc.o.d"
  "b_matching_test"
  "b_matching_test.pdb"
  "b_matching_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/b_matching_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
