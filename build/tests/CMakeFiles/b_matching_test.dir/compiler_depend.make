# Empty compiler generated dependencies file for b_matching_test.
# This may be replaced when dependencies are built.
