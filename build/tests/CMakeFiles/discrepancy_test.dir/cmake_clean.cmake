file(REMOVE_RECURSE
  "CMakeFiles/discrepancy_test.dir/discrepancy_test.cc.o"
  "CMakeFiles/discrepancy_test.dir/discrepancy_test.cc.o.d"
  "discrepancy_test"
  "discrepancy_test.pdb"
  "discrepancy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/discrepancy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
