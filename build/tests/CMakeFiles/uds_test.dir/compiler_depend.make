# Empty compiler generated dependencies file for uds_test.
# This may be replaced when dependencies are built.
