# Empty compiler generated dependencies file for bm2_test.
# This may be replaced when dependencies are built.
