file(REMOVE_RECURSE
  "CMakeFiles/bm2_test.dir/bm2_test.cc.o"
  "CMakeFiles/bm2_test.dir/bm2_test.cc.o.d"
  "bm2_test"
  "bm2_test.pdb"
  "bm2_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bm2_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
