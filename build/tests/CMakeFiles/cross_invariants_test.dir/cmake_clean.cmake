file(REMOVE_RECURSE
  "CMakeFiles/cross_invariants_test.dir/cross_invariants_test.cc.o"
  "CMakeFiles/cross_invariants_test.dir/cross_invariants_test.cc.o.d"
  "cross_invariants_test"
  "cross_invariants_test.pdb"
  "cross_invariants_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_invariants_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
