# Empty dependencies file for cross_invariants_test.
# This may be replaced when dependencies are built.
