# Empty dependencies file for config_model_test.
# This may be replaced when dependencies are built.
