file(REMOVE_RECURSE
  "CMakeFiles/config_model_test.dir/config_model_test.cc.o"
  "CMakeFiles/config_model_test.dir/config_model_test.cc.o.d"
  "config_model_test"
  "config_model_test.pdb"
  "config_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/config_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
