file(REMOVE_RECURSE
  "libedgeshed_core.a"
)
