# Empty dependencies file for edgeshed_core.
# This may be replaced when dependencies are built.
