
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/b_matching.cc" "src/core/CMakeFiles/edgeshed_core.dir/b_matching.cc.o" "gcc" "src/core/CMakeFiles/edgeshed_core.dir/b_matching.cc.o.d"
  "/root/repo/src/core/bipartite_matcher.cc" "src/core/CMakeFiles/edgeshed_core.dir/bipartite_matcher.cc.o" "gcc" "src/core/CMakeFiles/edgeshed_core.dir/bipartite_matcher.cc.o.d"
  "/root/repo/src/core/bm2.cc" "src/core/CMakeFiles/edgeshed_core.dir/bm2.cc.o" "gcc" "src/core/CMakeFiles/edgeshed_core.dir/bm2.cc.o.d"
  "/root/repo/src/core/bounds.cc" "src/core/CMakeFiles/edgeshed_core.dir/bounds.cc.o" "gcc" "src/core/CMakeFiles/edgeshed_core.dir/bounds.cc.o.d"
  "/root/repo/src/core/crr.cc" "src/core/CMakeFiles/edgeshed_core.dir/crr.cc.o" "gcc" "src/core/CMakeFiles/edgeshed_core.dir/crr.cc.o.d"
  "/root/repo/src/core/discrepancy.cc" "src/core/CMakeFiles/edgeshed_core.dir/discrepancy.cc.o" "gcc" "src/core/CMakeFiles/edgeshed_core.dir/discrepancy.cc.o.d"
  "/root/repo/src/core/extra_baselines.cc" "src/core/CMakeFiles/edgeshed_core.dir/extra_baselines.cc.o" "gcc" "src/core/CMakeFiles/edgeshed_core.dir/extra_baselines.cc.o.d"
  "/root/repo/src/core/random_shedding.cc" "src/core/CMakeFiles/edgeshed_core.dir/random_shedding.cc.o" "gcc" "src/core/CMakeFiles/edgeshed_core.dir/random_shedding.cc.o.d"
  "/root/repo/src/core/shedding.cc" "src/core/CMakeFiles/edgeshed_core.dir/shedding.cc.o" "gcc" "src/core/CMakeFiles/edgeshed_core.dir/shedding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analytics/CMakeFiles/edgeshed_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/edgeshed_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edgeshed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
