file(REMOVE_RECURSE
  "CMakeFiles/edgeshed_core.dir/b_matching.cc.o"
  "CMakeFiles/edgeshed_core.dir/b_matching.cc.o.d"
  "CMakeFiles/edgeshed_core.dir/bipartite_matcher.cc.o"
  "CMakeFiles/edgeshed_core.dir/bipartite_matcher.cc.o.d"
  "CMakeFiles/edgeshed_core.dir/bm2.cc.o"
  "CMakeFiles/edgeshed_core.dir/bm2.cc.o.d"
  "CMakeFiles/edgeshed_core.dir/bounds.cc.o"
  "CMakeFiles/edgeshed_core.dir/bounds.cc.o.d"
  "CMakeFiles/edgeshed_core.dir/crr.cc.o"
  "CMakeFiles/edgeshed_core.dir/crr.cc.o.d"
  "CMakeFiles/edgeshed_core.dir/discrepancy.cc.o"
  "CMakeFiles/edgeshed_core.dir/discrepancy.cc.o.d"
  "CMakeFiles/edgeshed_core.dir/extra_baselines.cc.o"
  "CMakeFiles/edgeshed_core.dir/extra_baselines.cc.o.d"
  "CMakeFiles/edgeshed_core.dir/random_shedding.cc.o"
  "CMakeFiles/edgeshed_core.dir/random_shedding.cc.o.d"
  "CMakeFiles/edgeshed_core.dir/shedding.cc.o"
  "CMakeFiles/edgeshed_core.dir/shedding.cc.o.d"
  "libedgeshed_core.a"
  "libedgeshed_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeshed_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
