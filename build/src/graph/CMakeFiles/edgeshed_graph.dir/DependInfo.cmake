
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/graph/binary_io.cc" "src/graph/CMakeFiles/edgeshed_graph.dir/binary_io.cc.o" "gcc" "src/graph/CMakeFiles/edgeshed_graph.dir/binary_io.cc.o.d"
  "/root/repo/src/graph/datasets.cc" "src/graph/CMakeFiles/edgeshed_graph.dir/datasets.cc.o" "gcc" "src/graph/CMakeFiles/edgeshed_graph.dir/datasets.cc.o.d"
  "/root/repo/src/graph/edge_list_io.cc" "src/graph/CMakeFiles/edgeshed_graph.dir/edge_list_io.cc.o" "gcc" "src/graph/CMakeFiles/edgeshed_graph.dir/edge_list_io.cc.o.d"
  "/root/repo/src/graph/generators/generators.cc" "src/graph/CMakeFiles/edgeshed_graph.dir/generators/generators.cc.o" "gcc" "src/graph/CMakeFiles/edgeshed_graph.dir/generators/generators.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/graph/CMakeFiles/edgeshed_graph.dir/graph.cc.o" "gcc" "src/graph/CMakeFiles/edgeshed_graph.dir/graph.cc.o.d"
  "/root/repo/src/graph/graph_builder.cc" "src/graph/CMakeFiles/edgeshed_graph.dir/graph_builder.cc.o" "gcc" "src/graph/CMakeFiles/edgeshed_graph.dir/graph_builder.cc.o.d"
  "/root/repo/src/graph/operations.cc" "src/graph/CMakeFiles/edgeshed_graph.dir/operations.cc.o" "gcc" "src/graph/CMakeFiles/edgeshed_graph.dir/operations.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/edgeshed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
