file(REMOVE_RECURSE
  "libedgeshed_graph.a"
)
