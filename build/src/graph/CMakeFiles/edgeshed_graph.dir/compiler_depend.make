# Empty compiler generated dependencies file for edgeshed_graph.
# This may be replaced when dependencies are built.
