file(REMOVE_RECURSE
  "CMakeFiles/edgeshed_graph.dir/binary_io.cc.o"
  "CMakeFiles/edgeshed_graph.dir/binary_io.cc.o.d"
  "CMakeFiles/edgeshed_graph.dir/datasets.cc.o"
  "CMakeFiles/edgeshed_graph.dir/datasets.cc.o.d"
  "CMakeFiles/edgeshed_graph.dir/edge_list_io.cc.o"
  "CMakeFiles/edgeshed_graph.dir/edge_list_io.cc.o.d"
  "CMakeFiles/edgeshed_graph.dir/generators/generators.cc.o"
  "CMakeFiles/edgeshed_graph.dir/generators/generators.cc.o.d"
  "CMakeFiles/edgeshed_graph.dir/graph.cc.o"
  "CMakeFiles/edgeshed_graph.dir/graph.cc.o.d"
  "CMakeFiles/edgeshed_graph.dir/graph_builder.cc.o"
  "CMakeFiles/edgeshed_graph.dir/graph_builder.cc.o.d"
  "CMakeFiles/edgeshed_graph.dir/operations.cc.o"
  "CMakeFiles/edgeshed_graph.dir/operations.cc.o.d"
  "libedgeshed_graph.a"
  "libedgeshed_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeshed_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
