file(REMOVE_RECURSE
  "libedgeshed_baseline.a"
)
