file(REMOVE_RECURSE
  "CMakeFiles/edgeshed_baseline.dir/uds.cc.o"
  "CMakeFiles/edgeshed_baseline.dir/uds.cc.o.d"
  "libedgeshed_baseline.a"
  "libedgeshed_baseline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeshed_baseline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
