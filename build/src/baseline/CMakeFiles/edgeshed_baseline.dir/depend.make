# Empty dependencies file for edgeshed_baseline.
# This may be replaced when dependencies are built.
