file(REMOVE_RECURSE
  "CMakeFiles/edgeshed_analytics.dir/approx_neighborhood.cc.o"
  "CMakeFiles/edgeshed_analytics.dir/approx_neighborhood.cc.o.d"
  "CMakeFiles/edgeshed_analytics.dir/assortativity.cc.o"
  "CMakeFiles/edgeshed_analytics.dir/assortativity.cc.o.d"
  "CMakeFiles/edgeshed_analytics.dir/betweenness.cc.o"
  "CMakeFiles/edgeshed_analytics.dir/betweenness.cc.o.d"
  "CMakeFiles/edgeshed_analytics.dir/bfs.cc.o"
  "CMakeFiles/edgeshed_analytics.dir/bfs.cc.o.d"
  "CMakeFiles/edgeshed_analytics.dir/closeness.cc.o"
  "CMakeFiles/edgeshed_analytics.dir/closeness.cc.o.d"
  "CMakeFiles/edgeshed_analytics.dir/clustering.cc.o"
  "CMakeFiles/edgeshed_analytics.dir/clustering.cc.o.d"
  "CMakeFiles/edgeshed_analytics.dir/components.cc.o"
  "CMakeFiles/edgeshed_analytics.dir/components.cc.o.d"
  "CMakeFiles/edgeshed_analytics.dir/degree.cc.o"
  "CMakeFiles/edgeshed_analytics.dir/degree.cc.o.d"
  "CMakeFiles/edgeshed_analytics.dir/eigenvector.cc.o"
  "CMakeFiles/edgeshed_analytics.dir/eigenvector.cc.o.d"
  "CMakeFiles/edgeshed_analytics.dir/hyperloglog.cc.o"
  "CMakeFiles/edgeshed_analytics.dir/hyperloglog.cc.o.d"
  "CMakeFiles/edgeshed_analytics.dir/kcore.cc.o"
  "CMakeFiles/edgeshed_analytics.dir/kcore.cc.o.d"
  "CMakeFiles/edgeshed_analytics.dir/louvain.cc.o"
  "CMakeFiles/edgeshed_analytics.dir/louvain.cc.o.d"
  "CMakeFiles/edgeshed_analytics.dir/pagerank.cc.o"
  "CMakeFiles/edgeshed_analytics.dir/pagerank.cc.o.d"
  "CMakeFiles/edgeshed_analytics.dir/shortest_paths.cc.o"
  "CMakeFiles/edgeshed_analytics.dir/shortest_paths.cc.o.d"
  "libedgeshed_analytics.a"
  "libedgeshed_analytics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeshed_analytics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
