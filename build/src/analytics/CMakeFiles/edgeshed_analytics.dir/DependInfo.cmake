
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/analytics/approx_neighborhood.cc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/approx_neighborhood.cc.o" "gcc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/approx_neighborhood.cc.o.d"
  "/root/repo/src/analytics/assortativity.cc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/assortativity.cc.o" "gcc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/assortativity.cc.o.d"
  "/root/repo/src/analytics/betweenness.cc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/betweenness.cc.o" "gcc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/betweenness.cc.o.d"
  "/root/repo/src/analytics/bfs.cc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/bfs.cc.o" "gcc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/bfs.cc.o.d"
  "/root/repo/src/analytics/closeness.cc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/closeness.cc.o" "gcc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/closeness.cc.o.d"
  "/root/repo/src/analytics/clustering.cc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/clustering.cc.o" "gcc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/clustering.cc.o.d"
  "/root/repo/src/analytics/components.cc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/components.cc.o" "gcc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/components.cc.o.d"
  "/root/repo/src/analytics/degree.cc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/degree.cc.o" "gcc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/degree.cc.o.d"
  "/root/repo/src/analytics/eigenvector.cc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/eigenvector.cc.o" "gcc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/eigenvector.cc.o.d"
  "/root/repo/src/analytics/hyperloglog.cc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/hyperloglog.cc.o" "gcc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/hyperloglog.cc.o.d"
  "/root/repo/src/analytics/kcore.cc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/kcore.cc.o" "gcc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/kcore.cc.o.d"
  "/root/repo/src/analytics/louvain.cc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/louvain.cc.o" "gcc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/louvain.cc.o.d"
  "/root/repo/src/analytics/pagerank.cc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/pagerank.cc.o" "gcc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/pagerank.cc.o.d"
  "/root/repo/src/analytics/shortest_paths.cc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/shortest_paths.cc.o" "gcc" "src/analytics/CMakeFiles/edgeshed_analytics.dir/shortest_paths.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/edgeshed_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edgeshed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
