file(REMOVE_RECURSE
  "libedgeshed_analytics.a"
)
