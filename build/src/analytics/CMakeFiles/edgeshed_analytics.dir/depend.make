# Empty dependencies file for edgeshed_analytics.
# This may be replaced when dependencies are built.
