# Empty dependencies file for edgeshed_eval.
# This may be replaced when dependencies are built.
