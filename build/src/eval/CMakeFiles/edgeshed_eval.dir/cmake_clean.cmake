file(REMOVE_RECURSE
  "CMakeFiles/edgeshed_eval.dir/experiment.cc.o"
  "CMakeFiles/edgeshed_eval.dir/experiment.cc.o.d"
  "CMakeFiles/edgeshed_eval.dir/flags.cc.o"
  "CMakeFiles/edgeshed_eval.dir/flags.cc.o.d"
  "CMakeFiles/edgeshed_eval.dir/metrics.cc.o"
  "CMakeFiles/edgeshed_eval.dir/metrics.cc.o.d"
  "CMakeFiles/edgeshed_eval.dir/task_runner.cc.o"
  "CMakeFiles/edgeshed_eval.dir/task_runner.cc.o.d"
  "libedgeshed_eval.a"
  "libedgeshed_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeshed_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
