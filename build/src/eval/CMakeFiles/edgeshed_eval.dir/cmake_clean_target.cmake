file(REMOVE_RECURSE
  "libedgeshed_eval.a"
)
