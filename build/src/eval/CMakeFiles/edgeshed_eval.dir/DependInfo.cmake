
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/experiment.cc" "src/eval/CMakeFiles/edgeshed_eval.dir/experiment.cc.o" "gcc" "src/eval/CMakeFiles/edgeshed_eval.dir/experiment.cc.o.d"
  "/root/repo/src/eval/flags.cc" "src/eval/CMakeFiles/edgeshed_eval.dir/flags.cc.o" "gcc" "src/eval/CMakeFiles/edgeshed_eval.dir/flags.cc.o.d"
  "/root/repo/src/eval/metrics.cc" "src/eval/CMakeFiles/edgeshed_eval.dir/metrics.cc.o" "gcc" "src/eval/CMakeFiles/edgeshed_eval.dir/metrics.cc.o.d"
  "/root/repo/src/eval/task_runner.cc" "src/eval/CMakeFiles/edgeshed_eval.dir/task_runner.cc.o" "gcc" "src/eval/CMakeFiles/edgeshed_eval.dir/task_runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/baseline/CMakeFiles/edgeshed_baseline.dir/DependInfo.cmake"
  "/root/repo/build/src/embedding/CMakeFiles/edgeshed_embedding.dir/DependInfo.cmake"
  "/root/repo/build/src/analytics/CMakeFiles/edgeshed_analytics.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/edgeshed_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edgeshed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
