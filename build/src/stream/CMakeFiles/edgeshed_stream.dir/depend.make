# Empty dependencies file for edgeshed_stream.
# This may be replaced when dependencies are built.
