file(REMOVE_RECURSE
  "libedgeshed_stream.a"
)
