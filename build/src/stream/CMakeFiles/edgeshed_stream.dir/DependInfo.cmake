
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stream/streaming_shedder.cc" "src/stream/CMakeFiles/edgeshed_stream.dir/streaming_shedder.cc.o" "gcc" "src/stream/CMakeFiles/edgeshed_stream.dir/streaming_shedder.cc.o.d"
  "/root/repo/src/stream/tcm_sketch.cc" "src/stream/CMakeFiles/edgeshed_stream.dir/tcm_sketch.cc.o" "gcc" "src/stream/CMakeFiles/edgeshed_stream.dir/tcm_sketch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/edgeshed_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edgeshed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
