file(REMOVE_RECURSE
  "CMakeFiles/edgeshed_stream.dir/streaming_shedder.cc.o"
  "CMakeFiles/edgeshed_stream.dir/streaming_shedder.cc.o.d"
  "CMakeFiles/edgeshed_stream.dir/tcm_sketch.cc.o"
  "CMakeFiles/edgeshed_stream.dir/tcm_sketch.cc.o.d"
  "libedgeshed_stream.a"
  "libedgeshed_stream.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeshed_stream.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
