file(REMOVE_RECURSE
  "libedgeshed_common.a"
)
