# Empty dependencies file for edgeshed_common.
# This may be replaced when dependencies are built.
