file(REMOVE_RECURSE
  "CMakeFiles/edgeshed_common.dir/histogram.cc.o"
  "CMakeFiles/edgeshed_common.dir/histogram.cc.o.d"
  "CMakeFiles/edgeshed_common.dir/parallel_for.cc.o"
  "CMakeFiles/edgeshed_common.dir/parallel_for.cc.o.d"
  "CMakeFiles/edgeshed_common.dir/random.cc.o"
  "CMakeFiles/edgeshed_common.dir/random.cc.o.d"
  "CMakeFiles/edgeshed_common.dir/status.cc.o"
  "CMakeFiles/edgeshed_common.dir/status.cc.o.d"
  "CMakeFiles/edgeshed_common.dir/strings.cc.o"
  "CMakeFiles/edgeshed_common.dir/strings.cc.o.d"
  "CMakeFiles/edgeshed_common.dir/table.cc.o"
  "CMakeFiles/edgeshed_common.dir/table.cc.o.d"
  "libedgeshed_common.a"
  "libedgeshed_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeshed_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
