
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/embedding/kmeans.cc" "src/embedding/CMakeFiles/edgeshed_embedding.dir/kmeans.cc.o" "gcc" "src/embedding/CMakeFiles/edgeshed_embedding.dir/kmeans.cc.o.d"
  "/root/repo/src/embedding/link_prediction.cc" "src/embedding/CMakeFiles/edgeshed_embedding.dir/link_prediction.cc.o" "gcc" "src/embedding/CMakeFiles/edgeshed_embedding.dir/link_prediction.cc.o.d"
  "/root/repo/src/embedding/random_walks.cc" "src/embedding/CMakeFiles/edgeshed_embedding.dir/random_walks.cc.o" "gcc" "src/embedding/CMakeFiles/edgeshed_embedding.dir/random_walks.cc.o.d"
  "/root/repo/src/embedding/skipgram.cc" "src/embedding/CMakeFiles/edgeshed_embedding.dir/skipgram.cc.o" "gcc" "src/embedding/CMakeFiles/edgeshed_embedding.dir/skipgram.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/graph/CMakeFiles/edgeshed_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/edgeshed_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
