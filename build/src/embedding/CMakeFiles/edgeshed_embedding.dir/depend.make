# Empty dependencies file for edgeshed_embedding.
# This may be replaced when dependencies are built.
