file(REMOVE_RECURSE
  "CMakeFiles/edgeshed_embedding.dir/kmeans.cc.o"
  "CMakeFiles/edgeshed_embedding.dir/kmeans.cc.o.d"
  "CMakeFiles/edgeshed_embedding.dir/link_prediction.cc.o"
  "CMakeFiles/edgeshed_embedding.dir/link_prediction.cc.o.d"
  "CMakeFiles/edgeshed_embedding.dir/random_walks.cc.o"
  "CMakeFiles/edgeshed_embedding.dir/random_walks.cc.o.d"
  "CMakeFiles/edgeshed_embedding.dir/skipgram.cc.o"
  "CMakeFiles/edgeshed_embedding.dir/skipgram.cc.o.d"
  "libedgeshed_embedding.a"
  "libedgeshed_embedding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeshed_embedding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
