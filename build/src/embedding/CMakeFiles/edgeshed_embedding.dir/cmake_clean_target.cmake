file(REMOVE_RECURSE
  "libedgeshed_embedding.a"
)
