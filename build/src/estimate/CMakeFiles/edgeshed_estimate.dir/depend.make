# Empty dependencies file for edgeshed_estimate.
# This may be replaced when dependencies are built.
