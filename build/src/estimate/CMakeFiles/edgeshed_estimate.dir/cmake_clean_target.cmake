file(REMOVE_RECURSE
  "libedgeshed_estimate.a"
)
