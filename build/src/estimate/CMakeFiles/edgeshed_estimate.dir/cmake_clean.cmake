file(REMOVE_RECURSE
  "CMakeFiles/edgeshed_estimate.dir/estimators.cc.o"
  "CMakeFiles/edgeshed_estimate.dir/estimators.cc.o.d"
  "libedgeshed_estimate.a"
  "libedgeshed_estimate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edgeshed_estimate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
