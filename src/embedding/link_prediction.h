#ifndef EDGESHED_EMBEDDING_LINK_PREDICTION_H_
#define EDGESHED_EMBEDDING_LINK_PREDICTION_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "embedding/kmeans.h"
#include "embedding/random_walks.h"
#include "embedding/skipgram.h"
#include "graph/graph.h"

namespace edgeshed::embedding {

/// Pipeline parameters for the paper's task (7): node2vec (p = q = 1) ->
/// skip-gram embeddings -> k-means (k = 5) -> same-community prediction
/// over 2-hop vertex pairs.
struct LinkPredictionOptions {
  WalkOptions walks;
  SkipGramOptions skipgram;
  KMeansOptions kmeans;
  /// Cap on 2-hop pairs collected per source vertex; bounds the quadratic
  /// blow-up around hubs (DESIGN.md §3). 0 = unlimited.
  uint32_t max_pairs_per_node = 128;
  uint64_t pair_seed = 11;
};

/// Community labels for every vertex of `g` from the node2vec + k-means
/// pipeline.
std::vector<uint32_t> CommunityAssignments(const graph::Graph& g,
                                           const LinkPredictionOptions& options);

/// A set of unordered vertex pairs packed as (min << 32) | max.
using PairSet = std::unordered_set<uint64_t>;

uint64_t PackPair(graph::NodeId a, graph::NodeId b);

/// All (capped) 2-hop pairs of `g` whose endpoints share a community label:
/// the prediction set L (resp. L_s when run on a reduced graph).
PairSet PredictSameCommunityPairs(const graph::Graph& g,
                                  const std::vector<uint32_t>& communities,
                                  const LinkPredictionOptions& options);

/// The paper's link-prediction utility |L_s ∩ L| / |L| (0 when L is empty).
double LinkPredictionUtility(const PairSet& original,
                             const PairSet& reduced);

/// True iff u and v are a 2-hop pair in `g`: distinct, non-adjacent, with at
/// least one common neighbor (distance exactly 2).
bool AreTwoHop(const graph::Graph& g, graph::NodeId u, graph::NodeId v);

/// |L_s ∩ L| / |L| computed directly over the base set L: a pair of L is in
/// L_s iff it is a 2-hop pair of `reduced` whose endpoints share a community
/// under `communities`. Equivalent to intersecting full enumerations, but
/// immune to per-node sampling mismatch between the two graphs (the
/// intersection only ever needs L's own pairs).
double LinkPredictionUtilityOverBase(const PairSet& base,
                                     const graph::Graph& reduced,
                                     const std::vector<uint32_t>& communities);

/// End-to-end: runs the pipeline on both graphs and scores the reduced one.
double EvaluateLinkPrediction(const graph::Graph& original,
                              const graph::Graph& reduced,
                              const LinkPredictionOptions& options = {});

}  // namespace edgeshed::embedding

#endif  // EDGESHED_EMBEDDING_LINK_PREDICTION_H_
