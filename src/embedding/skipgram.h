#ifndef EDGESHED_EMBEDDING_SKIPGRAM_H_
#define EDGESHED_EMBEDDING_SKIPGRAM_H_

#include <cstdint>
#include <vector>

#include "embedding/random_walks.h"
#include "graph/graph.h"

namespace edgeshed::embedding {

/// Skip-gram with negative sampling (word2vec/node2vec training objective).
struct SkipGramOptions {
  uint32_t dimensions = 64;
  uint32_t window = 5;
  uint32_t negative_samples = 5;
  uint32_t epochs = 2;
  float initial_learning_rate = 0.025f;
  /// Negative-sampling distribution exponent over vertex degree (word2vec
  /// uses unigram^0.75).
  double unigram_power = 0.75;
  uint64_t seed = 7;
  int threads = 0;
};

/// Dense per-vertex embeddings (row-major: vertex u occupies
/// [u*dimensions, (u+1)*dimensions)). Vertices that never occur in the
/// corpus keep their random initialization.
struct NodeEmbeddings {
  uint32_t dimensions = 0;
  std::vector<float> vectors;

  const float* Row(graph::NodeId u) const {
    return vectors.data() + static_cast<size_t>(u) * dimensions;
  }
  uint64_t NumNodes() const {
    return dimensions == 0 ? 0 : vectors.size() / dimensions;
  }
};

/// Trains SGNS embeddings over a walk corpus with lock-free (Hogwild) SGD.
/// Deterministic for threads == 1; multithreaded runs vary benignly in low
/// bits, which is standard for this trainer family.
NodeEmbeddings TrainSkipGram(const graph::Graph& g, const WalkCorpus& corpus,
                             const SkipGramOptions& options = {});

/// Cosine similarity between two embedding rows.
float CosineSimilarity(const NodeEmbeddings& embeddings, graph::NodeId a,
                       graph::NodeId b);

}  // namespace edgeshed::embedding

#endif  // EDGESHED_EMBEDDING_SKIPGRAM_H_
