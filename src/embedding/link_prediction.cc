#include "embedding/link_prediction.h"

#include <algorithm>

#include "common/random.h"

namespace edgeshed::embedding {

uint64_t PackPair(graph::NodeId a, graph::NodeId b) {
  if (a > b) std::swap(a, b);
  return (static_cast<uint64_t>(a) << 32) | b;
}

std::vector<uint32_t> CommunityAssignments(
    const graph::Graph& g, const LinkPredictionOptions& options) {
  WalkCorpus corpus = GenerateWalks(g, options.walks);
  NodeEmbeddings embeddings = TrainSkipGram(g, corpus, options.skipgram);
  KMeansResult clusters =
      KMeans(embeddings.vectors, g.NumNodes(), embeddings.dimensions,
             options.kmeans);
  return clusters.assignment;
}

PairSet PredictSameCommunityPairs(const graph::Graph& g,
                                  const std::vector<uint32_t>& communities,
                                  const LinkPredictionOptions& options) {
  PairSet predicted;
  Rng rng(options.pair_seed);
  std::vector<graph::NodeId> two_hop;
  std::vector<bool> marked(g.NumNodes(), false);
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    // Collect distinct 2-hop neighbors v > u (each unordered pair once).
    two_hop.clear();
    for (graph::NodeId mid : g.Neighbors(u)) {
      for (graph::NodeId v : g.Neighbors(mid)) {
        if (v <= u || marked[v] || g.HasEdge(u, v)) continue;
        marked[v] = true;
        two_hop.push_back(v);
      }
    }
    // Down-sampling around hubs (uniform, deterministic given pair_seed).
    if (options.max_pairs_per_node > 0 &&
        two_hop.size() > options.max_pairs_per_node) {
      rng.Shuffle(&two_hop);
      two_hop.resize(options.max_pairs_per_node);
    }
    for (graph::NodeId v : two_hop) {
      if (communities[u] == communities[v]) {
        predicted.insert(PackPair(u, v));
      }
    }
    // Reset marks.
    for (graph::NodeId mid : g.Neighbors(u)) {
      for (graph::NodeId v : g.Neighbors(mid)) marked[v] = false;
    }
  }
  return predicted;
}

double LinkPredictionUtility(const PairSet& original, const PairSet& reduced) {
  if (original.empty()) return 0.0;
  uint64_t shared = 0;
  const PairSet& small = original.size() <= reduced.size() ? original : reduced;
  const PairSet& large = original.size() <= reduced.size() ? reduced : original;
  for (uint64_t pair : small) {
    if (large.contains(pair)) ++shared;
  }
  return static_cast<double>(shared) / static_cast<double>(original.size());
}

bool AreTwoHop(const graph::Graph& g, graph::NodeId u, graph::NodeId v) {
  if (u == v || u >= g.NumNodes() || v >= g.NumNodes()) return false;
  if (g.HasEdge(u, v)) return false;
  // Intersect sorted neighbor lists, scanning the smaller one.
  if (g.Degree(u) > g.Degree(v)) std::swap(u, v);
  auto nbrs_v = g.Neighbors(v);
  for (graph::NodeId mid : g.Neighbors(u)) {
    if (std::binary_search(nbrs_v.begin(), nbrs_v.end(), mid)) return true;
  }
  return false;
}

double LinkPredictionUtilityOverBase(
    const PairSet& base, const graph::Graph& reduced,
    const std::vector<uint32_t>& communities) {
  if (base.empty()) return 0.0;
  uint64_t shared = 0;
  for (uint64_t packed : base) {
    const auto a = static_cast<graph::NodeId>(packed >> 32);
    const auto b = static_cast<graph::NodeId>(packed & 0xffffffffu);
    if (communities[a] == communities[b] && AreTwoHop(reduced, a, b)) {
      ++shared;
    }
  }
  return static_cast<double>(shared) / static_cast<double>(base.size());
}

double EvaluateLinkPrediction(const graph::Graph& original,
                              const graph::Graph& reduced,
                              const LinkPredictionOptions& options) {
  std::vector<uint32_t> communities_g = CommunityAssignments(original, options);
  std::vector<uint32_t> communities_r = CommunityAssignments(reduced, options);
  PairSet l = PredictSameCommunityPairs(original, communities_g, options);
  PairSet ls = PredictSameCommunityPairs(reduced, communities_r, options);
  return LinkPredictionUtility(l, ls);
}

}  // namespace edgeshed::embedding
