#include "embedding/random_walks.h"

#include <algorithm>
#include <mutex>

#include "common/parallel_for.h"
#include "common/random.h"

namespace edgeshed::embedding {

namespace {

/// One node2vec step from `current`, given the previous vertex (or
/// kInvalidNode for the first step). Rejection sampling against the
/// unnormalized weights {1/p returns, 1 triangle, 1/q outward}.
graph::NodeId NextStep(const graph::Graph& g, graph::NodeId previous,
                       graph::NodeId current, double p, double q, Rng& rng) {
  auto neighbors = g.Neighbors(current);
  if (neighbors.empty()) return graph::kInvalidNode;
  if (previous == graph::kInvalidNode || (p == 1.0 && q == 1.0)) {
    return neighbors[rng.UniformIndex(neighbors.size())];
  }
  const double w_return = 1.0 / p;
  const double w_common = 1.0;
  const double w_out = 1.0 / q;
  const double w_max = std::max({w_return, w_common, w_out});
  for (;;) {
    graph::NodeId candidate = neighbors[rng.UniformIndex(neighbors.size())];
    double weight;
    if (candidate == previous) {
      weight = w_return;
    } else if (g.HasEdge(candidate, previous)) {
      weight = w_common;
    } else {
      weight = w_out;
    }
    if (rng.UniformDouble() * w_max <= weight) return candidate;
  }
}

}  // namespace

WalkCorpus GenerateWalks(const graph::Graph& g, const WalkOptions& options) {
  const uint64_t n = g.NumNodes();
  WalkCorpus corpus;
  if (n == 0 || options.walks_per_node == 0 || options.walk_length == 0) {
    corpus.offsets.push_back(0);
    return corpus;
  }

  // One independently seeded stream per (round, start) keeps the corpus
  // deterministic under any thread count.
  const uint64_t total_walks = options.walks_per_node * n;
  std::vector<std::vector<graph::NodeId>> walks(total_walks);
  ParallelForEach(
      0, total_walks,
      [&](uint64_t walk_index) {
        const auto start =
            static_cast<graph::NodeId>(walk_index % n);
        if (g.Degree(start) == 0) return;
        Rng rng(options.seed ^ (walk_index * 0x9e3779b97f4a7c15ULL + 1));
        std::vector<graph::NodeId>& walk = walks[walk_index];
        walk.reserve(options.walk_length);
        graph::NodeId previous = graph::kInvalidNode;
        graph::NodeId current = start;
        walk.push_back(current);
        for (uint32_t step = 1; step < options.walk_length; ++step) {
          graph::NodeId next =
              NextStep(g, previous, current, options.p, options.q, rng);
          if (next == graph::kInvalidNode) break;
          walk.push_back(next);
          previous = current;
          current = next;
        }
      },
      options.threads);

  corpus.offsets.push_back(0);
  for (const auto& walk : walks) {
    if (walk.empty()) continue;
    corpus.tokens.insert(corpus.tokens.end(), walk.begin(), walk.end());
    corpus.offsets.push_back(corpus.tokens.size());
  }
  return corpus;
}

}  // namespace edgeshed::embedding
