#ifndef EDGESHED_EMBEDDING_KMEANS_H_
#define EDGESHED_EMBEDDING_KMEANS_H_

#include <cstdint>
#include <vector>

namespace edgeshed::embedding {

/// Lloyd's k-means over row-major float vectors.
struct KMeansOptions {
  uint32_t clusters = 5;  // the paper's n_clusters for link prediction
  uint32_t max_iterations = 50;
  /// Stop early when fewer than this fraction of points change cluster.
  double min_reassignment_fraction = 0.001;
  uint64_t seed = 3;
};

struct KMeansResult {
  /// assignment[i] in [0, clusters) for each input row.
  std::vector<uint32_t> assignment;
  /// Row-major centroids (clusters x dimensions).
  std::vector<float> centroids;
  uint32_t iterations = 0;
  double inertia = 0.0;  // sum of squared distances to assigned centroids
};

/// Clusters `num_rows` points of `dimensions` floats each (row-major in
/// `data`). Seeding is k-means++; empty clusters are re-seeded from the
/// farthest point. Deterministic given the seed.
KMeansResult KMeans(const std::vector<float>& data, uint64_t num_rows,
                    uint32_t dimensions, const KMeansOptions& options = {});

}  // namespace edgeshed::embedding

#endif  // EDGESHED_EMBEDDING_KMEANS_H_
