#include "embedding/skipgram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/parallel_for.h"
#include "common/random.h"

namespace edgeshed::embedding {

namespace {

constexpr size_t kNegativeTableSize = 1 << 20;

/// Degree^power negative-sampling table (word2vec's unigram table).
std::vector<graph::NodeId> BuildNegativeTable(const graph::Graph& g,
                                              double power) {
  std::vector<graph::NodeId> table;
  table.reserve(kNegativeTableSize);
  double total = 0.0;
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    total += std::pow(static_cast<double>(g.Degree(u)), power);
  }
  if (total <= 0.0) return table;
  double cumulative = 0.0;
  size_t filled = 0;
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    cumulative += std::pow(static_cast<double>(g.Degree(u)), power);
    size_t limit = static_cast<size_t>(cumulative / total *
                                       static_cast<double>(kNegativeTableSize));
    for (; filled < limit && filled < kNegativeTableSize; ++filled) {
      table.push_back(u);
    }
  }
  while (table.size() < kNegativeTableSize && !table.empty()) {
    table.push_back(table.back());
  }
  return table;
}

float FastSigmoid(float x) {
  if (x > 6.0f) return 1.0f;
  if (x < -6.0f) return 0.0f;
  return 1.0f / (1.0f + std::exp(-x));
}

}  // namespace

NodeEmbeddings TrainSkipGram(const graph::Graph& g, const WalkCorpus& corpus,
                             const SkipGramOptions& options) {
  EDGESHED_CHECK_GT(options.dimensions, 0u);
  const uint64_t n = g.NumNodes();
  const uint32_t dim = options.dimensions;

  NodeEmbeddings embeddings;
  embeddings.dimensions = dim;
  embeddings.vectors.resize(n * dim);
  // Context (output) matrix, discarded after training.
  std::vector<float> context(n * dim, 0.0f);

  Rng init_rng(options.seed);
  for (float& value : embeddings.vectors) {
    value = (static_cast<float>(init_rng.UniformDouble()) - 0.5f) / dim;
  }

  const std::vector<graph::NodeId> negative_table =
      BuildNegativeTable(g, options.unigram_power);
  if (corpus.NumWalks() == 0 || negative_table.empty()) return embeddings;

  const uint64_t total_steps =
      static_cast<uint64_t>(options.epochs) * corpus.NumWalks();
  float* const input = embeddings.vectors.data();
  float* const output = context.data();

  for (uint32_t epoch = 0; epoch < options.epochs; ++epoch) {
    // Linear learning-rate decay across epochs (word2vec schedule).
    const float lr =
        options.initial_learning_rate *
        std::max(0.05f, 1.0f - static_cast<float>(epoch) /
                                   static_cast<float>(options.epochs));
    (void)total_steps;
    ParallelForEach(
        0, corpus.NumWalks(),
        [&](uint64_t walk_index) {
          Rng rng(options.seed ^ ((walk_index + 1) * 0x2545f4914f6cdd1dULL) ^
                  epoch);
          std::vector<float> grad(dim);
          const uint64_t begin = corpus.offsets[walk_index];
          const uint64_t end = corpus.offsets[walk_index + 1];
          for (uint64_t center_pos = begin; center_pos < end; ++center_pos) {
            const graph::NodeId center = corpus.tokens[center_pos];
            // Randomized effective window, as in word2vec.
            const uint64_t window =
                1 + rng.UniformU64(options.window);
            const uint64_t ctx_begin =
                center_pos >= begin + window ? center_pos - window : begin;
            const uint64_t ctx_end =
                std::min<uint64_t>(end, center_pos + window + 1);
            for (uint64_t ctx_pos = ctx_begin; ctx_pos < ctx_end; ++ctx_pos) {
              if (ctx_pos == center_pos) continue;
              const graph::NodeId ctx = corpus.tokens[ctx_pos];
              float* v_in = input + static_cast<size_t>(center) * dim;
              std::fill(grad.begin(), grad.end(), 0.0f);
              // One positive + k negative updates.
              for (uint32_t k = 0; k <= options.negative_samples; ++k) {
                graph::NodeId target;
                float label;
                if (k == 0) {
                  target = ctx;
                  label = 1.0f;
                } else {
                  target =
                      negative_table[rng.UniformIndex(negative_table.size())];
                  if (target == ctx) continue;
                  label = 0.0f;
                }
                float* v_out = output + static_cast<size_t>(target) * dim;
                float dot = 0.0f;
                for (uint32_t d = 0; d < dim; ++d) dot += v_in[d] * v_out[d];
                const float gradient = (label - FastSigmoid(dot)) * lr;
                for (uint32_t d = 0; d < dim; ++d) {
                  grad[d] += gradient * v_out[d];
                  v_out[d] += gradient * v_in[d];
                }
              }
              for (uint32_t d = 0; d < dim; ++d) v_in[d] += grad[d];
            }
          }
        },
        options.threads);
  }
  return embeddings;
}

float CosineSimilarity(const NodeEmbeddings& embeddings, graph::NodeId a,
                       graph::NodeId b) {
  const float* va = embeddings.Row(a);
  const float* vb = embeddings.Row(b);
  float dot = 0.0f;
  float na = 0.0f;
  float nb = 0.0f;
  for (uint32_t d = 0; d < embeddings.dimensions; ++d) {
    dot += va[d] * vb[d];
    na += va[d] * va[d];
    nb += vb[d] * vb[d];
  }
  const float denom = std::sqrt(na) * std::sqrt(nb);
  return denom > 0.0f ? dot / denom : 0.0f;
}

}  // namespace edgeshed::embedding
