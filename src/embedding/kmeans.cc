#include "embedding/kmeans.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/random.h"

namespace edgeshed::embedding {

namespace {

double SquaredDistance(const float* a, const float* b, uint32_t dim) {
  double sum = 0.0;
  for (uint32_t d = 0; d < dim; ++d) {
    const double diff = static_cast<double>(a[d]) - static_cast<double>(b[d]);
    sum += diff * diff;
  }
  return sum;
}

}  // namespace

KMeansResult KMeans(const std::vector<float>& data, uint64_t num_rows,
                    uint32_t dimensions, const KMeansOptions& options) {
  EDGESHED_CHECK_EQ(data.size(), num_rows * dimensions);
  KMeansResult result;
  if (num_rows == 0 || options.clusters == 0) return result;
  const uint32_t k =
      static_cast<uint32_t>(std::min<uint64_t>(options.clusters, num_rows));
  Rng rng(options.seed);

  // k-means++ seeding.
  result.centroids.assign(static_cast<size_t>(k) * dimensions, 0.0f);
  std::vector<double> min_dist(num_rows, std::numeric_limits<double>::max());
  uint64_t first = rng.UniformU64(num_rows);
  std::copy_n(data.data() + first * dimensions, dimensions,
              result.centroids.data());
  for (uint32_t c = 1; c < k; ++c) {
    const float* last_centroid =
        result.centroids.data() + static_cast<size_t>(c - 1) * dimensions;
    double total = 0.0;
    for (uint64_t i = 0; i < num_rows; ++i) {
      min_dist[i] = std::min(
          min_dist[i],
          SquaredDistance(data.data() + i * dimensions, last_centroid,
                          dimensions));
      total += min_dist[i];
    }
    uint64_t chosen = 0;
    if (total > 0.0) {
      double pick = rng.UniformDouble() * total;
      for (uint64_t i = 0; i < num_rows; ++i) {
        pick -= min_dist[i];
        if (pick <= 0.0) {
          chosen = i;
          break;
        }
      }
    } else {
      chosen = rng.UniformU64(num_rows);
    }
    std::copy_n(data.data() + chosen * dimensions, dimensions,
                result.centroids.data() + static_cast<size_t>(c) * dimensions);
  }

  result.assignment.assign(num_rows, 0);
  std::vector<double> sums(static_cast<size_t>(k) * dimensions);
  std::vector<uint64_t> counts(k);
  for (uint32_t iteration = 0; iteration < options.max_iterations;
       ++iteration) {
    ++result.iterations;
    uint64_t reassigned = 0;
    result.inertia = 0.0;
    for (uint64_t i = 0; i < num_rows; ++i) {
      const float* row = data.data() + i * dimensions;
      uint32_t best = 0;
      double best_dist = std::numeric_limits<double>::max();
      for (uint32_t c = 0; c < k; ++c) {
        double dist = SquaredDistance(
            row, result.centroids.data() + static_cast<size_t>(c) * dimensions,
            dimensions);
        if (dist < best_dist) {
          best_dist = dist;
          best = c;
        }
      }
      if (result.assignment[i] != best) {
        result.assignment[i] = best;
        ++reassigned;
      }
      result.inertia += best_dist;
    }

    std::fill(sums.begin(), sums.end(), 0.0);
    std::fill(counts.begin(), counts.end(), 0);
    for (uint64_t i = 0; i < num_rows; ++i) {
      const uint32_t c = result.assignment[i];
      ++counts[c];
      const float* row = data.data() + i * dimensions;
      double* sum = sums.data() + static_cast<size_t>(c) * dimensions;
      for (uint32_t d = 0; d < dimensions; ++d) sum[d] += row[d];
    }
    for (uint32_t c = 0; c < k; ++c) {
      float* centroid =
          result.centroids.data() + static_cast<size_t>(c) * dimensions;
      if (counts[c] == 0) {
        // Re-seed an empty cluster from a random point.
        const uint64_t pick = rng.UniformU64(num_rows);
        std::copy_n(data.data() + pick * dimensions, dimensions, centroid);
        continue;
      }
      const double* sum = sums.data() + static_cast<size_t>(c) * dimensions;
      for (uint32_t d = 0; d < dimensions; ++d) {
        centroid[d] = static_cast<float>(sum[d] /
                                         static_cast<double>(counts[c]));
      }
    }

    if (static_cast<double>(reassigned) <
        options.min_reassignment_fraction * static_cast<double>(num_rows)) {
      break;
    }
  }
  return result;
}

}  // namespace edgeshed::embedding
