#ifndef EDGESHED_EMBEDDING_RANDOM_WALKS_H_
#define EDGESHED_EMBEDDING_RANDOM_WALKS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace edgeshed::embedding {

/// node2vec walk parameters (Grover & Leskovec, KDD 2016). The paper's link
/// prediction task uses p = q = 1 (plain second-order-free random walks);
/// general p/q are supported via rejection sampling.
struct WalkOptions {
  uint32_t walks_per_node = 10;
  uint32_t walk_length = 40;
  /// Return parameter: likelihood of revisiting the previous vertex.
  double p = 1.0;
  /// In-out parameter: BFS-like (q > 1) vs DFS-like (q < 1) exploration.
  double q = 1.0;
  uint64_t seed = 99;
  int threads = 0;
};

/// A corpus of random walks, flattened for cache-friendly training.
struct WalkCorpus {
  /// Concatenated walks.
  std::vector<graph::NodeId> tokens;
  /// offsets[i]..offsets[i+1] delimit walk i in `tokens`.
  std::vector<uint64_t> offsets;

  uint64_t NumWalks() const {
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
};

/// Generates node2vec walks from every vertex. Vertices of degree 0 produce
/// no walks (nothing to embed). Deterministic given the seed.
WalkCorpus GenerateWalks(const graph::Graph& g, const WalkOptions& options);

}  // namespace edgeshed::embedding

#endif  // EDGESHED_EMBEDDING_RANDOM_WALKS_H_
