#ifndef EDGESHED_OBS_STATS_SERVER_H_
#define EDGESHED_OBS_STATS_SERVER_H_

#include <atomic>
#include <functional>
#include <map>
#include <string>
#include <thread>

#include "common/status.h"

namespace edgeshed::obs {

/// Response produced by a stats-server handler.
struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

struct StatsServerOptions {
  /// Port to bind on 127.0.0.1. 0 = pick an ephemeral port (read it back
  /// via port()).
  int port = 0;
  /// Pending-connection backlog passed to listen().
  int backlog = 16;
};

/// Minimal embedded HTTP stats server: plain POSIX sockets, GET only, one
/// request per connection, loopback only. This is an operator window
/// (`curl localhost:PORT/metrics`), not a general web server — no TLS, no
/// keep-alive, no request bodies.
///
/// Usage:
///   StatsServer server(options);
///   server.Handle("/metrics", [&] { return HttpResponse{...}; });
///   EDGESHED_RETURN_IF_ERROR(server.Start());   // spawns the accept thread
///   ...
///   server.Stop();                               // joins it
///
/// Handlers run on the server thread and must be registered before Start().
/// Built-in behaviour: unknown path -> 404, non-GET method -> 405, `/healthz`
/// -> "ok" unless overridden.
class StatsServer {
 public:
  using Handler = std::function<HttpResponse()>;

  explicit StatsServer(StatsServerOptions options = {});
  ~StatsServer();

  StatsServer(const StatsServer&) = delete;
  StatsServer& operator=(const StatsServer&) = delete;

  /// Registers `handler` for exact path `path`. Must precede Start().
  void Handle(std::string path, Handler handler);

  /// Binds, listens, and spawns the accept thread. Fails (IOError) if the
  /// port is taken or sockets are unavailable.
  Status Start();

  /// Stops the accept loop and joins the thread. Idempotent; also called by
  /// the destructor.
  void Stop();

  /// The bound port (after a successful Start). 0 before Start.
  int port() const { return port_; }

 private:
  void AcceptLoop();
  void ServeConnection(int client_fd);

  StatsServerOptions options_;
  std::map<std::string, Handler> handlers_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

}  // namespace edgeshed::obs

#endif  // EDGESHED_OBS_STATS_SERVER_H_
