#include "obs/tracer.h"

#include <algorithm>

#include "common/strings.h"

namespace edgeshed::obs {
namespace {

/// One entry of the calling thread's ambient span stack. The stack is keyed
/// by tracer so two registries tracing on the same thread don't cross wires.
struct AmbientSpan {
  const Tracer* tracer;
  uint64_t trace_id;
  uint64_t span_id;
};

thread_local std::vector<AmbientSpan> g_ambient_stack;

void AmbientPush(const Tracer* tracer, uint64_t trace_id, uint64_t span_id) {
  g_ambient_stack.push_back({tracer, trace_id, span_id});
}

void AmbientPop(const Tracer* tracer, uint64_t span_id) {
  // Spans normally end LIFO; search from the top anyway so an out-of-order
  // End (moved-from spans, early End() calls) cannot corrupt the stack.
  for (size_t i = g_ambient_stack.size(); i > 0; --i) {
    const AmbientSpan& entry = g_ambient_stack[i - 1];
    if (entry.tracer == tracer && entry.span_id == span_id) {
      g_ambient_stack.erase(g_ambient_stack.begin() +
                            static_cast<ptrdiff_t>(i - 1));
      return;
    }
  }
}

const AmbientSpan* AmbientTop(const Tracer* tracer) {
  for (size_t i = g_ambient_stack.size(); i > 0; --i) {
    if (g_ambient_stack[i - 1].tracer == tracer) return &g_ambient_stack[i - 1];
  }
  return nullptr;
}

void JsonEscapeInto(std::string_view text, std::string* out) {
  for (char c : text) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          *out += StrFormat("\\u%04x", static_cast<unsigned>(c));
        } else {
          out->push_back(c);
        }
    }
  }
}

}  // namespace

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    End();
    tracer_ = other.tracer_;
    record_ = std::move(other.record_);
    other.tracer_ = nullptr;
  }
  return *this;
}

void Span::Annotate(std::string key, std::string value) {
  if (tracer_ == nullptr) return;
  record_.annotations.emplace_back(std::move(key), std::move(value));
}

void Span::End() {
  if (tracer_ == nullptr) return;
  Tracer* tracer = tracer_;
  tracer_ = nullptr;
  record_.duration_ns = tracer->NowNs() - record_.start_ns;
  AmbientPop(tracer, record_.span_id);
  tracer->Record(std::move(record_));
}

Tracer::Tracer(TracerOptions options)
    : epoch_(std::chrono::steady_clock::now()),
      stripe_capacity_(std::max<size_t>(
          1, options.capacity / std::max<size_t>(1, options.stripes))) {
  const size_t stripe_count = std::max<size_t>(1, options.stripes);
  stripes_.reserve(stripe_count);
  for (size_t i = 0; i < stripe_count; ++i) {
    stripes_.push_back(std::make_unique<Stripe>());
  }
}

Span Tracer::StartSpan(Tracer* tracer, std::string name) {
  if (tracer == nullptr) return Span();
  const AmbientSpan* parent = AmbientTop(tracer);
  const uint64_t trace_id =
      parent != nullptr ? parent->trace_id : tracer->NewTraceId();
  const uint64_t parent_id = parent != nullptr ? parent->span_id : 0;
  return StartSpanInTrace(tracer, std::move(name), trace_id, parent_id);
}

Span Tracer::StartSpanInTrace(Tracer* tracer, std::string name,
                              uint64_t trace_id, uint64_t parent_id) {
  if (tracer == nullptr) return Span();
  SpanRecord record;
  record.trace_id = trace_id;
  record.span_id = tracer->NewTraceId();
  record.parent_id = parent_id;
  record.name = std::move(name);
  record.start_ns = tracer->NowNs();
  record.tid = ThreadIndex();
  AmbientPush(tracer, record.trace_id, record.span_id);
  return Span(tracer, std::move(record));
}

void Tracer::Record(SpanRecord record) {
  Stripe& stripe = StripeForThisThread();
  std::lock_guard<std::mutex> lock(stripe.mu);
  if (stripe.ring.size() < stripe_capacity_) {
    stripe.ring.push_back(std::move(record));
    stripe.count = stripe.ring.size();
    stripe.next = stripe.ring.size() % stripe_capacity_;
  } else {
    stripe.ring[stripe.next] = std::move(record);
    stripe.next = (stripe.next + 1) % stripe_capacity_;
  }
}

int64_t Tracer::NowNs() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

std::vector<SpanRecord> Tracer::Spans() const {
  std::vector<SpanRecord> out;
  for (const auto& stripe : stripes_) {
    std::lock_guard<std::mutex> lock(stripe->mu);
    for (const SpanRecord& record : stripe->ring) out.push_back(record);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanRecord& a, const SpanRecord& b) {
                     if (a.start_ns != b.start_ns) return a.start_ns < b.start_ns;
                     return a.span_id < b.span_id;
                   });
  return out;
}

std::vector<SpanRecord> Tracer::TraceSpans(uint64_t trace_id) const {
  std::vector<SpanRecord> all = Spans();
  std::vector<SpanRecord> out;
  for (SpanRecord& record : all) {
    if (record.trace_id == trace_id) out.push_back(std::move(record));
  }
  return out;
}

std::string Tracer::TraceEventJson(const std::vector<SpanRecord>& spans) {
  // Complete-event ("ph":"X") form of the chrome://tracing trace-event
  // format; ts/dur are microseconds. Field order is fixed for golden tests.
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"";
    JsonEscapeInto(span.name, &out);
    out += StrFormat(
        "\",\"cat\":\"edgeshed\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":1,\"tid\":%d,\"id\":\"%llx\"",
        static_cast<double>(span.start_ns) / 1e3,
        static_cast<double>(span.duration_ns) / 1e3, span.tid,
        static_cast<unsigned long long>(span.trace_id));
    out += ",\"args\":{";
    out += StrFormat("\"span_id\":\"%llx\",\"parent_id\":\"%llx\"",
                     static_cast<unsigned long long>(span.span_id),
                     static_cast<unsigned long long>(span.parent_id));
    for (const auto& [key, value] : span.annotations) {
      out += ",\"";
      JsonEscapeInto(key, &out);
      out += "\":\"";
      JsonEscapeInto(value, &out);
      out += "\"";
    }
    out += "}}";
  }
  out += "]}";
  return out;
}

int Tracer::ThreadIndex() {
  static std::atomic<int> next_index{0};
  thread_local int index = next_index.fetch_add(1, std::memory_order_relaxed);
  return index;
}

Tracer::Stripe& Tracer::StripeForThisThread() {
  return *stripes_[static_cast<size_t>(ThreadIndex()) % stripes_.size()];
}

}  // namespace edgeshed::obs
