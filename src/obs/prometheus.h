#ifndef EDGESHED_OBS_PROMETHEUS_H_
#define EDGESHED_OBS_PROMETHEUS_H_

#include <string>

#include "obs/metrics.h"

namespace edgeshed::obs {

/// Renders a metrics snapshot in the Prometheus text exposition format
/// (version 0.0.4), suitable for a `/metrics` endpoint.
///
/// Mapping:
///  * every name is prefixed `edgeshed_` and dots become underscores
///    (`scheduler.jobs_done` -> `edgeshed_scheduler_jobs_done_total`);
///  * counters render as `counter` with a `_total` suffix;
///  * gauges render as `gauge`;
///  * latency series render as a cumulative `histogram` — `_bucket{le="..."}`
///    lines over the registry's log2-microsecond buckets (only buckets with
///    observations are emitted, plus `+Inf`), then `_sum` and `_count` —
///    followed by `_min_seconds`/`_max_seconds` gauges. An empty series
///    emits only the `+Inf` bucket, `_sum 0`, `_count 0`, and *no* min/max
///    (count==0 is the explicit "no data" signal; see LatencySnapshot).
///
/// Output is sorted by instrument name (inherited from MetricsSnapshot) so
/// renderings are byte-stable for golden tests.
std::string PrometheusText(const MetricsSnapshot& snapshot);

/// Convenience overload: snapshots `registry` and renders it.
std::string PrometheusText(const MetricsRegistry& registry);

}  // namespace edgeshed::obs

#endif  // EDGESHED_OBS_PROMETHEUS_H_
