#ifndef EDGESHED_OBS_METRICS_H_
#define EDGESHED_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace edgeshed::obs {

/// Summary of one latency series. `min_seconds`/`max_seconds` are meaningful
/// only while `count > 0`; an empty series reports count == 0 and consumers
/// (TextSnapshot, the Prometheus exporter) must not render min/max for it —
/// the old behaviour of defaulting them to 0.0 made an empty series
/// indistinguishable from one that observed exact zeros.
struct LatencySnapshot {
  uint64_t count = 0;
  double sum_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;

  double MeanSeconds() const {
    return count == 0 ? 0.0 : sum_seconds / static_cast<double>(count);
  }

  /// Folds `other` into this snapshot. Empty sides contribute nothing, so
  /// merging never manufactures a spurious min of 0.0: the merge of an empty
  /// and a non-empty snapshot equals the non-empty one.
  void Merge(const LatencySnapshot& other);
};

/// Monotonically increasing event counter. Updates and reads are single
/// relaxed atomics — safe from any thread, no lock on the hot path.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Instantaneous int64 value (queue depth, bytes resident). Lock-free.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Latency series: count/sum/min/max plus log2(microsecond) buckets, all
/// updated lock-free (relaxed atomics; min/max/sum via CAS loops). A
/// concurrent Snapshot may observe a record mid-flight — count is read first,
/// so the snapshot never reports more observations than its sum covers by a
/// wide margin; metrics consumers tolerate that slack.
class LatencySeries {
 public:
  /// Bucket b counts observations with LatencyBucket(seconds) == b, i.e.
  /// durations in [2^b, 2^(b+1)) microseconds (b = 0 also absorbs anything
  /// sub-microsecond). 64 buckets cover every representable duration.
  static constexpr int kNumBuckets = 64;

  LatencySeries();

  void Record(double seconds);
  LatencySnapshot Snapshot() const;

  /// Per-bucket observation counts (size kNumBuckets).
  std::vector<uint64_t> BucketCounts() const;

  /// The log2(microsecond) bucket a latency observation falls in; exposed so
  /// tests, the text snapshot, and the Prometheus exporter agree.
  static int64_t LatencyBucket(double seconds);

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;  // +inf until the first observation
  std::atomic<double> max_;  // -inf until the first observation
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
};

/// Approximate quantile (q in [0, 1]) over a log2-microsecond bucket
/// histogram (LatencySeries::BucketCounts): the upper bound, in seconds, of
/// the bucket holding the q-th observation. Exact to within one power of
/// two, which is what load-test percentiles need from a lock-free
/// histogram. Returns 0 for an empty histogram.
double LatencyQuantileSeconds(const std::vector<uint64_t>& buckets, double q);

/// Full point-in-time copy of a registry, for exporters. Every section is
/// sorted by instrument name so renderings are stable.
struct MetricsSnapshot {
  struct LatencyEntry {
    std::string name;
    LatencySnapshot stats;
    std::vector<uint64_t> buckets;  // size LatencySeries::kNumBuckets
  };
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, int64_t>> gauges;
  std::vector<LatencyEntry> latencies;
};

/// Thread-safe metrics registry shared by the service components (GraphStore,
/// JobScheduler, the CLI `service` mode) and exported by src/obs/.
///
/// Two API layers:
///  * **Typed handles** — `GetCounter`/`GetGauge`/`GetLatency` resolve a name
///    to a stable instrument pointer once (one map lookup under the registry
///    mutex); every subsequent update through the handle is lock-free
///    atomics. This is the hot-path API: resolve at construction, update per
///    event.
///  * **String-keyed shims** — `IncrementCounter("store.hit")` etc. resolve
///    on every call and delegate to the handle. Kept so existing callers and
///    one-off call sites stay one line.
///
/// Instruments are created lazily on first *write* (or Get*); reads of absent
/// names return zero without creating anything. Handles stay valid for the
/// registry's lifetime. All methods are safe to call concurrently.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Typed-instrument resolution: find-or-create under the registry mutex,
  /// returning a pointer that remains valid (and lock-free to update) for
  /// the registry's lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  LatencySeries* GetLatency(const std::string& name);

  // String-keyed shims over the typed handles.
  void IncrementCounter(const std::string& name, uint64_t delta = 1) {
    GetCounter(name)->Increment(delta);
  }
  uint64_t CounterValue(const std::string& name) const;

  void SetGauge(const std::string& name, int64_t value) {
    GetGauge(name)->Set(value);
  }
  void AddToGauge(const std::string& name, int64_t delta) {
    GetGauge(name)->Add(delta);
  }
  int64_t GaugeValue(const std::string& name) const;

  /// Records one observation of `seconds` into the series `name`.
  void RecordLatency(const std::string& name, double seconds) {
    GetLatency(name)->Record(seconds);
  }
  LatencySnapshot LatencyValue(const std::string& name) const;

  static int64_t LatencyBucket(double seconds) {
    return LatencySeries::LatencyBucket(seconds);
  }

  /// Human-readable dump of every instrument, sorted by name:
  ///   counter scheduler.jobs_done 32
  ///   gauge   store.bytes_resident 183500
  ///   latency scheduler.run_seconds count=32 mean=0.004211s max=0.009120s
  /// An empty latency series prints `count=0` with no mean/min/max.
  std::string TextSnapshot() const;

  /// Full copy for exporters (obs::PrometheusText), sorted by name.
  MetricsSnapshot Snapshot() const;

  /// Names of all registered counters (testing / introspection).
  std::vector<std::string> CounterNames() const;

 private:
  // unique_ptr nodes give instrument pointers that survive rehash/rebalance;
  // the mutex guards only the maps — never an instrument update.
  mutable std::mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<LatencySeries>> latencies_;
};

}  // namespace edgeshed::obs

#endif  // EDGESHED_OBS_METRICS_H_
