#ifndef EDGESHED_OBS_TRACER_H_
#define EDGESHED_OBS_TRACER_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace edgeshed::obs {

class Tracer;

/// One finished span as stored in the tracer's ring buffer. Durations are
/// steady-clock nanoseconds relative to the tracer's epoch (its construction
/// time), so they are monotone and comparable across threads.
struct SpanRecord {
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_id = 0;  // 0 = root
  std::string name;
  int64_t start_ns = 0;
  int64_t duration_ns = 0;
  int tid = 0;  // small per-thread index, not an OS thread id
  std::vector<std::pair<std::string, std::string>> annotations;
};

/// RAII span handle. Created via Tracer::StartSpan (child of the thread's
/// current span, if any) or Tracer::StartSpanInTrace (explicit parentage,
/// for crossing thread boundaries). While alive it is the thread's ambient
/// current span, so nested StartSpan calls become its children. `End()` (or
/// destruction) stamps the duration and commits the record to the ring
/// buffer.
///
/// A default-constructed or null-tracer Span is a no-op: every method is a
/// cheap early-out, which is what keeps the hot path near-free when no
/// tracer is attached.
class Span {
 public:
  Span() = default;
  Span(Span&& other) noexcept { *this = std::move(other); }
  Span& operator=(Span&& other) noexcept;
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  /// Attaches a key=value annotation (rendered into trace-event `args`).
  void Annotate(std::string key, std::string value);

  /// Stops the clock and commits the span. Idempotent.
  void End();

  bool ok() const { return tracer_ != nullptr; }
  uint64_t trace_id() const { return record_.trace_id; }
  uint64_t span_id() const { return record_.span_id; }

 private:
  friend class Tracer;
  Span(Tracer* tracer, SpanRecord record)
      : tracer_(tracer), record_(std::move(record)) {}

  Tracer* tracer_ = nullptr;  // null = inert
  SpanRecord record_;
};

struct TracerOptions {
  /// Total finished-span capacity across all stripes; oldest spans in a
  /// stripe are overwritten once it wraps.
  size_t capacity = 4096;
  /// Number of independently locked ring-buffer stripes; writers pick a
  /// stripe by thread index so concurrent commits rarely contend.
  size_t stripes = 8;
};

/// In-process tracer: hands out trace ids, scopes RAII spans, and retains
/// the most recent finished spans in a fixed-size lock-striped ring buffer.
/// Export via TraceEventJson() (chrome://tracing "trace event" format — load
/// the output at chrome://tracing or https://ui.perfetto.dev).
///
/// Ambient context: each thread keeps a stack of active spans per tracer;
/// StartSpan parents onto the top of that stack. To continue a trace on
/// *another* thread (e.g. a scheduler worker picking up a queued job), pass
/// the ids explicitly via StartSpanInTrace.
///
/// All methods are thread-safe. A null `Tracer*` is the "tracing off" state
/// throughout the codebase: Tracer::StartSpan(nullptr, ...) returns an inert
/// span without touching any shared state.
class Tracer {
 public:
  explicit Tracer(TracerOptions options = {});

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Allocates a fresh trace id (never 0).
  uint64_t NewTraceId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }

  /// Starts a span parented onto the calling thread's current span for this
  /// tracer (a new root trace if there is none). Null-safe: a null tracer
  /// yields an inert span.
  static Span StartSpan(Tracer* tracer, std::string name);

  /// Starts a span with explicit trace/parent ids — the cross-thread hook.
  /// `parent_id` 0 makes it the trace's root span.
  static Span StartSpanInTrace(Tracer* tracer, std::string name,
                               uint64_t trace_id, uint64_t parent_id);

  /// Commits an externally assembled record (used to synthesize spans whose
  /// start/end were observed as timestamps rather than RAII scopes, e.g.
  /// queue-wait intervals and kernel phase stats).
  void Record(SpanRecord record);

  /// Nanoseconds since this tracer's epoch (steady clock).
  int64_t NowNs() const;

  /// Snapshot of retained spans, oldest first within each stripe, sorted by
  /// start time overall.
  std::vector<SpanRecord> Spans() const;

  /// Spans of one trace, sorted by start time.
  std::vector<SpanRecord> TraceSpans(uint64_t trace_id) const;

  /// chrome://tracing trace-event JSON for the given spans. Field order is
  /// fixed (name, cat, ph, ts, dur, pid, tid, id, args) so output is stable
  /// for golden tests.
  static std::string TraceEventJson(const std::vector<SpanRecord>& spans);

  /// TraceEventJson over every retained span.
  std::string TraceEventJson() const { return TraceEventJson(Spans()); }

  /// Small dense index for the calling thread (used as the trace-event tid).
  static int ThreadIndex();

 private:
  struct Stripe {
    mutable std::mutex mu;
    std::vector<SpanRecord> ring;
    size_t next = 0;   // next write position
    size_t count = 0;  // valid records (<= ring.size())
  };

  Stripe& StripeForThisThread();

  const std::chrono::steady_clock::time_point epoch_;
  const size_t stripe_capacity_;
  std::vector<std::unique_ptr<Stripe>> stripes_;
  std::atomic<uint64_t> next_id_{1};
};

}  // namespace edgeshed::obs

#endif  // EDGESHED_OBS_TRACER_H_
