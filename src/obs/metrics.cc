#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/strings.h"

namespace edgeshed::obs {
namespace {

// fetch_add on std::atomic<double> is C++20 but spottily implemented; a CAS
// loop is portable and just as lock-free where it matters.
void AtomicAdd(std::atomic<double>* target, double delta) {
  double cur = target->load(std::memory_order_relaxed);
  while (!target->compare_exchange_weak(cur, cur + delta,
                                        std::memory_order_relaxed)) {
  }
}

void AtomicMin(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value < cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

void AtomicMax(std::atomic<double>* target, double value) {
  double cur = target->load(std::memory_order_relaxed);
  while (value > cur && !target->compare_exchange_weak(
                            cur, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

void LatencySnapshot::Merge(const LatencySnapshot& other) {
  if (other.count == 0) return;
  if (count == 0) {
    *this = other;
    return;
  }
  count += other.count;
  sum_seconds += other.sum_seconds;
  min_seconds = std::min(min_seconds, other.min_seconds);
  max_seconds = std::max(max_seconds, other.max_seconds);
}

LatencySeries::LatencySeries()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void LatencySeries::Record(double seconds) {
  AtomicAdd(&sum_, seconds);
  AtomicMin(&min_, seconds);
  AtomicMax(&max_, seconds);
  int64_t bucket = LatencyBucket(seconds);
  bucket = std::clamp<int64_t>(bucket, 0, kNumBuckets - 1);
  buckets_[static_cast<size_t>(bucket)].fetch_add(1, std::memory_order_relaxed);
  // Count last: a snapshot that reads count first can only under-report, so
  // it never renders min/max for a series whose first Record is mid-flight.
  count_.fetch_add(1, std::memory_order_release);
}

LatencySnapshot LatencySeries::Snapshot() const {
  LatencySnapshot snap;
  snap.count = count_.load(std::memory_order_acquire);
  if (snap.count == 0) return snap;
  snap.sum_seconds = sum_.load(std::memory_order_relaxed);
  snap.min_seconds = min_.load(std::memory_order_relaxed);
  snap.max_seconds = max_.load(std::memory_order_relaxed);
  return snap;
}

std::vector<uint64_t> LatencySeries::BucketCounts() const {
  std::vector<uint64_t> counts(kNumBuckets, 0);
  for (int b = 0; b < kNumBuckets; ++b) {
    counts[static_cast<size_t>(b)] =
        buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
  }
  return counts;
}

int64_t LatencySeries::LatencyBucket(double seconds) {
  const double micros = seconds * 1e6;
  if (!(micros > 1.0)) return 0;  // also catches NaN and negatives
  return static_cast<int64_t>(std::floor(std::log2(micros)));
}

double LatencyQuantileSeconds(const std::vector<uint64_t>& buckets,
                              double q) {
  uint64_t total = 0;
  for (uint64_t c : buckets) total += c;
  if (total == 0) return 0.0;
  const double clamped = std::clamp(q, 0.0, 1.0);
  uint64_t target = static_cast<uint64_t>(std::ceil(clamped * total));
  if (target == 0) target = 1;
  uint64_t cumulative = 0;
  for (size_t b = 0; b < buckets.size(); ++b) {
    cumulative += buckets[b];
    if (cumulative >= target) {
      // Bucket b spans [2^b, 2^(b+1)) microseconds; report the upper edge.
      return std::exp2(static_cast<double>(b + 1)) * 1e-6;
    }
  }
  return std::exp2(static_cast<double>(buckets.size())) * 1e-6;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

LatencySeries* MetricsRegistry::GetLatency(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = latencies_[name];
  if (slot == nullptr) slot = std::make_unique<LatencySeries>();
  return slot.get();
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Value();
}

int64_t MetricsRegistry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second->Value();
}

LatencySnapshot MetricsRegistry::LatencyValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = latencies_.find(name);
  return it == latencies_.end() ? LatencySnapshot{} : it->second->Snapshot();
}

std::string MetricsRegistry::TextSnapshot() const {
  const MetricsSnapshot snap = Snapshot();
  std::string out;
  for (const auto& [name, value] : snap.counters) {
    out += StrFormat("counter %s %llu\n", name.c_str(),
                             static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snap.gauges) {
    out += StrFormat("gauge   %s %lld\n", name.c_str(),
                             static_cast<long long>(value));
  }
  for (const auto& entry : snap.latencies) {
    if (entry.stats.count == 0) {
      out += StrFormat("latency %s count=0\n", entry.name.c_str());
      continue;
    }
    out += StrFormat(
        "latency %s count=%llu mean=%.6fs min=%.6fs max=%.6fs\n",
        entry.name.c_str(), static_cast<unsigned long long>(entry.stats.count),
        entry.stats.MeanSeconds(), entry.stats.min_seconds,
        entry.stats.max_seconds);
  }
  return out;
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->Value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->Value());
  }
  snap.latencies.reserve(latencies_.size());
  for (const auto& [name, series] : latencies_) {
    MetricsSnapshot::LatencyEntry entry;
    entry.name = name;
    entry.stats = series->Snapshot();
    entry.buckets = series->BucketCounts();
    snap.latencies.push_back(std::move(entry));
  }
  return snap;
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::vector<std::string> names;
  std::lock_guard<std::mutex> lock(mu_);
  names.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) names.push_back(name);
  return names;
}

}  // namespace edgeshed::obs
