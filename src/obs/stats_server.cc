#include "obs/stats_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "common/strings.h"

namespace edgeshed::obs {
namespace {

constexpr int kPollIntervalMs = 100;
constexpr size_t kMaxRequestBytes = 8192;

std::string_view ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Error";
  }
}

void SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n <= 0) return;  // peer went away; nothing useful to do
    sent += static_cast<size_t>(n);
  }
}

}  // namespace

StatsServer::StatsServer(StatsServerOptions options)
    : options_(std::move(options)) {}

StatsServer::~StatsServer() { Stop(); }

void StatsServer::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status StatsServer::Start() {
  if (thread_.joinable()) {
    return Status::FailedPrecondition("stats server already started");
  }
  if (handlers_.find("/healthz") == handlers_.end()) {
    handlers_["/healthz"] = [] { return HttpResponse{200, "text/plain; charset=utf-8", "ok\n"}; };
  }

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(StrFormat("socket(): %s", std::strerror(errno)));
  }
  int reuse = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status status = Status::IOError(
        StrFormat("bind(127.0.0.1:%d): %s", options_.port,
                  std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const Status status =
        Status::IOError(StrFormat("listen(): %s", std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }

  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  } else {
    port_ = options_.port;
  }

  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void StatsServer::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void StatsServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready <= 0) continue;  // timeout (stop-flag check) or transient error
    const int client_fd = ::accept(listen_fd_, nullptr, nullptr);
    if (client_fd < 0) continue;
    ServeConnection(client_fd);
    ::close(client_fd);
  }
}

void StatsServer::ServeConnection(int client_fd) {
  // Read until the end of the request head (or the size cap). GET requests
  // have no body, so the blank line terminates everything we care about.
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    const ssize_t n = ::recv(client_fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    request.append(buf, static_cast<size_t>(n));
  }

  // Request line: METHOD SP PATH SP VERSION.
  const size_t line_end = request.find_first_of("\r\n");
  const std::string_view line =
      std::string_view(request).substr(0, line_end == std::string::npos
                                              ? request.size()
                                              : line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
  const std::string_view method =
      sp1 == std::string_view::npos ? line : line.substr(0, sp1);
  std::string_view target =
      sp2 == std::string_view::npos
          ? std::string_view()
          : line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Ignore any query string; handlers key on the bare path.
  const size_t query = target.find('?');
  if (query != std::string_view::npos) target = target.substr(0, query);

  HttpResponse response;
  if (method != "GET") {
    response = HttpResponse{405, "text/plain; charset=utf-8",
                            "method not allowed\n"};
  } else {
    const auto it = handlers_.find(std::string(target));
    if (it == handlers_.end()) {
      response =
          HttpResponse{404, "text/plain; charset=utf-8", "not found\n"};
    } else {
      response = it->second();
    }
  }

  std::string head = StrFormat(
      "HTTP/1.1 %d %.*s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      response.status, static_cast<int>(ReasonPhrase(response.status).size()),
      ReasonPhrase(response.status).data(), response.content_type.c_str(),
      response.body.size());
  SendAll(client_fd, head);
  SendAll(client_fd, response.body);
}

}  // namespace edgeshed::obs
