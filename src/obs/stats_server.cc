#include "obs/stats_server.h"

#include <poll.h>

#include <cerrno>
#include <utility>

#include "common/strings.h"
#include "net/socket.h"

namespace edgeshed::obs {
namespace {

constexpr int kPollIntervalMs = 100;
constexpr size_t kMaxRequestBytes = 8192;

std::string_view ReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    default:
      return "Error";
  }
}

}  // namespace

StatsServer::StatsServer(StatsServerOptions options)
    : options_(std::move(options)) {}

StatsServer::~StatsServer() { Stop(); }

void StatsServer::Handle(std::string path, Handler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status StatsServer::Start() {
  if (thread_.joinable()) {
    return Status::FailedPrecondition("stats server already started");
  }
  if (handlers_.find("/healthz") == handlers_.end()) {
    handlers_["/healthz"] = [] { return HttpResponse{200, "text/plain; charset=utf-8", "ok\n"}; };
  }

  net::ListenOptions listen_options;
  listen_options.port = options_.port;
  listen_options.backlog = options_.backlog;
  listen_options.loopback_only = true;
  auto listen_fd = net::ListenTcp(listen_options);
  if (!listen_fd.ok()) return listen_fd.status();
  listen_fd_ = *listen_fd;

  auto bound = net::BoundTcpPort(listen_fd_);
  port_ = bound.ok() ? *bound : options_.port;

  stop_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void StatsServer::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
  net::CloseFd(listen_fd_);
  listen_fd_ = -1;
}

void StatsServer::AcceptLoop() {
  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = ::poll(&pfd, 1, kPollIntervalMs);
    if (ready <= 0) continue;  // timeout (stop-flag check) or transient error
    auto client_fd = net::AcceptConnection(listen_fd_);
    if (!client_fd.ok() || *client_fd < 0) continue;
    ServeConnection(*client_fd);
    net::CloseFd(*client_fd);
  }
}

void StatsServer::ServeConnection(int client_fd) {
  // Read until the end of the request head (or the size cap). GET requests
  // have no body, so the blank line terminates everything we care about.
  std::string request;
  char buf[1024];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos &&
         request.find("\n\n") == std::string::npos) {
    auto n = net::RecvSome(client_fd, buf, sizeof(buf));
    if (!n.ok() || *n == 0) break;
    request.append(buf, *n);
  }

  // Request line: METHOD SP PATH SP VERSION.
  const size_t line_end = request.find_first_of("\r\n");
  const std::string_view line =
      std::string_view(request).substr(0, line_end == std::string::npos
                                              ? request.size()
                                              : line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string_view::npos
                         ? std::string_view::npos
                         : line.find(' ', sp1 + 1);
  const std::string_view method =
      sp1 == std::string_view::npos ? line : line.substr(0, sp1);
  std::string_view target =
      sp2 == std::string_view::npos
          ? std::string_view()
          : line.substr(sp1 + 1, sp2 - sp1 - 1);
  // Ignore any query string; handlers key on the bare path.
  const size_t query = target.find('?');
  if (query != std::string_view::npos) target = target.substr(0, query);

  HttpResponse response;
  if (method != "GET") {
    response = HttpResponse{405, "text/plain; charset=utf-8",
                            "method not allowed\n"};
  } else {
    const auto it = handlers_.find(std::string(target));
    if (it == handlers_.end()) {
      response =
          HttpResponse{404, "text/plain; charset=utf-8", "not found\n"};
    } else {
      response = it->second();
    }
  }

  std::string head = StrFormat(
      "HTTP/1.1 %d %.*s\r\nContent-Type: %s\r\nContent-Length: %zu\r\n"
      "Connection: close\r\n\r\n",
      response.status, static_cast<int>(ReasonPhrase(response.status).size()),
      ReasonPhrase(response.status).data(), response.content_type.c_str(),
      response.body.size());
  // Best effort: a peer that went away mid-response costs nothing.
  if (net::SendAll(client_fd, head).ok()) {
    [[maybe_unused]] Status ignored = net::SendAll(client_fd, response.body);
  }
}

}  // namespace edgeshed::obs
