#include "obs/prometheus.h"

#include <cmath>

#include "common/strings.h"

namespace edgeshed::obs {
namespace {

/// `scheduler.jobs_done` -> `edgeshed_scheduler_jobs_done`; any character
/// outside [a-zA-Z0-9_] becomes '_' to satisfy the metric-name grammar.
std::string PromName(const std::string& name) {
  std::string out = "edgeshed_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

/// Upper bound of log2-microsecond bucket `b` in seconds: bucket b holds
/// durations in [2^b, 2^(b+1)) microseconds.
double BucketUpperSeconds(int b) {
  return std::ldexp(1.0, b + 1) / 1e6;
}

void AppendLatency(const MetricsSnapshot::LatencyEntry& entry,
                   std::string* out) {
  const std::string base = PromName(entry.name);
  *out += StrFormat("# TYPE %s histogram\n", base.c_str());
  uint64_t cumulative = 0;
  for (int b = 0; b < LatencySeries::kNumBuckets; ++b) {
    const uint64_t in_bucket = entry.buckets[static_cast<size_t>(b)];
    if (in_bucket == 0) continue;
    cumulative += in_bucket;
    *out += StrFormat("%s_bucket{le=\"%g\"} %llu\n", base.c_str(),
                      BucketUpperSeconds(b),
                      static_cast<unsigned long long>(cumulative));
  }
  *out += StrFormat("%s_bucket{le=\"+Inf\"} %llu\n", base.c_str(),
                    static_cast<unsigned long long>(entry.stats.count));
  *out += StrFormat("%s_sum %.9g\n", base.c_str(), entry.stats.sum_seconds);
  *out += StrFormat("%s_count %llu\n", base.c_str(),
                    static_cast<unsigned long long>(entry.stats.count));
  if (entry.stats.count > 0) {
    // min/max are auxiliary gauges (no native histogram slot); emitted only
    // when at least one observation exists so an empty series is
    // unambiguous.
    *out += StrFormat("# TYPE %s_min_seconds gauge\n%s_min_seconds %.9g\n",
                      base.c_str(), base.c_str(), entry.stats.min_seconds);
    *out += StrFormat("# TYPE %s_max_seconds gauge\n%s_max_seconds %.9g\n",
                      base.c_str(), base.c_str(), entry.stats.max_seconds);
  }
}

}  // namespace

std::string PrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    const std::string prom = PromName(name);
    out += StrFormat("# TYPE %s_total counter\n%s_total %llu\n", prom.c_str(),
                     prom.c_str(), static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : snapshot.gauges) {
    const std::string prom = PromName(name);
    out += StrFormat("# TYPE %s gauge\n%s %lld\n", prom.c_str(), prom.c_str(),
                     static_cast<long long>(value));
  }
  for (const auto& entry : snapshot.latencies) AppendLatency(entry, &out);
  return out;
}

std::string PrometheusText(const MetricsRegistry& registry) {
  return PrometheusText(registry.Snapshot());
}

}  // namespace edgeshed::obs
