#include "graph/graph_builder.h"

#include <algorithm>
#include <utility>

#include "common/parallel.h"

namespace edgeshed::graph {

namespace {

/// Order-preserving parallel compaction: keeps edges[i] where keep(i) is
/// true. Works in three passes (per-chunk keep counts, a tiny serial prefix
/// sum over chunks, parallel scatter into the exact output slots), so the
/// result is identical to a serial std::remove_if for every chunk layout.
template <typename KeepFn>
std::vector<Edge> CompactEdges(const std::vector<Edge>& edges, KeepFn keep) {
  const uint64_t m = edges.size();
  constexpr uint64_t kMinPerChunk = uint64_t{1} << 14;
  const uint64_t threads = static_cast<uint64_t>(DefaultThreadCount());
  const uint64_t chunks =
      std::min<uint64_t>(threads, std::max<uint64_t>(1, m / kMinPerChunk));
  if (chunks <= 1) {
    std::vector<Edge> out;
    out.reserve(m);
    for (uint64_t i = 0; i < m; ++i) {
      if (keep(i)) out.push_back(edges[i]);
    }
    return out;
  }
  std::vector<uint64_t> bounds(chunks + 1);
  for (uint64_t c = 0; c <= chunks; ++c) bounds[c] = m * c / chunks;
  std::vector<uint64_t> kept_before(chunks + 1, 0);
  ParallelForEach(
      0, chunks,
      [&](uint64_t c) {
        uint64_t count = 0;
        for (uint64_t i = bounds[c]; i < bounds[c + 1]; ++i) {
          if (keep(i)) ++count;
        }
        kept_before[c + 1] = count;
      },
      0, /*grain=*/1);
  for (uint64_t c = 0; c < chunks; ++c) kept_before[c + 1] += kept_before[c];
  std::vector<Edge> out(kept_before[chunks]);
  ParallelForEach(
      0, chunks,
      [&](uint64_t c) {
        uint64_t cursor = kept_before[c];
        for (uint64_t i = bounds[c]; i < bounds[c + 1]; ++i) {
          if (keep(i)) out[cursor++] = edges[i];
        }
      },
      0, /*grain=*/1);
  return out;
}

}  // namespace

void GraphBuilder::ReserveNodes(NodeId num_nodes) {
  max_node_bound_ = std::max(max_node_bound_, num_nodes);
}

void GraphBuilder::ReserveEdges(size_t num_edges) {
  edges_.reserve(num_edges);
}

void GraphBuilder::AddEdge(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  max_node_bound_ = std::max(max_node_bound_, static_cast<NodeId>(v + 1));
  edges_.push_back(Edge{u, v});
}

Graph GraphBuilder::Build() {
  std::vector<Edge> raw = std::move(edges_);
  edges_.clear();
  // Drop self-loops, sort, then collapse parallel edges — each stage
  // parallel and order-stable, so the cleaned edge list is identical for
  // every thread count.
  std::vector<Edge> edges =
      CompactEdges(raw, [&raw](uint64_t i) { return raw[i].u != raw[i].v; });
  raw.clear();
  raw.shrink_to_fit();
  ParallelSort(edges.begin(), edges.end());
  std::vector<Edge> unique_edges = CompactEdges(
      edges, [&edges](uint64_t i) { return i == 0 || !(edges[i] == edges[i - 1]); });
  auto graph = Graph::FromEdges(max_node_bound_, std::move(unique_edges));
  EDGESHED_CHECK(graph.ok()) << graph.status().ToString();
  max_node_bound_ = 0;
  return std::move(graph).value();
}

}  // namespace edgeshed::graph
