#include "graph/graph_builder.h"

#include <algorithm>
#include <utility>

namespace edgeshed::graph {

void GraphBuilder::ReserveNodes(NodeId num_nodes) {
  max_node_bound_ = std::max(max_node_bound_, num_nodes);
}

void GraphBuilder::ReserveEdges(size_t num_edges) {
  edges_.reserve(num_edges);
}

void GraphBuilder::AddEdge(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  max_node_bound_ = std::max(max_node_bound_, static_cast<NodeId>(v + 1));
  edges_.push_back(Edge{u, v});
}

Graph GraphBuilder::Build() {
  std::vector<Edge> edges = std::move(edges_);
  edges_.clear();
  // Drop self-loops, then collapse parallel edges.
  edges.erase(std::remove_if(edges.begin(), edges.end(),
                             [](const Edge& e) { return e.u == e.v; }),
              edges.end());
  std::sort(edges.begin(), edges.end());
  edges.erase(std::unique(edges.begin(), edges.end()), edges.end());
  auto graph = Graph::FromEdges(max_node_bound_, std::move(edges));
  EDGESHED_CHECK(graph.ok()) << graph.status().ToString();
  max_node_bound_ = 0;
  return std::move(graph).value();
}

}  // namespace edgeshed::graph
