#include "graph/binary_io.h"

#include <cstring>
#include <fstream>
#include <vector>

#include "common/crc32.h"

namespace edgeshed::graph {

namespace {

constexpr char kMagicV1[8] = {'E', 'D', 'G', 'S', 'H', 'E', 'D', '1'};
constexpr char kMagicV2[8] = {'E', 'D', 'G', 'S', 'H', 'E', 'D', '2'};

/// Serializer that folds every byte after the magic into a CRC32 so the v2
/// footer can be emitted without a second pass over the edge section.
class ChecksummingWriter {
 public:
  explicit ChecksummingWriter(std::ofstream& out) : out_(out) {}

  void PutU64(uint64_t value) {
    char bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
    }
    Write(bytes, 8);
  }

  void PutU32(uint32_t value) {
    char bytes[4];
    for (int i = 0; i < 4; ++i) {
      bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
    }
    Write(bytes, 4);
  }

  uint32_t crc() const { return Crc32Finalize(state_); }

 private:
  void Write(const char* bytes, size_t n) {
    out_.write(bytes, static_cast<std::streamsize>(n));
    state_ = Crc32Update(state_, bytes, n);
  }

  std::ofstream& out_;
  uint32_t state_ = kCrc32Init;
};

/// Mirror of ChecksummingWriter for loads: folds every byte read into the
/// CRC so the v2 footer can be verified without re-reading the file.
class ChecksummingReader {
 public:
  explicit ChecksummingReader(std::ifstream& in) : in_(in) {}

  bool GetU64(uint64_t* value) {
    char bytes[8];
    if (!Read(bytes, 8)) return false;
    *value = 0;
    for (int i = 0; i < 8; ++i) {
      *value |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[i]))
                << (8 * i);
    }
    return true;
  }

  bool GetU32(uint32_t* value) {
    char bytes[4];
    if (!Read(bytes, 4)) return false;
    *value = 0;
    for (int i = 0; i < 4; ++i) {
      *value |= static_cast<uint32_t>(static_cast<unsigned char>(bytes[i]))
                << (8 * i);
    }
    return true;
  }

  uint32_t crc() const { return Crc32Finalize(state_); }

 private:
  bool Read(char* bytes, size_t n) {
    if (!in_.read(bytes, static_cast<std::streamsize>(n))) return false;
    state_ = Crc32Update(state_, bytes, n);
    return true;
  }

  std::ifstream& in_;
  uint32_t state_ = kCrc32Init;
};

/// Reads a u32 WITHOUT checksumming it (the footer itself).
bool GetRawU32(std::ifstream& in, uint32_t* value) {
  char bytes[4];
  if (!in.read(bytes, 4)) return false;
  *value = 0;
  for (int i = 0; i < 4; ++i) {
    *value |= static_cast<uint32_t>(static_cast<unsigned char>(bytes[i]))
              << (8 * i);
  }
  return true;
}

}  // namespace

Status SaveBinaryGraph(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.write(kMagicV2, sizeof(kMagicV2));
  ChecksummingWriter writer(out);
  writer.PutU64(graph.NumNodes());
  writer.PutU64(graph.NumEdges());
  for (const Edge& e : graph.edges()) {
    writer.PutU32(e.u);
    writer.PutU32(e.v);
  }
  // Footer: CRC32 of everything between the magic and here, so a bit flip
  // anywhere in counts or edges fails the load instead of silently shipping
  // a corrupted graph.
  const uint32_t crc = writer.crc();
  char footer[4];
  for (int i = 0; i < 4; ++i) {
    footer[i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  out.write(footer, 4);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<Graph> LoadBinaryGraph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  char magic[8];
  if (!in.read(magic, sizeof(magic))) {
    return Status::InvalidArgument("not an edgeshed binary graph: " + path);
  }
  bool checksummed;
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
    checksummed = true;
  } else if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
    checksummed = false;  // legacy snapshots stay loadable
  } else {
    return Status::InvalidArgument("not an edgeshed binary graph: " + path);
  }

  ChecksummingReader reader(in);
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  if (!reader.GetU64(&num_nodes) || !reader.GetU64(&num_edges)) {
    return Status::InvalidArgument("truncated header: " + path);
  }
  if (num_nodes > static_cast<uint64_t>(kInvalidNode)) {
    return Status::InvalidArgument("node count exceeds NodeId range");
  }
  // Check the declared edge count against the bytes actually present before
  // allocating: a corrupt count must fail as "truncated", not reserve
  // attacker-sized memory and die on bad_alloc.
  const std::streampos body_start = in.tellg();
  in.seekg(0, std::ios::end);
  const uint64_t bytes_left =
      static_cast<uint64_t>(in.tellg() - body_start);
  in.seekg(body_start);
  if (num_edges > bytes_left / 8) {
    return Status::InvalidArgument("truncated edge section: " + path);
  }
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    uint32_t u = 0;
    uint32_t v = 0;
    if (!reader.GetU32(&u) || !reader.GetU32(&v)) {
      return Status::InvalidArgument("truncated edge section: " + path);
    }
    edges.push_back(Edge{u, v});
  }
  if (checksummed) {
    uint32_t declared = 0;
    if (!GetRawU32(in, &declared)) {
      return Status::InvalidArgument("truncated checksum footer: " + path);
    }
    if (declared != reader.crc()) {
      return Status::DataLoss(
          "binary graph checksum mismatch (corrupt snapshot): " + path);
    }
  }
  // Graph::FromEdges re-validates bounds, self-loops, duplicates.
  return Graph::FromEdges(static_cast<NodeId>(num_nodes), std::move(edges));
}

}  // namespace edgeshed::graph
