#include "graph/binary_io.h"

#include <cstring>
#include <fstream>
#include <vector>

namespace edgeshed::graph {

namespace {

constexpr char kMagic[8] = {'E', 'D', 'G', 'S', 'H', 'E', 'D', '1'};

void PutU64(std::ofstream& out, uint64_t value) {
  char bytes[8];
  for (int i = 0; i < 8; ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  out.write(bytes, 8);
}

bool GetU64(std::ifstream& in, uint64_t* value) {
  char bytes[8];
  if (!in.read(bytes, 8)) return false;
  *value = 0;
  for (int i = 0; i < 8; ++i) {
    *value |= static_cast<uint64_t>(static_cast<unsigned char>(bytes[i]))
              << (8 * i);
  }
  return true;
}

void PutU32(std::ofstream& out, uint32_t value) {
  char bytes[4];
  for (int i = 0; i < 4; ++i) {
    bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
  out.write(bytes, 4);
}

bool GetU32(std::ifstream& in, uint32_t* value) {
  char bytes[4];
  if (!in.read(bytes, 4)) return false;
  *value = 0;
  for (int i = 0; i < 4; ++i) {
    *value |= static_cast<uint32_t>(static_cast<unsigned char>(bytes[i]))
              << (8 * i);
  }
  return true;
}

}  // namespace

Status SaveBinaryGraph(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  PutU64(out, graph.NumNodes());
  PutU64(out, graph.NumEdges());
  for (const Edge& e : graph.edges()) {
    PutU32(out, e.u);
    PutU32(out, e.v);
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<Graph> LoadBinaryGraph(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open: " + path);
  char magic[8];
  if (!in.read(magic, sizeof(magic)) ||
      std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not an edgeshed binary graph: " + path);
  }
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  if (!GetU64(in, &num_nodes) || !GetU64(in, &num_edges)) {
    return Status::InvalidArgument("truncated header: " + path);
  }
  if (num_nodes > static_cast<uint64_t>(kInvalidNode)) {
    return Status::InvalidArgument("node count exceeds NodeId range");
  }
  std::vector<Edge> edges;
  edges.reserve(num_edges);
  for (uint64_t i = 0; i < num_edges; ++i) {
    uint32_t u = 0;
    uint32_t v = 0;
    if (!GetU32(in, &u) || !GetU32(in, &v)) {
      return Status::InvalidArgument("truncated edge section: " + path);
    }
    edges.push_back(Edge{u, v});
  }
  // Graph::FromEdges re-validates bounds, self-loops, duplicates.
  return Graph::FromEdges(static_cast<NodeId>(num_nodes), std::move(edges));
}

}  // namespace edgeshed::graph
