#include "graph/binary_io.h"

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <utility>
#include <vector>

#include "common/crc32.h"
#include "common/mapped_file.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "graph/snapshot_format.h"

namespace edgeshed::graph {

namespace {

constexpr char kMagicV1[8] = {'E', 'D', 'G', 'S', 'H', 'E', 'D', '1'};
constexpr char kMagicV2[8] = {'E', 'D', 'G', 'S', 'H', 'E', 'D', '2'};

uint64_t GetU64(const char* in) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(in[i]))
             << (8 * i);
  }
  return value;
}

uint32_t GetU32(const char* in) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(in[i]))
             << (8 * i);
  }
  return value;
}

/// Serializer that folds every byte after the magic into a CRC32 so the v2
/// footer can be emitted without a second pass over the edge section.
class ChecksummingWriter {
 public:
  explicit ChecksummingWriter(std::ofstream& out) : out_(out) {}

  void PutU64(uint64_t value) {
    char bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
    }
    Write(bytes, 8);
  }

  void PutU32(uint32_t value) {
    char bytes[4];
    for (int i = 0; i < 4; ++i) {
      bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
    }
    Write(bytes, 4);
  }

  uint32_t crc() const { return Crc32Finalize(state_); }

 private:
  void Write(const char* bytes, size_t n) {
    out_.write(bytes, static_cast<std::streamsize>(n));
    state_ = Crc32Update(state_, bytes, n);
  }

  std::ofstream& out_;
  uint32_t state_ = kCrc32Init;
};

Status SaveSnapshotV2(const Graph& graph, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.write(kMagicV2, sizeof(kMagicV2));
  ChecksummingWriter writer(out);
  writer.PutU64(graph.NumNodes());
  writer.PutU64(graph.NumEdges());
  for (const Edge& e : graph.edges()) {
    writer.PutU32(e.u);
    writer.PutU32(e.v);
  }
  // Footer: CRC32 of everything between the magic and here, so a bit flip
  // anywhere in counts or edges fails the load instead of silently shipping
  // a corrupted graph.
  const uint32_t crc = writer.crc();
  char footer[4];
  for (int i = 0; i < 4; ++i) {
    footer[i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  out.write(footer, 4);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

Status SaveSnapshotV3(const Graph& graph, const std::string& path,
                      const SnapshotOptions& options) {
  if (!std::has_single_bit(options.page_align) || options.page_align < 8 ||
      options.page_align > (uint64_t{1} << 30)) {
    return Status::InvalidArgument(
        "snapshot page_align must be a power of two in [8, 1 GiB]");
  }
  if (options.chunk_bytes < (uint64_t{1} << 12) ||
      options.chunk_bytes > (uint64_t{1} << 30)) {
    return Status::InvalidArgument(
        "snapshot chunk_bytes must be in [4 KiB, 1 GiB]");
  }
  if (!options.original_ids.empty() &&
      options.original_ids.size() != graph.NumNodes()) {
    return Status::InvalidArgument(
        "original_ids size disagrees with the node count");
  }
  // An identity remap carries no information; leaving it out keeps the file
  // smaller and makes the snapshot byte-identical to one built by the
  // out-of-core converter, which always drops identity tables.
  bool identity_ids = true;
  for (size_t i = 0; i < options.original_ids.size(); ++i) {
    if (options.original_ids[i] != i) {
      identity_ids = false;
      break;
    }
  }
  const std::span<const uint64_t> original_ids =
      identity_ids ? std::span<const uint64_t>{} : options.original_ids;

  SnapshotHeader header = PlanSnapshotLayout(
      graph.NumNodes(), graph.NumEdges(), !original_ids.empty(),
      options.page_align, options.chunk_bytes);

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);

  // Placeholder header + padding; the real header (it needs the chunk CRCs
  // of the data we are about to write) is patched in afterwards.
  {
    const std::string zeros(header.DataStart(), '\0');
    out.write(zeros.data(), static_cast<std::streamsize>(zeros.size()));
  }

  // The empty graph's owned storage has no offsets array, but the section
  // still carries the single leading 0 so loaded shape checks hold.
  static constexpr uint64_t kZeroOffset = 0;
  const auto offsets = graph.RawOffsets();
  const auto adjacency = graph.RawAdjacency();
  const auto incident = graph.RawIncident();
  const auto edges = graph.edges();
  const std::pair<const void*, uint64_t> payloads[kSnapshotSectionCount] = {
      offsets.empty()
          ? std::pair<const void*, uint64_t>{&kZeroOffset, sizeof(kZeroOffset)}
          : std::pair<const void*, uint64_t>{offsets.data(),
                                             offsets.size_bytes()},
      {adjacency.data(), adjacency.size_bytes()},
      {incident.data(), incident.size_bytes()},
      {edges.data(), edges.size_bytes()},
      {original_ids.data(), original_ids.size_bytes()},
  };
  uint64_t pos = header.DataStart();
  for (int s = 0; s < kSnapshotSectionCount; ++s) {
    const auto& section = header.sections[static_cast<size_t>(s)];
    if (section.bytes == 0) continue;
    if (section.offset > pos) {
      const std::string pad(section.offset - pos, '\0');
      out.write(pad.data(), static_cast<std::streamsize>(pad.size()));
    }
    out.write(static_cast<const char*>(payloads[s].first),
              static_cast<std::streamsize>(payloads[s].second));
    pos = section.offset + section.bytes;
  }
  out.close();
  if (!out) return Status::IOError("write failed: " + path);

  // Re-reads the freshly written (page-cached) data region to fill the
  // chunk CRC table, then patches the real header over the placeholder.
  return FinalizeSnapshotFile(path, std::move(header));
}

/// v1/v2 copy loader, parsing from the mapped bytes. The CSR is rebuilt by
/// Graph::FromEdges, which re-validates bounds, self-loops, duplicates.
StatusOr<LoadedGraph> LoadLegacySnapshot(const MappedFile& file,
                                         bool checksummed,
                                         const std::string& path) {
  const char* data = file.data();
  const uint64_t size = file.size();
  if (size < 24 + (checksummed ? 4u : 0u)) {
    return Status::InvalidArgument("truncated header: " + path);
  }
  const uint64_t num_nodes = GetU64(data + 8);
  const uint64_t num_edges = GetU64(data + 16);
  if (num_nodes > static_cast<uint64_t>(kInvalidNode)) {
    return Status::InvalidArgument("node count exceeds NodeId range");
  }
  // Check the declared edge count against the bytes actually present before
  // allocating: a corrupt count must fail as "truncated", not reserve
  // attacker-sized memory and die on bad_alloc.
  const uint64_t body_bytes = size - 24 - (checksummed ? 4 : 0);
  if (num_edges > body_bytes / 8) {
    return Status::InvalidArgument("truncated edge section: " + path);
  }
  if (checksummed) {
    const uint32_t declared = GetU32(data + 24 + 8 * num_edges);
    const uint32_t actual =
        Crc32(std::string_view(data + 8, 16 + 8 * num_edges));
    if (declared != actual) {
      return Status::DataLoss(
          "binary graph checksum mismatch (corrupt snapshot): " + path);
    }
  }
  file.AdviseSequential();
  std::vector<Edge> edges(num_edges);
  std::memcpy(edges.data(), data + 24, 8 * num_edges);
  EDGESHED_ASSIGN_OR_RETURN(
      Graph graph,
      Graph::FromEdges(static_cast<NodeId>(num_nodes), std::move(edges)));
  return LoadedGraph{std::move(graph), {}};
}

/// The DataLoss status a chunk-CRC mismatch reports; shared by the in-core
/// and streamed verifiers so tests and operators see one message.
Status ChunkMismatch(const SnapshotHeader& header, uint64_t chunk,
                     uint64_t file_bytes, const std::string& path) {
  const uint64_t begin = header.DataStart() + chunk * header.chunk_bytes;
  return Status::DataLoss(StrFormat(
      "snapshot chunk %llu checksum mismatch (file bytes "
      "[%llu, %llu)): %s",
      static_cast<unsigned long long>(chunk),
      static_cast<unsigned long long>(begin),
      static_cast<unsigned long long>(
          std::min<uint64_t>(begin + header.chunk_bytes, file_bytes)),
      path.c_str()));
}

/// Reads exactly [offset, offset + len) from `fd`, retrying short reads.
Status PreadFully(int fd, char* out, uint64_t len, uint64_t offset,
                  const std::string& path) {
  while (len > 0) {
    const ssize_t got =
        ::pread(fd, out, static_cast<size_t>(len), static_cast<off_t>(offset));
    if (got < 0) {
      if (errno == EINTR) continue;
      return Status::IOError("read failed: " + path);
    }
    if (got == 0) {
      return Status::IOError("unexpected end of file: " + path);
    }
    out += got;
    len -= static_cast<uint64_t>(got);
    offset += static_cast<uint64_t>(got);
  }
  return Status::OK();
}

/// Verification for mmap-served snapshots: proves exactly what the copy
/// path proves — every chunk CRC plus ValidateCsr's deep content sweep —
/// but reads the file with pread(2) into bounded buffers instead of
/// through the mapping, so verifying a snapshot does not fault the whole
/// file into the process and defeat the point of a zero-copy load. Only
/// the offsets section (hot for every query anyway) and the canonical edge
/// section (random-accessed to answer incident-id lookups) are read
/// through the mapping; for a typical graph that is about a quarter of the
/// file, and the rest stays unfaulted until a query touches it.
Status VerifySnapshotStreamed(const std::string& path, const MappedFile& file,
                              const SnapshotHeader& header,
                              const IngestOptions& options) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) return Status::IOError("cannot open " + path);
  struct FdGuard {
    int fd;
    ~FdGuard() { ::close(fd); }
  } guard{fd};

  // Chunk CRCs, one bounded buffer per worker.
  const uint64_t data_start = header.DataStart();
  const uint64_t num_chunks = header.chunk_crcs.size();
  std::atomic<bool> io_error{false};
  std::atomic<uint64_t> bad_chunk{num_chunks};
  ParallelFor(
      0, num_chunks,
      [&](uint64_t begin, uint64_t end) {
        const uint64_t buf_bytes =
            std::min<uint64_t>(header.chunk_bytes, uint64_t{4} << 20);
        std::vector<char> buf(buf_bytes);
        for (uint64_t c = begin; c < end; ++c) {
          if (io_error.load(std::memory_order_relaxed) ||
              bad_chunk.load(std::memory_order_relaxed) != num_chunks ||
              CancellationRequested(options.cancel)) {
            return;
          }
          const uint64_t chunk_begin = data_start + c * header.chunk_bytes;
          const uint64_t chunk_end = std::min<uint64_t>(
              chunk_begin + header.chunk_bytes, file.size());
          uint32_t state = kCrc32Init;
          for (uint64_t pos = chunk_begin; pos < chunk_end;) {
            const uint64_t len = std::min<uint64_t>(buf_bytes, chunk_end - pos);
            if (!PreadFully(fd, buf.data(), len, pos, path).ok()) {
              io_error.store(true, std::memory_order_relaxed);
              return;
            }
            state = Crc32Update(state, buf.data(), len);
            pos += len;
          }
          if (Crc32Finalize(state) != header.chunk_crcs[c]) {
            uint64_t expected = num_chunks;
            bad_chunk.compare_exchange_strong(expected, c);
            return;
          }
        }
      },
      options.threads);
  if (CancellationRequested(options.cancel)) return options.cancel->ToStatus();
  if (io_error.load()) return Status::IOError("read failed: " + path);
  if (const uint64_t c = bad_chunk.load(); c != num_chunks) {
    return ChunkMismatch(header, c, file.size(), path);
  }

  // Deep content sweep, mirroring ValidateCsr check for check. Offsets and
  // edges go through the mapping (small / random-accessed); adjacency and
  // incident stream past in lockstep windows.
  const uint64_t n = header.num_nodes;
  const uint64_t m = header.num_edges;
  const auto* offsets = reinterpret_cast<const uint64_t*>(
      file.data() + header.sections[kSectionOffsets].offset);
  const auto* edges = reinterpret_cast<const Edge*>(
      file.data() + header.sections[kSectionEdges].offset);
  if (header.sections[kSectionOffsets].bytes == 0) {
    return Status::OK();  // the empty graph; nothing to sweep
  }
  if (offsets[0] != 0) return Status::InvalidArgument("csr: offsets[0] != 0");
  for (uint64_t u = 0; u < n; ++u) {
    if (offsets[u] > offsets[u + 1]) {
      return Status::InvalidArgument("csr: offsets not monotone");
    }
  }
  if (offsets[n] != 2 * m) {
    return Status::InvalidArgument(
        "csr: section sizes disagree (offsets/adjacency/incident/edges)");
  }
  const Status content_error = Status::InvalidArgument(
      "csr: content check failed (endpoints, adjacency order, or "
      "incident/edge disagreement)");
  for (uint64_t i = 0; i < m; ++i) {
    const Edge& e = edges[i];
    if (e.u > e.v || e.v >= n || e.u == e.v) return content_error;
  }
  const uint64_t adj_offset = header.sections[kSectionAdjacency].offset;
  const uint64_t inc_offset = header.sections[kSectionIncident].offset;
  constexpr uint64_t kWindowSlots = uint64_t{1} << 16;
  std::vector<NodeId> adjacency(std::min(kWindowSlots, 2 * m));
  std::vector<EdgeId> incident(adjacency.size());
  uint64_t u = 0;
  NodeId prev = kInvalidNode;
  for (uint64_t slot = 0; slot < 2 * m;) {
    const uint64_t count = std::min<uint64_t>(kWindowSlots, 2 * m - slot);
    EDGESHED_RETURN_IF_ERROR(
        PreadFully(fd, reinterpret_cast<char*>(adjacency.data()), 4 * count,
                   adj_offset + 4 * slot, path));
    EDGESHED_RETURN_IF_ERROR(
        PreadFully(fd, reinterpret_cast<char*>(incident.data()), 8 * count,
                   inc_offset + 8 * slot, path));
    for (uint64_t i = 0; i < count; ++i, ++slot) {
      while (u < n && slot == offsets[u + 1]) {
        ++u;
        prev = kInvalidNode;
      }
      const NodeId nbr = adjacency[i];
      const EdgeId id = incident[i];
      if (nbr >= n || nbr == u || id >= m ||
          (prev != kInvalidNode && nbr <= prev)) {
        return content_error;
      }
      const Edge& e = edges[id];
      const NodeId lo = u < nbr ? static_cast<NodeId>(u) : nbr;
      const NodeId hi = u < nbr ? nbr : static_cast<NodeId>(u);
      if (e.u != lo || e.v != hi) return content_error;
      prev = nbr;
    }
    if (CancellationRequested(options.cancel)) {
      return options.cancel->ToStatus();
    }
  }
  return Status::OK();
}

StatusOr<LoadedGraph> LoadSnapshotV3(std::shared_ptr<const MappedFile> file,
                                     const IngestOptions& options,
                                     const std::string& path) {
  EDGESHED_ASSIGN_OR_RETURN(
      SnapshotHeader header,
      DecodeSnapshotHeader(file->data(), file->size(), path));
  if (CancellationRequested(options.cancel)) {
    return options.cancel->ToStatus();
  }
  if (options.verify_checksums && options.mmap) {
    // Zero-copy serving: verify through bounded pread buffers so the
    // mapping itself stays cold. Covers chunk CRCs and the deep content
    // sweep, so FromCsrView below only re-runs the O(n) shape checks.
    EDGESHED_RETURN_IF_ERROR(
        VerifySnapshotStreamed(path, *file, header, options));
  } else if (options.verify_checksums) {
    const std::vector<uint32_t> actual = ComputeSnapshotChunkCrcs(
        file->data() + header.DataStart(),
        file->size() - header.DataStart(), header.chunk_bytes,
        options.threads);
    for (uint64_t c = 0; c < actual.size(); ++c) {
      if (actual[c] != header.chunk_crcs[c]) {
        return ChunkMismatch(header, c, file->size(), path);
      }
    }
  }
  if (CancellationRequested(options.cancel)) {
    return options.cancel->ToStatus();
  }

  // Section pointers are aligned for their element types: the mapping base
  // is page-aligned and section offsets are page_align (>= 8) multiples.
  const auto section_ptr = [&](int s) {
    return file->data() + header.sections[static_cast<size_t>(s)].offset;
  };
  const auto section_count = [&](int s, uint64_t elem_bytes) {
    return header.sections[static_cast<size_t>(s)].bytes / elem_bytes;
  };
  const std::span<const uint64_t> offsets(
      reinterpret_cast<const uint64_t*>(section_ptr(kSectionOffsets)),
      section_count(kSectionOffsets, 8));
  const std::span<const NodeId> adjacency(
      reinterpret_cast<const NodeId*>(section_ptr(kSectionAdjacency)),
      section_count(kSectionAdjacency, 4));
  const std::span<const EdgeId> incident(
      reinterpret_cast<const EdgeId*>(section_ptr(kSectionIncident)),
      section_count(kSectionIncident, 8));
  const std::span<const Edge> edges(
      reinterpret_cast<const Edge*>(section_ptr(kSectionEdges)),
      section_count(kSectionEdges, sizeof(Edge)));

  std::vector<uint64_t> original_ids;
  if (header.sections[static_cast<size_t>(kSectionOriginalIds)].bytes != 0) {
    const std::span<const uint64_t> ids(
        reinterpret_cast<const uint64_t*>(section_ptr(kSectionOriginalIds)),
        section_count(kSectionOriginalIds, 8));
    original_ids.assign(ids.begin(), ids.end());
  }

  // Checksums already prove the bytes are exactly what the writer produced;
  // the deep structural sweep additionally proves the writer wrote a valid
  // CSR (sorted adjacency, consistent incident ids) — the invariants the
  // binary searches in Graph rely on. Both gate on verify_checksums; on the
  // mmap path VerifySnapshotStreamed already ran the content sweep through
  // pread buffers, so FromCsrView only repeats the O(n) shape checks.
  if (options.mmap) {
    Graph::CsrView view{offsets, adjacency, incident, edges,
                        std::move(file)};
    EDGESHED_ASSIGN_OR_RETURN(
        Graph graph,
        Graph::FromCsrView(std::move(view), /*deep_validation=*/false));
    return LoadedGraph{std::move(graph), std::move(original_ids)};
  }
  file->AdviseSequential();
  EDGESHED_ASSIGN_OR_RETURN(
      Graph graph,
      Graph::FromCsrParts(
          std::vector<uint64_t>(offsets.begin(), offsets.end()),
          std::vector<NodeId>(adjacency.begin(), adjacency.end()),
          std::vector<EdgeId>(incident.begin(), incident.end()),
          std::vector<Edge>(edges.begin(), edges.end()),
          options.verify_checksums));
  return LoadedGraph{std::move(graph), std::move(original_ids)};
}

}  // namespace

Status SaveBinaryGraph(const Graph& graph, const std::string& path,
                       const SnapshotOptions& options) {
  switch (options.version) {
    case 2:
      return SaveSnapshotV2(graph, path);
    case 3:
      return SaveSnapshotV3(graph, path, options);
    default:
      return Status::InvalidArgument(
          StrFormat("unsupported snapshot version %u", options.version));
  }
}

Status SaveBinaryGraph(const Graph& graph, const std::string& path) {
  SnapshotOptions options;
  options.version = 2;
  return SaveBinaryGraph(graph, path, options);
}

StatusOr<LoadedGraph> LoadSnapshot(const std::string& path,
                                   const IngestOptions& options) {
  EDGESHED_ASSIGN_OR_RETURN(std::shared_ptr<const MappedFile> file,
                            MappedFile::Open(path));
  if (file->size() < 8) {
    return Status::InvalidArgument("not an edgeshed binary graph: " + path);
  }
  if (std::memcmp(file->data(), kSnapshotMagicV3, 8) == 0) {
    return LoadSnapshotV3(std::move(file), options, path);
  }
  if (std::memcmp(file->data(), kMagicV2, 8) == 0) {
    return LoadLegacySnapshot(*file, /*checksummed=*/true, path);
  }
  if (std::memcmp(file->data(), kMagicV1, 8) == 0) {
    return LoadLegacySnapshot(*file, /*checksummed=*/false, path);
  }
  return Status::InvalidArgument("not an edgeshed binary graph: " + path);
}

StatusOr<Graph> LoadBinaryGraph(const std::string& path) {
  EDGESHED_ASSIGN_OR_RETURN(LoadedGraph loaded, LoadSnapshot(path));
  return std::move(loaded.graph);
}

}  // namespace edgeshed::graph
