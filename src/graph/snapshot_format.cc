#include "graph/snapshot_format.h"

#include <bit>
#include <cstring>
#include <fstream>

#include "common/check.h"
#include "common/crc32.h"
#include "common/mapped_file.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "graph/graph.h"

namespace edgeshed::graph {

namespace {

// Sections are written by memcpy from live arrays and adopted back by
// reinterpreting mapped bytes, so the on-disk sections are native-endian.
// The format pins little-endian; porting to a big-endian host would need a
// byte-swapping copy loader.
static_assert(std::endian::native == std::endian::little,
              "v3 snapshots assume a little-endian host");

void PutU64(char* out, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

void PutU32(char* out, uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<char>((value >> (8 * i)) & 0xff);
  }
}

uint64_t GetU64(const char* in) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(in[i]))
             << (8 * i);
  }
  return value;
}

uint32_t GetU32(const char* in) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(in[i]))
             << (8 * i);
  }
  return value;
}

/// Printable rendering of a magic field for error messages.
std::string MagicString(const char* data) {
  std::string out;
  for (int i = 0; i < 8; ++i) {
    const unsigned char c = static_cast<unsigned char>(data[i]);
    if (c >= 0x20 && c < 0x7f) {
      out.push_back(static_cast<char>(c));
    } else {
      out += StrFormat("\\x%02x", c);
    }
  }
  return out;
}

constexpr uint64_t kMinPageAlign = 8;             // u64 span alignment
constexpr uint64_t kMaxPageAlign = uint64_t{1} << 30;
constexpr uint64_t kMinChunkBytes = uint64_t{1} << 12;
constexpr uint64_t kMaxChunkBytes = uint64_t{1} << 30;

/// Unpadded payload size of each section given the graph shape.
std::array<uint64_t, kSnapshotSectionCount> SectionBytes(
    uint64_t num_nodes, uint64_t num_edges, bool with_original_ids) {
  return {
      (num_nodes + 1) * 8,             // offsets: u64 x (n+1)
      2 * num_edges * 4,               // adjacency: u32 x 2m
      2 * num_edges * 8,               // incident: u64 x 2m
      num_edges * 8,                   // edges: 2 x u32 x m
      with_original_ids ? num_nodes * 8 : 0,  // original_ids: u64 x n
  };
}

}  // namespace

uint64_t SnapshotHeader::FileBytes() const {
  uint64_t end = 0;
  for (const Section& s : sections) {
    if (s.bytes != 0) end = std::max(end, s.offset + s.bytes);
  }
  return end;
}

SnapshotHeader PlanSnapshotLayout(uint64_t num_nodes, uint64_t num_edges,
                                  bool with_original_ids, uint64_t page_align,
                                  uint64_t chunk_bytes) {
  EDGESHED_CHECK(std::has_single_bit(page_align) &&
                 page_align >= kMinPageAlign && page_align <= kMaxPageAlign);
  EDGESHED_CHECK(chunk_bytes >= kMinChunkBytes &&
                 chunk_bytes <= kMaxChunkBytes);
  SnapshotHeader header;
  header.num_nodes = num_nodes;
  header.num_edges = num_edges;
  header.page_align = page_align;
  header.chunk_bytes = chunk_bytes;

  // Section offsets relative to the data region are independent of the
  // header size, so the data size — and from it the chunk count, which
  // feeds back into the header size — resolves without iteration.
  const auto bytes = SectionBytes(num_nodes, num_edges, with_original_ids);
  uint64_t rel = 0;
  std::array<uint64_t, kSnapshotSectionCount> rel_offsets{};
  for (int s = 0; s < kSnapshotSectionCount; ++s) {
    if (bytes[s] == 0) continue;
    rel_offsets[s] = rel;
    rel = RoundUpTo(rel + bytes[s], page_align);
  }
  uint64_t data_bytes = 0;
  for (int s = 0; s < kSnapshotSectionCount; ++s) {
    if (bytes[s] != 0) {
      data_bytes = std::max(data_bytes, rel_offsets[s] + bytes[s]);
    }
  }
  const uint64_t num_chunks = (data_bytes + chunk_bytes - 1) / chunk_bytes;
  header.chunk_crcs.assign(num_chunks, 0);
  const uint64_t data_start = header.DataStart();
  for (int s = 0; s < kSnapshotSectionCount; ++s) {
    header.sections[static_cast<size_t>(s)] =
        bytes[s] == 0
            ? SnapshotHeader::Section{}
            : SnapshotHeader::Section{data_start + rel_offsets[s], bytes[s]};
  }
  return header;
}

std::string EncodeSnapshotHeader(const SnapshotHeader& header) {
  std::string out(header.HeaderBytes(), '\0');
  std::memcpy(out.data(), kSnapshotMagicV3, sizeof(kSnapshotMagicV3));
  PutU64(out.data() + 8, header.num_nodes);
  PutU64(out.data() + 16, header.num_edges);
  PutU64(out.data() + 24, header.page_align);
  PutU64(out.data() + 32, header.chunk_bytes);
  for (int s = 0; s < kSnapshotSectionCount; ++s) {
    const auto& section = header.sections[static_cast<size_t>(s)];
    PutU64(out.data() + 40 + 16 * s, section.offset);
    PutU64(out.data() + 48 + 16 * s, section.bytes);
  }
  const uint64_t nc = header.chunk_crcs.size();
  PutU32(out.data() + kSnapshotChunkCountOffset, static_cast<uint32_t>(nc));
  for (uint64_t c = 0; c < nc; ++c) {
    PutU32(out.data() + kSnapshotChunkCountOffset + 4 + 4 * c,
           header.chunk_crcs[c]);
  }
  const uint64_t crc_at = kSnapshotChunkCountOffset + 4 + 4 * nc;
  PutU32(out.data() + crc_at,
         Crc32(std::string_view(out.data() + 8, crc_at - 8)));
  return out;
}

StatusOr<SnapshotHeader> DecodeSnapshotHeader(const char* data,
                                              uint64_t file_bytes,
                                              const std::string& path) {
  if (file_bytes < sizeof(kSnapshotMagicV3)) {
    return Status::InvalidArgument("truncated snapshot (no magic): " + path);
  }
  if (std::memcmp(data, kSnapshotMagicV3, sizeof(kSnapshotMagicV3)) != 0) {
    return Status::InvalidArgument("not a v3 snapshot (magic '" +
                                   MagicString(data) + "'): " + path);
  }
  if (file_bytes < kSnapshotChunkCountOffset + 4) {
    return Status::InvalidArgument("truncated snapshot header: " + path);
  }

  SnapshotHeader header;
  header.num_nodes = GetU64(data + 8);
  header.num_edges = GetU64(data + 16);
  header.page_align = GetU64(data + 24);
  header.chunk_bytes = GetU64(data + 32);

  // Fixed-field sanity runs BEFORE the header CRC: a corrupt alignment or
  // count field should be reported as that field being nonsense, and the
  // bounds below are also what make the later arithmetic overflow-safe.
  if (header.num_nodes > static_cast<uint64_t>(kInvalidNode)) {
    return Status::InvalidArgument(
        "snapshot node count exceeds NodeId range: " + path);
  }
  if (header.num_edges > UINT64_MAX / 16) {
    return Status::InvalidArgument("snapshot edge count implausible: " +
                                   path);
  }
  if (!std::has_single_bit(header.page_align) ||
      header.page_align < kMinPageAlign ||
      header.page_align > kMaxPageAlign) {
    return Status::InvalidArgument(
        StrFormat("snapshot page_align %llu is not a power of two in "
                  "[8, 2^30]: %s",
                  static_cast<unsigned long long>(header.page_align),
                  path.c_str()));
  }
  if (header.chunk_bytes < kMinChunkBytes ||
      header.chunk_bytes > kMaxChunkBytes) {
    return Status::InvalidArgument(
        StrFormat("snapshot chunk_bytes %llu outside [4 KiB, 1 GiB]: %s",
                  static_cast<unsigned long long>(header.chunk_bytes),
                  path.c_str()));
  }

  const uint64_t num_chunks = GetU32(data + kSnapshotChunkCountOffset);
  if (SnapshotHeaderBytes(num_chunks) > file_bytes) {
    return Status::InvalidArgument(
        "truncated snapshot header (chunk table): " + path);
  }
  header.chunk_crcs.resize(num_chunks);
  for (uint64_t c = 0; c < num_chunks; ++c) {
    header.chunk_crcs[c] =
        GetU32(data + kSnapshotChunkCountOffset + 4 + 4 * c);
  }
  const uint64_t crc_at = kSnapshotChunkCountOffset + 4 + 4 * num_chunks;
  const uint32_t declared_crc = GetU32(data + crc_at);
  const uint32_t actual_crc = Crc32(std::string_view(data + 8, crc_at - 8));
  if (declared_crc != actual_crc) {
    return Status::DataLoss("snapshot header checksum mismatch: " + path);
  }

  // Section table: byte lengths must match the counts exactly, and every
  // non-empty section must sit aligned inside the data region.
  const auto expected =
      SectionBytes(header.num_nodes, header.num_edges, /*ignored*/ false);
  const uint64_t data_start = header.DataStart();
  for (int s = 0; s < kSnapshotSectionCount; ++s) {
    auto& section = header.sections[static_cast<size_t>(s)];
    section.offset = GetU64(data + 40 + 16 * s);
    section.bytes = GetU64(data + 48 + 16 * s);
    const uint64_t want =
        s == kSectionOriginalIds ? header.num_nodes * 8 : expected[s];
    const bool optional = s == kSectionOriginalIds;
    if (section.bytes != want && !(optional && section.bytes == 0)) {
      return Status::InvalidArgument(
          StrFormat("snapshot section %d length %llu disagrees with the "
                    "declared counts: %s",
                    s, static_cast<unsigned long long>(section.bytes),
                    path.c_str()));
    }
    if (section.bytes == 0) continue;
    if (section.offset % header.page_align != 0) {
      return Status::InvalidArgument(
          StrFormat("snapshot section %d offset %llu not page_align-ed: %s",
                    s, static_cast<unsigned long long>(section.offset),
                    path.c_str()));
    }
    if (section.offset < data_start || section.bytes > file_bytes ||
        section.offset > file_bytes - section.bytes) {
      return Status::InvalidArgument(
          StrFormat("snapshot section %d out of file bounds: %s", s,
                    path.c_str()));
    }
  }

  if (header.FileBytes() != file_bytes) {
    return Status::InvalidArgument(
        StrFormat("snapshot size %llu disagrees with section table end %llu "
                  "(truncated or trailing bytes): %s",
                  static_cast<unsigned long long>(file_bytes),
                  static_cast<unsigned long long>(header.FileBytes()),
                  path.c_str()));
  }
  const uint64_t data_bytes = file_bytes - data_start;
  const uint64_t expected_chunks =
      (data_bytes + header.chunk_bytes - 1) / header.chunk_bytes;
  if (num_chunks != expected_chunks) {
    return Status::InvalidArgument(
        StrFormat("snapshot chunk count %llu disagrees with data size "
                  "(expected %llu): %s",
                  static_cast<unsigned long long>(num_chunks),
                  static_cast<unsigned long long>(expected_chunks),
                  path.c_str()));
  }
  return header;
}

Status FinalizeSnapshotFile(const std::string& path, SnapshotHeader header) {
  {
    EDGESHED_ASSIGN_OR_RETURN(std::shared_ptr<const MappedFile> mapped,
                              MappedFile::Open(path));
    if (mapped->size() != header.FileBytes()) {
      return Status::IOError(
          StrFormat("short snapshot write (%llu of %llu bytes): %s",
                    static_cast<unsigned long long>(mapped->size()),
                    static_cast<unsigned long long>(header.FileBytes()),
                    path.c_str()));
    }
    header.chunk_crcs = ComputeSnapshotChunkCrcs(
        mapped->data() + header.DataStart(),
        header.FileBytes() - header.DataStart(), header.chunk_bytes);
  }
  const std::string encoded = EncodeSnapshotHeader(header);
  std::fstream patch(path, std::ios::binary | std::ios::in | std::ios::out);
  if (!patch) return Status::IOError("cannot reopen for header: " + path);
  patch.write(encoded.data(), static_cast<std::streamsize>(encoded.size()));
  patch.close();
  if (!patch) return Status::IOError("header write failed: " + path);
  return Status::OK();
}

std::vector<uint32_t> ComputeSnapshotChunkCrcs(const char* data,
                                               uint64_t data_bytes,
                                               uint64_t chunk_bytes,
                                               int threads) {
  const uint64_t num_chunks = (data_bytes + chunk_bytes - 1) / chunk_bytes;
  std::vector<uint32_t> crcs(num_chunks);
  ParallelForEach(
      0, num_chunks,
      [&](uint64_t c) {
        const uint64_t begin = c * chunk_bytes;
        const uint64_t len = std::min(chunk_bytes, data_bytes - begin);
        crcs[c] = Crc32(std::string_view(data + begin, len));
      },
      threads, /*grain=*/1);
  return crcs;
}

}  // namespace edgeshed::graph
