#ifndef EDGESHED_GRAPH_EXTERNAL_BUILD_H_
#define EDGESHED_GRAPH_EXTERNAL_BUILD_H_

#include <cstdint>
#include <string>

#include "common/cancellation.h"
#include "common/statusor.h"
#include "graph/binary_io.h"
#include "graph/source.h"

namespace edgeshed::graph {

/// Out-of-core text-to-snapshot converter (DESIGN.md §14): builds a v3
/// snapshot from an edge list too large to materialize as an in-memory
/// Graph. Peak memory is O(num_nodes) resident state (the id-intern table,
/// original ids, degrees) plus `memory_budget_bytes` of edge buffers —
/// never O(num_edges).
///
/// Pipeline: a reader thread streams the file in blocks through a bounded
/// queue (read ahead overlaps parse); blocks are parsed in parallel and
/// interned serially in file order (so the dense numbering is bit-identical
/// to LoadEdgeList); canonical edges accumulate in a budget-bounded buffer
/// that is sorted, deduped, and spilled to a run file when full; runs are
/// k-way merged into the unique sorted edge list, which assigns EdgeIds,
/// accumulates degrees, and spills reverse entries {v, u, id}; a final
/// merge-join of the forward edge stream and the sorted reverse runs emits
/// the CSR sections straight into the output file at their independent
/// offsets. The resulting snapshot is byte-identical to
/// SaveBinaryGraph(LoadEdgeList(...), v3) on the same input.
struct ExternalBuildOptions {
  /// Budget for the spill buffers and merge read buffers. The O(num_nodes)
  /// resident state is NOT counted against this. Minimum 1 MiB (smaller
  /// values are clamped up).
  uint64_t memory_budget_bytes = uint64_t{256} << 20;
  /// Directory for run files; empty = alongside the output path.
  std::string temp_dir;
  /// Output layout. `version` must be 3 and `original_ids` must be empty
  /// (the converter discovers the id table itself and embeds it whenever
  /// the input numbering is not the identity).
  SnapshotOptions snapshot;
  int threads = 0;  // 0 = DefaultThreadCount()
  const CancellationToken* cancel = nullptr;
};

struct ExternalBuildStats {
  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;       // unique undirected edges written
  uint64_t input_edges = 0;     // parsed "u v" pairs before dedup
  uint64_t edge_runs = 0;       // sorted runs spilled in the shuffle phase
  uint64_t reverse_runs = 0;    // sorted runs spilled in the transpose phase
  uint64_t spilled_bytes = 0;   // total bytes written to temp run files
  /// Largest transient buffer allocation (the budgeted part of the peak).
  uint64_t peak_buffer_bytes = 0;
};

/// Converts `source` (must be a text edge list, or auto-detect to one) into
/// a v3 snapshot at `out_path`. Temp run files live next to the output (or
/// in options.temp_dir) and are removed on both success and failure.
StatusOr<ExternalBuildStats> BuildSnapshotExternal(
    const GraphSource& source, const std::string& out_path,
    const ExternalBuildOptions& options = {});

}  // namespace edgeshed::graph

#endif  // EDGESHED_GRAPH_EXTERNAL_BUILD_H_
