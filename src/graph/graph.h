#ifndef EDGESHED_GRAPH_GRAPH_H_
#define EDGESHED_GRAPH_GRAPH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/check.h"
#include "common/statusor.h"

namespace edgeshed::graph {

/// Vertex identifier: dense, 0-based.
using NodeId = uint32_t;
/// Edge identifier: index into the graph's canonical edge list.
using EdgeId = uint64_t;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// An undirected edge. Canonical form has u <= v; the Graph constructor
/// canonicalizes.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.u == b.u && a.v == b.v;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  }
};

/// Immutable simple undirected graph in CSR (compressed sparse row) form.
///
/// Design notes (see DESIGN.md §1):
///  * The node set is dense [0, NumNodes()); isolated vertices are legal —
///    reduced graphs keep the original vertex set and may have degree-0
///    nodes, exactly as in the paper's G' = (V, E').
///  * Every undirected edge {u,v} is stored once in `edges()` (u <= v) and
///    twice in the adjacency arrays (at u and at v). Each adjacency slot
///    also records the EdgeId, so edge-centric algorithms (edge betweenness,
///    shedding) can map a traversal step back to its undirected edge in O(1).
///  * Self-loops and duplicate edges are rejected at construction: the
///    paper's datasets and algorithms assume a simple graph.
class Graph {
 public:
  /// Builds a graph over `num_nodes` vertices from an arbitrary-order edge
  /// list. Returns InvalidArgument on self-loops, duplicates, or endpoints
  /// outside [0, num_nodes). Use GraphBuilder to clean raw data first.
  static StatusOr<Graph> FromEdges(NodeId num_nodes, std::vector<Edge> edges);

  /// Empty graph (0 nodes, 0 edges).
  Graph() = default;

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;

  uint64_t NumNodes() const { return offsets_.empty() ? 0 : offsets_.size() - 1; }
  uint64_t NumEdges() const { return edges_.size(); }

  uint64_t Degree(NodeId u) const {
    EDGESHED_DCHECK_LT(u, NumNodes());
    return offsets_[u + 1] - offsets_[u];
  }

  /// Neighbors of `u`, sorted ascending.
  std::span<const NodeId> Neighbors(NodeId u) const {
    EDGESHED_DCHECK_LT(u, NumNodes());
    return {adjacency_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  /// EdgeIds incident to `u`, aligned with Neighbors(u): IncidentEdges(u)[i]
  /// is the undirected edge {u, Neighbors(u)[i]}.
  std::span<const EdgeId> IncidentEdges(NodeId u) const {
    EDGESHED_DCHECK_LT(u, NumNodes());
    return {incident_.data() + offsets_[u], offsets_[u + 1] - offsets_[u]};
  }

  /// Canonical edge list; edges()[e] has u <= v.
  const std::vector<Edge>& edges() const { return edges_; }
  const Edge& edge(EdgeId e) const {
    EDGESHED_DCHECK_LT(e, edges_.size());
    return edges_[e];
  }

  /// True iff {u, v} is an edge. O(log deg(u)) via binary search on the
  /// sorted adjacency of the lower-degree endpoint.
  bool HasEdge(NodeId u, NodeId v) const;

  /// EdgeId of {u, v}, or kInvalidEdge when absent.
  EdgeId FindEdge(NodeId u, NodeId v) const;

  /// Sum of all vertex degrees = 2|E|.
  uint64_t TotalDegree() const { return 2 * NumEdges(); }

  /// Average degree 2|E| / |V| (0 for the empty graph).
  double AverageDegree() const {
    return NumNodes() == 0 ? 0.0
                           : static_cast<double>(TotalDegree()) /
                                 static_cast<double>(NumNodes());
  }

 private:
  Graph(NodeId num_nodes, std::vector<Edge> edges);

  std::vector<uint64_t> offsets_;   // size NumNodes()+1
  std::vector<NodeId> adjacency_;   // size 2*NumEdges()
  std::vector<EdgeId> incident_;    // size 2*NumEdges(), parallel to adjacency_
  std::vector<Edge> edges_;         // canonical (u <= v), size NumEdges()
};

/// Builds the subgraph of `parent` that keeps the whole vertex set and only
/// the edges in `edge_ids` (indices into parent.edges()). Duplicate ids are
/// a programming error. This is the paper's reduced graph G' = (V, E').
Graph SubgraphFromEdgeIds(const Graph& parent,
                          const std::vector<EdgeId>& edge_ids);

}  // namespace edgeshed::graph

#endif  // EDGESHED_GRAPH_GRAPH_H_
