#ifndef EDGESHED_GRAPH_GRAPH_H_
#define EDGESHED_GRAPH_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "common/check.h"
#include "common/statusor.h"

namespace edgeshed::graph {

/// Vertex identifier: dense, 0-based.
using NodeId = uint32_t;
/// Edge identifier: index into the graph's canonical edge list.
using EdgeId = uint64_t;

constexpr NodeId kInvalidNode = static_cast<NodeId>(-1);
constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// An undirected edge. Canonical form has u <= v; the Graph constructor
/// canonicalizes.
struct Edge {
  NodeId u = kInvalidNode;
  NodeId v = kInvalidNode;

  friend bool operator==(const Edge& a, const Edge& b) {
    return a.u == b.u && a.v == b.v;
  }
  friend bool operator<(const Edge& a, const Edge& b) {
    return a.u != b.u ? a.u < b.u : a.v < b.v;
  }
};

// Edges are serialized by memcpy into snapshots and adopted back by
// reinterpreting mapped bytes; the layout must stay two packed u32s.
static_assert(sizeof(Edge) == 2 * sizeof(NodeId) &&
                  std::is_trivially_copyable_v<Edge>,
              "Edge must stay a packed pair of NodeIds (snapshot ABI)");

/// Element-wise equality for edge-list views (found by ADL through Edge).
/// Graph::edges() returns a span, and call sites — tests above all — compare
/// whole edge lists for bit-identity.
inline bool operator==(std::span<const Edge> a, std::span<const Edge> b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (!(a[i] == b[i])) return false;
  }
  return true;
}

/// Immutable simple undirected graph in CSR (compressed sparse row) form.
///
/// Design notes (see DESIGN.md §1):
///  * The node set is dense [0, NumNodes()); isolated vertices are legal —
///    reduced graphs keep the original vertex set and may have degree-0
///    nodes, exactly as in the paper's G' = (V, E').
///  * Every undirected edge {u,v} is stored once in `edges()` (u <= v) and
///    twice in the adjacency arrays (at u and at v). Each adjacency slot
///    also records the EdgeId, so edge-centric algorithms (edge betweenness,
///    shedding) can map a traversal step back to its undirected edge in O(1).
///  * Self-loops and duplicate edges are rejected at construction: the
///    paper's datasets and algorithms assume a simple graph.
///
/// Storage variants (DESIGN.md §14): a Graph either *owns* its CSR arrays
/// (the historical vector-backed mode, produced by FromEdges/GraphBuilder)
/// or *maps* them — read-only spans into a shared memory-mapped v3 snapshot
/// kept alive by a refcounted backing handle. Every accessor below works
/// identically on both; algorithms cannot tell the difference. Copying a
/// mapped Graph copies the (cheap) handle, not the pages, so N copies in a
/// process — or N processes on one box — share one physical CSR.
class Graph {
 public:
  /// Zero-copy CSR adoption input: spans over externally owned storage plus
  /// the handle that keeps that storage alive (typically a MappedFile).
  /// Produced by the v3 snapshot loader (graph/binary_io.h).
  struct CsrView {
    std::span<const uint64_t> offsets;   // size num_nodes + 1
    std::span<const NodeId> adjacency;   // size 2 * num_edges
    std::span<const EdgeId> incident;    // size 2 * num_edges
    std::span<const Edge> edges;         // size num_edges, canonical
    std::shared_ptr<const void> backing; // keeps the spans' storage alive
  };

  /// Builds a graph over `num_nodes` vertices from an arbitrary-order edge
  /// list. Returns InvalidArgument on self-loops, duplicates, or endpoints
  /// outside [0, num_nodes). Use GraphBuilder to clean raw data first.
  static StatusOr<Graph> FromEdges(NodeId num_nodes, std::vector<Edge> edges);

  /// Adopts pre-built CSR arrays without copying them (mmap zero-copy
  /// loads). Validates structural invariants: monotone offsets bracketing
  /// the adjacency arrays, consistent section sizes, in-range endpoints,
  /// sorted adjacency lists, and incident ids that agree with the canonical
  /// edge list. `deep_validation=false` skips the O(n + m) content checks
  /// (endpoint range / sortedness / incident consistency) and trusts the
  /// caller's integrity checking (checksums) — the O(n) shape checks always
  /// run. InvalidArgument on any violation.
  static StatusOr<Graph> FromCsrView(CsrView view,
                                     bool deep_validation = true);

  /// Owned-storage sibling of FromCsrView: adopts CSR vectors wholesale
  /// (snapshot copy loads) after identical validation.
  static StatusOr<Graph> FromCsrParts(std::vector<uint64_t> offsets,
                                      std::vector<NodeId> adjacency,
                                      std::vector<EdgeId> incident,
                                      std::vector<Edge> edges,
                                      bool deep_validation = true);

  /// Empty graph (0 nodes, 0 edges).
  Graph() = default;

  Graph(const Graph&) = default;
  Graph& operator=(const Graph&) = default;
  Graph(Graph&&) noexcept = default;
  Graph& operator=(Graph&&) noexcept = default;

  uint64_t NumNodes() const {
    const auto offsets = OffsetsSpan();
    return offsets.empty() ? 0 : offsets.size() - 1;
  }
  uint64_t NumEdges() const { return EdgesSpan().size(); }

  uint64_t Degree(NodeId u) const {
    EDGESHED_DCHECK_LT(u, NumNodes());
    const auto offsets = OffsetsSpan();
    return offsets[u + 1] - offsets[u];
  }

  /// Neighbors of `u`, sorted ascending.
  std::span<const NodeId> Neighbors(NodeId u) const {
    EDGESHED_DCHECK_LT(u, NumNodes());
    const auto offsets = OffsetsSpan();
    return AdjacencySpan().subspan(offsets[u], offsets[u + 1] - offsets[u]);
  }

  /// EdgeIds incident to `u`, aligned with Neighbors(u): IncidentEdges(u)[i]
  /// is the undirected edge {u, Neighbors(u)[i]}.
  std::span<const EdgeId> IncidentEdges(NodeId u) const {
    EDGESHED_DCHECK_LT(u, NumNodes());
    const auto offsets = OffsetsSpan();
    return IncidentSpan().subspan(offsets[u], offsets[u + 1] - offsets[u]);
  }

  /// Canonical edge list; edges()[e] has u <= v.
  std::span<const Edge> edges() const { return EdgesSpan(); }
  const Edge& edge(EdgeId e) const {
    const auto edges = EdgesSpan();
    EDGESHED_DCHECK_LT(e, edges.size());
    return edges[e];
  }

  /// True iff {u, v} is an edge. O(log deg(u)) via binary search on the
  /// sorted adjacency of the lower-degree endpoint.
  bool HasEdge(NodeId u, NodeId v) const;

  /// EdgeId of {u, v}, or kInvalidEdge when absent.
  EdgeId FindEdge(NodeId u, NodeId v) const;

  /// Sum of all vertex degrees = 2|E|.
  uint64_t TotalDegree() const { return 2 * NumEdges(); }

  /// Average degree 2|E| / |V| (0 for the empty graph).
  double AverageDegree() const {
    return NumNodes() == 0 ? 0.0
                           : static_cast<double>(TotalDegree()) /
                                 static_cast<double>(NumNodes());
  }

  /// True when the CSR arrays live in a mapped snapshot rather than owned
  /// heap vectors.
  bool IsMapped() const { return mapped_ != nullptr; }

  /// Heap bytes owned by this Graph: the full CSR footprint for owned
  /// storage, ~0 for mapped storage (the pages belong to the shared file
  /// cache and are reclaimable/shared — see GraphStore::ApproxBytes).
  uint64_t HeapBytes() const;

  /// Raw CSR sections in serialization order. Snapshot writers
  /// (graph/binary_io.h) stream these verbatim; everyone else should use
  /// the structured accessors above.
  std::span<const uint64_t> RawOffsets() const { return OffsetsSpan(); }
  std::span<const NodeId> RawAdjacency() const { return AdjacencySpan(); }
  std::span<const EdgeId> RawIncident() const { return IncidentSpan(); }

 private:
  Graph(NodeId num_nodes, std::vector<Edge> edges);

  std::span<const uint64_t> OffsetsSpan() const {
    return mapped_ != nullptr ? mapped_->offsets
                              : std::span<const uint64_t>(offsets_);
  }
  std::span<const NodeId> AdjacencySpan() const {
    return mapped_ != nullptr ? mapped_->adjacency
                              : std::span<const NodeId>(adjacency_);
  }
  std::span<const EdgeId> IncidentSpan() const {
    return mapped_ != nullptr ? mapped_->incident
                              : std::span<const EdgeId>(incident_);
  }
  std::span<const Edge> EdgesSpan() const {
    return mapped_ != nullptr ? mapped_->edges
                              : std::span<const Edge>(edges_);
  }

  // Owned storage; all empty when mapped_ is set.
  std::vector<uint64_t> offsets_;   // size NumNodes()+1
  std::vector<NodeId> adjacency_;   // size 2*NumEdges()
  std::vector<EdgeId> incident_;    // size 2*NumEdges(), parallel to adjacency_
  std::vector<Edge> edges_;         // canonical (u <= v), size NumEdges()

  // Mapped storage: shared views into an externally owned (typically
  // memory-mapped) CSR. Copying a Graph shares this handle.
  std::shared_ptr<const CsrView> mapped_;
};

/// Builds the subgraph of `parent` that keeps the whole vertex set and only
/// the edges in `edge_ids` (indices into parent.edges()). Duplicate ids are
/// a programming error. This is the paper's reduced graph G' = (V, E').
Graph SubgraphFromEdgeIds(const Graph& parent,
                          const std::vector<EdgeId>& edge_ids);

}  // namespace edgeshed::graph

#endif  // EDGESHED_GRAPH_GRAPH_H_
