#include "graph/operations.h"

#include <algorithm>
#include <unordered_set>

#include "common/strings.h"
#include "graph/graph_builder.h"

namespace edgeshed::graph {

namespace {

uint64_t PackEdge(const Edge& e) {
  return (static_cast<uint64_t>(e.u) << 32) | e.v;
}

std::unordered_set<uint64_t> EdgeKeySet(const Graph& g) {
  std::unordered_set<uint64_t> keys;
  keys.reserve(g.NumEdges() * 2);
  for (const Edge& e : g.edges()) keys.insert(PackEdge(e));
  return keys;
}

}  // namespace

StatusOr<InducedSubgraph> InduceByNodes(const Graph& g,
                                        const std::vector<NodeId>& nodes) {
  std::vector<NodeId> dense(g.NumNodes(), kInvalidNode);
  InducedSubgraph result;
  result.original_of.reserve(nodes.size());
  for (NodeId u : nodes) {
    if (u >= g.NumNodes()) {
      return Status::InvalidArgument(
          StrFormat("node %u outside [0, %llu)", u,
                    static_cast<unsigned long long>(g.NumNodes())));
    }
    if (dense[u] != kInvalidNode) {
      return Status::InvalidArgument(StrFormat("duplicate node %u", u));
    }
    dense[u] = static_cast<NodeId>(result.original_of.size());
    result.original_of.push_back(u);
  }
  GraphBuilder builder;
  builder.ReserveNodes(static_cast<NodeId>(nodes.size()));
  for (const Edge& e : g.edges()) {
    if (dense[e.u] != kInvalidNode && dense[e.v] != kInvalidNode) {
      builder.AddEdge(dense[e.u], dense[e.v]);
    }
  }
  result.graph = builder.Build();
  return result;
}

Graph GraphUnion(const Graph& a, const Graph& b) {
  GraphBuilder builder;
  builder.ReserveNodes(
      static_cast<NodeId>(std::max(a.NumNodes(), b.NumNodes())));
  for (const Edge& e : a.edges()) builder.AddEdge(e.u, e.v);
  for (const Edge& e : b.edges()) builder.AddEdge(e.u, e.v);
  return builder.Build();
}

Graph GraphIntersection(const Graph& a, const Graph& b) {
  const Graph& small = a.NumEdges() <= b.NumEdges() ? a : b;
  const Graph& large = a.NumEdges() <= b.NumEdges() ? b : a;
  std::unordered_set<uint64_t> large_keys = EdgeKeySet(large);
  GraphBuilder builder;
  builder.ReserveNodes(
      static_cast<NodeId>(std::max(a.NumNodes(), b.NumNodes())));
  for (const Edge& e : small.edges()) {
    if (large_keys.contains(PackEdge(e))) builder.AddEdge(e.u, e.v);
  }
  return builder.Build();
}

Graph GraphDifference(const Graph& a, const Graph& b) {
  std::unordered_set<uint64_t> b_keys = EdgeKeySet(b);
  GraphBuilder builder;
  builder.ReserveNodes(static_cast<NodeId>(a.NumNodes()));
  for (const Edge& e : a.edges()) {
    if (!b_keys.contains(PackEdge(e))) builder.AddEdge(e.u, e.v);
  }
  return builder.Build();
}

InducedSubgraph DropIsolated(const Graph& g) {
  std::vector<NodeId> keep;
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.Degree(u) > 0) keep.push_back(u);
  }
  auto result = InduceByNodes(g, keep);
  EDGESHED_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

double EdgeJaccard(const Graph& a, const Graph& b) {
  if (a.NumEdges() == 0 && b.NumEdges() == 0) return 1.0;
  std::unordered_set<uint64_t> b_keys = EdgeKeySet(b);
  uint64_t shared = 0;
  for (const Edge& e : a.edges()) {
    if (b_keys.contains(PackEdge(e))) ++shared;
  }
  const uint64_t unioned = a.NumEdges() + b.NumEdges() - shared;
  return static_cast<double>(shared) / static_cast<double>(unioned);
}

}  // namespace edgeshed::graph
