#include "graph/external_build.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <deque>
#include <fstream>
#include <mutex>
#include <queue>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "common/strings.h"
#include "graph/edge_list_parse.h"
#include "graph/snapshot_format.h"

namespace edgeshed::graph {

namespace {

using internal::ChunkParse;
using internal::ParseChunk;

constexpr size_t kReadBlockBytes = size_t{4} << 20;
constexpr size_t kQueueDepth = 4;  // read-ahead blocks in flight
constexpr size_t kWriterBufBytes = size_t{1} << 20;

/// Reverse adjacency entry spilled during the merge phase: edge
/// (u, v, id) with u < v contributes {v, u, id}, so after sorting by (v, u)
/// the stream lists each node's smaller neighbors in ascending order.
struct RevEntry {
  NodeId v = 0;
  NodeId u = 0;
  EdgeId id = 0;

  friend bool operator<(const RevEntry& a, const RevEntry& b) {
    return a.v != b.v ? a.v < b.v : a.u < b.u;
  }
};
static_assert(sizeof(RevEntry) == 16, "RevEntry is spilled as raw bytes");

/// Bounded handoff between the reader thread and the parse/intern consumer.
/// Blocks end at newline boundaries, so each parses independently.
class BlockQueue {
 public:
  explicit BlockQueue(size_t max_blocks) : max_blocks_(max_blocks) {}

  /// False once Abort()ed (consumer bailed; reader should stop).
  bool Push(std::string block) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_to_push_.wait(lock, [&] {
      return aborted_ || blocks_.size() < max_blocks_;
    });
    if (aborted_) return false;
    blocks_.push_back(std::move(block));
    ready_to_pop_.notify_one();
    return true;
  }

  /// False when the reader Finish()ed and everything was consumed.
  bool Pop(std::string* out) {
    std::unique_lock<std::mutex> lock(mu_);
    ready_to_pop_.wait(lock,
                       [&] { return finished_ || !blocks_.empty(); });
    if (blocks_.empty()) return false;
    *out = std::move(blocks_.front());
    blocks_.pop_front();
    ready_to_push_.notify_one();
    return true;
  }

  void Finish() {
    std::lock_guard<std::mutex> lock(mu_);
    finished_ = true;
    ready_to_pop_.notify_all();
  }

  void Abort() {
    std::lock_guard<std::mutex> lock(mu_);
    aborted_ = true;
    finished_ = true;
    ready_to_push_.notify_all();
    ready_to_pop_.notify_all();
  }

 private:
  const size_t max_blocks_;
  std::mutex mu_;
  std::condition_variable ready_to_push_;
  std::condition_variable ready_to_pop_;
  std::deque<std::string> blocks_;
  bool finished_ = false;
  bool aborted_ = false;
};

/// Streams the input file into newline-terminated blocks. Runs on its own
/// thread so disk read latency overlaps parsing.
void ReaderLoop(std::ifstream* in, BlockQueue* queue, Status* io_status) {
  std::string tail;
  while (true) {
    std::string block = std::move(tail);
    tail.clear();
    const size_t base = block.size();
    block.resize(base + kReadBlockBytes);
    in->read(block.data() + base,
             static_cast<std::streamsize>(kReadBlockBytes));
    const size_t got = static_cast<size_t>(in->gcount());
    block.resize(base + got);
    const bool at_end = got < kReadBlockBytes;
    if (!at_end) {
      const size_t last_newline = block.rfind('\n');
      if (last_newline == std::string::npos) {
        tail = std::move(block);  // one line spanning whole blocks
        continue;
      }
      tail.assign(block, last_newline + 1, std::string::npos);
      block.resize(last_newline + 1);
    }
    if (!block.empty() && !queue->Push(std::move(block))) return;
    if (at_end) break;
  }
  if (in->bad()) *io_status = Status::IOError("read failed mid-stream");
  queue->Finish();
}

/// Parses one block in parallel sub-chunks split at newline boundaries,
/// exactly like LoadEdgeList's whole-file parse.
std::vector<ChunkParse> ParseBlockParallel(std::string_view data,
                                           int threads) {
  constexpr size_t kMinChunkBytes = size_t{1} << 16;
  const size_t chunk_target = std::clamp<size_t>(
      data.size() / kMinChunkBytes, 1, static_cast<size_t>(threads));
  std::vector<size_t> bounds;
  bounds.push_back(0);
  for (size_t c = 1; c < chunk_target; ++c) {
    size_t pos = data.find('\n', data.size() * c / chunk_target);
    pos = pos == std::string_view::npos ? data.size() : pos + 1;
    if (pos > bounds.back() && pos < data.size()) bounds.push_back(pos);
  }
  bounds.push_back(data.size());
  std::vector<ChunkParse> chunks(bounds.size() - 1);
  ParallelForEach(
      0, chunks.size(),
      [&](uint64_t c) {
        ParseChunk(data, bounds[c], bounds[c + 1], &chunks[c]);
      },
      threads, /*grain=*/1);
  return chunks;
}

/// Removes its temp files on scope exit — success and failure paths alike.
struct TempFiles {
  std::vector<std::string> paths;
  ~TempFiles() {
    for (const std::string& p : paths) std::remove(p.c_str());
  }
  std::string Add(std::string path) {
    paths.push_back(std::move(path));
    return paths.back();
  }
};

template <typename T>
Status SpillRun(std::vector<T>* buf, const std::string& path, int threads) {
  ParallelSort(buf->begin(), buf->end(), std::less<T>(), threads);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open run file: " + path);
  out.write(reinterpret_cast<const char*>(buf->data()),
            static_cast<std::streamsize>(buf->size() * sizeof(T)));
  out.close();
  if (!out) return Status::IOError("run write failed: " + path);
  buf->clear();
  return Status::OK();
}

/// Buffered sequential reader of one raw-record run file.
template <typename T>
class RunReader {
 public:
  RunReader(const std::string& path, size_t buffer_records)
      : in_(path, std::ios::binary), path_(path) {
    buf_.resize(std::max<size_t>(buffer_records, 512));
  }

  bool Next(T* out) {
    if (pos_ == len_ && !Refill()) return false;
    *out = buf_[pos_++];
    return true;
  }

  bool ok() const { return !bad_; }
  const std::string& path() const { return path_; }

 private:
  bool Refill() {
    if (!in_) return false;
    in_.read(reinterpret_cast<char*>(buf_.data()),
             static_cast<std::streamsize>(buf_.size() * sizeof(T)));
    const size_t got = static_cast<size_t>(in_.gcount());
    if (got % sizeof(T) != 0) bad_ = true;
    len_ = got / sizeof(T);
    pos_ = 0;
    return len_ > 0;
  }

  std::ifstream in_;
  std::string path_;
  std::vector<T> buf_;
  size_t pos_ = 0;
  size_t len_ = 0;
  bool bad_ = false;
};

/// K-way merge over sorted run files. Records with equal keys come out in
/// arbitrary run order; callers dedup on the fly where needed.
template <typename T>
class RunMerger {
 public:
  RunMerger(const std::vector<std::string>& paths, size_t buffer_records) {
    readers_.reserve(paths.size());
    for (const std::string& p : paths) {
      readers_.emplace_back(p, buffer_records);
    }
    for (size_t r = 0; r < readers_.size(); ++r) {
      T record;
      if (readers_[r].Next(&record)) heap_.push({record, r});
    }
  }

  bool Peek(T* out) const {
    if (heap_.empty()) return false;
    *out = heap_.top().record;
    return true;
  }

  bool Next(T* out) {
    if (heap_.empty()) return false;
    const Item top = heap_.top();
    heap_.pop();
    *out = top.record;
    T refill;
    if (readers_[top.run].Next(&refill)) heap_.push({refill, top.run});
    return true;
  }

  Status status() const {
    for (const auto& r : readers_) {
      if (!r.ok()) return Status::IOError("corrupt run file: " + r.path());
    }
    return Status::OK();
  }

 private:
  struct Item {
    T record;
    size_t run;
    friend bool operator<(const Item& a, const Item& b) {
      return b.record < a.record;  // min-heap via priority_queue
    }
  };
  std::vector<RunReader<T>> readers_;
  std::priority_queue<Item> heap_;
};

/// Buffered positional writer: appends through a fixed buffer and pwrite()s
/// at an independent file offset, so several sections stream concurrently
/// into one file during the final assembly pass.
class SectionWriter {
 public:
  SectionWriter(int fd, uint64_t offset) : fd_(fd), file_pos_(offset) {
    buf_.reserve(kWriterBufBytes);
  }

  void Write(const void* bytes, size_t n) {
    const char* p = static_cast<const char*>(bytes);
    while (n > 0 && status_.ok()) {
      const size_t take = std::min(n, kWriterBufBytes - buf_.size());
      buf_.append(p, take);
      p += take;
      n -= take;
      if (buf_.size() == kWriterBufBytes) Flush();
    }
  }

  void PutU32(uint32_t value) { Write(&value, sizeof(value)); }
  void PutU64(uint64_t value) { Write(&value, sizeof(value)); }

  Status Close() {
    Flush();
    return status_;
  }

 private:
  void Flush() {
    const char* p = buf_.data();
    size_t left = buf_.size();
    while (left > 0 && status_.ok()) {
      const ssize_t wrote =
          ::pwrite(fd_, p, left, static_cast<off_t>(file_pos_));
      if (wrote < 0) {
        if (errno == EINTR) continue;
        status_ = Status::IOError(StrFormat("snapshot section write: %s",
                                            std::strerror(errno)));
        break;
      }
      p += wrote;
      left -= static_cast<size_t>(wrote);
      file_pos_ += static_cast<uint64_t>(wrote);
    }
    buf_.clear();
  }

  int fd_;
  uint64_t file_pos_;
  std::string buf_;
  Status status_;
};

std::string TempBase(const std::string& out_path,
                     const std::string& temp_dir) {
  if (temp_dir.empty()) return out_path;
  const size_t slash = out_path.find_last_of('/');
  const std::string name =
      slash == std::string::npos ? out_path : out_path.substr(slash + 1);
  return temp_dir + "/" + name;
}

Status CancelStatus(const CancellationToken* cancel) {
  return cancel->ToStatus();
}

}  // namespace

StatusOr<ExternalBuildStats> BuildSnapshotExternal(
    const GraphSource& source, const std::string& out_path,
    const ExternalBuildOptions& options) {
  if (options.snapshot.version != 3) {
    return Status::InvalidArgument(
        "external build writes v3 snapshots only");
  }
  if (!options.snapshot.original_ids.empty()) {
    return Status::InvalidArgument(
        "external build discovers original_ids itself; leave the "
        "SnapshotOptions table empty");
  }
  GraphFormat format = source.format;
  if (format == GraphFormat::kAuto) {
    EDGESHED_ASSIGN_OR_RETURN(format, DetectGraphFormat(source.path));
  }
  if (format != GraphFormat::kText) {
    return Status::InvalidArgument(
        StrFormat("external build ingests text edge lists; %s is %s "
                  "(already binary — convert in memory instead)",
                  source.path.c_str(), GraphFormatName(format)));
  }
  const int threads =
      options.threads > 0 ? options.threads : DefaultThreadCount();
  const uint64_t budget =
      std::max<uint64_t>(options.memory_budget_bytes, uint64_t{1} << 20);

  std::ifstream in(source.path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open edge list file: " + source.path);
  }

  ExternalBuildStats stats;
  TempFiles temps;
  const std::string temp_base = TempBase(out_path, options.temp_dir);

  // --- Phase A: stream, parse, intern, spill sorted deduped edge runs. ---
  BlockQueue queue(kQueueDepth);
  Status reader_status;
  std::thread reader(ReaderLoop, &in, &queue, &reader_status);
  struct JoinGuard {
    std::thread* t;
    BlockQueue* q;
    ~JoinGuard() {
      q->Abort();
      if (t->joinable()) t->join();
    }
  } join_guard{&reader, &queue};

  std::unordered_map<uint64_t, NodeId> dense_id;
  std::vector<uint64_t> original_ids;
  const uint64_t run_edge_capacity =
      std::max<uint64_t>(budget / 2 / sizeof(Edge), uint64_t{1} << 16);
  std::vector<Edge> edge_buf;
  edge_buf.reserve(run_edge_capacity);
  std::vector<std::string> edge_runs;
  const auto spill_edges = [&]() -> Status {
    stats.peak_buffer_bytes = std::max<uint64_t>(
        stats.peak_buffer_bytes, edge_buf.capacity() * sizeof(Edge));
    const std::string run = temps.Add(
        StrFormat("%s.run%zu", temp_base.c_str(), edge_runs.size()));
    stats.spilled_bytes += edge_buf.size() * sizeof(Edge);
    EDGESHED_RETURN_IF_ERROR(SpillRun(&edge_buf, run, threads));
    edge_runs.push_back(run);
    return Status::OK();
  };
  bool first_block = true;
  uint64_t line_base = 0;
  std::string block;
  while (queue.Pop(&block)) {
    if (CancellationRequested(options.cancel)) {
      return CancelStatus(options.cancel);
    }
    if (first_block) {
      first_block = false;
      const GraphFormat sniffed = SniffGraphFormat(block);
      if (sniffed != GraphFormat::kText) {
        return Status::InvalidArgument(StrFormat(
            "%s: not a text edge list — detected %s magic '%.8s'",
            source.path.c_str(), GraphFormatName(sniffed), block.data()));
      }
    }
    const std::vector<ChunkParse> chunks = ParseBlockParallel(block, threads);
    for (const ChunkParse& chunk : chunks) {
      if (chunk.has_error) {
        return Status::InvalidArgument(StrFormat(
            "%s:%llu: expected 'src dst', got '%s'", source.path.c_str(),
            static_cast<unsigned long long>(line_base + chunk.error_line),
            chunk.error_snippet.c_str()));
      }
      // Serial first-seen interning in file order: the dense numbering is
      // bit-identical to the in-memory loader's for every thread count.
      for (const auto& [raw_u, raw_v] : chunk.edges) {
        ++stats.input_edges;
        const auto intern = [&](uint64_t raw) {
          auto [it, inserted] = dense_id.emplace(
              raw, static_cast<NodeId>(original_ids.size()));
          if (inserted) original_ids.push_back(raw);
          return it->second;
        };
        NodeId u = intern(raw_u);
        NodeId v = intern(raw_v);
        if (u == v) continue;  // self-loop
        if (u > v) std::swap(u, v);
        edge_buf.push_back(Edge{u, v});
        // Checked per edge, not per block: the budget bounds the buffer
        // regardless of read or parse granularity. Spilling mid-chunk is
        // safe — runs are merged later, and the intern order is unchanged.
        if (edge_buf.size() >= run_edge_capacity) {
          EDGESHED_RETURN_IF_ERROR(spill_edges());
        }
      }
      line_base += chunk.lines;
    }
  }
  queue.Abort();
  reader.join();
  EDGESHED_RETURN_IF_ERROR(reader_status);
  if (!edge_buf.empty() || edge_runs.empty()) {
    EDGESHED_RETURN_IF_ERROR(spill_edges());
  }
  edge_buf.shrink_to_fit();
  stats.edge_runs = edge_runs.size();
  const uint64_t num_nodes = original_ids.size();
  stats.num_nodes = num_nodes;

  // --- Phase B: k-way merge runs -> unique forward edge stream. Assigns
  // EdgeIds, accumulates degrees, spills reverse runs for the transpose. ---
  const size_t merge_buf_records = std::max<size_t>(
      budget / 4 / std::max<size_t>(edge_runs.size(), 1) / sizeof(Edge),
      512);
  RunMerger<Edge> edge_merge(edge_runs, merge_buf_records);
  const std::string edges_tmp = temps.Add(temp_base + ".edges");
  std::ofstream edges_out(edges_tmp, std::ios::binary | std::ios::trunc);
  if (!edges_out) {
    return Status::IOError("cannot open temp edge file: " + edges_tmp);
  }
  std::vector<uint32_t> degrees(num_nodes, 0);
  const uint64_t rev_capacity =
      std::max<uint64_t>(budget / 2 / sizeof(RevEntry), uint64_t{1} << 16);
  std::vector<RevEntry> rev_buf;
  rev_buf.reserve(rev_capacity);
  std::vector<std::string> rev_runs;
  auto spill_rev = [&]() -> Status {
    stats.peak_buffer_bytes = std::max<uint64_t>(
        stats.peak_buffer_bytes, rev_buf.capacity() * sizeof(RevEntry));
    const std::string run = temps.Add(
        StrFormat("%s.rev%zu", temp_base.c_str(), rev_runs.size()));
    stats.spilled_bytes += rev_buf.size() * sizeof(RevEntry);
    EDGESHED_RETURN_IF_ERROR(SpillRun(&rev_buf, run, threads));
    rev_runs.push_back(run);
    return Status::OK();
  };
  uint64_t num_edges = 0;
  Edge e;
  Edge last{kInvalidNode, kInvalidNode};
  while (edge_merge.Next(&e)) {
    if (e == last) continue;  // duplicate across runs
    last = e;
    edges_out.write(reinterpret_cast<const char*>(&e), sizeof(Edge));
    ++degrees[e.u];
    ++degrees[e.v];
    rev_buf.push_back(RevEntry{e.v, e.u, num_edges});
    ++num_edges;
    if (rev_buf.size() >= rev_capacity) {
      EDGESHED_RETURN_IF_ERROR(spill_rev());
    }
    if ((num_edges & 0xFFFF) == 0 &&
        CancellationRequested(options.cancel)) {
      return CancelStatus(options.cancel);
    }
  }
  EDGESHED_RETURN_IF_ERROR(edge_merge.status());
  edges_out.close();
  if (!edges_out) {
    return Status::IOError("temp edge write failed: " + edges_tmp);
  }
  if (!rev_buf.empty()) {
    EDGESHED_RETURN_IF_ERROR(spill_rev());
  }
  rev_buf.shrink_to_fit();
  stats.reverse_runs = rev_runs.size();
  stats.num_edges = num_edges;

  // --- Phase C: stream the CSR sections into place. ---
  bool identity_ids = true;
  for (uint64_t i = 0; i < num_nodes; ++i) {
    if (original_ids[i] != i) {
      identity_ids = false;
      break;
    }
  }
  SnapshotHeader header = PlanSnapshotLayout(
      num_nodes, num_edges, /*with_original_ids=*/!identity_ids,
      options.snapshot.page_align, options.snapshot.chunk_bytes);
  const int fd = ::open(out_path.c_str(),
                        O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IOError(StrFormat("cannot open %s for writing: %s",
                                     out_path.c_str(),
                                     std::strerror(errno)));
  }
  struct FdGuard {
    int fd;
    ~FdGuard() { ::close(fd); }
  } fd_guard{fd};
  // Size the file up front: section gaps become zero-filled holes (same
  // bytes the in-memory writer pads explicitly) and ENOSPC surfaces now.
  if (::ftruncate(fd, static_cast<off_t>(header.FileBytes())) != 0) {
    return Status::IOError(StrFormat("cannot size %s: %s", out_path.c_str(),
                                     std::strerror(errno)));
  }

  const auto section_offset = [&](int s) {
    return header.sections[static_cast<size_t>(s)].offset;
  };
  SectionWriter offsets_w(fd, section_offset(kSectionOffsets));
  SectionWriter adjacency_w(fd, section_offset(kSectionAdjacency));
  SectionWriter incident_w(fd, section_offset(kSectionIncident));

  uint64_t prefix = 0;
  offsets_w.PutU64(0);
  for (uint64_t u = 0; u < num_nodes; ++u) {
    prefix += degrees[u];
    offsets_w.PutU64(prefix);
  }

  // Merge-join: for node s, reverse entries with v == s list the smaller
  // neighbors ascending, then forward edges with u == s list the larger
  // ones — together the sorted adjacency row, ids attached.
  RunMerger<RevEntry> rev_merge(
      rev_runs,
      std::max<size_t>(budget / 4 /
                           std::max<size_t>(rev_runs.size(), 1) /
                           sizeof(RevEntry),
                       512));
  RunReader<Edge> forward(edges_tmp, size_t{1} << 16);
  RevEntry rev{};
  bool have_rev = rev_merge.Next(&rev);
  Edge fwd{};
  bool have_fwd = forward.Next(&fwd);
  uint64_t fwd_id = 0;
  for (uint64_t s = 0; s < num_nodes; ++s) {
    while (have_rev && rev.v == s) {
      adjacency_w.PutU32(rev.u);
      incident_w.PutU64(rev.id);
      have_rev = rev_merge.Next(&rev);
    }
    while (have_fwd && fwd.u == s) {
      adjacency_w.PutU32(fwd.v);
      incident_w.PutU64(fwd_id++);
      have_fwd = forward.Next(&fwd);
    }
    if ((s & 0xFFFF) == 0 && CancellationRequested(options.cancel)) {
      return CancelStatus(options.cancel);
    }
  }
  EDGESHED_RETURN_IF_ERROR(rev_merge.status());
  if (!forward.ok()) {
    return Status::IOError("corrupt temp edge file: " + edges_tmp);
  }

  // Edges section: the forward temp file IS the section payload.
  {
    SectionWriter edges_w(fd, section_offset(kSectionEdges));
    std::ifstream copy(edges_tmp, std::ios::binary);
    std::vector<char> copy_buf(kWriterBufBytes);
    while (copy) {
      copy.read(copy_buf.data(),
                static_cast<std::streamsize>(copy_buf.size()));
      const size_t got = static_cast<size_t>(copy.gcount());
      if (got == 0) break;
      edges_w.Write(copy_buf.data(), got);
    }
    EDGESHED_RETURN_IF_ERROR(edges_w.Close());
  }
  if (!identity_ids) {
    SectionWriter ids_w(fd, section_offset(kSectionOriginalIds));
    ids_w.Write(original_ids.data(), original_ids.size() * 8);
    EDGESHED_RETURN_IF_ERROR(ids_w.Close());
  }
  EDGESHED_RETURN_IF_ERROR(offsets_w.Close());
  EDGESHED_RETURN_IF_ERROR(adjacency_w.Close());
  EDGESHED_RETURN_IF_ERROR(incident_w.Close());

  EDGESHED_RETURN_IF_ERROR(FinalizeSnapshotFile(out_path, std::move(header)));
  return stats;
}

}  // namespace edgeshed::graph
