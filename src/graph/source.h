#ifndef EDGESHED_GRAPH_SOURCE_H_
#define EDGESHED_GRAPH_SOURCE_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/cancellation.h"
#include "common/statusor.h"
#include "graph/graph.h"

namespace edgeshed::graph {

/// Result of loading a graph from any on-disk representation.
struct LoadedGraph {
  Graph graph;
  /// original_ids[i] is the id the input used for dense node i; node ids in
  /// SNAP files are arbitrary and sparse, so loaders remap them. Formats
  /// that don't record a remap (v1/v2 snapshots, v3 snapshots written
  /// without an id table) leave this empty, meaning identity.
  std::vector<uint64_t> original_ids;
};

/// On-disk graph representations the unified loader understands.
/// DESIGN.md §14 has the format reference table.
enum class GraphFormat {
  kAuto,         // sniff from the leading bytes of the file
  kText,         // SNAP-style whitespace edge list ("u v" lines, # comments)
  kBinaryEdges,  // "EDGSHEDL" binary edge list (graph/edge_list_io.h)
  kSnapshot,     // "EDGSHED1/2/3" CSR snapshot (graph/binary_io.h)
};

/// Where to load a graph from. `format = kAuto` sniffs the file's magic:
/// a known snapshot or binary-edge magic selects that format, anything else
/// is treated as text. Explicit formats skip sniffing and fail with
/// InvalidArgument when the bytes disagree (a v3 snapshot handed to the
/// text parser reports the detected magic, not a line-1 parse error).
struct GraphSource {
  std::string path;
  GraphFormat format = GraphFormat::kAuto;

  GraphSource() = default;
  /// Implicit from a path: LoadGraph("graph.txt") auto-detects.
  GraphSource(std::string p) : path(std::move(p)) {}          // NOLINT
  GraphSource(const char* p) : path(p) {}                     // NOLINT
  GraphSource(std::string p, GraphFormat f)
      : path(std::move(p)), format(f) {}
};

/// Knobs shared by every loader behind LoadGraph.
struct IngestOptions {
  /// Worker threads for parsing / checksum verification / validation
  /// (0 = DefaultThreadCount()).
  int threads = 0;
  /// Serve v3 snapshots zero-copy from a shared file mapping instead of
  /// copying the CSR onto the heap. Ignored (copy load) for every other
  /// format — only v3 lays its sections out for in-place adoption.
  bool mmap = true;
  /// Verify snapshot checksums and run deep O(n+m) structural validation.
  /// Turning this off keeps the O(n) shape checks but trusts file content —
  /// for repeated loads of snapshots this process just wrote.
  bool verify_checksums = true;
  /// Optional cooperative cancel; loaders poll at coarse grain and return
  /// Cancelled/DeadlineExceeded mid-ingest.
  const CancellationToken* cancel = nullptr;
};

/// Classifies leading file bytes (8+ for a definite answer): snapshot and
/// binary-edge magics map to their formats, everything else is text.
GraphFormat SniffGraphFormat(std::string_view leading_bytes);

/// Sniffs the on-disk format from the file's leading bytes: snapshot and
/// binary-edge magics map to their formats, everything else (including an
/// empty file) is text. IOError when the file cannot be opened.
StatusOr<GraphFormat> DetectGraphFormat(const std::string& path);

/// Unified entry point for every on-disk graph representation: text edge
/// lists, binary edge lists, and CSR snapshots (copy or mmap). This is the
/// API the CLI, GraphStore, and the dist fleet all load through.
StatusOr<LoadedGraph> LoadGraph(const GraphSource& source,
                                const IngestOptions& options = {});

/// Canonical lowercase name ("auto", "text", "binary_edges", "snapshot").
const char* GraphFormatName(GraphFormat format);

/// Parses a format name as accepted by the CLI --format flag; the inverse
/// of GraphFormatName. InvalidArgument on anything else.
StatusOr<GraphFormat> ParseGraphFormat(std::string_view name);

}  // namespace edgeshed::graph

#endif  // EDGESHED_GRAPH_SOURCE_H_
