#ifndef EDGESHED_GRAPH_MUTATION_IO_H_
#define EDGESHED_GRAPH_MUTATION_IO_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/statusor.h"
#include "graph/graph.h"

namespace edgeshed::graph {

/// One batch of edge mutations against a dynamic graph. Batches are the
/// atomicity unit: ApplyBatch either installs every mutation in the batch as
/// one new version or rejects the whole batch.
struct MutationBatch {
  std::vector<Edge> inserts;
  std::vector<Edge> deletes;

  bool empty() const { return inserts.empty() && deletes.empty(); }
  size_t size() const { return inserts.size() + deletes.size(); }
};

/// Canonical packed key for an undirected edge with u <= v. Used by the
/// overlay's hash indexes and by batch-level duplicate detection.
inline uint64_t EdgeKey(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | static_cast<uint64_t>(v);
}
inline uint64_t EdgeKey(const Edge& e) { return EdgeKey(e.u, e.v); }

/// Structural validation of one batch, in place: canonicalizes every edge to
/// u < v, then rejects self-loops and duplicates *within the batch* — a pair
/// listed twice among inserts, twice among deletes, or on both sides — with
/// InvalidArgument naming the offending pair. Silent dedup here would let
/// the overlay and the compacted CSR disagree about multiplicity, so
/// ambiguity is an error, never a guess. Does NOT check liveness against any
/// particular graph version; VersionedGraph::ApplyBatch does that under its
/// own lock.
Status ValidateAndCanonicalizeBatch(MutationBatch* batch);

/// Parses a mutation stream from text. Line format:
///
///   + u v     insert edge {u, v}
///   - u v     delete edge {u, v}
///   ---       batch separator (end the current batch, start a new one)
///   # ...     comment (also '%'); blank lines ignored
///
/// Returns the batches in file order; a trailing separator or an empty
/// final batch is dropped. Every batch is validated with
/// ValidateAndCanonicalizeBatch, so the parser enforces the same
/// self-loop/duplicate rejection as ApplyBatch and errors name both the
/// offending pair and the 1-based line. Node ids must fit NodeId (u32).
StatusOr<std::vector<MutationBatch>> ParseMutationText(std::string_view text);

/// ParseMutationText over the contents of `path`.
StatusOr<std::vector<MutationBatch>> ParseMutationFile(
    const std::string& path);

}  // namespace edgeshed::graph

#endif  // EDGESHED_GRAPH_MUTATION_IO_H_
