#include "graph/generators/generators.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>
#include <vector>

#include "graph/graph_builder.h"

namespace edgeshed::graph {

namespace {

uint64_t PackEdge(NodeId u, NodeId v) {
  if (u > v) std::swap(u, v);
  return (static_cast<uint64_t>(u) << 32) | v;
}

/// Visits each index in [0, total) independently with probability `prob`,
/// using geometric gap-skipping so the cost is O(prob * total) instead of
/// O(total). Used by the planted-partition generator where edge
/// probabilities are small.
template <typename Callback>
void VisitBernoulliIndices(uint64_t total, double prob, Rng& rng,
                           Callback&& callback) {
  if (prob <= 0.0 || total == 0) return;
  if (prob >= 1.0) {
    for (uint64_t i = 0; i < total; ++i) callback(i);
    return;
  }
  const double log_one_minus_p = std::log1p(-prob);
  double position = -1.0;
  for (;;) {
    double u = rng.UniformDouble();
    // Skip a Geometric(prob)-distributed number of indices.
    position += 1.0 + std::floor(std::log1p(-u) / log_one_minus_p);
    if (position >= static_cast<double>(total)) return;
    callback(static_cast<uint64_t>(position));
  }
}

}  // namespace

Graph ErdosRenyi(NodeId num_nodes, uint64_t num_edges, Rng& rng) {
  const uint64_t n = num_nodes;
  const uint64_t max_edges = n * (n - 1) / 2;
  EDGESHED_CHECK_LE(num_edges, max_edges)
      << "G(n,m) cannot place " << num_edges << " distinct edges on " << n
      << " nodes";
  GraphBuilder builder;
  builder.ReserveNodes(num_nodes);
  builder.ReserveEdges(num_edges);
  std::unordered_set<uint64_t> used;
  used.reserve(num_edges * 2);
  while (used.size() < num_edges) {
    NodeId u = static_cast<NodeId>(rng.UniformU64(n));
    NodeId v = static_cast<NodeId>(rng.UniformU64(n));
    if (u == v) continue;
    if (used.insert(PackEdge(u, v)).second) {
      builder.AddEdge(u, v);
    }
  }
  return builder.Build();
}

Graph BarabasiAlbert(NodeId num_nodes, uint32_t edges_per_node, Rng& rng) {
  EDGESHED_CHECK_GE(num_nodes, edges_per_node + 1);
  EDGESHED_CHECK_GT(edges_per_node, 0u);
  GraphBuilder builder;
  builder.ReserveNodes(num_nodes);

  // `targets` holds every node once per unit of degree; uniform sampling
  // from it implements preferential attachment.
  std::vector<NodeId> targets;
  const NodeId seed_size = edges_per_node + 1;
  for (NodeId u = 0; u < seed_size; ++u) {
    for (NodeId v = u + 1; v < seed_size; ++v) {
      builder.AddEdge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }

  std::unordered_set<NodeId> chosen;
  for (NodeId v = seed_size; v < num_nodes; ++v) {
    chosen.clear();
    while (chosen.size() < edges_per_node) {
      NodeId candidate = targets[rng.UniformIndex(targets.size())];
      chosen.insert(candidate);
    }
    for (NodeId u : chosen) {
      builder.AddEdge(u, v);
      targets.push_back(u);
      targets.push_back(v);
    }
  }
  return builder.Build();
}

Graph PowerlawCluster(NodeId num_nodes, uint32_t edges_per_node,
                      double triangle_prob, Rng& rng) {
  EDGESHED_CHECK_GE(num_nodes, edges_per_node + 1);
  EDGESHED_CHECK_GT(edges_per_node, 0u);
  GraphBuilder builder;
  builder.ReserveNodes(num_nodes);

  std::vector<std::vector<NodeId>> adjacency(num_nodes);
  std::vector<NodeId> targets;
  auto connect = [&](NodeId u, NodeId v) {
    builder.AddEdge(u, v);
    adjacency[u].push_back(v);
    adjacency[v].push_back(u);
    targets.push_back(u);
    targets.push_back(v);
  };

  const NodeId seed_size = edges_per_node + 1;
  for (NodeId u = 0; u < seed_size; ++u) {
    for (NodeId v = u + 1; v < seed_size; ++v) connect(u, v);
  }

  std::unordered_set<NodeId> linked;
  for (NodeId v = seed_size; v < num_nodes; ++v) {
    linked.clear();
    NodeId last_target = kInvalidNode;
    uint32_t formed = 0;
    // Bounded retries keep degenerate corners (tiny target pools) from
    // spinning; falling short by an edge or two is acceptable noise.
    uint32_t attempts = 0;
    const uint32_t max_attempts = 64 * edges_per_node + 64;
    while (formed < edges_per_node && attempts++ < max_attempts) {
      NodeId candidate;
      if (last_target != kInvalidNode && rng.Bernoulli(triangle_prob) &&
          !adjacency[last_target].empty()) {
        // Triad step: close a triangle through a neighbor of the previous
        // attachment point (Holme–Kim).
        candidate = adjacency[last_target]
                              [rng.UniformIndex(adjacency[last_target].size())];
      } else {
        candidate = targets[rng.UniformIndex(targets.size())];
      }
      if (candidate == v || linked.contains(candidate)) continue;
      linked.insert(candidate);
      connect(candidate, v);
      last_target = candidate;
      ++formed;
    }
  }
  return builder.Build();
}

Graph WattsStrogatz(NodeId num_nodes, uint32_t k, double beta, Rng& rng) {
  EDGESHED_CHECK_EQ(k % 2, 0u) << "Watts-Strogatz requires even k";
  EDGESHED_CHECK_GT(num_nodes, k);
  std::unordered_set<uint64_t> present;
  std::vector<Edge> edges;
  for (NodeId u = 0; u < num_nodes; ++u) {
    for (uint32_t j = 1; j <= k / 2; ++j) {
      NodeId v = static_cast<NodeId>((u + j) % num_nodes);
      edges.push_back(Edge{u, v});
      present.insert(PackEdge(u, v));
    }
  }
  for (Edge& e : edges) {
    if (!rng.Bernoulli(beta)) continue;
    // Rewire the far endpoint to a uniform non-duplicate, non-self target.
    for (int tries = 0; tries < 32; ++tries) {
      NodeId w = static_cast<NodeId>(rng.UniformU64(num_nodes));
      if (w == e.u || w == e.v) continue;
      if (present.contains(PackEdge(e.u, w))) continue;
      present.erase(PackEdge(e.u, e.v));
      present.insert(PackEdge(e.u, w));
      e.v = w;
      break;
    }
  }
  GraphBuilder builder;
  builder.ReserveNodes(num_nodes);
  for (const Edge& e : edges) builder.AddEdge(e.u, e.v);
  return builder.Build();
}

Graph RMat(uint32_t scale, uint32_t edge_factor, double a, double b, double c,
           Rng& rng) {
  EDGESHED_CHECK_LT(scale, 32u);
  const double d = 1.0 - a - b - c;
  EDGESHED_CHECK(a >= 0 && b >= 0 && c >= 0 && d >= 0)
      << "R-MAT probabilities must be a non-negative partition of 1";
  const NodeId n = static_cast<NodeId>(1u) << scale;
  const uint64_t nominal_edges = static_cast<uint64_t>(edge_factor) * n;
  GraphBuilder builder;
  builder.ReserveNodes(n);
  builder.ReserveEdges(nominal_edges);
  for (uint64_t i = 0; i < nominal_edges; ++i) {
    NodeId u = 0;
    NodeId v = 0;
    for (uint32_t level = 0; level < scale; ++level) {
      double r = rng.UniformDouble();
      u <<= 1;
      v <<= 1;
      if (r < a) {
        // top-left quadrant: no bits set
      } else if (r < a + b) {
        v |= 1;
      } else if (r < a + b + c) {
        u |= 1;
      } else {
        u |= 1;
        v |= 1;
      }
    }
    if (u != v) builder.AddEdge(u, v);
  }
  return builder.Build();
}

Graph PlantedPartition(NodeId num_nodes, uint32_t num_communities,
                       double p_in, double p_out, Rng& rng) {
  EDGESHED_CHECK_GT(num_communities, 0u);
  GraphBuilder builder;
  builder.ReserveNodes(num_nodes);

  // Communities are contiguous blocks: node u belongs to community
  // u / ceil(n / k). (Documented; consumers that need ground truth use the
  // same arithmetic.)
  const NodeId block = (num_nodes + num_communities - 1) / num_communities;

  // Intra-community edges, one community at a time.
  for (uint32_t community = 0; community < num_communities; ++community) {
    const NodeId begin = static_cast<NodeId>(community * block);
    if (begin >= num_nodes) break;
    const NodeId end = std::min<NodeId>(num_nodes, begin + block);
    const uint64_t size = end - begin;
    const uint64_t pairs = size * (size - 1) / 2;
    VisitBernoulliIndices(pairs, p_in, rng, [&](uint64_t index) {
      // Unrank `index` into a pair (row, col), row < col, within the block.
      uint64_t row = static_cast<uint64_t>(
          (1.0 + std::sqrt(1.0 + 8.0 * static_cast<double>(index))) / 2.0);
      if (row == 0) row = 1;
      while (row > 1 && row * (row - 1) / 2 > index) --row;
      while ((row + 1) * row / 2 <= index) ++row;
      uint64_t col = index - row * (row - 1) / 2;
      builder.AddEdge(static_cast<NodeId>(begin + row),
                      static_cast<NodeId>(begin + col));
    });
  }

  // Inter-community edges over ordered community pairs.
  for (uint32_t ci = 0; ci < num_communities; ++ci) {
    const NodeId ci_begin = static_cast<NodeId>(ci * block);
    if (ci_begin >= num_nodes) break;
    const NodeId ci_end = std::min<NodeId>(num_nodes, ci_begin + block);
    for (uint32_t cj = ci + 1; cj < num_communities; ++cj) {
      const NodeId cj_begin = static_cast<NodeId>(cj * block);
      if (cj_begin >= num_nodes) break;
      const NodeId cj_end = std::min<NodeId>(num_nodes, cj_begin + block);
      const uint64_t rows = ci_end - ci_begin;
      const uint64_t cols = cj_end - cj_begin;
      VisitBernoulliIndices(rows * cols, p_out, rng, [&](uint64_t index) {
        builder.AddEdge(static_cast<NodeId>(ci_begin + index / cols),
                        static_cast<NodeId>(cj_begin + index % cols));
      });
    }
  }
  return builder.Build();
}

Graph ConfigurationModel(const std::vector<uint32_t>& degrees, Rng& rng) {
  // Stub list: vertex u appears degrees[u] times.
  std::vector<NodeId> stubs;
  uint64_t total = 0;
  for (uint32_t d : degrees) total += d;
  stubs.reserve(total);
  for (NodeId u = 0; u < degrees.size(); ++u) {
    for (uint32_t i = 0; i < degrees[u]; ++i) stubs.push_back(u);
  }
  rng.Shuffle(&stubs);

  GraphBuilder builder;
  builder.ReserveNodes(static_cast<NodeId>(degrees.size()));
  std::unordered_set<uint64_t> used;
  // Pair consecutive stubs; retry collisions a bounded number of times by
  // re-shuffling the tail (simple and adequate for test-scale sequences).
  size_t i = 0;
  uint32_t retries = 0;
  while (i + 1 < stubs.size()) {
    NodeId u = stubs[i];
    NodeId v = stubs[i + 1];
    if (u == v || used.contains(PackEdge(u, v))) {
      if (retries++ < 32 && i + 2 < stubs.size()) {
        // Swap the offending stub with a random later one and retry.
        size_t j = i + 2 + rng.UniformIndex(stubs.size() - i - 2);
        std::swap(stubs[i + 1], stubs[j]);
        continue;
      }
      // Give up on this pair: drop both stubs.
      retries = 0;
      i += 2;
      continue;
    }
    retries = 0;
    used.insert(PackEdge(u, v));
    builder.AddEdge(u, v);
    i += 2;
  }
  return builder.Build();
}

Graph ChungLu(const std::vector<double>& weights, Rng& rng) {
  const auto n = static_cast<NodeId>(weights.size());
  double total_weight = 0.0;
  for (double w : weights) {
    EDGESHED_CHECK_GE(w, 0.0);
    total_weight += w;
  }
  GraphBuilder builder;
  builder.ReserveNodes(n);
  if (total_weight <= 0.0) return builder.Build();

  // Order vertices by non-increasing weight, then use the Miller-Hagberg
  // skipping construction: for each u, walk candidates v > u, skipping
  // geometrically under the running probability bound q = min(1, w_u w_v /
  // S), accepting with ratio p/q. O(n + m) in practice.
  std::vector<NodeId> by_weight(n);
  std::iota(by_weight.begin(), by_weight.end(), NodeId{0});
  std::sort(by_weight.begin(), by_weight.end(), [&](NodeId a, NodeId b) {
    return weights[a] > weights[b];
  });
  for (size_t iu = 0; iu + 1 < by_weight.size(); ++iu) {
    const NodeId u = by_weight[iu];
    const double wu = weights[u];
    if (wu <= 0.0) break;
    size_t iv = iu + 1;
    double q = std::min(1.0, wu * weights[by_weight[iv]] / total_weight);
    while (iv < by_weight.size() && q > 0.0) {
      // Geometric skip under bound q.
      if (q < 1.0) {
        const double r = rng.UniformDouble();
        iv += static_cast<size_t>(std::floor(std::log1p(-r) / std::log1p(-q)));
      }
      if (iv >= by_weight.size()) break;
      const NodeId v = by_weight[iv];
      const double p = std::min(1.0, wu * weights[v] / total_weight);
      if (rng.UniformDouble() < p / q) builder.AddEdge(u, v);
      q = p;  // weights are non-increasing, so p is a valid new bound
      ++iv;
    }
  }
  return builder.Build();
}

}  // namespace edgeshed::graph
