#ifndef EDGESHED_GRAPH_GENERATORS_GENERATORS_H_
#define EDGESHED_GRAPH_GENERATORS_GENERATORS_H_

#include <cstdint>

#include "common/random.h"
#include "graph/graph.h"

namespace edgeshed::graph {

/// Synthetic graph generators.
///
/// These stand in for the paper's SNAP downloads in offline environments
/// (DESIGN.md §3): each family matches the structural regime of one of the
/// paper's datasets. All generators are deterministic given the Rng seed and
/// always return simple undirected graphs (self-loops dropped, parallel
/// edges collapsed), which can make the realized |E| slightly smaller than
/// the nominal target for the collision-prone families (R-MAT).

/// G(n, m): exactly `num_edges` distinct uniform edges over `num_nodes`
/// vertices. Requires num_edges <= n*(n-1)/2.
Graph ErdosRenyi(NodeId num_nodes, uint64_t num_edges, Rng& rng);

/// Barabási–Albert preferential attachment: starts from a clique of
/// `edges_per_node` + 1 vertices, then each new vertex attaches to
/// `edges_per_node` distinct existing vertices chosen proportionally to
/// degree. Produces the heavy-tailed degree laws of collaboration networks.
Graph BarabasiAlbert(NodeId num_nodes, uint32_t edges_per_node, Rng& rng);

/// Holme–Kim "powerlaw cluster" model: Barabási–Albert plus, after each
/// preferential attachment, a triad-closing step with probability
/// `triangle_prob`. Matches the high clustering of co-authorship graphs.
Graph PowerlawCluster(NodeId num_nodes, uint32_t edges_per_node,
                      double triangle_prob, Rng& rng);

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors per
/// side pair (k even), each lattice edge rewired with probability `beta`.
Graph WattsStrogatz(NodeId num_nodes, uint32_t k, double beta, Rng& rng);

/// R-MAT / Kronecker-style generator (Chakrabarti et al.): 2^scale vertices,
/// `edge_factor * 2^scale` nominal edges, recursive quadrant probabilities
/// (a, b, c, implicit d = 1-a-b-c). Skewed, community-like, the standard
/// surrogate for large social networks (our com-LiveJournal stand-in).
Graph RMat(uint32_t scale, uint32_t edge_factor, double a, double b, double c,
           Rng& rng);

/// Planted-partition model: `num_communities` equal-size groups; each
/// potential intra-community edge appears with probability `p_in`, each
/// inter-community edge with `p_out`. Ground truth for community-sensitive
/// tasks (link prediction within community).
Graph PlantedPartition(NodeId num_nodes, uint32_t num_communities,
                       double p_in, double p_out, Rng& rng);

/// Configuration model: a uniform-ish simple graph with (approximately) the
/// given degree sequence, built by stub matching with rejection of
/// self-loops and duplicates (leftover stubs are dropped, so realized
/// degrees can fall slightly short on skewed sequences). The classic null
/// model for "is property X explained by degrees alone?" — which is
/// exactly the question degree-preserving shedding raises.
Graph ConfigurationModel(const std::vector<uint32_t>& degrees, Rng& rng);

/// Chung-Lu model: each pair (u, v) is an edge independently with
/// probability min(1, w_u w_v / Σw). Expected degrees equal the weights;
/// the soft-constraint sibling of the configuration model.
Graph ChungLu(const std::vector<double>& weights, Rng& rng);

}  // namespace edgeshed::graph

#endif  // EDGESHED_GRAPH_GENERATORS_GENERATORS_H_
