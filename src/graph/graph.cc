#include "graph/graph.h"

#include <algorithm>
#include <atomic>
#include <string>

#include "common/parallel.h"
#include "common/strings.h"

namespace edgeshed::graph {

namespace {

constexpr uint64_t kNone = static_cast<uint64_t>(-1);

/// Lowers `candidate` into `slot` if it is smaller — used to report the
/// first (lowest-index) offending edge deterministically regardless of which
/// worker finds it.
void AtomicMinIndex(std::atomic<uint64_t>* slot, uint64_t candidate) {
  uint64_t current = slot->load(std::memory_order_relaxed);
  while (candidate < current &&
         !slot->compare_exchange_weak(current, candidate,
                                      std::memory_order_relaxed)) {
  }
}

/// Blocked parallel in-place inclusive prefix sum. Integer additions are
/// associative, so any chunk layout produces the same offsets.
void ParallelInclusivePrefixSum(std::vector<uint64_t>* values) {
  const uint64_t n = values->size();
  constexpr uint64_t kMinPerChunk = uint64_t{1} << 15;
  const uint64_t threads = static_cast<uint64_t>(DefaultThreadCount());
  const uint64_t chunks =
      std::min<uint64_t>(threads, std::max<uint64_t>(1, n / kMinPerChunk));
  if (chunks <= 1) {
    for (uint64_t i = 1; i < n; ++i) (*values)[i] += (*values)[i - 1];
    return;
  }
  std::vector<uint64_t> bounds(chunks + 1);
  for (uint64_t c = 0; c <= chunks; ++c) bounds[c] = n * c / chunks;
  std::vector<uint64_t> chunk_totals(chunks, 0);
  ParallelForEach(
      0, chunks,
      [&](uint64_t c) {
        uint64_t* data = values->data();
        for (uint64_t i = bounds[c] + 1; i < bounds[c + 1]; ++i) {
          data[i] += data[i - 1];
        }
        chunk_totals[c] = data[bounds[c + 1] - 1];
      },
      0, /*grain=*/1);
  std::vector<uint64_t> chunk_offsets(chunks, 0);
  for (uint64_t c = 1; c < chunks; ++c) {
    chunk_offsets[c] = chunk_offsets[c - 1] + chunk_totals[c - 1];
  }
  ParallelForEach(
      1, chunks,
      [&](uint64_t c) {
        uint64_t* data = values->data();
        for (uint64_t i = bounds[c]; i < bounds[c + 1]; ++i) {
          data[i] += chunk_offsets[c];
        }
      },
      0, /*grain=*/1);
}

}  // namespace

StatusOr<Graph> Graph::FromEdges(NodeId num_nodes, std::vector<Edge> edges) {
  const uint64_t m = edges.size();

  // Validate endpoints / self-loops and canonicalize (u <= v) in parallel,
  // tracking the lowest offending index so the reported error matches what a
  // serial scan would find first.
  std::atomic<uint64_t> first_bad{kNone};
  ParallelFor(0, m, [&](uint64_t begin, uint64_t end) {
    uint64_t local_bad = kNone;
    for (uint64_t i = begin; i < end; ++i) {
      Edge& e = edges[i];
      if (e.u >= num_nodes || e.v >= num_nodes || e.u == e.v) {
        local_bad = i;
        break;
      }
      if (e.u > e.v) std::swap(e.u, e.v);
    }
    if (local_bad != kNone) AtomicMinIndex(&first_bad, local_bad);
  });
  if (first_bad.load(std::memory_order_relaxed) != kNone) {
    const Edge& e = edges[first_bad.load(std::memory_order_relaxed)];
    if (e.u >= num_nodes || e.v >= num_nodes) {
      return Status::InvalidArgument(StrFormat(
          "edge (%u, %u) has endpoint outside [0, %u)", e.u, e.v, num_nodes));
    }
    return Status::InvalidArgument(
        StrFormat("self-loop at node %u; simple graphs only", e.u));
  }

  ParallelSort(edges.begin(), edges.end());

  // Duplicate detection: each pair of adjacent equal edges is visible from
  // the second element, so a parallel scan over [1, m) finds them all.
  std::atomic<uint64_t> first_dup{kNone};
  ParallelFor(1, m, [&](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      if (edges[i - 1] == edges[i]) {
        AtomicMinIndex(&first_dup, i);
        break;
      }
    }
  });
  if (first_dup.load(std::memory_order_relaxed) != kNone) {
    const Edge& e = edges[first_dup.load(std::memory_order_relaxed)];
    return Status::InvalidArgument(
        StrFormat("duplicate edge (%u, %u)", e.u, e.v));
  }
  return Graph(num_nodes, std::move(edges));
}

Graph::Graph(NodeId num_nodes, std::vector<Edge> edges)
    : edges_(std::move(edges)) {
  // Degree count: relaxed atomic increments are safe (counts are integers,
  // so the accumulation order cannot change the result).
  offsets_.assign(static_cast<size_t>(num_nodes) + 1, 0);
  ParallelFor(0, edges_.size(), [&](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      const Edge& e = edges_[i];
      std::atomic_ref<uint64_t>(offsets_[e.u + 1])
          .fetch_add(1, std::memory_order_relaxed);
      std::atomic_ref<uint64_t>(offsets_[e.v + 1])
          .fetch_add(1, std::memory_order_relaxed);
    }
  });
  ParallelInclusivePrefixSum(&offsets_);

  // Adjacency fill stays serial: the cursor walk writes each slot exactly
  // once in edge-id order, which is what makes every adjacency list come out
  // sorted (and deterministic) without an extra per-node sort pass.
  adjacency_.resize(2 * edges_.size());
  incident_.resize(2 * edges_.size());
  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    const Edge& e = edges_[id];
    adjacency_[cursor[e.u]] = e.v;
    incident_[cursor[e.u]++] = id;
    adjacency_[cursor[e.v]] = e.u;
    incident_[cursor[e.v]++] = id;
  }
  // Edges were sorted by (u, v); the u-side adjacency is already ascending,
  // but the v-side entries arrive in u-order which is also ascending per
  // vertex, so each adjacency list is sorted without an extra pass. Verify
  // in debug builds.
#ifndef NDEBUG
  for (NodeId u = 0; u < num_nodes; ++u) {
    auto nbrs = Neighbors(u);
    EDGESHED_DCHECK(std::is_sorted(nbrs.begin(), nbrs.end()));
  }
#endif
}

namespace {

/// Shared validation for adopted CSR storage (mapped or owned). The O(n)
/// shape checks always run; the O(n + m) content sweep (endpoint bounds,
/// adjacency sortedness, incident/edge agreement) runs when `deep` is set
/// and is parallelized — adopting a snapshot must stay far cheaper than
/// rebuilding it.
Status ValidateCsr(std::span<const uint64_t> offsets,
                   std::span<const NodeId> adjacency,
                   std::span<const EdgeId> incident,
                   std::span<const Edge> edges, bool deep) {
  if (offsets.empty()) {
    if (adjacency.empty() && incident.empty() && edges.empty()) {
      return Status::OK();  // the empty graph
    }
    return Status::InvalidArgument("csr: missing offsets section");
  }
  const uint64_t n = offsets.size() - 1;
  const uint64_t m = edges.size();
  if (n > static_cast<uint64_t>(kInvalidNode)) {
    return Status::InvalidArgument("csr: node count exceeds NodeId range");
  }
  if (offsets.front() != 0) {
    return Status::InvalidArgument("csr: offsets[0] != 0");
  }
  if (offsets.back() != adjacency.size() || adjacency.size() != 2 * m ||
      incident.size() != 2 * m) {
    return Status::InvalidArgument(
        "csr: section sizes disagree (offsets/adjacency/incident/edges)");
  }
  std::atomic<bool> bad_shape{false};
  ParallelFor(0, n, [&](uint64_t begin, uint64_t end) {
    for (uint64_t u = begin; u < end; ++u) {
      if (offsets[u] > offsets[u + 1]) {
        bad_shape.store(true, std::memory_order_relaxed);
        return;
      }
    }
  });
  if (bad_shape.load()) {
    return Status::InvalidArgument("csr: offsets not monotone");
  }
  if (!deep) return Status::OK();

  std::atomic<bool> bad_content{false};
  ParallelFor(0, n, [&](uint64_t begin, uint64_t end) {
    for (uint64_t u = begin; u < end && !bad_content.load(
                                            std::memory_order_relaxed);
         ++u) {
      NodeId prev = kInvalidNode;
      for (uint64_t slot = offsets[u]; slot < offsets[u + 1]; ++slot) {
        const NodeId nbr = adjacency[slot];
        const EdgeId id = incident[slot];
        if (nbr >= n || nbr == u || id >= m ||
            (prev != kInvalidNode && nbr <= prev)) {
          bad_content.store(true, std::memory_order_relaxed);
          return;
        }
        const Edge& e = edges[id];
        const NodeId lo = u < nbr ? static_cast<NodeId>(u) : nbr;
        const NodeId hi = u < nbr ? nbr : static_cast<NodeId>(u);
        if (e.u != lo || e.v != hi) {
          bad_content.store(true, std::memory_order_relaxed);
          return;
        }
        prev = nbr;
      }
    }
  });
  // The canonical edge list itself must be canonical and in bounds; the
  // adjacency sweep only touches edges that some slot references.
  ParallelFor(0, m, [&](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      const Edge& e = edges[i];
      if (e.u > e.v || e.v >= n || e.u == e.v) {
        bad_content.store(true, std::memory_order_relaxed);
        return;
      }
    }
  });
  if (bad_content.load()) {
    return Status::InvalidArgument(
        "csr: content check failed (endpoints, adjacency order, or "
        "incident/edge disagreement)");
  }
  return Status::OK();
}

}  // namespace

StatusOr<Graph> Graph::FromCsrView(CsrView view, bool deep_validation) {
  EDGESHED_RETURN_IF_ERROR(ValidateCsr(view.offsets, view.adjacency,
                                       view.incident, view.edges,
                                       deep_validation));
  Graph g;
  g.mapped_ = std::make_shared<const CsrView>(std::move(view));
  return g;
}

StatusOr<Graph> Graph::FromCsrParts(std::vector<uint64_t> offsets,
                                    std::vector<NodeId> adjacency,
                                    std::vector<EdgeId> incident,
                                    std::vector<Edge> edges,
                                    bool deep_validation) {
  EDGESHED_RETURN_IF_ERROR(ValidateCsr(offsets, adjacency, incident, edges,
                                       deep_validation));
  Graph g;
  g.offsets_ = std::move(offsets);
  g.adjacency_ = std::move(adjacency);
  g.incident_ = std::move(incident);
  g.edges_ = std::move(edges);
  return g;
}

uint64_t Graph::HeapBytes() const {
  if (mapped_ != nullptr) return sizeof(CsrView);
  return offsets_.capacity() * sizeof(uint64_t) +
         adjacency_.capacity() * sizeof(NodeId) +
         incident_.capacity() * sizeof(EdgeId) +
         edges_.capacity() * sizeof(Edge);
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  return FindEdge(u, v) != kInvalidEdge;
}

EdgeId Graph::FindEdge(NodeId u, NodeId v) const {
  if (u >= NumNodes() || v >= NumNodes() || u == v) return kInvalidEdge;
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto nbrs = Neighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kInvalidEdge;
  return IncidentEdges(u)[static_cast<size_t>(it - nbrs.begin())];
}

Graph SubgraphFromEdgeIds(const Graph& parent,
                          const std::vector<EdgeId>& edge_ids) {
  std::vector<Edge> kept;
  kept.reserve(edge_ids.size());
  for (EdgeId id : edge_ids) {
    EDGESHED_CHECK_LT(id, parent.NumEdges());
    kept.push_back(parent.edge(id));
  }
  auto result = Graph::FromEdges(static_cast<NodeId>(parent.NumNodes()),
                                 std::move(kept));
  // Parent edges are unique, so a subset cannot introduce duplicates unless
  // the caller passed repeated ids — a programming error.
  EDGESHED_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

}  // namespace edgeshed::graph
