#include "graph/graph.h"

#include <algorithm>
#include <string>

#include "common/strings.h"

namespace edgeshed::graph {

StatusOr<Graph> Graph::FromEdges(NodeId num_nodes, std::vector<Edge> edges) {
  for (Edge& e : edges) {
    if (e.u >= num_nodes || e.v >= num_nodes) {
      return Status::InvalidArgument(
          StrFormat("edge (%u, %u) has endpoint outside [0, %u)", e.u, e.v,
                    num_nodes));
    }
    if (e.u == e.v) {
      return Status::InvalidArgument(
          StrFormat("self-loop at node %u; simple graphs only", e.u));
    }
    if (e.u > e.v) std::swap(e.u, e.v);
  }
  std::vector<Edge> sorted = edges;
  std::sort(sorted.begin(), sorted.end());
  auto dup = std::adjacent_find(sorted.begin(), sorted.end());
  if (dup != sorted.end()) {
    return Status::InvalidArgument(
        StrFormat("duplicate edge (%u, %u)", dup->u, dup->v));
  }
  return Graph(num_nodes, std::move(sorted));
}

Graph::Graph(NodeId num_nodes, std::vector<Edge> edges)
    : edges_(std::move(edges)) {
  offsets_.assign(static_cast<size_t>(num_nodes) + 1, 0);
  for (const Edge& e : edges_) {
    ++offsets_[e.u + 1];
    ++offsets_[e.v + 1];
  }
  for (size_t i = 1; i < offsets_.size(); ++i) offsets_[i] += offsets_[i - 1];

  adjacency_.resize(2 * edges_.size());
  incident_.resize(2 * edges_.size());
  std::vector<uint64_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (EdgeId id = 0; id < edges_.size(); ++id) {
    const Edge& e = edges_[id];
    adjacency_[cursor[e.u]] = e.v;
    incident_[cursor[e.u]++] = id;
    adjacency_[cursor[e.v]] = e.u;
    incident_[cursor[e.v]++] = id;
  }
  // Edges were sorted by (u, v); the u-side adjacency is already ascending,
  // but the v-side entries arrive in u-order which is also ascending per
  // vertex, so each adjacency list is sorted without an extra pass. Verify
  // in debug builds.
#ifndef NDEBUG
  for (NodeId u = 0; u < num_nodes; ++u) {
    auto nbrs = Neighbors(u);
    EDGESHED_DCHECK(std::is_sorted(nbrs.begin(), nbrs.end()));
  }
#endif
}

bool Graph::HasEdge(NodeId u, NodeId v) const {
  return FindEdge(u, v) != kInvalidEdge;
}

EdgeId Graph::FindEdge(NodeId u, NodeId v) const {
  if (u >= NumNodes() || v >= NumNodes() || u == v) return kInvalidEdge;
  if (Degree(u) > Degree(v)) std::swap(u, v);
  auto nbrs = Neighbors(u);
  auto it = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  if (it == nbrs.end() || *it != v) return kInvalidEdge;
  return IncidentEdges(u)[static_cast<size_t>(it - nbrs.begin())];
}

Graph SubgraphFromEdgeIds(const Graph& parent,
                          const std::vector<EdgeId>& edge_ids) {
  std::vector<Edge> kept;
  kept.reserve(edge_ids.size());
  for (EdgeId id : edge_ids) {
    EDGESHED_CHECK_LT(id, parent.NumEdges());
    kept.push_back(parent.edge(id));
  }
  auto result = Graph::FromEdges(static_cast<NodeId>(parent.NumNodes()),
                                 std::move(kept));
  // Parent edges are unique, so a subset cannot introduce duplicates unless
  // the caller passed repeated ids — a programming error.
  EDGESHED_CHECK(result.ok()) << result.status().ToString();
  return std::move(result).value();
}

}  // namespace edgeshed::graph
