#include "graph/source.h"

#include <cstring>
#include <fstream>

#include "graph/binary_io.h"
#include "graph/edge_list_io.h"

namespace edgeshed::graph {

GraphFormat SniffGraphFormat(std::string_view leading_bytes) {
  if (leading_bytes.size() >= 8 &&
      leading_bytes.substr(0, 7) == "EDGSHED") {
    switch (leading_bytes[7]) {
      case '1':
      case '2':
      case '3':
        return GraphFormat::kSnapshot;
      case 'L':
        return GraphFormat::kBinaryEdges;
      default:
        break;  // unknown future version: let the text parser complain
    }
  }
  return GraphFormat::kText;
}

StatusOr<GraphFormat> DetectGraphFormat(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open graph file: " + path);
  }
  char magic[8] = {};
  in.read(magic, sizeof(magic));
  const size_t got = static_cast<size_t>(in.gcount());
  return SniffGraphFormat(std::string_view(magic, got));
}

StatusOr<LoadedGraph> LoadGraph(const GraphSource& source,
                                const IngestOptions& options) {
  GraphFormat format = source.format;
  if (format == GraphFormat::kAuto) {
    EDGESHED_ASSIGN_OR_RETURN(format, DetectGraphFormat(source.path));
  }
  switch (format) {
    case GraphFormat::kText:
      return LoadEdgeList(source.path, options);
    case GraphFormat::kBinaryEdges:
      return LoadBinaryEdgeList(source.path, options);
    case GraphFormat::kSnapshot:
      return LoadSnapshot(source.path, options);
    case GraphFormat::kAuto:
      break;
  }
  return Status::Internal("unreachable graph format");
}

const char* GraphFormatName(GraphFormat format) {
  switch (format) {
    case GraphFormat::kAuto:
      return "auto";
    case GraphFormat::kText:
      return "text";
    case GraphFormat::kBinaryEdges:
      return "binary_edges";
    case GraphFormat::kSnapshot:
      return "snapshot";
  }
  return "unknown";
}

StatusOr<GraphFormat> ParseGraphFormat(std::string_view name) {
  if (name == "auto") return GraphFormat::kAuto;
  if (name == "text") return GraphFormat::kText;
  if (name == "binary_edges") return GraphFormat::kBinaryEdges;
  if (name == "snapshot") return GraphFormat::kSnapshot;
  return Status::InvalidArgument("unknown graph format '" +
                                 std::string(name) +
                                 "' (auto|text|binary_edges|snapshot)");
}

}  // namespace edgeshed::graph
