#include "graph/mutation_io.h"

#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/strings.h"
#include "graph/edge_list_parse.h"

namespace edgeshed::graph {
namespace {

std::string PairName(NodeId u, NodeId v) {
  return "{" + std::to_string(u) + ", " + std::to_string(v) + "}";
}

}  // namespace

Status ValidateAndCanonicalizeBatch(MutationBatch* batch) {
  // Key -> true when the first occurrence was an insert.
  std::unordered_map<uint64_t, bool> seen;
  seen.reserve(batch->size());
  for (auto* side : {&batch->inserts, &batch->deletes}) {
    const bool is_insert = side == &batch->inserts;
    for (Edge& e : *side) {
      if (e.u == e.v) {
        return Status::InvalidArgument(
            "mutation batch contains self-loop " + PairName(e.u, e.v));
      }
      if (e.u > e.v) std::swap(e.u, e.v);
      const auto [it, inserted] = seen.emplace(EdgeKey(e), is_insert);
      if (!inserted) {
        const char* how =
            it->second == is_insert
                ? (is_insert ? "twice among inserts" : "twice among deletes")
                : "as both insert and delete";
        return Status::InvalidArgument("mutation batch lists edge " +
                                       PairName(e.u, e.v) + " " + how);
      }
    }
  }
  return Status::OK();
}

StatusOr<std::vector<MutationBatch>> ParseMutationText(
    std::string_view text) {
  std::vector<MutationBatch> batches;
  MutationBatch current;
  uint64_t line_no = 0;
  // First line of the current batch, for validation error context.
  uint64_t batch_first_line = 1;

  auto flush = [&]() -> Status {
    if (current.empty()) return Status::OK();
    Status status = ValidateAndCanonicalizeBatch(&current);
    if (!status.ok()) {
      return Status(status.code(),
                    status.message() + " (batch starting at line " +
                        std::to_string(batch_first_line) + ")");
    }
    batches.push_back(std::move(current));
    current = MutationBatch();
    return Status::OK();
  };

  size_t pos = 0;
  while (pos <= text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) {
      if (pos >= text.size()) break;
      eol = text.size();
    }
    const std::string_view line = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    const std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '%') continue;
    if (trimmed == "---") {
      EDGESHED_RETURN_IF_ERROR(flush());
      batch_first_line = line_no + 1;
      continue;
    }
    const char op = trimmed[0];
    if (op != '+' && op != '-') {
      return Status::InvalidArgument(
          "mutation line " + std::to_string(line_no) +
          ": expected '+', '-', or '---', got \"" +
          internal::TruncatedLine(trimmed) + "\"");
    }
    size_t cursor = 1;
    uint64_t raw_u = 0;
    uint64_t raw_v = 0;
    if (!internal::ParseUintField(trimmed, &cursor, &raw_u) ||
        !internal::ParseUintField(trimmed, &cursor, &raw_v)) {
      return Status::InvalidArgument(
          "mutation line " + std::to_string(line_no) +
          ": expected two node ids after '" + std::string(1, op) +
          "', got \"" + internal::TruncatedLine(trimmed) + "\"");
    }
    constexpr uint64_t kMaxNode = 0xFFFFFFFFull;
    if (raw_u > kMaxNode || raw_v > kMaxNode) {
      return Status::InvalidArgument(
          "mutation line " + std::to_string(line_no) + ": node id " +
          std::to_string(raw_u > kMaxNode ? raw_u : raw_v) +
          " exceeds the 32-bit NodeId range");
    }
    const Edge edge{static_cast<NodeId>(raw_u), static_cast<NodeId>(raw_v)};
    if (op == '+') {
      current.inserts.push_back(edge);
    } else {
      current.deletes.push_back(edge);
    }
  }
  EDGESHED_RETURN_IF_ERROR(flush());
  return batches;
}

StatusOr<std::vector<MutationBatch>> ParseMutationFile(
    const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open mutation file: " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IOError("read failed for mutation file: " + path);
  }
  return ParseMutationText(buffer.str());
}

}  // namespace edgeshed::graph
