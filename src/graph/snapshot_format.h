#ifndef EDGESHED_GRAPH_SNAPSHOT_FORMAT_H_
#define EDGESHED_GRAPH_SNAPSHOT_FORMAT_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"

namespace edgeshed::graph {

/// Version-3 snapshot layout (DESIGN.md §14): a CSR graph serialized so the
/// loader can mmap the file and adopt the arrays in place — zero parse, zero
/// copy. All integers little-endian; sections start on `page_align`
/// boundaries so mapped spans are correctly aligned for their element types.
///
///   bytes 0-7    magic "EDGSHED3"
///   bytes 8-39   u64 num_nodes, u64 num_edges, u64 page_align,
///                u64 chunk_bytes
///   bytes 40-119 section table: 5 x { u64 file offset, u64 byte length }
///                in order: offsets (u64 x n+1), adjacency (u32 x 2m),
///                incident (u64 x 2m), edges (2 x u32 x m),
///                original_ids (u64 x n; length 0 when absent)
///   bytes 120-   u32 num_chunks, then u32 chunk_crcs[num_chunks], then
///                u32 header CRC-32 over bytes [8, 124 + 4 * num_chunks)
///   then zero padding to the first page_align boundary, then the sections,
///   each zero-padded up to page_align.
///
/// The data region [DataStart(), FileBytes()) is covered by fixed-size
/// `chunk_bytes` chunks (last one short); chunk_crcs[i] is the CRC-32 of
/// chunk i, padding included. Chunked CRCs let the loader verify in
/// parallel and name the damaged byte range on mismatch.
inline constexpr char kSnapshotMagicV3[8] = {'E', 'D', 'G', 'S',
                                             'H', 'E', 'D', '3'};

enum SnapshotSection : int {
  kSectionOffsets = 0,
  kSectionAdjacency = 1,
  kSectionIncident = 2,
  kSectionEdges = 3,
  kSectionOriginalIds = 4,
};
inline constexpr int kSnapshotSectionCount = 5;

/// Byte offset of the u32 chunk count (end of the fixed header fields).
inline constexpr uint64_t kSnapshotChunkCountOffset = 120;

/// Header bytes for a snapshot with `num_chunks` data chunks: fixed fields +
/// chunk count + chunk CRC table + header CRC.
inline constexpr uint64_t SnapshotHeaderBytes(uint64_t num_chunks) {
  return kSnapshotChunkCountOffset + 4 + 4 * num_chunks + 4;
}

inline constexpr uint64_t RoundUpTo(uint64_t value, uint64_t align) {
  return (value + align - 1) / align * align;
}

/// Parsed (or planned) v3 header.
struct SnapshotHeader {
  struct Section {
    uint64_t offset = 0;  // absolute file offset; page_align multiple
    uint64_t bytes = 0;   // unpadded payload length; 0 = section absent
  };

  uint64_t num_nodes = 0;
  uint64_t num_edges = 0;
  uint64_t page_align = 0;
  uint64_t chunk_bytes = 0;
  std::array<Section, kSnapshotSectionCount> sections;
  std::vector<uint32_t> chunk_crcs;

  uint64_t HeaderBytes() const {
    return SnapshotHeaderBytes(chunk_crcs.size());
  }
  /// First byte of the checksummed data region (page-aligned).
  uint64_t DataStart() const {
    return RoundUpTo(HeaderBytes(), page_align);
  }
  /// Total file size: end of the last non-empty section.
  uint64_t FileBytes() const;
};

/// Plans the section layout for a graph of the given shape: section offsets,
/// chunk count (CRCs zeroed, to be filled after the data is written), and
/// total file size. `page_align` must be a power of two in [8, 1 GiB];
/// `chunk_bytes` in [4 KiB, 1 GiB].
SnapshotHeader PlanSnapshotLayout(uint64_t num_nodes, uint64_t num_edges,
                                  bool with_original_ids, uint64_t page_align,
                                  uint64_t chunk_bytes);

/// Serializes the header (including the trailing header CRC) into exactly
/// HeaderBytes() bytes. chunk_crcs must be fully populated.
std::string EncodeSnapshotHeader(const SnapshotHeader& header);

/// Parses and validates a v3 header from the first `file_bytes` bytes of a
/// file. Status taxonomy (tests/snapshot_v3_test.cc pins it):
///  * wrong magic                      -> InvalidArgument naming the magic
///  * truncated header / sections      -> InvalidArgument
///  * nonsense fixed fields (counts out of range, page_align not a power of
///    two, bad chunk_bytes) -> InvalidArgument — checked BEFORE the header
///    CRC so a corrupt alignment field is reported as the field error
///  * header CRC mismatch              -> DataLoss
///  * section table inconsistent with the counts, misaligned sections,
///    chunk count disagreeing with the file size -> InvalidArgument
/// Chunk CRCs are returned unverified; callers verify the data region with
/// ComputeSnapshotChunkCrcs.
StatusOr<SnapshotHeader> DecodeSnapshotHeader(const char* data,
                                              uint64_t file_bytes,
                                              const std::string& path);

/// CRC-32 of each `chunk_bytes`-sized chunk of the data region (last chunk
/// short), computed in parallel. Writers call this after streaming the
/// sections to fill the header table; loaders call it to verify.
std::vector<uint32_t> ComputeSnapshotChunkCrcs(const char* data,
                                               uint64_t data_bytes,
                                               uint64_t chunk_bytes,
                                               int threads = 0);

/// Writer finalize step shared by the in-memory saver (graph/binary_io.cc)
/// and the out-of-core builder (graph/external_build.cc): the file at
/// `path` must hold `header.FileBytes()` bytes with every section in place
/// (the header region's content is ignored). Re-reads the (page-cached)
/// data region to fill header.chunk_crcs, then patches the encoded header
/// over bytes [0, HeaderBytes()).
Status FinalizeSnapshotFile(const std::string& path, SnapshotHeader header);

}  // namespace edgeshed::graph

#endif  // EDGESHED_GRAPH_SNAPSHOT_FORMAT_H_
