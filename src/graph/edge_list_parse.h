#ifndef EDGESHED_GRAPH_EDGE_LIST_PARSE_H_
#define EDGESHED_GRAPH_EDGE_LIST_PARSE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/strings.h"

/// Internal text edge-list parsing shared by the in-memory loader
/// (graph/edge_list_io.cc) and the out-of-core converter
/// (graph/external_build.cc). Both must tokenize identically — same comment
/// rules, same overflow handling, same error snippets — or the external
/// build would stop being bit-identical to the in-memory load.

namespace edgeshed::graph::internal {

/// Parses one whitespace-delimited unsigned field starting at *pos. An
/// optional leading '+' is accepted; a '-' is an error — node ids are
/// unsigned, and istream's wrap-modulo-2^64 behavior would silently turn
/// "-1" into 18446744073709551615 and blow up the node count. Overflow is
/// an error. Returns false when no valid field is present.
inline bool ParseUintField(std::string_view text, size_t* pos,
                           uint64_t* out) {
  size_t i = *pos;
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t' ||
                             text[i] == '\r' || text[i] == '\v' ||
                             text[i] == '\f')) {
    ++i;
  }
  if (i < text.size() && text[i] == '-') return false;  // negative id
  if (i < text.size() && text[i] == '+') ++i;
  const size_t digits_begin = i;
  uint64_t value = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    const uint64_t digit = static_cast<uint64_t>(text[i] - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
    ++i;
  }
  if (i == digits_begin) return false;  // no digits
  *pos = i;
  *out = value;
  return true;
}

/// Shortened copy of an offending line for error messages.
inline std::string TruncatedLine(std::string_view line) {
  constexpr size_t kMaxSnippet = 40;
  if (line.size() <= kMaxSnippet) return std::string(line);
  return std::string(line.substr(0, kMaxSnippet)) + "...";
}

/// Output of parsing one contiguous byte range of the input. Chunks start
/// at line boundaries, so concatenating chunk edge lists in chunk order
/// reproduces the serial parse exactly.
struct ChunkParse {
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  uint64_t lines = 0;  // every line seen, including comments and blanks
  bool has_error = false;
  uint64_t error_line = 0;  // 1-based within this chunk
  std::string error_snippet;
};

inline void ParseChunk(std::string_view data, size_t begin, size_t end,
                       ChunkParse* out) {
  size_t pos = begin;
  while (pos < end) {
    size_t eol = data.find('\n', pos);
    const size_t line_end = eol == std::string_view::npos ? data.size() : eol;
    const std::string_view line = data.substr(pos, line_end - pos);
    pos = line_end + 1;
    ++out->lines;
    const std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '%') continue;
    size_t cursor = 0;
    uint64_t raw_u = 0;
    uint64_t raw_v = 0;
    if (!ParseUintField(trimmed, &cursor, &raw_u) ||
        !ParseUintField(trimmed, &cursor, &raw_v)) {
      out->has_error = true;
      out->error_line = out->lines;
      out->error_snippet = TruncatedLine(trimmed);
      return;  // a serial reader stops at the first bad line
    }
    out->edges.emplace_back(raw_u, raw_v);  // extra columns ignored
  }
}

}  // namespace edgeshed::graph::internal

#endif  // EDGESHED_GRAPH_EDGE_LIST_PARSE_H_
