#include "graph/datasets.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/random.h"
#include "graph/edge_list_io.h"
#include "graph/generators/generators.h"

namespace edgeshed::graph {

namespace {

const DatasetSpec kSpecs[] = {
    {DatasetId::kCaGrQc, "ca-GrQc", 5242, 14496, "Collaboration network",
     "PowerlawCluster(m=3, pt=0.5)"},
    {DatasetId::kCaHepPh, "ca-HepPh", 12008, 118521, "Collaboration network",
     "PowerlawCluster(m=10, pt=0.6)"},
    {DatasetId::kEmailEnron, "email-Enron", 36692, 183831,
     "Email communication network", "BarabasiAlbert(m=5)"},
    {DatasetId::kComLiveJournal, "com-LiveJournal", 3997962, 34681189,
     "Online social network", "R-MAT(edge_factor=8)"},
};

}  // namespace

const DatasetSpec& GetDatasetSpec(DatasetId id) {
  for (const DatasetSpec& spec : kSpecs) {
    if (spec.id == id) return spec;
  }
  EDGESHED_CHECK(false) << "unknown dataset id";
  // Unreachable; CHECK aborts.
  return kSpecs[0];
}

std::vector<DatasetId> AllDatasets() {
  return {DatasetId::kCaGrQc, DatasetId::kCaHepPh, DatasetId::kEmailEnron,
          DatasetId::kComLiveJournal};
}

std::vector<DatasetId> SmallDatasets() {
  return {DatasetId::kCaGrQc, DatasetId::kCaHepPh, DatasetId::kEmailEnron};
}

Graph MakeDataset(DatasetId id, const DatasetOptions& options) {
  EDGESHED_CHECK_GT(options.scale, 0.0);
  const DatasetSpec& spec = GetDatasetSpec(id);
  const auto scaled_nodes = static_cast<NodeId>(std::max<uint64_t>(
      16, static_cast<uint64_t>(
              std::llround(static_cast<double>(spec.paper_nodes) *
                           options.scale))));
  Rng rng(options.seed ^ (static_cast<uint64_t>(id) << 32));
  switch (id) {
    case DatasetId::kCaGrQc:
      return PowerlawCluster(scaled_nodes, 3, 0.5, rng);
    case DatasetId::kCaHepPh:
      return PowerlawCluster(scaled_nodes, 10, 0.6, rng);
    case DatasetId::kEmailEnron:
      return BarabasiAlbert(scaled_nodes, 5, rng);
    case DatasetId::kComLiveJournal: {
      // Pick the R-MAT scale whose 2^s is closest to the requested size.
      uint32_t rmat_scale = 1;
      while ((uint64_t{1} << (rmat_scale + 1)) <= scaled_nodes &&
             rmat_scale < 26) {
        ++rmat_scale;
      }
      if ((scaled_nodes - (uint64_t{1} << rmat_scale)) >
          ((uint64_t{1} << (rmat_scale + 1)) - scaled_nodes)) {
        ++rmat_scale;
      }
      return RMat(rmat_scale, /*edge_factor=*/8, 0.57, 0.19, 0.19, rng);
    }
  }
  EDGESHED_CHECK(false) << "unknown dataset id";
  return Graph();
}

Graph MakeDatasetOrLoad(DatasetId id, const std::string& path,
                        const DatasetOptions& options) {
  if (!path.empty()) {
    auto loaded = LoadGraph(path);  // any on-disk format
    if (loaded.ok()) return std::move(loaded)->graph;
  }
  return MakeDataset(id, options);
}

}  // namespace edgeshed::graph
