#ifndef EDGESHED_GRAPH_EDGE_LIST_IO_H_
#define EDGESHED_GRAPH_EDGE_LIST_IO_H_

#include <span>
#include <string>

#include "common/statusor.h"
#include "graph/graph.h"
#include "graph/source.h"

namespace edgeshed::graph {

/// Loads a whitespace-separated edge list in the SNAP download format:
/// lines starting with '#' or '%' are comments, each remaining line holds
/// "src dst" (extra columns ignored). Directed duplicates (a b / b a),
/// parallel edges and self-loops are collapsed/dropped, matching how the
/// paper's snap.py pipeline materializes undirected simple graphs.
///
/// The file is read once and parsed in parallel chunks split at newline
/// boundaries; results are merged in file order, so the loaded graph (node
/// remap included) is bit-identical for every thread count. Malformed lines
/// fail with InvalidArgument reporting "path:line" and a truncated copy of
/// the offending line. A file that is actually a binary edgeshed format
/// (snapshot or binary edge list) is rejected up front with InvalidArgument
/// naming the detected magic — not a line-1 parse error.
StatusOr<LoadedGraph> LoadEdgeList(const std::string& path,
                                   const IngestOptions& options);

/// Back-compat shim: default IngestOptions.
StatusOr<LoadedGraph> LoadEdgeList(const std::string& path);

/// Writes `graph` as "u v" lines (dense ids), with a small header comment.
Status SaveEdgeList(const Graph& graph, const std::string& path);

/// Binary edge list "EDGSHEDL" (DESIGN.md §14): the text format's exact
/// information content — edge sequence and the original-id remap — without
/// the parse cost. Layout, little-endian:
///   bytes 0-7   magic "EDGSHEDL"
///   bytes 8-23  u64 node count, u64 edge count
///   then node count x u64 original ids (original_ids[i] = input id of
///   dense node i; identity when the writer had no remap)
///   then edge count x (u32 u, u32 v) dense canonical edges
///   then u32 CRC-32 of every byte between the magic and the footer.
/// Converting a text edge list to this format and reloading round-trips
/// LoadedGraph bit-identically.

/// Writes `graph` + remap at `path`. `original_ids` must be empty (identity
/// is recorded) or exactly NumNodes() entries.
Status SaveBinaryEdgeList(const Graph& graph,
                          std::span<const uint64_t> original_ids,
                          const std::string& path);

/// Loads an "EDGSHEDL" file: stat-then-read in one pass, CRC-verified
/// (DataLoss on mismatch, InvalidArgument on truncation or foreign magic),
/// isolated trailing vertices preserved via the recorded node count.
StatusOr<LoadedGraph> LoadBinaryEdgeList(const std::string& path,
                                         const IngestOptions& options = {});

}  // namespace edgeshed::graph

#endif  // EDGESHED_GRAPH_EDGE_LIST_IO_H_
