#ifndef EDGESHED_GRAPH_EDGE_LIST_IO_H_
#define EDGESHED_GRAPH_EDGE_LIST_IO_H_

#include <string>
#include <vector>

#include "common/statusor.h"
#include "graph/graph.h"

namespace edgeshed::graph {

/// Result of loading a SNAP-style edge-list file.
struct LoadedGraph {
  Graph graph;
  /// original_ids[i] is the id the input file used for dense node i; node
  /// ids in SNAP files are arbitrary and sparse, so loaders remap them.
  std::vector<uint64_t> original_ids;
};

/// Loads a whitespace-separated edge list in the SNAP download format:
/// lines starting with '#' or '%' are comments, each remaining line holds
/// "src dst" (extra columns ignored). Directed duplicates (a b / b a),
/// parallel edges and self-loops are collapsed/dropped, matching how the
/// paper's snap.py pipeline materializes undirected simple graphs.
///
/// The file is read once and parsed in parallel chunks split at newline
/// boundaries; results are merged in file order, so the loaded graph (node
/// remap included) is bit-identical for every EDGESHED_THREADS value.
/// Malformed lines fail with InvalidArgument reporting "path:line" and a
/// truncated copy of the offending line.
StatusOr<LoadedGraph> LoadEdgeList(const std::string& path);

/// Writes `graph` as "u v" lines (dense ids), with a small header comment.
Status SaveEdgeList(const Graph& graph, const std::string& path);

}  // namespace edgeshed::graph

#endif  // EDGESHED_GRAPH_EDGE_LIST_IO_H_
