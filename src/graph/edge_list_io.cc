#include "graph/edge_list_io.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <unordered_map>

#include "common/strings.h"
#include "graph/graph_builder.h"

namespace edgeshed::graph {

StatusOr<LoadedGraph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::IOError("cannot open edge list file: " + path);
  }

  GraphBuilder builder;
  std::unordered_map<uint64_t, NodeId> dense_id;
  std::vector<uint64_t> original_ids;
  auto intern = [&](uint64_t raw) -> NodeId {
    auto [it, inserted] =
        dense_id.emplace(raw, static_cast<NodeId>(original_ids.size()));
    if (inserted) original_ids.push_back(raw);
    return it->second;
  };

  std::string line;
  size_t line_number = 0;
  while (std::getline(in, line)) {
    ++line_number;
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '%') continue;
    std::istringstream fields{std::string(trimmed)};
    uint64_t raw_u = 0;
    uint64_t raw_v = 0;
    if (!(fields >> raw_u >> raw_v)) {
      return Status::InvalidArgument(
          StrFormat("%s:%zu: expected 'src dst'", path.c_str(), line_number));
    }
    // Intern in reading order (function-argument evaluation order is
    // unspecified, and ids should be assigned first-seen-first).
    NodeId u = intern(raw_u);
    NodeId v = intern(raw_v);
    builder.AddEdge(u, v);
  }
  return LoadedGraph{builder.Build(), std::move(original_ids)};
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open file for writing: " + path);
  }
  out << "# Undirected simple graph: " << graph.NumNodes() << " nodes, "
      << graph.NumEdges() << " edges\n";
  for (const Edge& e : graph.edges()) {
    out << e.u << '\t' << e.v << '\n';
  }
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace edgeshed::graph
