#include "graph/edge_list_io.h"

#include <algorithm>
#include <cstdint>
#include <fstream>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/parallel.h"
#include "common/strings.h"
#include "graph/graph_builder.h"

namespace edgeshed::graph {

namespace {

/// Parses one whitespace-delimited unsigned field starting at *pos. An
/// optional leading '+' is accepted; a '-' is an error — node ids are
/// unsigned, and istream's wrap-modulo-2^64 behavior would silently turn
/// "-1" into 18446744073709551615 and blow up the node count. Overflow is
/// an error. Returns false when no valid field is present.
bool ParseUintField(std::string_view text, size_t* pos, uint64_t* out) {
  size_t i = *pos;
  while (i < text.size() && (text[i] == ' ' || text[i] == '\t' ||
                             text[i] == '\r' || text[i] == '\v' ||
                             text[i] == '\f')) {
    ++i;
  }
  if (i < text.size() && text[i] == '-') return false;  // negative id
  if (i < text.size() && text[i] == '+') ++i;
  const size_t digits_begin = i;
  uint64_t value = 0;
  while (i < text.size() && text[i] >= '0' && text[i] <= '9') {
    const uint64_t digit = static_cast<uint64_t>(text[i] - '0');
    if (value > (UINT64_MAX - digit) / 10) return false;  // overflow
    value = value * 10 + digit;
    ++i;
  }
  if (i == digits_begin) return false;  // no digits
  *pos = i;
  *out = value;
  return true;
}

/// Shortened copy of an offending line for error messages.
std::string TruncatedLine(std::string_view line) {
  constexpr size_t kMaxSnippet = 40;
  if (line.size() <= kMaxSnippet) return std::string(line);
  return std::string(line.substr(0, kMaxSnippet)) + "...";
}

/// Output of parsing one contiguous byte range of the input file. Chunks
/// start at line boundaries, so concatenating chunk edge lists in chunk
/// order reproduces the serial parse exactly.
struct ChunkParse {
  std::vector<std::pair<uint64_t, uint64_t>> edges;
  uint64_t lines = 0;  // every line seen, including comments and blanks
  bool has_error = false;
  uint64_t error_line = 0;  // 1-based within this chunk
  std::string error_snippet;
};

void ParseChunk(std::string_view data, size_t begin, size_t end,
                ChunkParse* out) {
  size_t pos = begin;
  while (pos < end) {
    size_t eol = data.find('\n', pos);
    const size_t line_end = eol == std::string_view::npos ? data.size() : eol;
    const std::string_view line = data.substr(pos, line_end - pos);
    pos = line_end + 1;
    ++out->lines;
    const std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty() || trimmed[0] == '#' || trimmed[0] == '%') continue;
    size_t cursor = 0;
    uint64_t raw_u = 0;
    uint64_t raw_v = 0;
    if (!ParseUintField(trimmed, &cursor, &raw_u) ||
        !ParseUintField(trimmed, &cursor, &raw_v)) {
      out->has_error = true;
      out->error_line = out->lines;
      out->error_snippet = TruncatedLine(trimmed);
      return;  // a serial reader stops at the first bad line
    }
    out->edges.emplace_back(raw_u, raw_v);  // extra columns ignored
  }
}

}  // namespace

StatusOr<LoadedGraph> LoadEdgeList(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open edge list file: " + path);
  }
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  std::string data(size > 0 ? static_cast<size_t>(size) : 0, '\0');
  if (!data.empty() && !in.read(data.data(), size)) {
    return Status::IOError("read failed: " + path);
  }

  // Split the buffer at newline boundaries, one chunk per worker; each chunk
  // parses independently and the results are merged in chunk order, so the
  // edge sequence (and therefore the first-seen id remap below) is identical
  // to a serial line-by-line read for every thread count.
  constexpr size_t kMinChunkBytes = size_t{1} << 16;
  const size_t chunk_target = std::clamp<size_t>(
      data.size() / kMinChunkBytes, 1,
      static_cast<size_t>(DefaultThreadCount()));
  std::vector<size_t> bounds;
  bounds.push_back(0);
  for (size_t c = 1; c < chunk_target; ++c) {
    size_t pos = data.find('\n', data.size() * c / chunk_target);
    pos = pos == std::string::npos ? data.size() : pos + 1;
    if (pos > bounds.back() && pos < data.size()) bounds.push_back(pos);
  }
  bounds.push_back(data.size());
  const size_t num_chunks = bounds.size() - 1;

  std::vector<ChunkParse> chunks(num_chunks);
  ParallelForEach(
      0, num_chunks,
      [&](uint64_t c) { ParseChunk(data, bounds[c], bounds[c + 1], &chunks[c]); },
      0, /*grain=*/1);

  size_t total_edges = 0;
  for (const ChunkParse& chunk : chunks) total_edges += chunk.edges.size();

  GraphBuilder builder;
  builder.ReserveEdges(total_edges);
  std::unordered_map<uint64_t, NodeId> dense_id;
  dense_id.reserve(total_edges);
  std::vector<uint64_t> original_ids;
  auto intern = [&](uint64_t raw) -> NodeId {
    auto [it, inserted] =
        dense_id.emplace(raw, static_cast<NodeId>(original_ids.size()));
    if (inserted) original_ids.push_back(raw);
    return it->second;
  };

  uint64_t line_base = 0;
  for (const ChunkParse& chunk : chunks) {
    if (chunk.has_error) {
      return Status::InvalidArgument(StrFormat(
          "%s:%llu: expected 'src dst', got '%s'", path.c_str(),
          static_cast<unsigned long long>(line_base + chunk.error_line),
          chunk.error_snippet.c_str()));
    }
    // Intern in file order (first-seen-first id assignment, exactly as a
    // serial reader would).
    for (const auto& [raw_u, raw_v] : chunk.edges) {
      NodeId u = intern(raw_u);
      NodeId v = intern(raw_v);
      builder.AddEdge(u, v);
    }
    line_base += chunk.lines;
  }
  return LoadedGraph{builder.Build(), std::move(original_ids)};
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open file for writing: " + path);
  }
  out << "# Undirected simple graph: " << graph.NumNodes() << " nodes, "
      << graph.NumEdges() << " edges\n";
  for (const Edge& e : graph.edges()) {
    out << e.u << '\t' << e.v << '\n';
  }
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace edgeshed::graph
