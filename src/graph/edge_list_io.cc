#include "graph/edge_list_io.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/crc32.h"
#include "common/parallel.h"
#include "common/strings.h"
#include "graph/edge_list_parse.h"
#include "graph/graph_builder.h"

namespace edgeshed::graph {

namespace {

using internal::ChunkParse;
using internal::ParseChunk;

constexpr char kBinaryEdgeMagic[8] = {'E', 'D', 'G', 'S', 'H', 'E', 'D', 'L'};

uint64_t GetU64(const char* in) {
  uint64_t value = 0;
  for (int i = 0; i < 8; ++i) {
    value |= static_cast<uint64_t>(static_cast<unsigned char>(in[i]))
             << (8 * i);
  }
  return value;
}

uint32_t GetU32(const char* in) {
  uint32_t value = 0;
  for (int i = 0; i < 4; ++i) {
    value |= static_cast<uint32_t>(static_cast<unsigned char>(in[i]))
             << (8 * i);
  }
  return value;
}

/// Stat-then-read of a whole file into a string (binary mode).
StatusOr<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IOError("cannot open edge list file: " + path);
  }
  in.seekg(0, std::ios::end);
  const std::streamoff size = in.tellg();
  in.seekg(0, std::ios::beg);
  std::string data(size > 0 ? static_cast<size_t>(size) : 0, '\0');
  if (!data.empty() && !in.read(data.data(), size)) {
    return Status::IOError("read failed: " + path);
  }
  return data;
}

/// Streaming writer folding every byte after the magic into the CRC footer,
/// the same integrity scheme as the v2 snapshot.
class CrcFileWriter {
 public:
  explicit CrcFileWriter(std::ofstream& out) : out_(out) {}

  void Write(const void* bytes, size_t n) {
    out_.write(static_cast<const char*>(bytes),
               static_cast<std::streamsize>(n));
    state_ = Crc32Update(state_, bytes, n);
  }

  void PutU64(uint64_t value) {
    char bytes[8];
    for (int i = 0; i < 8; ++i) {
      bytes[i] = static_cast<char>((value >> (8 * i)) & 0xff);
    }
    Write(bytes, 8);
  }

  uint32_t crc() const { return Crc32Finalize(state_); }

 private:
  std::ofstream& out_;
  uint32_t state_ = kCrc32Init;
};

}  // namespace

StatusOr<LoadedGraph> LoadEdgeList(const std::string& path,
                                   const IngestOptions& options) {
  EDGESHED_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));

  // A binary edgeshed file handed to the text parser would die on a
  // confusing "line 1" parse error; catch the magic up front and say what
  // the file actually is.
  if (data.size() >= 8) {
    const GraphFormat sniffed = SniffGraphFormat(data);
    if (sniffed != GraphFormat::kText) {
      return Status::InvalidArgument(StrFormat(
          "%s: not a text edge list — detected %s magic '%.8s'; load with "
          "format %s (or auto)",
          path.c_str(), GraphFormatName(sniffed), data.data(),
          GraphFormatName(sniffed)));
    }
  }
  if (CancellationRequested(options.cancel)) {
    return options.cancel->ToStatus();
  }

  // Split the buffer at newline boundaries, one chunk per worker; each chunk
  // parses independently and the results are merged in chunk order, so the
  // edge sequence (and therefore the first-seen id remap below) is identical
  // to a serial line-by-line read for every thread count.
  const int threads =
      options.threads > 0 ? options.threads : DefaultThreadCount();
  constexpr size_t kMinChunkBytes = size_t{1} << 16;
  const size_t chunk_target = std::clamp<size_t>(
      data.size() / kMinChunkBytes, 1, static_cast<size_t>(threads));
  std::vector<size_t> bounds;
  bounds.push_back(0);
  for (size_t c = 1; c < chunk_target; ++c) {
    size_t pos = data.find('\n', data.size() * c / chunk_target);
    pos = pos == std::string::npos ? data.size() : pos + 1;
    if (pos > bounds.back() && pos < data.size()) bounds.push_back(pos);
  }
  bounds.push_back(data.size());
  const size_t num_chunks = bounds.size() - 1;

  std::vector<ChunkParse> chunks(num_chunks);
  ParallelForEach(
      0, num_chunks,
      [&](uint64_t c) { ParseChunk(data, bounds[c], bounds[c + 1], &chunks[c]); },
      threads, /*grain=*/1);
  if (CancellationRequested(options.cancel)) {
    return options.cancel->ToStatus();
  }

  size_t total_edges = 0;
  for (const ChunkParse& chunk : chunks) total_edges += chunk.edges.size();

  GraphBuilder builder;
  builder.ReserveEdges(total_edges);
  std::unordered_map<uint64_t, NodeId> dense_id;
  dense_id.reserve(total_edges);
  std::vector<uint64_t> original_ids;
  auto intern = [&](uint64_t raw) -> NodeId {
    auto [it, inserted] =
        dense_id.emplace(raw, static_cast<NodeId>(original_ids.size()));
    if (inserted) original_ids.push_back(raw);
    return it->second;
  };

  uint64_t line_base = 0;
  for (const ChunkParse& chunk : chunks) {
    if (chunk.has_error) {
      return Status::InvalidArgument(StrFormat(
          "%s:%llu: expected 'src dst', got '%s'", path.c_str(),
          static_cast<unsigned long long>(line_base + chunk.error_line),
          chunk.error_snippet.c_str()));
    }
    if (CancellationRequested(options.cancel)) {
      return options.cancel->ToStatus();
    }
    // Intern in file order (first-seen-first id assignment, exactly as a
    // serial reader would).
    for (const auto& [raw_u, raw_v] : chunk.edges) {
      NodeId u = intern(raw_u);
      NodeId v = intern(raw_v);
      builder.AddEdge(u, v);
    }
    line_base += chunk.lines;
  }
  return LoadedGraph{builder.Build(), std::move(original_ids)};
}

StatusOr<LoadedGraph> LoadEdgeList(const std::string& path) {
  return LoadEdgeList(path, IngestOptions{});
}

Status SaveEdgeList(const Graph& graph, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IOError("cannot open file for writing: " + path);
  }
  out << "# Undirected simple graph: " << graph.NumNodes() << " nodes, "
      << graph.NumEdges() << " edges\n";
  for (const Edge& e : graph.edges()) {
    out << e.u << '\t' << e.v << '\n';
  }
  if (!out) {
    return Status::IOError("write failed: " + path);
  }
  return Status::OK();
}

Status SaveBinaryEdgeList(const Graph& graph,
                          std::span<const uint64_t> original_ids,
                          const std::string& path) {
  if (!original_ids.empty() && original_ids.size() != graph.NumNodes()) {
    return Status::InvalidArgument(
        "original_ids size disagrees with the node count");
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.write(kBinaryEdgeMagic, sizeof(kBinaryEdgeMagic));
  CrcFileWriter writer(out);
  writer.PutU64(graph.NumNodes());
  writer.PutU64(graph.NumEdges());
  if (!original_ids.empty()) {
    writer.Write(original_ids.data(), original_ids.size_bytes());
  } else {
    // No remap recorded: the dense numbering is the original numbering.
    uint64_t identity[4096];
    for (uint64_t base = 0; base < graph.NumNodes(); base += 4096) {
      const uint64_t n = std::min<uint64_t>(4096, graph.NumNodes() - base);
      for (uint64_t i = 0; i < n; ++i) identity[i] = base + i;
      writer.Write(identity, n * sizeof(uint64_t));
    }
  }
  const auto edges = graph.edges();
  writer.Write(edges.data(), edges.size_bytes());
  const uint32_t crc = writer.crc();
  char footer[4];
  for (int i = 0; i < 4; ++i) {
    footer[i] = static_cast<char>((crc >> (8 * i)) & 0xff);
  }
  out.write(footer, 4);
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

StatusOr<LoadedGraph> LoadBinaryEdgeList(const std::string& path,
                                         const IngestOptions& options) {
  EDGESHED_ASSIGN_OR_RETURN(std::string data, ReadWholeFile(path));
  if (data.size() < 8 ||
      std::memcmp(data.data(), kBinaryEdgeMagic, 8) != 0) {
    return Status::InvalidArgument("not an edgeshed binary edge list: " +
                                   path);
  }
  if (data.size() < 28) {
    return Status::InvalidArgument("truncated binary edge list: " + path);
  }
  const uint64_t num_nodes = GetU64(data.data() + 8);
  const uint64_t num_edges = GetU64(data.data() + 16);
  if (num_nodes > static_cast<uint64_t>(kInvalidNode)) {
    return Status::InvalidArgument("node count exceeds NodeId range: " +
                                   path);
  }
  // Bound both counts by the file size before any arithmetic on them, so a
  // corrupt count fails as truncation instead of overflowing or allocating.
  if (num_nodes > data.size() / 8 || num_edges > data.size() / 8 ||
      24 + 8 * num_nodes + 8 * num_edges + 4 != data.size()) {
    return Status::InvalidArgument("truncated binary edge list: " + path);
  }
  if (CancellationRequested(options.cancel)) {
    return options.cancel->ToStatus();
  }
  const uint32_t declared = GetU32(data.data() + data.size() - 4);
  const uint32_t actual =
      Crc32(std::string_view(data.data() + 8, data.size() - 12));
  if (declared != actual) {
    return Status::DataLoss(
        "binary edge list checksum mismatch (corrupt file): " + path);
  }
  if (CancellationRequested(options.cancel)) {
    return options.cancel->ToStatus();
  }

  std::vector<uint64_t> original_ids(num_nodes);
  std::memcpy(original_ids.data(), data.data() + 24, 8 * num_nodes);
  std::vector<Edge> edges(num_edges);
  std::memcpy(edges.data(), data.data() + 24 + 8 * num_nodes, 8 * num_edges);
  EDGESHED_ASSIGN_OR_RETURN(
      Graph graph,
      Graph::FromEdges(static_cast<NodeId>(num_nodes), std::move(edges)));
  return LoadedGraph{std::move(graph), std::move(original_ids)};
}

}  // namespace edgeshed::graph
