#ifndef EDGESHED_GRAPH_BINARY_IO_H_
#define EDGESHED_GRAPH_BINARY_IO_H_

#include <string>

#include "common/statusor.h"
#include "graph/graph.h"

namespace edgeshed::graph {

/// Compact binary snapshot of a graph for fast reload (the "reduce once,
/// reuse many times" workflow): magic + version + node/edge counts + the
/// canonical edge list, all little-endian fixed-width integers.
///
/// Format (version 2, written by SaveBinaryGraph):
///   bytes 0-7   : magic "EDGSHED2"
///   bytes 8-15  : uint64 node count
///   bytes 16-23 : uint64 edge count
///   then edge count * 2 * uint32 (u, v) pairs, canonical (u < v), sorted,
///   then uint32 CRC-32 (common/crc32.h, the same checksum the net wire
///   protocol uses) of every byte between the magic and the footer.
///
/// Version 1 ("EDGSHED1") is identical minus the footer; LoadBinaryGraph
/// still reads it, but without integrity checking.
Status SaveBinaryGraph(const Graph& graph, const std::string& path);

/// Loads a snapshot written by SaveBinaryGraph (either version). Validates
/// magic, counts, canonical form, and bounds; corrupt files return
/// InvalidArgument/IOError, and a version-2 checksum mismatch returns
/// DataLoss instead of silently accepting a bit-rotten snapshot.
StatusOr<Graph> LoadBinaryGraph(const std::string& path);

}  // namespace edgeshed::graph

#endif  // EDGESHED_GRAPH_BINARY_IO_H_
