#ifndef EDGESHED_GRAPH_BINARY_IO_H_
#define EDGESHED_GRAPH_BINARY_IO_H_

#include <cstdint>
#include <span>
#include <string>

#include "common/statusor.h"
#include "graph/graph.h"
#include "graph/source.h"

namespace edgeshed::graph {

/// Binary CSR snapshots for fast reload (the "reduce once, reuse many
/// times" workflow). Three versions on disk, one loader:
///
///   v1 "EDGSHED1": u64 node count, u64 edge count, m x (u32 u, u32 v)
///     canonical sorted edges. No integrity check; legacy, load-only.
///   v2 "EDGSHED2": v1 plus a trailing u32 CRC-32 footer over everything
///     after the magic. Compact, integrity-checked, but the loader must
///     rebuild the CSR (sort, transpose) on every load.
///   v3 "EDGSHED3": the full CSR serialized with page-aligned sections and
///     per-chunk CRCs (graph/snapshot_format.h), so LoadSnapshot can mmap
///     the file and adopt the arrays zero-copy. Optionally embeds the
///     original-id table so text-format provenance survives conversion.
///
/// DESIGN.md §14 has the format table and lifetime rules.

/// How SaveBinaryGraph lays out a snapshot.
struct SnapshotOptions {
  /// 2 writes the compact checksummed edge-list snapshot; 3 writes the
  /// mmap-ready CSR snapshot. Anything else is InvalidArgument.
  uint32_t version = 3;
  /// v3 section alignment: power of two in [8, 1 GiB]. 4096 matches the
  /// common page size; mapped spans are aligned for their element types at
  /// any legal value.
  uint64_t page_align = 4096;
  /// v3 integrity granularity: data-region bytes per CRC chunk, in
  /// [4 KiB, 1 GiB]. Smaller chunks localize corruption reports and
  /// parallelize verification; 1 MiB is a good default.
  uint64_t chunk_bytes = uint64_t{1} << 20;
  /// Optional original-id table (size NumNodes()) embedded in v3 snapshots
  /// so the loader can return LoadedGraph::original_ids. An identity table
  /// is dropped (identity is the documented meaning of "absent"), which
  /// also keeps SaveBinaryGraph byte-identical to the out-of-core
  /// converter's output. Ignored by v2.
  std::span<const uint64_t> original_ids{};
};

/// Writes `graph` at `path` in the layout `options` selects. The explicit
/// overload is the one integration points use — the dist fleet and job
/// scheduler pass SnapshotOptions so their output format is visible at the
/// call site.
Status SaveBinaryGraph(const Graph& graph, const std::string& path,
                       const SnapshotOptions& options);

/// Back-compat shim: writes version 2, the format every pre-v3 consumer
/// understands. Prefer the SnapshotOptions overload in new code.
Status SaveBinaryGraph(const Graph& graph, const std::string& path);

/// Loads a snapshot of any version. v3 files are memory-mapped and adopted
/// zero-copy when `options.mmap` is set (the returned Graph keeps the
/// mapping alive; see Graph::IsMapped), copied onto the heap otherwise.
/// v1/v2 always copy. Corruption taxonomy: wrong magic, truncation, or
/// structurally nonsense fields are InvalidArgument; checksum mismatches
/// (v2 footer, v3 header or chunk CRCs) are DataLoss.
StatusOr<LoadedGraph> LoadSnapshot(const std::string& path,
                                   const IngestOptions& options = {});

/// Back-compat shim around LoadSnapshot: drops the original-id table.
StatusOr<Graph> LoadBinaryGraph(const std::string& path);

}  // namespace edgeshed::graph

#endif  // EDGESHED_GRAPH_BINARY_IO_H_
