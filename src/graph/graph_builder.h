#ifndef EDGESHED_GRAPH_GRAPH_BUILDER_H_
#define EDGESHED_GRAPH_GRAPH_BUILDER_H_

#include <vector>

#include "graph/graph.h"

namespace edgeshed::graph {

/// Accumulates raw (possibly messy) edge data and produces a clean simple
/// Graph: self-loops dropped, parallel edges collapsed, node count inferred.
///
/// Generators and file loaders use this so `Graph` itself can stay strict.
class GraphBuilder {
 public:
  GraphBuilder() = default;

  /// Pre-declares at least `num_nodes` vertices (isolated vertices are kept).
  void ReserveNodes(NodeId num_nodes);

  /// Hints the expected number of edges (avoids reallocation).
  void ReserveEdges(size_t num_edges);

  /// Adds an undirected edge; order of endpoints is irrelevant. Self-loops
  /// and duplicates are tolerated here and removed by Build().
  void AddEdge(NodeId u, NodeId v);

  /// Number of edges added so far (before dedup).
  size_t PendingEdges() const { return edges_.size(); }

  /// Produces the cleaned graph. The builder is left empty.
  Graph Build();

 private:
  NodeId max_node_bound_ = 0;  // one past the largest node id seen/declared
  std::vector<Edge> edges_;
};

}  // namespace edgeshed::graph

#endif  // EDGESHED_GRAPH_GRAPH_BUILDER_H_
