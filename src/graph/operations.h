#ifndef EDGESHED_GRAPH_OPERATIONS_H_
#define EDGESHED_GRAPH_OPERATIONS_H_

#include <vector>

#include "common/statusor.h"
#include "graph/graph.h"

namespace edgeshed::graph {

/// Node-induced subgraph: keeps the listed vertices (relabeled densely in
/// the order given) and every edge of `g` with both endpoints selected.
/// Returns InvalidArgument on out-of-range or duplicate vertices.
struct InducedSubgraph {
  Graph graph;
  /// original_of[i] = vertex of `g` that became dense id i.
  std::vector<NodeId> original_of;
};
StatusOr<InducedSubgraph> InduceByNodes(const Graph& g,
                                        const std::vector<NodeId>& nodes);

/// Union of two graphs over max(|V_a|, |V_b|) vertices: edge set E_a ∪ E_b.
Graph GraphUnion(const Graph& a, const Graph& b);

/// Intersection: edges present in both graphs, over max(|V_a|, |V_b|).
Graph GraphIntersection(const Graph& a, const Graph& b);

/// Difference: edges of `a` not present in `b`, over |V_a| vertices.
Graph GraphDifference(const Graph& a, const Graph& b);

/// Drops isolated vertices and relabels the rest densely (preserving
/// relative order). The inverse mapping is returned alongside.
InducedSubgraph DropIsolated(const Graph& g);

/// Jaccard similarity of the two edge sets |E_a ∩ E_b| / |E_a ∪ E_b|
/// (1.0 when both are empty). Handy for comparing reductions.
double EdgeJaccard(const Graph& a, const Graph& b);

}  // namespace edgeshed::graph

#endif  // EDGESHED_GRAPH_OPERATIONS_H_
