#ifndef EDGESHED_GRAPH_DATASETS_H_
#define EDGESHED_GRAPH_DATASETS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "graph/graph.h"

namespace edgeshed::graph {

/// The four datasets of the paper's Table II.
enum class DatasetId {
  kCaGrQc,           // collaboration network, 5,242 / 14,496
  kCaHepPh,          // collaboration network, 12,008 / 118,521
  kEmailEnron,       // email communication network, 36,692 / 183,831
  kComLiveJournal,   // online social network, 3,997,962 / 34,681,189
};

/// Static facts about a paper dataset and the surrogate family used offline.
struct DatasetSpec {
  DatasetId id;
  std::string name;          // paper name, e.g. "ca-GrQc"
  uint64_t paper_nodes;      // Table II node count
  uint64_t paper_edges;      // Table II edge count
  std::string description;   // Table II description
  std::string surrogate;     // generator family used when offline
};

/// Generation controls for surrogates.
struct DatasetOptions {
  /// Linear scale on node count; 1.0 reproduces the paper's size. The
  /// com-LiveJournal surrogate defaults to 0.1 in the bench harness because
  /// 4M nodes / 35M edges is pointlessly slow for shape reproduction.
  double scale = 1.0;
  /// Seed for the deterministic generator.
  uint64_t seed = 20210419;  // ICDE 2021 week, for no particular reason
};

const DatasetSpec& GetDatasetSpec(DatasetId id);
std::vector<DatasetId> AllDatasets();
/// The three datasets UDS can handle (paper: UDS is skipped on LiveJournal).
std::vector<DatasetId> SmallDatasets();

/// Generates the offline surrogate for `id` (DESIGN.md §3):
///  * ca-GrQc   -> PowerlawCluster(n, 3, 0.5): sparse, highly clustered.
///  * ca-HepPh  -> PowerlawCluster(n, 10, 0.6): dense collaboration graph.
///  * email-Enron -> BarabasiAlbert(n, 5): hub-dominated heavy tail.
///  * com-LiveJournal -> R-MAT(scale chosen from n, edge_factor 8).
/// Realized |V|, |E| track Table II up to generator collision noise.
Graph MakeDataset(DatasetId id, const DatasetOptions& options = {});

/// Loads the real SNAP file if `path` is non-empty and readable, otherwise
/// falls back to MakeDataset. Lets users reproduce on genuine data.
Graph MakeDatasetOrLoad(DatasetId id, const std::string& path,
                        const DatasetOptions& options = {});

}  // namespace edgeshed::graph

#endif  // EDGESHED_GRAPH_DATASETS_H_
