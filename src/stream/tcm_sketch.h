#ifndef EDGESHED_STREAM_TCM_SKETCH_H_
#define EDGESHED_STREAM_TCM_SKETCH_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace edgeshed::stream {

/// TCM-style graph-stream sketch (Tang, Chen & Mitra, SIGMOD 2016 — cited
/// by the paper's related work as the graph-stream alternative to edge
/// shedding). `depth` independent W x W count matrices, each indexed by a
/// pairwise-independent hash of the endpoints; edge-weight queries return
/// the minimum over matrices (count-min guarantee: never an
/// underestimate). Constant memory regardless of stream length — the
/// trade-off against shedding is that the output is a sketch to query, not
/// a graph to run algorithms on, which is precisely the paper's argument
/// for shedding.
class TcmSketch {
 public:
  struct Options {
    uint32_t width = 256;  // W: each matrix is W x W counters
    uint32_t depth = 3;    // independent matrices
    uint64_t seed = 17;
  };

  explicit TcmSketch(Options options);

  /// Records an undirected edge occurrence with the given weight.
  /// Multi-edges accumulate (stream semantics).
  void AddEdge(graph::NodeId u, graph::NodeId v, double weight = 1.0);

  /// Estimated total weight of edge {u, v}; >= the true weight (count-min
  /// one-sided error).
  double EdgeWeight(graph::NodeId u, graph::NodeId v) const;

  /// Estimated total weight incident to `u` (its weighted degree); >= the
  /// true value. Maintained per matrix as row sums.
  double NodeWeight(graph::NodeId u) const;

  /// Total stream weight ingested (exact).
  double TotalWeight() const { return total_weight_; }

  /// Memory footprint in counter cells (width^2 * depth).
  uint64_t Cells() const {
    return static_cast<uint64_t>(options_.width) * options_.width *
           options_.depth;
  }

 private:
  uint32_t Bucket(uint32_t layer, graph::NodeId node) const;

  Options options_;
  double total_weight_ = 0.0;
  std::vector<uint64_t> hash_seeds_;        // one per layer
  std::vector<std::vector<double>> cells_;  // [layer][row * W + col]
  std::vector<std::vector<double>> rows_;   // [layer][row] aggregated
};

}  // namespace edgeshed::stream

#endif  // EDGESHED_STREAM_TCM_SKETCH_H_
