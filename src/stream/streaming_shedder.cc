#include "stream/streaming_shedder.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "graph/graph_builder.h"

namespace edgeshed::stream {

StreamingShedder::StreamingShedder(double p, Options options)
    : p_(p), options_(options), rng_(options.seed) {
  EDGESHED_CHECK(p > 0.0 && p < 1.0)
      << "edge preservation ratio must be in (0,1), got " << p;
  EDGESHED_CHECK(options_.eviction_samples > 0);
}

uint64_t StreamingShedder::Budget() const {
  return static_cast<uint64_t>(
      std::llround(p_ * static_cast<double>(edges_seen_)));
}

double StreamingShedder::AverageDelta() const {
  return deg_seen_.empty()
             ? 0.0
             : total_delta_ / static_cast<double>(deg_seen_.size());
}

void StreamingShedder::EnsureNode(graph::NodeId u) {
  if (u >= deg_seen_.size()) {
    deg_seen_.resize(u + 1, 0);
    deg_kept_.resize(u + 1, 0);
  }
}

void StreamingShedder::AdjustDeltaForSeen(graph::NodeId u) {
  // deg_seen_[u] was just incremented: dis(u) moved by -p.
  const double dis_after = Dis(u);
  const double dis_before = dis_after + p_;
  total_delta_ += std::abs(dis_after) - std::abs(dis_before);
}

void StreamingShedder::AdjustDeltaForUnseen(graph::NodeId u) {
  // deg_seen_[u] was just decremented: dis(u) moved by +p.
  const double dis_after = Dis(u);
  const double dis_before = dis_after - p_;
  total_delta_ += std::abs(dis_after) - std::abs(dis_before);
}

void StreamingShedder::KeepEdge(graph::NodeId u, graph::NodeId v) {
  const double before = std::abs(Dis(u)) + std::abs(Dis(v));
  ++deg_kept_[u];
  ++deg_kept_[v];
  total_delta_ += std::abs(Dis(u)) + std::abs(Dis(v)) - before;
  kept_.push_back(graph::Edge{std::min(u, v), std::max(u, v)});
  kept_keys_.insert((static_cast<uint64_t>(std::min(u, v)) << 32) |
                    std::max(u, v));
}

void StreamingShedder::EvictWorstSampled() {
  EDGESHED_DCHECK(!kept_.empty());
  size_t best_index = 0;
  double best_change = 1e300;
  const uint32_t samples =
      static_cast<uint32_t>(std::min<uint64_t>(options_.eviction_samples,
                                               kept_.size()));
  for (uint32_t i = 0; i < samples; ++i) {
    const size_t index = rng_.UniformIndex(kept_.size());
    const graph::Edge& e = kept_[index];
    const double change = std::abs(Dis(e.u) - 1.0) + std::abs(Dis(e.v) - 1.0)
                          - (std::abs(Dis(e.u)) + std::abs(Dis(e.v)));
    if (change < best_change) {
      best_change = change;
      best_index = index;
    }
  }
  const graph::Edge evicted = kept_[best_index];
  const double before = std::abs(Dis(evicted.u)) + std::abs(Dis(evicted.v));
  --deg_kept_[evicted.u];
  --deg_kept_[evicted.v];
  total_delta_ +=
      std::abs(Dis(evicted.u)) + std::abs(Dis(evicted.v)) - before;
  kept_keys_.erase((static_cast<uint64_t>(evicted.u) << 32) | evicted.v);
  kept_[best_index] = kept_.back();
  kept_.pop_back();
}

void StreamingShedder::AddEdge(graph::NodeId u, graph::NodeId v) {
  if (u == v) return;  // simple graphs only
  EnsureNode(std::max(u, v));
  // Ignore duplicates of an edge we currently hold; re-arrivals of shed
  // edges pass through as fresh stream mass.
  const uint64_t key =
      (static_cast<uint64_t>(std::min(u, v)) << 32) | std::max(u, v);
  if (kept_keys_.contains(key)) return;
  ++edges_seen_;
  ++deg_seen_[u];
  AdjustDeltaForSeen(u);
  ++deg_seen_[v];
  AdjustDeltaForSeen(v);

  // Admit, then shrink back to budget. Admitting first lets a strongly
  // beneficial arrival displace a weak incumbent via the eviction step.
  const double addition_change =
      std::abs(Dis(u) + 1.0) + std::abs(Dis(v) + 1.0) -
      (std::abs(Dis(u)) + std::abs(Dis(v)));
  const uint64_t budget = Budget();
  if (kept_.size() < budget) {
    KeepEdge(u, v);
  } else if (addition_change < 0.0 && !kept_.empty()) {
    KeepEdge(u, v);
  }
  while (kept_.size() > budget) {
    EvictWorstSampled();
  }
}

void StreamingShedder::RemoveEdge(graph::NodeId u, graph::NodeId v) {
  if (u == v) return;  // simple graphs only
  if (std::max(u, v) >= deg_seen_.size()) return;
  if (edges_seen_ == 0 || deg_seen_[u] == 0 || deg_seen_[v] == 0) return;
  --edges_seen_;
  --deg_seen_[u];
  AdjustDeltaForUnseen(u);
  --deg_seen_[v];
  AdjustDeltaForUnseen(v);

  const graph::NodeId lo = std::min(u, v);
  const graph::NodeId hi = std::max(u, v);
  const uint64_t key = (static_cast<uint64_t>(lo) << 32) | hi;
  if (kept_keys_.erase(key) > 0) {
    for (size_t i = 0; i < kept_.size(); ++i) {
      if (kept_[i].u == lo && kept_[i].v == hi) {
        const double before = std::abs(Dis(u)) + std::abs(Dis(v));
        --deg_kept_[u];
        --deg_kept_[v];
        total_delta_ += std::abs(Dis(u)) + std::abs(Dis(v)) - before;
        kept_[i] = kept_.back();
        kept_.pop_back();
        break;
      }
    }
  }
  // A deletion of a shed edge still shrinks the budget, so an incumbent may
  // have to go to restore kept <= round(p * seen).
  while (kept_.size() > Budget()) {
    EvictWorstSampled();
  }
}

double StreamingShedder::RecomputeTotalDelta() const {
  double total = 0.0;
  for (graph::NodeId u = 0; u < deg_seen_.size(); ++u) {
    total += std::abs(Dis(u));
  }
  return total;
}

graph::Graph StreamingShedder::SnapshotGraph() const {
  graph::GraphBuilder builder;
  builder.ReserveNodes(static_cast<graph::NodeId>(deg_seen_.size()));
  for (const graph::Edge& e : kept_) builder.AddEdge(e.u, e.v);
  return builder.Build();
}

}  // namespace edgeshed::stream
