#include "stream/tcm_sketch.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "common/random.h"

namespace edgeshed::stream {

TcmSketch::TcmSketch(Options options) : options_(options) {
  EDGESHED_CHECK_GT(options_.width, 0u);
  EDGESHED_CHECK_GT(options_.depth, 0u);
  uint64_t seed = options_.seed;
  for (uint32_t layer = 0; layer < options_.depth; ++layer) {
    hash_seeds_.push_back(SplitMix64Next(&seed));
    cells_.emplace_back(
        static_cast<size_t>(options_.width) * options_.width, 0.0);
    rows_.emplace_back(options_.width, 0.0);
  }
}

uint32_t TcmSketch::Bucket(uint32_t layer, graph::NodeId node) const {
  uint64_t state = hash_seeds_[layer] ^ (static_cast<uint64_t>(node) + 1);
  return static_cast<uint32_t>(SplitMix64Next(&state) % options_.width);
}

void TcmSketch::AddEdge(graph::NodeId u, graph::NodeId v, double weight) {
  total_weight_ += weight;
  for (uint32_t layer = 0; layer < options_.depth; ++layer) {
    const uint32_t bu = Bucket(layer, u);
    const uint32_t bv = Bucket(layer, v);
    // Undirected: store each edge once under the canonical (min, max)
    // bucket pair, and credit both endpoint rows.
    const uint32_t row = std::min(bu, bv);
    const uint32_t col = std::max(bu, bv);
    cells_[layer][static_cast<size_t>(row) * options_.width + col] += weight;
    rows_[layer][bu] += weight;
    // Guard on the *nodes*, not the buckets: two distinct endpoints that
    // collide into one bucket must still credit the row twice, or the row
    // sum (Σ per-node incident weight) silently undercounts on collisions.
    // Only a true self-loop (u == v) is a single incidence.
    if (u != v) rows_[layer][bv] += weight;
  }
}

double TcmSketch::EdgeWeight(graph::NodeId u, graph::NodeId v) const {
  double best = std::numeric_limits<double>::max();
  for (uint32_t layer = 0; layer < options_.depth; ++layer) {
    const uint32_t bu = Bucket(layer, u);
    const uint32_t bv = Bucket(layer, v);
    const uint32_t row = std::min(bu, bv);
    const uint32_t col = std::max(bu, bv);
    best = std::min(
        best, cells_[layer][static_cast<size_t>(row) * options_.width + col]);
  }
  return best;
}

double TcmSketch::NodeWeight(graph::NodeId u) const {
  double best = std::numeric_limits<double>::max();
  for (uint32_t layer = 0; layer < options_.depth; ++layer) {
    best = std::min(best, rows_[layer][Bucket(layer, u)]);
  }
  return best;
}

}  // namespace edgeshed::stream
