#ifndef EDGESHED_STREAM_STREAMING_SHEDDER_H_
#define EDGESHED_STREAM_STREAMING_SHEDDER_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/random.h"
#include "graph/graph.h"

namespace edgeshed::stream {

/// One-pass degree-preserving edge shedding over an edge stream — the
/// extension the paper's edge-computing motivation calls for (§I: "there
/// has been increasing demand for edge computing, where preliminary data
/// processing is pushed to less powerful devices").
///
/// Semantics: after any prefix of the stream with E_seen edges, the shedder
/// holds at most round(p·E_seen) edges while steering every vertex toward
/// its *running* expected degree p·deg_seen(u). Arriving edges are admitted
/// while under budget; overflow triggers eviction of the sampled kept edge
/// whose removal most improves the discrepancy Δ (semi-streaming: shed
/// edges are gone for good, so this is strictly weaker than offline CRR —
/// the gap is measured in bench_ext_streaming).
///
/// Space: O(|V| + p·E_seen). Time: O(eviction_samples) per arrival.
struct StreamingShedderOptions {
  /// Kept-edge candidates examined per eviction (higher = better Δ,
  /// slower arrivals).
  uint32_t eviction_samples = 8;
  uint64_t seed = 42;
};

class StreamingShedder {
 public:
  using Options = StreamingShedderOptions;

  /// `p` in (0,1): target edge preservation ratio.
  explicit StreamingShedder(double p, Options options = {});

  /// Processes one stream arrival. Endpoints may be brand-new vertex ids
  /// (state grows on demand). Self-loops are ignored. Duplicate arrivals of
  /// an edge currently kept are ignored; re-arrivals of an edge that was
  /// shed are treated as fresh arrivals (stream semantics).
  void AddEdge(graph::NodeId u, graph::NodeId v);

  /// Processes one stream deletion (the dynamic-graph extension, DESIGN.md
  /// §15): the caller asserts (u,v) previously arrived and has not already
  /// been deleted. Running degrees and the budget shrink accordingly; if the
  /// edge is currently kept it is dropped, otherwise a sampled incumbent may
  /// be evicted to return to the reduced budget. Self-loops, unknown
  /// endpoints, and deletions past the observed degree are ignored.
  /// O(kept) worst case (locating a kept edge scans the kept list).
  void RemoveEdge(graph::NodeId u, graph::NodeId v);

  /// Number of live stream edges: arrivals minus deletions (excluding
  /// ignored self-loops/duplicates).
  uint64_t EdgesSeen() const { return edges_seen_; }

  /// Current kept-edge budget round(p·EdgesSeen()).
  uint64_t Budget() const;

  /// Kept edges right now.
  const std::vector<graph::Edge>& kept_edges() const { return kept_; }

  /// Current total discrepancy Δ = Σ_u |deg_kept(u) − p·deg_seen(u)|.
  double TotalDelta() const { return total_delta_; }
  double AverageDelta() const;

  /// O(|V|) recomputation of Δ (tests / drift control).
  double RecomputeTotalDelta() const;

  /// Materializes the current reduced graph over vertices [0, max id seen].
  graph::Graph SnapshotGraph() const;

  /// Vertices observed so far (max id + 1).
  uint64_t NumNodes() const { return deg_seen_.size(); }

 private:
  double Dis(graph::NodeId u) const {
    return static_cast<double>(deg_kept_[u]) -
           p_ * static_cast<double>(deg_seen_[u]);
  }
  void EnsureNode(graph::NodeId u);
  void AdjustDeltaForSeen(graph::NodeId u);    // deg_seen_[u] already bumped
  void AdjustDeltaForUnseen(graph::NodeId u);  // deg_seen_[u] already dropped
  void KeepEdge(graph::NodeId u, graph::NodeId v);
  void EvictWorstSampled();

  double p_;
  Options options_;
  Rng rng_;
  uint64_t edges_seen_ = 0;
  double total_delta_ = 0.0;
  std::vector<uint64_t> deg_seen_;
  std::vector<uint64_t> deg_kept_;
  std::vector<graph::Edge> kept_;
  std::unordered_set<uint64_t> kept_keys_;  // packed (u << 32 | v), u < v
};

}  // namespace edgeshed::stream

#endif  // EDGESHED_STREAM_STREAMING_SHEDDER_H_
