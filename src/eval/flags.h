#ifndef EDGESHED_EVAL_FLAGS_H_
#define EDGESHED_EVAL_FLAGS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace edgeshed::eval {

/// Minimal command-line parser for the bench/example binaries.
/// Accepts "--name=value", "--name value", and bare "--flag" (= "true").
/// Unknown flags are kept and can be listed for error reporting.
class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Positional (non-flag) arguments in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::unordered_map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace edgeshed::eval

#endif  // EDGESHED_EVAL_FLAGS_H_
