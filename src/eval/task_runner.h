#ifndef EDGESHED_EVAL_TASK_RUNNER_H_
#define EDGESHED_EVAL_TASK_RUNNER_H_

#include <string>

#include "analytics/betweenness.h"
#include "analytics/pagerank.h"
#include "analytics/shortest_paths.h"
#include "embedding/link_prediction.h"
#include "graph/graph.h"

namespace edgeshed::eval {

/// The paper's seven evaluation tasks (§V-A).
enum class Task {
  kVertexDegree,
  kSpDistance,
  kBetweenness,
  kClusteringCoefficient,
  kHopPlot,
  kTopK,
  kLinkPrediction,
};

/// "Vertex degree", "SP distance", ... — the paper's table labels.
std::string TaskName(Task task);

/// All seven tasks in the paper's table order.
std::vector<Task> AllTasks();

/// Shared knobs for timed task execution.
struct TaskOptions {
  analytics::BetweennessOptions betweenness;
  analytics::DistanceProfileOptions distances;
  analytics::PageRankOptions pagerank;
  embedding::LinkPredictionOptions link_prediction;
  double top_percent = 10.0;
};

/// Executes `task` on `g` and returns the wall-clock seconds it took. Task
/// outputs are computed fully but discarded — this is the "graph analysis
/// time" measured by the paper's Tables IV-VII.
double RunTaskTimed(const graph::Graph& g, Task task,
                    const TaskOptions& options = {});

}  // namespace edgeshed::eval

#endif  // EDGESHED_EVAL_TASK_RUNNER_H_
