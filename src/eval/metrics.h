#ifndef EDGESHED_EVAL_METRICS_H_
#define EDGESHED_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

#include "analytics/pagerank.h"
#include "baseline/uds.h"
#include "graph/graph.h"

namespace edgeshed::eval {

/// Vertices whose PageRank puts them in the top t% (paper task 6).
/// `eligible` optionally restricts the candidate pool (the paper's V' is
/// the reduced graph's non-isolated vertex set); k is computed as
/// round(t% · |pool|).
std::vector<uint32_t> TopPercentNodes(const std::vector<double>& scores,
                                      double t_percent,
                                      const std::vector<bool>* eligible =
                                          nullptr);

/// |base ∩ other| / |base| (0 when base is empty).
double OverlapUtility(const std::vector<uint32_t>& base,
                      const std::vector<uint32_t>& other);

/// End-to-end Top-t% utility of a reduced graph: PageRank both graphs, take
/// the top t% of V (original) and of the reduced graph's non-isolated
/// vertices, and return the overlap fraction
///   |V_t% ∩ V'_t%| / k   (k from the original graph).
double TopKUtilityForReduced(const graph::Graph& original,
                             const graph::Graph& reduced, double t_percent,
                             const analytics::PageRankOptions& options = {});

/// Top-t% utility for a UDS summary via its supernode processing: PageRank
/// on the summary graph, each original vertex scored as its supernode's
/// rank divided by the supernode size, then the same overlap ratio.
double TopKUtilityForUds(const graph::Graph& original,
                         const baseline::UdsSummary& summary,
                         double t_percent,
                         const analytics::PageRankOptions& options = {});

/// Count of non-isolated vertices (the paper's |V'| for a reduced graph).
uint64_t NonIsolatedCount(const graph::Graph& g);

}  // namespace edgeshed::eval

#endif  // EDGESHED_EVAL_METRICS_H_
