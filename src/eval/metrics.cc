#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <unordered_set>

#include "common/check.h"

namespace edgeshed::eval {

std::vector<uint32_t> TopPercentNodes(const std::vector<double>& scores,
                                      double t_percent,
                                      const std::vector<bool>* eligible) {
  std::vector<uint32_t> pool;
  pool.reserve(scores.size());
  for (uint32_t u = 0; u < scores.size(); ++u) {
    if (eligible == nullptr || (*eligible)[u]) pool.push_back(u);
  }
  const auto k = static_cast<uint64_t>(std::llround(
      t_percent / 100.0 * static_cast<double>(pool.size())));
  const uint64_t take = std::min<uint64_t>(k, pool.size());
  std::partial_sort(pool.begin(), pool.begin() + static_cast<long>(take),
                    pool.end(), [&scores](uint32_t a, uint32_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  pool.resize(take);
  return pool;
}

double OverlapUtility(const std::vector<uint32_t>& base,
                      const std::vector<uint32_t>& other) {
  if (base.empty()) return 0.0;
  std::unordered_set<uint32_t> base_set(base.begin(), base.end());
  uint64_t shared = 0;
  for (uint32_t u : other) {
    if (base_set.contains(u)) ++shared;
  }
  return static_cast<double>(shared) / static_cast<double>(base.size());
}

uint64_t NonIsolatedCount(const graph::Graph& g) {
  uint64_t count = 0;
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    if (g.Degree(u) > 0) ++count;
  }
  return count;
}

double TopKUtilityForReduced(const graph::Graph& original,
                             const graph::Graph& reduced, double t_percent,
                             const analytics::PageRankOptions& options) {
  EDGESHED_CHECK_EQ(original.NumNodes(), reduced.NumNodes())
      << "reduced graphs keep the original vertex set";
  std::vector<double> original_scores = analytics::PageRank(original, options);
  std::vector<double> reduced_scores = analytics::PageRank(reduced, options);
  std::vector<bool> eligible(reduced.NumNodes());
  for (graph::NodeId u = 0; u < reduced.NumNodes(); ++u) {
    eligible[u] = reduced.Degree(u) > 0;
  }
  std::vector<uint32_t> base = TopPercentNodes(original_scores, t_percent);
  std::vector<uint32_t> candidate =
      TopPercentNodes(reduced_scores, t_percent, &eligible);
  return OverlapUtility(base, candidate);
}

double TopKUtilityForUds(const graph::Graph& original,
                         const baseline::UdsSummary& summary,
                         double t_percent,
                         const analytics::PageRankOptions& options) {
  std::vector<double> original_scores = analytics::PageRank(original, options);
  std::vector<double> summary_scores =
      analytics::PageRank(summary.summary_graph, options);
  // Expand supernode scores to original vertices: a supernode's rank is
  // shared evenly among its members.
  std::vector<double> expanded(original.NumNodes(), 0.0);
  for (graph::NodeId u = 0; u < original.NumNodes(); ++u) {
    const uint32_t s = summary.supernode_of[u];
    const double size = static_cast<double>(summary.members[s].size());
    expanded[u] = summary_scores[s] / size;
  }
  std::vector<uint32_t> base = TopPercentNodes(original_scores, t_percent);
  std::vector<uint32_t> candidate = TopPercentNodes(expanded, t_percent);
  return OverlapUtility(base, candidate);
}

}  // namespace edgeshed::eval
