#include "eval/flags.h"

#include <cstdlib>
#include <string_view>

namespace edgeshed::eval {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (!arg.starts_with("--")) {
      positional_.emplace_back(arg);
      continue;
    }
    arg.remove_prefix(2);
    size_t eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] =
          std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && argv[i + 1][0] != '-') {
      values_[std::string(arg)] = argv[i + 1];
      ++i;
    } else {
      values_[std::string(arg)] = "true";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.contains(name);
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::atof(it->second.c_str());
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : std::atoll(it->second.c_str());
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second != "false" && it->second != "0";
}

}  // namespace edgeshed::eval
