#include "eval/experiment.h"

namespace edgeshed::eval {

BenchConfig ParseBenchConfig(const Flags& flags) {
  BenchConfig config;
  config.scale = flags.GetDouble("scale", 1.0);
  config.full = flags.GetBool("full", false);
  config.seed = static_cast<uint64_t>(flags.GetInt("seed", 20210419));
  config.data_dir = flags.GetString("data_dir", "");
  return config;
}

double DefaultDatasetScale(graph::DatasetId id, bool full) {
  if (full) return 1.0;
  switch (id) {
    case graph::DatasetId::kCaGrQc:
    case graph::DatasetId::kCaHepPh:
    case graph::DatasetId::kEmailEnron:
      return 1.0;
    case graph::DatasetId::kComLiveJournal:
      return 1.0 / 32.0;
  }
  return 1.0;
}

graph::Graph LoadBenchGraph(graph::DatasetId id, const BenchConfig& config) {
  graph::DatasetOptions options;
  options.scale = DefaultDatasetScale(id, config.full) * config.scale;
  options.seed = config.seed;
  std::string path;
  if (!config.data_dir.empty()) {
    path = config.data_dir + "/" + graph::GetDatasetSpec(id).name + ".txt";
  }
  return graph::MakeDatasetOrLoad(id, path, options);
}

std::vector<double> PaperPreservationRatios() {
  return {0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2, 0.1};
}

}  // namespace edgeshed::eval
