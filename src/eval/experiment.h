#ifndef EDGESHED_EVAL_EXPERIMENT_H_
#define EDGESHED_EVAL_EXPERIMENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "eval/flags.h"
#include "graph/datasets.h"
#include "graph/graph.h"

namespace edgeshed::eval {

/// Shared configuration for the bench binaries (bench/ directory).
struct BenchConfig {
  /// Global multiplier applied on top of the per-dataset default scale.
  double scale = 1.0;
  /// Paper-scale surrogates (equivalent to scale = 1 for every dataset and
  /// the paper's full LiveJournal size). Default benches shrink the large
  /// datasets so the full harness finishes in minutes (DESIGN.md §4).
  bool full = false;
  /// Generator seed.
  uint64_t seed = 20210419;
  /// Optional directory with real SNAP edge lists (ca-GrQc.txt, ...); used
  /// instead of surrogates when present.
  std::string data_dir;
};

/// Parses --scale, --full, --seed, --data_dir.
BenchConfig ParseBenchConfig(const Flags& flags);

/// Per-dataset default scale under `full == false`: the three small
/// datasets run at paper size; com-LiveJournal runs at 1/32 scale.
double DefaultDatasetScale(graph::DatasetId id, bool full);

/// Materializes the bench graph for `id` under `config` (real file if
/// data_dir has one, surrogate otherwise).
graph::Graph LoadBenchGraph(graph::DatasetId id, const BenchConfig& config);

/// "p" column values of the paper's tables: 0.9 down to 0.1.
std::vector<double> PaperPreservationRatios();

}  // namespace edgeshed::eval

#endif  // EDGESHED_EVAL_EXPERIMENT_H_
