#include "eval/task_runner.h"

#include "analytics/clustering.h"
#include "analytics/degree.h"
#include "common/check.h"
#include "common/stopwatch.h"
#include "eval/metrics.h"

namespace edgeshed::eval {

std::string TaskName(Task task) {
  switch (task) {
    case Task::kVertexDegree:
      return "Vertex degree";
    case Task::kSpDistance:
      return "SP distance";
    case Task::kBetweenness:
      return "Betweenness centrality";
    case Task::kClusteringCoefficient:
      return "Clustering coefficient";
    case Task::kHopPlot:
      return "Hop-plot";
    case Task::kTopK:
      return "Top-k";
    case Task::kLinkPrediction:
      return "Link prediction";
  }
  EDGESHED_CHECK(false) << "unknown task";
  return "";
}

std::vector<Task> AllTasks() {
  return {Task::kLinkPrediction,      Task::kSpDistance,
          Task::kBetweenness,         Task::kHopPlot,
          Task::kTopK,                Task::kVertexDegree,
          Task::kClusteringCoefficient};
}

double RunTaskTimed(const graph::Graph& g, Task task,
                    const TaskOptions& options) {
  Stopwatch watch;
  switch (task) {
    case Task::kVertexDegree: {
      volatile uint64_t sink = analytics::DegreeDistribution(g).total();
      (void)sink;
      break;
    }
    case Task::kSpDistance:
    case Task::kHopPlot: {
      // The hop-plot is the cumulative form of the distance profile; both
      // tasks run the same BFS sweep, exactly as in snap.py.
      Histogram profile = analytics::DistanceProfile(g, options.distances);
      volatile double sink = analytics::HopPlotFraction(profile, 3);
      (void)sink;
      break;
    }
    case Task::kBetweenness: {
      analytics::BetweennessScores scores =
          analytics::Betweenness(g, options.betweenness);
      volatile double sink = scores.node.empty() ? 0.0 : scores.node[0];
      (void)sink;
      break;
    }
    case Task::kClusteringCoefficient: {
      volatile double sink = analytics::AverageClusteringCoefficient(g);
      (void)sink;
      break;
    }
    case Task::kTopK: {
      std::vector<double> scores = analytics::PageRank(g, options.pagerank);
      std::vector<uint32_t> top =
          TopPercentNodes(scores, options.top_percent);
      volatile uint64_t sink = top.size();
      (void)sink;
      break;
    }
    case Task::kLinkPrediction: {
      std::vector<uint32_t> communities =
          embedding::CommunityAssignments(g, options.link_prediction);
      embedding::PairSet pairs = embedding::PredictSameCommunityPairs(
          g, communities, options.link_prediction);
      volatile uint64_t sink = pairs.size();
      (void)sink;
      break;
    }
  }
  return watch.ElapsedSeconds();
}

}  // namespace edgeshed::eval
