#include "baseline/uds.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "analytics/bfs.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "graph/graph_builder.h"

namespace edgeshed::baseline {

namespace {

/// Covered-edge bookkeeping for one supernode pair (or a supernode's
/// internal pair set).
struct PairStats {
  double real_utility = 0.0;       // Σ w(e) over real edges in the pair set
  double real_pair_penalty = 0.0;  // Σ (ni(u)+ni(v))/2 over those same edges
  uint64_t edge_count = 0;

  void Absorb(const PairStats& other) {
    real_utility += other.real_utility;
    real_pair_penalty += other.real_pair_penalty;
    edge_count += other.edge_count;
  }
};

struct Supernode {
  bool alive = true;
  uint64_t size = 1;
  uint64_t version = 0;  // bumped on every merge that touches this id
  double ni_sum = 0.0;   // Σ normalized node importance over members
  PairStats internal;    // stats of member-member edges
  std::unordered_map<uint32_t, PairStats> neighbors;
};

/// Net utility contribution of the superedge between x and y (stats `s`):
/// covered utility minus spurious-pair penalty, floored at 0 because a
/// losing superedge is simply dropped from the summary.
double CrossContribution(const Supernode& x, const Supernode& y,
                         const PairStats& s) {
  const double total_pair_penalty =
      (static_cast<double>(x.size) * y.ni_sum +
       static_cast<double>(y.size) * x.ni_sum) /
      2.0;
  const double spurious = total_pair_penalty - s.real_pair_penalty;
  return std::max(0.0, s.real_utility - spurious);
}

/// Same for the self-superedge of x over its internal pairs.
double InternalContribution(const Supernode& x) {
  const double total_pair_penalty =
      (static_cast<double>(x.size - 1) * x.ni_sum) / 2.0;
  const double spurious = total_pair_penalty - x.internal.real_pair_penalty;
  return std::max(0.0, x.internal.real_utility - spurious);
}

/// Candidate merge in the lazy min-heap. Keys go stale; pops re-evaluate.
struct MergeCandidate {
  double loss;
  uint32_t s;
  uint32_t t;
  uint64_t version_s;
  uint64_t version_t;

  /// Min-heap by loss (std::priority_queue is a max-heap, so invert);
  /// deterministic tie-break on ids.
  friend bool operator<(const MergeCandidate& a, const MergeCandidate& b) {
    if (a.loss != b.loss) return a.loss > b.loss;
    if (a.s != b.s) return a.s > b.s;
    return a.t > b.t;
  }
};

}  // namespace

StatusOr<UdsSummary> Uds::Summarize(const graph::Graph& g,
                                    double utility_threshold,
                                    const CancellationToken* cancel) const {
  if (!(utility_threshold > 0.0 && utility_threshold < 1.0)) {
    return Status::InvalidArgument(
        "UDS utility threshold must be in (0, 1)");
  }
  Stopwatch watch;
  const uint64_t n = g.NumNodes();
  UdsSummary summary;

  // Importance scores (nodeIS/edgeIS = betweenness), normalized to sum 1.
  analytics::BetweennessOptions importance = options_.importance;
  importance.cancel = cancel;
  analytics::BetweennessScores scores = analytics::Betweenness(g, importance);
  if (CancellationRequested(cancel)) return cancel->ToStatus();
  double node_total = 0.0;
  double edge_total = 0.0;
  for (double s : scores.node) node_total += s;
  for (double s : scores.edge) edge_total += s;
  // Uniform floor keeps zero-centrality elements from being free to destroy.
  const double node_floor = 0.1 / std::max<double>(1.0, static_cast<double>(n));
  const double edge_floor =
      0.1 / std::max<double>(1.0, static_cast<double>(g.NumEdges()));
  std::vector<double> ni(n);
  std::vector<double> we(g.NumEdges());
  double ni_sum_all = 0.0;
  double we_sum_all = 0.0;
  for (uint64_t u = 0; u < n; ++u) {
    ni[u] = node_floor + (node_total > 0 ? scores.node[u] / node_total : 0.0);
    ni_sum_all += ni[u];
  }
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    we[e] = edge_floor + (edge_total > 0 ? scores.edge[e] / edge_total : 0.0);
    we_sum_all += we[e];
  }
  for (double& v : ni) v /= ni_sum_all;
  for (double& v : we) v /= we_sum_all;

  // Initial summary: every vertex its own supernode; utility = 1.
  std::vector<Supernode> supernodes(n);
  for (uint64_t u = 0; u < n; ++u) supernodes[u].ni_sum = ni[u];
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    const graph::Edge& edge = g.edge(e);
    PairStats stats{we[e], (ni[edge.u] + ni[edge.v]) / 2.0, 1};
    supernodes[edge.u].neighbors[edge.v].Absorb(stats);
    supernodes[edge.v].neighbors[edge.u].Absorb(stats);
  }
  double utility = 1.0;

  // Member lists, spliced on merge so membership is always explicit.
  std::vector<std::vector<graph::NodeId>> member_lists(n);
  for (uint64_t u = 0; u < n; ++u) {
    member_lists[u].push_back(static_cast<graph::NodeId>(u));
  }

  // Loss in total utility if s and t were merged: recompute the affected
  // contributions (pairs touching s or t) before and after.
  auto merge_loss = [&supernodes](uint32_t s, uint32_t t) {
    const Supernode& a = supernodes[s];
    const Supernode& b = supernodes[t];
    double before = InternalContribution(a) + InternalContribution(b);
    double after_internal_real =
        a.internal.real_utility + b.internal.real_utility;
    double after_internal_penalty =
        a.internal.real_pair_penalty + b.internal.real_pair_penalty;
    Supernode merged;
    merged.size = a.size + b.size;
    merged.ni_sum = a.ni_sum + b.ni_sum;

    double after_cross = 0.0;
    for (const auto& [w, stats] : a.neighbors) {
      if (w == t) {
        before += CrossContribution(a, b, stats);
        after_internal_real += stats.real_utility;
        after_internal_penalty += stats.real_pair_penalty;
        continue;
      }
      before += CrossContribution(a, supernodes[w], stats);
      PairStats combined = stats;
      auto it = b.neighbors.find(w);
      if (it != b.neighbors.end()) combined.Absorb(it->second);
      after_cross += CrossContribution(merged, supernodes[w], combined);
    }
    for (const auto& [w, stats] : b.neighbors) {
      if (w == s) continue;  // handled above as (a, t)
      before += CrossContribution(b, supernodes[w], stats);
      if (a.neighbors.contains(w)) continue;  // combined already
      after_cross += CrossContribution(merged, supernodes[w], stats);
    }

    merged.internal =
        PairStats{after_internal_real, after_internal_penalty, 0};
    const double after = after_cross + InternalContribution(merged);
    return before - after;
  };

  // Physically merge t into s.
  auto apply_merge = [&supernodes, &member_lists](uint32_t s, uint32_t t) {
    member_lists[s].insert(member_lists[s].end(), member_lists[t].begin(),
                           member_lists[t].end());
    member_lists[t].clear();
    member_lists[t].shrink_to_fit();
    Supernode& a = supernodes[s];
    Supernode& b = supernodes[t];
    auto st = a.neighbors.find(t);
    if (st != a.neighbors.end()) {
      a.internal.Absorb(st->second);
      a.neighbors.erase(st);
    }
    b.neighbors.erase(s);
    a.internal.Absorb(b.internal);
    for (const auto& [w, stats] : b.neighbors) {
      a.neighbors[w].Absorb(stats);
      Supernode& other = supernodes[w];
      auto back = other.neighbors.find(t);
      EDGESHED_DCHECK(back != other.neighbors.end());
      other.neighbors[s].Absorb(back->second);
      other.neighbors.erase(back);
      ++other.version;
    }
    a.size += b.size;
    a.ni_sum += b.ni_sum;
    ++a.version;
    b.alive = false;
    ++b.version;
    b.neighbors.clear();
  };

  // Global best-first merging over adjacent supernode pairs (lazy heap).
  std::priority_queue<MergeCandidate> heap;
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    const graph::Edge& edge = g.edge(e);
    uint32_t s = std::min(edge.u, edge.v);
    uint32_t t = std::max(edge.u, edge.v);
    ++summary.evaluations;
    heap.push(MergeCandidate{merge_loss(s, t), s, t, 0, 0});
  }
  constexpr double kLossSlack = 1e-12;
  // One token poll per 1024 pops: each pop can trigger an O(neighborhood)
  // re-evaluation, so this is coarse enough to stay off the hot path while
  // still bounding the time to observe a cancel.
  constexpr uint64_t kCancelCheckMask = 1024 - 1;
  uint64_t pops = 0;
  while (!heap.empty()) {
    if ((pops++ & kCancelCheckMask) == 0 && CancellationRequested(cancel)) {
      return cancel->ToStatus();
    }
    MergeCandidate top = heap.top();
    heap.pop();
    if (!supernodes[top.s].alive || !supernodes[top.t].alive) continue;
    if (!supernodes[top.s].neighbors.contains(top.t)) continue;
    const bool stale = top.version_s != supernodes[top.s].version ||
                       top.version_t != supernodes[top.t].version;
    if (stale) {
      ++summary.evaluations;
      const double fresh = merge_loss(top.s, top.t);
      top.loss = fresh;
      top.version_s = supernodes[top.s].version;
      top.version_t = supernodes[top.t].version;
      // Reinsert unless it is still the best candidate.
      if (!heap.empty() && fresh > heap.top().loss + kLossSlack) {
        heap.push(top);
        continue;
      }
    }
    if (utility - top.loss < utility_threshold) {
      // The cheapest merge would cross the threshold: done.
      break;
    }
    utility -= top.loss;
    const uint32_t survivor = top.s;
    apply_merge(survivor, top.t);
    ++summary.merges;
    if (options_.max_merges > 0 && summary.merges >= options_.max_merges) {
      break;
    }
    // Refresh candidates around the merged supernode.
    for (const auto& [w, stats] : supernodes[survivor].neighbors) {
      uint32_t s = std::min(survivor, w);
      uint32_t t = std::max(survivor, w);
      ++summary.evaluations;
      heap.push(MergeCandidate{merge_loss(s, t), s, t,
                               supernodes[s].version,
                               supernodes[t].version});
    }
  }

  // Emit dense supernode ids, membership, and the summary graph (one vertex
  // per live supernode, one edge per *retained* superedge — positive net
  // contribution only).
  std::vector<uint32_t> dense(n, static_cast<uint32_t>(-1));
  summary.supernode_of.assign(n, 0);
  for (uint32_t s = 0; s < n; ++s) {
    if (!supernodes[s].alive) continue;
    dense[s] = static_cast<uint32_t>(summary.members.size());
    summary.members.push_back(std::move(member_lists[s]));
  }
  for (uint32_t s = 0; s < n; ++s) {
    if (dense[s] == static_cast<uint32_t>(-1)) continue;
    for (graph::NodeId u : summary.members[dense[s]]) {
      summary.supernode_of[u] = dense[s];
    }
  }
  graph::GraphBuilder builder;
  builder.ReserveNodes(static_cast<graph::NodeId>(summary.members.size()));
  for (uint32_t s = 0; s < n; ++s) {
    if (!supernodes[s].alive) continue;
    for (const auto& [w, stats] : supernodes[s].neighbors) {
      if (w <= s) continue;  // each pair once
      EDGESHED_DCHECK(supernodes[w].alive);
      if (CrossContribution(supernodes[s], supernodes[w], stats) > 0.0) {
        builder.AddEdge(dense[s], dense[w]);
      }
    }
  }
  summary.summary_graph = builder.Build();
  summary.utility = utility;
  summary.reduction_seconds = watch.ElapsedSeconds();
  return summary;
}

Histogram UdsEstimatedDegreeDistribution(const UdsSummary& summary,
                                         int64_t cap) {
  Histogram histogram(cap);
  const graph::Graph& sg = summary.summary_graph;
  for (uint32_t s = 0; s < summary.members.size(); ++s) {
    int64_t estimate = 0;
    for (graph::NodeId t : sg.Neighbors(static_cast<graph::NodeId>(s))) {
      estimate += static_cast<int64_t>(summary.members[t].size());
    }
    histogram.Add(estimate,
                  static_cast<uint64_t>(summary.members[s].size()));
  }
  return histogram;
}

Histogram UdsDistanceProfile(const UdsSummary& summary) {
  Histogram profile;
  const graph::Graph& sg = summary.summary_graph;
  const uint64_t k = summary.members.size();
  std::vector<int32_t> distances;
  std::vector<graph::NodeId> queue;
  for (uint32_t s = 0; s < k; ++s) {
    const auto s_size = static_cast<uint64_t>(summary.members[s].size());
    // Intra-supernode ordered pairs: reconstructed as adjacent.
    if (s_size > 1) profile.Add(1, s_size * (s_size - 1));
    analytics::BfsDistancesInto(sg, static_cast<graph::NodeId>(s),
                                &distances, &queue);
    for (graph::NodeId t : queue) {
      if (t == s) continue;
      profile.Add(distances[t],
                  s_size * static_cast<uint64_t>(summary.members[t].size()));
    }
  }
  return profile;
}

}  // namespace edgeshed::baseline
