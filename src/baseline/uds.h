#ifndef EDGESHED_BASELINE_UDS_H_
#define EDGESHED_BASELINE_UDS_H_

#include <cstdint>
#include <vector>

#include "analytics/betweenness.h"
#include "common/cancellation.h"
#include "common/histogram.h"
#include "common/statusor.h"
#include "graph/graph.h"

namespace edgeshed::baseline {

/// Configuration for the UDS reimplementation.
struct UdsOptions {
  /// Importance estimator: per the paper's "Parameter Settings", both the
  /// node importance (nodeIS) and edge importance (edgeIS) are betweenness
  /// centrality.
  analytics::BetweennessOptions importance;
  /// Tie-breaking seed (candidate pairs with equal loss).
  uint64_t seed = 42;
  /// Safety valve on the number of merges (0 = unbounded; the utility
  /// threshold is what normally terminates the loop).
  uint64_t max_merges = 0;
};

/// A utility-driven summary: a partition of V into supernodes plus the
/// retained-utility accounting.
struct UdsSummary {
  /// supernode_of[u] = dense supernode index of original vertex u.
  std::vector<uint32_t> supernode_of;
  /// members[s] = original vertices of supernode s.
  std::vector<std::vector<graph::NodeId>> members;
  /// The summary graph: one vertex per supernode, one edge per retained
  /// superedge (a superedge is retained when its covered real-edge utility
  /// exceeds its spurious-pair penalty). Analysis tasks for the UDS column
  /// run on this graph, matching the paper's "its own processing method of
  /// supernodes".
  graph::Graph summary_graph;
  /// Utility retained by the summary, in [0, 1]; >= the requested threshold
  /// unless even the initial summary could not be compressed.
  double utility = 1.0;
  /// Wall-clock seconds spent summarizing (includes importance scoring).
  double reduction_seconds = 0.0;
  /// Candidate-pair evaluations and merges performed (cost counters).
  uint64_t evaluations = 0;
  uint64_t merges = 0;
};

/// Reimplementation of Utility-Driven Graph Summarization (Kumar &
/// Efstathopoulos, VLDB 2019) — the paper's state-of-the-art competitor.
///
/// Model: every original edge carries utility w(e) (normalized edge
/// importance, Σ = 1). A summary covers an edge when a superedge connects
/// (or a self-superedge contains) its endpoints' supernodes; covered edges
/// contribute their utility, while each *spurious* pair implied by a
/// superedge costs the mean of its endpoints' normalized node importances.
/// A superedge is kept only when its net contribution is positive.
///
/// Search: global best-first merging — a lazy min-heap of adjacent
/// supernode pairs keyed by utility loss; the cheapest merge is applied
/// while retained utility stays >= the threshold τ_U (the harness sets
/// τ_U = p, as the paper does). Loss keys go stale as neighbors merge, so
/// every pop re-evaluates, which is exactly why UDS's cost climbs steeply
/// as τ_U shrinks (paper Table III) — each merge enlarges neighborhoods
/// and each evaluation walks them.
class Uds {
 public:
  explicit Uds(UdsOptions options = {}) : options_(options) {}

  /// Runs the summarizer until retained utility would drop below
  /// `utility_threshold` in (0,1).
  ///
  /// `cancel` (optional) is polled inside the importance scoring and every
  /// ~1024 heap pops of the merge loop; a tripped token returns
  /// Status::Cancelled / Status::DeadlineExceeded. Untripped runs are
  /// bit-identical with and without a token.
  StatusOr<UdsSummary> Summarize(
      const graph::Graph& g, double utility_threshold,
      const CancellationToken* cancel = nullptr) const;

 private:
  UdsOptions options_;
};

/// Degree distribution of the original graph as estimated from a UDS
/// summary under the standard expected reconstruction: every member of
/// supernode S is assumed adjacent to all members of S's summary-graph
/// neighbors, so est_deg(u ∈ S) = Σ_{T ∈ N(S)} |T|. Supernode aggregation
/// makes this estimate coarse — the structural weakness the paper's
/// Figs. 5c-6 exploit.
Histogram UdsEstimatedDegreeDistribution(const UdsSummary& summary,
                                         int64_t cap = 0);

/// Shortest-path distance profile over *original vertex pairs* as implied
/// by the summary's expected reconstruction: a pair (u, v) with
/// u ∈ S, v ∈ T contributes at distance d(S, T) in the summary graph
/// (weight |S|·|T| per supernode pair), and intra-supernode pairs count at
/// distance 1 (members of a supernode are reconstructed as adjacent). This
/// is what makes UDS's distance distribution pile up at short distances as
/// supernodes grow — the deviation the paper's Fig. 7 shows at small p.
Histogram UdsDistanceProfile(const UdsSummary& summary);

}  // namespace edgeshed::baseline

#endif  // EDGESHED_BASELINE_UDS_H_
