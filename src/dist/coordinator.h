#ifndef EDGESHED_DIST_COORDINATOR_H_
#define EDGESHED_DIST_COORDINATOR_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/statusor.h"
#include "dist/partitioner.h"
#include "graph/graph.h"
#include "net/client.h"
#include "obs/metrics.h"
#include "obs/tracer.h"

namespace edgeshed::dist {

/// One worker endpoint of the shed fleet.
struct WorkerAddress {
  std::string host = "127.0.0.1";
  int port = 0;
};

/// Parses "host:port[,host:port...]" (the CLI's --workers flag). Hosts may
/// not be empty; ports must be in (0, 65536). InvalidArgument otherwise.
StatusOr<std::vector<WorkerAddress>> ParseWorkerList(const std::string& csv);

struct CoordinatorOptions {
  /// Fleet endpoints; shard i is assigned workers[i % workers.size()]. Empty
  /// means no fleet: every shard is shed locally in-process (useful as a
  /// baseline and for tests).
  std::vector<WorkerAddress> workers;
  /// Streaming edge partitioner configuration (kind, K, λ, seed).
  EdgePartitionOptions partition;
  /// Shedding method (core::MakeShedderByName name) and global ratio/seed —
  /// identical semantics to a single-node run: the global kept-edge target is
  /// core::TargetEdgeCount(g, p), apportioned across shards.
  std::string method = "crr";
  double p = 0.5;
  uint64_t seed = 42;
  /// Shared directory the coordinator and every worker can reach: shard
  /// snapshots are written as `<shard_dir>/<job_tag>.shard<i>.esg` and
  /// workers write kept subgraphs back as `...shard<i>.kept.esg`. Workers
  /// must be started with the matching --shard_dir. Required.
  std::string shard_dir;
  /// Namespaces this run's files inside shard_dir so concurrent coordinators
  /// sharing one fleet don't collide. A safe dataset-name component
  /// (service::IsSafeDatasetName).
  std::string job_tag = "fleet";
  /// Per-shard server-side deadline (ShedRequest::deadline_ms); 0 = none.
  uint64_t deadline_ms = 0;
  /// Client-side GetStatus polling cadence while a remote shard job runs.
  std::chrono::milliseconds poll_interval{50};
  /// Per-RPC client tuning (timeouts, retry/backoff). host/port are
  /// overridden per worker.
  net::RpcClientOptions client;
  /// When a remote shard fails (worker down, deadline, corrupt snapshot),
  /// shed that shard locally instead of failing the whole run. The merged
  /// result is then degraded only in wall-clock, never in content.
  bool local_fallback = true;
  /// Threads for local shedding (fallback path and empty-fleet runs) and for
  /// the stateless partitioners; 0 keeps library defaults.
  int threads = 0;
  /// Optional cooperative cancel: tripping it cancels in-flight remote jobs
  /// and aborts the run with Cancelled/DeadlineExceeded.
  const CancellationToken* cancel = nullptr;
};

/// Per-shard outcome, for reporting and tests.
struct ShardOutcome {
  int shard = 0;
  /// "host:port" for remote execution, "local" for in-process (empty fleet,
  /// trivial shards, and fallback).
  std::string worker;
  uint64_t shard_edges = 0;
  /// This shard's slice of the global kept-edge budget.
  uint64_t target_edges = 0;
  uint64_t kept_edges = 0;
  /// The shard ran remotely and its kept snapshot merged cleanly.
  bool remote_ok = false;
  /// A remote attempt failed and the local fallback produced the result.
  bool fell_back = false;
  /// The remote failure that triggered the fallback (empty otherwise).
  std::string remote_error;
  double seconds = 0.0;
};

/// Result of a coordinated run. `kept_edges` are parent-graph EdgeIds in
/// canonical (ascending) order, duplicate-free by the single-ownership rule.
struct DistShedResult {
  std::vector<graph::EdgeId> kept_edges;
  /// The global budget round(p * |E|); kept_edges.size() == target whenever
  /// every shard delivered its slice.
  uint64_t target_edges = 0;
  PartitionStats partition_stats;
  std::vector<ShardOutcome> shards;
  double partition_seconds = 0.0;
  double snapshot_seconds = 0.0;
  double shed_seconds = 0.0;
  double merge_seconds = 0.0;

  /// G' = (V, E') over the parent's full vertex set.
  graph::Graph BuildReducedGraph(const graph::Graph& parent) const {
    return graph::SubgraphFromEdgeIds(parent, kept_edges);
  }
};

/// Fan-out coordinator for the sharded shed fleet (DESIGN.md §11).
///
/// Run() executes four phases, each under a `dist.*` span:
///  1. **partition** — one streaming pass assigns every edge to a shard
///     (PartitionEdges), then shards materialize in local id space
///     (BuildShards) and the global budget is apportioned across them
///     proportionally to shard size (core::ApportionEdgeBudget).
///  2. **snapshot** — non-trivial shards are written to
///     `<shard_dir>/<tag>.shard<i>.esg` so workers can load them by name
///     through their shard-dir fallback loader.
///  3. **shed** — one thread per shard. Remote shards open a persistent
///     RpcClient::Channel to their worker, submit (wait=false, with an
///     output snapshot name), poll GetStatus at `poll_interval` (cancelling
///     the remote job if our token trips), Wait for the summary, and read
///     the kept snapshot back. Trivial shards (keep-all / drop-all) and
///     empty-fleet runs never touch the network. Any remote failure degrades
///     to a local shed of that shard when `local_fallback` is on
///     (`dist.fallback_local`), else fails the run.
///  4. **merge** — per-shard kept edges map back to parent EdgeIds
///     (boundary-safe: each edge is owned by exactly one shard), the union
///     is sorted, verified duplicate-free, and the global budget is enforced
///     exactly: an over-delivering merge is trimmed deterministically
///     (largest EdgeIds first) and under-delivery is reported in the
///     outcome, never padded.
///
/// Metrics (null registry = off): counters `dist.runs`,
/// `dist.shards_completed`, `dist.shards_failed`, `dist.fallback_local`,
/// `dist.budget_trimmed_edges`; latency `dist.shard_seconds`,
/// `dist.run_seconds`.
class ShedCoordinator {
 public:
  explicit ShedCoordinator(CoordinatorOptions options,
                           obs::MetricsRegistry* metrics = nullptr,
                           obs::Tracer* tracer = nullptr);

  /// Validates options and runs the four phases against `g`. The graph only
  /// needs to live for the duration of the call.
  StatusOr<DistShedResult> Run(const graph::Graph& g);

 private:
  struct ShardTask;  // defined in coordinator.cc

  Status ValidateOptions() const;
  /// Executes one shard end to end (remote with fallback, or local);
  /// called from per-shard threads.
  void RunShard(ShardTask& task);
  /// Remote execution of one shard via a Channel; returns the kept edges in
  /// *parent* ids or the first error.
  StatusOr<std::vector<graph::EdgeId>> RunShardRemote(ShardTask& task);
  /// In-process shed of one shard; returns kept edges in parent ids.
  StatusOr<std::vector<graph::EdgeId>> RunShardLocal(ShardTask& task);

  const CoordinatorOptions options_;
  obs::MetricsRegistry* const metrics_;  // may be null
  obs::Tracer* const tracer_;            // may be null

  struct Instruments {
    obs::Counter* runs = nullptr;
    obs::Counter* shards_completed = nullptr;
    obs::Counter* shards_failed = nullptr;
    obs::Counter* fallback_local = nullptr;
    obs::Counter* budget_trimmed_edges = nullptr;
    obs::LatencySeries* shard_seconds = nullptr;
    obs::LatencySeries* run_seconds = nullptr;
  };
  Instruments instruments_;
};

}  // namespace edgeshed::dist

#endif  // EDGESHED_DIST_COORDINATOR_H_
