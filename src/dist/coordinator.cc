#include "dist/coordinator.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/shedder_factory.h"
#include "core/shedding.h"
#include "dist/shard.h"
#include "graph/binary_io.h"
#include "net/wire.h"
#include "service/dataset_registry.h"
#include "service/job_scheduler.h"

namespace edgeshed::dist {

namespace {

bool IsTerminalJobState(uint8_t state) {
  return state >= static_cast<uint8_t>(service::JobState::kDone);
}

std::string WorkerLabel(const WorkerAddress& worker) {
  return StrFormat("%s:%d", worker.host.c_str(), worker.port);
}

}  // namespace

StatusOr<std::vector<WorkerAddress>> ParseWorkerList(const std::string& csv) {
  std::vector<WorkerAddress> workers;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    std::string entry = csv.substr(start, comma - start);
    start = comma + 1;
    if (entry.empty()) {
      if (csv.empty() && workers.empty()) break;  // "" = empty list
      return Status::InvalidArgument(
          "empty worker entry in --workers (expected host:port,host:port)");
    }
    size_t colon = entry.rfind(':');
    if (colon == std::string::npos || colon == 0 ||
        colon + 1 == entry.size()) {
      return Status::InvalidArgument(
          StrFormat("worker '%s' is not host:port", entry.c_str()));
    }
    WorkerAddress worker;
    worker.host = entry.substr(0, colon);
    const std::string port_str = entry.substr(colon + 1);
    int port = 0;
    for (char c : port_str) {
      if (c < '0' || c > '9') port = -1;
      if (port >= 0) port = port * 10 + (c - '0');
      if (port > 65535) port = -1;
      if (port < 0) break;
    }
    if (port <= 0) {
      return Status::InvalidArgument(
          StrFormat("worker '%s' has an invalid port", entry.c_str()));
    }
    worker.port = port;
    workers.push_back(std::move(worker));
  }
  return workers;
}

/// Everything one shard's thread needs, plus its slots of the shared result
/// (each thread writes only its own task, so no lock is required).
struct ShedCoordinator::ShardTask {
  int index = 0;
  const Shard* shard = nullptr;
  uint64_t target = 0;
  /// Preservation ratio submitted for this shard. target / shard edges in
  /// general; for a single-shard run it is the caller's exact p, so a K=1
  /// fleet is bit-identical to a single-node shed even when target/m rounds
  /// to a different double than p.
  double ratio = 0.0;
  const WorkerAddress* worker = nullptr;  // null = local execution
  std::string dataset;                    // shard snapshot name (no .esg)
  std::string output;                     // kept snapshot name (no .esg)
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;

  ShardOutcome outcome;
  std::vector<graph::EdgeId> kept_global;
  Status status;
};

ShedCoordinator::ShedCoordinator(CoordinatorOptions options,
                                 obs::MetricsRegistry* metrics,
                                 obs::Tracer* tracer)
    : options_(std::move(options)), metrics_(metrics), tracer_(tracer) {
  if (metrics_ != nullptr) {
    instruments_.runs = metrics_->GetCounter("dist.runs");
    instruments_.shards_completed =
        metrics_->GetCounter("dist.shards_completed");
    instruments_.shards_failed = metrics_->GetCounter("dist.shards_failed");
    instruments_.fallback_local = metrics_->GetCounter("dist.fallback_local");
    instruments_.budget_trimmed_edges =
        metrics_->GetCounter("dist.budget_trimmed_edges");
    instruments_.shard_seconds = metrics_->GetLatency("dist.shard_seconds");
    instruments_.run_seconds = metrics_->GetLatency("dist.run_seconds");
  }
}

Status ShedCoordinator::ValidateOptions() const {
  EDGESHED_RETURN_IF_ERROR(core::ValidatePreservationRatio(options_.p));
  // Fail on an unknown method up front, not per shard mid-flight.
  EDGESHED_RETURN_IF_ERROR(
      core::MakeShedderByName(options_.method, options_.seed).status());
  if (options_.shard_dir.empty()) {
    return Status::InvalidArgument("CoordinatorOptions::shard_dir is required");
  }
  if (!service::IsSafeDatasetName(options_.job_tag)) {
    return Status::InvalidArgument(
        StrFormat("job_tag '%s' is not a safe name component",
                  options_.job_tag.c_str()));
  }
  if (options_.poll_interval.count() <= 0) {
    return Status::InvalidArgument("poll_interval must be positive");
  }
  return Status::OK();
}

StatusOr<std::vector<graph::EdgeId>> ShedCoordinator::RunShardRemote(
    ShardTask& task) {
  net::RpcClientOptions client_options = options_.client;
  client_options.host = task.worker->host;
  client_options.port = task.worker->port;
  net::RpcClient client(client_options, metrics_);
  net::RpcClient::Channel channel(&client);

  net::ShedRequest request;
  request.dataset = task.dataset;
  request.method = options_.method;
  request.p = task.ratio;
  request.seed = options_.seed;
  request.deadline_ms = options_.deadline_ms;
  request.wait = false;
  request.output = task.output;

  auto submitted = channel.Shed(request);
  if (!submitted.ok()) return submitted.status();
  const uint64_t job_id = submitted->job_id;

  if (!submitted->has_result) {
    for (;;) {
      if (CancellationRequested(options_.cancel)) {
        // Best effort: stop the remote job before reporting our own abort.
        channel.Cancel(job_id);
        return options_.cancel->ToStatus();
      }
      auto status = channel.GetJobStatus(job_id);
      if (!status.ok()) return status.status();
      if (IsTerminalJobState(status->state)) break;
      std::this_thread::sleep_for(options_.poll_interval);
    }
    auto summary = channel.Wait(job_id);
    if (!summary.ok()) return summary.status();
  }

  const std::string kept_path =
      options_.shard_dir + "/" + task.output + ".esg";
  // Kept subgraphs are consumed once for the merge: map them rather than
  // copying (LoadGraph sniffs the version; workers write v3).
  auto kept = graph::LoadGraph(kept_path);
  if (!kept.ok()) return kept.status();
  return MapKeptSubgraphToGlobal(*task.shard, kept->graph);
}

StatusOr<std::vector<graph::EdgeId>> ShedCoordinator::RunShardLocal(
    ShardTask& task) {
  EDGESHED_ASSIGN_OR_RETURN(
      auto shedder, core::MakeShedderByName(options_.method, options_.seed));
  core::ShedOptions shed_options;
  shed_options.p = task.ratio;
  shed_options.cancel = options_.cancel;
  shed_options.threads = options_.threads;
  EDGESHED_ASSIGN_OR_RETURN(auto result,
                            shedder->Shed(task.shard->graph, shed_options));
  return MapLocalEdgesToGlobal(*task.shard, result.kept_edges);
}

void ShedCoordinator::RunShard(ShardTask& task) {
  Stopwatch watch;
  obs::Span span = obs::Tracer::StartSpanInTrace(
      tracer_, StrFormat("dist.shard%d", task.index), task.trace_id,
      task.parent_span_id);
  span.Annotate("edges", StrFormat("%llu", (unsigned long long)
                                               task.outcome.shard_edges));
  span.Annotate("target", StrFormat("%llu", (unsigned long long)task.target));

  StatusOr<std::vector<graph::EdgeId>> kept =
      std::vector<graph::EdgeId>();  // drop-all default
  const uint64_t shard_edges = task.shard->graph.NumEdges();
  if (task.target >= shard_edges) {
    // Keep-all: no shedding needed, never leaves the coordinator.
    kept = task.shard->global_edge_ids;
    task.outcome.worker = "local";
  } else if (task.target == 0) {
    task.outcome.worker = "local";
  } else if (task.worker != nullptr) {
    task.outcome.worker = WorkerLabel(*task.worker);
    kept = RunShardRemote(task);
    if (kept.ok()) {
      task.outcome.remote_ok = true;
    } else if (!CancellationRequested(options_.cancel) &&
               options_.local_fallback) {
      task.outcome.remote_error = kept.status().ToString();
      task.outcome.fell_back = true;
      task.outcome.worker = "local";
      span.Annotate("fallback", task.outcome.remote_error);
      if (instruments_.fallback_local != nullptr) {
        instruments_.fallback_local->Increment();
      }
      kept = RunShardLocal(task);
    }
  } else {
    task.outcome.worker = "local";
    kept = RunShardLocal(task);
  }

  task.outcome.seconds = watch.ElapsedSeconds();
  if (kept.ok()) {
    task.kept_global = *std::move(kept);
    task.outcome.kept_edges = task.kept_global.size();
    if (instruments_.shards_completed != nullptr) {
      instruments_.shards_completed->Increment();
    }
    if (instruments_.shard_seconds != nullptr) {
      instruments_.shard_seconds->Record(task.outcome.seconds);
    }
  } else {
    task.status = kept.status();
    span.Annotate("error", task.status.ToString());
    if (instruments_.shards_failed != nullptr) {
      instruments_.shards_failed->Increment();
    }
  }
}

StatusOr<DistShedResult> ShedCoordinator::Run(const graph::Graph& g) {
  EDGESHED_RETURN_IF_ERROR(ValidateOptions());
  if (instruments_.runs != nullptr) instruments_.runs->Increment();
  Stopwatch total_watch;
  obs::Span run_span = obs::Tracer::StartSpan(tracer_, "dist.run");

  DistShedResult result;
  result.target_edges = core::TargetEdgeCount(g, options_.p);

  // Phase 1: partition + shard materialization + budget apportionment.
  Stopwatch phase_watch;
  EdgePartitionOptions partition_options = options_.partition;
  if (partition_options.threads == 0) {
    partition_options.threads = options_.threads;
  }
  std::vector<Shard> shards;
  std::vector<uint64_t> targets;
  {
    obs::Span span = obs::Tracer::StartSpan(tracer_, "dist.partition");
    EDGESHED_ASSIGN_OR_RETURN(auto partition,
                              PartitionEdges(g, partition_options));
    result.partition_stats = ComputePartitionStats(g, partition);
    EDGESHED_ASSIGN_OR_RETURN(shards, BuildShards(g, partition));
    targets = core::ApportionEdgeBudget(result.target_edges,
                                        result.partition_stats.shard_edges);
    span.Annotate("shards", StrFormat("%d", partition.num_shards));
    span.Annotate("replication",
                  StrFormat("%.4f", result.partition_stats.replication_factor));
    span.Annotate("balance",
                  StrFormat("%.4f", result.partition_stats.balance_factor));
  }
  result.partition_seconds = phase_watch.ElapsedSeconds();

  const int num_shards = static_cast<int>(shards.size());
  std::vector<ShardTask> tasks(num_shards);
  for (int i = 0; i < num_shards; ++i) {
    ShardTask& task = tasks[i];
    task.index = i;
    task.shard = &shards[i];
    task.target = targets[i];
    const uint64_t shard_edges = task.shard->graph.NumEdges();
    task.ratio = num_shards == 1 ? options_.p
                 : shard_edges == 0
                     ? 0.0
                     : static_cast<double>(task.target) /
                           static_cast<double>(shard_edges);
    if (!options_.workers.empty()) {
      task.worker = &options_.workers[i % options_.workers.size()];
    }
    task.dataset = StrFormat("%s.shard%d", options_.job_tag.c_str(), i);
    task.output = task.dataset + ".kept";
    task.trace_id = run_span.trace_id();
    task.parent_span_id = run_span.span_id();
    task.outcome.shard = i;
    task.outcome.shard_edges = task.shard->graph.NumEdges();
    task.outcome.target_edges = task.target;
  }

  // Phase 2: snapshot the shards that will actually travel to a worker.
  phase_watch.Restart();
  {
    obs::Span span = obs::Tracer::StartSpan(tracer_, "dist.snapshot");
    for (ShardTask& task : tasks) {
      const bool remote = task.worker != nullptr && task.target > 0 &&
                          task.target < task.shard->graph.NumEdges();
      if (!remote) continue;
      const std::string path =
          options_.shard_dir + "/" + task.dataset + ".esg";
      // v3 so the worker's shard-dir fallback can mmap the shard instead of
      // re-parsing and re-transposing an edge list on first Get.
      EDGESHED_RETURN_IF_ERROR(graph::SaveBinaryGraph(
          task.shard->graph, path, graph::SnapshotOptions{}));
    }
  }
  result.snapshot_seconds = phase_watch.ElapsedSeconds();

  // Phase 3: shed every shard concurrently (one thread each; K is small).
  phase_watch.Restart();
  {
    std::vector<std::thread> threads;
    threads.reserve(num_shards);
    for (ShardTask& task : tasks) {
      threads.emplace_back([this, &task] { RunShard(task); });
    }
    for (std::thread& t : threads) t.join();
  }
  result.shed_seconds = phase_watch.ElapsedSeconds();

  if (CancellationRequested(options_.cancel)) {
    return options_.cancel->ToStatus();
  }
  for (const ShardTask& task : tasks) {
    if (!task.status.ok()) {
      return Status(task.status.code(),
                    StrFormat("shard %d failed: %s", task.index,
                              task.status.message().c_str()));
    }
  }

  // Phase 4: boundary-aware merge under the exact global budget.
  phase_watch.Restart();
  {
    obs::Span span = obs::Tracer::StartSpan(tracer_, "dist.merge");
    size_t total_kept = 0;
    for (const ShardTask& task : tasks) total_kept += task.kept_global.size();
    result.kept_edges.reserve(total_kept);
    for (ShardTask& task : tasks) {
      result.kept_edges.insert(result.kept_edges.end(),
                               task.kept_global.begin(),
                               task.kept_global.end());
      task.kept_global.clear();
      task.kept_global.shrink_to_fit();
    }
    std::sort(result.kept_edges.begin(), result.kept_edges.end());
    if (std::adjacent_find(result.kept_edges.begin(),
                           result.kept_edges.end()) !=
        result.kept_edges.end()) {
      // Single ownership guarantees disjoint shard edge sets; a duplicate
      // means a worker snapshot leaked edges from another shard.
      return Status::Internal("merge produced a duplicate kept edge");
    }
    if (result.kept_edges.size() > result.target_edges) {
      const uint64_t trimmed =
          result.kept_edges.size() - result.target_edges;
      result.kept_edges.resize(result.target_edges);
      span.Annotate("trimmed", StrFormat("%llu", (unsigned long long)trimmed));
      if (instruments_.budget_trimmed_edges != nullptr) {
        instruments_.budget_trimmed_edges->Increment(trimmed);
      }
    }
    span.Annotate("kept", StrFormat("%llu", (unsigned long long)
                                                result.kept_edges.size()));
  }
  result.merge_seconds = phase_watch.ElapsedSeconds();

  result.shards.reserve(num_shards);
  for (ShardTask& task : tasks) {
    result.shards.push_back(std::move(task.outcome));
  }
  if (instruments_.run_seconds != nullptr) {
    instruments_.run_seconds->Record(total_watch.ElapsedSeconds());
  }
  return result;
}

}  // namespace edgeshed::dist
