#ifndef EDGESHED_DIST_PARTITIONER_H_
#define EDGESHED_DIST_PARTITIONER_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/statusor.h"
#include "graph/graph.h"

namespace edgeshed::dist {

/// Streaming edge partitioners for the sharded shed fleet (DESIGN.md §11).
///
/// All three assign every edge of the input graph to exactly one of K shards
/// in a single pass over the canonical edge list — that single-ownership rule
/// is what makes the post-shed merge deterministic and duplicate-free.
/// Vertices, by contrast, may be *replicated*: an endpoint incident to edges
/// in several shards appears in each of them, and the replication factor
/// (average copies per vertex) is the partitioner's quality metric alongside
/// load balance.
enum class PartitionerKind {
  /// shard(e) = mix64(u, v) mod K. Stateless, embarrassingly parallel,
  /// perfectly balanced in expectation, worst replication.
  kHash,
  /// Degree-Based Hashing (Xie et al., NIPS'14): hash the *lower-degree*
  /// endpoint, so low-degree vertices stay whole and only hubs are cut.
  kDbh,
  /// High-Degree Replicated First (Petroni et al., CIKM'15): greedy
  /// streaming scorer that favours shards already holding an endpoint
  /// (replication term, weighted toward cutting the higher-degree endpoint)
  /// and shards with room (balance term, weight `hdrf_lambda`). Sequential
  /// by construction; lowest replication of the three.
  kHdrf,
};

std::string_view PartitionerKindToString(PartitionerKind kind);
/// Parses "hash" / "dbh" / "hdrf"; InvalidArgument otherwise.
StatusOr<PartitionerKind> ParsePartitionerKind(std::string_view name);

struct EdgePartitionOptions {
  PartitionerKind kind = PartitionerKind::kHdrf;
  /// Number of shards K >= 1.
  int shards = 2;
  /// Worker threads for the stateless partitioners (hash, dbh); 0 keeps the
  /// library default. HDRF is inherently sequential and ignores this. The
  /// assignment is bit-identical across thread counts.
  int threads = 0;
  /// Balance weight λ of the HDRF objective; > 0. Larger values trade
  /// replication for tighter balance.
  double hdrf_lambda = 1.1;
  /// Salt for the hash family, so independent fleets can decorrelate their
  /// partitions. The default matches the library's other seeds.
  uint64_t seed = 42;
};

/// The assignment itself: shard_of_edge[e] in [0, num_shards) for every
/// EdgeId e of the partitioned graph.
struct EdgePartition {
  int num_shards = 1;
  std::vector<uint32_t> shard_of_edge;
};

/// Post-hoc quality measures of a partition.
struct PartitionStats {
  /// Edges assigned to each shard.
  std::vector<uint64_t> shard_edges;
  /// Distinct vertices appearing in each shard.
  std::vector<uint64_t> shard_vertices;
  /// max(shard_edges) / mean(shard_edges) — 1.0 is perfect balance.
  double balance_factor = 1.0;
  /// sum(shard_vertices) / |touched vertices| — 1.0 means no vertex is cut.
  double replication_factor = 1.0;
  /// Vertices present in more than one shard ("boundary"/cut vertices).
  uint64_t cut_vertices = 0;
};

/// Assigns each edge of `g` to one of `options.shards` shards in a single
/// streaming pass. InvalidArgument for shards < 1 or a non-positive
/// hdrf_lambda. Deterministic for fixed options (including across thread
/// counts). With shards == 1 every partitioner degenerates to the identity
/// assignment (all edges in shard 0).
StatusOr<EdgePartition> PartitionEdges(const graph::Graph& g,
                                       const EdgePartitionOptions& options);

/// Computes balance / replication statistics of `partition` over `g`.
/// `partition.shard_of_edge` must cover g.NumEdges() entries.
PartitionStats ComputePartitionStats(const graph::Graph& g,
                                     const EdgePartition& partition);

}  // namespace edgeshed::dist

#endif  // EDGESHED_DIST_PARTITIONER_H_
