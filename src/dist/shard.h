#ifndef EDGESHED_DIST_SHARD_H_
#define EDGESHED_DIST_SHARD_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "dist/partitioner.h"
#include "graph/graph.h"

namespace edgeshed::dist {

/// One shard of a partitioned graph, in shard-local id space.
///
/// Local node ids are assigned densely over the shard's touched vertices in
/// increasing *global* id order, so the local -> global map `to_global` is
/// strictly increasing. That monotonicity is the merge stage's load-bearing
/// invariant: canonical edge order is preserved by the mapping, so shard-
/// local EdgeIds line up 1:1 with `global_edge_ids` and a kept subgraph
/// round-tripped through a worker maps back to global edges without any
/// ambiguity.
struct Shard {
  /// The shard's edges re-labelled into [0, to_global.size()).
  graph::Graph graph;
  /// to_global[local_node] = global NodeId; strictly increasing.
  std::vector<graph::NodeId> to_global;
  /// global_edge_ids[local_edge] = EdgeId in the parent graph; strictly
  /// increasing (both edge lists are in canonical order).
  std::vector<graph::EdgeId> global_edge_ids;
};

/// Materializes every shard of `partition` over `parent`.
///
/// Single-shard special case: K == 1 returns the parent graph itself with
/// identity node/edge maps over the *full* vertex set (isolated vertices
/// included), so a one-shard fleet is bit-identical to single-node shedding.
StatusOr<std::vector<Shard>> BuildShards(const graph::Graph& parent,
                                         const EdgePartition& partition);

/// Maps a shard-local kept edge list (local EdgeIds into `shard.graph`) back
/// to parent-graph EdgeIds.
std::vector<graph::EdgeId> MapLocalEdgesToGlobal(
    const Shard& shard, const std::vector<graph::EdgeId>& local_edges);

/// Maps a kept *subgraph* of `shard.graph` (as reloaded from a worker's v2
/// binary snapshot, which preserves node count but re-canonicalizes edges)
/// back to parent EdgeIds. Fails with InvalidArgument if `kept` contains a
/// node or edge that is not part of the shard — a corrupt or mismatched
/// snapshot must not silently contribute bogus edges to the merge.
StatusOr<std::vector<graph::EdgeId>> MapKeptSubgraphToGlobal(
    const Shard& shard, const graph::Graph& kept);

}  // namespace edgeshed::dist

#endif  // EDGESHED_DIST_SHARD_H_
