#include "dist/partitioner.h"

#include <algorithm>
#include <cmath>

#include "common/parallel.h"
#include "common/random.h"
#include "common/strings.h"

namespace edgeshed::dist {

namespace {

/// Stateless edge hash: mixes the salt and both (canonical-order) endpoints
/// through SplitMix64. Pure function of (seed, u, v), so the hash family is
/// identical no matter how the edge stream is chunked across threads.
uint64_t EdgeHash(uint64_t seed, graph::NodeId u, graph::NodeId v) {
  uint64_t state = seed ^ (static_cast<uint64_t>(u) << 32 |
                           static_cast<uint64_t>(v));
  uint64_t h = SplitMix64Next(&state);
  return SplitMix64Next(&state) ^ h;
}

uint64_t NodeHash(uint64_t seed, graph::NodeId u) {
  uint64_t state = seed ^ (0x9e3779b97f4a7c15ULL + u);
  return SplitMix64Next(&state);
}

void PartitionHash(const graph::Graph& g, const EdgePartitionOptions& options,
                   EdgePartition* out) {
  const auto k = static_cast<uint64_t>(options.shards);
  ParallelForEach(
      0, g.NumEdges(),
      [&](uint64_t e) {
        const graph::Edge& edge = g.edge(e);
        out->shard_of_edge[e] =
            static_cast<uint32_t>(EdgeHash(options.seed, edge.u, edge.v) % k);
      },
      options.threads);
}

void PartitionDbh(const graph::Graph& g, const EdgePartitionOptions& options,
                  EdgePartition* out) {
  const auto k = static_cast<uint64_t>(options.shards);
  ParallelForEach(
      0, g.NumEdges(),
      [&](uint64_t e) {
        const graph::Edge& edge = g.edge(e);
        // Hash the lower-degree endpoint (ties -> lower id, which canonical
        // edges make the `u` side), keeping low-degree vertices unsplit.
        const graph::NodeId pick =
            g.Degree(edge.v) < g.Degree(edge.u) ? edge.v : edge.u;
        out->shard_of_edge[e] =
            static_cast<uint32_t>(NodeHash(options.seed, pick) % k);
      },
      options.threads);
}

void PartitionHdrf(const graph::Graph& g, const EdgePartitionOptions& options,
                   EdgePartition* out) {
  const size_t k = static_cast<size_t>(options.shards);
  const uint64_t num_nodes = g.NumNodes();
  // Partial (streamed) degrees, as in the original streaming setting: the
  // score at edge e sees only the degree mass streamed so far, which keeps
  // the partitioner one-pass even when the true degrees are unknown.
  std::vector<uint32_t> partial_degree(num_nodes, 0);
  // replicas[v * k + s] != 0 iff v already has a copy in shard s.
  std::vector<uint8_t> replicas(num_nodes * k, 0);
  std::vector<uint64_t> load(k, 0);
  uint64_t max_load = 0;
  uint64_t min_load = 0;
  const double lambda = options.hdrf_lambda;
  constexpr double kEpsilon = 1.0;

  for (uint64_t e = 0; e < g.NumEdges(); ++e) {
    const graph::Edge& edge = g.edge(e);
    ++partial_degree[edge.u];
    ++partial_degree[edge.v];
    const double du = partial_degree[edge.u];
    const double dv = partial_degree[edge.v];
    // Normalized degrees: theta_u + theta_v == 1. The replication term
    // rewards placing the edge with its *lower*-degree endpoint's copies
    // (1 + (1 - theta)), i.e. high-degree vertices are the ones replicated.
    const double theta_u = du / (du + dv);
    const double theta_v = 1.0 - theta_u;
    const uint8_t* ru = replicas.data() + static_cast<size_t>(edge.u) * k;
    const uint8_t* rv = replicas.data() + static_cast<size_t>(edge.v) * k;

    double best_score = -1.0;
    size_t best_shard = 0;
    const double load_spread =
        static_cast<double>(max_load - min_load) + kEpsilon;
    for (size_t s = 0; s < k; ++s) {
      double rep = 0.0;
      if (ru[s] != 0) rep += 1.0 + (1.0 - theta_u);
      if (rv[s] != 0) rep += 1.0 + (1.0 - theta_v);
      const double bal =
          lambda * static_cast<double>(max_load - load[s]) / load_spread;
      const double score = rep + bal;
      if (score > best_score) {  // strict: ties keep the lowest shard id
        best_score = score;
        best_shard = s;
      }
    }

    out->shard_of_edge[e] = static_cast<uint32_t>(best_shard);
    replicas[static_cast<size_t>(edge.u) * k + best_shard] = 1;
    replicas[static_cast<size_t>(edge.v) * k + best_shard] = 1;
    ++load[best_shard];
    max_load = std::max(max_load, load[best_shard]);
    min_load = *std::min_element(load.begin(), load.end());
  }
}

}  // namespace

std::string_view PartitionerKindToString(PartitionerKind kind) {
  switch (kind) {
    case PartitionerKind::kHash:
      return "hash";
    case PartitionerKind::kDbh:
      return "dbh";
    case PartitionerKind::kHdrf:
      return "hdrf";
  }
  return "unknown";
}

StatusOr<PartitionerKind> ParsePartitionerKind(std::string_view name) {
  if (name == "hash") return PartitionerKind::kHash;
  if (name == "dbh") return PartitionerKind::kDbh;
  if (name == "hdrf") return PartitionerKind::kHdrf;
  return Status::InvalidArgument(
      StrFormat("unknown partitioner '%.*s' (want hash|dbh|hdrf)",
                static_cast<int>(name.size()), name.data()));
}

StatusOr<EdgePartition> PartitionEdges(const graph::Graph& g,
                                       const EdgePartitionOptions& options) {
  if (options.shards < 1) {
    return Status::InvalidArgument(
        StrFormat("shard count must be >= 1, got %d", options.shards));
  }
  if (!(options.hdrf_lambda > 0.0)) {
    return Status::InvalidArgument(
        StrFormat("hdrf_lambda must be > 0, got %g", options.hdrf_lambda));
  }
  EdgePartition partition;
  partition.num_shards = options.shards;
  partition.shard_of_edge.assign(g.NumEdges(), 0);
  if (options.shards == 1 || g.NumEdges() == 0) return partition;

  switch (options.kind) {
    case PartitionerKind::kHash:
      PartitionHash(g, options, &partition);
      break;
    case PartitionerKind::kDbh:
      PartitionDbh(g, options, &partition);
      break;
    case PartitionerKind::kHdrf:
      PartitionHdrf(g, options, &partition);
      break;
  }
  return partition;
}

PartitionStats ComputePartitionStats(const graph::Graph& g,
                                     const EdgePartition& partition) {
  const size_t k = static_cast<size_t>(partition.num_shards);
  PartitionStats stats;
  stats.shard_edges.assign(k, 0);
  stats.shard_vertices.assign(k, 0);
  EDGESHED_CHECK(partition.shard_of_edge.size() == g.NumEdges());

  std::vector<uint8_t> seen(g.NumNodes() * k, 0);
  std::vector<uint32_t> copies(g.NumNodes(), 0);
  for (uint64_t e = 0; e < g.NumEdges(); ++e) {
    const uint32_t s = partition.shard_of_edge[e];
    EDGESHED_CHECK(s < k);
    ++stats.shard_edges[s];
    for (graph::NodeId node : {g.edge(e).u, g.edge(e).v}) {
      uint8_t& slot = seen[static_cast<size_t>(node) * k + s];
      if (slot == 0) {
        slot = 1;
        ++stats.shard_vertices[s];
        ++copies[node];
      }
    }
  }

  uint64_t touched = 0;
  uint64_t total_copies = 0;
  for (uint64_t v = 0; v < g.NumNodes(); ++v) {
    if (copies[v] == 0) continue;
    ++touched;
    total_copies += copies[v];
    if (copies[v] > 1) ++stats.cut_vertices;
  }
  stats.replication_factor =
      touched == 0 ? 1.0
                   : static_cast<double>(total_copies) /
                         static_cast<double>(touched);
  const uint64_t max_edges =
      *std::max_element(stats.shard_edges.begin(), stats.shard_edges.end());
  const double mean_edges =
      static_cast<double>(g.NumEdges()) / static_cast<double>(k);
  stats.balance_factor =
      g.NumEdges() == 0 ? 1.0 : static_cast<double>(max_edges) / mean_edges;
  return stats;
}

}  // namespace edgeshed::dist
