#include "dist/shard.h"

#include <algorithm>
#include <numeric>
#include <utility>

#include "common/strings.h"

namespace edgeshed::dist {

StatusOr<std::vector<Shard>> BuildShards(const graph::Graph& parent,
                                         const EdgePartition& partition) {
  if (partition.shard_of_edge.size() != parent.NumEdges()) {
    return Status::InvalidArgument(StrFormat(
        "partition covers %llu edges but the graph has %llu",
        static_cast<unsigned long long>(partition.shard_of_edge.size()),
        static_cast<unsigned long long>(parent.NumEdges())));
  }
  const size_t k = static_cast<size_t>(partition.num_shards);
  std::vector<Shard> shards(k);

  if (k == 1) {
    // Identity shard over the full vertex set (isolated vertices included),
    // so a one-shard fleet sheds exactly the graph a single node would.
    Shard& shard = shards[0];
    shard.graph = parent;
    shard.to_global.resize(parent.NumNodes());
    std::iota(shard.to_global.begin(), shard.to_global.end(),
              graph::NodeId{0});
    shard.global_edge_ids.resize(parent.NumEdges());
    std::iota(shard.global_edge_ids.begin(), shard.global_edge_ids.end(),
              graph::EdgeId{0});
    return shards;
  }

  for (uint64_t e = 0; e < parent.NumEdges(); ++e) {
    const uint32_t s = partition.shard_of_edge[e];
    if (s >= k) {
      return Status::InvalidArgument(StrFormat(
          "edge %llu assigned to shard %u of %zu",
          static_cast<unsigned long long>(e), s, k));
    }
    shards[s].global_edge_ids.push_back(e);
  }

  // Scratch global -> local map, reused (and spot-reset) per shard.
  std::vector<graph::NodeId> local_of(parent.NumNodes(), graph::kInvalidNode);
  for (Shard& shard : shards) {
    // Touched vertices in increasing global order: walk the shard's edges
    // (already in canonical order) and collect endpoints, then sort-unique.
    for (graph::EdgeId e : shard.global_edge_ids) {
      shard.to_global.push_back(parent.edge(e).u);
      shard.to_global.push_back(parent.edge(e).v);
    }
    std::sort(shard.to_global.begin(), shard.to_global.end());
    shard.to_global.erase(
        std::unique(shard.to_global.begin(), shard.to_global.end()),
        shard.to_global.end());
    for (size_t i = 0; i < shard.to_global.size(); ++i) {
      local_of[shard.to_global[i]] = static_cast<graph::NodeId>(i);
    }

    std::vector<graph::Edge> local_edges;
    local_edges.reserve(shard.global_edge_ids.size());
    for (graph::EdgeId e : shard.global_edge_ids) {
      const graph::Edge& edge = parent.edge(e);
      // The global -> local map is monotone, so u <= v is preserved and the
      // local list is already in canonical sorted order.
      local_edges.push_back({local_of[edge.u], local_of[edge.v]});
    }
    auto built = graph::Graph::FromEdges(
        static_cast<graph::NodeId>(shard.to_global.size()),
        std::move(local_edges));
    if (!built.ok()) return built.status();
    shard.graph = std::move(built).value();

    for (graph::NodeId global : shard.to_global) {
      local_of[global] = graph::kInvalidNode;
    }
  }
  return shards;
}

std::vector<graph::EdgeId> MapLocalEdgesToGlobal(
    const Shard& shard, const std::vector<graph::EdgeId>& local_edges) {
  std::vector<graph::EdgeId> global;
  global.reserve(local_edges.size());
  for (graph::EdgeId local : local_edges) {
    EDGESHED_CHECK(local < shard.global_edge_ids.size());
    global.push_back(shard.global_edge_ids[local]);
  }
  return global;
}

StatusOr<std::vector<graph::EdgeId>> MapKeptSubgraphToGlobal(
    const Shard& shard, const graph::Graph& kept) {
  if (kept.NumNodes() != shard.graph.NumNodes()) {
    return Status::InvalidArgument(StrFormat(
        "kept subgraph has %llu nodes, shard has %llu",
        static_cast<unsigned long long>(kept.NumNodes()),
        static_cast<unsigned long long>(shard.graph.NumNodes())));
  }
  std::vector<graph::EdgeId> global;
  global.reserve(kept.NumEdges());
  for (const graph::Edge& edge : kept.edges()) {
    const graph::EdgeId local = shard.graph.FindEdge(edge.u, edge.v);
    if (local == graph::kInvalidEdge) {
      return Status::InvalidArgument(StrFormat(
          "kept subgraph contains edge {%u,%u} absent from its shard",
          edge.u, edge.v));
    }
    global.push_back(shard.global_edge_ids[local]);
  }
  return global;
}

}  // namespace edgeshed::dist
