#ifndef EDGESHED_NET_WIRE_H_
#define EDGESHED_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/statusor.h"

namespace edgeshed::net {

/// Binary wire protocol for remote shedding jobs (DESIGN.md §10).
///
/// Every message is one length-prefixed frame:
///
///   offset  size  field
///   0       4     magic "ESRP"
///   4       1     protocol version (kWireVersion)
///   5       1     message type (MessageType)
///   6       2     reserved, written as 0, ignored on read
///   8       4     payload length in bytes, little-endian
///   12      4     CRC-32 (IEEE) of the payload bytes, little-endian
///   16      ...   payload
///
/// All integers are little-endian fixed width; doubles travel as the
/// little-endian bytes of their IEEE-754 binary64 representation; strings are
/// a u32 byte length followed by raw bytes. Decoding is defensive end to end:
/// a malformed, truncated, or oversized frame produces a clean
/// InvalidArgument (or DataLoss for checksum mismatches), never a crash or an
/// allocation proportional to an attacker-chosen length.
///
/// Responses share their request's type value with the high bit set
/// (`ResponseTypeFor`). Every response payload begins with a status envelope
/// — wire error code + message, a lossless image of `edgeshed::Status` — and
/// carries its typed body only when the code is OK. `kErrorResponse` is the
/// reply to frames too broken to attribute to a request type.

inline constexpr char kWireMagic[4] = {'E', 'S', 'R', 'P'};
/// Current protocol version. v2 appends optional QoS tails (tenant/priority
/// on ShedRequest; applied degradation tier on ResultSummary and
/// GetStatusResponse). Tails are length-driven — a decoder reads them only
/// when bytes remain after the v1 fields — so v1 peers interoperate:
/// DecodeFrame accepts any version in [kWireMinVersion, kWireVersion].
/// v3 adds the ApplyMutations message pair (dynamic graphs, DESIGN.md §15);
/// no existing payload changed shape, so v1/v2 peers still interoperate on
/// every other message.
inline constexpr uint8_t kWireVersion = 3;
/// Oldest protocol version this build still decodes.
inline constexpr uint8_t kWireMinVersion = 1;
inline constexpr size_t kFrameHeaderBytes = 16;
/// Hard cap on one frame's payload; DecodeFrame rejects larger declared
/// lengths before buffering anything.
inline constexpr uint32_t kMaxPayloadBytes = 4u << 20;  // 4 MiB
/// Cap on one encoded string field (dataset names, error messages).
inline constexpr uint32_t kMaxStringBytes = 1u << 20;  // 1 MiB

enum class MessageType : uint8_t {
  kShedRequest = 1,
  kGetStatusRequest = 2,
  kWaitRequest = 3,
  kCancelRequest = 4,
  kListDatasetsRequest = 5,
  kPingRequest = 6,
  kApplyMutationsRequest = 7,
  kShedResponse = 0x81,
  kGetStatusResponse = 0x82,
  kWaitResponse = 0x83,
  kCancelResponse = 0x84,
  kListDatasetsResponse = 0x85,
  kPingResponse = 0x86,
  kApplyMutationsResponse = 0x87,
  /// Reply to a frame whose request type could not be determined.
  kErrorResponse = 0xFF,
};

std::string_view MessageTypeToString(MessageType type);
bool IsRequestType(MessageType type);
bool IsKnownMessageType(uint8_t type);
/// The response type paired with `request` (request | 0x80).
MessageType ResponseTypeFor(MessageType request);

// ---------------------------------------------------------------------------
// Status <-> wire error code

/// Wire error codes are the numeric values of `StatusCode` — the mapping is
/// the identity today, but callers go through these helpers so the enums can
/// diverge without a protocol break. Round-tripping any StatusCode through
/// WireCodeFromStatus/StatusCodeFromWireCode is lossless (tested).
uint8_t WireCodeFromStatus(StatusCode code);
StatusOr<StatusCode> StatusCodeFromWireCode(uint8_t wire_code);

// ---------------------------------------------------------------------------
// Frames

struct Frame {
  MessageType type = MessageType::kPingRequest;
  std::string payload;
};

/// Serializes one frame (header + payload). Payloads larger than
/// kMaxPayloadBytes are a programming error upstream; encode clamps nothing
/// and CHECKs instead of emitting an undecodable frame.
std::string EncodeFrame(MessageType type, std::string_view payload);

enum class DecodeEvent {
  /// `buffer` holds a valid prefix of a frame; read more bytes.
  kNeedMoreData,
  /// One complete frame decoded; `consumed` bytes were used.
  kFrame,
  /// The stream is unrecoverably malformed; close the connection.
  kError,
};

struct DecodeResult {
  DecodeEvent event = DecodeEvent::kNeedMoreData;
  /// Bytes of `buffer` consumed (only meaningful for kFrame).
  size_t consumed = 0;
  Frame frame;          // valid for kFrame
  Status error;         // valid for kError
};

/// Incremental frame decoder: give it the unconsumed front of a connection's
/// read buffer. Magic and version are checked as soon as enough bytes exist,
/// so garbage streams fail fast instead of waiting for a bogus length;
/// declared payload lengths above kMaxPayloadBytes fail before buffering;
/// CRC mismatches return DataLoss.
DecodeResult DecodeFrame(std::string_view buffer);

// ---------------------------------------------------------------------------
// Payload primitives (exposed for tests and the message codecs)

/// Append-only payload builder over a std::string.
class WireWriter {
 public:
  void PutU8(uint8_t value);
  void PutU16(uint16_t value);
  void PutU32(uint32_t value);
  void PutU64(uint64_t value);
  void PutDouble(double value);
  /// CHECKs size <= kMaxStringBytes.
  void PutString(std::string_view value);

  const std::string& bytes() const { return bytes_; }
  std::string Take() { return std::move(bytes_); }

 private:
  std::string bytes_;
};

/// Bounds-checked payload reader. Any over-read trips a sticky failure bit;
/// callers check `ok()` (or use Finish(), which also rejects trailing
/// bytes) once at the end instead of after every field.
class WireReader {
 public:
  explicit WireReader(std::string_view bytes) : bytes_(bytes) {}

  uint8_t GetU8();
  uint16_t GetU16();
  uint32_t GetU32();
  uint64_t GetU64();
  double GetDouble();
  /// Fails (and returns empty) on lengths beyond the remaining bytes or
  /// kMaxStringBytes.
  std::string GetString();

  bool ok() const { return ok_; }
  size_t remaining() const { return bytes_.size() - pos_; }

  /// OK iff every read succeeded and the payload is fully consumed.
  Status Finish(std::string_view what) const;

 private:
  const unsigned char* Take(size_t n);

  std::string_view bytes_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// ---------------------------------------------------------------------------
// Messages

/// Submit a shedding job; with `wait` set the response carries the finished
/// result (one round trip), otherwise just the job id for later Wait/Status.
struct ShedRequest {
  std::string dataset;
  std::string method = "crr";
  double p = 0.5;
  uint64_t seed = 42;
  uint64_t deadline_ms = 0;
  bool wait = true;
  /// Optional output name: when non-empty, the worker writes the kept
  /// subgraph as a v2 binary snapshot named `<output>.esg` in its configured
  /// output directory (RpcServerOptions::output_dir) once the job finishes.
  /// A bare name, not a path — servers reject separators and dot-prefixes,
  /// and servers without an output directory reject the request outright.
  /// This is how the shed-fleet coordinator gets per-shard kept subgraphs
  /// back through the shared filesystem (DESIGN.md §11).
  std::string output;
  /// v2 optional tail. Tenant name for fair-share scheduling ("" = the
  /// default tenant, which preserves the single-FIFO semantics) and the
  /// priority lane flag (nonzero = dispatch ahead of normal-lane work).
  std::string tenant;
  uint8_t priority = 0;
};

/// How (if at all) the serving layer degraded a request under load. The
/// applied tier always travels back to the caller — degradation is recorded,
/// never silent (DESIGN.md §13).
enum class DegradeKind : uint8_t {
  kNone = 0,
  /// Method stepped down the core::ShedderCostLadder (e.g. crr -> bm2).
  kCheaperTier = 1,
  /// Served an already-cached result for the same dataset/method/seed at a
  /// coarser preservation ratio p' <= requested p.
  kCachedCoarserP = 2,
};

/// Result of a finished job, mirroring core::SheddingResult minus the kept
/// edge list itself (which is graph-sized; remote callers get the counts and
/// stats, and fetch reduced graphs out of band if they need the edges).
struct ResultSummary {
  uint64_t job_id = 0;
  uint64_t kept_edges = 0;
  double total_delta = 0.0;
  double average_delta = 0.0;
  double reduction_seconds = 0.0;
  bool deduplicated = false;
  std::vector<std::pair<std::string, double>> stats;
  /// v2 optional tail: the method/p actually answered with and why they
  /// differ from the request (kNone when served exactly as asked).
  std::string applied_method;
  double applied_p = 0.0;
  uint8_t degrade_kind = 0;  // DegradeKind numeric value
};

struct ShedResponse {
  uint64_t job_id = 0;
  bool has_result = false;
  ResultSummary result;  // valid iff has_result
};

struct JobIdRequest {  // GetStatus / Wait / Cancel
  uint64_t job_id = 0;
};

struct GetStatusResponse {
  uint8_t state = 0;  // service::JobState numeric value
  uint8_t code = 0;   // wire error code of the job's status
  std::string message;
  bool deduplicated = false;
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
  /// v2 optional tail, mirroring ResultSummary's degradation record so
  /// wait=false submitters still learn the applied tier.
  std::string applied_method;
  double applied_p = 0.0;
  uint8_t degrade_kind = 0;  // DegradeKind numeric value
};

struct ListDatasetsResponse {
  std::vector<std::string> names;
};

struct PingMessage {
  uint64_t token = 0;
};

/// v3: apply one mutation batch to a dataset's dynamic graph (DESIGN.md
/// §15). Edges travel as (u, v) node-id pairs; the server canonicalizes and
/// validates (self-loops, duplicates, non-live deletes, already-live
/// inserts all reject the whole batch, naming the offending pair).
struct ApplyMutationsRequest {
  std::string dataset;
  std::vector<std::pair<uint32_t, uint32_t>> inserts;
  std::vector<std::pair<uint32_t, uint32_t>> deletes;
};

/// Success body of kApplyMutationsResponse: the installed version plus a
/// snapshot of the overlay so callers can watch compaction behave.
struct ApplyMutationsResponse {
  uint64_t version = 0;
  uint64_t live_edges = 0;
  uint64_t overlay_inserted = 0;
  uint64_t overlay_deleted = 0;
  uint8_t compacting = 0;  // background compaction in flight right now
};

std::string EncodeShedRequest(const ShedRequest& request);
Status DecodeShedRequest(std::string_view payload, ShedRequest* out);

std::string EncodeJobIdRequest(const JobIdRequest& request);
Status DecodeJobIdRequest(std::string_view payload, JobIdRequest* out);

std::string EncodePing(const PingMessage& message);
Status DecodePing(std::string_view payload, PingMessage* out);

std::string EncodeApplyMutationsRequest(const ApplyMutationsRequest& request);
Status DecodeApplyMutationsRequest(std::string_view payload,
                                   ApplyMutationsRequest* out);

std::string EncodeApplyMutationsResponseBody(
    const ApplyMutationsResponse& response);
Status DecodeApplyMutationsResponseBody(std::string_view body,
                                        ApplyMutationsResponse* out);

// Response bodies (no envelope; see EncodeResponsePayload).
std::string EncodeShedResponseBody(const ShedResponse& response);
Status DecodeShedResponseBody(std::string_view body, ShedResponse* out);

std::string EncodeResultSummaryBody(const ResultSummary& summary);
Status DecodeResultSummaryBody(std::string_view body, ResultSummary* out);

std::string EncodeGetStatusResponseBody(const GetStatusResponse& response);
Status DecodeGetStatusResponseBody(std::string_view body,
                                   GetStatusResponse* out);

std::string EncodeListDatasetsResponseBody(
    const ListDatasetsResponse& response);
Status DecodeListDatasetsResponseBody(std::string_view body,
                                      ListDatasetsResponse* out);

// ---------------------------------------------------------------------------
// Response envelope

/// Builds a response payload: status envelope + body. `body` must be empty
/// unless `status` is OK (error responses carry no body).
std::string EncodeResponsePayload(const Status& status,
                                  std::string_view body = {});

/// Splits a response payload into its envelope Status and body view (into
/// `payload`; valid while `payload` lives). A non-OK envelope yields that
/// Status reconstructed losslessly and an empty body.
Status DecodeResponsePayload(std::string_view payload,
                             std::string_view* body);

}  // namespace edgeshed::net

#endif  // EDGESHED_NET_WIRE_H_
