#include "net/client.h"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/random.h"
#include "common/strings.h"
#include "net/socket.h"

namespace edgeshed::net {

namespace {

/// Closes the fd on scope exit.
class FdGuard {
 public:
  explicit FdGuard(int fd) : fd_(fd) {}
  ~FdGuard() { CloseFd(fd_); }
  FdGuard(const FdGuard&) = delete;
  FdGuard& operator=(const FdGuard&) = delete;

 private:
  int fd_;
};

/// Typed response decoding shared by RpcClient and RpcClient::Channel: each
/// takes the Call() body result and produces the typed message.
StatusOr<uint64_t> ParsePingBody(StatusOr<std::string> body, uint64_t token) {
  if (!body.ok()) return body.status();
  PingMessage pong;
  EDGESHED_RETURN_IF_ERROR(DecodePing(*body, &pong));
  if (pong.token != token) {
    return Status::Internal(
        StrFormat("ping echo mismatch: sent %llu, got %llu",
                  static_cast<unsigned long long>(token),
                  static_cast<unsigned long long>(pong.token)));
  }
  return pong.token;
}

StatusOr<ShedResponse> ParseShedBody(StatusOr<std::string> body) {
  if (!body.ok()) return body.status();
  ShedResponse response;
  EDGESHED_RETURN_IF_ERROR(DecodeShedResponseBody(*body, &response));
  return response;
}

StatusOr<ResultSummary> ParseWaitBody(StatusOr<std::string> body) {
  if (!body.ok()) return body.status();
  ResultSummary summary;
  EDGESHED_RETURN_IF_ERROR(DecodeResultSummaryBody(*body, &summary));
  return summary;
}

StatusOr<GetStatusResponse> ParseGetStatusBody(StatusOr<std::string> body) {
  if (!body.ok()) return body.status();
  GetStatusResponse response;
  EDGESHED_RETURN_IF_ERROR(DecodeGetStatusResponseBody(*body, &response));
  return response;
}

Status ParseCancelBody(StatusOr<std::string> body) {
  if (!body.ok()) return body.status();
  if (!body->empty()) {
    return Status::InvalidArgument("Cancel response carries no body");
  }
  return Status::OK();
}

StatusOr<ApplyMutationsResponse> ParseApplyMutationsBody(
    StatusOr<std::string> body) {
  if (!body.ok()) return body.status();
  ApplyMutationsResponse response;
  EDGESHED_RETURN_IF_ERROR(DecodeApplyMutationsResponseBody(*body, &response));
  return response;
}

}  // namespace

RpcClient::RpcClient(RpcClientOptions options,
                     obs::MetricsRegistry* metrics)
    : options_(std::move(options)) {
  if (metrics != nullptr) {
    client_reconnects_ = metrics->GetCounter("net.client_reconnects");
  }
}

RpcClient::RpcClient(RpcClientOptions options, TestHooks hooks,
                     obs::MetricsRegistry* metrics)
    : options_(std::move(options)), hooks_(std::move(hooks)) {
  if (metrics != nullptr) {
    client_reconnects_ = metrics->GetCounter("net.client_reconnects");
  }
}

std::vector<std::chrono::milliseconds> RpcClient::BackoffSchedule(
    const RpcClientOptions& options) {
  std::vector<std::chrono::milliseconds> delays;
  if (options.max_attempts <= 1) return delays;
  delays.reserve(static_cast<size_t>(options.max_attempts - 1));
  Rng rng(options.jitter_seed);
  double base = static_cast<double>(options.backoff_initial.count());
  const double cap = static_cast<double>(options.backoff_max.count());
  const double jitter =
      std::clamp(options.jitter_fraction, 0.0, 1.0);
  for (int attempt = 0; attempt + 1 < options.max_attempts; ++attempt) {
    const double capped = std::min(base, cap);
    // Scale into [1 - jitter, 1] so the delay never exceeds the nominal
    // exponential value and never collapses to zero.
    const double scale = 1.0 - jitter * rng.UniformDouble();
    delays.emplace_back(static_cast<int64_t>(capped * scale));
    base *= options.backoff_multiplier;
  }
  return delays;
}

bool RpcClient::IsRetryable(const Status& status) {
  return status.code() == StatusCode::kIOError ||
         status.code() == StatusCode::kResourceExhausted;
}

StatusOr<Frame> RpcClient::RoundTripTcp(
    const Frame& request, std::chrono::milliseconds recv_timeout) {
  auto fd = ConnectTcp(options_.host, options_.port,
                       options_.connect_timeout);
  if (!fd.ok()) return fd.status();
  FdGuard guard(*fd);
  EDGESHED_RETURN_IF_ERROR(SetSendTimeout(*fd, options_.send_timeout));
  EDGESHED_RETURN_IF_ERROR(SetRecvTimeout(*fd, recv_timeout));
  EDGESHED_RETURN_IF_ERROR(
      SendAll(*fd, EncodeFrame(request.type, request.payload)));

  std::string buffer;
  char chunk[16 * 1024];
  for (;;) {
    DecodeResult decoded = DecodeFrame(buffer);
    if (decoded.event == DecodeEvent::kFrame) return decoded.frame;
    if (decoded.event == DecodeEvent::kError) return decoded.error;
    auto n = RecvSome(*fd, chunk, sizeof(chunk));
    if (!n.ok()) return n.status();
    if (*n == 0) {
      return Status::IOError(
          "connection closed before a complete response frame");
    }
    buffer.append(chunk, *n);
  }
}

RpcClient::CallLimits RpcClient::WaitLimits(uint64_t deadline_ms) const {
  CallLimits limits;
  if (deadline_ms == 0) return limits;  // no job deadline: option defaults
  // The server enforces the job deadline, so deadline_ms + slack bounds how
  // long a well-behaved Wait can block; the max() keeps an explicitly
  // generous recv_timeout authoritative for short-deadline jobs.
  const auto budget =
      std::max(options_.recv_timeout,
               std::chrono::milliseconds(static_cast<int64_t>(deadline_ms)) +
                   options_.wait_slack);
  limits.recv_timeout = budget;
  limits.overall = budget;
  return limits;
}

StatusOr<std::string> RpcClient::Call(MessageType request_type,
                                      const std::string& payload,
                                      CallLimits limits) {
  const std::chrono::milliseconds recv = limits.recv_timeout.count() > 0
                                             ? limits.recv_timeout
                                             : options_.recv_timeout;
  return CallVia(
      [this, recv](const Frame& request) {
        return RoundTripTcp(request, recv);
      },
      request_type, payload, limits);
}

StatusOr<std::string> RpcClient::CallVia(const TransportFn& transport,
                                         MessageType request_type,
                                         const std::string& payload,
                                         CallLimits limits) {
  const std::vector<std::chrono::milliseconds> delays =
      BackoffSchedule(options_);
  const int attempts = std::max(1, options_.max_attempts);
  const Frame request{request_type, payload};
  const MessageType expected = ResponseTypeFor(request_type);
  const auto start = std::chrono::steady_clock::now();
  // Backoff delays counted as if fully slept, so the budget binds even when
  // a test sleeper hook returns instantly.
  std::chrono::milliseconds virtual_elapsed{0};

  Status last = Status::Internal("rpc made no attempts");
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      const std::chrono::milliseconds delay =
          delays[static_cast<size_t>(attempt - 1)];
      if (limits.overall.count() > 0) {
        const auto real = std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
        const auto elapsed = std::max(real, virtual_elapsed);
        if (elapsed + delay >= limits.overall) {
          return Status::DeadlineExceeded(StrFormat(
              "rpc budget of %lld ms exhausted after %d attempt%s; last "
              "error: %s",
              static_cast<long long>(limits.overall.count()), attempt,
              attempt == 1 ? "" : "s", last.message().c_str()));
        }
      }
      virtual_elapsed += delay;
      if (hooks_.sleeper) {
        hooks_.sleeper(delay);
      } else {
        std::this_thread::sleep_for(delay);
      }
    }

    StatusOr<Frame> reply =
        hooks_.transport ? hooks_.transport(request) : transport(request);
    if (!reply.ok()) {
      last = reply.status();
      if (!IsRetryable(last)) return last;
      continue;
    }
    if (reply->type != expected &&
        reply->type != MessageType::kErrorResponse) {
      // A mismatched response type is a server/protocol bug, not a
      // transient: fail fast.
      return Status::Internal(StrFormat(
          "unexpected response type %u to %.*s",
          static_cast<unsigned>(reply->type),
          static_cast<int>(MessageTypeToString(request_type).size()),
          MessageTypeToString(request_type).data()));
    }
    std::string_view body;
    Status envelope = DecodeResponsePayload(reply->payload, &body);
    if (envelope.ok()) return std::string(body);
    last = std::move(envelope);
    if (!IsRetryable(last)) return last;
  }
  return last;
}

StatusOr<uint64_t> RpcClient::Ping(uint64_t token) {
  return ParsePingBody(Call(MessageType::kPingRequest,
                            EncodePing(PingMessage{token})),
                       token);
}

StatusOr<ShedResponse> RpcClient::Shed(const ShedRequest& request) {
  return ParseShedBody(Call(
      MessageType::kShedRequest, EncodeShedRequest(request),
      request.wait ? WaitLimits(request.deadline_ms) : CallLimits{}));
}

StatusOr<ResultSummary> RpcClient::Wait(uint64_t job_id,
                                        uint64_t deadline_ms) {
  return ParseWaitBody(Call(MessageType::kWaitRequest,
                            EncodeJobIdRequest({job_id}),
                            WaitLimits(deadline_ms)));
}

StatusOr<GetStatusResponse> RpcClient::GetJobStatus(uint64_t job_id) {
  return ParseGetStatusBody(
      Call(MessageType::kGetStatusRequest, EncodeJobIdRequest({job_id})));
}

Status RpcClient::Cancel(uint64_t job_id) {
  return ParseCancelBody(
      Call(MessageType::kCancelRequest, EncodeJobIdRequest({job_id})));
}

StatusOr<std::vector<std::string>> RpcClient::ListDatasets() {
  auto body = Call(MessageType::kListDatasetsRequest, std::string());
  if (!body.ok()) return body.status();
  ListDatasetsResponse response;
  EDGESHED_RETURN_IF_ERROR(DecodeListDatasetsResponseBody(*body, &response));
  return response.names;
}

StatusOr<ApplyMutationsResponse> RpcClient::ApplyMutations(
    const ApplyMutationsRequest& request) {
  return ParseApplyMutationsBody(Call(MessageType::kApplyMutationsRequest,
                                      EncodeApplyMutationsRequest(request)));
}

// ---------------------------------------------------------------------------
// Channel: one persistent connection for a logical job's RPC sequence.

void RpcClient::Channel::Close() {
  if (fd_ >= 0) {
    CloseFd(fd_);
    fd_ = -1;
  }
}

StatusOr<Frame> RpcClient::Channel::RoundTripPersistent(
    const Frame& request, std::chrono::milliseconds recv_timeout) {
  const RpcClientOptions& options = client_->options_;
  if (fd_ < 0) {
    auto fd = ConnectTcp(options.host, options.port, options.connect_timeout);
    if (!fd.ok()) return fd.status();
    fd_ = *fd;
    applied_recv_timeout_ = std::chrono::milliseconds{0};
    if (ever_connected_) {
      ++reconnects_;
      if (client_->client_reconnects_ != nullptr) {
        client_->client_reconnects_->Increment();
      }
    }
    ever_connected_ = true;
    if (Status set = SetSendTimeout(fd_, options.send_timeout); !set.ok()) {
      Close();
      return set;
    }
  }
  if (recv_timeout != applied_recv_timeout_) {
    if (Status set = SetRecvTimeout(fd_, recv_timeout); !set.ok()) {
      Close();
      return set;
    }
    applied_recv_timeout_ = recv_timeout;
  }

  if (Status sent =
          SendAll(fd_, EncodeFrame(request.type, request.payload));
      !sent.ok()) {
    // Drop the socket on any transport error: the stream position is
    // unknown, so reuse could pair this request with a stale response. The
    // retry loop re-dials.
    Close();
    return sent;
  }
  std::string buffer;
  char chunk[16 * 1024];
  for (;;) {
    DecodeResult decoded = DecodeFrame(buffer);
    if (decoded.event == DecodeEvent::kFrame) return decoded.frame;
    if (decoded.event == DecodeEvent::kError) {
      Close();
      return decoded.error;
    }
    auto n = RecvSome(fd_, chunk, sizeof(chunk));
    if (!n.ok()) {
      Close();
      return n.status();
    }
    if (*n == 0) {
      Close();
      return Status::IOError(
          "connection closed before a complete response frame");
    }
    buffer.append(chunk, *n);
  }
}

StatusOr<std::string> RpcClient::Channel::Call(MessageType request_type,
                                               const std::string& payload,
                                               CallLimits limits) {
  const std::chrono::milliseconds recv =
      limits.recv_timeout.count() > 0 ? limits.recv_timeout
                                      : client_->options_.recv_timeout;
  return client_->CallVia(
      [this, recv](const Frame& request) {
        return RoundTripPersistent(request, recv);
      },
      request_type, payload, limits);
}

StatusOr<uint64_t> RpcClient::Channel::Ping(uint64_t token) {
  return ParsePingBody(Call(MessageType::kPingRequest,
                            EncodePing(PingMessage{token})),
                       token);
}

StatusOr<ShedResponse> RpcClient::Channel::Shed(const ShedRequest& request) {
  return ParseShedBody(Call(
      MessageType::kShedRequest, EncodeShedRequest(request),
      request.wait ? client_->WaitLimits(request.deadline_ms)
                   : CallLimits{}));
}

StatusOr<ResultSummary> RpcClient::Channel::Wait(uint64_t job_id,
                                                 uint64_t deadline_ms) {
  return ParseWaitBody(Call(MessageType::kWaitRequest,
                            EncodeJobIdRequest({job_id}),
                            client_->WaitLimits(deadline_ms)));
}

StatusOr<GetStatusResponse> RpcClient::Channel::GetJobStatus(
    uint64_t job_id) {
  return ParseGetStatusBody(
      Call(MessageType::kGetStatusRequest, EncodeJobIdRequest({job_id})));
}

Status RpcClient::Channel::Cancel(uint64_t job_id) {
  return ParseCancelBody(
      Call(MessageType::kCancelRequest, EncodeJobIdRequest({job_id})));
}

StatusOr<ApplyMutationsResponse> RpcClient::Channel::ApplyMutations(
    const ApplyMutationsRequest& request) {
  return ParseApplyMutationsBody(Call(MessageType::kApplyMutationsRequest,
                                      EncodeApplyMutationsRequest(request)));
}

}  // namespace edgeshed::net
