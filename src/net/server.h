#ifndef EDGESHED_NET_SERVER_H_
#define EDGESHED_NET_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "net/wire.h"
#include "obs/metrics.h"
#include "obs/tracer.h"
#include "service/graph_store.h"
#include "service/job_scheduler.h"

namespace edgeshed::net {

struct RpcServerOptions {
  /// TCP port; 0 picks an ephemeral port (read back via port()).
  int port = 0;
  int backlog = 64;
  /// Bind loopback only by default; clear for remote clients.
  bool loopback_only = true;
  /// Concurrent-connection cap. Connections beyond it receive one
  /// ResourceExhausted error frame and are closed (admission control, not a
  /// silent accept-queue hang).
  size_t max_connections = 64;
  /// Requests concurrently being handled (dispatched or blocking in
  /// Wait). Frames arriving beyond the cap get an immediate
  /// ResourceExhausted response instead of queuing unboundedly.
  size_t max_inflight = 8;
  /// Threads executing RPC handlers. Wait/Shed-with-wait block one of these
  /// for the duration of the job, so size it with max_inflight in mind.
  int dispatch_threads = 4;
  /// Connections with no traffic and no in-flight requests for this long
  /// are closed. Zero disables.
  std::chrono::milliseconds idle_timeout{60000};
  /// How long Stop() waits for in-flight requests to finish and responses
  /// to flush before force-closing.
  std::chrono::milliseconds drain_timeout{5000};
  /// Directory for ShedRequest::output snapshots (the kept subgraph of a
  /// finished job, written as `<output>.esg`). Empty disables the feature:
  /// requests carrying an output name are rejected with InvalidArgument.
  /// Output names are validated as single path components
  /// (service::IsSafeDatasetName), never interpreted as paths.
  std::string output_dir;
  /// Load-adaptive degradation (DESIGN.md §13). When set, requests past
  /// `max_inflight` are *admitted* with a pressure hint (the scheduler may
  /// answer with a cheaper tier or a cached coarser-p result, recorded in
  /// the response) instead of instantly rejected; the hard rejection
  /// boundary moves to `max_pending`. The scheduler's own DegradePolicy
  /// must also be enabled for tiering to happen.
  bool degrade_enabled = false;
  /// Hard admission ceiling when degrading; 0 = 4 * max_inflight. Beyond
  /// it requests are rejected ResourceExhausted exactly as before.
  size_t max_pending = 0;
};

/// Binary RPC server in front of the shedding service (DESIGN.md §10).
///
/// One event-loop thread multiplexes every connection with poll(): it
/// accepts, reads, frames (net/wire.h), and writes, all non-blocking with
/// per-connection read/write buffers. Complete request frames are handed to
/// a small pool of dispatch threads that run the actual handlers against the
/// JobScheduler/GraphStore — Submit, Wait (which blocks for the job), Cancel,
/// GetStatus, ListDatasets — and queue the encoded response back to the
/// event loop through a pipe-based wakeup. Ping never leaves the loop
/// thread.
///
/// Overload behaves deterministically instead of degrading into hangs:
///  * more than `max_connections` concurrent sockets → the extra connection
///    gets a ResourceExhausted error frame and is closed;
///  * more than `max_inflight` requests being handled → the request is
///    answered ResourceExhausted immediately (`net.rejected_overload`);
///  * the JobScheduler's own queue bound still applies behind that, and its
///    ResourceExhausted travels back losslessly over the wire.
///
/// Malformed input never crashes the server: framing errors (bad magic,
/// bad version, oversized length, checksum mismatch) are counted
/// (`net.malformed_frames`), answered with one kErrorResponse frame, and the
/// connection is closed since stream sync is lost. Well-framed but
/// undecodable payloads get an InvalidArgument response envelope and the
/// connection lives on.
///
/// Stop() (also run by the destructor) stops accepting, lets in-flight
/// requests finish and responses flush for up to `drain_timeout`, then
/// closes everything and joins both thread groups. `store` and `scheduler`
/// must outlive the server.
///
/// Metrics (`metrics` may be null): counters `net.requests_total`,
/// `net.bytes_in`, `net.bytes_out`, `net.rejected_overload`,
/// `net.malformed_frames`, `net.accepted`, `net.closed`; gauges
/// `net.connections`, `net.inflight`; latency `net.rpc_seconds`. With a
/// tracer, each dispatched RPC runs under an `rpc.<Type>` span, so the
/// scheduler's job trace nests inside the RPC that submitted it.
class RpcServer {
 public:
  RpcServer(service::GraphStore* store, service::JobScheduler* scheduler,
            obs::MetricsRegistry* metrics = nullptr,
            RpcServerOptions options = {}, obs::Tracer* tracer = nullptr);
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Binds, listens, and spawns the event-loop and dispatch threads.
  /// IOError if the port is unavailable; FailedPrecondition if already
  /// started.
  Status Start();

  /// Graceful drain + shutdown. Idempotent.
  void Stop();

  /// Bound port after a successful Start (resolves port 0).
  int port() const { return port_; }

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    std::string inbuf;
    std::string outbuf;
    size_t out_off = 0;
    /// Requests from this connection currently in dispatch; a connection
    /// with in-flight work is exempt from the idle timeout.
    int inflight = 0;
    /// Close once outbuf drains (set after framing errors and during stop).
    bool closing = false;
    std::chrono::steady_clock::time_point last_activity;
  };

  struct Task {
    uint64_t conn_id = 0;
    Frame frame;
    /// Admission-layer load at enqueue time (inflight / max_inflight);
    /// forwarded to the scheduler as JobSpec::pressure for Shed requests.
    double pressure = 0.0;
  };

  struct Completion {
    uint64_t conn_id = 0;
    std::string bytes;  // encoded response frame
  };

  void EventLoop();
  void DispatchLoop();

  // --- event-loop-thread only ---
  void AcceptNew(std::chrono::steady_clock::time_point now);
  void ReadFromConnection(Connection& conn,
                          std::chrono::steady_clock::time_point now);
  void HandleDecodedFrame(Connection& conn, Frame frame);
  void FlushConnection(Connection& conn);
  void CloseConnection(uint64_t conn_id);
  void ApplyCompletions();
  void EnqueueResponse(Connection& conn, MessageType type,
                       std::string_view payload);
  void PublishConnGauges();

  // --- dispatch-thread only ---
  std::string HandleRequest(const Frame& frame, double pressure);
  std::string HandleShed(std::string_view payload, double pressure);
  std::string HandleWait(std::string_view payload);
  std::string HandleGetStatus(std::string_view payload);
  std::string HandleCancel(std::string_view payload);
  std::string HandleListDatasets(std::string_view payload);
  std::string HandleApplyMutations(std::string_view payload);
  /// Blocks on the scheduler and renders the finished job as a summary body.
  Status WaitForResult(uint64_t job_id, ResultSummary* summary);

  struct Instruments {
    obs::Counter* requests_total = nullptr;
    obs::Counter* bytes_in = nullptr;
    obs::Counter* bytes_out = nullptr;
    obs::Counter* rejected_overload = nullptr;
    obs::Counter* degraded_admitted = nullptr;
    obs::Counter* degraded_applied = nullptr;
    obs::Counter* malformed_frames = nullptr;
    obs::Counter* accepted = nullptr;
    obs::Counter* closed = nullptr;
    obs::Gauge* connections = nullptr;
    obs::Gauge* inflight = nullptr;
    obs::LatencySeries* rpc_seconds = nullptr;
  };

  service::GraphStore* const store_;
  service::JobScheduler* const scheduler_;
  obs::MetricsRegistry* const metrics_;  // may be null
  obs::Tracer* const tracer_;            // may be null
  Instruments instruments_;
  const RpcServerOptions options_;

  int listen_fd_ = -1;
  int wake_read_fd_ = -1;
  int wake_write_fd_ = -1;
  int port_ = 0;
  std::atomic<bool> stopping_{false};

  /// Event-loop-owned: connections, ids, and the in-flight counter. No lock
  /// — only EventLoop() touches them.
  std::unordered_map<uint64_t, std::unique_ptr<Connection>> connections_;
  uint64_t next_conn_id_ = 1;
  size_t inflight_ = 0;

  /// Dispatch handoff (guarded by queue_mu_).
  std::mutex queue_mu_;
  std::condition_variable task_available_;
  std::deque<Task> tasks_;
  std::deque<Completion> completions_;
  bool dispatch_shutdown_ = false;

  /// Serializes Stop() callers.
  std::mutex stop_mu_;
  std::thread loop_thread_;
  std::vector<std::thread> dispatch_threads_;
};

}  // namespace edgeshed::net

#endif  // EDGESHED_NET_SERVER_H_
