#ifndef EDGESHED_NET_SOCKET_H_
#define EDGESHED_NET_SOCKET_H_

#include <chrono>
#include <cstddef>
#include <string>
#include <string_view>

#include "common/statusor.h"

namespace edgeshed::net {

/// Thin Status-returning wrappers over the raw POSIX TCP calls, shared by
/// every server/client in the tree (the obs stats server and the net RPC
/// server/client) so `EINTR` retries, partial-write loops, and SIGPIPE
/// suppression are handled in exactly one place.
///
/// All functions are free of global state and safe to call from any thread.
/// File descriptors are plain ints; ownership stays with the caller (pair
/// every successful Listen/Connect/accept with CloseFd).

struct ListenOptions {
  /// Port to bind; 0 picks an ephemeral port (read it back with
  /// BoundTcpPort).
  int port = 0;
  /// Pending-connection backlog passed to listen().
  int backlog = 16;
  /// Bind 127.0.0.1 only (operator/loopback surfaces) vs INADDR_ANY.
  bool loopback_only = true;
};

/// Creates, binds, and listens a TCP socket. IOError on failure (port taken,
/// no sockets); the fd is ready for accept()/poll() on success.
StatusOr<int> ListenTcp(const ListenOptions& options);

/// The local port a bound socket ended up on (resolves port 0).
StatusOr<int> BoundTcpPort(int fd);

/// Blocking connect with a deadline: resolves `host` (numeric or DNS, IPv4),
/// connects non-blocking, waits up to `timeout`, then returns the socket in
/// blocking mode. IOError on refusal/timeout/resolution failure.
StatusOr<int> ConnectTcp(const std::string& host, int port,
                         std::chrono::milliseconds timeout);

/// accept() with EINTR retry. Returns the connection fd, or -1 when a
/// non-blocking listener has nothing pending (EAGAIN) — the "drained the
/// accept queue" signal for event loops. IOError for real accept failures.
StatusOr<int> AcceptConnection(int listen_fd);

/// Writes all of `data`, looping over partial writes and EINTR, with
/// SIGPIPE suppressed (MSG_NOSIGNAL where available). IOError when the peer
/// goes away mid-write.
Status SendAll(int fd, std::string_view data);

/// One send() attempt with EINTR retry, for non-blocking fds: returns the
/// bytes written (possibly 0 when the socket buffer is full — EAGAIN is not
/// an error here). IOError when the connection is gone.
StatusOr<size_t> SendSome(int fd, std::string_view data);

/// One recv() with EINTR retry. Returns the byte count, 0 on orderly EOF.
/// IOError on connection errors; a recv timeout (SO_RCVTIMEO expiring)
/// surfaces as DeadlineExceeded so callers can distinguish "slow peer" from
/// "dead peer".
StatusOr<size_t> RecvSome(int fd, char* buf, size_t len);

/// O_NONBLOCK toggle for event-loop fds.
Status SetNonBlocking(int fd, bool enable);

/// SO_RCVTIMEO / SO_SNDTIMEO for blocking-socket deadlines; zero disables.
Status SetRecvTimeout(int fd, std::chrono::milliseconds timeout);
Status SetSendTimeout(int fd, std::chrono::milliseconds timeout);

/// close() with EINTR handling; safe on -1 (no-op).
void CloseFd(int fd);

}  // namespace edgeshed::net

#endif  // EDGESHED_NET_SOCKET_H_
