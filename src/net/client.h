#ifndef EDGESHED_NET_CLIENT_H_
#define EDGESHED_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "net/wire.h"
#include "obs/metrics.h"

namespace edgeshed::net {

struct RpcClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  std::chrono::milliseconds connect_timeout{2000};
  std::chrono::milliseconds send_timeout{5000};
  /// Per-recv deadline for quick RPCs (Ping, GetStatus, Cancel, ...).
  /// Wait-class RPCs (Wait, Shed with `wait`) block server-side for the
  /// whole job, so their recv deadline is derived from the job's own
  /// deadline instead: max(recv_timeout, deadline_ms + wait_slack). A job
  /// with no deadline falls back to this value (the CLI maps --timeout_ms
  /// here).
  std::chrono::milliseconds recv_timeout{60000};
  /// Headroom added to a job's deadline_ms when deriving the Wait-class
  /// recv deadline and the overall retry budget, covering scheduler grace
  /// and network latency on top of the server-side deadline enforcement.
  std::chrono::milliseconds wait_slack{2000};
  /// Total tries per RPC (1 = no retries).
  int max_attempts = 4;
  /// Deterministic exponential backoff: attempt k (0-based) sleeps
  /// min(initial * multiplier^k, max), scaled into
  /// [1 - jitter_fraction, 1] by a PRNG seeded with jitter_seed — the
  /// schedule is a pure function of these options (see BackoffSchedule),
  /// which is what makes retry behaviour testable.
  std::chrono::milliseconds backoff_initial{100};
  std::chrono::milliseconds backoff_max{2000};
  double backoff_multiplier = 2.0;
  double jitter_fraction = 0.2;
  uint64_t jitter_seed = 0x5eed;
};

/// Per-call overrides of the option-level timeouts, derived from the request
/// itself (a Wait on a long-deadline job must outlive the generic
/// recv_timeout). Zero fields keep the option defaults / old behaviour.
struct RpcCallLimits {
  /// Socket recv deadline for each attempt (0 = options.recv_timeout).
  std::chrono::milliseconds recv_timeout{0};
  /// Wall-clock budget for the whole call including retries and backoff
  /// sleeps. Once spent, the retry loop stops with DeadlineExceeded instead
  /// of letting per-attempt timeouts stack (0 = unbounded, the historical
  /// behaviour).
  std::chrono::milliseconds overall{0};
};

/// Blocking client for the net RPC server (DESIGN.md §10).
///
/// Each RPC opens one connection, sends one request frame, reads one
/// response frame, and closes — no connection pooling, no pipelining, no
/// shared state, so the client is trivially safe to use from multiple
/// threads and a half-dead server never wedges it (connect/send/recv each
/// carry their own timeout).
///
/// Transient failures — transport IOErrors (refused, reset, timed out) and
/// ResourceExhausted responses (server admission control, scheduler queue
/// full) — are retried up to `max_attempts` with deterministic exponential
/// backoff + jitter. Retrying Shed is safe because shedding is
/// deterministic: an identical resubmission coalesces or hits the result
/// cache server-side. Every other status fails fast.
class RpcClient {
 public:
  /// Test seams: `transport` replaces the TCP round trip, `sleeper` replaces
  /// the backoff sleep. Null members keep the real implementation.
  struct TestHooks {
    std::function<StatusOr<Frame>(const Frame&)> transport;
    std::function<void(std::chrono::milliseconds)> sleeper;
  };

  /// `metrics` (may be null) receives the client-side counters
  /// (`net.client_reconnects`).
  explicit RpcClient(RpcClientOptions options,
                     obs::MetricsRegistry* metrics = nullptr);
  RpcClient(RpcClientOptions options, TestHooks hooks,
            obs::MetricsRegistry* metrics = nullptr);

  using CallLimits = RpcCallLimits;

  /// Persistent-connection session for the RPC sequence of one logical job
  /// (Shed, then a GetStatus polling loop, then Wait). The default client
  /// deliberately dials per RPC — that keeps it stateless and thread-safe —
  /// but a poll loop issuing dozens of tiny GetStatus frames pays a full
  /// TCP handshake for each; a Channel keeps one socket open across calls
  /// instead. Dialing is lazy; after a transport error the socket is
  /// dropped and transparently re-dialled on the retry (every re-dial after
  /// the first successful connect is counted in `net.client_reconnects`).
  /// Retry/backoff semantics are exactly RpcClient's. Not thread-safe: one
  /// Channel belongs to one polling thread.
  class Channel {
   public:
    explicit Channel(RpcClient* client) : client_(client) {}
    ~Channel() { Close(); }
    Channel(const Channel&) = delete;
    Channel& operator=(const Channel&) = delete;

    StatusOr<uint64_t> Ping(uint64_t token);
    StatusOr<ShedResponse> Shed(const ShedRequest& request);
    /// `deadline_ms` is the job's own deadline (0 = none): it widens this
    /// call's recv deadline and bounds its retry budget exactly like
    /// RpcClient::Wait.
    StatusOr<ResultSummary> Wait(uint64_t job_id, uint64_t deadline_ms = 0);
    StatusOr<GetStatusResponse> GetJobStatus(uint64_t job_id);
    Status Cancel(uint64_t job_id);
    StatusOr<ApplyMutationsResponse> ApplyMutations(
        const ApplyMutationsRequest& request);

    /// Closes the socket (if open); the next call re-dials.
    void Close();

    /// Re-dials performed after the first successful connect (this
    /// channel's share of `net.client_reconnects`).
    int reconnects() const { return reconnects_; }

   private:
    StatusOr<std::string> Call(MessageType request_type,
                               const std::string& payload,
                               CallLimits limits = {});
    /// Round-trips one frame on the persistent socket, dialing if needed.
    /// Any transport error closes the socket so the retry loop re-dials.
    /// `recv_timeout` is applied to the socket when it differs from the
    /// last applied value (Wait-class calls widen it per call).
    StatusOr<Frame> RoundTripPersistent(const Frame& request,
                                        std::chrono::milliseconds
                                            recv_timeout);

    RpcClient* const client_;
    int fd_ = -1;
    bool ever_connected_ = false;
    int reconnects_ = 0;
    /// Recv timeout currently set on fd_ (avoids a setsockopt per call in
    /// GetStatus polling loops).
    std::chrono::milliseconds applied_recv_timeout_{0};
  };

  /// Round-trip liveness probe; returns the echoed token.
  StatusOr<uint64_t> Ping(uint64_t token);

  /// Submits a shedding job; with request.wait the response carries the
  /// finished ResultSummary.
  StatusOr<ShedResponse> Shed(const ShedRequest& request);

  /// Blocks until job `job_id` finishes and returns its summary; the job's
  /// failure status (or NotFound) otherwise. Pass the job's own
  /// `deadline_ms` (0 = none) so the recv deadline is derived from it —
  /// with the default 0 a job running longer than `recv_timeout` fails the
  /// Wait client-side even though the server is still working on it.
  StatusOr<ResultSummary> Wait(uint64_t job_id, uint64_t deadline_ms = 0);

  StatusOr<GetStatusResponse> GetJobStatus(uint64_t job_id);

  Status Cancel(uint64_t job_id);

  StatusOr<std::vector<std::string>> ListDatasets();

  /// Applies one mutation batch to a dataset's dynamic overlay and returns
  /// the new version. Retrying after a transport error is safe in the
  /// at-most-once sense: if the first attempt actually landed, the retry is
  /// rejected by batch validation (its inserts are now live / its deletes
  /// gone) instead of double-applying.
  StatusOr<ApplyMutationsResponse> ApplyMutations(
      const ApplyMutationsRequest& request);

  /// The exact backoff delays Call() will use between attempts
  /// (max_attempts - 1 entries): pure function of `options`, exposed so
  /// tests pin the schedule.
  static std::vector<std::chrono::milliseconds> BackoffSchedule(
      const RpcClientOptions& options);

  /// True for the statuses Call() retries: IOError (transport) and
  /// ResourceExhausted (overload).
  static bool IsRetryable(const Status& status);

 private:
  friend class Channel;

  using TransportFn = std::function<StatusOr<Frame>(const Frame&)>;

  /// Sends `payload` as `request_type` with retries; returns the response
  /// body after envelope decoding.
  StatusOr<std::string> Call(MessageType request_type,
                             const std::string& payload,
                             CallLimits limits = {});
  /// The shared retry/backoff/envelope loop; `transport` performs one
  /// attempt's round trip (per-RPC TCP, a Channel's persistent socket, or a
  /// test hook). `limits.overall` (when nonzero) bounds the loop: elapsed
  /// time is the max of the wall clock and the sum of backoff delays, so
  /// the budget also binds under a test sleeper hook.
  StatusOr<std::string> CallVia(const TransportFn& transport,
                                MessageType request_type,
                                const std::string& payload,
                                CallLimits limits = {});
  StatusOr<Frame> RoundTripTcp(const Frame& request,
                               std::chrono::milliseconds recv_timeout);
  /// Limits for a Wait-class RPC on a job with deadline `deadline_ms`
  /// (0 = job has no deadline -> option defaults, unbounded retries).
  CallLimits WaitLimits(uint64_t deadline_ms) const;

  const RpcClientOptions options_;
  TestHooks hooks_;
  obs::Counter* client_reconnects_ = nullptr;  // null without a registry
};

}  // namespace edgeshed::net

#endif  // EDGESHED_NET_CLIENT_H_
