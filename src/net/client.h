#ifndef EDGESHED_NET_CLIENT_H_
#define EDGESHED_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "net/wire.h"

namespace edgeshed::net {

struct RpcClientOptions {
  std::string host = "127.0.0.1";
  int port = 0;
  std::chrono::milliseconds connect_timeout{2000};
  std::chrono::milliseconds send_timeout{5000};
  /// Per-recv deadline. Wait and Shed-with-wait block server-side for the
  /// whole job, so give them room (the CLI maps --timeout_ms here).
  std::chrono::milliseconds recv_timeout{60000};
  /// Total tries per RPC (1 = no retries).
  int max_attempts = 4;
  /// Deterministic exponential backoff: attempt k (0-based) sleeps
  /// min(initial * multiplier^k, max), scaled into
  /// [1 - jitter_fraction, 1] by a PRNG seeded with jitter_seed — the
  /// schedule is a pure function of these options (see BackoffSchedule),
  /// which is what makes retry behaviour testable.
  std::chrono::milliseconds backoff_initial{100};
  std::chrono::milliseconds backoff_max{2000};
  double backoff_multiplier = 2.0;
  double jitter_fraction = 0.2;
  uint64_t jitter_seed = 0x5eed;
};

/// Blocking client for the net RPC server (DESIGN.md §10).
///
/// Each RPC opens one connection, sends one request frame, reads one
/// response frame, and closes — no connection pooling, no pipelining, no
/// shared state, so the client is trivially safe to use from multiple
/// threads and a half-dead server never wedges it (connect/send/recv each
/// carry their own timeout).
///
/// Transient failures — transport IOErrors (refused, reset, timed out) and
/// ResourceExhausted responses (server admission control, scheduler queue
/// full) — are retried up to `max_attempts` with deterministic exponential
/// backoff + jitter. Retrying Shed is safe because shedding is
/// deterministic: an identical resubmission coalesces or hits the result
/// cache server-side. Every other status fails fast.
class RpcClient {
 public:
  /// Test seams: `transport` replaces the TCP round trip, `sleeper` replaces
  /// the backoff sleep. Null members keep the real implementation.
  struct TestHooks {
    std::function<StatusOr<Frame>(const Frame&)> transport;
    std::function<void(std::chrono::milliseconds)> sleeper;
  };

  explicit RpcClient(RpcClientOptions options);
  RpcClient(RpcClientOptions options, TestHooks hooks);

  /// Round-trip liveness probe; returns the echoed token.
  StatusOr<uint64_t> Ping(uint64_t token);

  /// Submits a shedding job; with request.wait the response carries the
  /// finished ResultSummary.
  StatusOr<ShedResponse> Shed(const ShedRequest& request);

  /// Blocks until job `job_id` finishes and returns its summary; the job's
  /// failure status (or NotFound) otherwise.
  StatusOr<ResultSummary> Wait(uint64_t job_id);

  StatusOr<GetStatusResponse> GetJobStatus(uint64_t job_id);

  Status Cancel(uint64_t job_id);

  StatusOr<std::vector<std::string>> ListDatasets();

  /// The exact backoff delays Call() will use between attempts
  /// (max_attempts - 1 entries): pure function of `options`, exposed so
  /// tests pin the schedule.
  static std::vector<std::chrono::milliseconds> BackoffSchedule(
      const RpcClientOptions& options);

  /// True for the statuses Call() retries: IOError (transport) and
  /// ResourceExhausted (overload).
  static bool IsRetryable(const Status& status);

 private:
  /// Sends `payload` as `request_type` with retries; returns the response
  /// body after envelope decoding.
  StatusOr<std::string> Call(MessageType request_type,
                             const std::string& payload);
  StatusOr<Frame> RoundTripTcp(const Frame& request);

  const RpcClientOptions options_;
  TestHooks hooks_;
};

}  // namespace edgeshed::net

#endif  // EDGESHED_NET_CLIENT_H_
