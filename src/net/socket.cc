#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace edgeshed::net {

namespace {

Status Errno(const char* what) {
  return Status::IOError(StrFormat("%s: %s", what, std::strerror(errno)));
}

}  // namespace

StatusOr<int> ListenTcp(const ListenOptions& options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket()");
  int reuse = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &reuse, sizeof(reuse));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr =
      htonl(options.loopback_only ? INADDR_LOOPBACK : INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status status = Status::IOError(
        StrFormat("bind(%s:%d): %s",
                  options.loopback_only ? "127.0.0.1" : "0.0.0.0",
                  options.port, std::strerror(errno)));
    CloseFd(fd);
    return status;
  }
  if (::listen(fd, options.backlog) != 0) {
    const Status status = Errno("listen()");
    CloseFd(fd);
    return status;
  }
  return fd;
}

StatusOr<int> BoundTcpPort(int fd) {
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) !=
      0) {
    return Errno("getsockname()");
  }
  return static_cast<int>(ntohs(bound.sin_port));
}

StatusOr<int> ConnectTcp(const std::string& host, int port,
                         std::chrono::milliseconds timeout) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* resolved = nullptr;
  const std::string port_text = StrFormat("%d", port);
  const int rc = ::getaddrinfo(host.c_str(), port_text.c_str(), &hints,
                               &resolved);
  if (rc != 0) {
    return Status::IOError(
        StrFormat("resolve %s: %s", host.c_str(), ::gai_strerror(rc)));
  }

  Status last = Status::IOError("no addresses for " + host);
  for (addrinfo* ai = resolved; ai != nullptr; ai = ai->ai_next) {
    const int fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) {
      last = Errno("socket()");
      continue;
    }
    // Non-blocking connect so the deadline is ours, not the kernel's.
    if (Status status = SetNonBlocking(fd, true); !status.ok()) {
      CloseFd(fd);
      last = std::move(status);
      continue;
    }
    int crc = ::connect(fd, ai->ai_addr, ai->ai_addrlen);
    if (crc != 0 && errno == EINPROGRESS) {
      pollfd pfd{};
      pfd.fd = fd;
      pfd.events = POLLOUT;
      int ready;
      do {
        ready = ::poll(&pfd, 1, static_cast<int>(timeout.count()));
      } while (ready < 0 && errno == EINTR);
      if (ready == 0) {
        CloseFd(fd);
        last = Status::IOError(
            StrFormat("connect %s:%d: timed out after %lld ms", host.c_str(),
                      port, static_cast<long long>(timeout.count())));
        continue;
      }
      int err = 0;
      socklen_t err_len = sizeof(err);
      if (ready < 0 ||
          ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &err_len) != 0) {
        last = Errno("connect poll");
        CloseFd(fd);
        continue;
      }
      if (err != 0) {
        last = Status::IOError(StrFormat("connect %s:%d: %s", host.c_str(),
                                         port, std::strerror(err)));
        CloseFd(fd);
        continue;
      }
      crc = 0;
    }
    if (crc != 0) {
      last = Status::IOError(StrFormat("connect %s:%d: %s", host.c_str(),
                                       port, std::strerror(errno)));
      CloseFd(fd);
      continue;
    }
    if (Status status = SetNonBlocking(fd, false); !status.ok()) {
      CloseFd(fd);
      last = std::move(status);
      continue;
    }
    ::freeaddrinfo(resolved);
    return fd;
  }
  ::freeaddrinfo(resolved);
  return last;
}

StatusOr<int> AcceptConnection(int listen_fd) {
  for (;;) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd >= 0) return fd;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return -1;
    return Errno("accept()");
  }
}

Status SendAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("send timed out");
      }
      return Errno("send()");
    }
    if (n == 0) return Status::IOError("send(): peer closed connection");
    sent += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<size_t> SendSome(int fd, std::string_view data) {
  for (;;) {
    const ssize_t n = ::send(fd, data.data(), data.size(),
#ifdef MSG_NOSIGNAL
                             MSG_NOSIGNAL
#else
                             0
#endif
    );
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return size_t{0};
    return Errno("send()");
  }
}

StatusOr<size_t> RecvSome(int fd, char* buf, size_t len) {
  for (;;) {
    const ssize_t n = ::recv(fd, buf, len, 0);
    if (n >= 0) return static_cast<size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("recv timed out");
    }
    return Errno("recv()");
  }
}

Status SetNonBlocking(int fd, bool enable) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return Errno("fcntl(F_GETFL)");
  const int want = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (want != flags && ::fcntl(fd, F_SETFL, want) < 0) {
    return Errno("fcntl(F_SETFL)");
  }
  return Status::OK();
}

namespace {

Status SetTimeoutOption(int fd, int option, std::chrono::milliseconds timeout,
                        const char* what) {
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(timeout.count() / 1000);
  tv.tv_usec = static_cast<suseconds_t>((timeout.count() % 1000) * 1000);
  if (::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) != 0) {
    return Errno(what);
  }
  return Status::OK();
}

}  // namespace

Status SetRecvTimeout(int fd, std::chrono::milliseconds timeout) {
  return SetTimeoutOption(fd, SO_RCVTIMEO, timeout, "setsockopt(SO_RCVTIMEO)");
}

Status SetSendTimeout(int fd, std::chrono::milliseconds timeout) {
  return SetTimeoutOption(fd, SO_SNDTIMEO, timeout, "setsockopt(SO_SNDTIMEO)");
}

void CloseFd(int fd) {
  if (fd < 0) return;
  // POSIX leaves the fd state unspecified on EINTR from close(); retrying
  // risks closing a recycled descriptor, so close once and move on.
  ::close(fd);
}

}  // namespace edgeshed::net
