#include "net/server.h"

#include <poll.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <utility>

#include "common/strings.h"
#include "net/socket.h"
#include "service/dataset_registry.h"

namespace edgeshed::net {

namespace {

constexpr int kPollIntervalMs = 100;
constexpr size_t kRecvChunkBytes = 64 * 1024;

/// RecvSome/SendSome on the loop's non-blocking fds surface EAGAIN as
/// DeadlineExceeded (the blocking-socket timeout mapping); here that simply
/// means "drained for now".
bool IsWouldBlock(const Status& status) {
  return status.code() == StatusCode::kDeadlineExceeded;
}

}  // namespace

RpcServer::RpcServer(service::GraphStore* store,
                     service::JobScheduler* scheduler,
                     obs::MetricsRegistry* metrics, RpcServerOptions options,
                     obs::Tracer* tracer)
    : store_(store),
      scheduler_(scheduler),
      metrics_(metrics),
      tracer_(tracer),
      options_(std::move(options)) {
  if (metrics_ != nullptr) {
    instruments_.requests_total = metrics_->GetCounter("net.requests_total");
    instruments_.bytes_in = metrics_->GetCounter("net.bytes_in");
    instruments_.bytes_out = metrics_->GetCounter("net.bytes_out");
    instruments_.rejected_overload =
        metrics_->GetCounter("net.rejected_overload");
    instruments_.degraded_admitted =
        metrics_->GetCounter("net.degraded_admitted");
    instruments_.degraded_applied =
        metrics_->GetCounter("net.degraded_applied");
    instruments_.malformed_frames =
        metrics_->GetCounter("net.malformed_frames");
    instruments_.accepted = metrics_->GetCounter("net.accepted");
    instruments_.closed = metrics_->GetCounter("net.closed");
    instruments_.connections = metrics_->GetGauge("net.connections");
    instruments_.inflight = metrics_->GetGauge("net.inflight");
    instruments_.rpc_seconds = metrics_->GetLatency("net.rpc_seconds");
  }
}

RpcServer::~RpcServer() { Stop(); }

Status RpcServer::Start() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (loop_thread_.joinable()) {
    return Status::FailedPrecondition("rpc server already started");
  }

  ListenOptions listen_options;
  listen_options.port = options_.port;
  listen_options.backlog = options_.backlog;
  listen_options.loopback_only = options_.loopback_only;
  auto listen_fd = ListenTcp(listen_options);
  if (!listen_fd.ok()) return listen_fd.status();
  listen_fd_ = *listen_fd;

  auto bound = BoundTcpPort(listen_fd_);
  if (!bound.ok()) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return bound.status();
  }
  port_ = *bound;

  int pipe_fds[2] = {-1, -1};
  if (::pipe(pipe_fds) != 0) {
    CloseFd(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("pipe() for event-loop wakeup failed");
  }
  wake_read_fd_ = pipe_fds[0];
  wake_write_fd_ = pipe_fds[1];

  for (int fd : {listen_fd_, wake_read_fd_, wake_write_fd_}) {
    if (Status status = SetNonBlocking(fd, true); !status.ok()) {
      CloseFd(listen_fd_);
      CloseFd(wake_read_fd_);
      CloseFd(wake_write_fd_);
      listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
      return status;
    }
  }

  stopping_.store(false, std::memory_order_release);
  dispatch_shutdown_ = false;
  const int dispatchers = std::max(1, options_.dispatch_threads);
  dispatch_threads_.reserve(static_cast<size_t>(dispatchers));
  for (int i = 0; i < dispatchers; ++i) {
    dispatch_threads_.emplace_back([this] { DispatchLoop(); });
  }
  loop_thread_ = std::thread([this] { EventLoop(); });
  return Status::OK();
}

void RpcServer::Stop() {
  std::lock_guard<std::mutex> stop_lock(stop_mu_);
  if (!loop_thread_.joinable() && dispatch_threads_.empty()) return;

  stopping_.store(true, std::memory_order_release);
  if (wake_write_fd_ >= 0) {
    const char byte = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
  }
  if (loop_thread_.joinable()) loop_thread_.join();

  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    dispatch_shutdown_ = true;
  }
  task_available_.notify_all();
  for (std::thread& t : dispatch_threads_) {
    if (t.joinable()) t.join();
  }
  dispatch_threads_.clear();

  CloseFd(listen_fd_);
  CloseFd(wake_read_fd_);
  CloseFd(wake_write_fd_);
  listen_fd_ = wake_read_fd_ = wake_write_fd_ = -1;
  tasks_.clear();
  completions_.clear();
}

// ---------------------------------------------------------------------------
// Event loop

void RpcServer::EventLoop() {
  std::chrono::steady_clock::time_point drain_deadline{};
  bool draining = false;

  for (;;) {
    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping && !draining) {
      draining = true;
      drain_deadline = std::chrono::steady_clock::now() +
                       options_.drain_timeout;
    }
    if (draining) {
      bool queues_empty;
      {
        std::lock_guard<std::mutex> lock(queue_mu_);
        queues_empty = tasks_.empty() && completions_.empty();
      }
      const bool output_pending = std::any_of(
          connections_.begin(), connections_.end(), [](const auto& kv) {
            return kv.second->out_off < kv.second->outbuf.size();
          });
      if ((inflight_ == 0 && queues_empty && !output_pending) ||
          std::chrono::steady_clock::now() >= drain_deadline) {
        break;
      }
    }

    std::vector<pollfd> pfds;
    std::vector<uint64_t> pfd_conn_ids;  // parallel to pfds, 0 = not a conn
    pfds.reserve(connections_.size() + 2);
    pfd_conn_ids.reserve(connections_.size() + 2);

    pfds.push_back({wake_read_fd_, POLLIN, 0});
    pfd_conn_ids.push_back(0);
    if (!draining) {
      pfds.push_back({listen_fd_, POLLIN, 0});
      pfd_conn_ids.push_back(0);
    }
    for (const auto& [id, conn] : connections_) {
      short events = 0;
      // During drain we only flush; new frames are no longer read.
      if (!draining && !conn->closing) events |= POLLIN;
      if (conn->out_off < conn->outbuf.size()) events |= POLLOUT;
      if (events == 0) continue;
      pfds.push_back({conn->fd, events, 0});
      pfd_conn_ids.push_back(id);
    }

    int ready = ::poll(pfds.data(), static_cast<nfds_t>(pfds.size()),
                       kPollIntervalMs);
    if (ready < 0 && errno != EINTR) break;  // unrecoverable loop failure
    const auto now = std::chrono::steady_clock::now();

    if (ready > 0) {
      for (size_t i = 0; i < pfds.size(); ++i) {
        if (pfds[i].revents == 0) continue;
        if (pfds[i].fd == wake_read_fd_) {
          char buf[256];
          while (::read(wake_read_fd_, buf, sizeof(buf)) > 0) {
          }
          continue;
        }
        if (pfds[i].fd == listen_fd_ && pfd_conn_ids[i] == 0) {
          AcceptNew(now);
          continue;
        }
        const uint64_t conn_id = pfd_conn_ids[i];
        auto it = connections_.find(conn_id);
        if (it == connections_.end()) continue;
        Connection& conn = *it->second;
        if ((pfds[i].revents & (POLLERR | POLLNVAL)) != 0) {
          CloseConnection(conn_id);
          continue;
        }
        if ((pfds[i].revents & POLLOUT) != 0) FlushConnection(conn);
        if (connections_.find(conn_id) == connections_.end()) continue;
        if ((pfds[i].revents & (POLLIN | POLLHUP)) != 0) {
          ReadFromConnection(conn, now);
        }
      }
    }

    ApplyCompletions();

    // Idle sweep: connections with no traffic and no in-flight work.
    if (options_.idle_timeout.count() > 0 && !draining) {
      std::vector<uint64_t> idle;
      for (const auto& [id, conn] : connections_) {
        if (conn->inflight == 0 &&
            conn->out_off >= conn->outbuf.size() &&
            now - conn->last_activity > options_.idle_timeout) {
          idle.push_back(id);
        }
      }
      for (uint64_t id : idle) CloseConnection(id);
    }
  }

  // Cleanup: anything still open is force-closed (drain either completed or
  // timed out).
  std::vector<uint64_t> remaining;
  remaining.reserve(connections_.size());
  for (const auto& [id, conn] : connections_) remaining.push_back(id);
  for (uint64_t id : remaining) CloseConnection(id);
}

void RpcServer::AcceptNew(std::chrono::steady_clock::time_point now) {
  for (;;) {
    auto accepted = AcceptConnection(listen_fd_);
    if (!accepted.ok()) return;  // transient accept failure; retry on next poll
    const int fd = *accepted;
    if (fd < 0) return;  // queue drained

    if (connections_.size() >= options_.max_connections) {
      // Admission control: tell the client why before hanging up, on the
      // still-blocking fresh fd (one small frame).
      if (instruments_.rejected_overload != nullptr) {
        instruments_.rejected_overload->Increment();
      }
      const std::string frame = EncodeFrame(
          MessageType::kErrorResponse,
          EncodeResponsePayload(Status::ResourceExhausted(StrFormat(
              "connection limit reached (%zu)", options_.max_connections))));
      [[maybe_unused]] Status ignored = SendAll(fd, frame);
      CloseFd(fd);
      continue;
    }
    if (Status status = SetNonBlocking(fd, true); !status.ok()) {
      CloseFd(fd);
      continue;
    }
    auto conn = std::make_unique<Connection>();
    conn->id = next_conn_id_++;
    conn->fd = fd;
    conn->last_activity = now;
    if (instruments_.accepted != nullptr) instruments_.accepted->Increment();
    connections_.emplace(conn->id, std::move(conn));
    PublishConnGauges();
  }
}

void RpcServer::ReadFromConnection(Connection& conn,
                                   std::chrono::steady_clock::time_point now) {
  const uint64_t conn_id = conn.id;
  char buf[kRecvChunkBytes];
  for (;;) {
    auto n = RecvSome(conn.fd, buf, sizeof(buf));
    if (!n.ok()) {
      if (IsWouldBlock(n.status())) break;  // drained
      CloseConnection(conn_id);
      return;
    }
    if (*n == 0) {  // orderly EOF; drop pending replies, the peer left
      CloseConnection(conn_id);
      return;
    }
    conn.inbuf.append(buf, *n);
    conn.last_activity = now;
    if (instruments_.bytes_in != nullptr) {
      instruments_.bytes_in->Increment(*n);
    }
    if (*n < sizeof(buf)) break;  // likely drained; poll tells us otherwise
  }

  size_t offset = 0;
  while (!conn.closing) {
    DecodeResult decoded =
        DecodeFrame(std::string_view(conn.inbuf).substr(offset));
    if (decoded.event == DecodeEvent::kNeedMoreData) break;
    if (decoded.event == DecodeEvent::kError) {
      // Framing is lost: answer once, then close after the flush.
      if (instruments_.malformed_frames != nullptr) {
        instruments_.malformed_frames->Increment();
      }
      EnqueueResponse(conn, MessageType::kErrorResponse,
                      EncodeResponsePayload(decoded.error));
      conn.closing = true;
      offset = conn.inbuf.size();
      break;
    }
    offset += decoded.consumed;
    HandleDecodedFrame(conn, std::move(decoded.frame));
  }
  if (offset > 0) conn.inbuf.erase(0, offset);
  if (connections_.find(conn_id) != connections_.end()) {
    FlushConnection(conn);
  }
}

void RpcServer::HandleDecodedFrame(Connection& conn, Frame frame) {
  if (instruments_.requests_total != nullptr) {
    instruments_.requests_total->Increment();
  }
  if (!IsRequestType(frame.type)) {
    if (instruments_.malformed_frames != nullptr) {
      instruments_.malformed_frames->Increment();
    }
    EnqueueResponse(
        conn, MessageType::kErrorResponse,
        EncodeResponsePayload(Status::InvalidArgument(StrFormat(
            "expected a request frame, got %.*s",
            static_cast<int>(MessageTypeToString(frame.type).size()),
            MessageTypeToString(frame.type).data()))));
    conn.closing = true;
    return;
  }

  if (frame.type == MessageType::kPingRequest) {
    // Pings never leave the loop thread: they measure transport liveness,
    // not dispatch capacity, and must work even at max_inflight.
    PingMessage ping;
    if (Status status = DecodePing(frame.payload, &ping); !status.ok()) {
      EnqueueResponse(conn, MessageType::kPingResponse,
                      EncodeResponsePayload(status));
      return;
    }
    EnqueueResponse(conn, MessageType::kPingResponse,
                    EncodeResponsePayload(Status::OK(), EncodePing(ping)));
    return;
  }

  // Admission control. Without degradation the boundary is max_inflight,
  // exactly as before. With it, requests between max_inflight and the hard
  // ceiling are *admitted* carrying a pressure hint — the scheduler answers
  // them with a cheaper tier or a cached coarser-p result instead of the
  // caller eating a ResourceExhausted (DESIGN.md §13).
  const size_t hard_cap =
      !options_.degrade_enabled ? options_.max_inflight
      : options_.max_pending > 0 ? options_.max_pending
                                 : options_.max_inflight * 4;
  if (inflight_ >= hard_cap) {
    if (instruments_.rejected_overload != nullptr) {
      instruments_.rejected_overload->Increment();
    }
    EnqueueResponse(
        conn, ResponseTypeFor(frame.type),
        EncodeResponsePayload(Status::ResourceExhausted(StrFormat(
            "server at max in-flight requests (%zu)", hard_cap))));
    return;
  }
  double pressure = 0.0;
  if (options_.degrade_enabled && options_.max_inflight > 0 &&
      inflight_ >= options_.max_inflight) {
    pressure = static_cast<double>(inflight_) /
               static_cast<double>(options_.max_inflight);
    if (instruments_.degraded_admitted != nullptr) {
      instruments_.degraded_admitted->Increment();
    }
  }

  ++inflight_;
  ++conn.inflight;
  if (instruments_.inflight != nullptr) {
    instruments_.inflight->Set(static_cast<int64_t>(inflight_));
  }
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    tasks_.push_back(Task{conn.id, std::move(frame), pressure});
  }
  task_available_.notify_one();
}

void RpcServer::EnqueueResponse(Connection& conn, MessageType type,
                                std::string_view payload) {
  conn.outbuf.append(EncodeFrame(type, payload));
}

void RpcServer::FlushConnection(Connection& conn) {
  const uint64_t conn_id = conn.id;
  while (conn.out_off < conn.outbuf.size()) {
    auto n = SendSome(conn.fd,
                      std::string_view(conn.outbuf).substr(conn.out_off));
    if (!n.ok()) {
      CloseConnection(conn_id);
      return;
    }
    if (*n == 0) return;  // socket buffer full; POLLOUT resumes us
    conn.out_off += *n;
    if (instruments_.bytes_out != nullptr) {
      instruments_.bytes_out->Increment(*n);
    }
  }
  conn.outbuf.clear();
  conn.out_off = 0;
  if (conn.closing && conn.inflight == 0) CloseConnection(conn_id);
}

void RpcServer::CloseConnection(uint64_t conn_id) {
  auto it = connections_.find(conn_id);
  if (it == connections_.end()) return;
  CloseFd(it->second->fd);
  connections_.erase(it);
  if (instruments_.closed != nullptr) instruments_.closed->Increment();
  PublishConnGauges();
}

void RpcServer::ApplyCompletions() {
  std::deque<Completion> done;
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    done.swap(completions_);
  }
  for (Completion& completion : done) {
    --inflight_;
    auto it = connections_.find(completion.conn_id);
    if (it == connections_.end()) continue;  // client left; drop the reply
    Connection& conn = *it->second;
    --conn.inflight;
    conn.outbuf.append(completion.bytes);
    conn.last_activity = std::chrono::steady_clock::now();
    FlushConnection(conn);
  }
  if (instruments_.inflight != nullptr) {
    instruments_.inflight->Set(static_cast<int64_t>(inflight_));
  }
}

void RpcServer::PublishConnGauges() {
  if (instruments_.connections != nullptr) {
    instruments_.connections->Set(
        static_cast<int64_t>(connections_.size()));
  }
}

// ---------------------------------------------------------------------------
// Dispatch

void RpcServer::DispatchLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      task_available_.wait(
          lock, [this] { return dispatch_shutdown_ || !tasks_.empty(); });
      if (dispatch_shutdown_) return;  // drain already happened (or timed out)
      task = std::move(tasks_.front());
      tasks_.pop_front();
    }

    std::string response = HandleRequest(task.frame, task.pressure);
    {
      std::lock_guard<std::mutex> lock(queue_mu_);
      completions_.push_back(Completion{task.conn_id, std::move(response)});
    }
    if (wake_write_fd_ >= 0) {
      const char byte = 1;
      // A full pipe already guarantees a pending wakeup.
      [[maybe_unused]] ssize_t n = ::write(wake_write_fd_, &byte, 1);
    }
  }
}

std::string RpcServer::HandleRequest(const Frame& frame, double pressure) {
  const auto start = std::chrono::steady_clock::now();
  obs::Span span = obs::Tracer::StartSpan(
      tracer_, StrFormat("rpc.%.*s",
                         static_cast<int>(MessageTypeToString(frame.type).size()),
                         MessageTypeToString(frame.type).data()));

  std::string response;
  switch (frame.type) {
    case MessageType::kShedRequest:
      response = HandleShed(frame.payload, pressure);
      break;
    case MessageType::kWaitRequest:
      response = HandleWait(frame.payload);
      break;
    case MessageType::kGetStatusRequest:
      response = HandleGetStatus(frame.payload);
      break;
    case MessageType::kCancelRequest:
      response = HandleCancel(frame.payload);
      break;
    case MessageType::kListDatasetsRequest:
      response = HandleListDatasets(frame.payload);
      break;
    case MessageType::kApplyMutationsRequest:
      response = HandleApplyMutations(frame.payload);
      break;
    default:
      // Ping is loop-inline and non-requests never reach dispatch.
      response = EncodeFrame(
          MessageType::kErrorResponse,
          EncodeResponsePayload(Status::Internal("unroutable request type")));
      break;
  }

  span.End();
  if (instruments_.rpc_seconds != nullptr) {
    instruments_.rpc_seconds->Record(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count());
  }
  return response;
}

Status RpcServer::WaitForResult(uint64_t job_id, ResultSummary* summary) {
  auto result = scheduler_->Wait(job_id);
  if (!result.ok()) return result.status();
  const core::SheddingResult& shed = **result;
  summary->job_id = job_id;
  summary->kept_edges = shed.kept_edges.size();
  summary->total_delta = shed.total_delta;
  summary->average_delta = shed.average_delta;
  summary->reduction_seconds = shed.reduction_seconds;
  summary->stats = shed.stats;
  if (auto status = scheduler_->GetStatus(job_id); status.ok()) {
    summary->deduplicated = status->deduplicated;
    summary->applied_method = status->applied_method;
    summary->applied_p = status->applied_p;
    summary->degrade_kind = static_cast<uint8_t>(status->degrade_kind);
    if (summary->degrade_kind != 0 &&
        instruments_.degraded_applied != nullptr) {
      instruments_.degraded_applied->Increment();
    }
  }
  return Status::OK();
}

std::string RpcServer::HandleShed(std::string_view payload, double pressure) {
  ShedRequest request;
  if (Status status = DecodeShedRequest(payload, &request); !status.ok()) {
    return EncodeFrame(MessageType::kShedResponse,
                       EncodeResponsePayload(status));
  }
  service::JobSpec spec;
  spec.dataset = request.dataset;
  spec.method = request.method;
  spec.p = request.p;
  spec.seed = request.seed;
  spec.deadline =
      std::chrono::milliseconds(static_cast<int64_t>(request.deadline_ms));
  spec.tenant = request.tenant;
  spec.priority = request.priority != 0;
  spec.allow_degrade = options_.degrade_enabled;
  spec.pressure = pressure;
  if (!request.output.empty()) {
    if (options_.output_dir.empty()) {
      return EncodeFrame(
          MessageType::kShedResponse,
          EncodeResponsePayload(Status::InvalidArgument(
              "this server has no output directory (start it with "
              "--shard_dir to accept output snapshots)")));
    }
    if (!service::IsSafeDatasetName(request.output)) {
      return EncodeFrame(
          MessageType::kShedResponse,
          EncodeResponsePayload(Status::InvalidArgument(StrFormat(
              "unsafe output name '%s'", request.output.c_str()))));
    }
    spec.output_path = options_.output_dir + "/" + request.output + ".esg";
  }
  auto id = scheduler_->Submit(spec);
  if (!id.ok()) {
    return EncodeFrame(MessageType::kShedResponse,
                       EncodeResponsePayload(id.status()));
  }
  ShedResponse response;
  response.job_id = *id;
  if (request.wait) {
    if (Status status = WaitForResult(*id, &response.result); !status.ok()) {
      return EncodeFrame(MessageType::kShedResponse,
                         EncodeResponsePayload(status));
    }
    response.has_result = true;
  }
  return EncodeFrame(
      MessageType::kShedResponse,
      EncodeResponsePayload(Status::OK(), EncodeShedResponseBody(response)));
}

std::string RpcServer::HandleWait(std::string_view payload) {
  JobIdRequest request;
  if (Status status = DecodeJobIdRequest(payload, &request); !status.ok()) {
    return EncodeFrame(MessageType::kWaitResponse,
                       EncodeResponsePayload(status));
  }
  ResultSummary summary;
  if (Status status = WaitForResult(request.job_id, &summary); !status.ok()) {
    return EncodeFrame(MessageType::kWaitResponse,
                       EncodeResponsePayload(status));
  }
  return EncodeFrame(MessageType::kWaitResponse,
                     EncodeResponsePayload(Status::OK(),
                                           EncodeResultSummaryBody(summary)));
}

std::string RpcServer::HandleGetStatus(std::string_view payload) {
  JobIdRequest request;
  if (Status status = DecodeJobIdRequest(payload, &request); !status.ok()) {
    return EncodeFrame(MessageType::kGetStatusResponse,
                       EncodeResponsePayload(status));
  }
  auto job = scheduler_->GetStatus(request.job_id);
  if (!job.ok()) {
    return EncodeFrame(MessageType::kGetStatusResponse,
                       EncodeResponsePayload(job.status()));
  }
  GetStatusResponse response;
  response.state = static_cast<uint8_t>(job->state);
  response.code = WireCodeFromStatus(job->status.code());
  response.message = job->status.message();
  response.deduplicated = job->deduplicated;
  response.queue_seconds = job->queue_seconds;
  response.run_seconds = job->run_seconds;
  response.applied_method = job->applied_method;
  response.applied_p = job->applied_p;
  response.degrade_kind = static_cast<uint8_t>(job->degrade_kind);
  return EncodeFrame(
      MessageType::kGetStatusResponse,
      EncodeResponsePayload(Status::OK(),
                            EncodeGetStatusResponseBody(response)));
}

std::string RpcServer::HandleCancel(std::string_view payload) {
  JobIdRequest request;
  if (Status status = DecodeJobIdRequest(payload, &request); !status.ok()) {
    return EncodeFrame(MessageType::kCancelResponse,
                       EncodeResponsePayload(status));
  }
  const Status cancelled = scheduler_->Cancel(request.job_id);
  return EncodeFrame(MessageType::kCancelResponse,
                     EncodeResponsePayload(cancelled));
}

std::string RpcServer::HandleListDatasets(std::string_view payload) {
  if (!payload.empty()) {
    return EncodeFrame(
        MessageType::kListDatasetsResponse,
        EncodeResponsePayload(Status::InvalidArgument(
            "ListDatasets request carries no payload")));
  }
  ListDatasetsResponse response;
  response.names = store_->RegisteredNames();
  // Sorted reply regardless of how the store enumerates: client output (and
  // the CLI's) must be deterministic across runs and store implementations.
  std::sort(response.names.begin(), response.names.end());
  return EncodeFrame(
      MessageType::kListDatasetsResponse,
      EncodeResponsePayload(Status::OK(),
                            EncodeListDatasetsResponseBody(response)));
}

std::string RpcServer::HandleApplyMutations(std::string_view payload) {
  ApplyMutationsRequest request;
  if (Status status = DecodeApplyMutationsRequest(payload, &request);
      !status.ok()) {
    return EncodeFrame(MessageType::kApplyMutationsResponse,
                       EncodeResponsePayload(status));
  }
  graph::MutationBatch batch;
  batch.inserts.reserve(request.inserts.size());
  for (const auto& [u, v] : request.inserts) {
    batch.inserts.push_back({u, v});
  }
  batch.deletes.reserve(request.deletes.size());
  for (const auto& [u, v] : request.deletes) {
    batch.deletes.push_back({u, v});
  }
  auto version = store_->ApplyMutations(request.dataset, std::move(batch));
  if (!version.ok()) {
    return EncodeFrame(MessageType::kApplyMutationsResponse,
                       EncodeResponsePayload(version.status()));
  }
  ApplyMutationsResponse response;
  response.version = *version;
  // Overlay/compaction introspection for the caller; the batch is already
  // durably applied, so a failure here would only lose the nice-to-have
  // counters — and DynGraph cannot fail after a successful ApplyMutations.
  if (auto dyn_graph = store_->DynGraph(request.dataset); dyn_graph.ok()) {
    const std::shared_ptr<const dyn::DeltaGraph> snap =
        (*dyn_graph)->Snapshot();
    response.live_edges = snap->NumEdges();
    response.overlay_inserted = snap->inserted().size();
    response.overlay_deleted = snap->deleted_ids().size();
    response.compacting = (*dyn_graph)->CompactionInProgress() ? 1 : 0;
  }
  return EncodeFrame(
      MessageType::kApplyMutationsResponse,
      EncodeResponsePayload(Status::OK(),
                            EncodeApplyMutationsResponseBody(response)));
}

}  // namespace edgeshed::net
