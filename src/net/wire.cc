#include "net/wire.h"

#include <bit>
#include <cstring>

#include "common/check.h"
#include "common/crc32.h"
#include "common/strings.h"

namespace edgeshed::net {

namespace {

void AppendLE(std::string* out, uint64_t value, int bytes) {
  for (int i = 0; i < bytes; ++i) {
    out->push_back(static_cast<char>((value >> (8 * i)) & 0xFF));
  }
}

uint64_t ReadLE(const unsigned char* bytes, int count) {
  uint64_t value = 0;
  for (int i = 0; i < count; ++i) {
    value |= static_cast<uint64_t>(bytes[i]) << (8 * i);
  }
  return value;
}

}  // namespace

std::string_view MessageTypeToString(MessageType type) {
  switch (type) {
    case MessageType::kShedRequest:
      return "ShedRequest";
    case MessageType::kGetStatusRequest:
      return "GetStatusRequest";
    case MessageType::kWaitRequest:
      return "WaitRequest";
    case MessageType::kCancelRequest:
      return "CancelRequest";
    case MessageType::kListDatasetsRequest:
      return "ListDatasetsRequest";
    case MessageType::kPingRequest:
      return "PingRequest";
    case MessageType::kApplyMutationsRequest:
      return "ApplyMutationsRequest";
    case MessageType::kShedResponse:
      return "ShedResponse";
    case MessageType::kGetStatusResponse:
      return "GetStatusResponse";
    case MessageType::kWaitResponse:
      return "WaitResponse";
    case MessageType::kCancelResponse:
      return "CancelResponse";
    case MessageType::kListDatasetsResponse:
      return "ListDatasetsResponse";
    case MessageType::kPingResponse:
      return "PingResponse";
    case MessageType::kApplyMutationsResponse:
      return "ApplyMutationsResponse";
    case MessageType::kErrorResponse:
      return "ErrorResponse";
  }
  return "Unknown";
}

bool IsRequestType(MessageType type) {
  const uint8_t value = static_cast<uint8_t>(type);
  return value >= 1 &&
         value <= static_cast<uint8_t>(MessageType::kApplyMutationsRequest);
}

bool IsKnownMessageType(uint8_t type) {
  if (type == static_cast<uint8_t>(MessageType::kErrorResponse)) return true;
  const uint8_t base = type & 0x7F;
  return base >= 1 &&
         base <= static_cast<uint8_t>(MessageType::kApplyMutationsRequest);
}

MessageType ResponseTypeFor(MessageType request) {
  EDGESHED_CHECK(IsRequestType(request))
      << "not a request type: " << static_cast<int>(request);
  return static_cast<MessageType>(static_cast<uint8_t>(request) | 0x80);
}

uint8_t WireCodeFromStatus(StatusCode code) {
  return static_cast<uint8_t>(code);
}

StatusOr<StatusCode> StatusCodeFromWireCode(uint8_t wire_code) {
  if (wire_code > static_cast<uint8_t>(StatusCode::kDataLoss)) {
    return Status::InvalidArgument(
        StrFormat("unknown wire error code %u",
                  static_cast<unsigned>(wire_code)));
  }
  return static_cast<StatusCode>(wire_code);
}

// ---------------------------------------------------------------------------
// Frames

std::string EncodeFrame(MessageType type, std::string_view payload) {
  EDGESHED_CHECK(payload.size() <= kMaxPayloadBytes)
      << "frame payload too large: " << payload.size();
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  out.append(kWireMagic, sizeof(kWireMagic));
  out.push_back(static_cast<char>(kWireVersion));
  out.push_back(static_cast<char>(type));
  AppendLE(&out, 0, 2);  // reserved
  AppendLE(&out, payload.size(), 4);
  AppendLE(&out, Crc32(payload), 4);
  out.append(payload);
  return out;
}

DecodeResult DecodeFrame(std::string_view buffer) {
  DecodeResult result;
  if (buffer.empty()) {
    result.event = DecodeEvent::kNeedMoreData;
    return result;
  }
  const auto* bytes = reinterpret_cast<const unsigned char*>(buffer.data());

  // Magic and version are prefix-checkable: reject garbage streams on the
  // very first bytes rather than stalling in kNeedMoreData forever.
  const size_t magic_check = std::min(buffer.size(), sizeof(kWireMagic));
  if (std::memcmp(buffer.data(), kWireMagic, magic_check) != 0) {
    result.event = DecodeEvent::kError;
    result.error = Status::InvalidArgument("bad frame magic");
    return result;
  }
  if (buffer.size() > 4 &&
      (bytes[4] < kWireMinVersion || bytes[4] > kWireVersion)) {
    result.event = DecodeEvent::kError;
    result.error = Status::InvalidArgument(
        StrFormat("unsupported wire version %u (want %u..%u)",
                  static_cast<unsigned>(bytes[4]),
                  static_cast<unsigned>(kWireMinVersion),
                  static_cast<unsigned>(kWireVersion)));
    return result;
  }
  if (buffer.size() > 5 && !IsKnownMessageType(bytes[5])) {
    result.event = DecodeEvent::kError;
    result.error = Status::InvalidArgument(
        StrFormat("unknown message type %u",
                  static_cast<unsigned>(bytes[5])));
    return result;
  }
  if (buffer.size() < kFrameHeaderBytes) {
    result.event = DecodeEvent::kNeedMoreData;
    return result;
  }

  const uint32_t payload_len = static_cast<uint32_t>(ReadLE(bytes + 8, 4));
  if (payload_len > kMaxPayloadBytes) {
    result.event = DecodeEvent::kError;
    result.error = Status::InvalidArgument(
        StrFormat("oversized frame: declared payload %u > cap %u",
                  payload_len, kMaxPayloadBytes));
    return result;
  }
  if (buffer.size() < kFrameHeaderBytes + payload_len) {
    result.event = DecodeEvent::kNeedMoreData;
    return result;
  }

  const std::string_view payload =
      buffer.substr(kFrameHeaderBytes, payload_len);
  const uint32_t declared_crc = static_cast<uint32_t>(ReadLE(bytes + 12, 4));
  const uint32_t actual_crc = Crc32(payload);
  if (declared_crc != actual_crc) {
    result.event = DecodeEvent::kError;
    result.error = Status::DataLoss(
        StrFormat("frame checksum mismatch: declared %08x, computed %08x",
                  declared_crc, actual_crc));
    return result;
  }

  result.event = DecodeEvent::kFrame;
  result.consumed = kFrameHeaderBytes + payload_len;
  result.frame.type = static_cast<MessageType>(bytes[5]);
  result.frame.payload.assign(payload);
  return result;
}

// ---------------------------------------------------------------------------
// Payload primitives

void WireWriter::PutU8(uint8_t value) { AppendLE(&bytes_, value, 1); }
void WireWriter::PutU16(uint16_t value) { AppendLE(&bytes_, value, 2); }
void WireWriter::PutU32(uint32_t value) { AppendLE(&bytes_, value, 4); }
void WireWriter::PutU64(uint64_t value) { AppendLE(&bytes_, value, 8); }

void WireWriter::PutDouble(double value) {
  PutU64(std::bit_cast<uint64_t>(value));
}

void WireWriter::PutString(std::string_view value) {
  EDGESHED_CHECK(value.size() <= kMaxStringBytes)
      << "wire string too large: " << value.size();
  PutU32(static_cast<uint32_t>(value.size()));
  bytes_.append(value);
}

const unsigned char* WireReader::Take(size_t n) {
  if (!ok_ || bytes_.size() - pos_ < n) {
    ok_ = false;
    return nullptr;
  }
  const auto* p =
      reinterpret_cast<const unsigned char*>(bytes_.data()) + pos_;
  pos_ += n;
  return p;
}

uint8_t WireReader::GetU8() {
  const unsigned char* p = Take(1);
  return p == nullptr ? 0 : static_cast<uint8_t>(ReadLE(p, 1));
}

uint16_t WireReader::GetU16() {
  const unsigned char* p = Take(2);
  return p == nullptr ? 0 : static_cast<uint16_t>(ReadLE(p, 2));
}

uint32_t WireReader::GetU32() {
  const unsigned char* p = Take(4);
  return p == nullptr ? 0 : static_cast<uint32_t>(ReadLE(p, 4));
}

uint64_t WireReader::GetU64() {
  const unsigned char* p = Take(8);
  return p == nullptr ? 0 : ReadLE(p, 8);
}

double WireReader::GetDouble() { return std::bit_cast<double>(GetU64()); }

std::string WireReader::GetString() {
  const uint32_t len = GetU32();
  if (!ok_ || len > kMaxStringBytes) {
    ok_ = false;
    return {};
  }
  const unsigned char* p = Take(len);
  if (p == nullptr) return {};
  return std::string(reinterpret_cast<const char*>(p), len);
}

Status WireReader::Finish(std::string_view what) const {
  if (!ok_) {
    return Status::InvalidArgument(
        StrFormat("truncated %.*s payload", static_cast<int>(what.size()),
                  what.data()));
  }
  if (remaining() != 0) {
    return Status::InvalidArgument(
        StrFormat("%zu trailing bytes after %.*s payload", remaining(),
                  static_cast<int>(what.size()), what.data()));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Messages

std::string EncodeShedRequest(const ShedRequest& request) {
  WireWriter w;
  w.PutString(request.dataset);
  w.PutString(request.method);
  w.PutDouble(request.p);
  w.PutU64(request.seed);
  w.PutU64(request.deadline_ms);
  w.PutU8(request.wait ? 1 : 0);
  w.PutString(request.output);
  // v2 tail. Always written by this encoder; v1 peers simply stop reading
  // after `output`, and this decoder accepts v1 bodies that end there.
  w.PutString(request.tenant);
  w.PutU8(request.priority);
  return w.Take();
}

Status DecodeShedRequest(std::string_view payload, ShedRequest* out) {
  WireReader r(payload);
  out->dataset = r.GetString();
  out->method = r.GetString();
  out->p = r.GetDouble();
  out->seed = r.GetU64();
  out->deadline_ms = r.GetU64();
  out->wait = r.GetU8() != 0;
  out->output = r.GetString();
  if (r.ok() && r.remaining() > 0) {  // v2 tail
    out->tenant = r.GetString();
    out->priority = r.GetU8();
  } else {
    out->tenant.clear();
    out->priority = 0;
  }
  return r.Finish("ShedRequest");
}

std::string EncodeJobIdRequest(const JobIdRequest& request) {
  WireWriter w;
  w.PutU64(request.job_id);
  return w.Take();
}

Status DecodeJobIdRequest(std::string_view payload, JobIdRequest* out) {
  WireReader r(payload);
  out->job_id = r.GetU64();
  return r.Finish("JobIdRequest");
}

std::string EncodePing(const PingMessage& message) {
  WireWriter w;
  w.PutU64(message.token);
  return w.Take();
}

Status DecodePing(std::string_view payload, PingMessage* out) {
  WireReader r(payload);
  out->token = r.GetU64();
  return r.Finish("Ping");
}

namespace {

void PutEdgeList(WireWriter* w,
                 const std::vector<std::pair<uint32_t, uint32_t>>& edges) {
  EDGESHED_CHECK(edges.size() <= kMaxPayloadBytes / 8)
      << "mutation edge list too large for one frame";
  w->PutU32(static_cast<uint32_t>(edges.size()));
  for (const auto& [u, v] : edges) {
    w->PutU32(u);
    w->PutU32(v);
  }
}

void GetEdgeList(WireReader* r,
                 std::vector<std::pair<uint32_t, uint32_t>>* edges) {
  const uint32_t count = r->GetU32();
  edges->clear();
  // 8 bytes per edge: never reserve more than the remaining payload can
  // hold, so a hostile count buys no allocation — the reads below trip the
  // reader's failure bit instead.
  edges->reserve(std::min<uint64_t>(count, r->remaining() / 8));
  for (uint32_t i = 0; i < count && r->ok(); ++i) {
    const uint32_t u = r->GetU32();
    const uint32_t v = r->GetU32();
    if (!r->ok()) break;
    edges->emplace_back(u, v);
  }
}

}  // namespace

std::string EncodeApplyMutationsRequest(const ApplyMutationsRequest& request) {
  WireWriter w;
  w.PutString(request.dataset);
  PutEdgeList(&w, request.inserts);
  PutEdgeList(&w, request.deletes);
  return w.Take();
}

Status DecodeApplyMutationsRequest(std::string_view payload,
                                   ApplyMutationsRequest* out) {
  WireReader r(payload);
  out->dataset = r.GetString();
  GetEdgeList(&r, &out->inserts);
  GetEdgeList(&r, &out->deletes);
  return r.Finish("ApplyMutationsRequest");
}

std::string EncodeApplyMutationsResponseBody(
    const ApplyMutationsResponse& response) {
  WireWriter w;
  w.PutU64(response.version);
  w.PutU64(response.live_edges);
  w.PutU64(response.overlay_inserted);
  w.PutU64(response.overlay_deleted);
  w.PutU8(response.compacting);
  return w.Take();
}

Status DecodeApplyMutationsResponseBody(std::string_view body,
                                        ApplyMutationsResponse* out) {
  WireReader r(body);
  out->version = r.GetU64();
  out->live_edges = r.GetU64();
  out->overlay_inserted = r.GetU64();
  out->overlay_deleted = r.GetU64();
  out->compacting = r.GetU8();
  return r.Finish("ApplyMutationsResponse");
}

namespace {

void PutResultSummary(WireWriter* w, const ResultSummary& summary) {
  w->PutU64(summary.job_id);
  w->PutU64(summary.kept_edges);
  w->PutDouble(summary.total_delta);
  w->PutDouble(summary.average_delta);
  w->PutDouble(summary.reduction_seconds);
  w->PutU8(summary.deduplicated ? 1 : 0);
  w->PutU32(static_cast<uint32_t>(summary.stats.size()));
  for (const auto& [name, value] : summary.stats) {
    w->PutString(name);
    w->PutDouble(value);
  }
  // v2 tail: the applied degradation record. Safe as an optional tail even
  // embedded in ShedResponse, because the summary is always that message's
  // last field.
  w->PutString(summary.applied_method);
  w->PutDouble(summary.applied_p);
  w->PutU8(summary.degrade_kind);
}

void GetResultSummary(WireReader* r, ResultSummary* out) {
  out->job_id = r->GetU64();
  out->kept_edges = r->GetU64();
  out->total_delta = r->GetDouble();
  out->average_delta = r->GetDouble();
  out->reduction_seconds = r->GetDouble();
  out->deduplicated = r->GetU8() != 0;
  const uint32_t stat_count = r->GetU32();
  out->stats.clear();
  // Each entry is at least 12 bytes (length prefix + double), so a bogus
  // count fails the bounds check within one iteration instead of reserving
  // attacker-chosen memory up front.
  for (uint32_t i = 0; i < stat_count && r->ok(); ++i) {
    std::string name = r->GetString();
    const double value = r->GetDouble();
    out->stats.emplace_back(std::move(name), value);
  }
  if (r->ok() && r->remaining() > 0) {  // v2 tail
    out->applied_method = r->GetString();
    out->applied_p = r->GetDouble();
    out->degrade_kind = r->GetU8();
  } else {
    out->applied_method.clear();
    out->applied_p = 0.0;
    out->degrade_kind = 0;
  }
}

}  // namespace

std::string EncodeResultSummaryBody(const ResultSummary& summary) {
  WireWriter w;
  PutResultSummary(&w, summary);
  return w.Take();
}

Status DecodeResultSummaryBody(std::string_view body, ResultSummary* out) {
  WireReader r(body);
  GetResultSummary(&r, out);
  return r.Finish("ResultSummary");
}

std::string EncodeShedResponseBody(const ShedResponse& response) {
  WireWriter w;
  w.PutU64(response.job_id);
  w.PutU8(response.has_result ? 1 : 0);
  if (response.has_result) PutResultSummary(&w, response.result);
  return w.Take();
}

Status DecodeShedResponseBody(std::string_view body, ShedResponse* out) {
  WireReader r(body);
  out->job_id = r.GetU64();
  out->has_result = r.GetU8() != 0;
  if (out->has_result) GetResultSummary(&r, &out->result);
  return r.Finish("ShedResponse");
}

std::string EncodeGetStatusResponseBody(const GetStatusResponse& response) {
  WireWriter w;
  w.PutU8(response.state);
  w.PutU8(response.code);
  w.PutString(response.message);
  w.PutU8(response.deduplicated ? 1 : 0);
  w.PutDouble(response.queue_seconds);
  w.PutDouble(response.run_seconds);
  // v2 tail, same shape as ResultSummary's.
  w.PutString(response.applied_method);
  w.PutDouble(response.applied_p);
  w.PutU8(response.degrade_kind);
  return w.Take();
}

Status DecodeGetStatusResponseBody(std::string_view body,
                                   GetStatusResponse* out) {
  WireReader r(body);
  out->state = r.GetU8();
  out->code = r.GetU8();
  out->message = r.GetString();
  out->deduplicated = r.GetU8() != 0;
  out->queue_seconds = r.GetDouble();
  out->run_seconds = r.GetDouble();
  if (r.ok() && r.remaining() > 0) {  // v2 tail
    out->applied_method = r.GetString();
    out->applied_p = r.GetDouble();
    out->degrade_kind = r.GetU8();
  } else {
    out->applied_method.clear();
    out->applied_p = 0.0;
    out->degrade_kind = 0;
  }
  return r.Finish("GetStatusResponse");
}

std::string EncodeListDatasetsResponseBody(
    const ListDatasetsResponse& response) {
  WireWriter w;
  w.PutU32(static_cast<uint32_t>(response.names.size()));
  for (const std::string& name : response.names) w.PutString(name);
  return w.Take();
}

Status DecodeListDatasetsResponseBody(std::string_view body,
                                      ListDatasetsResponse* out) {
  WireReader r(body);
  const uint32_t count = r.GetU32();
  out->names.clear();
  for (uint32_t i = 0; i < count && r.ok(); ++i) {
    out->names.push_back(r.GetString());
  }
  return r.Finish("ListDatasetsResponse");
}

// ---------------------------------------------------------------------------
// Response envelope

std::string EncodeResponsePayload(const Status& status,
                                  std::string_view body) {
  EDGESHED_CHECK(status.ok() || body.empty())
      << "error responses must not carry a body";
  WireWriter w;
  w.PutU8(WireCodeFromStatus(status.code()));
  // Truncate (rather than CHECK) pathological messages: the envelope must
  // always be encodable, whatever text a Status picked up along the way.
  std::string_view message = status.message();
  if (message.size() > kMaxStringBytes) {
    message = message.substr(0, kMaxStringBytes);
  }
  w.PutString(message);
  std::string out = w.Take();
  out.append(body);
  return out;
}

Status DecodeResponsePayload(std::string_view payload,
                             std::string_view* body) {
  WireReader r(payload);
  const uint8_t wire_code = r.GetU8();
  std::string message = r.GetString();
  if (!r.ok()) {
    *body = {};
    return Status::InvalidArgument("truncated response envelope");
  }
  auto code = StatusCodeFromWireCode(wire_code);
  if (!code.ok()) {
    *body = {};
    return code.status();
  }
  if (*code != StatusCode::kOk) {
    *body = {};
    return Status(*code, std::move(message));
  }
  *body = payload.substr(payload.size() - r.remaining());
  return Status::OK();
}

}  // namespace edgeshed::net
