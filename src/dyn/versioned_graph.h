#ifndef EDGESHED_DYN_VERSIONED_GRAPH_H_
#define EDGESHED_DYN_VERSIONED_GRAPH_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "common/statusor.h"
#include "dyn/delta_graph.h"
#include "graph/graph.h"
#include "graph/mutation_io.h"

namespace edgeshed::dyn {

/// A mutable, versioned dynamic graph: an immutable CSR base plus a chain of
/// immutable DeltaGraph overlays, one per applied batch (DESIGN.md §15).
///
/// Versioning and visibility: versions are monotone, starting at 0 for the
/// construction state; ApplyBatch(batch) -> version installs a new head
/// atomically. Snapshot() pins the head at call time — readers keep working
/// against exactly the version they started on no matter how many batches
/// or compactions land afterwards (snapshot isolation via shared_ptr
/// pinning; nothing is ever mutated in place).
///
/// Compaction folds the overlay into a fresh CSR via Graph::FromEdges — the
/// same parallel builder a from-scratch load uses, so the compacted base is
/// bit-identical to rebuilding from the live edge list. It triggers in the
/// background when the head's delta ratio crosses `compact_ratio` (or
/// synchronously via Compact()) and never changes version numbers: the head
/// after compaction represents the same live edge set, just with a
/// shallower overlay (batches applied while the compactor ran are replayed
/// on top of the new base).
struct VersionedGraphOptions {
  /// Background-compact when OverlaySize/live-edges exceeds this.
  double compact_ratio = 0.10;
  /// Master switch for the background compactor; Compact() always works.
  bool auto_compact = true;
  /// Batches retained for BatchesSince. Incremental consumers that fall
  /// further behind than this get nullopt and must do a full restart.
  size_t history_limit = 1024;
};

class VersionedGraph {
 public:
  using Options = VersionedGraphOptions;

  explicit VersionedGraph(graph::Graph base, Options options = {});
  explicit VersionedGraph(std::shared_ptr<const graph::Graph> base,
                          Options options = {});
  ~VersionedGraph();

  VersionedGraph(const VersionedGraph&) = delete;
  VersionedGraph& operator=(const VersionedGraph&) = delete;

  /// Applies one batch atomically and returns the new version. The batch is
  /// structurally validated (ValidateAndCanonicalizeBatch: canonical form,
  /// no self-loops, no within-batch duplicates) and semantically validated
  /// against the current head: every insert must be non-live, every delete
  /// live, and all endpoints within [0, NumNodes()) — the node set is fixed
  /// at construction. Any violation rejects the whole batch with
  /// InvalidArgument naming the offending pair; the head is unchanged.
  StatusOr<uint64_t> ApplyBatch(graph::MutationBatch batch);

  /// The current head, pinned. O(1); never blocks on compaction.
  std::shared_ptr<const DeltaGraph> Snapshot() const;

  uint64_t CurrentVersion() const;

  /// The batches applied after `version`, oldest first — empty when
  /// `version` is current, nullopt when history has been trimmed past it
  /// (caller must fall back to a full recompute).
  std::optional<std::vector<graph::MutationBatch>> BatchesSince(
      uint64_t version) const;

  /// Synchronous compaction of the current head (waits for any in-flight
  /// background compaction first). No-op on an empty overlay.
  Status Compact();

  /// Blocks until no background compaction is running.
  void WaitForCompaction();

  bool CompactionInProgress() const;

  const Options& options() const { return options_; }

 private:
  /// Builds the successor of `prev` with `batch` applied (batch already
  /// canonical). Pure; shares `prev`'s base. InvalidArgument on any
  /// non-live delete / already-live insert / out-of-range endpoint.
  static StatusOr<std::shared_ptr<const DeltaGraph>> ApplyToDelta(
      const DeltaGraph& prev, const graph::MutationBatch& batch);

  /// Installs `base` (the materialization of version `base_version`) as the
  /// new base and rebuilds the head by replaying every logged batch newer
  /// than `base_version`. Caller holds mu_.
  void InstallCompactedLocked(std::shared_ptr<const graph::Graph> base,
                              uint64_t base_version);

  void MaybeStartCompactionLocked();

  const Options options_;

  mutable std::mutex mu_;
  std::shared_ptr<const DeltaGraph> head_;

  struct LoggedBatch {
    uint64_t version;  // version this batch produced
    graph::MutationBatch batch;
  };
  /// Every batch newer than the current base's version, for compaction
  /// replay; trimmed on install. A bounded suffix of it doubles as the
  /// BatchesSince history.
  std::deque<LoggedBatch> log_;
  /// Versions <= this have been trimmed from log_ (history_limit).
  uint64_t trimmed_through_ = 0;
  /// Version the current base materializes (log entries <= this are not in
  /// log_ for replay purposes but may linger for history until trimmed).
  uint64_t base_version_ = 0;

  std::condition_variable compact_cv_;
  std::thread compactor_;
  bool compacting_ = false;
  bool compactor_joinable_ = false;
};

}  // namespace edgeshed::dyn

#endif  // EDGESHED_DYN_VERSIONED_GRAPH_H_
