#include "dyn/versioned_graph.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/check.h"

namespace edgeshed::dyn {
namespace {

std::string PairName(graph::NodeId u, graph::NodeId v) {
  return "{" + std::to_string(u) + ", " + std::to_string(v) + "}";
}

void InsertSortedNeighbor(
    std::unordered_map<graph::NodeId, std::vector<graph::NodeId>>* adj,
    graph::NodeId u, graph::NodeId v) {
  std::vector<graph::NodeId>& nbrs = (*adj)[u];
  nbrs.insert(std::lower_bound(nbrs.begin(), nbrs.end(), v), v);
}

void EraseSortedNeighbor(
    std::unordered_map<graph::NodeId, std::vector<graph::NodeId>>* adj,
    graph::NodeId u, graph::NodeId v) {
  const auto it = adj->find(u);
  EDGESHED_CHECK(it != adj->end());
  std::vector<graph::NodeId>& nbrs = it->second;
  const auto pos = std::lower_bound(nbrs.begin(), nbrs.end(), v);
  EDGESHED_CHECK(pos != nbrs.end() && *pos == v);
  nbrs.erase(pos);
  if (nbrs.empty()) adj->erase(it);
}

}  // namespace

VersionedGraph::VersionedGraph(graph::Graph base, Options options)
    : VersionedGraph(
          std::make_shared<const graph::Graph>(std::move(base)), options) {}

VersionedGraph::VersionedGraph(std::shared_ptr<const graph::Graph> base,
                               Options options)
    : options_(options) {
  EDGESHED_CHECK(base != nullptr);
  std::shared_ptr<DeltaGraph> head(new DeltaGraph());
  head->base_ = std::move(base);
  head->version_ = 0;
  head_ = std::move(head);
}

VersionedGraph::~VersionedGraph() { WaitForCompaction(); }

StatusOr<std::shared_ptr<const DeltaGraph>> VersionedGraph::ApplyToDelta(
    const DeltaGraph& prev, const graph::MutationBatch& batch) {
  std::shared_ptr<DeltaGraph> next(new DeltaGraph());
  next->base_ = prev.base_;
  next->version_ = prev.version_ + 1;
  next->inserted_ = prev.inserted_;
  next->inserted_keys_ = prev.inserted_keys_;
  next->deleted_ids_ = prev.deleted_ids_;
  next->ins_adj_ = prev.ins_adj_;
  next->del_adj_ = prev.del_adj_;

  const graph::Graph& base = *next->base_;
  const uint64_t num_nodes = base.NumNodes();
  for (const graph::Edge& e : batch.deletes) {
    if (e.u >= num_nodes || e.v >= num_nodes) {
      return Status::InvalidArgument(
          "mutation endpoint out of range in delete " + PairName(e.u, e.v) +
          ": graph has " + std::to_string(num_nodes) + " nodes");
    }
    const uint64_t key = graph::EdgeKey(e);
    if (next->inserted_keys_.erase(key) != 0) {
      // Deleting an overlay insert: the edge vanishes from the overlay.
      const auto pos = std::lower_bound(next->inserted_.begin(),
                                        next->inserted_.end(), e);
      EDGESHED_CHECK(pos != next->inserted_.end() && *pos == e);
      next->inserted_.erase(pos);
      EraseSortedNeighbor(&next->ins_adj_, e.u, e.v);
      EraseSortedNeighbor(&next->ins_adj_, e.v, e.u);
      continue;
    }
    const graph::EdgeId id = base.FindEdge(e.u, e.v);
    if (id == graph::kInvalidEdge || next->deleted_ids_.count(id) != 0) {
      return Status::InvalidArgument("delete of non-live edge " +
                                     PairName(e.u, e.v));
    }
    next->deleted_ids_.insert(id);
    InsertSortedNeighbor(&next->del_adj_, e.u, e.v);
    InsertSortedNeighbor(&next->del_adj_, e.v, e.u);
  }
  for (const graph::Edge& e : batch.inserts) {
    if (e.u >= num_nodes || e.v >= num_nodes) {
      return Status::InvalidArgument(
          "mutation endpoint out of range in insert " + PairName(e.u, e.v) +
          ": graph has " + std::to_string(num_nodes) +
          " nodes (the node set is fixed at construction)");
    }
    const uint64_t key = graph::EdgeKey(e);
    if (next->inserted_keys_.count(key) != 0) {
      return Status::InvalidArgument("insert of already-live edge " +
                                     PairName(e.u, e.v));
    }
    const graph::EdgeId id = base.FindEdge(e.u, e.v);
    if (id != graph::kInvalidEdge) {
      // Re-inserting a deleted base edge un-deletes it, so inserted_ never
      // collides with the base edge list (the merge invariants rely on it).
      if (next->deleted_ids_.erase(id) == 0) {
        return Status::InvalidArgument("insert of already-live edge " +
                                       PairName(e.u, e.v));
      }
      EraseSortedNeighbor(&next->del_adj_, e.u, e.v);
      EraseSortedNeighbor(&next->del_adj_, e.v, e.u);
      continue;
    }
    next->inserted_keys_.insert(key);
    next->inserted_.insert(
        std::lower_bound(next->inserted_.begin(), next->inserted_.end(), e),
        e);
    InsertSortedNeighbor(&next->ins_adj_, e.u, e.v);
    InsertSortedNeighbor(&next->ins_adj_, e.v, e.u);
  }
  return std::shared_ptr<const DeltaGraph>(std::move(next));
}

StatusOr<uint64_t> VersionedGraph::ApplyBatch(graph::MutationBatch batch) {
  EDGESHED_RETURN_IF_ERROR(graph::ValidateAndCanonicalizeBatch(&batch));
  std::unique_lock<std::mutex> lock(mu_);
  StatusOr<std::shared_ptr<const DeltaGraph>> next =
      ApplyToDelta(*head_, batch);
  if (!next.ok()) return next.status();
  head_ = std::move(next).value();
  log_.push_back(LoggedBatch{head_->version(), std::move(batch)});
  while (log_.size() > options_.history_limit &&
         log_.front().version <= base_version_) {
    trimmed_through_ = log_.front().version;
    log_.pop_front();
  }
  const uint64_t version = head_->version();
  MaybeStartCompactionLocked();
  return version;
}

std::shared_ptr<const DeltaGraph> VersionedGraph::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_;
}

uint64_t VersionedGraph::CurrentVersion() const {
  std::lock_guard<std::mutex> lock(mu_);
  return head_->version();
}

std::optional<std::vector<graph::MutationBatch>> VersionedGraph::BatchesSince(
    uint64_t version) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (version > head_->version()) return std::nullopt;
  if (version < trimmed_through_) return std::nullopt;
  std::vector<graph::MutationBatch> batches;
  for (const LoggedBatch& entry : log_) {
    if (entry.version > version) batches.push_back(entry.batch);
  }
  return batches;
}

void VersionedGraph::InstallCompactedLocked(
    std::shared_ptr<const graph::Graph> base, uint64_t base_version) {
  if (base_version <= base_version_ && base_version != 0) return;  // stale
  base_version_ = base_version;
  std::shared_ptr<DeltaGraph> fresh(new DeltaGraph());
  fresh->base_ = std::move(base);
  fresh->version_ = base_version;
  std::shared_ptr<const DeltaGraph> head(std::move(fresh));
  for (const LoggedBatch& entry : log_) {
    if (entry.version <= base_version) continue;
    StatusOr<std::shared_ptr<const DeltaGraph>> next =
        ApplyToDelta(*head, entry.batch);
    // The batch was validated when first applied, and replaying it onto a
    // base that materializes the same live edge set cannot newly fail.
    EDGESHED_CHECK(next.ok())
        << "compaction replay failed: " << next.status().ToString();
    head = std::move(next).value();
  }
  head_ = std::move(head);
  while (log_.size() > options_.history_limit &&
         log_.front().version <= base_version_) {
    trimmed_through_ = log_.front().version;
    log_.pop_front();
  }
}

void VersionedGraph::MaybeStartCompactionLocked() {
  if (!options_.auto_compact || compacting_) return;
  if (head_->OverlaySize() == 0 ||
      head_->DeltaRatio() <= options_.compact_ratio) {
    return;
  }
  if (compactor_joinable_) {
    // A previous compaction finished (compacting_ is false); its thread no
    // longer touches any shared state, so joining under mu_ cannot block on
    // anything that needs mu_.
    compactor_.join();
    compactor_joinable_ = false;
  }
  compacting_ = true;
  std::shared_ptr<const DeltaGraph> snap = head_;
  compactor_ = std::thread([this, snap] {
    StatusOr<graph::Graph> materialized = snap->Materialize();
    std::lock_guard<std::mutex> lock(mu_);
    if (materialized.ok()) {
      InstallCompactedLocked(std::make_shared<const graph::Graph>(
                                 std::move(materialized).value()),
                             snap->version());
    }
    compacting_ = false;
    compact_cv_.notify_all();
  });
  compactor_joinable_ = true;
}

Status VersionedGraph::Compact() {
  WaitForCompaction();
  std::shared_ptr<const DeltaGraph> snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (head_->OverlaySize() == 0) return Status::OK();
    snap = head_;
  }
  StatusOr<graph::Graph> materialized = snap->Materialize();
  if (!materialized.ok()) return materialized.status();
  std::lock_guard<std::mutex> lock(mu_);
  InstallCompactedLocked(std::make_shared<const graph::Graph>(
                             std::move(materialized).value()),
                         snap->version());
  return Status::OK();
}

void VersionedGraph::WaitForCompaction() {
  std::unique_lock<std::mutex> lock(mu_);
  compact_cv_.wait(lock, [this] { return !compacting_; });
  if (compactor_joinable_) {
    compactor_.join();
    compactor_joinable_ = false;
  }
}

bool VersionedGraph::CompactionInProgress() const {
  std::lock_guard<std::mutex> lock(mu_);
  return compacting_;
}

}  // namespace edgeshed::dyn
