#include "dyn/incremental_shed.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <functional>

#include "common/check.h"
#include "common/random.h"
#include "common/stopwatch.h"

namespace edgeshed::dyn {
namespace {

/// round(p·edges) clamped to [1, edges] on non-empty inputs — the same
/// target core::TargetEdgeCount computes from a Graph, expressed over a
/// live-edge count so the incremental path needs no materialized graph.
uint64_t TargetCount(uint64_t edges, double p) {
  if (edges == 0) return 0;
  const auto target = static_cast<uint64_t>(
      std::llround(p * static_cast<double>(edges)));
  return std::min(edges, std::max<uint64_t>(1, target));
}

/// Crr::StepsFor's arithmetic over a live-edge count.
uint64_t FullSteps(double multiplier, double p, uint64_t edges) {
  const double steps = multiplier * p * static_cast<double>(edges);
  return steps <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(steps));
}

/// LSD radix sort over 16-bit digits, with passes skipped above the top
/// set bit. BuildResult sorts ~|kept| packed edge keys on every reshed, so
/// this sits on the incremental hot path where it beats the comparison
/// sort severalfold; tiny inputs fall back to std::sort.
template <typename Word>
void RadixSortWords(std::vector<Word>* words) {
  if (words->size() < 4096) {
    std::sort(words->begin(), words->end());
    return;
  }
  Word max_word = 0;
  for (const Word word : *words) max_word = std::max(max_word, word);
  std::vector<Word> scratch(words->size());
  std::vector<uint32_t> counts(1u << 16);
  Word* src = words->data();
  Word* dst = scratch.data();
  int passes = 0;
  for (int shift = 0; shift < int{sizeof(Word)} * 8 &&
                      (max_word >> shift) != 0;
       shift += 16) {
    std::fill(counts.begin(), counts.end(), 0);
    for (size_t i = 0; i < words->size(); ++i) {
      ++counts[(src[i] >> shift) & 0xFFFF];
    }
    uint32_t running = 0;
    for (uint32_t& c : counts) {
      const uint32_t count = c;
      c = running;
      running += count;
    }
    for (size_t i = 0; i < words->size(); ++i) {
      dst[counts[(src[i] >> shift) & 0xFFFF]++] = src[i];
    }
    std::swap(src, dst);
    ++passes;
  }
  if (passes % 2 == 1) words->swap(scratch);
}

}  // namespace

ShedSession::ShedSession(std::shared_ptr<VersionedGraph> g,
                         DynamicShedOptions options)
    : graph_(std::move(g)), options_(std::move(options)) {
  EDGESHED_CHECK(graph_ != nullptr);
  const Status status = core::ValidatePreservationRatio(options_.p);
  EDGESHED_CHECK(status.ok()) << status.ToString();
}

uint64_t ShedSession::RefineKeptSet(std::vector<RankedEdge>* order,
                                    uint64_t target, uint64_t steps,
                                    uint64_t rng_seed) {
  const uint64_t excluded_count = order->size() - target;
  if (target == 0 || excluded_count == 0) return 0;
  Rng rng(rng_seed);
  uint64_t accepted = 0;
  for (uint64_t step = 0; step < steps; ++step) {
    const size_t kept_index = rng.UniformIndex(target);
    const size_t excluded_index = rng.UniformIndex(excluded_count);
    RankedEdge& kept_slot = (*order)[kept_index];
    RankedEdge& excluded_slot = (*order)[target + excluded_index];
    const RankedEdge removal = kept_slot;
    const RankedEdge addition = excluded_slot;
    // d1/d2 acceptance exactly as Crr::Shed Phase 2 (Algorithm 1 lines
    // 10-11) — the arithmetic must stay byte-for-byte equivalent or the
    // cold session stops matching core::Crr.
    const double d1 = disc_->RemovalDelta(removal.u(), removal.v());
    const double d2 = disc_->AdditionDelta(addition.u(), addition.v());
    const double combined = d1 + d2;
    const bool accept = options_.accept_zero_delta_swaps ? combined <= 0.0
                                                         : combined < 0.0;
    if (!accept) continue;
    disc_->RemoveEdge(removal.u(), removal.v());
    disc_->AddEdge(addition.u(), addition.v());
    // The two edges trade rank slots along with kept membership: each slot
    // keeps its eff (and the occupants swap scores), so "kept
    // set == top-round(p·E) by score" survives into the next incremental
    // pass. Without this that pass, which rebuilds its kept baseline from
    // the rank order, would silently undo every refinement swap and
    // regress total delta to the unrefined rank cut.
    std::swap(kept_slot.key, excluded_slot.key);
    kept_keys_.erase(removal.key);
    kept_keys_.insert(addition.key);
    std::swap(score_[removal.key], score_[addition.key]);
    ++accepted;
  }
  return accepted;
}

DynamicShedResult ShedSession::BuildResult(uint64_t version) const {
  DynamicShedResult result;
  result.version = version;
  // The kept set is exactly the order_ prefix (kept_keys_ mirrors it for
  // O(1) membership); reading it off the vector beats walking the hash set.
  EDGESHED_DCHECK(kept_keys_.size() == order_target_);
  uint64_t all_bits = 0;
  for (uint64_t i = 0; i < order_target_; ++i) all_bits |= order_[i].key;
  result.kept.reserve(order_target_);
  if ((all_bits & 0xFFFF0000ull) == 0 && (all_bits >> 48) == 0) {
    // Both endpoints fit in 16 bits: sort compact (u,v) ranks instead of
    // the full keys — half the radix passes on half the memory traffic,
    // and the lexicographic order is identical.
    std::vector<uint32_t> ranks;
    ranks.reserve(order_target_);
    for (uint64_t i = 0; i < order_target_; ++i) {
      const uint64_t key = order_[i].key;
      ranks.push_back(
          static_cast<uint32_t>(((key >> 32) << 16) | (key & 0xFFFFull)));
    }
    RadixSortWords(&ranks);
    for (const uint32_t rank : ranks) {
      result.kept.push_back(
          graph::Edge{static_cast<graph::NodeId>(rank >> 16),
                      static_cast<graph::NodeId>(rank & 0xFFFFu)});
    }
  } else {
    std::vector<uint64_t> keys;
    keys.reserve(order_target_);
    for (uint64_t i = 0; i < order_target_; ++i) {
      keys.push_back(order_[i].key);
    }
    RadixSortWords(&keys);
    for (const uint64_t key : keys) {
      result.kept.push_back(
          graph::Edge{static_cast<graph::NodeId>(key >> 32),
                      static_cast<graph::NodeId>(key & 0xFFFFFFFFull)});
    }
  }
  result.total_delta = disc_->TotalDelta();
  result.average_delta = disc_->AverageDelta();
  return result;
}

StatusOr<DynamicShedResult> ShedSession::FullShed(
    const std::shared_ptr<const DeltaGraph>& snap) {
  Stopwatch watch;
  const uint64_t version = snap->version();
  graph::Graph materialized;
  const graph::Graph* g = nullptr;
  if (snap->OverlaySize() == 0) {
    g = snap->base().get();
  } else {
    EDGESHED_ASSIGN_OR_RETURN(materialized, snap->Materialize());
    g = &materialized;
  }
  const uint64_t num_edges = g->NumEdges();

  analytics::BetweennessOptions betweenness = options_.betweenness;
  if (options_.threads > 0) betweenness.threads = options_.threads;
  double betweenness_seconds = 0.0;
  std::vector<graph::EdgeId> ranked;
  if (options_.rank_provider != nullptr) {
    StatusOr<core::EdgeRanking> ranking =
        options_.rank_provider(*g, betweenness, version);
    if (!ranking.ok()) return ranking.status();
    if (ranking->ids.size() != num_edges) {
      return Status::Internal(
          "rank provider returned a ranking of the wrong size");
    }
    ranked = std::move(ranking->ids);
    betweenness_seconds = ranking->seconds;
  } else {
    Stopwatch betweenness_watch;
    ranked = analytics::EdgesByBetweennessDescending(*g, betweenness);
    betweenness_seconds = betweenness_watch.ElapsedSeconds();
  }
  const uint64_t target = core::TargetEdgeCount(*g, options_.p);

  score_.clear();
  kept_keys_.clear();
  score_.reserve(num_edges);
  order_.clear();
  order_.reserve(num_edges);
  for (uint64_t i = 0; i < ranked.size(); ++i) {
    const graph::Edge& e = g->edge(ranked[i]);
    const uint64_t key = graph::EdgeKey(e);
    const auto slot_score = static_cast<double>(num_edges - i);
    score_[key] = slot_score;
    order_.push_back(RankedEdge{slot_score, key});
    if (i < target) kept_keys_.insert(key);
  }
  disc_.emplace(*g, options_.p);
  for (uint64_t i = 0; i < target; ++i) {
    disc_->AddEdge(order_[i].u(), order_[i].v());
  }

  const uint64_t steps =
      FullSteps(options_.steps_multiplier, options_.p, num_edges);
  const uint64_t accepted =
      RefineKeptSet(&order_, target, steps, options_.seed);
  order_target_ = target;

  have_state_ = true;
  state_version_ = version;
  DynamicShedResult result = BuildResult(version);
  result.snapshot = snap;
  result.full_rank = true;
  result.seconds = watch.ElapsedSeconds();
  result.stats = {
      {"betweenness_seconds", betweenness_seconds},
      {"steps", static_cast<double>(steps)},
      {"swaps_accepted", static_cast<double>(accepted)},
  };
  return result;
}

StatusOr<DynamicShedResult> ShedSession::IncrementalShed(
    const std::shared_ptr<const DeltaGraph>& snap,
    const std::vector<graph::MutationBatch>& batches,
    const std::vector<graph::NodeId>& dirty) {
  Stopwatch watch;
  const uint64_t version = snap->version();
  Stopwatch stage_watch;

  // Per-batch state maintenance: drop deleted edges from the score table
  // and the kept set, and collect the endpoints whose base degree changed.
  // `deleted` records each retired rank slot as (eff, key) — the merge pass
  // below locates retired slots in the maintained order by those effs.
  uint64_t mutation_count = 0;
  for (const graph::MutationBatch& batch : batches) {
    mutation_count += batch.size();
  }
  std::unordered_set<graph::NodeId> touched;
  touched.reserve(2 * mutation_count);
  std::vector<RankedEdge> deleted;
  deleted.reserve(mutation_count);
  for (const graph::MutationBatch& batch : batches) {
    for (const graph::Edge& e : batch.deletes) {
      touched.insert(e.u);
      touched.insert(e.v);
      const uint64_t key = graph::EdgeKey(e);
      const auto score_it = score_.find(key);
      if (score_it != score_.end()) {
        deleted.push_back(RankedEdge{score_it->second, key});
        score_.erase(score_it);
      }
      if (kept_keys_.erase(key) != 0) disc_->RemoveEdge(e.u, e.v);
    }
    for (const graph::Edge& e : batch.inserts) {
      touched.insert(e.u);
      touched.insert(e.v);
    }
  }
  // O(touched) discrepancy maintenance: only mutated endpoints change
  // their base degree, hence their expected-degree term.
  for (const graph::NodeId u : touched) {
    disc_->UpdateBaseDegree(u, snap->Degree(u));
  }

  // Dirty-region rank recompute: betweenness on the subgraph induced by
  // the dirty vertices, iterated straight off the overlay view. The
  // global->local id map is a direct-index array — the extraction loop
  // visits every dirty-vertex neighbor and a hash probe per visit is the
  // dominant cost on hub-heavy regions.
  const graph::NodeId kNotLocal = snap->NumNodes();
  std::vector<graph::NodeId> local_of(snap->NumNodes(), kNotLocal);
  for (size_t i = 0; i < dirty.size(); ++i) {
    local_of[dirty[i]] = static_cast<graph::NodeId>(i);
  }
  std::vector<graph::Edge> local_edges;
  std::vector<uint64_t> local_keys;  // aligned with local EdgeIds
  for (const graph::NodeId u : dirty) {
    const graph::NodeId lu = local_of[u];
    snap->ForEachNeighbor(u, [&](graph::NodeId n) {
      if (n <= u) return;
      const graph::NodeId ln = local_of[n];
      if (ln == kNotLocal) return;
      local_edges.push_back(graph::Edge{lu, ln});
      local_keys.push_back(graph::EdgeKey(u, n));
    });
  }
  const uint64_t dirty_edges = local_edges.size();
  const double region_seconds = stage_watch.ElapsedSeconds();
  double local_rank_seconds = 0.0;
  // The re-scored region in rank order (eff desc, key asc). Filled by the
  // splice below: slot values are globally distinct and handed out in
  // strictly descending order, so no sort is needed. fresh[0..found_count)
  // reuse slots that exist in the maintained order; the rest are net-new
  // extension slots below the region's floor.
  std::vector<RankedEdge> fresh;
  size_t found_count = 0;
  if (!local_edges.empty()) {
    // dirty is sorted and ForEachNeighbor ascends, so local_edges is
    // already canonical sorted order: FromEdges assigns EdgeId i to
    // local_edges[i] and local_keys stays aligned.
    StatusOr<graph::Graph> local = graph::Graph::FromEdges(
        static_cast<graph::NodeId>(dirty.size()), local_edges);
    EDGESHED_CHECK(local.ok())
        << "dirty-region subgraph build failed: " << local.status().ToString();
    analytics::BetweennessOptions betweenness = options_.betweenness;
    if (options_.threads > 0) betweenness.threads = options_.threads;
    // The local pass exists to undercut a full ranking. Exact Brandes
    // sweeps every region vertex, and uniform edge mutations bias the
    // region toward hubs, so a region well under exact_node_threshold can
    // still out-cost the sampled full pass it replaces. Spend sources in
    // proportion to the region's share of the graph — the source density a
    // sampled full ranking would give the same vertices — with a floor of
    // 64 so small regions keep a usable estimate.
    const uint64_t proportional = std::max<uint64_t>(
        64, static_cast<uint64_t>(std::llround(
                static_cast<double>(betweenness.sample_sources) *
                static_cast<double>(dirty.size()) /
                static_cast<double>(
                    std::max<uint64_t>(1, snap->NumNodes())))));
    betweenness.sample_sources =
        std::min<uint64_t>(betweenness.sample_sources, proportional);
    betweenness.exact_node_threshold = std::min<uint64_t>(
        betweenness.exact_node_threshold, betweenness.sample_sources);
    Stopwatch local_watch;
    const std::vector<graph::EdgeId> ranked_local =
        analytics::EdgesByBetweennessDescending(*local, betweenness);
    local_rank_seconds = local_watch.ElapsedSeconds();
    // Splice: the region's previous global rank positions become a slot
    // pool (extended below its floor for net-new edges), and the fresh
    // local order redistributes the slots. The rest of the ranking is
    // untouched, so one local pass costs O(dirty region), not O(E).
    std::vector<double> slots;
    slots.reserve(local_keys.size());
    for (const uint64_t key : local_keys) {
      const auto it = score_.find(key);
      if (it != score_.end()) slots.push_back(it->second);
    }
    std::sort(slots.begin(), slots.end(), std::greater<double>());
    found_count = slots.size();
    while (slots.size() < local_keys.size()) {
      slots.push_back((slots.empty() ? 0.0 : slots.back()) - 1.0);
    }
    fresh.reserve(ranked_local.size());
    for (size_t i = 0; i < ranked_local.size(); ++i) {
      const uint64_t key = local_keys[ranked_local[i]];
      score_[key] = slots[i];
      fresh.push_back(RankedEdge{slots[i], key});
    }
  }

  // Merge the re-scored region back into the maintained rank order — no
  // comparison sort, no global betweenness. Untouched edges keep their
  // relative order: between versions every untouched eff is scaled by the
  // same decay factor (1.0 without decay), which is monotone, so the merged
  // order is exactly the (eff desc, key asc) order a full re-sort would
  // produce. Kept membership is diffed in the same pass: an entry's old
  // membership is its old position against the old cut, its new one its
  // output position against the new cut.
  stage_watch.Restart();
  const double half_life = options_.decay_half_life;
  const double decay_factor =
      half_life > 0.0
          ? std::exp2(-static_cast<double>(version - state_version_) /
                      half_life)
          : 1.0;
  const auto ranks_before = [](const RankedEdge& a, const RankedEdge& b) {
    return a.eff != b.eff ? a.eff > b.eff : a.key < b.key;
  };
  EDGESHED_DCHECK(std::is_sorted(
      fresh.begin(), fresh.end(),
      [](const RankedEdge& a, const RankedEdge& b) { return a.eff > b.eff; }));

  const uint64_t live = snap->NumEdges();
  const uint64_t target = TargetCount(live, options_.p);
  std::vector<RankedEdge>& next = merge_scratch_;
  next.resize(live);
  size_t out = 0;
  const auto place = [&](const RankedEdge& e, bool was_kept) {
    const bool now_kept = out < target;
    if (now_kept != was_kept) {
      if (now_kept) {
        kept_keys_.insert(e.key);
        disc_->AddEdge(e.u(), e.v());
      } else {
        kept_keys_.erase(e.key);
        disc_->RemoveEdge(e.u(), e.v());
      }
    }
    EDGESHED_CHECK(out < next.size());
    next[out++] = e;
  };
  if (decay_factor == 1.0) {
    // Without decay the merged order differs from order_ only at event
    // positions: deleted slots vanish, the dirty region's reused slots keep
    // their positions and swap occupants, and extension slots splice in
    // near the bottom. One pass locates every event; a second pass memcpys
    // the untouched runs between events and patches kept membership only
    // where a run's constant shift moves entries across the cut. That
    // drops the per-entry emit work — the dominant cost of re-streaming
    // all |E| slots — for the untouched bulk.
    //
    // Eff values are NOT globally unique — an extension slot mints
    // floor-1, floor-2, ... over the dense initial score range, so a later
    // re-shed can see the same eff on unrelated edges. Matching is
    // therefore key-aware: a retired slot must match (eff, key), scanning
    // its equal-eff window, and a donor slot is confirmed by region-key
    // membership before it consumes the aligned fresh entry. Donor entries
    // appear in order_ in descending-eff order and their eff multiset is
    // exactly slots[0..found_count), so the fd pointer stays aligned.
    struct MergeEvent {
      size_t pos;
      enum Kind : uint8_t { kRemove, kReplace, kInsert } kind;
      uint32_t fresh_index;
    };
    std::sort(deleted.begin(), deleted.end(), ranks_before);
    std::unordered_set<uint64_t> region_keys(local_keys.begin(),
                                             local_keys.end());
    std::vector<MergeEvent> events;
    events.reserve(deleted.size() + fresh.size());
    size_t di = 0;
    size_t fd = 0;            // donor fresh pointer, fresh[0..found_count)
    size_t fe = found_count;  // extension fresh pointer
    for (size_t p = 0; p < order_.size(); ++p) {
      if (di == deleted.size() && fd == found_count && fe == fresh.size()) {
        break;  // no events left; the rest of the order is one final run
      }
      const RankedEdge& entry = order_[p];
      if (di < deleted.size() && deleted[di].eff == entry.eff) {
        size_t dj = di;
        while (dj < deleted.size() && deleted[dj].eff == entry.eff &&
               deleted[dj].key != entry.key) {
          ++dj;
        }
        if (dj < deleted.size() && deleted[dj].eff == entry.eff) {
          std::swap(deleted[di], deleted[dj]);
          events.push_back({p, MergeEvent::kRemove, 0});
          ++di;
          continue;
        }
      }
      if (fd < found_count && fresh[fd].eff == entry.eff &&
          region_keys.count(entry.key) != 0) {
        events.push_back({p, MergeEvent::kReplace, static_cast<uint32_t>(fd)});
        ++fd;
        continue;
      }
      // Extension inserts compare against survivors only, after the stale
      // checks: every extension eff is strictly below every donor eff, so
      // nothing here can outrank a replacement at this position.
      while (fe < fresh.size() && ranks_before(fresh[fe], entry)) {
        events.push_back({p, MergeEvent::kInsert, static_cast<uint32_t>(fe)});
        ++fe;
      }
    }
    EDGESHED_DCHECK(di == deleted.size());
    EDGESHED_DCHECK(fd == found_count);
    for (; fe < fresh.size(); ++fe) {
      events.push_back(
          {order_.size(), MergeEvent::kInsert, static_cast<uint32_t>(fe)});
    }
    size_t src = 0;
    const auto copy_run = [&](size_t end_pos) {
      if (end_pos == src) return;
      // Entries in [src, end_pos) shift by out - src, so membership flips
      // exactly where the shifted position crosses the cut.
      const auto old_cut = static_cast<std::ptrdiff_t>(order_target_);
      const auto new_cut = static_cast<std::ptrdiff_t>(target) -
                           (static_cast<std::ptrdiff_t>(out) -
                            static_cast<std::ptrdiff_t>(src));
      if (new_cut != old_cut) {
        const std::ptrdiff_t lo = std::max<std::ptrdiff_t>(
            std::min(old_cut, new_cut), static_cast<std::ptrdiff_t>(src));
        const std::ptrdiff_t hi = std::min<std::ptrdiff_t>(
            std::max(old_cut, new_cut), static_cast<std::ptrdiff_t>(end_pos));
        for (std::ptrdiff_t p = lo; p < hi; ++p) {
          const RankedEdge& e = order_[p];
          if (new_cut > old_cut) {
            kept_keys_.insert(e.key);
            disc_->AddEdge(e.u(), e.v());
          } else {
            kept_keys_.erase(e.key);
            disc_->RemoveEdge(e.u(), e.v());
          }
        }
      }
      std::memcpy(next.data() + out, order_.data() + src,
                  (end_pos - src) * sizeof(RankedEdge));
      out += end_pos - src;
      src = end_pos;
    };
    for (const MergeEvent& ev : events) {
      copy_run(ev.pos);
      switch (ev.kind) {
        case MergeEvent::kRemove:
          ++src;
          break;
        case MergeEvent::kReplace:
          place(fresh[ev.fresh_index],
                kept_keys_.count(fresh[ev.fresh_index].key) != 0);
          ++src;
          break;
        case MergeEvent::kInsert:
          place(fresh[ev.fresh_index],
                kept_keys_.count(fresh[ev.fresh_index].key) != 0);
          break;
      }
    }
    copy_run(order_.size());
  } else {
    // Decay rescales every untouched eff, so the whole order has to be
    // re-streamed against the fresh region. `stale` marks every key whose
    // old rank slot is invalid; a stale key has both endpoints dirty, so a
    // bit mask over the dirty vertices — |V|/8 bytes, small enough to sit
    // in L1 — screens out the per-entry hash probe for the untouched bulk.
    std::unordered_set<uint64_t> stale;
    stale.reserve(deleted.size() + local_keys.size());
    for (const RankedEdge& d : deleted) stale.insert(d.key);
    for (const uint64_t key : local_keys) stale.insert(key);
    std::vector<uint64_t> dirty_bits((snap->NumNodes() + 63) / 64, 0);
    for (const graph::NodeId u : dirty) {
      dirty_bits[u >> 6] |= uint64_t{1} << (u & 63);
    }
    const auto is_dirty = [&](graph::NodeId u) {
      return ((dirty_bits[u >> 6] >> (u & 63)) & 1) != 0;
    };
    size_t fi = 0;
    for (size_t oi = 0; oi < order_.size(); ++oi) {
      RankedEdge entry = order_[oi];
      if (is_dirty(entry.u()) && is_dirty(entry.v()) &&
          stale.count(entry.key) != 0) {
        continue;
      }
      entry.eff *= decay_factor;
      while (fi < fresh.size() && ranks_before(fresh[fi], entry)) {
        place(fresh[fi], kept_keys_.count(fresh[fi].key) != 0);
        ++fi;
      }
      place(entry, oi < order_target_);
    }
    for (; fi < fresh.size(); ++fi) {
      place(fresh[fi], kept_keys_.count(fresh[fi].key) != 0);
    }
  }
  EDGESHED_CHECK(out == live)
      << "merged rank order has " << out << " edges, snapshot has " << live;
  order_.swap(next);
  const double merge_seconds = stage_watch.ElapsedSeconds();

  // O(batch)-bounded swap refinement over the fresh baseline.
  const uint64_t full_steps =
      FullSteps(options_.steps_multiplier, options_.p, live);
  const double batch_budget = options_.steps_multiplier *
                              options_.incremental_steps_factor *
                              static_cast<double>(mutation_count);
  const uint64_t steps = std::min(
      full_steps, static_cast<uint64_t>(std::llround(batch_budget)));
  const uint64_t rng_seed =
      options_.seed ^ (0x9e3779b97f4a7c15ULL * version);
  stage_watch.Restart();
  const uint64_t accepted = RefineKeptSet(&order_, target, steps, rng_seed);
  const double refine_seconds = stage_watch.ElapsedSeconds();
  order_target_ = target;

  state_version_ = version;
  stage_watch.Restart();
  DynamicShedResult result = BuildResult(version);
  const double result_seconds = stage_watch.ElapsedSeconds();
  result.snapshot = snap;
  result.full_rank = false;
  result.dirty_vertices = dirty.size();
  result.dirty_edges = dirty_edges;
  result.seconds = watch.ElapsedSeconds();
  result.stats = {
      {"mutations", static_cast<double>(mutation_count)},
      {"dirty_vertices", static_cast<double>(dirty.size())},
      {"dirty_edges", static_cast<double>(dirty_edges)},
      {"fresh_edges", static_cast<double>(fresh.size())},
      {"region_seconds", region_seconds},
      {"local_rank_seconds", local_rank_seconds},
      {"merge_seconds", merge_seconds},
      {"refine_seconds", refine_seconds},
      {"result_seconds", result_seconds},
      {"steps", static_cast<double>(steps)},
      {"swaps_accepted", static_cast<double>(accepted)},
  };
  return result;
}

StatusOr<DynamicShedResult> ShedSession::Reshed() {
  const std::shared_ptr<const DeltaGraph> snap = graph_->Snapshot();
  if (!have_state_) return FullShed(snap);
  const std::optional<std::vector<graph::MutationBatch>> batches =
      graph_->BatchesSince(state_version_);
  // History trimmed past this session (or the graph was swapped under it):
  // full restart.
  if (!batches.has_value()) return FullShed(snap);
  if (batches->empty()) {
    DynamicShedResult result = BuildResult(snap->version());
    result.snapshot = snap;
    result.stats = {{"noop", 1.0}};
    return result;
  }

  std::unordered_set<graph::NodeId> dirty_set;
  size_t mutation_total = 0;
  for (const graph::MutationBatch& batch : *batches) {
    mutation_total += batch.size();
  }
  dirty_set.reserve(2 * mutation_total);
  for (const graph::MutationBatch& batch : *batches) {
    for (const auto* side : {&batch.inserts, &batch.deletes}) {
      for (const graph::Edge& e : *side) {
        dirty_set.insert(e.u);
        dirty_set.insert(e.v);
      }
    }
  }
  if (options_.dirty_hops > 0) {
    std::vector<graph::NodeId> frontier(dirty_set.begin(), dirty_set.end());
    for (uint32_t hop = 0; hop < options_.dirty_hops && !frontier.empty();
         ++hop) {
      std::vector<graph::NodeId> next;
      for (const graph::NodeId u : frontier) {
        snap->ForEachNeighbor(u, [&](graph::NodeId n) {
          if (dirty_set.insert(n).second) next.push_back(n);
        });
      }
      frontier = std::move(next);
    }
  }
  const uint64_t num_nodes = snap->NumNodes();
  const double dirty_fraction =
      static_cast<double>(dirty_set.size()) /
      static_cast<double>(num_nodes == 0 ? 1 : num_nodes);
  if (dirty_fraction > options_.full_rank_dirty_bound) return FullShed(snap);

  std::vector<graph::NodeId> dirty(dirty_set.begin(), dirty_set.end());
  std::sort(dirty.begin(), dirty.end());
  return IncrementalShed(snap, *batches, dirty);
}

}  // namespace edgeshed::dyn
