#ifndef EDGESHED_DYN_DELTA_GRAPH_H_
#define EDGESHED_DYN_DELTA_GRAPH_H_

#include <cstdint>
#include <memory>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/statusor.h"
#include "graph/graph.h"
#include "graph/mutation_io.h"

namespace edgeshed::dyn {

/// One immutable version of a dynamic graph: a hash-indexed delta overlay on
/// top of a shared immutable CSR base (DESIGN.md §15).
///
/// A DeltaGraph is the subsystem's `GraphView`: it exposes the same accessor
/// shapes as `graph::Graph` (NumNodes/NumEdges/Degree/HasEdge plus sorted
/// neighbor and canonical edge iteration), so view-aware kernels — the
/// incremental shedder's degree-discrepancy maintenance and dirty-region
/// BFS — run on it without materializing a CSR. Iteration order is exactly
/// the order a from-scratch `Graph::FromEdges` build over the live edge set
/// would produce, which is what makes `Materialize()` bit-identical to a
/// rebuild and the overlay-vs-rebuild equivalence suite meaningful.
///
/// Instances are created only by `VersionedGraph` and are immutable
/// afterwards; readers pin a version by holding the shared_ptr returned
/// from `VersionedGraph::Snapshot()`. The base Graph is held by shared_ptr
/// too, so a snapshot keeps a replaced/compacted (possibly mmap-backed)
/// base alive for as long as any reader needs it.
class DeltaGraph {
 public:
  uint64_t version() const { return version_; }
  const std::shared_ptr<const graph::Graph>& base() const { return base_; }

  uint64_t NumNodes() const { return base_->NumNodes(); }
  uint64_t NumEdges() const {
    return base_->NumEdges() - deleted_ids_.size() + inserted_.size();
  }

  uint64_t Degree(graph::NodeId u) const {
    return base_->Degree(u) - DeletedAdj(u).size() + InsertedAdj(u).size();
  }

  /// True iff {u, v} is live in this version.
  bool HasEdge(graph::NodeId u, graph::NodeId v) const {
    if (inserted_keys_.count(graph::EdgeKey(u, v)) != 0) return true;
    const graph::EdgeId id = base_->FindEdge(u, v);
    return id != graph::kInvalidEdge && deleted_ids_.count(id) == 0;
  }

  /// Overlay size: edges inserted plus edges deleted relative to the base.
  uint64_t OverlaySize() const {
    return inserted_.size() + deleted_ids_.size();
  }

  /// Overlay size over live edge count — the compaction trigger input.
  double DeltaRatio() const {
    const uint64_t live = NumEdges();
    return static_cast<double>(OverlaySize()) /
           static_cast<double>(live == 0 ? 1 : live);
  }

  /// Calls `fn(NodeId)` for every live neighbor of `u`, ascending — the
  /// same order Graph::Neighbors would give on the materialized graph.
  /// Three-way sorted merge: base neighbors minus the deleted skip-list,
  /// interleaved with inserted neighbors. Inserted edges are never base
  /// edges (re-inserting a deleted base edge un-deletes it instead), so
  /// the merge never sees equal keys.
  template <typename Fn>
  void ForEachNeighbor(graph::NodeId u, Fn&& fn) const {
    const std::span<const graph::NodeId> base_nbrs = base_->Neighbors(u);
    const std::span<const graph::NodeId> del = DeletedAdj(u);
    const std::span<const graph::NodeId> ins = InsertedAdj(u);
    size_t bi = 0;
    size_t di = 0;
    size_t ii = 0;
    while (bi < base_nbrs.size() || ii < ins.size()) {
      const bool take_base =
          bi < base_nbrs.size() &&
          (ii >= ins.size() || base_nbrs[bi] < ins[ii]);
      if (take_base) {
        const graph::NodeId n = base_nbrs[bi++];
        while (di < del.size() && del[di] < n) ++di;
        if (di < del.size() && del[di] == n) {
          ++di;
          continue;
        }
        fn(n);
      } else {
        fn(ins[ii++]);
      }
    }
  }

  /// Calls `fn(const Edge&)` for every live edge in canonical sorted order —
  /// exactly the edges() order of the materialized graph. Sorted merge of
  /// the base edge list (skipping deleted ids) with the sorted insert list.
  template <typename Fn>
  void ForEachLiveEdge(Fn&& fn) const {
    const std::span<const graph::Edge> base_edges = base_->edges();
    size_t bi = 0;
    size_t ii = 0;
    while (bi < base_edges.size() || ii < inserted_.size()) {
      const bool take_base =
          bi < base_edges.size() &&
          (ii >= inserted_.size() || base_edges[bi] < inserted_[ii]);
      if (take_base) {
        const graph::EdgeId id = static_cast<graph::EdgeId>(bi);
        const graph::Edge& e = base_edges[bi++];
        if (deleted_ids_.count(id) != 0) continue;
        fn(e);
      } else {
        fn(inserted_[ii++]);
      }
    }
  }

  /// The live edge set in canonical sorted order.
  std::vector<graph::Edge> LiveEdges() const;

  /// Folds the overlay into a fresh owned CSR. Bit-identical to
  /// Graph::FromEdges(NumNodes(), <live edges from scratch>) because the
  /// live edges are already canonical, sorted, and duplicate-free.
  StatusOr<graph::Graph> Materialize() const;

  /// Edges inserted relative to the base, canonical sorted order.
  const std::vector<graph::Edge>& inserted() const { return inserted_; }
  /// Base EdgeIds deleted in this version.
  const std::unordered_set<graph::EdgeId>& deleted_ids() const {
    return deleted_ids_;
  }

 private:
  friend class VersionedGraph;

  DeltaGraph() = default;

  std::span<const graph::NodeId> InsertedAdj(graph::NodeId u) const {
    const auto it = ins_adj_.find(u);
    return it == ins_adj_.end() ? std::span<const graph::NodeId>()
                                : std::span<const graph::NodeId>(it->second);
  }
  std::span<const graph::NodeId> DeletedAdj(graph::NodeId u) const {
    const auto it = del_adj_.find(u);
    return it == del_adj_.end() ? std::span<const graph::NodeId>()
                                : std::span<const graph::NodeId>(it->second);
  }

  std::shared_ptr<const graph::Graph> base_;
  uint64_t version_ = 0;

  // Inserted edges: canonical sorted list + packed-key hash index.
  std::vector<graph::Edge> inserted_;
  std::unordered_set<uint64_t> inserted_keys_;
  // Deleted base edges by EdgeId, plus a per-vertex sorted skip-list of
  // deleted neighbors (the degree adjustment and merge input).
  std::unordered_set<graph::EdgeId> deleted_ids_;
  std::unordered_map<graph::NodeId, std::vector<graph::NodeId>> ins_adj_;
  std::unordered_map<graph::NodeId, std::vector<graph::NodeId>> del_adj_;
};

}  // namespace edgeshed::dyn

#endif  // EDGESHED_DYN_DELTA_GRAPH_H_
