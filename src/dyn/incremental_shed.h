#ifndef EDGESHED_DYN_INCREMENTAL_SHED_H_
#define EDGESHED_DYN_INCREMENTAL_SHED_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "analytics/betweenness.h"
#include "common/statusor.h"
#include "core/discrepancy.h"
#include "core/shedding.h"
#include "dyn/versioned_graph.h"

namespace edgeshed::dyn {

/// Rank provider for dynamic sessions: core::RankProvider's shape with the
/// graph version appended. The service wires this to the PR 7 RankCache
/// with the version in place of the GraphStore generation, so full ranking
/// passes are shared across sessions and with plain CRR jobs at the same
/// version.
using VersionedRankProvider = std::function<StatusOr<core::EdgeRanking>(
    const graph::Graph&, const analytics::BetweennessOptions&,
    uint64_t version)>;

struct DynamicShedOptions {
  double p = 0.5;
  /// Phase-2 swap seed for the cold full shed. Incremental re-sheds fork a
  /// per-version seed from it so repeated re-sheds don't replay one chain.
  uint64_t seed = 42;
  analytics::BetweennessOptions betweenness =
      analytics::BetweennessOptions::FastRanking();
  double steps_multiplier = 10.0;
  /// Swap budget of an incremental re-shed, as a multiple of the mutation
  /// count: steps = min(full-run steps, round(steps_multiplier *
  /// incremental_steps_factor * mutations)). Keeps refinement O(batch):
  /// 20 swap attempts per mutation at the defaults, which holds the kept
  /// set inside the cold self-overlap ceiling (bench_dynamic gates this).
  double incremental_steps_factor = 2.0;
  /// Dirty-region growth: BFS hops from mutated endpoints on the view.
  /// 0 = the touched endpoints only (DESIGN.md §15 explains the default).
  uint32_t dirty_hops = 0;
  /// Fall back to a full ranking pass when dirty vertices exceed this
  /// fraction of |V| — the bounded-staleness escape hatch.
  double full_rank_dirty_bound = 0.25;
  /// Half-life of edge utility in *versions* for sliding-window scenarios:
  /// at re-rank time an edge's score is weighted by
  /// 2^-((version - last_touched) / half_life), so edges untouched for many
  /// versions age out of the kept set in favor of recently active ones.
  /// 0 disables decay.
  double decay_half_life = 0.0;
  /// Worker threads for ranking passes (0 = default).
  int threads = 0;
  /// Phase-2 acceptance ablation, as CrrOptions::accept_zero_delta_swaps.
  bool accept_zero_delta_swaps = false;
  /// Optional shared ranking source for full passes; when unset the session
  /// computes EdgesByBetweennessDescending inline.
  VersionedRankProvider rank_provider;
};

struct DynamicShedResult {
  /// Kept edges, canonical (u < v), sorted ascending.
  std::vector<graph::Edge> kept;
  double total_delta = 0.0;
  double average_delta = 0.0;
  double seconds = 0.0;
  /// True when this re-shed ran a full ranking pass (cold start, trimmed
  /// history, or dirty region over the bound); false for incremental.
  bool full_rank = false;
  /// Version this result reflects.
  uint64_t version = 0;
  /// The pinned view the result was computed against (its version() ==
  /// `version`), so callers can map `kept` onto canonical EdgeIds of the
  /// materialized graph without racing later batches.
  std::shared_ptr<const DeltaGraph> snapshot;
  uint64_t dirty_vertices = 0;
  uint64_t dirty_edges = 0;
  std::vector<std::pair<std::string, double>> stats;
};

/// A long-lived re-shedding session over one VersionedGraph (DESIGN.md §15).
///
/// The first Reshed() is a cold CRR run: rank every edge, keep the top
/// round(p·|E|), refine with the paper's swap chain. It is engineered to be
/// *bit-identical in kept edges* to core::Crr::Shed on the same graph, seed
/// and options (same ranking, same rng stream, same acceptance arithmetic),
/// so a session answers exactly what a from-scratch job would.
///
/// Subsequent Reshed() calls are incremental: the session pulls the batches
/// applied since its last version, updates the degree-discrepancy terms in
/// O(touched vertices), recomputes edge ranks only inside the dirty region
/// (touched endpoints plus `dirty_hops` BFS levels on the overlay view) by
/// running betweenness on the induced dirty subgraph and splicing the fresh
/// local order into the retained global rank positions, merges the
/// re-scored region back into the maintained global rank order with an
/// event-driven pass (untouched runs between deleted/reassigned slots are
/// block-copied and their kept membership patched only at the cut — no
/// comparison sort, no global betweenness), and runs an O(batch)-bounded
/// swap refinement. When the dirty region exceeds `full_rank_dirty_bound` — or
/// history was trimmed past the session — it falls back to a full pass.
///
/// Sessions are deterministic: the same initial graph, batch sequence, and
/// options yield the same kept set on every run and thread count. Not
/// thread-safe; callers serialize Reshed() per session.
class ShedSession {
 public:
  ShedSession(std::shared_ptr<VersionedGraph> g, DynamicShedOptions options);

  /// Re-sheds against the current version. See class comment.
  StatusOr<DynamicShedResult> Reshed();

  bool has_state() const { return have_state_; }
  uint64_t state_version() const { return state_version_; }
  const DynamicShedOptions& options() const { return options_; }

 private:
  /// One slot of the maintained global rank order. `eff` is the effective
  /// (decay-weighted) score the slot held at state_version_; the key packs
  /// the canonical endpoints of the edge currently occupying the slot.
  /// 16 bytes on purpose: the merge pass streams |E| of these.
  struct RankedEdge {
    double eff;
    uint64_t key;
    graph::NodeId u() const { return static_cast<graph::NodeId>(key >> 32); }
    graph::NodeId v() const {
      return static_cast<graph::NodeId>(key & 0xFFFFFFFFull);
    }
  };

  StatusOr<DynamicShedResult> FullShed(
      const std::shared_ptr<const DeltaGraph>& snap);
  StatusOr<DynamicShedResult> IncrementalShed(
      const std::shared_ptr<const DeltaGraph>& snap,
      const std::vector<graph::MutationBatch>& batches,
      const std::vector<graph::NodeId>& dirty);

  /// Runs `steps` swap attempts over `order` split at `target` (positions
  /// < target are kept, the rest excluded), mutating disc_ and the slots'
  /// occupants; returns swaps accepted. An accepted swap trades the two
  /// edges between their slots — membership and score — while
  /// each slot keeps its eff, so "kept == top-target by score" survives.
  uint64_t RefineKeptSet(std::vector<RankedEdge>* order, uint64_t target,
                         uint64_t steps, uint64_t rng_seed);

  DynamicShedResult BuildResult(uint64_t version) const;

  std::shared_ptr<VersionedGraph> graph_;
  const DynamicShedOptions options_;

  bool have_state_ = false;
  uint64_t state_version_ = 0;
  /// Rank-position scores keyed by packed edge key: the edge ranked i-th of
  /// E in the last full pass scored E - i; incremental splices reuse the
  /// dirty region's score slots. Higher = kept first.
  std::unordered_map<uint64_t, double> score_;
  std::unordered_set<uint64_t> kept_keys_;
  /// Every live edge in rank order (eff desc, key asc) as of
  /// state_version_; the first order_target_ entries are the kept set.
  /// Incremental passes maintain it by linear merge instead of re-sorting:
  /// between versions every untouched eff is scaled by the same decay
  /// factor, which preserves relative order.
  std::vector<RankedEdge> order_;
  uint64_t order_target_ = 0;
  /// Merge-pass double buffer: reusing the retired order keeps the
  /// per-reshed cost free of a |E|-sized allocation.
  std::vector<RankedEdge> merge_scratch_;
  std::optional<core::DegreeDiscrepancy> disc_;
};

}  // namespace edgeshed::dyn

#endif  // EDGESHED_DYN_INCREMENTAL_SHED_H_
