#include "dyn/delta_graph.h"

namespace edgeshed::dyn {

std::vector<graph::Edge> DeltaGraph::LiveEdges() const {
  std::vector<graph::Edge> live;
  live.reserve(NumEdges());
  ForEachLiveEdge([&](const graph::Edge& e) { live.push_back(e); });
  return live;
}

StatusOr<graph::Graph> DeltaGraph::Materialize() const {
  return graph::Graph::FromEdges(static_cast<graph::NodeId>(NumNodes()),
                                 LiveEdges());
}

}  // namespace edgeshed::dyn
