#include "core/bounds.h"

#include "common/check.h"

namespace edgeshed::core {

namespace {

double EdgesPerNode(const graph::Graph& g) {
  EDGESHED_CHECK_GT(g.NumNodes(), 0u);
  return static_cast<double>(g.NumEdges()) /
         static_cast<double>(g.NumNodes());
}

}  // namespace

double CrrAverageDeltaBound(const graph::Graph& g, double p) {
  return 4.0 * p * (1.0 - p) * EdgesPerNode(g);
}

double Bm2AverageDeltaBound(const graph::Graph& g, double p) {
  return 0.5 + (1.0 - p) * EdgesPerNode(g);
}

}  // namespace edgeshed::core
