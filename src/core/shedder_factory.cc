#include "core/shedder_factory.h"

#include <algorithm>

#include "common/strings.h"
#include "core/bm2.h"
#include "core/crr.h"
#include "core/extra_baselines.h"
#include "core/random_shedding.h"

namespace edgeshed::core {

StatusOr<std::unique_ptr<EdgeShedder>> MakeShedderByName(
    const std::string& method, uint64_t seed) {
  std::unique_ptr<EdgeShedder> shedder;
  if (method == "crr") {
    CrrOptions options;
    options.seed = seed;
    shedder = std::make_unique<Crr>(options);
  } else if (method == "crr-rank") {
    // CRR's deterministic Phase-1 core: keep the top round(p·|E|) edges by
    // betweenness, no Phase-2 rewiring. Structure-driven and seed-stable,
    // which makes it the fidelity yardstick for distributed shedding —
    // full CRR's random swaps cap kept-set overlap near its own
    // seed-to-seed self-overlap (~0.58 at p=0.5), so sharded-vs-single
    // comparisons use this core to isolate what partitioning costs
    // (bench_dist_fleet, DESIGN.md §11).
    CrrOptions options;
    options.seed = seed;
    options.steps_override = 0;
    shedder = std::make_unique<Crr>(options);
  } else if (method == "bm2") {
    Bm2Options options;
    options.seed = seed;
    shedder = std::make_unique<Bm2>(options);
  } else if (method == "random") {
    shedder = std::make_unique<RandomShedding>(seed);
  } else if (method == "local-degree") {
    shedder = std::make_unique<LocalDegreeShedding>();
  } else if (method == "spanning-forest") {
    shedder = std::make_unique<SpanningForestShedding>(seed);
  } else {
    return Status::InvalidArgument(StrFormat(
        "unknown shedding method '%s' (known: %s)", method.c_str(),
        StrJoin(KnownShedderNames(), ", ").c_str()));
  }
  return shedder;
}

std::vector<std::string> KnownShedderNames() {
  return {"bm2", "crr", "crr-rank", "local-degree", "random",
          "spanning-forest"};
}

const std::vector<std::string>& ShedderCostLadder() {
  static const std::vector<std::string> ladder = {"crr", "bm2", "local-degree",
                                                  "random"};
  return ladder;
}

int ShedderCostTier(const std::string& method) {
  const std::vector<std::string>& ladder = ShedderCostLadder();
  for (size_t i = 0; i < ladder.size(); ++i) {
    if (ladder[i] == method) return static_cast<int>(i);
  }
  return -1;
}

std::string DegradeShedderMethod(const std::string& method, int steps) {
  const int tier = ShedderCostTier(method);
  if (tier < 0 || steps <= 0) return method;
  const std::vector<std::string>& ladder = ShedderCostLadder();
  const size_t target = std::min(ladder.size() - 1,
                                 static_cast<size_t>(tier) +
                                     static_cast<size_t>(steps));
  return ladder[target];
}

}  // namespace edgeshed::core
