#include "core/shedder_factory.h"

#include "common/strings.h"
#include "core/bm2.h"
#include "core/crr.h"
#include "core/extra_baselines.h"
#include "core/random_shedding.h"

namespace edgeshed::core {

StatusOr<std::unique_ptr<EdgeShedder>> MakeShedderByName(
    const std::string& method, uint64_t seed) {
  std::unique_ptr<EdgeShedder> shedder;
  if (method == "crr") {
    CrrOptions options;
    options.seed = seed;
    shedder = std::make_unique<Crr>(options);
  } else if (method == "crr-rank") {
    // CRR's deterministic Phase-1 core: keep the top round(p·|E|) edges by
    // betweenness, no Phase-2 rewiring. Structure-driven and seed-stable,
    // which makes it the fidelity yardstick for distributed shedding —
    // full CRR's random swaps cap kept-set overlap near its own
    // seed-to-seed self-overlap (~0.58 at p=0.5), so sharded-vs-single
    // comparisons use this core to isolate what partitioning costs
    // (bench_dist_fleet, DESIGN.md §11).
    CrrOptions options;
    options.seed = seed;
    options.steps_override = 0;
    shedder = std::make_unique<Crr>(options);
  } else if (method == "bm2") {
    Bm2Options options;
    options.seed = seed;
    shedder = std::make_unique<Bm2>(options);
  } else if (method == "random") {
    shedder = std::make_unique<RandomShedding>(seed);
  } else if (method == "local-degree") {
    shedder = std::make_unique<LocalDegreeShedding>();
  } else if (method == "spanning-forest") {
    shedder = std::make_unique<SpanningForestShedding>(seed);
  } else {
    return Status::InvalidArgument(StrFormat(
        "unknown shedding method '%s' (known: %s)", method.c_str(),
        StrJoin(KnownShedderNames(), ", ").c_str()));
  }
  return shedder;
}

std::vector<std::string> KnownShedderNames() {
  return {"bm2", "crr", "crr-rank", "local-degree", "random",
          "spanning-forest"};
}

}  // namespace edgeshed::core
