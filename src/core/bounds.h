#ifndef EDGESHED_CORE_BOUNDS_H_
#define EDGESHED_CORE_BOUNDS_H_

#include "graph/graph.h"

namespace edgeshed::core {

/// Theorem 1: the average absolute discrepancy of a CRR reduction is below
/// 4·p·(1−p)·|E|/|V|.
double CrrAverageDeltaBound(const graph::Graph& g, double p);

/// Theorem 2: the average absolute discrepancy of a BM2 reduction is below
/// 1/2 + (1−p)·|E|/|V|.
double Bm2AverageDeltaBound(const graph::Graph& g, double p);

}  // namespace edgeshed::core

#endif  // EDGESHED_CORE_BOUNDS_H_
