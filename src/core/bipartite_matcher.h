#ifndef EDGESHED_CORE_BIPARTITE_MATCHER_H_
#define EDGESHED_CORE_BIPARTITE_MATCHER_H_

#include <cstdint>
#include <vector>

#include "core/discrepancy.h"
#include "graph/graph.h"

namespace edgeshed::core {

/// One A-side/B-side candidate edge for BM2's Phase 2: `a` has dis(a) <= -0.5
/// (group A), `b` has -0.5 < dis(b) < 0 (group B).
struct BipartiteCandidate {
  graph::EdgeId id = graph::kInvalidEdge;
  graph::NodeId a = graph::kInvalidNode;
  graph::NodeId b = graph::kInvalidNode;
};

/// Controls for the Algorithm-3 matcher.
struct BipartiteMatcherOptions {
  /// Keep candidates whose *initial* gain is exactly zero (Algorithm 2 uses
  /// gain >= 0; the paper's Example 2 notes zero-gain edges may be taken or
  /// skipped "according to user's preference"). Updated gains must be
  /// strictly positive either way (Algorithm 3, line 11).
  bool include_zero_gain = true;
};

/// The `bipartite` procedure of Algorithm 3: greedy maximum-weight bipartite
/// matching with dynamic gain maintenance.
///
/// Edge weights are the Lemma-1 gains
///   gain(a, b) = |dis(a)| + 2|dis(b)| − |dis(a)+1| − 1,
/// read from `discrepancy` (which reflects the Phase-1 b-matching). The
/// matcher repeatedly takes the highest-gain candidate (a, b), commits it
/// through `discrepancy->AddEdge`, removes b and every candidate incident to
/// b, and then handles a by the Lemma-2 case split on its *new* dis(a):
///   * dis(a) <= −1        : adjacent gains are unchanged — do nothing;
///   * −1 < dis(a) < −0.5  : recompute adjacent gains, drop non-positive;
///   * dis(a) >= −0.5      : a leaves group A — drop all its candidates.
///
/// Implementation: a lazy max-heap with per-a version counters; stale
/// entries are discarded on pop. Deterministic: ties broken by candidate
/// order. O((|E*| + updates) log |E*|).
std::vector<graph::EdgeId> MaxGainBipartiteMatching(
    const std::vector<BipartiteCandidate>& candidates,
    DegreeDiscrepancy* discrepancy,
    const BipartiteMatcherOptions& options = {});

/// The Lemma-1 gain of adding edge (a, b) given current discrepancies.
double BipartiteGain(const DegreeDiscrepancy& discrepancy, graph::NodeId a,
                     graph::NodeId b);

}  // namespace edgeshed::core

#endif  // EDGESHED_CORE_BIPARTITE_MATCHER_H_
