#ifndef EDGESHED_CORE_DISCREPANCY_H_
#define EDGESHED_CORE_DISCREPANCY_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace edgeshed::core {

/// Incremental bookkeeping for the paper's optimization objective.
///
/// For a reduced graph under construction, tracks per-vertex degree
/// discrepancy  dis(u) = deg_G'(u) − p·deg_G(u)  (Eq. 3) and the total
/// Δ = Σ_u |dis(u)| (Eq. 4) as edges are added and removed. Both shedding
/// algorithms and the swap-acceptance tests are expressed against this
/// class, so the objective arithmetic lives in exactly one place.
class DegreeDiscrepancy {
 public:
  /// Starts from the empty reduced graph: deg_G'(u) = 0 for all u, so
  /// dis(u) = −p·deg_G(u) and Δ = 2p|E|.
  DegreeDiscrepancy(const graph::Graph& g, double p);

  /// Records that edge {u, v} joined the reduced graph.
  void AddEdge(graph::NodeId u, graph::NodeId v);

  /// Records that edge {u, v} left the reduced graph. The caller must have
  /// added it before (degrees stay non-negative; DCHECKed).
  void RemoveEdge(graph::NodeId u, graph::NodeId v);

  /// Re-bases `u` on a changed original-graph degree: sets the expected
  /// degree to p·new_base_degree and folds the |dis(u)| change into Δ in
  /// O(1). This is the dynamic-graph hook (DESIGN.md §15) — after a
  /// mutation batch only the touched endpoints change their expected term,
  /// so a re-shed updates Δ in O(touched vertices) instead of O(|V|).
  void UpdateBaseDegree(graph::NodeId u, uint64_t new_base_degree);

  /// Current discrepancy of `u`.
  double Dis(graph::NodeId u) const {
    return static_cast<double>(reduced_degree_[u]) - expected_degree_[u];
  }

  /// Expected degree p·deg_G(u) (Eq. 1).
  double ExpectedDegree(graph::NodeId u) const { return expected_degree_[u]; }

  /// Current degree of `u` in the reduced graph.
  uint64_t ReducedDegree(graph::NodeId u) const { return reduced_degree_[u]; }

  /// Δ, maintained incrementally. Numerically exact up to accumulated
  /// floating rounding; see RecomputeTotalDelta() for the reference value.
  double TotalDelta() const { return total_delta_; }

  /// Average delta Δ/|V| — the paper's "Average delta" quality metric.
  double AverageDelta() const;

  /// Change in Δ that removing edge {u, v} would cause right now — the d1
  /// of CRR (Algorithm 1, line 10). Negative values improve the objective.
  double RemovalDelta(graph::NodeId u, graph::NodeId v) const;

  /// Change in Δ that adding edge {u, v} would cause right now — the d2 of
  /// CRR (Algorithm 1, line 11).
  double AdditionDelta(graph::NodeId u, graph::NodeId v) const;

  /// O(|V|) recomputation of Δ from scratch (tests / drift control).
  double RecomputeTotalDelta() const;

  uint64_t NumNodes() const { return reduced_degree_.size(); }
  double preservation_ratio() const { return p_; }

 private:
  double p_;
  std::vector<double> expected_degree_;
  std::vector<uint64_t> reduced_degree_;
  double total_delta_;
};

}  // namespace edgeshed::core

#endif  // EDGESHED_CORE_DISCREPANCY_H_
