#ifndef EDGESHED_CORE_RANDOM_SHEDDING_H_
#define EDGESHED_CORE_RANDOM_SHEDDING_H_

#include <cstdint>

#include "core/shedding.h"

namespace edgeshed::core {

/// Uniform random edge shedding: keeps round(p·|E|) edges chosen uniformly
/// at random. Not in the paper's comparison, but the natural naive baseline
/// for ablations and examples: it matches the expected average degree
/// (Eq. 2) yet makes no attempt to minimize per-vertex discrepancy.
class RandomShedding : public EdgeShedder {
 public:
  explicit RandomShedding(uint64_t seed = 42) : seed_(seed) {}

  std::string name() const override { return "random"; }
  /// ShedOptions mapping: `seed` overrides the constructor seed; `threads`
  /// is ignored (a single uniform sample).
  StatusOr<SheddingResult> Shed(const graph::Graph& g,
                                const ShedOptions& options) const override;

 private:
  uint64_t seed_;
};

}  // namespace edgeshed::core

#endif  // EDGESHED_CORE_RANDOM_SHEDDING_H_
