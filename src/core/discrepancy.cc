#include "core/discrepancy.h"

#include <cmath>

#include "common/check.h"

namespace edgeshed::core {

DegreeDiscrepancy::DegreeDiscrepancy(const graph::Graph& g, double p)
    : p_(p) {
  EDGESHED_CHECK(p > 0.0 && p < 1.0)
      << "edge preservation ratio must be in (0,1), got " << p;
  const uint64_t n = g.NumNodes();
  expected_degree_.resize(n);
  reduced_degree_.assign(n, 0);
  total_delta_ = 0.0;
  for (graph::NodeId u = 0; u < n; ++u) {
    expected_degree_[u] = p * static_cast<double>(g.Degree(u));
    total_delta_ += expected_degree_[u];
  }
}

void DegreeDiscrepancy::AddEdge(graph::NodeId u, graph::NodeId v) {
  EDGESHED_DCHECK(u != v);
  total_delta_ += AdditionDelta(u, v);
  ++reduced_degree_[u];
  ++reduced_degree_[v];
}

void DegreeDiscrepancy::RemoveEdge(graph::NodeId u, graph::NodeId v) {
  EDGESHED_DCHECK(u != v);
  EDGESHED_DCHECK(reduced_degree_[u] > 0);
  EDGESHED_DCHECK(reduced_degree_[v] > 0);
  total_delta_ += RemovalDelta(u, v);
  --reduced_degree_[u];
  --reduced_degree_[v];
}

void DegreeDiscrepancy::UpdateBaseDegree(graph::NodeId u,
                                         uint64_t new_base_degree) {
  total_delta_ -= std::abs(Dis(u));
  expected_degree_[u] = p_ * static_cast<double>(new_base_degree);
  total_delta_ += std::abs(Dis(u));
}

double DegreeDiscrepancy::AverageDelta() const {
  return NumNodes() == 0
             ? 0.0
             : total_delta_ / static_cast<double>(NumNodes());
}

double DegreeDiscrepancy::RemovalDelta(graph::NodeId u,
                                       graph::NodeId v) const {
  const double dis_u = Dis(u);
  const double dis_v = Dis(v);
  return std::abs(dis_u - 1.0) + std::abs(dis_v - 1.0) -
         (std::abs(dis_u) + std::abs(dis_v));
}

double DegreeDiscrepancy::AdditionDelta(graph::NodeId u,
                                        graph::NodeId v) const {
  const double dis_u = Dis(u);
  const double dis_v = Dis(v);
  return std::abs(dis_u + 1.0) + std::abs(dis_v + 1.0) -
         (std::abs(dis_u) + std::abs(dis_v));
}

double DegreeDiscrepancy::RecomputeTotalDelta() const {
  double total = 0.0;
  for (uint64_t u = 0; u < NumNodes(); ++u) {
    total += std::abs(Dis(static_cast<graph::NodeId>(u)));
  }
  return total;
}

}  // namespace edgeshed::core
