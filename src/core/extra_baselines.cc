#include "core/extra_baselines.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <numeric>

#include "common/random.h"
#include "common/stopwatch.h"
#include "core/discrepancy.h"

namespace edgeshed::core {

namespace {

void FillResultMetrics(const graph::Graph& g, double p,
                       SheddingResult* result) {
  DegreeDiscrepancy discrepancy(g, p);
  for (graph::EdgeId e : result->kept_edges) {
    discrepancy.AddEdge(g.edge(e).u, g.edge(e).v);
  }
  result->total_delta = discrepancy.TotalDelta();
  result->average_delta = discrepancy.AverageDelta();
}

}  // namespace

StatusOr<SheddingResult> LocalDegreeShedding::Shed(
    const graph::Graph& g, const ShedOptions& options) const {
  const double p = options.p;
  const CancellationToken* cancel = options.cancel;
  EDGESHED_RETURN_IF_ERROR(ValidatePreservationRatio(p));
  Stopwatch watch;
  SheddingResult result;
  std::vector<bool> keep(g.NumEdges(), false);
  std::vector<std::pair<uint64_t, graph::EdgeId>> ranked;  // (-ish) scratch
  constexpr uint64_t kCancelCheckMask = 4096 - 1;
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    if ((u & kCancelCheckMask) == 0 && CancellationRequested(cancel)) {
      return cancel->ToStatus();
    }
    const uint64_t degree = g.Degree(u);
    if (degree == 0) continue;
    const auto quota = static_cast<uint64_t>(
        std::ceil(p * static_cast<double>(degree)));
    auto neighbors = g.Neighbors(u);
    auto incident = g.IncidentEdges(u);
    ranked.clear();
    for (size_t i = 0; i < neighbors.size(); ++i) {
      ranked.emplace_back(g.Degree(neighbors[i]), incident[i]);
    }
    // Highest-degree neighbors first; ties by edge id for determinism.
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first > b.first;
                return a.second < b.second;
              });
    for (uint64_t i = 0; i < std::min<uint64_t>(quota, ranked.size()); ++i) {
      keep[ranked[i].second] = true;
    }
  }
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (keep[e]) result.kept_edges.push_back(e);
  }
  FillResultMetrics(g, p, &result);
  result.reduction_seconds = watch.ElapsedSeconds();
  result.stats = {{"kept_fraction",
                   g.NumEdges() == 0
                       ? 0.0
                       : static_cast<double>(result.kept_edges.size()) /
                             static_cast<double>(g.NumEdges())}};
  return result;
}

StatusOr<SheddingResult> SpanningForestShedding::Shed(
    const graph::Graph& g, const ShedOptions& options) const {
  const double p = options.p;
  const CancellationToken* cancel = options.cancel;
  EDGESHED_RETURN_IF_ERROR(ValidatePreservationRatio(p));
  // Cheap kernel (one union-find pass): a single entry check is enough.
  if (CancellationRequested(cancel)) return cancel->ToStatus();
  Stopwatch watch;
  Rng rng(options.seed.value_or(seed_));
  SheddingResult result;
  const uint64_t target = TargetEdgeCount(g, p);

  // Random spanning forest: scan edges in random order, keep tree edges
  // (union-find).
  std::vector<graph::EdgeId> order(g.NumEdges());
  std::iota(order.begin(), order.end(), graph::EdgeId{0});
  rng.Shuffle(&order);
  std::vector<graph::NodeId> parent(g.NumNodes());
  std::iota(parent.begin(), parent.end(), graph::NodeId{0});
  std::function<graph::NodeId(graph::NodeId)> find =
      [&](graph::NodeId x) {
        while (parent[x] != x) {
          parent[x] = parent[parent[x]];
          x = parent[x];
        }
        return x;
      };
  std::vector<bool> keep(g.NumEdges(), false);
  uint64_t forest_size = 0;
  std::vector<graph::EdgeId> non_tree;
  for (graph::EdgeId e : order) {
    graph::NodeId ru = find(g.edge(e).u);
    graph::NodeId rv = find(g.edge(e).v);
    if (ru != rv) {
      parent[ru] = rv;
      keep[e] = true;
      ++forest_size;
    } else {
      non_tree.push_back(e);
    }
  }

  // Uniform fill with non-tree edges up to the target (if it fits).
  if (target > forest_size) {
    uint64_t need = target - forest_size;
    // `non_tree` is already in random order (edges were shuffled).
    for (uint64_t i = 0; i < std::min<uint64_t>(need, non_tree.size()); ++i) {
      keep[non_tree[i]] = true;
    }
  }
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    if (keep[e]) result.kept_edges.push_back(e);
  }
  FillResultMetrics(g, p, &result);
  result.reduction_seconds = watch.ElapsedSeconds();
  result.stats = {{"forest_edges", static_cast<double>(forest_size)},
                  {"target", static_cast<double>(target)}};
  return result;
}

}  // namespace edgeshed::core
