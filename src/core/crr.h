#ifndef EDGESHED_CORE_CRR_H_
#define EDGESHED_CORE_CRR_H_

#include <cstdint>
#include <optional>

#include "analytics/betweenness.h"
#include "core/shedding.h"

namespace edgeshed::core {

/// Configuration for Centrality Ranking with Rewiring.
struct CrrOptions {
  /// steps = round(steps_multiplier · P) where P = p·|E| (paper: 10 after
  /// the Fig. 4 sweep). Ignored when steps_override is set.
  double steps_multiplier = 10.0;
  /// Exact number of Phase-2 swap attempts, overriding the multiplier.
  std::optional<uint64_t> steps_override;

  /// How Phase 1 picks the initial E'. kBetweenness is the paper's method;
  /// kRandom exists for the phase ablation (DESIGN.md §6.1).
  enum class InitMode { kBetweenness, kRandom };
  InitMode init_mode = InitMode::kBetweenness;

  /// Accept swaps with d1 + d2 == 0 as well (paper requires strictly < 0);
  /// ablation §6.2.
  bool accept_zero_delta_swaps = false;

  /// Betweenness estimator controls (exact below the threshold, sampled
  /// pivots above; see analytics::BetweennessOptions). Defaults to the
  /// ranking fast path — hybrid kernel plus adaptive pivot waves
  /// (DESIGN.md §12); waves only engage in sampled mode, so graphs under
  /// the exact threshold are unaffected.
  analytics::BetweennessOptions betweenness =
      analytics::BetweennessOptions::FastRanking();

  /// Seed for Phase-2 swap sampling (and Phase-1 random init).
  uint64_t seed = 42;
};

/// Centrality Ranking with Rewiring — Algorithm 1 of the paper.
///
/// Phase 1 keeps the round(p·|E|) edges of highest edge betweenness
/// centrality (ties resolved deterministically by edge id). Phase 2 runs
/// `steps` random swap attempts between E' and E \ E', accepting a swap iff
/// it strictly reduces the total degree discrepancy Δ. |E'| is invariant
/// throughout, which pins the reduced graph's average degree at p times the
/// original (Eq. 2).
class Crr : public EdgeShedder {
 public:
  explicit Crr(CrrOptions options = {}) : options_(options) {}

  std::string name() const override { return "crr"; }
  /// ShedOptions mapping: `seed` overrides CrrOptions::seed; `threads`
  /// overrides the betweenness estimator's thread count (Phase 2 is
  /// sequential by construction — the swap chain is a single dependent
  /// random walk).
  StatusOr<SheddingResult> Shed(const graph::Graph& g,
                                const ShedOptions& options) const override;

  /// The Phase-2 iteration count CRR will use for this graph and p.
  uint64_t StepsFor(const graph::Graph& g, double p) const;

 private:
  CrrOptions options_;
};

}  // namespace edgeshed::core

#endif  // EDGESHED_CORE_CRR_H_
