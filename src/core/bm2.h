#ifndef EDGESHED_CORE_BM2_H_
#define EDGESHED_CORE_BM2_H_

#include <cstdint>

#include "core/b_matching.h"
#include "core/bipartite_matcher.h"
#include "core/shedding.h"

namespace edgeshed::core {

/// Configuration for B-Matching with Bipartite Matching.
struct Bm2Options {
  /// Scan order of the Phase-1 greedy b-matching (paper: input order).
  BMatchingEdgeOrder edge_order = BMatchingEdgeOrder::kInputOrder;
  /// Seed, used only when edge_order == kShuffled.
  uint64_t seed = 42;
  /// Run the Phase-2 bipartite correction (off = b-matching only; phase
  /// ablation, DESIGN.md §6.3).
  bool run_phase2 = true;
  /// Zero-gain handling in Phase 2 (see BipartiteMatcherOptions).
  bool include_zero_gain = true;
};

/// B-Matching with Bipartite Matching — Algorithms 2 and 3 of the paper.
///
/// Phase 1 rounds each expected degree to b(u) = round(p·deg_G(u)) and
/// greedily builds a maximal b-matching E_m under those capacities. Phase 2
/// classifies vertices by discrepancy into groups
///   A (dis <= −0.5), B (−0.5 < dis < 0), C (dis >= 0),
/// forms the weighted bipartite graph of unused A-B edges with the Lemma-1
/// gains, and adds the edges chosen by the Algorithm-3 matcher:
/// E' = E_m ∪ E_BP. Unlike CRR, |E'| is not pinned to round(p·|E|); the
/// capacities enforce the expected degrees directly.
class Bm2 : public EdgeShedder {
 public:
  explicit Bm2(Bm2Options options = {}) : options_(options) {}

  std::string name() const override { return "bm2"; }
  /// ShedOptions mapping: `seed` overrides Bm2Options::seed (effective only
  /// with edge_order == kShuffled); `threads` is ignored — both phases are
  /// inherently sequential scans.
  StatusOr<SheddingResult> Shed(const graph::Graph& g,
                                const ShedOptions& options) const override;

  /// The rounded capacity vector b(u) = round(p·deg_G(u)).
  static std::vector<uint32_t> Capacities(const graph::Graph& g, double p);

 private:
  Bm2Options options_;
};

}  // namespace edgeshed::core

#endif  // EDGESHED_CORE_BM2_H_
