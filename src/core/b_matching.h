#ifndef EDGESHED_CORE_B_MATCHING_H_
#define EDGESHED_CORE_B_MATCHING_H_

#include <cstdint>
#include <vector>

#include "common/cancellation.h"
#include "common/random.h"
#include "graph/graph.h"

namespace edgeshed::core {

/// Order in which the greedy pass scans edges. The paper scans input order
/// (Algorithm 2, lines 4-7); the alternatives exist for the ablation of
/// which maximal b-matching Phase 1 lands on (DESIGN.md §6.5).
enum class BMatchingEdgeOrder {
  kInputOrder,
  kShuffled,
  kLowDegreeEndpointFirst,
};

/// Greedy maximal b-matching (Hougardy's linear-time approximation family):
/// one pass over the edges, keeping {u,v} iff both endpoints are below
/// their capacities. The result is maximal — degrees only grow during the
/// pass, so any skipped edge stays blocked — and is a 1/2-approximation of
/// the maximum b-matching.
///
/// `capacities[u]` is b(u) >= 0. Returns the EdgeIds of the matching, in
/// increasing order. `rng` is only consulted for kShuffled.
///
/// `cancel` (optional) is polled every ~65536 scanned edges; when it trips,
/// the pass stops early and the partial matching is returned — meaningless
/// to a caller that does not check the token itself.
std::vector<graph::EdgeId> GreedyMaximalBMatching(
    const graph::Graph& g, const std::vector<uint32_t>& capacities,
    BMatchingEdgeOrder order = BMatchingEdgeOrder::kInputOrder,
    Rng* rng = nullptr, const CancellationToken* cancel = nullptr);

/// True iff `edge_ids` satisfies every capacity: deg_H(u) <= b(u).
bool IsBMatching(const graph::Graph& g,
                 const std::vector<graph::EdgeId>& edge_ids,
                 const std::vector<uint32_t>& capacities);

/// True iff `edge_ids` is a *maximal* b-matching: a b-matching where every
/// absent edge has at least one saturated endpoint.
bool IsMaximalBMatching(const graph::Graph& g,
                        const std::vector<graph::EdgeId>& edge_ids,
                        const std::vector<uint32_t>& capacities);

}  // namespace edgeshed::core

#endif  // EDGESHED_CORE_B_MATCHING_H_
