#include "core/bm2.h"

#include <algorithm>
#include <cmath>

#include "common/stopwatch.h"

namespace edgeshed::core {

std::vector<uint32_t> Bm2::Capacities(const graph::Graph& g, double p) {
  std::vector<uint32_t> capacities(g.NumNodes());
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    capacities[u] = static_cast<uint32_t>(
        std::llround(p * static_cast<double>(g.Degree(u))));
  }
  return capacities;
}

StatusOr<SheddingResult> Bm2::Shed(const graph::Graph& g,
                                   const ShedOptions& shed_options) const {
  const double p = shed_options.p;
  const CancellationToken* cancel = shed_options.cancel;
  EDGESHED_RETURN_IF_ERROR(ValidatePreservationRatio(p));
  Stopwatch total_watch;
  SheddingResult result;

  // ---- Phase 1: greedy maximal b-matching under rounded capacities. ----
  Stopwatch phase1_watch;
  const std::vector<uint32_t> capacities = Capacities(g, p);
  Rng rng(shed_options.seed.value_or(options_.seed));
  std::vector<graph::EdgeId> matching =
      GreedyMaximalBMatching(g, capacities, options_.edge_order, &rng, cancel);
  if (CancellationRequested(cancel)) return cancel->ToStatus();
  const double phase1_seconds = phase1_watch.ElapsedSeconds();

  DegreeDiscrepancy discrepancy(g, p);
  std::vector<bool> in_matching(g.NumEdges(), false);
  for (graph::EdgeId e : matching) {
    in_matching[e] = true;
    discrepancy.AddEdge(g.edge(e).u, g.edge(e).v);
  }

  // ---- Phase 2: bipartite correction over unused A-B edges. ----
  Stopwatch phase2_watch;
  uint64_t phase2_added = 0;
  if (options_.run_phase2) {
    // Vertex groups (Algorithm 2, lines 8-16): A needs more edges, B would
    // overshoot by < 1, C is at or above expectation. Only A-B edges can
    // still pay off (Lemma 1); A-A edges were exhausted by the maximal
    // b-matching, every other combination necessarily increases Δ.
    auto group_a = [&](graph::NodeId u) { return discrepancy.Dis(u) <= -0.5; };
    auto group_b = [&](graph::NodeId u) {
      const double d = discrepancy.Dis(u);
      return d > -0.5 && d < 0.0;
    };
    std::vector<BipartiteCandidate> candidates;
    constexpr uint64_t kCancelCheckMask = 65536 - 1;
    for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
      if ((e & kCancelCheckMask) == 0 && CancellationRequested(cancel)) {
        return cancel->ToStatus();
      }
      if (in_matching[e]) continue;
      const graph::Edge& edge = g.edge(e);
      graph::NodeId a = graph::kInvalidNode;
      graph::NodeId b = graph::kInvalidNode;
      if (group_a(edge.u) && group_b(edge.v)) {
        a = edge.u;
        b = edge.v;
      } else if (group_a(edge.v) && group_b(edge.u)) {
        a = edge.v;
        b = edge.u;
      } else {
        continue;
      }
      candidates.push_back(BipartiteCandidate{e, a, b});
    }
    BipartiteMatcherOptions matcher_options;
    matcher_options.include_zero_gain = options_.include_zero_gain;
    if (CancellationRequested(cancel)) return cancel->ToStatus();
    std::vector<graph::EdgeId> added =
        MaxGainBipartiteMatching(candidates, &discrepancy, matcher_options);
    phase2_added = added.size();
    matching.insert(matching.end(), added.begin(), added.end());
  }
  const double phase2_seconds = phase2_watch.ElapsedSeconds();

  std::sort(matching.begin(), matching.end());
  result.kept_edges = std::move(matching);
  result.total_delta = discrepancy.TotalDelta();
  result.average_delta = discrepancy.AverageDelta();
  result.reduction_seconds = total_watch.ElapsedSeconds();
  result.stats = {
      {"phase1_seconds", phase1_seconds},
      {"phase2_seconds", phase2_seconds},
      {"phase1_edges", static_cast<double>(result.kept_edges.size() -
                                           phase2_added)},
      {"phase2_edges", static_cast<double>(phase2_added)},
  };
  return result;
}

}  // namespace edgeshed::core
