#include "core/bipartite_matcher.h"

#include <cmath>
#include <queue>
#include <unordered_map>

#include "common/check.h"

namespace edgeshed::core {

double BipartiteGain(const DegreeDiscrepancy& discrepancy, graph::NodeId a,
                     graph::NodeId b) {
  const double dis_a = discrepancy.Dis(a);
  const double dis_b = discrepancy.Dis(b);
  return std::abs(dis_a) + 2.0 * std::abs(dis_b) - std::abs(dis_a + 1.0) -
         1.0;
}

namespace {

/// Gains are sums of values like 0.4·deg that are not exactly representable;
/// comparisons against the paper's 0-gain boundary need a tolerance or
/// borderline candidates flip on rounding noise.
constexpr double kGainEpsilon = 1e-9;

struct HeapEntry {
  double gain;
  uint32_t candidate;  // index into `candidates`
  uint64_t version;    // a-side version at push time

  /// Max-heap by gain; ties resolved by lower candidate index so results
  /// are deterministic.
  friend bool operator<(const HeapEntry& x, const HeapEntry& y) {
    if (x.gain != y.gain) return x.gain < y.gain;
    return x.candidate > y.candidate;
  }
};

}  // namespace

std::vector<graph::EdgeId> MaxGainBipartiteMatching(
    const std::vector<BipartiteCandidate>& candidates,
    DegreeDiscrepancy* discrepancy, const BipartiteMatcherOptions& options) {
  EDGESHED_CHECK(discrepancy != nullptr);
  const size_t m = candidates.size();

  std::vector<bool> alive(m, false);
  std::vector<double> gain(m, 0.0);
  // Per-a candidate lists and version counters; per-b candidate lists for
  // the "discard all edges incident to b" step. Node-keyed hash maps keep
  // this proportional to the candidate set, not |V|.
  std::unordered_map<graph::NodeId, std::vector<uint32_t>> by_a;
  std::unordered_map<graph::NodeId, std::vector<uint32_t>> by_b;
  std::unordered_map<graph::NodeId, uint64_t> version_of_a;

  std::priority_queue<HeapEntry> heap;
  for (uint32_t i = 0; i < m; ++i) {
    const BipartiteCandidate& c = candidates[i];
    double g = BipartiteGain(*discrepancy, c.a, c.b);
    const bool keep = options.include_zero_gain ? g >= -kGainEpsilon
                                                : g > kGainEpsilon;
    if (!keep) continue;
    alive[i] = true;
    gain[i] = g;
    by_a[c.a].push_back(i);
    by_b[c.b].push_back(i);
    version_of_a.try_emplace(c.a, 0);
    heap.push(HeapEntry{g, i, 0});
  }

  std::vector<graph::EdgeId> matched;
  while (!heap.empty()) {
    const HeapEntry top = heap.top();
    heap.pop();
    const uint32_t i = top.candidate;
    if (!alive[i]) continue;
    const BipartiteCandidate& c = candidates[i];
    if (top.version != version_of_a[c.a]) continue;  // stale gain

    // Commit edge (a, b): Algorithm 3 lines 4-7.
    matched.push_back(c.id);
    alive[i] = false;
    discrepancy->AddEdge(c.a, c.b);

    // b leaves group B; everything incident to b dies.
    for (uint32_t j : by_b[c.b]) alive[j] = false;

    const double new_dis_a = discrepancy->Dis(c.a);
    if (new_dis_a <= -1.0) {
      // Lemma 2: adjacent gains equal 2|dis(x)| and are unaffected.
      continue;
    }
    if (new_dis_a < -0.5) {
      // Recompute gains of a's surviving candidates; strictly positive
      // gains are reinserted under a bumped version, others die.
      const uint64_t new_version = ++version_of_a[c.a];
      for (uint32_t j : by_a[c.a]) {
        if (!alive[j]) continue;
        double g = BipartiteGain(*discrepancy, candidates[j].a,
                                 candidates[j].b);
        if (g > kGainEpsilon) {
          gain[j] = g;
          heap.push(HeapEntry{g, j, new_version});
        } else {
          alive[j] = false;
        }
      }
    } else {
      // a no longer qualifies for group A; drop it and its edges.
      for (uint32_t j : by_a[c.a]) alive[j] = false;
    }
  }
  return matched;
}

}  // namespace edgeshed::core
