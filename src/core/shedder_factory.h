#ifndef EDGESHED_CORE_SHEDDER_FACTORY_H_
#define EDGESHED_CORE_SHEDDER_FACTORY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/shedding.h"

namespace edgeshed::core {

/// Constructs the shedder registered under `method` ("crr", "bm2", "random",
/// "local-degree", "spanning-forest") with its default options and the given
/// seed. InvalidArgument for unknown names. Shared by the CLI and the
/// service layer so method dispatch lives in one place.
StatusOr<std::unique_ptr<EdgeShedder>> MakeShedderByName(
    const std::string& method, uint64_t seed);

/// Names accepted by MakeShedderByName, sorted.
std::vector<std::string> KnownShedderNames();

/// Degradation cost ladder, priciest first: crr -> bm2 -> local-degree ->
/// random. Under load the serving layer steps a request down this ladder
/// instead of rejecting it (Slim Graph's "cheaper compression profile"
/// escape hatch). Methods not on the ladder (crr-rank, spanning-forest)
/// never degrade — they are explicit fidelity/structure choices.
const std::vector<std::string>& ShedderCostLadder();

/// Position of `method` on the cost ladder (0 = priciest), or -1 when the
/// method is not on the ladder.
int ShedderCostTier(const std::string& method);

/// `method` stepped `steps` tiers down the cost ladder, clamped at the
/// cheapest tier. Returns `method` unchanged when it is not on the ladder
/// or `steps <= 0`.
std::string DegradeShedderMethod(const std::string& method, int steps);

}  // namespace edgeshed::core

#endif  // EDGESHED_CORE_SHEDDER_FACTORY_H_
