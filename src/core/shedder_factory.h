#ifndef EDGESHED_CORE_SHEDDER_FACTORY_H_
#define EDGESHED_CORE_SHEDDER_FACTORY_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "core/shedding.h"

namespace edgeshed::core {

/// Constructs the shedder registered under `method` ("crr", "bm2", "random",
/// "local-degree", "spanning-forest") with its default options and the given
/// seed. InvalidArgument for unknown names. Shared by the CLI and the
/// service layer so method dispatch lives in one place.
StatusOr<std::unique_ptr<EdgeShedder>> MakeShedderByName(
    const std::string& method, uint64_t seed);

/// Names accepted by MakeShedderByName, sorted.
std::vector<std::string> KnownShedderNames();

}  // namespace edgeshed::core

#endif  // EDGESHED_CORE_SHEDDER_FACTORY_H_
