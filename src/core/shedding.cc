#include "core/shedding.h"

#include <cmath>

#include "common/strings.h"

namespace edgeshed::core {

Status ValidatePreservationRatio(double p) {
  if (!(p > 0.0) || !(p < 1.0)) {
    return Status::InvalidArgument(StrFormat(
        "edge preservation ratio must be in (0,1), got %g", p));
  }
  return Status::OK();
}

uint64_t TargetEdgeCount(const graph::Graph& g, double p) {
  return static_cast<uint64_t>(
      std::llround(p * static_cast<double>(g.NumEdges())));
}

}  // namespace edgeshed::core
