#include "core/shedding.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/strings.h"

namespace edgeshed::core {

Status ValidatePreservationRatio(double p) {
  if (std::isnan(p)) {
    return Status::InvalidArgument(
        "edge preservation ratio must be in (0,1), got NaN");
  }
  if (!(p > 0.0) || !(p < 1.0)) {
    return Status::InvalidArgument(StrFormat(
        "edge preservation ratio must be in (0,1), got %g", p));
  }
  return Status::OK();
}

uint64_t TargetEdgeCount(const graph::Graph& g, double p) {
  const auto target = static_cast<uint64_t>(
      std::llround(p * static_cast<double>(g.NumEdges())));
  // A valid p on a non-empty graph always keeps at least one edge; rounding
  // p·|E| < 0.5 down to an empty E' would make every shedder degenerate.
  if (target == 0 && g.NumEdges() > 0) return 1;
  return target;
}

std::vector<uint64_t> ApportionEdgeBudget(
    uint64_t target, const std::vector<uint64_t>& shard_edges) {
  const size_t k = shard_edges.size();
  std::vector<uint64_t> quotas(k, 0);
  if (k == 0) return quotas;
  const uint64_t total =
      std::accumulate(shard_edges.begin(), shard_edges.end(), uint64_t{0});
  if (total == 0) return quotas;
  if (target >= total) return shard_edges;  // keep everything everywhere

  // Largest-remainder apportionment on exact integer arithmetic:
  // quota_i = floor(target * m_i / total), remainders ranked by the exact
  // numerator target * m_i mod total. 128-bit products keep this overflow-
  // free for any graph that fits in memory.
  std::vector<unsigned __int128> rem(k, 0);
  uint64_t assigned = 0;
  for (size_t i = 0; i < k; ++i) {
    const unsigned __int128 num =
        static_cast<unsigned __int128>(target) * shard_edges[i];
    quotas[i] = static_cast<uint64_t>(num / total);
    rem[i] = num % total;
    assigned += quotas[i];
  }
  // Hand the remaining seats to the largest remainders (ties -> lower
  // index); a shard already at capacity cannot take a seat.
  std::vector<size_t> order(k);
  std::iota(order.begin(), order.end(), size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&rem](size_t a, size_t b) { return rem[a] > rem[b]; });
  for (size_t idx = 0; assigned < target && idx < k; ++idx) {
    const size_t i = order[idx];
    if (quotas[i] < shard_edges[i]) {
      ++quotas[i];
      ++assigned;
    }
  }
  // Floor quotas never exceed capacity, and remainder seats check it, so the
  // only way to still be short is pathological (target < total but every
  // shard saturated) — impossible; a plain top-up pass keeps the invariant
  // airtight anyway.
  for (size_t i = 0; assigned < target && i < k; ++i) {
    const uint64_t room = shard_edges[i] - quotas[i];
    const uint64_t take = std::min<uint64_t>(room, target - assigned);
    quotas[i] += take;
    assigned += take;
  }
  return quotas;
}

}  // namespace edgeshed::core
