#include "core/shedding.h"

#include <cmath>

#include "common/strings.h"

namespace edgeshed::core {

Status ValidatePreservationRatio(double p) {
  if (std::isnan(p)) {
    return Status::InvalidArgument(
        "edge preservation ratio must be in (0,1), got NaN");
  }
  if (!(p > 0.0) || !(p < 1.0)) {
    return Status::InvalidArgument(StrFormat(
        "edge preservation ratio must be in (0,1), got %g", p));
  }
  return Status::OK();
}

uint64_t TargetEdgeCount(const graph::Graph& g, double p) {
  const auto target = static_cast<uint64_t>(
      std::llround(p * static_cast<double>(g.NumEdges())));
  // A valid p on a non-empty graph always keeps at least one edge; rounding
  // p·|E| < 0.5 down to an empty E' would make every shedder degenerate.
  if (target == 0 && g.NumEdges() > 0) return 1;
  return target;
}

}  // namespace edgeshed::core
