#ifndef EDGESHED_CORE_EXTRA_BASELINES_H_
#define EDGESHED_CORE_EXTRA_BASELINES_H_

#include <cstdint>

#include "core/shedding.h"

namespace edgeshed::core {

/// Local-degree sparsification (Lindner et al., "Structure-preserving
/// sparsification methods for social networks"): every vertex nominates its
/// top ceil(p·deg(u)) incident edges ranked by the *other* endpoint's
/// degree; an edge survives if either endpoint nominates it. Hub-centric:
/// excellent at keeping the skeleton around high-degree vertices, but it
/// does not control per-vertex discrepancy and typically overshoots
/// round(p|E|). Included as a literature baseline for the comparison bench.
class LocalDegreeShedding : public EdgeShedder {
 public:
  std::string name() const override { return "local-degree"; }
  /// ShedOptions mapping: fully deterministic — `seed` and `threads` are
  /// ignored.
  StatusOr<SheddingResult> Shed(const graph::Graph& g,
                                const ShedOptions& options) const override;
};

/// Spanning-forest + uniform fill: keeps a random spanning forest (one tree
/// per connected component — the minimum edge set preserving reachability),
/// then fills up to round(p·|E|) with uniformly sampled remaining edges.
/// Connectivity-first baseline: hop-plots stay intact even at small p, at
/// the cost of degree fidelity. Requires p|E| >= forest size to honor the
/// target exactly; otherwise it returns just the forest (|E'| > round(p|E|))
/// — recorded in the result stats.
class SpanningForestShedding : public EdgeShedder {
 public:
  explicit SpanningForestShedding(uint64_t seed = 42) : seed_(seed) {}

  std::string name() const override { return "spanning-forest"; }
  /// ShedOptions mapping: `seed` overrides the constructor seed; `threads`
  /// is ignored (one union-find pass).
  StatusOr<SheddingResult> Shed(const graph::Graph& g,
                                const ShedOptions& options) const override;

 private:
  uint64_t seed_;
};

}  // namespace edgeshed::core

#endif  // EDGESHED_CORE_EXTRA_BASELINES_H_
