#ifndef EDGESHED_CORE_SHEDDING_H_
#define EDGESHED_CORE_SHEDDING_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/cancellation.h"
#include "common/statusor.h"
#include "graph/graph.h"

namespace edgeshed::core {

/// Output of an edge-shedding run.
struct SheddingResult {
  /// EdgeIds of the parent graph retained in the reduced graph E'.
  std::vector<graph::EdgeId> kept_edges;
  /// Final total degree discrepancy Δ (Eq. 4).
  double total_delta = 0.0;
  /// Δ / |V| — the paper's "Average delta" quality metric.
  double average_delta = 0.0;
  /// Wall-clock seconds spent reducing.
  double reduction_seconds = 0.0;
  /// Free-form per-algorithm counters (swaps accepted, phase timings, ...).
  std::vector<std::pair<std::string, double>> stats;

  /// Materializes G' = (V, E') over the parent's full vertex set.
  graph::Graph BuildReducedGraph(const graph::Graph& parent) const {
    return graph::SubgraphFromEdgeIds(parent, kept_edges);
  }
};

/// Interface shared by all graph-reduction methods in this library (CRR,
/// BM2, random shedding, and the UDS baseline adapter), so the experiment
/// harness can sweep methods uniformly.
class EdgeShedder {
 public:
  virtual ~EdgeShedder() = default;

  /// Short stable identifier ("crr", "bm2", ...).
  virtual std::string name() const = 0;

  /// Produces a reduced edge set for preservation ratio `p` in (0,1).
  /// Implementations must keep |kept_edges| deterministic given their
  /// configured seed, and must be bit-identical with and without a `cancel`
  /// token as long as the token never trips.
  ///
  /// `cancel` (optional) is polled cooperatively at coarse grain; a tripped
  /// token surfaces as Status::Cancelled / Status::DeadlineExceeded instead
  /// of a result. Partial work is discarded.
  virtual StatusOr<SheddingResult> Reduce(
      const graph::Graph& g, double p,
      const CancellationToken* cancel = nullptr) const = 0;
};

/// Validates a preservation ratio; shared by implementations. NaN and
/// values outside (0,1) are rejected with InvalidArgument.
Status ValidatePreservationRatio(double p);

/// round(p * |E|) — the paper's [P], the exact size of E' — clamped to at
/// least 1 on non-empty graphs so a tiny graph with a small valid p never
/// rounds down to an empty reduced edge set.
uint64_t TargetEdgeCount(const graph::Graph& g, double p);

}  // namespace edgeshed::core

#endif  // EDGESHED_CORE_SHEDDING_H_
