#ifndef EDGESHED_CORE_SHEDDING_H_
#define EDGESHED_CORE_SHEDDING_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "analytics/betweenness.h"
#include "common/cancellation.h"
#include "common/statusor.h"
#include "graph/graph.h"

namespace edgeshed::core {

/// Output of an edge-shedding run.
struct SheddingResult {
  /// EdgeIds of the parent graph retained in the reduced graph E'.
  std::vector<graph::EdgeId> kept_edges;
  /// Final total degree discrepancy Δ (Eq. 4).
  double total_delta = 0.0;
  /// Δ / |V| — the paper's "Average delta" quality metric.
  double average_delta = 0.0;
  /// Wall-clock seconds spent reducing.
  double reduction_seconds = 0.0;
  /// Free-form per-algorithm counters (swaps accepted, phase timings, ...).
  std::vector<std::pair<std::string, double>> stats;

  /// Materializes G' = (V, E') over the parent's full vertex set.
  graph::Graph BuildReducedGraph(const graph::Graph& parent) const {
    return graph::SubgraphFromEdgeIds(parent, kept_edges);
  }
};

/// A Phase-1 edge ranking (every EdgeId of the graph, best first), plus
/// provenance: whether the provider computed it on this call and how long
/// that took. A caching provider returns `computed = false` and
/// `seconds = 0.0` exactly on a hit, so shedders can surface honest
/// per-phase timings (`betweenness_seconds` stays 0 for the job that reused
/// another job's ranking).
struct EdgeRanking {
  std::vector<graph::EdgeId> ids;
  bool computed = false;
  double seconds = 0.0;
};

/// Supplies a ranking for Phase 1 instead of the shedder computing one
/// inline — the hook the service layer uses to share one betweenness pass
/// across jobs (see service::RankCache). The options carry the shedder's
/// full estimator configuration including its cancellation token; a
/// provider must produce ids equivalent to
/// analytics::EdgesByBetweennessDescending(g, options) or fail.
using RankProvider = std::function<StatusOr<EdgeRanking>(
    const graph::Graph& g, const analytics::BetweennessOptions& options)>;

/// Per-call knobs shared by every shedder, so the cancellation token, thread
/// count, and seed do not have to be threaded through each kernel signature
/// individually. Field-by-field:
///  * `p` — the preservation ratio in (0,1); the reduced edge target is
///    TargetEdgeCount(g, p) for ratio-pinned methods.
///  * `cancel` — optional cooperative token, polled at coarse grain; a
///    tripped token surfaces as Status::Cancelled / Status::DeadlineExceeded
///    instead of a result (partial work is discarded). Runs are bit-identical
///    with and without a token as long as it never trips.
///  * `threads` — worker threads for parallelizable phases (CRR's
///    betweenness ranking); 0 keeps the library default. Results stay
///    bit-identical across thread counts.
///  * `seed` — overrides the shedder's configured seed for this call when
///    set; unset keeps the configured one.
///  * `rank_provider` — optional Phase-1 ranking source; null means the
///    shedder ranks inline. Only consulted by shedders whose Phase 1 is a
///    betweenness ranking (CRR); a provider that honors the contract above
///    keeps results bit-identical to inline ranking.
struct ShedOptions {
  double p = 0.5;
  const CancellationToken* cancel = nullptr;
  int threads = 0;
  std::optional<uint64_t> seed;
  RankProvider rank_provider;
};

/// Interface shared by all graph-reduction methods in this library (CRR,
/// BM2, random shedding, and the UDS baseline adapter), so the experiment
/// harness can sweep methods uniformly.
class EdgeShedder {
 public:
  virtual ~EdgeShedder() = default;

  /// Short stable identifier ("crr", "bm2", ...).
  virtual std::string name() const = 0;

  /// Produces a reduced edge set under `options` (ratio, cancellation,
  /// threads, seed override — see ShedOptions). Implementations must keep
  /// |kept_edges| deterministic given the effective seed.
  virtual StatusOr<SheddingResult> Shed(const graph::Graph& g,
                                        const ShedOptions& options) const = 0;

  /// Positional convenience form, delegating to Shed. Kept so the many
  /// pre-ShedOptions call sites (`crr.Reduce(g, 0.5)`) stay source-
  /// compatible.
  StatusOr<SheddingResult> Reduce(const graph::Graph& g, double p,
                                  const CancellationToken* cancel = nullptr)
      const {
    ShedOptions options;
    options.p = p;
    options.cancel = cancel;
    return Shed(g, options);
  }
};

/// Validates a preservation ratio; shared by implementations. NaN and
/// values outside (0,1) are rejected with InvalidArgument.
Status ValidatePreservationRatio(double p);

/// round(p * |E|) — the paper's [P], the exact size of E' — clamped to at
/// least 1 on non-empty graphs so a tiny graph with a small valid p never
/// rounds down to an empty reduced edge set.
uint64_t TargetEdgeCount(const graph::Graph& g, double p);

/// Splits a global kept-edge budget across shards proportionally to shard
/// size (largest-remainder apportionment), for partition-aware shedding:
/// shard i with `shard_edges[i]` edges receives a target t_i such that
///   sum(t_i) == min(target, sum(shard_edges))   and   t_i <= shard_edges[i].
/// Quotas over a shard's capacity are redistributed to shards that still
/// have room, so the global budget is met exactly whenever it is feasible.
/// Deterministic: remainder ties break toward the lower shard index.
std::vector<uint64_t> ApportionEdgeBudget(
    uint64_t target, const std::vector<uint64_t>& shard_edges);

}  // namespace edgeshed::core

#endif  // EDGESHED_CORE_SHEDDING_H_
