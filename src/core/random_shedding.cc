#include "core/random_shedding.h"

#include <algorithm>

#include "common/random.h"
#include "common/stopwatch.h"
#include "core/discrepancy.h"

namespace edgeshed::core {

StatusOr<SheddingResult> RandomShedding::Shed(
    const graph::Graph& g, const ShedOptions& options) const {
  const double p = options.p;
  const CancellationToken* cancel = options.cancel;
  EDGESHED_RETURN_IF_ERROR(ValidatePreservationRatio(p));
  // Cheap kernel: a single entry check is enough.
  if (CancellationRequested(cancel)) return cancel->ToStatus();
  Stopwatch watch;
  Rng rng(options.seed.value_or(seed_));
  const uint64_t target = TargetEdgeCount(g, p);

  SheddingResult result;
  result.kept_edges = rng.SampleIndices(g.NumEdges(), target);
  std::sort(result.kept_edges.begin(), result.kept_edges.end());

  DegreeDiscrepancy discrepancy(g, p);
  for (graph::EdgeId e : result.kept_edges) {
    discrepancy.AddEdge(g.edge(e).u, g.edge(e).v);
  }
  result.total_delta = discrepancy.TotalDelta();
  result.average_delta = discrepancy.AverageDelta();
  result.reduction_seconds = watch.ElapsedSeconds();
  return result;
}

}  // namespace edgeshed::core
