#include "core/crr.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/parallel.h"
#include "common/random.h"
#include "common/stopwatch.h"
#include "core/discrepancy.h"

namespace edgeshed::core {

namespace {

/// Phase-2 working entry: an edge id with its endpoints cached flat, so each
/// swap attempt touches one 16-byte record instead of chasing the id into
/// the graph's edge array (a guaranteed cache miss per draw on big graphs).
struct CachedEdge {
  graph::EdgeId id;
  graph::NodeId u;
  graph::NodeId v;
};

std::vector<CachedEdge> CacheEndpoints(const graph::Graph& g,
                                       const graph::EdgeId* ids,
                                       uint64_t count) {
  std::vector<CachedEdge> cached(count);
  ParallelFor(0, count, [&](uint64_t begin, uint64_t end) {
    for (uint64_t i = begin; i < end; ++i) {
      const graph::Edge& e = g.edge(ids[i]);
      cached[i] = CachedEdge{ids[i], e.u, e.v};
    }
  });
  return cached;
}

}  // namespace

uint64_t Crr::StepsFor(const graph::Graph& g, double p) const {
  if (options_.steps_override.has_value()) return *options_.steps_override;
  const double kP = p * static_cast<double>(g.NumEdges());
  const double steps = options_.steps_multiplier * kP;
  return steps <= 0.0 ? 0 : static_cast<uint64_t>(std::llround(steps));
}

StatusOr<SheddingResult> Crr::Shed(const graph::Graph& g,
                                   const ShedOptions& shed_options) const {
  const double p = shed_options.p;
  const CancellationToken* cancel = shed_options.cancel;
  EDGESHED_RETURN_IF_ERROR(ValidatePreservationRatio(p));
  Stopwatch total_watch;
  SheddingResult result;
  const uint64_t num_edges = g.NumEdges();
  const uint64_t target = TargetEdgeCount(g, p);
  Rng rng(shed_options.seed.value_or(options_.seed));

  // ---- Phase 1: rank edges and keep the top round(p|E|). ----
  Stopwatch phase1_watch;
  double betweenness_seconds = 0.0;
  std::vector<graph::EdgeId> ranked;
  if (options_.init_mode == CrrOptions::InitMode::kBetweenness) {
    analytics::BetweennessOptions betweenness = options_.betweenness;
    betweenness.cancel = cancel;
    if (shed_options.threads > 0) betweenness.threads = shed_options.threads;
    if (shed_options.rank_provider != nullptr) {
      StatusOr<EdgeRanking> ranking = shed_options.rank_provider(g, betweenness);
      if (!ranking.ok()) return ranking.status();
      if (ranking->ids.size() != num_edges) {
        return Status::Internal(
            "rank provider returned a ranking of the wrong size");
      }
      ranked = std::move(ranking->ids);
      betweenness_seconds = ranking->seconds;
    } else {
      Stopwatch betweenness_watch;
      ranked = analytics::EdgesByBetweennessDescending(g, betweenness);
      betweenness_seconds = betweenness_watch.ElapsedSeconds();
    }
  } else {
    ranked.resize(num_edges);
    std::iota(ranked.begin(), ranked.end(), graph::EdgeId{0});
    rng.Shuffle(&ranked);
  }
  if (CancellationRequested(cancel)) return cancel->ToStatus();
  std::vector<CachedEdge> kept = CacheEndpoints(g, ranked.data(), target);
  std::vector<CachedEdge> excluded =
      CacheEndpoints(g, ranked.data() + target, num_edges - target);
  const double phase1_seconds = phase1_watch.ElapsedSeconds();

  DegreeDiscrepancy discrepancy(g, p);
  for (const CachedEdge& e : kept) {
    discrepancy.AddEdge(e.u, e.v);
  }

  // ---- Phase 2: random swap attempts between E' and E \ E'. ----
  Stopwatch phase2_watch;
  const uint64_t steps = StepsFor(g, p);
  uint64_t accepted = 0;
  // Poll the token once per 4096 swap attempts: a single predictable branch
  // amortized over thousands of draws, so the loop stays branch-cheap and
  // the swap sequence is bit-identical whenever the token never trips.
  constexpr uint64_t kCancelCheckMask = 4096 - 1;
  if (!kept.empty() && !excluded.empty()) {
    for (uint64_t step = 0; step < steps; ++step) {
      if ((step & kCancelCheckMask) == 0 && CancellationRequested(cancel)) {
        return cancel->ToStatus();
      }
      const size_t kept_index = rng.UniformIndex(kept.size());
      const size_t excluded_index = rng.UniformIndex(excluded.size());
      const CachedEdge removal = kept[kept_index];
      const CachedEdge addition = excluded[excluded_index];

      // d1, d2 exactly as Algorithm 1 lines 10-11: both evaluated against
      // the current state. (When the two edges share an endpoint the true
      // combined change can differ; the paper's acceptance test — which we
      // follow — ignores that interaction, while our Δ bookkeeping below
      // applies the two operations sequentially and stays exact.)
      const double d1 = discrepancy.RemovalDelta(removal.u, removal.v);
      const double d2 = discrepancy.AdditionDelta(addition.u, addition.v);
      const double combined = d1 + d2;
      const bool accept = options_.accept_zero_delta_swaps
                              ? combined <= 0.0
                              : combined < 0.0;
      if (!accept) continue;
      discrepancy.RemoveEdge(removal.u, removal.v);
      discrepancy.AddEdge(addition.u, addition.v);
      std::swap(kept[kept_index], excluded[excluded_index]);
      ++accepted;
    }
  }
  const double phase2_seconds = phase2_watch.ElapsedSeconds();

  result.kept_edges.resize(kept.size());
  for (size_t i = 0; i < kept.size(); ++i) result.kept_edges[i] = kept[i].id;
  ParallelSort(result.kept_edges.begin(), result.kept_edges.end());
  result.total_delta = discrepancy.TotalDelta();
  result.average_delta = discrepancy.AverageDelta();
  result.reduction_seconds = total_watch.ElapsedSeconds();
  result.stats = {
      {"phase1_seconds", phase1_seconds},
      {"phase2_seconds", phase2_seconds},
      {"betweenness_seconds", betweenness_seconds},
      {"steps", static_cast<double>(steps)},
      {"swaps_accepted", static_cast<double>(accepted)},
  };
  return result;
}

}  // namespace edgeshed::core
