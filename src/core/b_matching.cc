#include "core/b_matching.h"

#include <algorithm>
#include <numeric>

#include "common/check.h"

namespace edgeshed::core {

std::vector<graph::EdgeId> GreedyMaximalBMatching(
    const graph::Graph& g, const std::vector<uint32_t>& capacities,
    BMatchingEdgeOrder order, Rng* rng, const CancellationToken* cancel) {
  EDGESHED_CHECK_EQ(capacities.size(), g.NumNodes());

  std::vector<graph::EdgeId> scan(g.NumEdges());
  std::iota(scan.begin(), scan.end(), graph::EdgeId{0});
  switch (order) {
    case BMatchingEdgeOrder::kInputOrder:
      break;
    case BMatchingEdgeOrder::kShuffled:
      EDGESHED_CHECK(rng != nullptr) << "kShuffled requires an Rng";
      rng->Shuffle(&scan);
      break;
    case BMatchingEdgeOrder::kLowDegreeEndpointFirst:
      std::stable_sort(scan.begin(), scan.end(),
                       [&g](graph::EdgeId a, graph::EdgeId b) {
                         const graph::Edge& ea = g.edge(a);
                         const graph::Edge& eb = g.edge(b);
                         uint64_t ka = std::min(g.Degree(ea.u), g.Degree(ea.v));
                         uint64_t kb = std::min(g.Degree(eb.u), g.Degree(eb.v));
                         return ka < kb;
                       });
      break;
  }

  std::vector<uint32_t> load(g.NumNodes(), 0);
  std::vector<graph::EdgeId> matched;
  constexpr uint64_t kCancelCheckMask = 65536 - 1;
  uint64_t scanned = 0;
  for (graph::EdgeId id : scan) {
    if ((scanned++ & kCancelCheckMask) == 0 && CancellationRequested(cancel)) {
      break;  // partial result; the caller checks the token.
    }
    const graph::Edge& e = g.edge(id);
    if (load[e.u] < capacities[e.u] && load[e.v] < capacities[e.v]) {
      ++load[e.u];
      ++load[e.v];
      matched.push_back(id);
    }
  }
  std::sort(matched.begin(), matched.end());
  return matched;
}

bool IsBMatching(const graph::Graph& g,
                 const std::vector<graph::EdgeId>& edge_ids,
                 const std::vector<uint32_t>& capacities) {
  std::vector<uint32_t> load(g.NumNodes(), 0);
  for (graph::EdgeId id : edge_ids) {
    const graph::Edge& e = g.edge(id);
    if (++load[e.u] > capacities[e.u]) return false;
    if (++load[e.v] > capacities[e.v]) return false;
  }
  return true;
}

bool IsMaximalBMatching(const graph::Graph& g,
                        const std::vector<graph::EdgeId>& edge_ids,
                        const std::vector<uint32_t>& capacities) {
  if (!IsBMatching(g, edge_ids, capacities)) return false;
  std::vector<uint32_t> load(g.NumNodes(), 0);
  std::vector<bool> in_matching(g.NumEdges(), false);
  for (graph::EdgeId id : edge_ids) {
    const graph::Edge& e = g.edge(id);
    ++load[e.u];
    ++load[e.v];
    in_matching[id] = true;
  }
  for (graph::EdgeId id = 0; id < g.NumEdges(); ++id) {
    if (in_matching[id]) continue;
    const graph::Edge& e = g.edge(id);
    if (load[e.u] < capacities[e.u] && load[e.v] < capacities[e.v]) {
      return false;  // this edge could still be added
    }
  }
  return true;
}

}  // namespace edgeshed::core
