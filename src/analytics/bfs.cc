#include "analytics/bfs.h"

namespace edgeshed::analytics {

std::vector<int32_t> BfsDistances(const graph::Graph& g,
                                  graph::NodeId source) {
  std::vector<int32_t> distances;
  std::vector<graph::NodeId> queue;
  BfsDistancesInto(g, source, &distances, &queue);
  return distances;
}

void BfsDistancesInto(const graph::Graph& g, graph::NodeId source,
                      std::vector<int32_t>* distances,
                      std::vector<graph::NodeId>* queue) {
  EDGESHED_DCHECK_LT(source, g.NumNodes());
  distances->assign(g.NumNodes(), kUnreachable);
  queue->clear();
  (*distances)[source] = 0;
  queue->push_back(source);
  for (size_t head = 0; head < queue->size(); ++head) {
    graph::NodeId u = (*queue)[head];
    int32_t next = (*distances)[u] + 1;
    for (graph::NodeId v : g.Neighbors(u)) {
      if ((*distances)[v] == kUnreachable) {
        (*distances)[v] = next;
        queue->push_back(v);
      }
    }
  }
}

}  // namespace edgeshed::analytics
