#ifndef EDGESHED_ANALYTICS_CLOSENESS_H_
#define EDGESHED_ANALYTICS_CLOSENESS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace edgeshed::analytics {

/// Controls for closeness/harmonic centrality.
struct ClosenessOptions {
  /// Exact all-sources BFS below this size; sampled sources above.
  uint64_t exact_node_threshold = uint64_t{1} << 14;
  uint64_t sample_sources = 256;
  uint64_t seed = 23;
  int threads = 0;
};

/// Harmonic centrality: H(u) = Σ_{v != u} 1 / d(u, v) with 1/∞ = 0 —
/// the disconnected-robust variant of closeness (Boldi & Vigna 2014).
/// Sampled mode estimates H(u) from BFS out of uniformly chosen sources,
/// rescaled by |V|/sources; by symmetry of d this is unbiased.
std::vector<double> HarmonicCentrality(const graph::Graph& g,
                                       const ClosenessOptions& options = {});

/// Classic closeness restricted to each vertex's component:
/// C(u) = (r_u - 1) / Σ_{v reachable} d(u, v), scaled by (r_u - 1)/(n - 1)
/// (Wasserman-Faust correction), where r_u is u's reachable-set size.
/// Exact only (component bookkeeping does not sample well); prefer
/// HarmonicCentrality for large graphs.
std::vector<double> ClosenessCentrality(const graph::Graph& g,
                                        int threads = 0);

}  // namespace edgeshed::analytics

#endif  // EDGESHED_ANALYTICS_CLOSENESS_H_
