#include "analytics/clustering.h"

#include <algorithm>

#include "common/parallel_for.h"

namespace edgeshed::analytics {

namespace {

/// Size of the intersection of two sorted neighbor lists.
uint64_t SortedIntersectionSize(std::span<const graph::NodeId> a,
                                std::span<const graph::NodeId> b) {
  uint64_t count = 0;
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (a[i] > b[j]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

std::vector<uint64_t> TrianglesPerNode(const graph::Graph& g, int threads) {
  std::vector<uint64_t> triangles(g.NumNodes(), 0);
  ParallelForEach(
      0, g.NumNodes(),
      [&](uint64_t u_index) {
        auto u = static_cast<graph::NodeId>(u_index);
        auto neighbors = g.Neighbors(u);
        uint64_t twice_triangles = 0;
        for (graph::NodeId v : neighbors) {
          // Common neighbors of u and v close a triangle; each triangle at u
          // is found twice (once per incident edge direction).
          twice_triangles += SortedIntersectionSize(neighbors, g.Neighbors(v));
        }
        triangles[u_index] = twice_triangles / 2;
      },
      threads);
  return triangles;
}

std::vector<double> LocalClusteringCoefficients(const graph::Graph& g,
                                                int threads) {
  std::vector<uint64_t> triangles = TrianglesPerNode(g, threads);
  std::vector<double> coefficients(g.NumNodes(), 0.0);
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    uint64_t degree = g.Degree(u);
    if (degree < 2) continue;
    double possible = static_cast<double>(degree) *
                      static_cast<double>(degree - 1) / 2.0;
    coefficients[u] = static_cast<double>(triangles[u]) / possible;
  }
  return coefficients;
}

double AverageClusteringCoefficient(const graph::Graph& g, int threads) {
  if (g.NumNodes() == 0) return 0.0;
  std::vector<double> coefficients = LocalClusteringCoefficients(g, threads);
  double sum = 0.0;
  for (double c : coefficients) sum += c;
  return sum / static_cast<double>(g.NumNodes());
}

std::map<uint64_t, double> ClusteringByDegree(const graph::Graph& g,
                                              int threads) {
  std::vector<double> coefficients = LocalClusteringCoefficients(g, threads);
  std::map<uint64_t, std::pair<double, uint64_t>> sums;  // degree -> (sum, n)
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    auto& [sum, count] = sums[g.Degree(u)];
    sum += coefficients[u];
    ++count;
  }
  std::map<uint64_t, double> means;
  for (const auto& [degree, entry] : sums) {
    means[degree] = entry.first / static_cast<double>(entry.second);
  }
  return means;
}

}  // namespace edgeshed::analytics
