#include "analytics/shortest_paths.h"

#include <algorithm>
#include <mutex>
#include <numeric>
#include <vector>

#include "analytics/bfs.h"
#include "common/parallel_for.h"

namespace edgeshed::analytics {

Histogram DistanceProfile(const graph::Graph& g,
                          const DistanceProfileOptions& options) {
  const uint64_t n = g.NumNodes();
  Histogram profile;
  if (n == 0) return profile;

  std::vector<graph::NodeId> sources;
  if (n <= options.exact_node_threshold || options.sample_sources >= n) {
    sources.resize(n);
    std::iota(sources.begin(), sources.end(), graph::NodeId{0});
  } else {
    Rng rng(options.seed);
    for (uint64_t index : rng.SampleIndices(n, options.sample_sources)) {
      sources.push_back(static_cast<graph::NodeId>(index));
    }
  }

  std::mutex merge_mutex;
  ParallelFor(
      0, sources.size(),
      [&](uint64_t begin, uint64_t end) {
        std::vector<int32_t> distances;
        std::vector<graph::NodeId> queue;
        // Dense local tally per distance; merged under the lock once per
        // chunk. Distances are bounded by the graph diameter (small).
        std::vector<uint64_t> local;
        for (uint64_t i = begin; i < end; ++i) {
          BfsDistancesInto(g, sources[i], &distances, &queue);
          for (graph::NodeId reached : queue) {
            int32_t d = distances[reached];
            if (d <= 0) continue;  // skip the source itself
            if (static_cast<size_t>(d) >= local.size()) {
              local.resize(static_cast<size_t>(d) + 1, 0);
            }
            ++local[static_cast<size_t>(d)];
          }
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        for (size_t d = 1; d < local.size(); ++d) {
          if (local[d] > 0) profile.Add(static_cast<int64_t>(d), local[d]);
        }
      },
      options.threads);
  return profile;
}

double HopPlotFraction(const Histogram& distance_profile, int64_t hops) {
  return distance_profile.CumulativeFractionUpTo(hops);
}

}  // namespace edgeshed::analytics
