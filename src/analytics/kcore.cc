#include "analytics/kcore.h"

#include <algorithm>

namespace edgeshed::analytics {

std::vector<uint32_t> CoreDecomposition(const graph::Graph& g) {
  const uint64_t n = g.NumNodes();
  std::vector<uint32_t> core(n, 0);
  if (n == 0) return core;

  // Bucket-queue peeling: vertices sorted by current degree; repeatedly
  // remove a minimum-degree vertex and decrement its neighbors.
  std::vector<uint32_t> degree(n);
  uint32_t max_degree = 0;
  for (graph::NodeId u = 0; u < n; ++u) {
    degree[u] = static_cast<uint32_t>(g.Degree(u));
    max_degree = std::max(max_degree, degree[u]);
  }
  // bin[d] = start offset of degree-d block in `order`.
  std::vector<uint64_t> bin(max_degree + 2, 0);
  for (graph::NodeId u = 0; u < n; ++u) ++bin[degree[u] + 1];
  for (size_t d = 1; d < bin.size(); ++d) bin[d] += bin[d - 1];
  std::vector<graph::NodeId> order(n);
  std::vector<uint64_t> position(n);
  {
    std::vector<uint64_t> cursor(bin.begin(), bin.end() - 1);
    for (graph::NodeId u = 0; u < n; ++u) {
      position[u] = cursor[degree[u]]++;
      order[position[u]] = u;
    }
  }

  for (uint64_t i = 0; i < n; ++i) {
    const graph::NodeId u = order[i];
    core[u] = degree[u];
    for (graph::NodeId v : g.Neighbors(u)) {
      if (degree[v] <= degree[u]) continue;  // already peeled or equal bin
      // Swap v to the front of its degree block, then shrink the block.
      const uint32_t dv = degree[v];
      const uint64_t block_start = bin[dv];
      const graph::NodeId front = order[block_start];
      if (front != v) {
        std::swap(order[position[v]], order[block_start]);
        std::swap(position[v], position[front]);
      }
      ++bin[dv];
      --degree[v];
    }
  }
  return core;
}

uint32_t Degeneracy(const graph::Graph& g) {
  uint32_t best = 0;
  for (uint32_t c : CoreDecomposition(g)) best = std::max(best, c);
  return best;
}

Histogram CorenessDistribution(const graph::Graph& g) {
  Histogram histogram;
  for (uint32_t c : CoreDecomposition(g)) {
    histogram.Add(static_cast<int64_t>(c));
  }
  return histogram;
}

}  // namespace edgeshed::analytics
