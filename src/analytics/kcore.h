#ifndef EDGESHED_ANALYTICS_KCORE_H_
#define EDGESHED_ANALYTICS_KCORE_H_

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "graph/graph.h"

namespace edgeshed::analytics {

/// k-core decomposition (Matula-Beck peeling, O(|E|) with bucket queues):
/// core[u] is the largest k such that u belongs to a subgraph where every
/// vertex has degree >= k. Coreness is a degree-derived robustness measure,
/// so degree-preserving shedding should keep its *distribution* shape —
/// exercised by the structural-fidelity extension bench.
std::vector<uint32_t> CoreDecomposition(const graph::Graph& g);

/// Maximum coreness over all vertices (the graph's degeneracy).
uint32_t Degeneracy(const graph::Graph& g);

/// Coreness -> vertex-count histogram.
Histogram CorenessDistribution(const graph::Graph& g);

}  // namespace edgeshed::analytics

#endif  // EDGESHED_ANALYTICS_KCORE_H_
