#include "analytics/betweenness.h"

#include <algorithm>
#include <bit>
#include <numeric>

#include "common/parallel.h"
#include "common/random.h"

namespace edgeshed::analytics {

namespace {

// Dense bitmap helpers (one bit per vertex). The visited bitmap keeps the
// hot membership test of the bottom-up sweep inside ~|V|/8 bytes — L1/L2
// resident even when the int32 dist array is not.
inline bool TestBit(const std::vector<uint64_t>& bits, graph::NodeId v) {
  return (bits[v >> 6] >> (v & 63)) & 1u;
}
inline void SetBit(std::vector<uint64_t>& bits, graph::NodeId v) {
  bits[v >> 6] |= uint64_t{1} << (v & 63);
}
inline void ClearBit(std::vector<uint64_t>& bits, graph::NodeId v) {
  bits[v >> 6] &= ~(uint64_t{1} << (v & 63));
}

/// Per-thread scratch for Brandes source sweeps. The per-sweep vectors are
/// reset by every sweep; the accumulator pair persists across sweeps (and
/// adaptive waves) and is allocated lazily on the first sweep, so a
/// partition cancelled before it starts never pays the O(|V|+|E|)
/// zero-fill.
struct BrandesScratch {
  // Per-sweep state.
  std::vector<int32_t> dist;
  std::vector<double> sigma;   // shortest-path counts
  std::vector<double> delta;   // dependency accumulator
  std::vector<double> coeff;   // (1 + delta[w]) / sigma[w], per level
  std::vector<graph::NodeId> order;       // concatenated BFS levels
  std::vector<uint64_t> level_offsets;    // order[level_offsets[l]..[l+1])
  std::vector<uint64_t> level_degrees;    // summed degree per level
  std::vector<graph::NodeId> candidates;  // still-unvisited, ascending
  std::vector<uint64_t> visited_bits;
  std::vector<uint64_t> frontier_bits;
  // Partial accumulators (persist across sweeps within one partition).
  std::vector<double> node_acc;
  std::vector<double> edge_acc;

  void EnsureAccumulators(uint64_t num_nodes, uint64_t num_edges) {
    if (node_acc.empty()) {
      node_acc.assign(num_nodes, 0.0);
      edge_acc.assign(num_edges, 0.0);
    }
  }
};

/// One level-synchronous Brandes sweep from `source`, accumulating into the
/// scratch's partials. Returns false when the cancellation token tripped
/// (polled once per BFS level, both directions); the partials are then
/// garbage and the caller must discard the whole run.
///
/// Canonical ordering contract: every level of the forward BFS is kept
/// sorted by ascending vertex id (top-down levels are rebuilt ascending
/// from a discovery bitmap; bottom-up levels are built ascending by
/// construction), and
/// both directions accumulate sigma — and, in the reverse pass, delta — for
/// a fixed vertex in ascending neighbor order. Every floating-point sum
/// therefore adds the same terms in the same order no matter which
/// direction processed a level, which is what makes the classic and hybrid
/// kernels bit-identical (DESIGN.md §12).
bool BrandesFromSource(const graph::Graph& g, graph::NodeId source,
                       const BetweennessOptions& options,
                       BrandesScratch* scratch) {
  const uint64_t n = g.NumNodes();
  const uint64_t words = (n + 63) / 64;
  const bool hybrid = options.kernel == BetweennessOptions::Kernel::kHybrid;
  auto& dist = scratch->dist;
  auto& sigma = scratch->sigma;
  auto& delta = scratch->delta;
  auto& coeff = scratch->coeff;
  auto& order = scratch->order;
  auto& level_offsets = scratch->level_offsets;
  auto& level_degrees = scratch->level_degrees;
  auto& candidates = scratch->candidates;
  auto& visited = scratch->visited_bits;
  auto& frontier_bits = scratch->frontier_bits;

  dist.assign(n, -1);
  sigma.assign(n, 0.0);
  delta.assign(n, 0.0);
  coeff.resize(n);
  order.clear();
  level_offsets.clear();
  level_degrees.clear();
  candidates.clear();
  visited.assign(words, 0);
  frontier_bits.assign(words, 0);
  bool candidates_valid = false;

  dist[source] = 0;
  sigma[source] = 1.0;
  SetBit(visited, source);
  order.push_back(source);
  level_offsets.push_back(0);
  level_offsets.push_back(1);
  level_degrees.push_back(g.Degree(source));
  uint64_t unvisited_degree = g.TotalDegree() - level_degrees[0];

  // ---- Forward pass: level-synchronous BFS with per-level direction
  // choice. A level's successors are discovered top-down (push from the
  // frontier) or bottom-up (pull over the unvisited candidates), whichever
  // side's summed degree is cheaper to scan. ----
  size_t level = 0;
  while (level_offsets[level] < level_offsets[level + 1]) {
    if (CancellationRequested(options.cancel)) return false;
    const uint64_t begin = level_offsets[level];
    const uint64_t end = level_offsets[level + 1];
    const int32_t next_level = static_cast<int32_t>(level) + 1;
    const bool bottom_up =
        hybrid && static_cast<double>(level_degrees[level]) >
                      options.hybrid_alpha * static_cast<double>(unvisited_degree);
    uint64_t next_degree = 0;
    if (!bottom_up) {
      // Top-down: scan the (sorted) frontier; discover and accumulate sigma
      // in one pass, marking new vertices in a scratch bitmap. The new level
      // is then rebuilt in ascending id order by scanning the bitmap words —
      // O(|V|/64 + level) instead of an O(level log level) sort, and the
      // same canonical order either way.
      for (uint64_t i = begin; i < end; ++i) {
        const graph::NodeId u = order[i];
        const double sigma_u = sigma[u];
        for (graph::NodeId v : g.Neighbors(u)) {
          if (!TestBit(visited, v)) {
            SetBit(visited, v);
            SetBit(frontier_bits, v);
            dist[v] = next_level;
            next_degree += g.Degree(v);
          }
          if (dist[v] == next_level) sigma[v] += sigma_u;
        }
      }
      for (uint64_t word = 0; word < words; ++word) {
        uint64_t bits = frontier_bits[word];
        frontier_bits[word] = 0;
        while (bits != 0) {
          const int bit = std::countr_zero(bits);
          bits &= bits - 1;
          order.push_back(static_cast<graph::NodeId>(word * 64 +
                                                     static_cast<uint64_t>(bit)));
        }
      }
    } else {
      // Bottom-up: every unvisited candidate pulls from the frontier. The
      // frontier membership test runs against a dense bitmap so the inner
      // loop touches |V|/8 bytes instead of the 4-byte-per-vertex dist
      // array; sigma is summed locally in ascending neighbor order.
      for (uint64_t i = begin; i < end; ++i) SetBit(frontier_bits, order[i]);
      if (!candidates_valid) {
        for (graph::NodeId v = 0; v < n; ++v) {
          if (!TestBit(visited, v)) candidates.push_back(v);
        }
        candidates_valid = true;
      }
      size_t keep = 0;
      for (const graph::NodeId v : candidates) {
        if (TestBit(visited, v)) continue;  // discovered by an earlier level
        double s = 0.0;
        bool reached = false;
        for (graph::NodeId u : g.Neighbors(v)) {
          if (TestBit(frontier_bits, u)) {
            s += sigma[u];
            reached = true;
          }
        }
        if (reached) {
          SetBit(visited, v);
          dist[v] = next_level;
          sigma[v] = s;
          order.push_back(v);  // candidates ascend, so the level ascends
          next_degree += g.Degree(v);
        } else {
          candidates[keep++] = v;
        }
      }
      candidates.resize(keep);
      for (uint64_t i = begin; i < end; ++i) {
        ClearBit(frontier_bits, order[i]);
      }
    }
    level_offsets.push_back(order.size());
    level_degrees.push_back(next_degree);
    unvisited_degree -= next_degree;
    ++level;
  }
  // Levels 0..level-1 are non-empty; level_offsets[level+1] closes the last
  // (empty) one.

  // ---- Reverse pass: dependency accumulation, level-synchronous and
  // direction-optimized the same way. For each level l (descending), the
  // per-successor coefficient (1+delta[w])/sigma[w] is computed once into a
  // dense array; pushing from level l and pulling into level l-1 then
  // produce bit-identical sums (same terms, same ascending-w order per
  // target), so the direction choice is purely a cost decision. ----
  for (size_t l = level; l-- > 1;) {
    if (CancellationRequested(options.cancel)) return false;
    const uint64_t w_begin = level_offsets[l];
    const uint64_t w_end = level_offsets[l + 1];
    for (uint64_t i = w_begin; i < w_end; ++i) {
      const graph::NodeId w = order[i];
      coeff[w] = (1.0 + delta[w]) / sigma[w];
    }
    const bool pull = hybrid && level_degrees[l - 1] < level_degrees[l];
    const int32_t succ_level = static_cast<int32_t>(l);
    if (!pull) {
      for (uint64_t i = w_begin; i < w_end; ++i) {
        const graph::NodeId w = order[i];
        const double cw = coeff[w];
        const auto neighbors = g.Neighbors(w);
        const auto incident = g.IncidentEdges(w);
        for (size_t j = 0; j < neighbors.size(); ++j) {
          const graph::NodeId v = neighbors[j];
          if (dist[v] + 1 != succ_level) continue;  // not a predecessor
          const double contribution = sigma[v] * cw;
          delta[v] += contribution;
          scratch->edge_acc[incident[j]] += contribution;
        }
      }
    } else {
      for (uint64_t i = level_offsets[l - 1]; i < w_begin; ++i) {
        const graph::NodeId v = order[i];
        const double sigma_v = sigma[v];
        const auto neighbors = g.Neighbors(v);
        const auto incident = g.IncidentEdges(v);
        for (size_t j = 0; j < neighbors.size(); ++j) {
          const graph::NodeId w = neighbors[j];
          if (dist[w] != succ_level) continue;  // not a successor
          const double contribution = sigma_v * coeff[w];
          delta[v] += contribution;
          scratch->edge_acc[incident[j]] += contribution;
        }
      }
    }
  }
  for (uint64_t i = 1; i < order.size(); ++i) {  // skip the source itself
    const graph::NodeId w = order[i];
    scratch->node_acc[w] += delta[w];
  }
  return true;
}

/// Ids of the k highest-scoring edges, sorted ascending by id (set
/// semantics) for cheap overlap computation. Ties break toward the lower
/// edge id, matching EdgesByBetweennessDescending.
std::vector<graph::EdgeId> TopKEdgeIds(const std::vector<double>& scores,
                                       uint64_t k) {
  std::vector<graph::EdgeId> ids(scores.size());
  std::iota(ids.begin(), ids.end(), graph::EdgeId{0});
  k = std::min<uint64_t>(k, ids.size());
  std::nth_element(ids.begin(), ids.begin() + static_cast<ptrdiff_t>(k),
                   ids.end(), [&scores](graph::EdgeId a, graph::EdgeId b) {
                     if (scores[a] != scores[b]) return scores[a] > scores[b];
                     return a < b;
                   });
  ids.resize(k);
  std::sort(ids.begin(), ids.end());
  return ids;
}

uint64_t SortedIntersectionSize(const std::vector<graph::EdgeId>& a,
                                const std::vector<graph::EdgeId>& b) {
  uint64_t count = 0;
  size_t i = 0, j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      ++i;
    } else if (b[j] < a[i]) {
      ++j;
    } else {
      ++count;
      ++i;
      ++j;
    }
  }
  return count;
}

}  // namespace

BetweennessScores Betweenness(const graph::Graph& g,
                              const BetweennessOptions& options) {
  const uint64_t n = g.NumNodes();
  const uint64_t m = g.NumEdges();
  BetweennessScores scores;
  scores.node.assign(n, 0.0);
  scores.edge.assign(m, 0.0);
  if (n == 0) return scores;

  std::vector<graph::NodeId> sources;
  bool sampled = false;
  if (n <= options.exact_node_threshold || options.sample_sources >= n) {
    sources.resize(n);
    std::iota(sources.begin(), sources.end(), graph::NodeId{0});
  } else {
    Rng rng(options.seed);
    for (uint64_t index : rng.SampleIndices(n, options.sample_sources)) {
      sources.push_back(static_cast<graph::NodeId>(index));
    }
    sampled = true;
  }

  // Striped reduction instead of a global merge mutex: the sources are split
  // into a fixed number of contiguous partitions, each with its own
  // accumulator pair, so sweep threads never contend. The partition count
  // depends only on the source count — never on the thread count — and the
  // partials are summed per index in ascending partition order below, so the
  // floating-point accumulation order (and therefore every bit of the
  // result) is identical for any EDGESHED_THREADS value.
  constexpr uint64_t kMaxPartials = 16;
  constexpr uint64_t kMinSourcesPerPartial = 4;
  const uint64_t num_partials = std::clamp<uint64_t>(
      sources.size() / kMinSourcesPerPartial, 1, kMaxPartials);
  std::vector<BrandesScratch> scratches(num_partials);

  // Adaptive pivot waves (sampled mode only): the sources are processed in
  // fixed consecutive slices; after each wave the partials are merged
  // deterministically and the run stops once the top-k edge ranking agrees
  // with the previous wave's. The stripe layout is computed from the *full*
  // source count, so an early stop changes how many sources each partial
  // swept but never the accumulation order of the ones it did.
  const uint64_t total = sources.size();
  const uint64_t wave_size =
      (sampled && options.wave_size > 0) ? options.wave_size : total;
  const uint64_t wave_top_k =
      options.wave_top_k > 0
          ? options.wave_top_k
          : std::max<uint64_t>(256, m / 2);
  uint64_t processed = 0;
  uint64_t waves_run = 0;
  std::vector<graph::EdgeId> prev_top_k;
  std::vector<double> wave_merged;

  while (processed < total) {
    const uint64_t wave_begin = processed;
    const uint64_t wave_end = std::min(total, wave_begin + wave_size);
    ParallelForEach(
        0, num_partials,
        [&](uint64_t part) {
          BrandesScratch& scratch = scratches[part];
          const uint64_t stripe_first = total * part / num_partials;
          const uint64_t stripe_last = total * (part + 1) / num_partials;
          const uint64_t first = std::max(stripe_first, wave_begin);
          const uint64_t last = std::min(stripe_last, wave_end);
          if (first >= last) return;
          scratch.EnsureAccumulators(n, m);
          for (uint64_t i = first; i < last; ++i) {
            // Cancellation is polled per BFS level inside the sweep; a
            // tripped token abandons the partition and the caller discards
            // the whole run.
            if (!BrandesFromSource(g, sources[i], options, &scratch)) return;
          }
        },
        options.threads, /*grain=*/1);
    if (CancellationRequested(options.cancel)) return scores;
    processed = wave_end;
    ++waves_run;
    if (processed >= total) break;
    // Stability check against the previous wave's merged ranking. The merge
    // is per-index in ascending partition order — deterministic — and the
    // ranking comparison is a plain top-k set overlap.
    wave_merged.assign(m, 0.0);
    ParallelFor(
        0, m,
        [&](uint64_t begin, uint64_t end) {
          for (uint64_t part = 0; part < num_partials; ++part) {
            const auto& acc = scratches[part].edge_acc;
            if (acc.empty()) continue;
            for (uint64_t e = begin; e < end; ++e) wave_merged[e] += acc[e];
          }
        },
        options.threads);
    std::vector<graph::EdgeId> top_k = TopKEdgeIds(wave_merged, wave_top_k);
    if (!prev_top_k.empty() && !top_k.empty()) {
      const double overlap =
          static_cast<double>(SortedIntersectionSize(prev_top_k, top_k)) /
          static_cast<double>(top_k.size());
      if (overlap >= options.wave_stability) break;
    }
    prev_top_k = std::move(top_k);
  }

  const double rescale =
      sampled ? static_cast<double>(n) / static_cast<double>(processed) : 1.0;

  // Range-partitioned merge: each index is owned by exactly one chunk, and
  // partials are added in fixed partition order (lazily allocated partials
  // that never ran a sweep stay empty and contribute nothing). Halve the
  // directed double count and apply the sampling rescale in the same pass.
  const double factor = 0.5 * rescale;
  ParallelFor(
      0, n,
      [&](uint64_t begin, uint64_t end) {
        for (uint64_t u = begin; u < end; ++u) {
          double acc = 0.0;
          for (uint64_t part = 0; part < num_partials; ++part) {
            if (scratches[part].node_acc.empty()) continue;
            acc += scratches[part].node_acc[u];
          }
          scores.node[u] = acc * factor;
        }
      },
      options.threads);
  ParallelFor(
      0, m,
      [&](uint64_t begin, uint64_t end) {
        for (uint64_t e = begin; e < end; ++e) {
          double acc = 0.0;
          for (uint64_t part = 0; part < num_partials; ++part) {
            if (scratches[part].edge_acc.empty()) continue;
            acc += scratches[part].edge_acc[e];
          }
          scores.edge[e] = acc * factor;
        }
      },
      options.threads);
  scores.sources_processed = processed;
  scores.waves = waves_run;
  return scores;
}

std::vector<graph::EdgeId> EdgesByBetweennessDescending(
    const graph::Graph& g, const BetweennessOptions& options) {
  BetweennessScores scores = Betweenness(g, options);
  std::vector<graph::EdgeId> ids(g.NumEdges());
  std::iota(ids.begin(), ids.end(), graph::EdgeId{0});
  // Cancelled: skip the sort, the ranking is garbage either way and the
  // caller must check the token before trusting it.
  if (CancellationRequested(options.cancel)) return ids;
  ParallelSort(ids.begin(), ids.end(),
               [&scores](graph::EdgeId a, graph::EdgeId b) {
                 if (scores.edge[a] != scores.edge[b]) {
                   return scores.edge[a] > scores.edge[b];
                 }
                 return a < b;
               },
               options.threads);
  return ids;
}

}  // namespace edgeshed::analytics
