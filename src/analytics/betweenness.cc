#include "analytics/betweenness.h"

#include <algorithm>
#include <numeric>

#include "common/parallel.h"
#include "common/random.h"

namespace edgeshed::analytics {

namespace {

/// Per-thread scratch for one Brandes source sweep.
struct BrandesScratch {
  std::vector<int32_t> dist;
  std::vector<double> sigma;   // shortest-path counts
  std::vector<double> delta;   // dependency accumulator
  std::vector<graph::NodeId> order;  // BFS pop order
  std::vector<double> node_acc;
  std::vector<double> edge_acc;

  void Init(uint64_t num_nodes, uint64_t num_edges) {
    node_acc.assign(num_nodes, 0.0);
    edge_acc.assign(num_edges, 0.0);
    dist.reserve(num_nodes);
    sigma.reserve(num_nodes);
    delta.reserve(num_nodes);
    order.reserve(num_nodes);
  }
};

void BrandesFromSource(const graph::Graph& g, graph::NodeId source,
                       BrandesScratch* scratch) {
  const uint64_t n = g.NumNodes();
  auto& dist = scratch->dist;
  auto& sigma = scratch->sigma;
  auto& delta = scratch->delta;
  auto& order = scratch->order;

  dist.assign(n, -1);
  sigma.assign(n, 0.0);
  delta.assign(n, 0.0);
  order.clear();

  dist[source] = 0;
  sigma[source] = 1.0;
  order.push_back(source);
  for (size_t head = 0; head < order.size(); ++head) {
    graph::NodeId u = order[head];
    int32_t next = dist[u] + 1;
    for (graph::NodeId v : g.Neighbors(u)) {
      if (dist[v] < 0) {
        dist[v] = next;
        order.push_back(v);
      }
      if (dist[v] == next) sigma[v] += sigma[u];
    }
  }

  // Reverse accumulation. For each vertex w (in reverse BFS order), each
  // predecessor edge (v, w) carries sigma[v]/sigma[w] * (1 + delta[w]).
  for (size_t i = order.size(); i-- > 1;) {  // skip the source itself
    graph::NodeId w = order[i];
    const double coefficient = (1.0 + delta[w]) / sigma[w];
    auto neighbors = g.Neighbors(w);
    auto incident = g.IncidentEdges(w);
    for (size_t j = 0; j < neighbors.size(); ++j) {
      graph::NodeId v = neighbors[j];
      if (dist[v] + 1 != dist[w]) continue;  // not a predecessor
      const double contribution = sigma[v] * coefficient;
      delta[v] += contribution;
      scratch->edge_acc[incident[j]] += contribution;
    }
    scratch->node_acc[w] += delta[w];
  }
}

}  // namespace

BetweennessScores Betweenness(const graph::Graph& g,
                              const BetweennessOptions& options) {
  const uint64_t n = g.NumNodes();
  BetweennessScores scores;
  scores.node.assign(n, 0.0);
  scores.edge.assign(g.NumEdges(), 0.0);
  if (n == 0) return scores;

  std::vector<graph::NodeId> sources;
  double rescale = 1.0;
  if (n <= options.exact_node_threshold || options.sample_sources >= n) {
    sources.resize(n);
    std::iota(sources.begin(), sources.end(), graph::NodeId{0});
  } else {
    Rng rng(options.seed);
    for (uint64_t index : rng.SampleIndices(n, options.sample_sources)) {
      sources.push_back(static_cast<graph::NodeId>(index));
    }
    rescale = static_cast<double>(n) / static_cast<double>(sources.size());
  }

  // Striped reduction instead of a global merge mutex: the sources are split
  // into a fixed number of contiguous partitions, each with its own
  // accumulator pair, so sweep threads never contend. The partition count
  // depends only on the source count — never on the thread count — and the
  // partials are summed per index in ascending partition order below, so the
  // floating-point accumulation order (and therefore every bit of the
  // result) is identical for any EDGESHED_THREADS value.
  const uint64_t m = g.NumEdges();
  constexpr uint64_t kMaxPartials = 16;
  constexpr uint64_t kMinSourcesPerPartial = 4;
  const uint64_t num_partials = std::clamp<uint64_t>(
      sources.size() / kMinSourcesPerPartial, 1, kMaxPartials);
  std::vector<std::vector<double>> node_parts(num_partials);
  std::vector<std::vector<double>> edge_parts(num_partials);
  ParallelForEach(
      0, num_partials,
      [&](uint64_t part) {
        BrandesScratch scratch;
        scratch.Init(n, m);
        const uint64_t first = sources.size() * part / num_partials;
        const uint64_t last = sources.size() * (part + 1) / num_partials;
        for (uint64_t i = first; i < last; ++i) {
          // One poll per source sweep (each sweep is O(|V|+|E|), so the
          // check is far off the hot path). A tripped token abandons the
          // partition; the caller checks the token and discards the scores.
          if (CancellationRequested(options.cancel)) return;
          BrandesFromSource(g, sources[i], &scratch);
        }
        node_parts[part] = std::move(scratch.node_acc);
        edge_parts[part] = std::move(scratch.edge_acc);
      },
      options.threads, /*grain=*/1);

  // Cancelled mid-sweep: the partials are incomplete, so merging them would
  // only launder garbage. Return the zeroed scores; the caller is required
  // to check the token before using them.
  if (CancellationRequested(options.cancel)) return scores;

  // Range-partitioned merge: each index is owned by exactly one chunk, and
  // partials are added in fixed partition order. Halve the directed double
  // count and apply the sampling rescale in the same pass.
  const double factor = 0.5 * rescale;
  ParallelFor(
      0, n,
      [&](uint64_t begin, uint64_t end) {
        for (uint64_t u = begin; u < end; ++u) {
          double acc = 0.0;
          for (uint64_t part = 0; part < num_partials; ++part) {
            acc += node_parts[part][u];
          }
          scores.node[u] = acc * factor;
        }
      },
      options.threads);
  ParallelFor(
      0, m,
      [&](uint64_t begin, uint64_t end) {
        for (uint64_t e = begin; e < end; ++e) {
          double acc = 0.0;
          for (uint64_t part = 0; part < num_partials; ++part) {
            acc += edge_parts[part][e];
          }
          scores.edge[e] = acc * factor;
        }
      },
      options.threads);
  return scores;
}

std::vector<graph::EdgeId> EdgesByBetweennessDescending(
    const graph::Graph& g, const BetweennessOptions& options) {
  BetweennessScores scores = Betweenness(g, options);
  std::vector<graph::EdgeId> ids(g.NumEdges());
  std::iota(ids.begin(), ids.end(), graph::EdgeId{0});
  // Cancelled: skip the sort, the ranking is garbage either way and the
  // caller must check the token before trusting it.
  if (CancellationRequested(options.cancel)) return ids;
  ParallelSort(ids.begin(), ids.end(),
               [&scores](graph::EdgeId a, graph::EdgeId b) {
                 if (scores.edge[a] != scores.edge[b]) {
                   return scores.edge[a] > scores.edge[b];
                 }
                 return a < b;
               },
               options.threads);
  return ids;
}

}  // namespace edgeshed::analytics
