#include "analytics/betweenness.h"

#include <algorithm>
#include <mutex>
#include <numeric>

#include "common/parallel_for.h"
#include "common/random.h"

namespace edgeshed::analytics {

namespace {

/// Per-thread scratch for one Brandes source sweep.
struct BrandesScratch {
  std::vector<int32_t> dist;
  std::vector<double> sigma;   // shortest-path counts
  std::vector<double> delta;   // dependency accumulator
  std::vector<graph::NodeId> order;  // BFS pop order
  std::vector<double> node_acc;
  std::vector<double> edge_acc;

  void Init(uint64_t num_nodes, uint64_t num_edges) {
    node_acc.assign(num_nodes, 0.0);
    edge_acc.assign(num_edges, 0.0);
    dist.reserve(num_nodes);
    sigma.reserve(num_nodes);
    delta.reserve(num_nodes);
    order.reserve(num_nodes);
  }
};

void BrandesFromSource(const graph::Graph& g, graph::NodeId source,
                       BrandesScratch* scratch) {
  const uint64_t n = g.NumNodes();
  auto& dist = scratch->dist;
  auto& sigma = scratch->sigma;
  auto& delta = scratch->delta;
  auto& order = scratch->order;

  dist.assign(n, -1);
  sigma.assign(n, 0.0);
  delta.assign(n, 0.0);
  order.clear();

  dist[source] = 0;
  sigma[source] = 1.0;
  order.push_back(source);
  for (size_t head = 0; head < order.size(); ++head) {
    graph::NodeId u = order[head];
    int32_t next = dist[u] + 1;
    for (graph::NodeId v : g.Neighbors(u)) {
      if (dist[v] < 0) {
        dist[v] = next;
        order.push_back(v);
      }
      if (dist[v] == next) sigma[v] += sigma[u];
    }
  }

  // Reverse accumulation. For each vertex w (in reverse BFS order), each
  // predecessor edge (v, w) carries sigma[v]/sigma[w] * (1 + delta[w]).
  for (size_t i = order.size(); i-- > 1;) {  // skip the source itself
    graph::NodeId w = order[i];
    const double coefficient = (1.0 + delta[w]) / sigma[w];
    auto neighbors = g.Neighbors(w);
    auto incident = g.IncidentEdges(w);
    for (size_t j = 0; j < neighbors.size(); ++j) {
      graph::NodeId v = neighbors[j];
      if (dist[v] + 1 != dist[w]) continue;  // not a predecessor
      const double contribution = sigma[v] * coefficient;
      delta[v] += contribution;
      scratch->edge_acc[incident[j]] += contribution;
    }
    scratch->node_acc[w] += delta[w];
  }
}

}  // namespace

BetweennessScores Betweenness(const graph::Graph& g,
                              const BetweennessOptions& options) {
  const uint64_t n = g.NumNodes();
  BetweennessScores scores;
  scores.node.assign(n, 0.0);
  scores.edge.assign(g.NumEdges(), 0.0);
  if (n == 0) return scores;

  std::vector<graph::NodeId> sources;
  double rescale = 1.0;
  if (n <= options.exact_node_threshold || options.sample_sources >= n) {
    sources.resize(n);
    std::iota(sources.begin(), sources.end(), graph::NodeId{0});
  } else {
    Rng rng(options.seed);
    for (uint64_t index : rng.SampleIndices(n, options.sample_sources)) {
      sources.push_back(static_cast<graph::NodeId>(index));
    }
    rescale = static_cast<double>(n) / static_cast<double>(sources.size());
  }

  std::mutex merge_mutex;
  ParallelFor(
      0, sources.size(),
      [&](uint64_t begin, uint64_t end) {
        BrandesScratch scratch;
        scratch.Init(n, g.NumEdges());
        for (uint64_t i = begin; i < end; ++i) {
          BrandesFromSource(g, sources[i], &scratch);
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        for (uint64_t u = 0; u < n; ++u) scores.node[u] += scratch.node_acc[u];
        for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
          scores.edge[e] += scratch.edge_acc[e];
        }
      },
      options.threads);

  // Halve the directed double count; apply sampling rescale.
  const double factor = 0.5 * rescale;
  for (double& score : scores.node) score *= factor;
  for (double& score : scores.edge) score *= factor;
  return scores;
}

std::vector<graph::EdgeId> EdgesByBetweennessDescending(
    const graph::Graph& g, const BetweennessOptions& options) {
  BetweennessScores scores = Betweenness(g, options);
  std::vector<graph::EdgeId> ids(g.NumEdges());
  std::iota(ids.begin(), ids.end(), graph::EdgeId{0});
  std::stable_sort(ids.begin(), ids.end(),
                   [&scores](graph::EdgeId a, graph::EdgeId b) {
                     if (scores.edge[a] != scores.edge[b]) {
                       return scores.edge[a] > scores.edge[b];
                     }
                     return a < b;
                   });
  return ids;
}

}  // namespace edgeshed::analytics
