#ifndef EDGESHED_ANALYTICS_EIGENVECTOR_H_
#define EDGESHED_ANALYTICS_EIGENVECTOR_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace edgeshed::analytics {

/// Controls for eigenvector-centrality power iteration.
struct EigenvectorOptions {
  uint32_t max_iterations = 200;
  /// Stop when the L2 change between normalized iterates drops below this.
  double tolerance = 1e-10;
  int threads = 0;
};

/// Eigenvector centrality: the principal eigenvector of the adjacency
/// matrix, L2-normalized and non-negative. A centrality alternative to
/// PageRank for the top-k experiments; on disconnected graphs mass
/// concentrates on the component with the largest spectral radius (the
/// standard behavior). Vertices of degree 0 score 0.
std::vector<double> EigenvectorCentrality(
    const graph::Graph& g, const EigenvectorOptions& options = {});

}  // namespace edgeshed::analytics

#endif  // EDGESHED_ANALYTICS_EIGENVECTOR_H_
