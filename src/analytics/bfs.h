#ifndef EDGESHED_ANALYTICS_BFS_H_
#define EDGESHED_ANALYTICS_BFS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace edgeshed::analytics {

/// Distance label for vertices not reached by a traversal.
constexpr int32_t kUnreachable = -1;

/// Single-source BFS. Returns one distance per vertex (hops), kUnreachable
/// for vertices in other components.
std::vector<int32_t> BfsDistances(const graph::Graph& g, graph::NodeId source);

/// BFS reusing caller-provided scratch to avoid reallocation in tight loops
/// (Brandes, sampled distance profiles). `distances` is resized and reset;
/// `queue` is cleared and used as the frontier.
void BfsDistancesInto(const graph::Graph& g, graph::NodeId source,
                      std::vector<int32_t>* distances,
                      std::vector<graph::NodeId>* queue);

}  // namespace edgeshed::analytics

#endif  // EDGESHED_ANALYTICS_BFS_H_
