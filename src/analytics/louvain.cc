#include "analytics/louvain.h"

#include <algorithm>
#include <numeric>
#include <unordered_map>

#include "common/check.h"
#include "graph/graph_builder.h"

namespace edgeshed::analytics {

namespace {

/// Weighted multigraph view used across aggregation levels.
struct LevelGraph {
  // CSR-ish: per-node neighbor/weight lists (self-loops carry intra-
  // community weight after aggregation).
  std::vector<std::vector<std::pair<uint32_t, double>>> adjacency;
  std::vector<double> self_loop;  // weight of u's self-loop (counted once)
  double total_weight = 0.0;      // m: sum of edge weights (undirected)

  uint32_t NumNodes() const {
    return static_cast<uint32_t>(adjacency.size());
  }
  double WeightedDegree(uint32_t u) const {
    double sum = 2.0 * self_loop[u];
    for (const auto& [v, w] : adjacency[u]) sum += w;
    return sum;
  }
};

LevelGraph FromGraph(const graph::Graph& g) {
  LevelGraph level;
  level.adjacency.resize(g.NumNodes());
  level.self_loop.assign(g.NumNodes(), 0.0);
  for (const graph::Edge& e : g.edges()) {
    level.adjacency[e.u].emplace_back(e.v, 1.0);
    level.adjacency[e.v].emplace_back(e.u, 1.0);
  }
  level.total_weight = static_cast<double>(g.NumEdges());
  return level;
}

/// One level of local moves; returns (community labels, modularity gain
/// achieved at this level).
std::vector<uint32_t> LocalMoves(const LevelGraph& level,
                                 const LouvainOptions& options, Rng& rng,
                                 bool* moved_any) {
  const uint32_t n = level.NumNodes();
  std::vector<uint32_t> community(n);
  std::iota(community.begin(), community.end(), 0u);
  if (level.total_weight <= 0.0) {
    *moved_any = false;
    return community;
  }
  const double m2 = 2.0 * level.total_weight;

  std::vector<double> community_total(n);  // Σ weighted degrees per community
  std::vector<double> degree(n);
  for (uint32_t u = 0; u < n; ++u) {
    degree[u] = level.WeightedDegree(u);
    community_total[u] = degree[u];
  }

  std::vector<uint32_t> order(n);
  std::iota(order.begin(), order.end(), 0u);
  std::unordered_map<uint32_t, double> weight_to;  // community -> edge weight

  *moved_any = false;
  for (uint32_t sweep = 0; sweep < options.max_sweeps_per_level; ++sweep) {
    rng.Shuffle(&order);
    uint32_t moves = 0;
    for (uint32_t u : order) {
      const uint32_t current = community[u];
      weight_to.clear();
      weight_to[current];  // ensure present
      for (const auto& [v, w] : level.adjacency[u]) {
        weight_to[community[v]] += w;
      }
      // Remove u from its community.
      community_total[current] -= degree[u];
      // Best community by modularity gain: ΔQ ∝ w_to(c) − deg(u)·tot(c)/2m.
      uint32_t best = current;
      double best_gain = weight_to[current] -
                         degree[u] * community_total[current] / m2;
      for (const auto& [c, w] : weight_to) {
        if (c == best) continue;
        const double gain = w - degree[u] * community_total[c] / m2;
        if (gain > best_gain + 1e-12) {
          best = c;
          best_gain = gain;
        }
      }
      community_total[best] += degree[u];
      if (best != current) {
        community[u] = best;
        ++moves;
      }
    }
    if (moves == 0) break;
    *moved_any = true;
  }
  return community;
}

/// Aggregates communities into a coarser LevelGraph; `dense_of` maps the
/// level's node ids to coarse ids.
LevelGraph Aggregate(const LevelGraph& level,
                     const std::vector<uint32_t>& community,
                     std::vector<uint32_t>* dense_of) {
  const uint32_t n = level.NumNodes();
  dense_of->assign(n, 0);
  std::unordered_map<uint32_t, uint32_t> dense;
  for (uint32_t u = 0; u < n; ++u) {
    auto [it, inserted] =
        dense.emplace(community[u], static_cast<uint32_t>(dense.size()));
    (*dense_of)[u] = it->second;
  }
  LevelGraph coarse;
  coarse.adjacency.resize(dense.size());
  coarse.self_loop.assign(dense.size(), 0.0);
  coarse.total_weight = level.total_weight;

  std::unordered_map<uint64_t, double> pair_weight;
  for (uint32_t u = 0; u < n; ++u) {
    const uint32_t cu = (*dense_of)[u];
    coarse.self_loop[cu] += level.self_loop[u];
    for (const auto& [v, w] : level.adjacency[u]) {
      const uint32_t cv = (*dense_of)[v];
      if (cu == cv) {
        // Each undirected edge appears twice in adjacency; halve.
        coarse.self_loop[cu] += w / 2.0;
      } else if (cu < cv) {
        pair_weight[(static_cast<uint64_t>(cu) << 32) | cv] += w;
      }
    }
  }
  for (const auto& [key, w] : pair_weight) {
    const auto cu = static_cast<uint32_t>(key >> 32);
    const auto cv = static_cast<uint32_t>(key & 0xffffffffu);
    coarse.adjacency[cu].emplace_back(cv, w);
    coarse.adjacency[cv].emplace_back(cu, w);
  }
  return coarse;
}

}  // namespace

double Modularity(const graph::Graph& g,
                  const std::vector<uint32_t>& community) {
  EDGESHED_CHECK_EQ(community.size(), g.NumNodes());
  const double m = static_cast<double>(g.NumEdges());
  if (m <= 0.0) return 0.0;
  std::unordered_map<uint32_t, double> internal;
  std::unordered_map<uint32_t, double> total;
  for (const graph::Edge& e : g.edges()) {
    if (community[e.u] == community[e.v]) internal[community[e.u]] += 1.0;
  }
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    total[community[u]] += static_cast<double>(g.Degree(u));
  }
  double q = 0.0;
  for (const auto& [c, tot] : total) {
    const double in = internal.contains(c) ? internal.at(c) : 0.0;
    q += in / m - (tot / (2.0 * m)) * (tot / (2.0 * m));
  }
  return q;
}

LouvainResult Louvain(const graph::Graph& g, const LouvainOptions& options) {
  LouvainResult result;
  result.community.resize(g.NumNodes());
  std::iota(result.community.begin(), result.community.end(), 0u);
  if (g.NumNodes() == 0) return result;

  Rng rng(options.seed);
  LevelGraph level = FromGraph(g);
  // node_to_coarse[u]: current coarse id of original vertex u.
  std::vector<uint32_t> node_to_coarse(g.NumNodes());
  std::iota(node_to_coarse.begin(), node_to_coarse.end(), 0u);

  for (uint32_t pass = 0; pass < options.max_levels; ++pass) {
    bool moved = false;
    std::vector<uint32_t> community = LocalMoves(level, options, rng, &moved);
    if (!moved) break;
    ++result.levels;
    std::vector<uint32_t> dense_of;
    level = Aggregate(level, community, &dense_of);
    // dense_of maps a level node to its coarse id (already through its
    // community), so composing with the running map is one lookup.
    for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
      node_to_coarse[u] = dense_of[node_to_coarse[u]];
    }
    if (level.NumNodes() <= 1) break;
  }

  // Densify final labels over original vertices.
  std::unordered_map<uint32_t, uint32_t> dense;
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    auto [it, inserted] = dense.emplace(
        node_to_coarse[u], static_cast<uint32_t>(dense.size()));
    result.community[u] = it->second;
  }
  result.num_communities = static_cast<uint32_t>(dense.size());
  result.modularity = Modularity(g, result.community);
  return result;
}

}  // namespace edgeshed::analytics
