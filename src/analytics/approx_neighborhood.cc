#include "analytics/approx_neighborhood.h"

#include <cmath>

#include "analytics/hyperloglog.h"
#include "common/random.h"

namespace edgeshed::analytics {

double NeighborhoodFunction::EffectiveDiameter(double quantile) const {
  if (pairs_within.empty() || pairs_within.back() <= 0.0) return 0.0;
  const double target = quantile * pairs_within.back();
  for (size_t k = 1; k < pairs_within.size(); ++k) {
    if (pairs_within[k] >= target) {
      // Linear interpolation between k-1 and k.
      const double below = pairs_within[k - 1];
      const double above = pairs_within[k];
      if (above <= below) return static_cast<double>(k);
      return static_cast<double>(k - 1) + (target - below) / (above - below);
    }
  }
  return static_cast<double>(pairs_within.size() - 1);
}

NeighborhoodFunction ApproximateNeighborhoodFunction(
    const graph::Graph& g, const ApproxNeighborhoodOptions& options) {
  NeighborhoodFunction result;
  const uint64_t n = g.NumNodes();
  result.pairs_within.push_back(0.0);
  if (n == 0) return result;

  // counters[u] sketches the ball B(u, k); swap buffers per iteration.
  std::vector<HyperLogLog> current(n, HyperLogLog(options.precision));
  for (uint64_t u = 0; u < n; ++u) {
    uint64_t h = options.seed ^ u;
    current[u].AddHashed(SplitMix64Next(&h));
  }

  double previous_pairs = 0.0;
  for (uint32_t distance = 1; distance <= options.max_distance; ++distance) {
    std::vector<HyperLogLog> next = current;
    bool any_changed = false;
    for (graph::NodeId u = 0; u < n; ++u) {
      for (graph::NodeId v : g.Neighbors(u)) {
        any_changed |= next[u].Merge(current[v]);
      }
    }
    current.swap(next);
    double pairs = 0.0;
    for (uint64_t u = 0; u < n; ++u) {
      pairs += std::max(0.0, current[u].Estimate() - 1.0);  // exclude self
    }
    result.pairs_within.push_back(pairs);
    if (!any_changed || pairs <= previous_pairs * (1.0 + 1e-4)) {
      // Converged: clamp the tail to the final value.
      result.pairs_within.back() =
          std::max(result.pairs_within.back(), previous_pairs);
      break;
    }
    previous_pairs = pairs;
  }
  return result;
}

}  // namespace edgeshed::analytics
