#ifndef EDGESHED_ANALYTICS_DEGREE_H_
#define EDGESHED_ANALYTICS_DEGREE_H_

#include "common/histogram.h"
#include "graph/graph.h"

namespace edgeshed::analytics {

/// Degree -> vertex-count histogram. `cap` > 0 aggregates all degrees above
/// the cap into one bucket, as the paper does for email-Enron (cap 300,
/// Fig. 5c-d).
Histogram DegreeDistribution(const graph::Graph& g, int64_t cap = 0);

/// Maximum vertex degree (0 for the empty graph).
uint64_t MaxDegree(const graph::Graph& g);

/// Degree distribution of the *original* graph as estimated from a reduced
/// graph: since both shedding methods maintain E[deg_G'(u)] = p·deg_G(u)
/// (Eq. 1), each vertex's original degree is estimated by round(deg'/p).
/// This estimator is what makes the paper's Fig. 5c-d / Fig. 6 curves sit
/// on top of the original distribution.
Histogram EstimatedDegreeDistribution(const graph::Graph& reduced, double p,
                                      int64_t cap = 0);

}  // namespace edgeshed::analytics

#endif  // EDGESHED_ANALYTICS_DEGREE_H_
