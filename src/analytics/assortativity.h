#ifndef EDGESHED_ANALYTICS_ASSORTATIVITY_H_
#define EDGESHED_ANALYTICS_ASSORTATIVITY_H_

#include "graph/graph.h"

namespace edgeshed::analytics {

/// Degree assortativity coefficient (Newman 2002): the Pearson correlation
/// of the degrees at the two ends of an edge, in [-1, 1]. Positive for
/// social networks (hubs link to hubs), negative for technological ones.
/// Returns 0 for graphs with < 2 edges or zero degree variance.
double DegreeAssortativity(const graph::Graph& g);

/// Mean degree of the neighbors of vertices with each degree k — the
/// k_nn(k) curve behind the assortativity coefficient; useful for fidelity
/// plots. Returned per vertex: average neighbor degree (0 for isolated).
std::vector<double> AverageNeighborDegrees(const graph::Graph& g);

}  // namespace edgeshed::analytics

#endif  // EDGESHED_ANALYTICS_ASSORTATIVITY_H_
