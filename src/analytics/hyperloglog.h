#ifndef EDGESHED_ANALYTICS_HYPERLOGLOG_H_
#define EDGESHED_ANALYTICS_HYPERLOGLOG_H_

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "common/check.h"

namespace edgeshed::analytics {

/// HyperLogLog cardinality sketch (Flajolet et al. 2007) with the standard
/// small-range linear-counting correction. Fixed-precision registers are
/// stored inline so arrays of counters (one per vertex, as HyperANF needs)
/// are cache-friendly and mergeable with element-wise max.
class HyperLogLog {
 public:
  /// `precision` selects 2^precision registers; 4 <= precision <= 16.
  /// Standard error ~ 1.04 / sqrt(2^precision).
  explicit HyperLogLog(uint32_t precision = 10) : precision_(precision) {
    EDGESHED_CHECK(precision >= 4 && precision <= 16);
    registers_.assign(size_t{1} << precision, 0);
  }

  /// Inserts a pre-hashed 64-bit value. Callers hash their items (use
  /// SplitMix64Next for integers).
  void AddHashed(uint64_t hash) {
    const uint64_t index = hash >> (64 - precision_);
    const uint64_t remainder = hash << precision_;
    const uint8_t rank = remainder == 0
                             ? static_cast<uint8_t>(65 - precision_)
                             : static_cast<uint8_t>(
                                   std::countl_zero(remainder) + 1);
    registers_[index] = std::max(registers_[index], rank);
  }

  /// Union with another sketch of identical precision (element-wise max).
  /// Returns true if any register changed — HyperANF's convergence signal.
  bool Merge(const HyperLogLog& other) {
    EDGESHED_DCHECK_EQ(precision_, other.precision_);
    bool changed = false;
    for (size_t i = 0; i < registers_.size(); ++i) {
      if (other.registers_[i] > registers_[i]) {
        registers_[i] = other.registers_[i];
        changed = true;
      }
    }
    return changed;
  }

  /// Estimated cardinality.
  double Estimate() const;

  uint32_t precision() const { return precision_; }

 private:
  uint32_t precision_;
  std::vector<uint8_t> registers_;
};

}  // namespace edgeshed::analytics

#endif  // EDGESHED_ANALYTICS_HYPERLOGLOG_H_
