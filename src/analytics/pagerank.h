#ifndef EDGESHED_ANALYTICS_PAGERANK_H_
#define EDGESHED_ANALYTICS_PAGERANK_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace edgeshed::analytics {

/// Controls for PageRank power iteration.
struct PageRankOptions {
  double damping = 0.85;
  /// Stop when the L1 change between iterations drops below this.
  double tolerance = 1e-9;
  uint32_t max_iterations = 100;
  int threads = 0;
};

/// PageRank on the undirected graph (each edge walked both ways). Dangling
/// (degree-0) vertices — common in reduced graphs — spread their mass
/// uniformly, the standard correction. Scores sum to 1.
std::vector<double> PageRank(const graph::Graph& g,
                             const PageRankOptions& options = {});

/// Indices of the `k` highest-scoring entries of `scores`, ties broken by
/// lower index; used by the Top-k utility (paper task 6).
std::vector<uint32_t> TopKIndices(const std::vector<double>& scores,
                                  uint64_t k);

}  // namespace edgeshed::analytics

#endif  // EDGESHED_ANALYTICS_PAGERANK_H_
