#ifndef EDGESHED_ANALYTICS_BETWEENNESS_H_
#define EDGESHED_ANALYTICS_BETWEENNESS_H_

#include <cstdint>
#include <vector>

#include "common/cancellation.h"
#include "graph/graph.h"

namespace edgeshed::analytics {

/// Controls for Brandes betweenness centrality.
struct BetweennessOptions {
  /// Run the exact algorithm (every vertex a source) when |V| <= this.
  /// Above it, uniformly sampled sources are used with unbiased rescaling —
  /// the laptop-scale substitution documented in DESIGN.md §3.
  uint64_t exact_node_threshold = uint64_t{1} << 14;
  /// Number of source pivots when sampling.
  uint64_t sample_sources = 256;
  /// Seed for pivot sampling.
  uint64_t seed = 13;
  /// Worker threads (0 = DefaultThreadCount()).
  int threads = 0;
  /// Optional cooperative cancellation, polled once per BFS *level* inside
  /// every sweep, so even a single sweep on a large graph aborts within
  /// milliseconds of a trip. When it trips, the returned scores are
  /// meaningless — the caller must check the token and discard them.
  const CancellationToken* cancel = nullptr;

  /// Which per-source sweep kernel to run. Both are level-synchronous with
  /// canonically ordered (ascending vertex id) frontiers, which makes their
  /// floating-point accumulation sequences — and therefore their scores —
  /// bit-identical to each other (DESIGN.md §12).
  ///  * kClassic: top-down push on every level, both directions of the sweep.
  ///  * kHybrid: direction-optimizing — a level is processed bottom-up (pull
  ///    over the still-unvisited candidates / the previous level) whenever
  ///    that side's summed degree is the cheaper one to scan.
  enum class Kernel { kClassic, kHybrid };
  Kernel kernel = Kernel::kHybrid;
  /// Hybrid switch threshold: a forward level goes bottom-up when
  /// deg(frontier) > hybrid_alpha * deg(unvisited). 1.0 is the break-even
  /// cost model (betweenness pulls cannot early-exit, so unlike plain BFS
  /// there is no asymmetry factor to bake in).
  double hybrid_alpha = 1.0;

  /// Adaptive pivot scheduling (sampled mode only). When wave_size > 0 the
  /// sampled sources are processed in fixed consecutive waves of this size
  /// and the run stops early once the top-k edge *ranking* — what CRR
  /// Phase 1 consumes — stabilizes between consecutive waves. The wave
  /// schedule and the stop decision depend only on the options and the
  /// deterministic merged partials, never on the thread count, so scores
  /// stay bit-identical for every EDGESHED_THREADS value. 0 = single pass.
  uint64_t wave_size = 0;
  /// Stop once |top-k(wave i) ∩ top-k(wave i-1)| / k >= this. Values > 1
  /// never stop early (useful for testing wave bookkeeping).
  double wave_stability = 0.95;
  /// k for the stability check; 0 = auto (|E|/2, at least 256) — the slice a
  /// balanced (p = 0.5) CRR reduction consumes from the ranking. Smaller k
  /// watches a more elite slice and stops later; larger k stops sooner.
  uint64_t wave_top_k = 0;

  /// Forces exact computation regardless of size.
  static BetweennessOptions Exact() {
    BetweennessOptions options;
    options.exact_node_threshold = static_cast<uint64_t>(-1);
    return options;
  }

  /// The ranking fast path: hybrid kernel plus adaptive pivot waves. This is
  /// what CRR Phase 1 runs by default (DESIGN.md §12).
  static BetweennessOptions FastRanking() {
    BetweennessOptions options;
    options.kernel = Kernel::kHybrid;
    options.wave_size = 8;
    options.wave_stability = 0.85;
    return options;
  }
};

/// Node and edge betweenness centrality, computed together in one Brandes
/// pass (Brandes 2001: O(|V||E|) time, O(|V|+|E|) space per source).
///
/// Convention: scores count each unordered (s,t) pair once (the directed
/// double-count is halved). Sampled mode rescales by |V|/sources so values
/// estimate the exact ones; rankings — which is what both CRR and the
/// paper's Fig. 8 consume — converge quickly.
///
/// Determinism: per-source sweeps accumulate into a fixed number of striped
/// partials whose layout depends only on the source count, partials are
/// merged in a fixed order, and the adaptive-wave stop decision is computed
/// from deterministically merged partials, so scores are bit-identical for
/// every thread count (DESIGN.md "Parallel hot path", §12). The classic and
/// hybrid kernels share one canonical accumulation order and are
/// bit-identical to each other.
struct BetweennessScores {
  std::vector<double> node;  // indexed by NodeId
  std::vector<double> edge;  // indexed by EdgeId
  /// Source sweeps actually executed (== the source count unless an
  /// adaptive-wave run stopped early).
  uint64_t sources_processed = 0;
  /// Waves executed; 1 for non-wave runs on non-empty graphs.
  uint64_t waves = 0;
};

BetweennessScores Betweenness(const graph::Graph& g,
                              const BetweennessOptions& options = {});

/// Edge ids of `g` sorted by non-increasing betweenness (ties broken by
/// edge id for determinism). Convenience for CRR Phase 1.
std::vector<graph::EdgeId> EdgesByBetweennessDescending(
    const graph::Graph& g, const BetweennessOptions& options = {});

}  // namespace edgeshed::analytics

#endif  // EDGESHED_ANALYTICS_BETWEENNESS_H_
