#ifndef EDGESHED_ANALYTICS_BETWEENNESS_H_
#define EDGESHED_ANALYTICS_BETWEENNESS_H_

#include <cstdint>
#include <vector>

#include "common/cancellation.h"
#include "graph/graph.h"

namespace edgeshed::analytics {

/// Controls for Brandes betweenness centrality.
struct BetweennessOptions {
  /// Run the exact algorithm (every vertex a source) when |V| <= this.
  /// Above it, uniformly sampled sources are used with unbiased rescaling —
  /// the laptop-scale substitution documented in DESIGN.md §3.
  uint64_t exact_node_threshold = uint64_t{1} << 14;
  /// Number of source pivots when sampling.
  uint64_t sample_sources = 256;
  /// Seed for pivot sampling.
  uint64_t seed = 13;
  /// Worker threads (0 = DefaultThreadCount()).
  int threads = 0;
  /// Optional cooperative cancellation, polled once per source sweep. When
  /// it trips, the remaining sweeps are skipped and the returned scores are
  /// meaningless — the caller must check the token and discard them.
  const CancellationToken* cancel = nullptr;

  /// Forces exact computation regardless of size.
  static BetweennessOptions Exact() {
    BetweennessOptions options;
    options.exact_node_threshold = static_cast<uint64_t>(-1);
    return options;
  }
};

/// Node and edge betweenness centrality, computed together in one Brandes
/// pass (Brandes 2001: O(|V||E|) time, O(|V|+|E|) space per source).
///
/// Convention: scores count each unordered (s,t) pair once (the directed
/// double-count is halved). Sampled mode rescales by |V|/sources so values
/// estimate the exact ones; rankings — which is what both CRR and the
/// paper's Fig. 8 consume — converge quickly.
///
/// Determinism: per-source sweeps accumulate into a fixed number of striped
/// partials whose layout depends only on the source count, and partials are
/// merged in a fixed order, so scores are bit-identical for every thread
/// count (DESIGN.md "Parallel hot path").
struct BetweennessScores {
  std::vector<double> node;  // indexed by NodeId
  std::vector<double> edge;  // indexed by EdgeId
};

BetweennessScores Betweenness(const graph::Graph& g,
                              const BetweennessOptions& options = {});

/// Edge ids of `g` sorted by non-increasing betweenness (ties broken by
/// edge id for determinism). Convenience for CRR Phase 1.
std::vector<graph::EdgeId> EdgesByBetweennessDescending(
    const graph::Graph& g, const BetweennessOptions& options = {});

}  // namespace edgeshed::analytics

#endif  // EDGESHED_ANALYTICS_BETWEENNESS_H_
