#include "analytics/components.h"

#include <algorithm>

#include "common/check.h"

namespace edgeshed::analytics {

uint32_t ComponentResult::LargestComponent() const {
  EDGESHED_CHECK(!sizes.empty());
  return static_cast<uint32_t>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
}

ComponentResult ConnectedComponents(const graph::Graph& g) {
  constexpr uint32_t kUnassigned = static_cast<uint32_t>(-1);
  ComponentResult result;
  result.component.assign(g.NumNodes(), kUnassigned);
  std::vector<graph::NodeId> stack;
  for (graph::NodeId root = 0; root < g.NumNodes(); ++root) {
    if (result.component[root] != kUnassigned) continue;
    uint32_t id = result.NumComponents();
    result.sizes.push_back(0);
    result.component[root] = id;
    stack.push_back(root);
    while (!stack.empty()) {
      graph::NodeId u = stack.back();
      stack.pop_back();
      ++result.sizes[id];
      for (graph::NodeId v : g.Neighbors(u)) {
        if (result.component[v] == kUnassigned) {
          result.component[v] = id;
          stack.push_back(v);
        }
      }
    }
  }
  return result;
}

}  // namespace edgeshed::analytics
