#ifndef EDGESHED_ANALYTICS_CLUSTERING_H_
#define EDGESHED_ANALYTICS_CLUSTERING_H_

#include <cstdint>
#include <map>
#include <vector>

#include "graph/graph.h"

namespace edgeshed::analytics {

/// Local clustering coefficient per vertex: triangles(u) / C(deg(u), 2);
/// 0 for vertices of degree < 2. Exact, via sorted-adjacency intersection.
std::vector<double> LocalClusteringCoefficients(const graph::Graph& g,
                                                int threads = 0);

/// Number of triangles through each vertex.
std::vector<uint64_t> TrianglesPerNode(const graph::Graph& g,
                                       int threads = 0);

/// Average of the local coefficients over all vertices (the network average
/// clustering coefficient).
double AverageClusteringCoefficient(const graph::Graph& g, int threads = 0);

/// Mean local clustering coefficient of the vertices at each degree value —
/// the "clustering coefficient of the average k-degree vertex" curve of
/// Fig. 9. Degrees with no vertices are absent from the map.
std::map<uint64_t, double> ClusteringByDegree(const graph::Graph& g,
                                              int threads = 0);

}  // namespace edgeshed::analytics

#endif  // EDGESHED_ANALYTICS_CLUSTERING_H_
