#include "analytics/closeness.h"

#include <mutex>
#include <numeric>

#include "analytics/bfs.h"
#include "common/parallel_for.h"
#include "common/random.h"

namespace edgeshed::analytics {

std::vector<double> HarmonicCentrality(const graph::Graph& g,
                                       const ClosenessOptions& options) {
  const uint64_t n = g.NumNodes();
  std::vector<double> centrality(n, 0.0);
  if (n == 0) return centrality;

  std::vector<graph::NodeId> sources;
  double rescale = 1.0;
  if (n <= options.exact_node_threshold || options.sample_sources >= n) {
    sources.resize(n);
    std::iota(sources.begin(), sources.end(), graph::NodeId{0});
  } else {
    Rng rng(options.seed);
    for (uint64_t index : rng.SampleIndices(n, options.sample_sources)) {
      sources.push_back(static_cast<graph::NodeId>(index));
    }
    rescale = static_cast<double>(n) / static_cast<double>(sources.size());
  }

  // H(u) = Σ_s 1/d(s, u): accumulate per target from each source's BFS.
  // (d is symmetric, so summing over sampled sources estimates the sum
  // over all counterparts.)
  std::mutex merge_mutex;
  ParallelFor(
      0, sources.size(),
      [&](uint64_t begin, uint64_t end) {
        std::vector<int32_t> distances;
        std::vector<graph::NodeId> queue;
        std::vector<double> local(n, 0.0);
        for (uint64_t i = begin; i < end; ++i) {
          BfsDistancesInto(g, sources[i], &distances, &queue);
          for (graph::NodeId reached : queue) {
            const int32_t d = distances[reached];
            if (d > 0) local[reached] += 1.0 / static_cast<double>(d);
          }
        }
        std::lock_guard<std::mutex> lock(merge_mutex);
        for (uint64_t u = 0; u < n; ++u) centrality[u] += local[u];
      },
      options.threads);
  for (double& value : centrality) value *= rescale;
  return centrality;
}

std::vector<double> ClosenessCentrality(const graph::Graph& g, int threads) {
  const uint64_t n = g.NumNodes();
  std::vector<double> centrality(n, 0.0);
  if (n <= 1) return centrality;
  ParallelForEach(
      0, n,
      [&](uint64_t u_index) {
        thread_local std::vector<int32_t> distances;
        thread_local std::vector<graph::NodeId> queue;
        BfsDistancesInto(g, static_cast<graph::NodeId>(u_index), &distances,
                         &queue);
        uint64_t reachable = queue.size();  // includes u itself
        if (reachable <= 1) return;
        double distance_sum = 0.0;
        for (graph::NodeId reached : queue) {
          distance_sum += static_cast<double>(distances[reached]);
        }
        const double r = static_cast<double>(reachable);
        // Wasserman-Faust: scale by component coverage.
        centrality[u_index] =
            (r - 1.0) / distance_sum * (r - 1.0) /
            (static_cast<double>(n) - 1.0);
      },
      threads);
  return centrality;
}

}  // namespace edgeshed::analytics
