#ifndef EDGESHED_ANALYTICS_LOUVAIN_H_
#define EDGESHED_ANALYTICS_LOUVAIN_H_

#include <cstdint>
#include <vector>

#include "common/random.h"
#include "graph/graph.h"

namespace edgeshed::analytics {

/// Controls for Louvain modularity optimization.
struct LouvainOptions {
  /// Maximum local-move sweeps per level.
  uint32_t max_sweeps_per_level = 16;
  /// Maximum aggregation levels.
  uint32_t max_levels = 16;
  /// Stop a level once a sweep improves modularity by less than this.
  double min_modularity_gain = 1e-6;
  uint64_t seed = 29;
};

/// Result of a Louvain run.
struct LouvainResult {
  /// community[u] in [0, num_communities), dense labels.
  std::vector<uint32_t> community;
  uint32_t num_communities = 0;
  /// Modularity Q of the final partition.
  double modularity = 0.0;
  uint32_t levels = 0;
};

/// Louvain community detection (Blondel et al. 2008): greedy local moves
/// maximizing modularity, then graph aggregation, repeated until no gain.
/// Deterministic given the seed (vertex visiting order is shuffled once per
/// sweep). An alternative to the node2vec + k-means pipeline for the
/// paper's "link prediction within community" task — structural instead of
/// embedding-based.
LouvainResult Louvain(const graph::Graph& g,
                      const LouvainOptions& options = {});

/// Modularity Q of an arbitrary partition of `g` (labels need not be
/// dense). Q = Σ_c [ in_c / m − (tot_c / 2m)^2 ] with m = |E|.
double Modularity(const graph::Graph& g,
                  const std::vector<uint32_t>& community);

}  // namespace edgeshed::analytics

#endif  // EDGESHED_ANALYTICS_LOUVAIN_H_
