#include "analytics/eigenvector.h"

#include <cmath>

#include "common/parallel_for.h"

namespace edgeshed::analytics {

std::vector<double> EigenvectorCentrality(const graph::Graph& g,
                                          const EigenvectorOptions& options) {
  const uint64_t n = g.NumNodes();
  if (n == 0) return {};
  if (g.NumEdges() == 0) return std::vector<double>(n, 0.0);
  std::vector<double> current(n, 1.0 / std::sqrt(static_cast<double>(n)));
  std::vector<double> next(n, 0.0);

  for (uint32_t iteration = 0; iteration < options.max_iterations;
       ++iteration) {
    // Iterate (A + I) rather than A: same principal eigenvector, but the
    // shift breaks the ±λ degeneracy of bipartite graphs (a star would
    // otherwise oscillate forever with period 2).
    ParallelForEach(
        0, n,
        [&](uint64_t u_index) {
          const auto u = static_cast<graph::NodeId>(u_index);
          double sum = current[u_index];
          for (graph::NodeId v : g.Neighbors(u)) sum += current[v];
          next[u_index] = sum;
        },
        options.threads);
    double norm = 0.0;
    for (double value : next) norm += value * value;
    norm = std::sqrt(norm);
    if (norm <= 0.0) {
      // Edgeless graph: no centrality signal.
      return std::vector<double>(n, 0.0);
    }
    double change = 0.0;
    for (uint64_t u = 0; u < n; ++u) {
      next[u] /= norm;
      const double diff = next[u] - current[u];
      change += diff * diff;
    }
    current.swap(next);
    if (std::sqrt(change) < options.tolerance) break;
  }
  // Isolated vertices carry residual mass from the +I shift; the principal
  // eigenvector of A assigns them 0. Zero them and renormalize.
  double norm = 0.0;
  for (graph::NodeId u = 0; u < n; ++u) {
    if (g.Degree(u) == 0) current[u] = 0.0;
    norm += current[u] * current[u];
  }
  norm = std::sqrt(norm);
  if (norm > 0.0) {
    for (double& value : current) value /= norm;
  }
  return current;
}

}  // namespace edgeshed::analytics
