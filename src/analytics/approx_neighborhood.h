#ifndef EDGESHED_ANALYTICS_APPROX_NEIGHBORHOOD_H_
#define EDGESHED_ANALYTICS_APPROX_NEIGHBORHOOD_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace edgeshed::analytics {

/// HyperANF-style approximate neighborhood function (Boldi, Rosa & Vigna,
/// WWW 2011): N(k) = number of ordered vertex pairs within distance <= k,
/// estimated by iterating per-vertex HyperLogLog sketches of the ball
/// B(u, k). One pass per distance, O(|E|) sketch merges each — this is how
/// hop-plots stay feasible on LiveJournal-scale graphs where all-sources
/// BFS is not.
struct ApproxNeighborhoodOptions {
  /// HLL precision (2^precision registers per vertex); 10 -> ~3.2% error.
  uint32_t precision = 10;
  /// Hard cap on iterations (diameter guard).
  uint32_t max_distance = 64;
  uint64_t seed = 1;
};

struct NeighborhoodFunction {
  /// pairs_within[k] = estimated # ordered pairs (u, v), u != v, with
  /// d(u, v) <= k. Index 0 is 0 by convention; the last entry is the
  /// converged total (reachable pairs).
  std::vector<double> pairs_within;

  /// Hop-plot value: fraction of reachable pairs within distance k
  /// (1.0 beyond convergence, 0 if no pairs).
  double HopFraction(uint32_t k) const {
    if (pairs_within.empty() || pairs_within.back() <= 0.0) return 0.0;
    const double total = pairs_within.back();
    if (k >= pairs_within.size()) return 1.0;
    return pairs_within[k] / total;
  }

  /// Effective diameter: smallest k with HopFraction(k) >= q (typically
  /// 0.9), linearly interpolated as in the ANF literature.
  double EffectiveDiameter(double quantile = 0.9) const;
};

NeighborhoodFunction ApproximateNeighborhoodFunction(
    const graph::Graph& g, const ApproxNeighborhoodOptions& options = {});

}  // namespace edgeshed::analytics

#endif  // EDGESHED_ANALYTICS_APPROX_NEIGHBORHOOD_H_
