#ifndef EDGESHED_ANALYTICS_SHORTEST_PATHS_H_
#define EDGESHED_ANALYTICS_SHORTEST_PATHS_H_

#include <cstdint>

#include "common/histogram.h"
#include "common/random.h"
#include "graph/graph.h"

namespace edgeshed::analytics {

/// Controls for the all-pairs distance profile.
struct DistanceProfileOptions {
  /// Run exact all-sources BFS when |V| <= this; otherwise sample sources.
  uint64_t exact_node_threshold = 1 << 15;
  /// Number of BFS sources when sampling (ignored in exact mode).
  uint64_t sample_sources = 512;
  /// Seed for source sampling.
  uint64_t seed = 7;
  /// Worker threads (0 = DefaultThreadCount()).
  int threads = 0;
};

/// Distribution of shortest-path distances over reachable ordered vertex
/// pairs (s != t). Exact mode runs BFS from every vertex; sampled mode runs
/// BFS from uniformly chosen sources — the *fraction* per distance is an
/// unbiased estimate either way, which is all the paper's Fig. 7/Fig. 10
/// report (percentages of reachable pairs).
Histogram DistanceProfile(const graph::Graph& g,
                          const DistanceProfileOptions& options = {});

/// Hop-plot point: fraction of reachable pairs within distance `hops`,
/// derived from a DistanceProfile histogram (Fig. 10). Equivalent to the
/// cumulative distribution of the profile.
double HopPlotFraction(const Histogram& distance_profile, int64_t hops);

}  // namespace edgeshed::analytics

#endif  // EDGESHED_ANALYTICS_SHORTEST_PATHS_H_
