#include "analytics/pagerank.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>

#include "common/check.h"
#include "common/parallel_for.h"

namespace edgeshed::analytics {

std::vector<double> PageRank(const graph::Graph& g,
                             const PageRankOptions& options) {
  const uint64_t n = g.NumNodes();
  if (n == 0) return {};
  const double uniform = 1.0 / static_cast<double>(n);
  std::vector<double> rank(n, uniform);
  std::vector<double> next(n, 0.0);

  for (uint32_t iteration = 0; iteration < options.max_iterations;
       ++iteration) {
    // Mass parked on dangling vertices is redistributed uniformly.
    double dangling_mass = 0.0;
    for (uint64_t u = 0; u < n; ++u) {
      if (g.Degree(static_cast<graph::NodeId>(u)) == 0) {
        dangling_mass += rank[u];
      }
    }
    const double base =
        (1.0 - options.damping) * uniform +
        options.damping * dangling_mass * uniform;

    ParallelForEach(
        0, n,
        [&](uint64_t u_index) {
          auto u = static_cast<graph::NodeId>(u_index);
          double incoming = 0.0;
          for (graph::NodeId v : g.Neighbors(u)) {
            incoming += rank[v] / static_cast<double>(g.Degree(v));
          }
          next[u_index] = base + options.damping * incoming;
        },
        options.threads);

    double change = 0.0;
    for (uint64_t u = 0; u < n; ++u) change += std::abs(next[u] - rank[u]);
    rank.swap(next);
    if (change < options.tolerance) break;
  }
  return rank;
}

std::vector<uint32_t> TopKIndices(const std::vector<double>& scores,
                                  uint64_t k) {
  k = std::min<uint64_t>(k, scores.size());
  std::vector<uint32_t> indices(scores.size());
  std::iota(indices.begin(), indices.end(), 0u);
  std::partial_sort(indices.begin(), indices.begin() + static_cast<long>(k),
                    indices.end(), [&scores](uint32_t a, uint32_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;
                    });
  indices.resize(k);
  return indices;
}

}  // namespace edgeshed::analytics
