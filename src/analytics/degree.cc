#include "analytics/degree.h"

#include <algorithm>
#include <cmath>

namespace edgeshed::analytics {

Histogram DegreeDistribution(const graph::Graph& g, int64_t cap) {
  Histogram histogram(cap);
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    histogram.Add(static_cast<int64_t>(g.Degree(u)));
  }
  return histogram;
}

Histogram EstimatedDegreeDistribution(const graph::Graph& reduced, double p,
                                      int64_t cap) {
  Histogram histogram(cap);
  for (graph::NodeId u = 0; u < reduced.NumNodes(); ++u) {
    const auto estimate = static_cast<int64_t>(
        std::llround(static_cast<double>(reduced.Degree(u)) / p));
    histogram.Add(estimate);
  }
  return histogram;
}

uint64_t MaxDegree(const graph::Graph& g) {
  uint64_t max_degree = 0;
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    max_degree = std::max(max_degree, g.Degree(u));
  }
  return max_degree;
}

}  // namespace edgeshed::analytics
