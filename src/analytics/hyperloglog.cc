#include "analytics/hyperloglog.h"

#include <cmath>

namespace edgeshed::analytics {

double HyperLogLog::Estimate() const {
  const double m = static_cast<double>(registers_.size());
  double alpha;
  switch (registers_.size()) {
    case 16:
      alpha = 0.673;
      break;
    case 32:
      alpha = 0.697;
      break;
    case 64:
      alpha = 0.709;
      break;
    default:
      alpha = 0.7213 / (1.0 + 1.079 / m);
      break;
  }
  double inverse_sum = 0.0;
  uint64_t zero_registers = 0;
  for (uint8_t r : registers_) {
    inverse_sum += std::ldexp(1.0, -static_cast<int>(r));
    if (r == 0) ++zero_registers;
  }
  double estimate = alpha * m * m / inverse_sum;
  // Small-range correction: linear counting while any register is empty.
  if (estimate <= 2.5 * m && zero_registers > 0) {
    estimate = m * std::log(m / static_cast<double>(zero_registers));
  }
  return estimate;
}

}  // namespace edgeshed::analytics
