#include "analytics/assortativity.h"

#include <cmath>

namespace edgeshed::analytics {

double DegreeAssortativity(const graph::Graph& g) {
  const uint64_t m = g.NumEdges();
  if (m < 2) return 0.0;
  // Newman's formula over edges (j_i, k_i are endpoint degrees):
  //   r = [M^-1 Σ j_i k_i − (M^-1 Σ (j_i+k_i)/2)^2] /
  //       [M^-1 Σ (j_i^2+k_i^2)/2 − (M^-1 Σ (j_i+k_i)/2)^2]
  double sum_product = 0.0;
  double sum_mean = 0.0;
  double sum_square = 0.0;
  for (const graph::Edge& e : g.edges()) {
    const double ju = static_cast<double>(g.Degree(e.u));
    const double kv = static_cast<double>(g.Degree(e.v));
    sum_product += ju * kv;
    sum_mean += 0.5 * (ju + kv);
    sum_square += 0.5 * (ju * ju + kv * kv);
  }
  const double inv_m = 1.0 / static_cast<double>(m);
  const double mean = inv_m * sum_mean;
  const double numerator = inv_m * sum_product - mean * mean;
  const double denominator = inv_m * sum_square - mean * mean;
  if (std::abs(denominator) < 1e-15) return 0.0;
  return numerator / denominator;
}

std::vector<double> AverageNeighborDegrees(const graph::Graph& g) {
  std::vector<double> result(g.NumNodes(), 0.0);
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    const uint64_t degree = g.Degree(u);
    if (degree == 0) continue;
    double sum = 0.0;
    for (graph::NodeId v : g.Neighbors(u)) {
      sum += static_cast<double>(g.Degree(v));
    }
    result[u] = sum / static_cast<double>(degree);
  }
  return result;
}

}  // namespace edgeshed::analytics
