#ifndef EDGESHED_ANALYTICS_COMPONENTS_H_
#define EDGESHED_ANALYTICS_COMPONENTS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace edgeshed::analytics {

/// Connected-component decomposition of an undirected graph.
struct ComponentResult {
  /// component[u] in [0, num_components); components are numbered in
  /// discovery order of their smallest vertex.
  std::vector<uint32_t> component;
  /// sizes[c] = number of vertices in component c.
  std::vector<uint64_t> sizes;

  uint32_t NumComponents() const {
    return static_cast<uint32_t>(sizes.size());
  }
  /// Index of the largest component (ties broken by lower id); 0 components
  /// is a programming error.
  uint32_t LargestComponent() const;
};

ComponentResult ConnectedComponents(const graph::Graph& g);

}  // namespace edgeshed::analytics

#endif  // EDGESHED_ANALYTICS_COMPONENTS_H_
