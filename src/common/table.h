#ifndef EDGESHED_COMMON_TABLE_H_
#define EDGESHED_COMMON_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

namespace edgeshed {

/// Renders aligned plain-text tables in the style of the paper's Tables
/// III–X, used by the bench harness to print reproduced results.
class TablePrinter {
 public:
  /// `title` is printed above the table; may be empty.
  explicit TablePrinter(std::string title = "") : title_(std::move(title)) {}

  /// Sets the header row; resets nothing else.
  void SetHeader(std::vector<std::string> header);

  /// Appends a data row. Rows may be ragged; short rows are padded.
  void AddRow(std::vector<std::string> row);

  /// Appends a horizontal separator line at this position.
  void AddSeparator();

  /// Renders the table.
  void Print(std::ostream& os) const;
  std::string ToString() const;

  /// Emits header + rows as CSV (comma-separated, fields with commas quoted).
  std::string ToCsv() const;

 private:
  struct Row {
    bool separator = false;
    std::vector<std::string> cells;
  };

  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

}  // namespace edgeshed

#endif  // EDGESHED_COMMON_TABLE_H_
