#include "common/crc32.h"

#include <array>

namespace edgeshed {
namespace {

/// Byte-at-a-time lookup table for the reflected polynomial 0xEDB88320,
/// built once at static-init time. Slice-by-8 would be faster but the inputs
/// here (RPC payloads, snapshot files) are nowhere near CRC-bound.
std::array<uint32_t, 256> BuildTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

const std::array<uint32_t, 256>& Table() {
  static const std::array<uint32_t, 256> table = BuildTable();
  return table;
}

}  // namespace

uint32_t Crc32Update(uint32_t state, const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& table = Table();
  for (size_t i = 0; i < len; ++i) {
    state = table[(state ^ bytes[i]) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

}  // namespace edgeshed
