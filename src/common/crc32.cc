#include "common/crc32.h"

#include <array>
#include <cstring>

namespace edgeshed {
namespace {

/// Slicing-by-8 tables for the reflected polynomial 0xEDB88320, built once
/// at static-init time. table[0] is the classic byte-at-a-time table; the
/// other seven fold 8 input bytes per iteration, which keeps checksum
/// verification off the critical path of mmap snapshot ingest (the whole
/// file is CRC'd before a v3 mapping is served).
std::array<std::array<uint32_t, 256>, 8> BuildTables() {
  std::array<std::array<uint32_t, 256>, 8> tables{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    tables[0][i] = c;
  }
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = tables[0][i];
    for (size_t t = 1; t < 8; ++t) {
      c = tables[0][c & 0xFFu] ^ (c >> 8);
      tables[t][i] = c;
    }
  }
  return tables;
}

const std::array<std::array<uint32_t, 256>, 8>& Tables() {
  static const std::array<std::array<uint32_t, 256>, 8> tables = BuildTables();
  return tables;
}

}  // namespace

uint32_t Crc32Update(uint32_t state, const void* data, size_t len) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  const auto& t = Tables();
  // Align to 8 bytes, then fold two 32-bit words per iteration.
  while (len > 0 && (reinterpret_cast<uintptr_t>(bytes) & 7u) != 0) {
    state = t[0][(state ^ *bytes++) & 0xFFu] ^ (state >> 8);
    --len;
  }
  while (len >= 8) {
    uint32_t lo;
    uint32_t hi;
    std::memcpy(&lo, bytes, 4);
    std::memcpy(&hi, bytes + 4, 4);
    lo ^= state;
    state = t[7][lo & 0xFFu] ^ t[6][(lo >> 8) & 0xFFu] ^
            t[5][(lo >> 16) & 0xFFu] ^ t[4][lo >> 24] ^
            t[3][hi & 0xFFu] ^ t[2][(hi >> 8) & 0xFFu] ^
            t[1][(hi >> 16) & 0xFFu] ^ t[0][hi >> 24];
    bytes += 8;
    len -= 8;
  }
  while (len-- > 0) {
    state = t[0][(state ^ *bytes++) & 0xFFu] ^ (state >> 8);
  }
  return state;
}

}  // namespace edgeshed
