#include "common/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace edgeshed {

StatusOr<std::shared_ptr<const MappedFile>> MappedFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IOError("cannot open: " + path + ": " +
                           std::strerror(errno));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    const int err = errno;
    ::close(fd);
    return Status::IOError("cannot stat: " + path + ": " +
                           std::strerror(err));
  }
  const auto size = static_cast<size_t>(st.st_size);
  void* data = nullptr;
  if (size > 0) {
    data = ::mmap(nullptr, size, PROT_READ, MAP_SHARED, fd, 0);
    if (data == MAP_FAILED) {
      const int err = errno;
      ::close(fd);
      return Status::IOError("cannot mmap: " + path + ": " +
                             std::strerror(err));
    }
  }
  ::close(fd);  // the mapping keeps the inode alive
  return std::shared_ptr<const MappedFile>(new MappedFile(path, data, size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

void MappedFile::AdviseSequential() const {
  if (data_ != nullptr) ::madvise(data_, size_, MADV_SEQUENTIAL);
}

}  // namespace edgeshed
