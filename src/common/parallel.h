#ifndef EDGESHED_COMMON_PARALLEL_H_
#define EDGESHED_COMMON_PARALLEL_H_

#include <algorithm>
#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <iterator>
#include <thread>
#include <utility>
#include <vector>

namespace edgeshed {

/// Number of worker threads the parallel helpers use by default (hardware
/// concurrency, at least 1). Override with the EDGESHED_THREADS environment
/// variable; the variable is re-read on every call so tests can flip it
/// between parallel regions.
int DefaultThreadCount();

/// Runs `body(chunk_begin, chunk_end)` over disjoint chunks of
/// [begin, end) across up to `threads` workers (0 = DefaultThreadCount()).
/// Blocks until all chunks complete. `body` must be safe to run concurrently
/// on disjoint ranges. Ranges smaller than `grain` items per worker run
/// inline on the calling thread, so tiny inputs pay no thread-spawn cost.
///
/// This templated overload is the hot-path entry point: the body is invoked
/// directly with no std::function type erasure. Chunks are pulled off a
/// shared counter so skewed per-item cost (e.g. BFS from hub vertices) stays
/// balanced. Chunk *assignment* to threads is nondeterministic; callers that
/// need reproducible floating-point accumulation should use ParallelReduce
/// or write to chunk-indexed slots.
template <typename Body>
void ParallelFor(uint64_t begin, uint64_t end, Body&& body, int threads = 0,
                 uint64_t grain = 256) {
  if (begin >= end) return;
  if (threads <= 0) threads = DefaultThreadCount();
  if (grain == 0) grain = 1;
  const uint64_t total = end - begin;
  const uint64_t usable =
      std::min<uint64_t>(static_cast<uint64_t>(threads),
                         std::max<uint64_t>(1, total / grain));
  if (usable <= 1) {
    body(begin, end);
    return;
  }
  const uint64_t chunk = std::max<uint64_t>(grain, total / (usable * 8));
  std::atomic<uint64_t> next(begin);
  std::vector<std::thread> workers;
  workers.reserve(usable);
  for (uint64_t t = 0; t < usable; ++t) {
    workers.emplace_back([&next, &body, end, chunk]() {
      for (;;) {
        const uint64_t chunk_begin = next.fetch_add(chunk);
        if (chunk_begin >= end) return;
        body(chunk_begin, std::min(end, chunk_begin + chunk));
      }
    });
  }
  for (auto& worker : workers) worker.join();
}

/// Convenience wrapper: calls `body(i)` for each i in [begin, end) in
/// parallel chunks. Same guarantees as ParallelFor.
template <typename Body>
void ParallelForEach(uint64_t begin, uint64_t end, Body&& body,
                     int threads = 0, uint64_t grain = 256) {
  ParallelFor(
      begin, end,
      [&body](uint64_t chunk_begin, uint64_t chunk_end) {
        for (uint64_t i = chunk_begin; i < chunk_end; ++i) body(i);
      },
      threads, grain);
}

/// Parallel *stable* sort: contiguous chunks are stable-sorted in parallel,
/// then merged pairwise with std::inplace_merge (also stable). Because the
/// chunks are contiguous and every merge keeps left-chunk-before-right-chunk
/// order for equal elements, the result is the unique stable-sorted
/// permutation — bit-identical for every thread count and chunk layout.
/// Falls back to std::stable_sort for small inputs.
template <typename RandomIt,
          typename Compare =
              std::less<typename std::iterator_traits<RandomIt>::value_type>>
void ParallelSort(RandomIt first, RandomIt last, Compare comp = Compare(),
                  int threads = 0) {
  const uint64_t total = static_cast<uint64_t>(std::distance(first, last));
  if (threads <= 0) threads = DefaultThreadCount();
  constexpr uint64_t kMinPerChunk = uint64_t{1} << 13;
  uint64_t chunks = std::min<uint64_t>(static_cast<uint64_t>(threads),
                                       std::max<uint64_t>(1, total / kMinPerChunk));
  chunks = std::bit_floor(chunks);  // power of two for the merge tree
  if (chunks <= 1) {
    std::stable_sort(first, last, comp);
    return;
  }
  std::vector<uint64_t> bounds(chunks + 1);
  for (uint64_t c = 0; c <= chunks; ++c) bounds[c] = total * c / chunks;
  ParallelForEach(
      0, chunks,
      [&](uint64_t c) {
        std::stable_sort(first + static_cast<std::ptrdiff_t>(bounds[c]),
                         first + static_cast<std::ptrdiff_t>(bounds[c + 1]),
                         comp);
      },
      threads, /*grain=*/1);
  for (uint64_t width = 1; width < chunks; width *= 2) {
    const uint64_t pairs = chunks / (2 * width);
    ParallelForEach(
        0, pairs,
        [&](uint64_t p) {
          const uint64_t lo = p * 2 * width;
          std::inplace_merge(
              first + static_cast<std::ptrdiff_t>(bounds[lo]),
              first + static_cast<std::ptrdiff_t>(bounds[lo + width]),
              first + static_cast<std::ptrdiff_t>(bounds[lo + 2 * width]),
              comp);
        },
        threads, /*grain=*/1);
  }
}

/// Parallel reduction: `chunk_fn(chunk_begin, chunk_end) -> T` maps each
/// chunk of [begin, end) to a partial, and `combine(acc, partial) -> T`
/// folds the partials together. The chunk grid depends only on the range
/// size — never on the thread count — and partials are combined in ascending
/// chunk order, so the result (including floating-point results) is
/// identical for every EDGESHED_THREADS value.
template <typename T, typename ChunkFn, typename CombineFn>
T ParallelReduce(uint64_t begin, uint64_t end, T identity, ChunkFn&& chunk_fn,
                 CombineFn&& combine, int threads = 0) {
  if (begin >= end) return identity;
  const uint64_t total = end - begin;
  constexpr uint64_t kMinPerChunk = 1024;
  constexpr uint64_t kMaxChunks = 64;
  const uint64_t chunks =
      std::clamp<uint64_t>(total / kMinPerChunk, 1, kMaxChunks);
  std::vector<T> partials(chunks, identity);
  ParallelForEach(
      0, chunks,
      [&](uint64_t c) {
        partials[c] =
            chunk_fn(begin + total * c / chunks, begin + total * (c + 1) / chunks);
      },
      threads, /*grain=*/1);
  T result = std::move(identity);
  for (uint64_t c = 0; c < chunks; ++c) {
    result = combine(std::move(result), std::move(partials[c]));
  }
  return result;
}

}  // namespace edgeshed

#endif  // EDGESHED_COMMON_PARALLEL_H_
