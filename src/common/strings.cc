#include "common/strings.h"

#include <cstdarg>
#include <cstdio>
#include <cstdint>

namespace edgeshed {

std::vector<std::string_view> StrSplit(std::string_view text, char delimiter) {
  std::vector<std::string_view> pieces;
  size_t start = 0;
  while (start <= text.size()) {
    size_t pos = text.find(delimiter, start);
    if (pos == std::string_view::npos) pos = text.size();
    if (pos > start) pieces.push_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view separator) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += separator;
    out += pieces[i];
  }
  return out;
}

std::string_view StripWhitespace(std::string_view text) {
  const char* kWhitespace = " \t\r\n";
  size_t begin = text.find_first_not_of(kWhitespace);
  if (begin == std::string_view::npos) return std::string_view();
  size_t end = text.find_last_not_of(kWhitespace);
  return text.substr(begin, end - begin + 1);
}

std::string StrFormat(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int size = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (size > 0) {
    out.resize(static_cast<size_t>(size));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string FormatDouble(double value, int precision) {
  return StrFormat("%.*f", precision, value);
}

std::string FormatWithCommas(uint64_t value) {
  std::string digits = std::to_string(value);
  std::string out;
  int counter = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (counter > 0 && counter % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++counter;
  }
  return std::string(out.rbegin(), out.rend());
}

}  // namespace edgeshed
