#include "common/random.h"

#include <numeric>

namespace edgeshed {

std::vector<uint64_t> Rng::SampleIndices(uint64_t n, uint64_t k) {
  EDGESHED_CHECK_LE(k, n);
  std::vector<uint64_t> pool(n);
  std::iota(pool.begin(), pool.end(), uint64_t{0});
  for (uint64_t i = 0; i < k; ++i) {
    uint64_t j = i + UniformU64(n - i);
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

}  // namespace edgeshed
