#include "common/histogram.h"

#include <algorithm>
#include <cmath>
#include <set>

namespace edgeshed {

std::vector<int64_t> Histogram::Keys() const {
  std::vector<int64_t> keys;
  keys.reserve(counts_.size());
  for (const auto& [key, count] : counts_) keys.push_back(key);
  return keys;
}

std::vector<std::pair<int64_t, double>> Histogram::Fractions() const {
  std::vector<std::pair<int64_t, double>> out;
  out.reserve(counts_.size());
  for (const auto& [key, count] : counts_) {
    out.emplace_back(key, total_ == 0 ? 0.0
                                      : static_cast<double>(count) /
                                            static_cast<double>(total_));
  }
  return out;
}

double Histogram::CumulativeFractionUpTo(int64_t key) const {
  if (total_ == 0) return 0.0;
  uint64_t mass = 0;
  for (const auto& [k, count] : counts_) {
    if (k > key) break;
    mass += count;
  }
  return static_cast<double>(mass) / static_cast<double>(total_);
}

double Histogram::L1Distance(const Histogram& a, const Histogram& b) {
  std::set<int64_t> keys;
  for (const auto& [key, count] : a.counts_) keys.insert(key);
  for (const auto& [key, count] : b.counts_) keys.insert(key);
  double distance = 0.0;
  for (int64_t key : keys) {
    distance += std::abs(a.FractionFor(key) - b.FractionFor(key));
  }
  return distance;
}

double Histogram::KsDistance(const Histogram& a, const Histogram& b) {
  std::set<int64_t> keys;
  for (const auto& [key, count] : a.counts_) keys.insert(key);
  for (const auto& [key, count] : b.counts_) keys.insert(key);
  double cdf_a = 0.0;
  double cdf_b = 0.0;
  double max_gap = 0.0;
  for (int64_t key : keys) {
    cdf_a += a.FractionFor(key);
    cdf_b += b.FractionFor(key);
    max_gap = std::max(max_gap, std::abs(cdf_a - cdf_b));
  }
  return max_gap;
}

}  // namespace edgeshed
