#ifndef EDGESHED_COMMON_CANCELLATION_H_
#define EDGESHED_COMMON_CANCELLATION_H_

#include <atomic>
#include <chrono>

#include "common/status.h"

namespace edgeshed {

/// Cooperative cancellation signal shared between a controller (for example
/// the service JobScheduler) and a long-running kernel.
///
/// A token carries an atomic cancel flag plus an optional steady-clock
/// deadline. Kernels poll `Triggered()` at coarse grain — per betweenness
/// source sweep, every few thousand CRR swap attempts, every few thousand
/// UDS merge evaluations — so the checks stay off the per-element hot path
/// and the output is bit-identical to an untokened run whenever the token
/// never trips.
///
/// Thread safety: `Cancel()` may be called from any thread at any time;
/// `Triggered()` and `ToStatus()` are safe concurrently. Both trigger causes
/// are monotone: once a token reports triggered it stays triggered (the
/// deadline observation is latched), so a kernel can never see the signal
/// flap and resume partial work.
class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Token with no deadline; trips only via Cancel().
  CancellationToken() = default;

  /// Token that additionally trips itself once `deadline` passes.
  /// `Clock::time_point::max()` means no deadline.
  explicit CancellationToken(Clock::time_point deadline)
      : deadline_(deadline),
        has_deadline_(deadline != Clock::time_point::max()) {}

  CancellationToken(const CancellationToken&) = delete;
  CancellationToken& operator=(const CancellationToken&) = delete;

  /// Trips the token. Idempotent. An explicit cancel takes precedence over a
  /// deadline expiry in `ToStatus()`.
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True once the token was cancelled or its deadline passed. Cheap: one
  /// relaxed atomic load, plus a clock read only while an unexpired deadline
  /// is armed.
  bool Triggered() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    if (!has_deadline_) return false;
    if (!deadline_hit_.load(std::memory_order_relaxed) &&
        Clock::now() >= deadline_) {
      deadline_hit_.store(true, std::memory_order_relaxed);
    }
    return deadline_hit_.load(std::memory_order_relaxed);
  }

  /// OK while untriggered; Cancelled or DeadlineExceeded once tripped.
  Status ToStatus() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      return Status::Cancelled("operation cancelled");
    }
    if (Triggered()) {
      return Status::DeadlineExceeded("operation deadline exceeded");
    }
    return Status::OK();
  }

 private:
  std::atomic<bool> cancelled_{false};
  mutable std::atomic<bool> deadline_hit_{false};
  Clock::time_point deadline_ = Clock::time_point::max();
  bool has_deadline_ = false;
};

/// Null-safe poll: a missing token never triggers. Kernels take an optional
/// `const CancellationToken*` and call this at their check points.
inline bool CancellationRequested(const CancellationToken* token) {
  return token != nullptr && token->Triggered();
}

}  // namespace edgeshed

#endif  // EDGESHED_COMMON_CANCELLATION_H_
