#ifndef EDGESHED_COMMON_MAPPED_FILE_H_
#define EDGESHED_COMMON_MAPPED_FILE_H_

#include <cstddef>
#include <memory>
#include <string>

#include "common/statusor.h"

namespace edgeshed {

/// Read-only memory-mapped file (POSIX mmap), the storage primitive behind
/// zero-copy snapshot loading (DESIGN.md §14).
///
/// The mapping is private-read (PROT_READ, MAP_SHARED): page-cache pages are
/// shared between every process that maps the same file, which is what lets
/// K fleet workers on one box serve the same snapshot for one physical copy.
/// The file descriptor is closed immediately after mapping — the kernel
/// keeps the mapping alive — so a MappedFile never pins an fd.
///
/// Lifetime: consumers that hand out views into the mapping (for example a
/// mmap-backed Graph) hold the MappedFile via shared_ptr; the pages stay
/// valid until the last holder drops it. The destructor munmaps.
///
/// Mutating the underlying file while mapped is undefined in the usual mmap
/// way (writers in this codebase always write a temp file and rename, or
/// write-once into a shared directory), and truncating it can SIGBUS —
/// the snapshot workflow treats published files as immutable.
class MappedFile {
 public:
  /// Maps `path` read-only. IOError when the file cannot be opened, stat'd,
  /// or mapped. A zero-length file maps successfully with data()==nullptr.
  static StatusOr<std::shared_ptr<const MappedFile>> Open(
      const std::string& path);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const char* data() const { return static_cast<const char*>(data_); }
  size_t size() const { return size_; }
  const std::string& path() const { return path_; }

  /// Advises the kernel the whole mapping will be read sequentially soon
  /// (copy loads) — best-effort, errors ignored.
  void AdviseSequential() const;

 private:
  MappedFile(std::string path, void* data, size_t size)
      : path_(std::move(path)), data_(data), size_(size) {}

  std::string path_;
  void* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace edgeshed

#endif  // EDGESHED_COMMON_MAPPED_FILE_H_
