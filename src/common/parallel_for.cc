#include "common/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>
#include <vector>

namespace edgeshed {

namespace {

int ReadThreadCountFromEnv() {
  const char* env = std::getenv("EDGESHED_THREADS");
  if (env != nullptr) {
    int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

int DefaultThreadCount() {
  static const int count = ReadThreadCountFromEnv();
  return count;
}

void ParallelFor(uint64_t begin, uint64_t end,
                 const std::function<void(uint64_t, uint64_t)>& body,
                 int threads) {
  if (begin >= end) return;
  if (threads <= 0) threads = DefaultThreadCount();
  const uint64_t total = end - begin;
  // Small ranges: the thread spawn cost dominates, run inline.
  constexpr uint64_t kMinPerThread = 256;
  uint64_t usable = std::min<uint64_t>(
      static_cast<uint64_t>(threads),
      std::max<uint64_t>(1, total / kMinPerThread));
  if (usable <= 1) {
    body(begin, end);
    return;
  }

  // Dynamic chunking: workers pull fixed-size chunks off a shared counter so
  // skewed per-item cost (e.g. BFS from hub vertices) stays balanced.
  const uint64_t chunk =
      std::max<uint64_t>(kMinPerThread, total / (usable * 8));
  std::atomic<uint64_t> next(begin);
  std::vector<std::thread> workers;
  workers.reserve(usable);
  for (uint64_t t = 0; t < usable; ++t) {
    workers.emplace_back([&]() {
      for (;;) {
        uint64_t chunk_begin = next.fetch_add(chunk);
        if (chunk_begin >= end) return;
        uint64_t chunk_end = std::min(end, chunk_begin + chunk);
        body(chunk_begin, chunk_end);
      }
    });
  }
  for (auto& worker : workers) worker.join();
}

void ParallelForEach(uint64_t begin, uint64_t end,
                     const std::function<void(uint64_t)>& body, int threads) {
  ParallelFor(
      begin, end,
      [&body](uint64_t chunk_begin, uint64_t chunk_end) {
        for (uint64_t i = chunk_begin; i < chunk_end; ++i) body(i);
      },
      threads);
}

}  // namespace edgeshed
