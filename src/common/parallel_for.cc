#include "common/parallel_for.h"

#include <cstdlib>
#include <thread>

#include "common/parallel.h"

namespace edgeshed {

int DefaultThreadCount() {
  // Re-read the environment on every call (a getenv is cheap next to a
  // parallel region) so tests and long-lived services can change
  // EDGESHED_THREADS at runtime.
  const char* env = std::getenv("EDGESHED_THREADS");
  if (env != nullptr) {
    int parsed = std::atoi(env);
    if (parsed > 0) return parsed;
  }
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ParallelFor(uint64_t begin, uint64_t end,
                 const std::function<void(uint64_t, uint64_t)>& body,
                 int threads) {
  // Explicit template argument keeps this from recursing into itself.
  ParallelFor<const std::function<void(uint64_t, uint64_t)>&>(begin, end, body,
                                                              threads);
}

void ParallelForEach(uint64_t begin, uint64_t end,
                     const std::function<void(uint64_t)>& body, int threads) {
  ParallelForEach<const std::function<void(uint64_t)>&>(begin, end, body,
                                                        threads);
}

}  // namespace edgeshed
