#ifndef EDGESHED_COMMON_STRINGS_H_
#define EDGESHED_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace edgeshed {

/// Splits `text` on `delimiter`, dropping empty pieces. Pieces reference
/// storage owned by `text`.
std::vector<std::string_view> StrSplit(std::string_view text, char delimiter);

/// Joins `pieces` with `separator`.
std::string StrJoin(const std::vector<std::string>& pieces,
                    std::string_view separator);

/// Trims ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view text);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

/// Fixed-precision double rendering ("12.345" for precision 3).
std::string FormatDouble(double value, int precision);

/// Human-readable count with thousands separators ("34,681,189").
std::string FormatWithCommas(uint64_t value);

}  // namespace edgeshed

#endif  // EDGESHED_COMMON_STRINGS_H_
