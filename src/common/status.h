#ifndef EDGESHED_COMMON_STATUS_H_
#define EDGESHED_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace edgeshed {

/// Error category carried by a `Status`.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kOutOfRange = 3,
  kFailedPrecondition = 4,
  kInternal = 5,
  kUnimplemented = 6,
  kIOError = 7,
  kResourceExhausted = 8,
  kDeadlineExceeded = 9,
  kCancelled = 10,
  /// Stored or transmitted bytes failed an integrity check (checksum
  /// mismatch, bit rot) — distinct from IOError, which covers the transport
  /// failing, not the data lying.
  kDataLoss = 11,
};

/// Returns a stable human-readable name for `code` (e.g. "InvalidArgument").
std::string_view StatusCodeToString(StatusCode code);

/// Exception-free error propagation, in the RocksDB/Abseil mold.
///
/// Library functions that can fail return `Status` (or `StatusOr<T>`), never
/// throw. An OK status is cheap to construct and copy; failure statuses carry
/// a code plus a message describing the failure.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

}  // namespace edgeshed

/// Propagates a non-OK status to the caller. Usable only in functions
/// returning `Status`.
#define EDGESHED_RETURN_IF_ERROR(expr)                  \
  do {                                                  \
    ::edgeshed::Status _edgeshed_status_ = (expr);      \
    if (!_edgeshed_status_.ok()) return _edgeshed_status_; \
  } while (false)

#endif  // EDGESHED_COMMON_STATUS_H_
