#ifndef EDGESHED_COMMON_RANDOM_H_
#define EDGESHED_COMMON_RANDOM_H_

#include <cstdint>
#include <vector>

#include "common/check.h"

namespace edgeshed {

/// SplitMix64 — used to expand a single seed into generator state.
/// Reference: Steele, Lea & Flood, "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
inline uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Deterministic, seedable PRNG (xoshiro256**). All randomized algorithms in
/// this library take an explicit `Rng&` so experiments are reproducible from
/// a single seed; nothing reads global entropy.
class Rng {
 public:
  /// Seeds the generator; equal seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Reseed(seed); }

  void Reseed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& word : state_) word = SplitMix64Next(&sm);
  }

  /// Next raw 64 random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). `bound` must be positive. Uses Lemire's
  /// nearly-divisionless method; bias is negligible for bound << 2^64.
  uint64_t UniformU64(uint64_t bound) {
    EDGESHED_DCHECK(bound > 0);
    unsigned __int128 product =
        static_cast<unsigned __int128>(Next()) * bound;
    return static_cast<uint64_t>(product >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    EDGESHED_DCHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    UniformU64(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Uniform index into a container of `size` elements; size must be > 0.
  size_t UniformIndex(size_t size) {
    return static_cast<size_t>(UniformU64(size));
  }

  /// Uniform double in [0, 1).
  double UniformDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability `prob` (clamped to [0,1]).
  bool Bernoulli(double prob) { return UniformDouble() < prob; }

  /// Fisher–Yates shuffle of `values`.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = UniformIndex(i);
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Uniform sample of `k` distinct indices from [0, n) (k <= n), via a
  /// partial Fisher–Yates over a scratch index array. O(n) time and space.
  std::vector<uint64_t> SampleIndices(uint64_t n, uint64_t k);

  /// Forks an independently-seeded generator; streams of the parent and the
  /// child do not overlap in practice (distinct splitmix-expanded states).
  Rng Fork() { return Rng(Next()); }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace edgeshed

#endif  // EDGESHED_COMMON_RANDOM_H_
