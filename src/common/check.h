#ifndef EDGESHED_COMMON_CHECK_H_
#define EDGESHED_COMMON_CHECK_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace edgeshed {
namespace internal_check {

/// Accumulates the failure message and aborts the process when destroyed.
/// Used only via the EDGESHED_CHECK* macros below.
class CheckFailureStream {
 public:
  CheckFailureStream(const char* condition, const char* file, int line) {
    stream_ << "CHECK failed: " << condition << " at " << file << ":" << line
            << " ";
  }

  CheckFailureStream(const CheckFailureStream&) = delete;
  CheckFailureStream& operator=(const CheckFailureStream&) = delete;

  [[noreturn]] ~CheckFailureStream() {
    std::cerr << stream_.str() << std::endl;
    std::abort();
  }

  template <typename T>
  CheckFailureStream& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  std::ostringstream stream_;
};

/// Swallows the streamed message when the check passes; lets the macro be a
/// single expression with a conditional stream.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

/// glog-style voidifier: `&` binds looser than `<<`, so the whole streamed
/// chain evaluates before being discarded, and the ternary's branches both
/// have type void.
struct Voidify {
  void operator&(const CheckFailureStream&) {}
};

}  // namespace internal_check
}  // namespace edgeshed

/// Fatal assertion on invariants and preconditions that indicate programming
/// errors (never on user input — return a Status for that). Active in all
/// build modes. Usage: EDGESHED_CHECK(x > 0) << "detail";
#define EDGESHED_CHECK(condition)                             \
  (condition) ? (void)0                                       \
              : ::edgeshed::internal_check::Voidify() &       \
                    ::edgeshed::internal_check::CheckFailureStream( \
                        #condition, __FILE__, __LINE__)

// Comparison checks. Expression-based so failures can be annotated with
// `<< "context"`; each operand is evaluated exactly once.
#define EDGESHED_CHECK_EQ(a, b) EDGESHED_CHECK((a) == (b))
#define EDGESHED_CHECK_NE(a, b) EDGESHED_CHECK((a) != (b))
#define EDGESHED_CHECK_LT(a, b) EDGESHED_CHECK((a) < (b))
#define EDGESHED_CHECK_LE(a, b) EDGESHED_CHECK((a) <= (b))
#define EDGESHED_CHECK_GT(a, b) EDGESHED_CHECK((a) > (b))
#define EDGESHED_CHECK_GE(a, b) EDGESHED_CHECK((a) >= (b))

/// Debug-only variants; compiled out in NDEBUG builds.
#ifdef NDEBUG
#define EDGESHED_DCHECK(condition) \
  while (false) ::edgeshed::internal_check::NullStream()
#define EDGESHED_DCHECK_EQ(a, b) EDGESHED_DCHECK((a) == (b))
#define EDGESHED_DCHECK_LT(a, b) EDGESHED_DCHECK((a) < (b))
#define EDGESHED_DCHECK_LE(a, b) EDGESHED_DCHECK((a) <= (b))
#else
#define EDGESHED_DCHECK(condition) EDGESHED_CHECK(condition)
#define EDGESHED_DCHECK_EQ(a, b) EDGESHED_CHECK_EQ(a, b)
#define EDGESHED_DCHECK_LT(a, b) EDGESHED_CHECK_LT(a, b)
#define EDGESHED_DCHECK_LE(a, b) EDGESHED_CHECK_LE(a, b)
#endif

#endif  // EDGESHED_COMMON_CHECK_H_
