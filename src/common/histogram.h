#ifndef EDGESHED_COMMON_HISTOGRAM_H_
#define EDGESHED_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <map>
#include <vector>

namespace edgeshed {

/// Integer-keyed frequency histogram with optional key aggregation at a cap.
///
/// Mirrors how the paper reports distributions: e.g. Fig. 5c aggregates all
/// vertex degrees above 300 into a single "300" bucket.
class Histogram {
 public:
  /// `cap` == 0 means no aggregation; otherwise all keys >= cap are counted
  /// under the key `cap`.
  explicit Histogram(int64_t cap = 0) : cap_(cap) {}

  void Add(int64_t key, uint64_t count = 1) {
    if (cap_ > 0 && key > cap_) key = cap_;
    counts_[key] += count;
    total_ += count;
  }

  uint64_t CountFor(int64_t key) const {
    auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
  }

  /// Fraction of the total mass at `key`; 0 if the histogram is empty.
  double FractionFor(int64_t key) const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(CountFor(key)) /
                             static_cast<double>(total_);
  }

  uint64_t total() const { return total_; }
  bool empty() const { return total_ == 0; }

  /// Keys present, ascending.
  std::vector<int64_t> Keys() const;

  /// (key, fraction) pairs, ascending by key.
  std::vector<std::pair<int64_t, double>> Fractions() const;

  /// Cumulative fraction of mass at keys <= `key`.
  double CumulativeFractionUpTo(int64_t key) const;

  /// L1 distance between the normalized mass functions of two histograms,
  /// in [0, 2]. Used to score how well a reduced graph preserves a
  /// distribution (degree, shortest-path, hop-plot, ...).
  static double L1Distance(const Histogram& a, const Histogram& b);

  /// Kolmogorov–Smirnov distance: max |CDF_a(k) − CDF_b(k)| over all keys,
  /// in [0, 1]. Robust to the integer parity artifacts of scaled-degree
  /// estimators (a point mass one bin off barely moves the CDF).
  static double KsDistance(const Histogram& a, const Histogram& b);

 private:
  int64_t cap_;
  uint64_t total_ = 0;
  std::map<int64_t, uint64_t> counts_;
};

}  // namespace edgeshed

#endif  // EDGESHED_COMMON_HISTOGRAM_H_
