#include "common/table.h"

#include <algorithm>
#include <sstream>

namespace edgeshed {

namespace {

std::string CsvEscape(const std::string& field) {
  if (field.find_first_of(",\"\n") == std::string::npos) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out.push_back('"');
  return out;
}

}  // namespace

void TablePrinter::SetHeader(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::AddRow(std::vector<std::string> row) {
  rows_.push_back(Row{/*separator=*/false, std::move(row)});
}

void TablePrinter::AddSeparator() {
  rows_.push_back(Row{/*separator=*/true, {}});
}

void TablePrinter::Print(std::ostream& os) const { os << ToString(); }

std::string TablePrinter::ToString() const {
  size_t columns = header_.size();
  for (const Row& row : rows_) columns = std::max(columns, row.cells.size());

  std::vector<size_t> widths(columns, 0);
  auto widen = [&widths](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  widen(header_);
  for (const Row& row : rows_) {
    if (!row.separator) widen(row.cells);
  }

  size_t line_width = 0;
  for (size_t w : widths) line_width += w + 3;
  if (line_width > 0) line_width -= 1;

  std::ostringstream os;
  if (!title_.empty()) os << title_ << "\n";
  auto emit_row = [&](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < columns; ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string();
      os << " " << cell << std::string(widths[i] - cell.size(), ' ') << " ";
      if (i + 1 < columns) os << "|";
    }
    os << "\n";
  };
  std::string rule(line_width + 2, '-');
  if (!header_.empty()) {
    emit_row(header_);
    os << rule << "\n";
  }
  for (const Row& row : rows_) {
    if (row.separator) {
      os << rule << "\n";
    } else {
      emit_row(row.cells);
    }
  }
  return os.str();
}

std::string TablePrinter::ToCsv() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& cells) {
    for (size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) os << ",";
      os << CsvEscape(cells[i]);
    }
    os << "\n";
  };
  if (!header_.empty()) emit(header_);
  for (const Row& row : rows_) {
    if (!row.separator) emit(row.cells);
  }
  return os.str();
}

}  // namespace edgeshed
