#ifndef EDGESHED_COMMON_PARALLEL_FOR_H_
#define EDGESHED_COMMON_PARALLEL_FOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace edgeshed {

/// Number of worker threads ParallelFor will use (hardware concurrency,
/// at least 1). Override with the EDGESHED_THREADS environment variable.
int DefaultThreadCount();

/// Runs `body(begin..end)` chunks across `threads` workers (0 = default).
/// Blocks until all chunks complete. `body` receives half-open ranges
/// [chunk_begin, chunk_end) and must be safe to run concurrently on disjoint
/// ranges. Falls back to a plain loop when the range is small or only one
/// thread is available.
void ParallelFor(uint64_t begin, uint64_t end,
                 const std::function<void(uint64_t, uint64_t)>& body,
                 int threads = 0);

/// Convenience wrapper: calls `body(i)` for each i in [begin, end) in
/// parallel chunks.
void ParallelForEach(uint64_t begin, uint64_t end,
                     const std::function<void(uint64_t)>& body,
                     int threads = 0);

}  // namespace edgeshed

#endif  // EDGESHED_COMMON_PARALLEL_FOR_H_
