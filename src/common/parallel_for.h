#ifndef EDGESHED_COMMON_PARALLEL_FOR_H_
#define EDGESHED_COMMON_PARALLEL_FOR_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/parallel.h"

namespace edgeshed {

/// Type-erased wrappers around the templated helpers in common/parallel.h,
/// kept for ABI stability and for callers that already hold a std::function.
/// New code (and anything on a hot path) should call the templates directly:
/// a lambda argument binds to the template overload automatically, skipping
/// the std::function indirection.

/// Runs `body(begin..end)` chunks across `threads` workers (0 = default).
/// Blocks until all chunks complete. `body` receives half-open ranges
/// [chunk_begin, chunk_end) and must be safe to run concurrently on disjoint
/// ranges. Falls back to a plain loop when the range is small or only one
/// thread is available.
void ParallelFor(uint64_t begin, uint64_t end,
                 const std::function<void(uint64_t, uint64_t)>& body,
                 int threads = 0);

/// Convenience wrapper: calls `body(i)` for each i in [begin, end) in
/// parallel chunks.
void ParallelForEach(uint64_t begin, uint64_t end,
                     const std::function<void(uint64_t)>& body,
                     int threads = 0);

}  // namespace edgeshed

#endif  // EDGESHED_COMMON_PARALLEL_FOR_H_
