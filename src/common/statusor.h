#ifndef EDGESHED_COMMON_STATUSOR_H_
#define EDGESHED_COMMON_STATUSOR_H_

#include <optional>
#include <utility>

#include "common/check.h"
#include "common/status.h"

namespace edgeshed {

/// Holds either a value of type `T` or a non-OK `Status` explaining why the
/// value is absent. Accessing the value of a failed `StatusOr` is a fatal
/// programming error (CHECK failure), mirroring absl::StatusOr.
template <typename T>
class StatusOr {
 public:
  /// Constructs from a failure status. `status` must not be OK.
  StatusOr(Status status)  // NOLINT(google-explicit-constructor)
      : status_(std::move(status)) {
    EDGESHED_CHECK(!status_.ok())
        << "StatusOr constructed from OK status without a value";
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value)  // NOLINT(google-explicit-constructor)
      : value_(std::move(value)) {}

  StatusOr(const StatusOr&) = default;
  StatusOr& operator=(const StatusOr&) = default;
  StatusOr(StatusOr&&) noexcept = default;
  StatusOr& operator=(StatusOr&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    EDGESHED_CHECK(ok()) << "value() on failed StatusOr: " << status_.ToString();
    return *value_;
  }
  T& value() & {
    EDGESHED_CHECK(ok()) << "value() on failed StatusOr: " << status_.ToString();
    return *value_;
  }
  T&& value() && {
    EDGESHED_CHECK(ok()) << "value() on failed StatusOr: " << status_.ToString();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;  // OK iff value_ holds a value.
  std::optional<T> value_;
};

}  // namespace edgeshed

/// Evaluates `rexpr` (a StatusOr<T>); on failure propagates the status,
/// otherwise move-assigns the value into `lhs`.
#define EDGESHED_ASSIGN_OR_RETURN(lhs, rexpr)                     \
  EDGESHED_ASSIGN_OR_RETURN_IMPL_(                                \
      EDGESHED_STATUS_MACROS_CONCAT_(_statusor_, __LINE__), lhs, rexpr)

#define EDGESHED_STATUS_MACROS_CONCAT_INNER_(x, y) x##y
#define EDGESHED_STATUS_MACROS_CONCAT_(x, y) \
  EDGESHED_STATUS_MACROS_CONCAT_INNER_(x, y)

#define EDGESHED_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                    \
  if (!statusor.ok()) return statusor.status();               \
  lhs = std::move(statusor).value()

#endif  // EDGESHED_COMMON_STATUSOR_H_
