#ifndef EDGESHED_COMMON_STOPWATCH_H_
#define EDGESHED_COMMON_STOPWATCH_H_

#include <chrono>

namespace edgeshed {

/// Wall-clock stopwatch used by the benchmark harness to time graph reduction
/// and analysis phases. Starts running on construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch from zero.
  void Restart() { start_ = Clock::now(); }

  /// Elapsed wall-clock seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace edgeshed

#endif  // EDGESHED_COMMON_STOPWATCH_H_
