#ifndef EDGESHED_COMMON_CRC32_H_
#define EDGESHED_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>
#include <string_view>

namespace edgeshed {

/// CRC-32 (IEEE 802.3, the zlib/PNG polynomial 0xEDB88320), the integrity
/// checksum shared by the net wire protocol (net/wire.h frame payloads) and
/// the binary graph snapshot footer (graph/binary_io.h version 2). It lives
/// in common/ so both can use one implementation without a dependency cycle.
///
/// One-shot:
///   uint32_t crc = Crc32(payload);
///
/// Incremental (streaming writers/readers):
///   uint32_t state = kCrc32Init;
///   state = Crc32Update(state, chunk1, len1);
///   state = Crc32Update(state, chunk2, len2);
///   uint32_t crc = Crc32Finalize(state);

/// Initial state for incremental computation.
inline constexpr uint32_t kCrc32Init = 0xFFFFFFFFu;

/// Folds `len` bytes at `data` into `state`. Associative with itself only in
/// sequence: feed the bytes in stream order.
uint32_t Crc32Update(uint32_t state, const void* data, size_t len);

/// Final xor; after this the value is the standard CRC-32 of the stream.
inline constexpr uint32_t Crc32Finalize(uint32_t state) {
  return state ^ 0xFFFFFFFFu;
}

/// One-shot CRC-32 of `data`.
inline uint32_t Crc32(std::string_view data) {
  return Crc32Finalize(Crc32Update(kCrc32Init, data.data(), data.size()));
}

}  // namespace edgeshed

#endif  // EDGESHED_COMMON_CRC32_H_
