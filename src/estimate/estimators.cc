#include "estimate/estimators.h"

#include <cmath>

#include "analytics/clustering.h"
#include "analytics/components.h"
#include "common/check.h"

namespace edgeshed::estimate {

namespace {

void CheckRatio(double p) {
  EDGESHED_CHECK(p > 0.0 && p < 1.0)
      << "preservation ratio must be in (0,1), got " << p;
}

}  // namespace

double EstimatedEdgeCount(const graph::Graph& reduced, double p) {
  CheckRatio(p);
  return static_cast<double>(reduced.NumEdges()) / p;
}

double EstimatedAverageDegree(const graph::Graph& reduced, double p) {
  CheckRatio(p);
  if (reduced.NumNodes() == 0) return 0.0;
  return 2.0 * static_cast<double>(reduced.NumEdges()) /
         (p * static_cast<double>(reduced.NumNodes()));
}

std::vector<double> EstimatedDegrees(const graph::Graph& reduced, double p) {
  CheckRatio(p);
  std::vector<double> estimates(reduced.NumNodes());
  for (graph::NodeId u = 0; u < reduced.NumNodes(); ++u) {
    estimates[u] = static_cast<double>(reduced.Degree(u)) / p;
  }
  return estimates;
}

double EstimatedTriangleCount(const graph::Graph& reduced, double p,
                              int threads) {
  CheckRatio(p);
  std::vector<uint64_t> per_node =
      analytics::TrianglesPerNode(reduced, threads);
  uint64_t triple_counted = 0;
  for (uint64_t t : per_node) triple_counted += t;
  const double reduced_triangles = static_cast<double>(triple_counted) / 3.0;
  return reduced_triangles / (p * p * p);
}

double EstimatedGlobalClustering(const graph::Graph& reduced, double p,
                                 int threads) {
  CheckRatio(p);
  std::vector<uint64_t> per_node =
      analytics::TrianglesPerNode(reduced, threads);
  uint64_t triple_counted = 0;
  for (uint64_t t : per_node) triple_counted += t;
  double wedges = 0.0;
  for (graph::NodeId u = 0; u < reduced.NumNodes(); ++u) {
    const double d = static_cast<double>(reduced.Degree(u));
    wedges += d * (d - 1.0) / 2.0;
  }
  if (wedges <= 0.0) return 0.0;
  // Transitivity of G': 3T'/W'; correcting T by p^-3 and W by p^-2 leaves
  // a net 1/p on the ratio.
  const double reduced_transitivity =
      static_cast<double>(triple_counted) / wedges;
  return std::min(1.0, reduced_transitivity / p);
}

Histogram EstimatedDegreeHistogramSmoothed(const graph::Graph& reduced,
                                           double p, int64_t cap) {
  CheckRatio(p);
  constexpr uint64_t kResolution = 1000;  // weight units per vertex
  Histogram histogram(cap);
  for (graph::NodeId u = 0; u < reduced.NumNodes(); ++u) {
    const double estimate = static_cast<double>(reduced.Degree(u)) / p;
    const auto floor_bin = static_cast<int64_t>(std::floor(estimate));
    const double fraction = estimate - std::floor(estimate);
    const auto upper_mass = static_cast<uint64_t>(
        std::llround(fraction * static_cast<double>(kResolution)));
    if (upper_mass < kResolution) {
      histogram.Add(floor_bin, kResolution - upper_mass);
    }
    if (upper_mass > 0) {
      histogram.Add(floor_bin + 1, upper_mass);
    }
  }
  return histogram;
}

uint64_t ReachablePairsLowerBound(const graph::Graph& reduced) {
  analytics::ComponentResult components =
      analytics::ConnectedComponents(reduced);
  uint64_t pairs = 0;
  for (uint64_t size : components.sizes) {
    pairs += size * (size - 1) / 2;
  }
  return pairs;
}

}  // namespace edgeshed::estimate
