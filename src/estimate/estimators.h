#ifndef EDGESHED_ESTIMATE_ESTIMATORS_H_
#define EDGESHED_ESTIMATE_ESTIMATORS_H_

#include <cstdint>
#include <vector>

#include "common/histogram.h"
#include "graph/graph.h"

namespace edgeshed::estimate {

/// Estimators of original-graph properties from a degree-preserving reduced
/// graph G' produced with edge preservation ratio p.
///
/// The paper's abstract promises exactly this workflow: "by estimating the
/// original graph information from the reduced graph, it provides an
/// efficient solution for network analysis at a low price". Because CRR and
/// BM2 maintain E[deg_G'(u)] = p·deg_G(u), simple inverse-p corrections
/// recover unbiased (or nearly unbiased) estimates of several global
/// properties. Each estimator documents its correction model.

/// |E| estimate: |E'| / p. Exact in expectation for any shedder that keeps
/// round(p|E|) edges (CRR trivially; BM2 approximately).
double EstimatedEdgeCount(const graph::Graph& reduced, double p);

/// Average degree estimate: 2|E'| / (p |V|).
double EstimatedAverageDegree(const graph::Graph& reduced, double p);

/// Per-vertex original-degree estimates deg'(u)/p (real-valued, not
/// rounded — callers choose their own binning).
std::vector<double> EstimatedDegrees(const graph::Graph& reduced, double p);

/// Number of triangles in the original graph, estimated as T(G')/p^3: a
/// triangle survives iff its three edges all survive, which under
/// near-independent edge retention happens with probability p^3.
double EstimatedTriangleCount(const graph::Graph& reduced, double p,
                              int threads = 0);

/// Global clustering coefficient (transitivity) of the original graph:
///   C = 3·triangles / open wedges.
/// Triangles are corrected by p^-3; a wedge (2-path) survives with
/// probability ~p^2, so wedges are corrected by p^-2, giving an overall
/// correction of 1/p on the ratio.
double EstimatedGlobalClustering(const graph::Graph& reduced, double p,
                                 int threads = 0);

/// Degree histogram of the original graph estimated by distributing each
/// vertex's fractional estimate deg'(u)/p across its two neighboring
/// integer bins (mass splitting), which removes the parity artifacts of
/// plain rounding when 1/p is an integer. Bucket weights are in 1/1000
/// units of a vertex.
Histogram EstimatedDegreeHistogramSmoothed(const graph::Graph& reduced,
                                           double p, int64_t cap = 0);

/// Reachable-pair count estimate from the reduced graph: pairs connected in
/// G' are certainly connected in G (G' ⊆ G), so this is a lower bound; the
/// paper's hop-plot experiments show it is a tight one at moderate p.
uint64_t ReachablePairsLowerBound(const graph::Graph& reduced);

}  // namespace edgeshed::estimate

#endif  // EDGESHED_ESTIMATE_ESTIMATORS_H_
