#include "service/rank_cache.h"

#include <utility>

#include "common/stopwatch.h"
#include "common/strings.h"

namespace edgeshed::service {

RankCache::RankCache(RankCacheOptions options, MetricsRegistry* metrics,
                     obs::Tracer* tracer)
    : options_(options), tracer_(tracer) {
  if (metrics != nullptr) {
    instruments_.hit = metrics->GetCounter("scheduler.rank_cache_hit");
    instruments_.wait_hit =
        metrics->GetCounter("scheduler.rank_cache_wait_hit");
    instruments_.miss = metrics->GetCounter("scheduler.rank_cache_miss");
    instruments_.compute_failed =
        metrics->GetCounter("scheduler.rank_cache_compute_failed");
    instruments_.evicted =
        metrics->GetCounter("scheduler.rank_cache_evicted");
    instruments_.invalidated =
        metrics->GetCounter("scheduler.rank_cache_invalidated");
    instruments_.bytes = metrics->GetGauge("scheduler.rank_cache_bytes");
    instruments_.entries = metrics->GetGauge("scheduler.rank_cache_entries");
    instruments_.compute_seconds =
        metrics->GetLatency("scheduler.rank_cache_compute_seconds");
  }
}

std::string RankCache::Key(const std::string& dataset, uint64_t generation,
                           const analytics::BetweennessOptions& options) {
  // %a renders exact double bits, so near-equal thresholds never collide.
  return StrFormat(
      "%s|g%llu|x%llu|s%llu|seed%llu|k%d|a%a|w%llu|st%a|tk%llu",
      dataset.c_str(), static_cast<unsigned long long>(generation),
      static_cast<unsigned long long>(options.exact_node_threshold),
      static_cast<unsigned long long>(options.sample_sources),
      static_cast<unsigned long long>(options.seed),
      static_cast<int>(options.kernel), options.hybrid_alpha,
      static_cast<unsigned long long>(options.wave_size),
      options.wave_stability,
      static_cast<unsigned long long>(options.wave_top_k));
}

StatusOr<core::EdgeRanking> RankCache::GetOrCompute(
    const std::string& dataset, uint64_t generation, const graph::Graph& g,
    const analytics::BetweennessOptions& options) {
  const std::string key = Key(dataset, generation, options);
  std::unique_lock<std::mutex> lock(mu_);
  bool waited = false;
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;  // miss: this thread computes
    Entry& entry = it->second;
    if (entry.ranking != nullptr) {
      lru_.splice(lru_.begin(), lru_, entry.lru_pos);
      obs::Counter* counter =
          waited ? instruments_.wait_hit : instruments_.hit;
      if (counter != nullptr) counter->Increment();
      core::EdgeRanking ranking;
      ranking.ids = *entry.ranking;  // computed=false, seconds=0.0 exactly
      return ranking;
    }
    // A compute is in flight: wait, then re-check from scratch. A failed
    // compute erases its entry, so we fall out of the loop and rank it
    // ourselves instead of inheriting another job's cancellation.
    waited = true;
    compute_done_.wait(lock);
  }
  entries_[key].computing = true;
  if (instruments_.miss != nullptr) instruments_.miss->Increment();
  lock.unlock();

  obs::Span span = obs::Tracer::StartSpan(tracer_, "rank_cache.compute");
  span.Annotate("dataset", dataset);
  Stopwatch watch;
  std::vector<graph::EdgeId> ids =
      analytics::EdgesByBetweennessDescending(g, options);
  const double seconds = watch.ElapsedSeconds();
  const bool cancelled = CancellationRequested(options.cancel);
  span.Annotate("ok", cancelled ? "false" : "true");
  span.End();

  lock.lock();
  if (cancelled) {
    entries_.erase(key);
    if (instruments_.compute_failed != nullptr) {
      instruments_.compute_failed->Increment();
    }
    compute_done_.notify_all();
    return options.cancel->ToStatus();
  }
  Entry& entry = entries_.at(key);
  entry.computing = false;
  entry.ranking =
      std::make_shared<const std::vector<graph::EdgeId>>(std::move(ids));
  entry.bytes = key.size() + entry.ranking->size() * sizeof(graph::EdgeId);
  bytes_ += entry.bytes;
  lru_.push_front(key);
  entry.lru_pos = lru_.begin();
  if (instruments_.compute_seconds != nullptr) {
    instruments_.compute_seconds->Record(seconds);
  }
  EvictLocked(key);
  PublishGaugesLocked();
  compute_done_.notify_all();
  core::EdgeRanking ranking;
  ranking.ids = *entry.ranking;
  ranking.computed = true;
  ranking.seconds = seconds;
  return ranking;
}

void RankCache::InvalidateDataset(const std::string& dataset) {
  const std::string prefix = dataset + "|";
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.ranking == nullptr ||
        it->first.compare(0, prefix.size(), prefix) != 0) {
      ++it;
      continue;
    }
    bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru_pos);
    it = entries_.erase(it);
    if (instruments_.invalidated != nullptr) {
      instruments_.invalidated->Increment();
    }
  }
  PublishGaugesLocked();
}

void RankCache::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.ranking == nullptr) {
      ++it;  // in-flight compute; its installer still expects the entry
      continue;
    }
    bytes_ -= it->second.bytes;
    lru_.erase(it->second.lru_pos);
    it = entries_.erase(it);
  }
  PublishGaugesLocked();
}

size_t RankCache::entries() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

uint64_t RankCache::bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_;
}

void RankCache::EvictLocked(const std::string& keep) {
  // Never evict the just-installed `keep`, so one oversized ranking is
  // still served (and dropped by the next insert).
  while (bytes_ > options_.byte_budget && !lru_.empty()) {
    const std::string& victim = lru_.back();
    if (victim == keep) break;
    auto it = entries_.find(victim);
    bytes_ -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    if (instruments_.evicted != nullptr) instruments_.evicted->Increment();
  }
  PublishGaugesLocked();
}

void RankCache::PublishGaugesLocked() {
  if (instruments_.bytes != nullptr) {
    instruments_.bytes->Set(static_cast<int64_t>(bytes_));
  }
  if (instruments_.entries != nullptr) {
    instruments_.entries->Set(static_cast<int64_t>(lru_.size()));
  }
}

}  // namespace edgeshed::service
