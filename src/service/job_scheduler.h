#ifndef EDGESHED_SERVICE_JOB_SCHEDULER_H_
#define EDGESHED_SERVICE_JOB_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/statusor.h"
#include "core/shedding.h"
#include "service/graph_store.h"
#include "service/metrics_registry.h"

namespace edgeshed::service {

/// Lifecycle of a shedding job. Terminal states are kDone, kFailed,
/// kCancelled.
enum class JobState {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
};

std::string_view JobStateToString(JobState state);

/// Configuration for JobScheduler.
struct JobSchedulerOptions {
  /// Worker threads; 0 uses DefaultThreadCount().
  int workers = 0;
  /// Max jobs queued (excluding running/coalesced/cached submissions).
  size_t queue_capacity = 256;
  bool enable_result_cache = true;
};

/// One shedding request: reduce `dataset` with `method` at ratio `p`.
struct JobSpec {
  /// GraphStore dataset name the job runs against.
  std::string dataset;
  /// Shedder name accepted by core::MakeShedderByName.
  std::string method = "crr";
  double p = 0.5;
  uint64_t seed = 42;
  /// Wall-clock budget measured from submission; zero means none. Deadlines
  /// are enforced at dispatch: a job still queued when its deadline passes
  /// is cancelled (DeadlineExceeded) instead of run. A job that already
  /// started is never aborted mid-reduction (cancellation is cooperative).
  std::chrono::milliseconds deadline{0};
};

using JobId = uint64_t;
/// Shared so cached results can be handed to many callers without copies.
using JobResult = std::shared_ptr<const core::SheddingResult>;

/// Point-in-time view of one job, returned by JobScheduler::GetStatus.
struct JobStatus {
  JobId id = 0;
  JobState state = JobState::kQueued;
  /// Failure/cancellation reason; OK while non-terminal or done.
  Status status;
  /// True when the result came from the result cache or was coalesced onto
  /// an identical in-flight job rather than executed by this job.
  bool deduplicated = false;
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
};

/// Fixed-pool asynchronous executor for shedding jobs.
///
/// Architecture (DESIGN.md "Service layer"):
///  * `Options::workers` threads (default common/parallel_for.h's
///    DefaultThreadCount) pull JobIds from a bounded FIFO submission queue;
///    Submit fails with ResourceExhausted when the queue is full rather than
///    blocking the caller.
///  * Results are cached under the key `(dataset, method, p, seed)` — every
///    shedder is deterministic given its seed, so identical requests must
///    produce identical results. A Submit that matches a cached result
///    completes immediately (`scheduler.result_cache_hit`); one that matches
///    a *queued or running* job is coalesced onto it (`scheduler.coalesced`)
///    and shares its outcome, whatever that turns out to be.
///  * Cancellation is cooperative: Cancel on a queued job takes effect
///    immediately, Cancel on a running job is honored when the reduction
///    returns (the result is discarded). Terminal jobs cannot be cancelled.
///  * Shutdown (also run by the destructor) stops intake, cancels all
///    still-queued jobs, lets running jobs finish, and joins the pool.
///
/// All public methods are thread-safe. Job records are kept for the
/// scheduler's lifetime, so GetStatus/Wait on completed jobs keep working.
class JobScheduler {
 public:
  using Options = JobSchedulerOptions;

  /// `store` must outlive the scheduler; `metrics` may be null.
  JobScheduler(GraphStore* store, MetricsRegistry* metrics,
               JobSchedulerOptions options = {});
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Validates the spec, then enqueues (or dedupes) it. Errors:
  /// InvalidArgument (bad p / unknown method), ResourceExhausted (queue
  /// full), FailedPrecondition (after Shutdown).
  StatusOr<JobId> Submit(const JobSpec& spec);

  /// Blocks until `id` reaches a terminal state. Returns the result for
  /// kDone, the failure status for kFailed/kCancelled, NotFound for unknown
  /// ids.
  StatusOr<JobResult> Wait(JobId id);

  /// Requests cancellation. OK if the request was recorded (the job may
  /// still complete if it is already running); FailedPrecondition when the
  /// job is already terminal; NotFound for unknown ids.
  Status Cancel(JobId id);

  StatusOr<JobStatus> GetStatus(JobId id) const;

  /// Jobs queued and not yet picked up (excludes running).
  size_t QueueDepth() const;

  int workers() const { return static_cast<int>(workers_.size()); }

  /// Stops intake, cancels queued jobs, drains running ones, joins workers.
  /// Idempotent.
  void Shutdown();

 private:
  struct Job {
    JobId id = 0;
    JobSpec spec;
    std::string cache_key;
    JobState state = JobState::kQueued;
    Status status;
    JobResult result;
    bool deduplicated = false;
    bool cancel_requested = false;
    /// Non-zero when this job was coalesced onto an identical in-flight job
    /// and never entered the queue itself.
    JobId primary = 0;
    /// Jobs coalesced onto this one; resolved when this job finishes.
    std::vector<JobId> followers;
    std::chrono::steady_clock::time_point submit_time;
    std::chrono::steady_clock::time_point deadline;  // max() = none
    double queue_seconds = 0.0;
    double run_seconds = 0.0;
  };

  static std::string CacheKey(const JobSpec& spec);
  static bool IsTerminal(JobState state) { return state >= JobState::kDone; }

  void WorkerLoop();
  /// Runs `job`'s reduction with no scheduler lock held; returns the
  /// outcome. `job` fields other than `spec` must not be touched here.
  StatusOr<core::SheddingResult> Execute(const JobSpec& spec,
                                         double* run_seconds);
  /// Moves `job` to `state`, resolves followers and the result cache,
  /// updates metrics, wakes waiters. Caller holds mu_.
  void FinishLocked(Job& job, JobState state, Status status,
                    JobResult result);
  void PublishQueueDepthLocked();

  GraphStore* const store_;
  MetricsRegistry* const metrics_;  // may be null
  const JobSchedulerOptions options_;

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable job_terminal_;
  std::map<JobId, Job> jobs_;  // stable nodes: worker holds refs across ops
  std::deque<JobId> queue_;
  size_t live_queued_ = 0;  // queue_ minus cancelled-while-queued entries
  std::unordered_map<std::string, JobId> inflight_;
  std::unordered_map<std::string, JobResult> result_cache_;
  JobId next_id_ = 1;
  bool shutdown_ = false;

  /// Serializes Shutdown callers (join must happen exactly once).
  std::mutex shutdown_mu_;
  std::vector<std::thread> workers_;
};

}  // namespace edgeshed::service

#endif  // EDGESHED_SERVICE_JOB_SCHEDULER_H_
