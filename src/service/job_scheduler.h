#ifndef EDGESHED_SERVICE_JOB_SCHEDULER_H_
#define EDGESHED_SERVICE_JOB_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "common/statusor.h"
#include "core/shedding.h"
#include "obs/tracer.h"
#include "service/graph_store.h"
#include "service/metrics_registry.h"
#include "service/rank_cache.h"

namespace edgeshed::service {

/// Lifecycle of a shedding job. Terminal states are kDone, kFailed,
/// kCancelled.
enum class JobState {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
};

std::string_view JobStateToString(JobState state);

/// Configuration for JobScheduler.
struct JobSchedulerOptions {
  /// Worker threads; 0 uses DefaultThreadCount().
  int workers = 0;
  /// Max jobs queued (excluding running/coalesced/cached submissions).
  size_t queue_capacity = 256;
  bool enable_result_cache = true;
  /// Retention bounds for terminal job records. A terminal job is garbage-
  /// collected once more than `max_retained_jobs` terminal records exist
  /// (oldest-finished first) or its age since finishing exceeds
  /// `job_retention` (0 = no age limit). GetStatus/Wait on a collected id
  /// return NotFound. Jobs someone is Wait()ing on are never collected.
  size_t max_retained_jobs = 1024;
  std::chrono::milliseconds job_retention{600000};  // 10 minutes
  /// Byte budget for the result cache (approximate accounting); least-
  /// recently-used entries are evicted once the budget is exceeded.
  uint64_t result_cache_byte_budget = 64ull << 20;  // 64 MiB
  /// Share Phase-1 betweenness rankings across jobs on the same dataset
  /// (RankCache, DESIGN.md §12). Job results are unchanged either way; this
  /// only removes redundant ranking passes.
  bool enable_rank_cache = true;
  /// Byte budget for the rank cache (|E| edge ids per cached ranking).
  uint64_t rank_cache_byte_budget = 128ull << 20;  // 128 MiB
};

/// One shedding request: reduce `dataset` with `method` at ratio `p`.
struct JobSpec {
  /// GraphStore dataset name the job runs against.
  std::string dataset;
  /// Shedder name accepted by core::MakeShedderByName.
  std::string method = "crr";
  double p = 0.5;
  uint64_t seed = 42;
  /// Wall-clock budget measured from submission; zero means none. A job
  /// still queued when its deadline passes is cancelled (DeadlineExceeded)
  /// instead of run; a *running* job carries a CancellationToken armed with
  /// the deadline, so the kernel itself stops at its next cooperative poll
  /// and the job finishes kCancelled with DeadlineExceeded.
  std::chrono::milliseconds deadline{0};
  /// When non-empty, the kept subgraph G' = (V, E') is written to this path
  /// as a v2 binary snapshot after a successful shed (a write failure fails
  /// the job with the writer's status). Part of the dedup key: two specs
  /// differing only in output_path are distinct jobs, so a cached result
  /// never skips a snapshot the caller asked for.
  std::string output_path;
};

using JobId = uint64_t;
/// Shared so cached results can be handed to many callers without copies.
using JobResult = std::shared_ptr<const core::SheddingResult>;

/// Point-in-time view of one job, returned by JobScheduler::GetStatus.
struct JobStatus {
  JobId id = 0;
  JobState state = JobState::kQueued;
  /// Failure/cancellation reason; OK while non-terminal or done.
  Status status;
  /// True when the result came from the result cache or was coalesced onto
  /// an identical in-flight job rather than executed by this job.
  bool deduplicated = false;
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
};

/// Fixed-pool asynchronous executor for shedding jobs.
///
/// Architecture (DESIGN.md "Service layer"):
///  * `Options::workers` threads (default common/parallel_for.h's
///    DefaultThreadCount) pull JobIds from a bounded FIFO submission queue;
///    Submit fails with ResourceExhausted when the queue is full rather than
///    blocking the caller.
///  * Results are cached under the key `(dataset, method, p, seed)` — every
///    shedder is deterministic given its seed, so identical requests must
///    produce identical results. A Submit that matches a cached result
///    completes immediately (`scheduler.result_cache_hit`); one that matches
///    a *queued or running* job is coalesced onto it (`scheduler.coalesced`)
///    and shares its outcome, whatever that turns out to be.
///  * Cancellation is cooperative: Cancel on a queued job takes effect
///    immediately; Cancel on a running job trips the job's
///    CancellationToken, which the shedding kernels poll at coarse grain —
///    the reduction aborts within a poll interval instead of running to
///    completion. Terminal jobs cannot be cancelled. Cancelling a primary
///    never drags its coalesced followers down: the first live follower is
///    promoted to primary and re-queued, and the rest ride along with it.
///  * Shutdown (also run by the destructor) stops intake, cancels all
///    still-queued jobs, lets running jobs finish, and joins the pool.
///
/// All public methods are thread-safe. Terminal job records are retained
/// only within Options::max_retained_jobs / job_retention, and the result
/// cache is an LRU bounded by Options::result_cache_byte_budget —
/// GetStatus/Wait on a garbage-collected id return NotFound.
///
/// Tracing (when a tracer is supplied): every submission gets a trace id;
/// one job yields one coherent trace — a root `job` span covering
/// submit→finish, a `queued` child covering submit→dispatch, a `run` child
/// on the worker thread (under which GraphStore records `store.load`), and
/// synthesized `phase<N>` children derived from the shedder's
/// `phase<N>_seconds` stats. Export via Tracer::TraceEventJson. With a null
/// tracer every hook is a no-op.
class JobScheduler {
 public:
  using Options = JobSchedulerOptions;

  /// `store` must outlive the scheduler; `metrics` and `tracer` may be null.
  JobScheduler(GraphStore* store, MetricsRegistry* metrics,
               JobSchedulerOptions options = {},
               obs::Tracer* tracer = nullptr);
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Validates the spec, then enqueues (or dedupes) it. Errors:
  /// InvalidArgument (bad p / unknown method), ResourceExhausted (queue
  /// full), FailedPrecondition (after Shutdown).
  StatusOr<JobId> Submit(const JobSpec& spec);

  /// Blocks until `id` reaches a terminal state. Returns the result for
  /// kDone, the failure status for kFailed/kCancelled, NotFound for unknown
  /// (or already garbage-collected) ids. A job being waited on is pinned
  /// against retention GC until the wait returns.
  StatusOr<JobResult> Wait(JobId id);

  /// Requests cancellation. OK if the request was recorded; a running job's
  /// token is tripped so the kernel stops at its next cooperative poll.
  /// FailedPrecondition when the job is already terminal; NotFound for
  /// unknown ids.
  Status Cancel(JobId id);

  StatusOr<JobStatus> GetStatus(JobId id) const;

  /// Jobs queued and not yet picked up (excludes running).
  size_t QueueDepth() const;

  /// Job records currently tracked (live + retained terminal).
  size_t TrackedJobs() const;

  int workers() const { return static_cast<int>(workers_.size()); }

  /// The cross-job ranking cache; null when Options disabled it.
  /// Introspection / test hook — jobs use it automatically.
  RankCache* rank_cache() { return rank_cache_.get(); }

  /// Stops intake, cancels queued jobs, drains running ones, joins workers.
  /// Idempotent.
  void Shutdown();

 private:
  struct Job {
    JobId id = 0;
    JobSpec spec;
    std::string cache_key;
    JobState state = JobState::kQueued;
    Status status;
    JobResult result;
    bool deduplicated = false;
    bool cancel_requested = false;
    /// Non-zero when this job was coalesced onto an identical in-flight job
    /// and never entered the queue itself.
    JobId primary = 0;
    /// Jobs coalesced onto this one; resolved when this job finishes.
    std::vector<JobId> followers;
    /// Armed at dispatch from `deadline`; tripped by Cancel while running.
    /// Shared with the executing worker so Cancel never races destruction.
    std::shared_ptr<CancellationToken> token;
    std::chrono::steady_clock::time_point submit_time;
    std::chrono::steady_clock::time_point deadline;  // max() = none
    std::chrono::steady_clock::time_point finish_time;
    /// Wait() calls currently blocked on this job; pins it against GC.
    int waiters = 0;
    double queue_seconds = 0.0;
    double run_seconds = 0.0;
    /// Tracing bookkeeping; all zero when no tracer is attached. The root
    /// `job` span is synthesized when the job reaches a terminal state.
    uint64_t trace_id = 0;
    uint64_t root_span_id = 0;
    int64_t submit_ns = 0;
    uint64_t run_span_id = 0;
    int64_t run_start_ns = 0;
  };

  /// Result-cache entry with approximate byte accounting for LRU eviction.
  struct CacheEntry {
    JobResult result;
    uint64_t bytes = 0;
    std::list<std::string>::iterator lru_pos;
  };

  static std::string CacheKey(const JobSpec& spec, uint64_t generation);
  static bool IsTerminal(JobState state) { return state >= JobState::kDone; }
  static uint64_t ApproxResultBytes(const core::SheddingResult& result);

  void WorkerLoop();
  /// Runs `job`'s reduction with no scheduler lock held; returns the
  /// outcome. `job` fields other than `spec` must not be touched here.
  /// `cancel` (may be null) is polled by the kernels.
  StatusOr<core::SheddingResult> Execute(const JobSpec& spec,
                                         const CancellationToken* cancel,
                                         double* run_seconds);
  /// Moves `job` to `state`, resolves followers and the result cache,
  /// updates metrics, wakes waiters. A cancelled primary promotes its first
  /// live follower to primary and re-queues it. Caller holds mu_.
  void FinishLocked(Job& job, JobState state, Status status,
                    JobResult result);
  /// Stamps `job` terminal bookkeeping (finish_time, retention order).
  /// Caller holds mu_.
  void RecordTerminalLocked(Job& job,
                            std::chrono::steady_clock::time_point now);
  /// Erases terminal records beyond the retention bounds. Caller holds mu_.
  void GcRetainedJobsLocked(std::chrono::steady_clock::time_point now);
  /// Inserts into the LRU result cache and evicts past the byte budget
  /// (never the just-inserted entry). Caller holds mu_.
  void InsertResultCacheLocked(const std::string& key,
                               const JobResult& result);
  void PublishQueueDepthLocked();
  /// Bumps the per-terminal-state counter for one finished job.
  void CountTerminalLocked(JobState state);
  /// Synthesizes the root `job` span (and, for executed jobs, the per-phase
  /// children) once a job is terminal. Caller holds mu_.
  void EmitJobTraceLocked(const Job& job, JobState state,
                          const JobResult& result);

  /// Typed instrument handles, resolved once at construction. All null when
  /// no registry is attached. The per-phase `scheduler.<stat>_seconds`
  /// series are dynamic (the set of stats depends on the shedder), so those
  /// still go through the registry's string shim via `metrics_`.
  struct Instruments {
    obs::Counter* submitted = nullptr;
    obs::Counter* result_cache_hit = nullptr;
    obs::Counter* coalesced = nullptr;
    obs::Counter* rejected_queue_full = nullptr;
    obs::Counter* jobs_done = nullptr;
    obs::Counter* jobs_failed = nullptr;
    obs::Counter* jobs_cancelled = nullptr;
    obs::Counter* deadline_expired = nullptr;
    obs::Counter* cancelled_while_running = nullptr;
    obs::Counter* follower_promoted = nullptr;
    obs::Counter* jobs_gc = nullptr;
    obs::Counter* result_cache_evicted = nullptr;
    obs::Gauge* workers = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* jobs_tracked = nullptr;
    obs::Gauge* result_cache_bytes = nullptr;
    obs::LatencySeries* queue_seconds = nullptr;
    obs::LatencySeries* run_seconds = nullptr;
  };

  GraphStore* const store_;
  MetricsRegistry* const metrics_;  // may be null
  obs::Tracer* const tracer_;      // may be null
  Instruments instruments_;
  const JobSchedulerOptions options_;
  /// Cross-job Phase-1 ranking cache; null when disabled. Internally
  /// synchronized — accessed by workers outside mu_.
  std::unique_ptr<RankCache> rank_cache_;

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable job_terminal_;
  std::map<JobId, Job> jobs_;  // stable nodes: worker holds refs across ops
  std::deque<JobId> queue_;
  size_t live_queued_ = 0;  // queue_ minus cancelled-while-queued entries
  std::unordered_map<std::string, JobId> inflight_;
  std::unordered_map<std::string, CacheEntry> result_cache_;
  std::list<std::string> cache_lru_;  // front = most recently used
  uint64_t cache_bytes_ = 0;
  /// Terminal jobs in finish order (front = oldest) — the GC scan order.
  std::deque<JobId> terminal_order_;
  JobId next_id_ = 1;
  bool shutdown_ = false;

  /// Serializes Shutdown callers (join must happen exactly once).
  std::mutex shutdown_mu_;
  std::vector<std::thread> workers_;
};

}  // namespace edgeshed::service

#endif  // EDGESHED_SERVICE_JOB_SCHEDULER_H_
