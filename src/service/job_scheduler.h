#ifndef EDGESHED_SERVICE_JOB_SCHEDULER_H_
#define EDGESHED_SERVICE_JOB_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cancellation.h"
#include "common/statusor.h"
#include "core/shedding.h"
#include "dyn/incremental_shed.h"
#include "obs/tracer.h"
#include "service/graph_store.h"
#include "service/metrics_registry.h"
#include "service/rank_cache.h"

namespace edgeshed::service {

/// Lifecycle of a shedding job. Terminal states are kDone, kFailed,
/// kCancelled.
enum class JobState {
  kQueued,
  kRunning,
  kDone,
  kFailed,
  kCancelled,
};

std::string_view JobStateToString(JobState state);

/// How (if at all) load-adaptive degradation changed what a job answered
/// with. Numeric values match net::DegradeKind (the wire mirror); the
/// service layer stays free of net dependencies.
enum class DegradeKind : uint8_t {
  kNone = 0,
  kCheaperTier = 1,     // method stepped down core::ShedderCostLadder
  kCachedCoarserP = 2,  // served a cached result at p' <= requested p
};

/// Per-tenant scheduling parameters (fair-share weight + inflight quota).
struct TenantConfig {
  /// Relative fair-share weight (deficit-round-robin quantum). Minimum 1;
  /// a tenant with weight 4 gets ~4x the dispatch slots of a weight-1
  /// tenant while both have queued work.
  uint32_t weight = 1;
  /// Max jobs from this tenant executing concurrently; 0 = unlimited. A
  /// tenant at its quota is skipped by the dispatcher (other tenants run)
  /// until one of its jobs finishes.
  size_t max_running = 0;
};

/// Load-adaptive degradation policy (DESIGN.md §13). When enabled and a
/// submission opts in (`JobSpec::allow_degrade`), pressure — the max of the
/// caller's hint and queue_depth/queue_capacity — picks how many tiers to
/// step the method down core::ShedderCostLadder instead of queueing the
/// expensive variant; a cached result at a coarser `p` for the *requested*
/// method is preferred over re-tiering. The applied tier is always recorded
/// on the job (never silent).
struct DegradePolicy {
  bool enabled = false;
  /// Pressure thresholds for stepping 1 / 2 / 3 tiers down the cost ladder.
  double tier1_pressure = 0.75;
  double tier2_pressure = 1.0;
  double tier3_pressure = 1.5;
  /// Past tier1_pressure, serve a cached result for the same
  /// dataset/method/seed at p' <= requested p (within max_p_gap) instead of
  /// computing anything.
  bool serve_cached_coarser_p = true;
  double max_p_gap = 0.25;
};

/// Configuration for JobScheduler.
struct JobSchedulerOptions {
  /// Worker threads; 0 uses DefaultThreadCount().
  int workers = 0;
  /// Max jobs queued (excluding running/coalesced/cached submissions).
  size_t queue_capacity = 256;
  /// Pre-configured tenants; tenants not listed here are created on first
  /// use with `default_tenant`. The unnamed tenant ("") always exists, so a
  /// deployment with no tenant names behaves exactly like the old single
  /// FIFO (one queue, weight 1, no quota).
  std::map<std::string, TenantConfig> tenants;
  TenantConfig default_tenant;
  DegradePolicy degrade;
  bool enable_result_cache = true;
  /// Retention bounds for terminal job records. A terminal job is garbage-
  /// collected once more than `max_retained_jobs` terminal records exist
  /// (oldest-finished first) or its age since finishing exceeds
  /// `job_retention` (0 = no age limit). GetStatus/Wait on a collected id
  /// return NotFound. Jobs someone is Wait()ing on are never collected.
  size_t max_retained_jobs = 1024;
  std::chrono::milliseconds job_retention{600000};  // 10 minutes
  /// Byte budget for the result cache (approximate accounting); least-
  /// recently-used entries are evicted once the budget is exceeded.
  uint64_t result_cache_byte_budget = 64ull << 20;  // 64 MiB
  /// Share Phase-1 betweenness rankings across jobs on the same dataset
  /// (RankCache, DESIGN.md §12). Job results are unchanged either way; this
  /// only removes redundant ranking passes.
  bool enable_rank_cache = true;
  /// Byte budget for the rank cache (|E| edge ids per cached ranking).
  uint64_t rank_cache_byte_budget = 128ull << 20;  // 128 MiB
};

/// One shedding request: reduce `dataset` with `method` at ratio `p`.
struct JobSpec {
  /// GraphStore dataset name the job runs against.
  std::string dataset;
  /// Shedder name accepted by core::MakeShedderByName.
  std::string method = "crr";
  double p = 0.5;
  uint64_t seed = 42;
  /// Wall-clock budget measured from submission; zero means none. A job
  /// still queued when its deadline passes is cancelled (DeadlineExceeded)
  /// instead of run; a *running* job carries a CancellationToken armed with
  /// the deadline, so the kernel itself stops at its next cooperative poll
  /// and the job finishes kCancelled with DeadlineExceeded.
  std::chrono::milliseconds deadline{0};
  /// When non-empty, the kept subgraph G' = (V, E') is written to this path
  /// as a v2 binary snapshot after a successful shed (a write failure fails
  /// the job with the writer's status). Part of the dedup key: two specs
  /// differing only in output_path are distinct jobs, so a cached result
  /// never skips a snapshot the caller asked for.
  std::string output_path;
  /// Fair-share tenant this job is accounted to ("" = the default tenant).
  /// Part of the dedup key: identical work from *different* tenants is
  /// never coalesced or served from another tenant's cached results — QoS
  /// isolation beats cross-tenant dedup (a queued job must not jump the
  /// fair queue by riding another tenant's submission).
  std::string tenant;
  /// Dispatch from the priority lane: ahead of every tenant's normal-lane
  /// work (fairness between tenants still applies within the lane).
  /// Deliberately NOT part of the dedup key — a priority duplicate instead
  /// boosts the already-queued primary into the priority lane.
  bool priority = false;
  /// Opt this submission into the degradation ladder (DegradePolicy).
  bool allow_degrade = false;
  /// Admission-layer load hint in [0, inf): e.g. the RPC server's
  /// inflight / max_inflight ratio. Combined (max) with the scheduler's own
  /// queue fraction to compute degradation pressure.
  double pressure = 0.0;
};

using JobId = uint64_t;
/// Shared so cached results can be handed to many callers without copies.
using JobResult = std::shared_ptr<const core::SheddingResult>;

/// Point-in-time view of one job, returned by JobScheduler::GetStatus.
struct JobStatus {
  JobId id = 0;
  JobState state = JobState::kQueued;
  /// Failure/cancellation reason; OK while non-terminal or done.
  Status status;
  /// True when the result came from the result cache or was coalesced onto
  /// an identical in-flight job rather than executed by this job.
  bool deduplicated = false;
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
  std::string tenant;
  /// What the caller asked for vs. what the scheduler answered with. Equal
  /// (and degrade_kind == 0) unless load-adaptive degradation applied; the
  /// requested spec is never silently rewritten — the delta is recorded
  /// here and travels back over the wire (net::DegradeKind).
  std::string requested_method;
  std::string applied_method;
  double requested_p = 0.0;
  double applied_p = 0.0;
  uint8_t degrade_kind = 0;
};

/// Fixed-pool asynchronous executor for shedding jobs.
///
/// Architecture (DESIGN.md "Service layer" + §13):
///  * `Options::workers` threads (default common/parallel_for.h's
///    DefaultThreadCount) pull JobIds from per-tenant weighted fair queues
///    (deficit round robin across tenants; a priority lane drained before
///    any normal-lane work; per-tenant running quotas). With no tenant
///    names in play everything lands in the default tenant's normal lane —
///    exactly the old single bounded FIFO. Submit fails with
///    ResourceExhausted when the global queue is full rather than blocking
///    the caller.
///  * Results are cached under the key `(dataset, method, p, seed)` — every
///    shedder is deterministic given its seed, so identical requests must
///    produce identical results. A Submit that matches a cached result
///    completes immediately (`scheduler.result_cache_hit`); one that matches
///    a *queued or running* job is coalesced onto it (`scheduler.coalesced`)
///    and shares its outcome, whatever that turns out to be.
///  * Cancellation is cooperative: Cancel on a queued job takes effect
///    immediately; Cancel on a running job trips the job's
///    CancellationToken, which the shedding kernels poll at coarse grain —
///    the reduction aborts within a poll interval instead of running to
///    completion. Terminal jobs cannot be cancelled. Cancelling a primary
///    never drags its coalesced followers down: the first live follower is
///    promoted to primary and re-queued, and the rest ride along with it.
///  * Shutdown (also run by the destructor) stops intake, cancels all
///    still-queued jobs, lets running jobs finish, and joins the pool.
///
/// All public methods are thread-safe. Terminal job records are retained
/// only within Options::max_retained_jobs / job_retention, and the result
/// cache is an LRU bounded by Options::result_cache_byte_budget —
/// GetStatus/Wait on a garbage-collected id return NotFound.
///
/// Tracing (when a tracer is supplied): every submission gets a trace id;
/// one job yields one coherent trace — a root `job` span covering
/// submit→finish, a `queued` child covering submit→dispatch, a `run` child
/// on the worker thread (under which GraphStore records `store.load`), and
/// synthesized `phase<N>` children derived from the shedder's
/// `phase<N>_seconds` stats. Export via Tracer::TraceEventJson. With a null
/// tracer every hook is a no-op.
class JobScheduler {
 public:
  using Options = JobSchedulerOptions;

  /// `store` must outlive the scheduler; `metrics` and `tracer` may be null.
  JobScheduler(GraphStore* store, MetricsRegistry* metrics,
               JobSchedulerOptions options = {},
               obs::Tracer* tracer = nullptr);
  ~JobScheduler();

  JobScheduler(const JobScheduler&) = delete;
  JobScheduler& operator=(const JobScheduler&) = delete;

  /// Validates the spec, then enqueues (or dedupes) it. Errors:
  /// InvalidArgument (bad p / unknown method), ResourceExhausted (queue
  /// full), FailedPrecondition (after Shutdown).
  StatusOr<JobId> Submit(const JobSpec& spec);

  /// Blocks until `id` reaches a terminal state. Returns the result for
  /// kDone, the failure status for kFailed/kCancelled, NotFound for unknown
  /// (or already garbage-collected) ids. A job being waited on is pinned
  /// against retention GC until the wait returns.
  StatusOr<JobResult> Wait(JobId id);

  /// Requests cancellation. OK if the request was recorded; a running job's
  /// token is tripped so the kernel stops at its next cooperative poll.
  /// FailedPrecondition when the job is already terminal; NotFound for
  /// unknown ids.
  Status Cancel(JobId id);

  StatusOr<JobStatus> GetStatus(JobId id) const;

  /// Jobs queued and not yet picked up (excludes running).
  size_t QueueDepth() const;

  /// Job records currently tracked (live + retained terminal).
  size_t TrackedJobs() const;

  int workers() const { return static_cast<int>(workers_.size()); }

  /// The cross-job ranking cache; null when Options disabled it.
  /// Introspection / test hook — jobs use it automatically.
  RankCache* rank_cache() { return rank_cache_.get(); }

  /// Stops intake, cancels queued jobs, drains running ones, joins workers.
  /// Idempotent.
  void Shutdown();

 private:
  /// Lanes within each tenant's queue; priority drains first.
  static constexpr int kPriorityLane = 0;
  static constexpr int kNormalLane = 1;
  static constexpr int kNumLanes = 2;

  struct Job {
    JobId id = 0;
    /// The spec as executed: `method` is the *applied* method (rewritten
    /// when tier-degraded; `requested_method` keeps the original), `p` is
    /// always the requested ratio.
    JobSpec spec;
    std::string requested_method;
    /// Preservation ratio actually answered (== spec.p unless a cached
    /// coarser-p result was served).
    double applied_p = 0.0;
    uint8_t degrade_kind = 0;  // net::DegradeKind numeric value
    /// Which lane this job queues in; a priority follower boosts a queued
    /// normal-lane primary by re-pushing it here with lane flipped (the
    /// stale normal-lane entry is pruned by the lane check on pop).
    int lane = kNormalLane;
    std::string cache_key;
    /// cache_key minus p — this job's bucket in cache_families_.
    std::string family_key;
    JobState state = JobState::kQueued;
    Status status;
    JobResult result;
    bool deduplicated = false;
    bool cancel_requested = false;
    /// Non-zero when this job was coalesced onto an identical in-flight job
    /// and never entered the queue itself.
    JobId primary = 0;
    /// Jobs coalesced onto this one; resolved when this job finishes.
    std::vector<JobId> followers;
    /// Armed at dispatch from `deadline`; tripped by Cancel while running.
    /// Shared with the executing worker so Cancel never races destruction.
    std::shared_ptr<CancellationToken> token;
    std::chrono::steady_clock::time_point submit_time;
    std::chrono::steady_clock::time_point deadline;  // max() = none
    std::chrono::steady_clock::time_point finish_time;
    /// Wait() calls currently blocked on this job; pins it against GC.
    int waiters = 0;
    double queue_seconds = 0.0;
    double run_seconds = 0.0;
    /// Tracing bookkeeping; all zero when no tracer is attached. The root
    /// `job` span is synthesized when the job reaches a terminal state.
    uint64_t trace_id = 0;
    uint64_t root_span_id = 0;
    int64_t submit_ns = 0;
    uint64_t run_span_id = 0;
    int64_t run_start_ns = 0;
  };

  /// Result-cache entry with approximate byte accounting for LRU eviction.
  struct CacheEntry {
    JobResult result;
    uint64_t bytes = 0;
    std::list<std::string>::iterator lru_pos;
    /// Membership in cache_families_ (for coarser-p lookup), kept so
    /// eviction can unindex without re-deriving the family from the key.
    std::string family;
    double p = 0.0;
  };

  /// One tenant's scheduling state: two FIFO lanes, a DRR credit balance,
  /// live queue/running counts, and lazily resolved per-tenant instruments.
  struct TenantQueue {
    uint32_t weight = 1;
    size_t max_running = 0;  // 0 = unlimited
    std::deque<JobId> lanes[kNumLanes];
    /// Deficit-round-robin balance, in dispatch slots. Replenished by
    /// `weight` when no eligible tenant can afford a slot; reset when the
    /// tenant's queue drains so idle tenants cannot hoard bursts.
    double credit = 0.0;
    size_t queued = 0;   // live queued jobs across both lanes
    size_t running = 0;  // jobs currently executing
    obs::Counter* submitted = nullptr;
    obs::Counter* done = nullptr;
    obs::Counter* rejected = nullptr;
    obs::Gauge* queued_gauge = nullptr;
    obs::Gauge* running_gauge = nullptr;
  };

  static std::string CacheKey(const JobSpec& spec, uint64_t generation);
  /// CacheKey minus `p` — the index bucket for coarser-p degradation.
  static std::string FamilyKey(const JobSpec& spec, uint64_t generation);
  static bool IsTerminal(JobState state) { return state >= JobState::kDone; }
  static uint64_t ApproxResultBytes(const core::SheddingResult& result);

  /// Find-or-create the tenant's queue (config from Options::tenants or
  /// default_tenant; instruments resolved on creation). Caller holds mu_.
  TenantQueue& TenantLocked(const std::string& name);
  /// Drops stale front entries (terminal / already-dispatched / re-laned
  /// jobs) so emptiness checks see live work only. Caller holds mu_.
  void PruneLaneFrontLocked(TenantQueue& tq, int lane);
  static bool UnderQuota(const TenantQueue& tq) {
    return tq.max_running == 0 || tq.running < tq.max_running;
  }
  /// True when some tenant has a live queued job and is under quota.
  /// Prunes as it scans. Caller holds mu_.
  bool HasDispatchableLocked();
  /// Deficit-round-robin pop: priority lane first across all tenants, then
  /// the normal lane; within a lane, the next tenant (ring order) with
  /// credit >= 1 and quota headroom wins; credits replenish by weight when
  /// no eligible tenant can afford a slot. Returns 0 when nothing is
  /// dispatchable. Caller holds mu_.
  JobId PopDispatchableLocked(TenantQueue** out_tenant);
  /// Pressure-based degradation decision for one submission; may rewrite
  /// `job`'s method down the cost ladder (recording requested_method /
  /// degrade_kind) or return a cached coarser-p result to serve directly.
  /// Caller holds mu_.
  JobResult MaybeDegradeLocked(Job& job, uint64_t generation);

  void WorkerLoop();
  /// Runs `job`'s reduction with no scheduler lock held; returns the
  /// outcome. `job` fields other than `spec` must not be touched here.
  /// `cancel` (may be null) is polled by the kernels.
  StatusOr<core::SheddingResult> Execute(const JobSpec& spec,
                                         const CancellationToken* cancel,
                                         double* run_seconds);
  /// Execute for the stateful incremental method "crr-inc": resolves (or
  /// creates) the (dataset, p, seed) ShedSession over the dataset's
  /// VersionedGraph and re-sheds against the current version. The kept set
  /// is returned as EdgeIds of the result version's canonical edge order —
  /// the same ids a from-scratch job on the materialized graph would
  /// answer with. Not cooperatively cancellable mid-run (re-sheds after
  /// small batches are far shorter than the cold run); a Cancel lands when
  /// the run finishes.
  StatusOr<core::SheddingResult> ExecuteIncremental(const JobSpec& spec,
                                                    double* run_seconds);
  /// Moves `job` to `state`, resolves followers and the result cache,
  /// updates metrics, wakes waiters. A cancelled primary promotes its first
  /// live follower to primary and re-queues it. Caller holds mu_.
  void FinishLocked(Job& job, JobState state, Status status,
                    JobResult result);
  /// Stamps `job` terminal bookkeeping (finish_time, retention order).
  /// Caller holds mu_.
  void RecordTerminalLocked(Job& job,
                            std::chrono::steady_clock::time_point now);
  /// Erases terminal records beyond the retention bounds. Caller holds mu_.
  void GcRetainedJobsLocked(std::chrono::steady_clock::time_point now);
  /// Inserts into the LRU result cache (and the coarser-p family index)
  /// and evicts past the byte budget (never the just-inserted entry).
  /// Caller holds mu_.
  void InsertResultCacheLocked(const std::string& key,
                               const std::string& family, double p,
                               const JobResult& result);
  void PublishQueueDepthLocked();
  void PublishTenantGaugesLocked(TenantQueue& tq);
  /// Bumps the per-terminal-state counter (global + tenant) for one
  /// finished job.
  void CountTerminalLocked(const Job& job, JobState state);
  /// Synthesizes the root `job` span (and, for executed jobs, the per-phase
  /// children) once a job is terminal. Caller holds mu_.
  void EmitJobTraceLocked(const Job& job, JobState state,
                          const JobResult& result);

  /// Typed instrument handles, resolved once at construction. All null when
  /// no registry is attached. The per-phase `scheduler.<stat>_seconds`
  /// series are dynamic (the set of stats depends on the shedder), so those
  /// still go through the registry's string shim via `metrics_`.
  struct Instruments {
    obs::Counter* submitted = nullptr;
    obs::Counter* result_cache_hit = nullptr;
    obs::Counter* coalesced = nullptr;
    obs::Counter* rejected_queue_full = nullptr;
    obs::Counter* jobs_done = nullptr;
    obs::Counter* jobs_failed = nullptr;
    obs::Counter* jobs_cancelled = nullptr;
    obs::Counter* deadline_expired = nullptr;
    obs::Counter* cancelled_while_running = nullptr;
    obs::Counter* follower_promoted = nullptr;
    obs::Counter* jobs_gc = nullptr;
    obs::Counter* result_cache_evicted = nullptr;
    obs::Counter* degraded_tier = nullptr;
    obs::Counter* degraded_cached_p = nullptr;
    obs::Counter* priority_boosted = nullptr;
    obs::Gauge* workers = nullptr;
    obs::Gauge* queue_depth = nullptr;
    obs::Gauge* jobs_tracked = nullptr;
    obs::Gauge* result_cache_bytes = nullptr;
    obs::LatencySeries* queue_seconds = nullptr;
    obs::LatencySeries* run_seconds = nullptr;
  };

  GraphStore* const store_;
  MetricsRegistry* const metrics_;  // may be null
  obs::Tracer* const tracer_;      // may be null
  Instruments instruments_;
  const JobSchedulerOptions options_;
  /// Cross-job Phase-1 ranking cache; null when disabled. Internally
  /// synchronized — accessed by workers outside mu_.
  std::unique_ptr<RankCache> rank_cache_;

  /// Incremental re-shed sessions for method "crr-inc", one per
  /// (dataset, p, seed). Sessions are stateful and not thread-safe, so
  /// each carries its own mutex — concurrent crr-inc jobs on the *same*
  /// session serialize (the second answers the version the first left
  /// behind or newer), while distinct sessions run in parallel. A session
  /// is discarded when the store hands out a different VersionedGraph for
  /// its dataset (Replace landed).
  struct DynSession {
    std::mutex mu;
    std::shared_ptr<dyn::VersionedGraph> graph;
    std::unique_ptr<dyn::ShedSession> session;
  };
  std::mutex dyn_mu_;  // guards dyn_sessions_ (never held across Reshed)
  std::map<std::string, std::shared_ptr<DynSession>> dyn_sessions_;

  mutable std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable job_terminal_;
  std::map<JobId, Job> jobs_;  // stable nodes: worker holds refs across ops
  /// Per-tenant fair queues (stable nodes: workers hold TenantQueue*
  /// across the Execute unlock) and the DRR scan ring over their names.
  std::map<std::string, TenantQueue> tenants_;
  std::vector<std::string> tenant_ring_;  // creation order
  size_t ring_pos_ = 0;
  size_t live_queued_ = 0;  // live queued jobs across all tenants/lanes
  std::unordered_map<std::string, JobId> inflight_;
  std::unordered_map<std::string, CacheEntry> result_cache_;
  std::list<std::string> cache_lru_;  // front = most recently used
  /// family key -> (p -> full cache key), the coarser-p degradation index
  /// over result_cache_. Maintained by insert/evict.
  std::map<std::string, std::map<double, std::string>> cache_families_;
  uint64_t cache_bytes_ = 0;
  /// Terminal jobs in finish order (front = oldest) — the GC scan order.
  std::deque<JobId> terminal_order_;
  JobId next_id_ = 1;
  bool shutdown_ = false;

  /// Serializes Shutdown callers (join must happen exactly once).
  std::mutex shutdown_mu_;
  std::vector<std::thread> workers_;
};

}  // namespace edgeshed::service

#endif  // EDGESHED_SERVICE_JOB_SCHEDULER_H_
