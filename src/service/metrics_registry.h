#ifndef EDGESHED_SERVICE_METRICS_REGISTRY_H_
#define EDGESHED_SERVICE_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/histogram.h"

namespace edgeshed::service {

/// Summary of one latency series tracked by MetricsRegistry.
struct LatencySnapshot {
  uint64_t count = 0;
  double sum_seconds = 0.0;
  double min_seconds = 0.0;
  double max_seconds = 0.0;
  double MeanSeconds() const {
    return count == 0 ? 0.0 : sum_seconds / static_cast<double>(count);
  }
};

/// Thread-safe metrics sink shared by the service components (GraphStore,
/// JobScheduler, the CLI `service` mode).
///
/// Three instrument kinds, all keyed by flat string names ("store.hit",
/// "scheduler.queue_depth", ...):
///  * counters — monotonically increasing uint64 (events);
///  * gauges   — instantaneous int64 values (queue depth, bytes resident);
///  * latency histograms — per-series count/sum/min/max plus a log2-bucketed
///    microsecond `Histogram` (common/histogram.h), so a snapshot can report
///    both means and coarse distribution shape without unbounded memory.
///
/// Instruments are created lazily on first use; reads of absent names return
/// zero. All methods are safe to call concurrently.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  void IncrementCounter(const std::string& name, uint64_t delta = 1);
  uint64_t CounterValue(const std::string& name) const;

  void SetGauge(const std::string& name, int64_t value);
  void AddToGauge(const std::string& name, int64_t delta);
  int64_t GaugeValue(const std::string& name) const;

  /// Records one observation of `seconds` into the series `name`.
  void RecordLatency(const std::string& name, double seconds);
  LatencySnapshot LatencyValue(const std::string& name) const;

  /// The log2(microsecond) bucket a latency observation falls in; exposed so
  /// tests and the snapshot printer agree on bucketing.
  static int64_t LatencyBucket(double seconds);

  /// Human-readable dump of every instrument, sorted by name:
  ///   counter scheduler.jobs_done 32
  ///   gauge   store.bytes_resident 183500
  ///   latency scheduler.run_seconds count=32 mean=0.004211s max=0.009120s
  std::string TextSnapshot() const;

  /// Names of all registered instruments (testing / introspection).
  std::vector<std::string> CounterNames() const;

 private:
  struct LatencySeries {
    LatencySnapshot stats;
    Histogram buckets;  // keyed by LatencyBucket(seconds)
  };

  mutable std::mutex mu_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, int64_t> gauges_;
  std::map<std::string, LatencySeries> latencies_;
};

}  // namespace edgeshed::service

#endif  // EDGESHED_SERVICE_METRICS_REGISTRY_H_
