#ifndef EDGESHED_SERVICE_METRICS_REGISTRY_H_
#define EDGESHED_SERVICE_METRICS_REGISTRY_H_

// MetricsRegistry moved to src/obs/ (the observability layer) so exporters —
// Prometheus text, the embedded stats server — can depend on it without
// pulling in the service layer. This header remains so existing includes of
// "service/metrics_registry.h" and uses of service::MetricsRegistry keep
// compiling; new code should include "obs/metrics.h" directly.

#include "obs/metrics.h"

namespace edgeshed::service {

using Counter = obs::Counter;
using Gauge = obs::Gauge;
using LatencySeries = obs::LatencySeries;
using LatencySnapshot = obs::LatencySnapshot;
using MetricsRegistry = obs::MetricsRegistry;
using MetricsSnapshot = obs::MetricsSnapshot;

}  // namespace edgeshed::service

#endif  // EDGESHED_SERVICE_METRICS_REGISTRY_H_
