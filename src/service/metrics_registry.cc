#include "service/metrics_registry.h"

#include <cmath>

#include "common/strings.h"

namespace edgeshed::service {

void MetricsRegistry::IncrementCounter(const std::string& name,
                                       uint64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  counters_[name] += delta;
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::SetGauge(const std::string& name, int64_t value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

void MetricsRegistry::AddToGauge(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] += delta;
}

int64_t MetricsRegistry::GaugeValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

int64_t MetricsRegistry::LatencyBucket(double seconds) {
  const double micros = seconds * 1e6;
  if (!(micros > 1.0)) return 0;  // sub-microsecond (and NaN) -> bucket 0
  return static_cast<int64_t>(std::floor(std::log2(micros)));
}

void MetricsRegistry::RecordLatency(const std::string& name, double seconds) {
  std::lock_guard<std::mutex> lock(mu_);
  LatencySeries& series = latencies_[name];
  LatencySnapshot& s = series.stats;
  if (s.count == 0 || seconds < s.min_seconds) s.min_seconds = seconds;
  if (s.count == 0 || seconds > s.max_seconds) s.max_seconds = seconds;
  s.sum_seconds += seconds;
  ++s.count;
  series.buckets.Add(LatencyBucket(seconds));
}

LatencySnapshot MetricsRegistry::LatencyValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = latencies_.find(name);
  return it == latencies_.end() ? LatencySnapshot{} : it->second.stats;
}

std::string MetricsRegistry::TextSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, value] : counters_) {
    out += StrFormat("counter %s %llu\n", name.c_str(),
                     static_cast<unsigned long long>(value));
  }
  for (const auto& [name, value] : gauges_) {
    out += StrFormat("gauge   %s %lld\n", name.c_str(),
                     static_cast<long long>(value));
  }
  for (const auto& [name, series] : latencies_) {
    const LatencySnapshot& s = series.stats;
    out += StrFormat(
        "latency %s count=%llu mean=%.6fs min=%.6fs max=%.6fs\n", name.c_str(),
        static_cast<unsigned long long>(s.count), s.MeanSeconds(),
        s.min_seconds, s.max_seconds);
  }
  return out;
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, value] : counters_) names.push_back(name);
  return names;
}

}  // namespace edgeshed::service
