#include "service/graph_store.h"

#include <utility>

#include "common/stopwatch.h"
#include "common/strings.h"

namespace edgeshed::service {

GraphStore::GraphStore(GraphStoreOptions options, MetricsRegistry* metrics,
                       obs::Tracer* tracer)
    : options_(options), tracer_(tracer) {
  if (metrics != nullptr) {
    instruments_.hit = metrics->GetCounter("store.hit");
    instruments_.miss = metrics->GetCounter("store.miss");
    instruments_.wait_hit = metrics->GetCounter("store.wait_hit");
    instruments_.load_failure = metrics->GetCounter("store.load_failure");
    instruments_.wait_failure = metrics->GetCounter("store.wait_failure");
    instruments_.eviction = metrics->GetCounter("store.eviction");
    instruments_.bytes_resident = metrics->GetGauge("store.bytes_resident");
    instruments_.graphs_resident = metrics->GetGauge("store.graphs_resident");
    instruments_.load_seconds = metrics->GetLatency("store.load_seconds");
  }
}

Status GraphStore::Register(const std::string& name, Loader loader) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  if (loader == nullptr) {
    return Status::InvalidArgument(
        StrFormat("null loader for dataset '%s'", name.c_str()));
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(name);
  if (!inserted) {
    return Status::FailedPrecondition(
        StrFormat("dataset '%s' is already registered", name.c_str()));
  }
  it->second.loader = std::move(loader);
  return Status::OK();
}

Status GraphStore::Replace(const std::string& name, Loader loader) {
  if (name.empty()) {
    return Status::InvalidArgument("dataset name must be non-empty");
  }
  if (loader == nullptr) {
    return Status::InvalidArgument(
        StrFormat("null loader for dataset '%s'", name.c_str()));
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = entries_.try_emplace(name);
  Entry& entry = it->second;
  entry.loader = std::move(loader);
  if (inserted) return Status::OK();
  ++entry.generation;
  entry.dyn.reset();  // a replaced dataset starts a fresh dynamic history
  if (entry.graph != nullptr) {
    bytes_resident_ -= entry.bytes;
    entry.bytes = 0;
    entry.graph.reset();  // leases held by running jobs stay valid
    lru_.erase(entry.lru_pos);
    PublishGaugesLocked();
  }
  return Status::OK();
}

uint64_t GraphStore::Generation(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it == entries_.end() ? 0 : it->second.generation;
}

void GraphStore::SetFallbackLoaderFactory(LoaderFactory factory) {
  std::lock_guard<std::mutex> lock(mu_);
  fallback_factory_ = std::move(factory);
}

StatusOr<std::shared_ptr<const graph::Graph>> GraphStore::Get(
    const std::string& name, uint64_t* generation) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it == entries_.end() && fallback_factory_ != nullptr &&
      !name.empty()) {
    // Unknown name: give the fallback factory one shot at minting a loader
    // (shard snapshots appear after startup). Successful mints register the
    // name permanently, so subsequent Gets take the ordinary path.
    if (std::optional<Loader> minted = fallback_factory_(name);
        minted.has_value() && *minted != nullptr) {
      it = entries_.try_emplace(name).first;
      it->second.loader = *std::move(minted);
    }
  }
  if (it == entries_.end()) {
    return Status::NotFound(
        StrFormat("dataset '%s' is not registered", name.c_str()));
  }
  // `entries_` never erases nodes, so this reference stays valid across the
  // unlocked load below.
  Entry& entry = it->second;
  bool waited = false;
  while (entry.graph == nullptr && entry.loading) {
    waited = true;
    // Remember which load wave we are blocked on: if exactly that wave
    // fails, its Status is shared with us below instead of each waiter
    // serially re-running a loader that just failed (a retry stampede).
    const uint64_t wave = entry.load_epoch;
    load_done_.wait(lock);
    if (entry.graph == nullptr && !entry.loading &&
        entry.failed_epoch == wave) {
      if (instruments_.wait_failure != nullptr) {
        instruments_.wait_failure->Increment();
      }
      return entry.last_failure;
    }
  }
  if (entry.graph != nullptr) {
    lru_.splice(lru_.begin(), lru_, entry.lru_pos);
    obs::Counter* counter = waited ? instruments_.wait_hit : instruments_.hit;
    if (counter != nullptr) counter->Increment();
    if (generation != nullptr) *generation = entry.generation;
    return entry.graph;
  }

  // Miss: this thread loads, outside the lock. The loader is copied under
  // the lock because Replace may swap it concurrently.
  entry.loading = true;
  const uint64_t epoch = ++entry.load_epoch;
  const uint64_t loading_generation = entry.generation;
  Loader loader = entry.loader;
  lock.unlock();
  obs::Span load_span = obs::Tracer::StartSpan(tracer_, "store.load");
  load_span.Annotate("dataset", name);
  Stopwatch watch;
  StatusOr<graph::Graph> loaded = loader();
  const double load_seconds = watch.ElapsedSeconds();
  load_span.Annotate("ok", loaded.ok() ? "true" : "false");
  load_span.End();
  lock.lock();
  entry.loading = false;
  if (!loaded.ok()) {
    entry.failed_epoch = epoch;
    entry.last_failure = loaded.status();
    load_done_.notify_all();
    if (instruments_.load_failure != nullptr) {
      instruments_.load_failure->Increment();
    }
    return loaded.status();
  }
  load_done_.notify_all();
  if (entry.generation != loading_generation) {
    // Replace landed mid-load: the graph we built belongs to the old
    // generation. Hand it to this caller (labelled with the generation it
    // came from) without installing it, so the next Get loads fresh data.
    if (generation != nullptr) *generation = loading_generation;
    if (instruments_.miss != nullptr) instruments_.miss->Increment();
    return std::make_shared<const graph::Graph>(std::move(loaded).value());
  }
  entry.graph =
      std::make_shared<const graph::Graph>(std::move(loaded).value());
  entry.bytes = ApproxBytes(*entry.graph);
  bytes_resident_ += entry.bytes;
  lru_.push_front(name);
  entry.lru_pos = lru_.begin();
  if (instruments_.miss != nullptr) instruments_.miss->Increment();
  if (instruments_.load_seconds != nullptr) {
    instruments_.load_seconds->Record(load_seconds);
  }
  EvictLocked(name);
  PublishGaugesLocked();
  if (generation != nullptr) *generation = entry.generation;
  return entry.graph;
}

StatusOr<std::shared_ptr<dyn::VersionedGraph>> GraphStore::DynGraph(
    const std::string& name) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it != entries_.end() && it->second.dyn != nullptr) {
      return it->second.dyn;
    }
  }
  // First use: load (or reuse) the base graph through the ordinary Get
  // path, then install the handle. Get also gives fallback-minted datasets
  // a chance to register themselves.
  auto graph = Get(name);
  if (!graph.ok()) return graph.status();
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_.at(name);
  if (entry.dyn == nullptr) {
    entry.dyn = std::make_shared<dyn::VersionedGraph>(*std::move(graph));
  }
  return entry.dyn;
}

StatusOr<uint64_t> GraphStore::ApplyMutations(const std::string& name,
                                              graph::MutationBatch batch) {
  auto dyn = DynGraph(name);
  if (!dyn.ok()) return dyn.status();
  auto version = (*dyn)->ApplyBatch(std::move(batch));
  if (!version.ok()) return version.status();
  // Publish the new head through the Replace contract: generation bump +
  // loader swap + resident drop, so readers and generation-keyed caches
  // converge on the mutated graph. The loader captures a pinned snapshot —
  // materializing it later yields exactly this version even if more
  // batches land in between (each of those swaps the loader again).
  std::shared_ptr<const dyn::DeltaGraph> snap = (*dyn)->Snapshot();
  std::lock_guard<std::mutex> lock(mu_);
  Entry& entry = entries_.at(name);
  if (entry.dyn == *dyn) {  // skip if Replace raced us: its state won
    ++entry.generation;
    entry.loader = [snap] { return snap->Materialize(); };
    if (entry.graph != nullptr) {
      bytes_resident_ -= entry.bytes;
      entry.bytes = 0;
      entry.graph.reset();  // leases held by running jobs stay valid
      lru_.erase(entry.lru_pos);
      PublishGaugesLocked();
    }
  }
  return *version;
}

bool GraphStore::IsResident(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  return it != entries_.end() && it->second.graph != nullptr;
}

std::vector<std::string> GraphStore::RegisteredNames() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) names.push_back(name);
  return names;
}

void GraphStore::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, entry] : entries_) {
    entry.graph.reset();
    entry.bytes = 0;
  }
  lru_.clear();
  bytes_resident_ = 0;
  PublishGaugesLocked();
}

uint64_t GraphStore::bytes_resident() const {
  std::lock_guard<std::mutex> lock(mu_);
  return bytes_resident_;
}

uint64_t GraphStore::ApproxBytes(const graph::Graph& g) {
  // Mapped graphs count only their heap footprint: the CSR lives in the
  // page cache, reclaimable under memory pressure, so charging it against
  // the resident-byte budget would evict datasets that cost near nothing.
  return g.HeapBytes();
}

void GraphStore::EvictLocked(const std::string& keep) {
  while (bytes_resident_ > options_.byte_budget && !lru_.empty()) {
    const std::string& victim = lru_.back();
    if (victim == keep) break;  // `keep` is at the front unless it is alone
    Entry& entry = entries_.at(victim);
    bytes_resident_ -= entry.bytes;
    entry.bytes = 0;
    entry.graph.reset();  // leases held by running jobs keep the data alive
    lru_.pop_back();
    if (instruments_.eviction != nullptr) instruments_.eviction->Increment();
  }
}

void GraphStore::PublishGaugesLocked() {
  if (instruments_.bytes_resident != nullptr) {
    instruments_.bytes_resident->Set(static_cast<int64_t>(bytes_resident_));
  }
  if (instruments_.graphs_resident != nullptr) {
    instruments_.graphs_resident->Set(static_cast<int64_t>(lru_.size()));
  }
}

}  // namespace edgeshed::service
