#include "service/dataset_registry.h"

#include <optional>
#include <utility>

#include "graph/binary_io.h"
#include "graph/edge_list_io.h"

namespace edgeshed::service {

Status RegisterSurrogateDatasets(GraphStore& store,
                                 const graph::DatasetOptions& options) {
  const std::pair<const char*, graph::DatasetId> catalog[] = {
      {"grqc", graph::DatasetId::kCaGrQc},
      {"hepph", graph::DatasetId::kCaHepPh},
      {"enron", graph::DatasetId::kEmailEnron},
      {"livejournal", graph::DatasetId::kComLiveJournal},
  };
  for (const auto& [name, id] : catalog) {
    EDGESHED_RETURN_IF_ERROR(store.Register(
        name, [id = id, options]() -> StatusOr<graph::Graph> {
          return graph::MakeDataset(id, options);
        }));
  }
  return Status::OK();
}

Status RegisterEdgeListDataset(GraphStore& store, const std::string& name,
                               const std::string& path) {
  return store.Register(name, [path]() -> StatusOr<graph::Graph> {
    // Format auto-detected, so --edge_list entries can point at text edge
    // lists, binary edge lists, or snapshots (v3 served zero-copy).
    auto loaded = graph::LoadGraph(path);
    if (!loaded.ok()) return loaded.status();
    return std::move(loaded)->graph;
  });
}

bool IsSafeDatasetName(const std::string& name) {
  if (name.empty() || name.size() > 255 || name.front() == '.') return false;
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                    c == '-';
    if (!ok) return false;
  }
  return true;
}

void InstallShardDirFallback(GraphStore& store, const std::string& dir,
                             bool mmap) {
  store.SetFallbackLoaderFactory(
      [dir, mmap](const std::string& name)
          -> std::optional<GraphStore::Loader> {
        if (!IsSafeDatasetName(name)) return std::nullopt;
        std::string path = dir + "/" + name + ".esg";
        return GraphStore::Loader(
            [path = std::move(path), mmap]() -> StatusOr<graph::Graph> {
              graph::IngestOptions options;
              options.mmap = mmap;
              auto loaded = graph::LoadSnapshot(path, options);
              if (!loaded.ok()) return loaded.status();
              return std::move(loaded)->graph;
            });
      });
}

}  // namespace edgeshed::service
