#include "service/dataset_registry.h"

#include <utility>

#include "graph/edge_list_io.h"

namespace edgeshed::service {

Status RegisterSurrogateDatasets(GraphStore& store,
                                 const graph::DatasetOptions& options) {
  const std::pair<const char*, graph::DatasetId> catalog[] = {
      {"grqc", graph::DatasetId::kCaGrQc},
      {"hepph", graph::DatasetId::kCaHepPh},
      {"enron", graph::DatasetId::kEmailEnron},
      {"livejournal", graph::DatasetId::kComLiveJournal},
  };
  for (const auto& [name, id] : catalog) {
    EDGESHED_RETURN_IF_ERROR(store.Register(
        name, [id = id, options]() -> StatusOr<graph::Graph> {
          return graph::MakeDataset(id, options);
        }));
  }
  return Status::OK();
}

Status RegisterEdgeListDataset(GraphStore& store, const std::string& name,
                               const std::string& path) {
  return store.Register(name, [path]() -> StatusOr<graph::Graph> {
    auto loaded = graph::LoadEdgeList(path);
    if (!loaded.ok()) return loaded.status();
    return std::move(loaded)->graph;
  });
}

}  // namespace edgeshed::service
