#include "service/job_scheduler.h"

#include <algorithm>
#include <utility>

#include "common/parallel_for.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/shedder_factory.h"
#include "graph/binary_io.h"

namespace edgeshed::service {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

std::string_view JobStateToString(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

JobScheduler::JobScheduler(GraphStore* store, MetricsRegistry* metrics,
                           JobSchedulerOptions options, obs::Tracer* tracer)
    : store_(store), metrics_(metrics), tracer_(tracer), options_(options) {
  if (metrics_ != nullptr) {
    // Resolve every fixed-name instrument once; per-event updates through
    // these handles are lock-free and never touch the registry map again.
    instruments_.submitted = metrics_->GetCounter("scheduler.submitted");
    instruments_.result_cache_hit =
        metrics_->GetCounter("scheduler.result_cache_hit");
    instruments_.coalesced = metrics_->GetCounter("scheduler.coalesced");
    instruments_.rejected_queue_full =
        metrics_->GetCounter("scheduler.rejected_queue_full");
    instruments_.jobs_done = metrics_->GetCounter("scheduler.jobs_done");
    instruments_.jobs_failed = metrics_->GetCounter("scheduler.jobs_failed");
    instruments_.jobs_cancelled =
        metrics_->GetCounter("scheduler.jobs_cancelled");
    instruments_.deadline_expired =
        metrics_->GetCounter("scheduler.deadline_expired");
    instruments_.cancelled_while_running =
        metrics_->GetCounter("scheduler.cancelled_while_running");
    instruments_.follower_promoted =
        metrics_->GetCounter("scheduler.follower_promoted");
    instruments_.jobs_gc = metrics_->GetCounter("scheduler.jobs_gc");
    instruments_.result_cache_evicted =
        metrics_->GetCounter("scheduler.result_cache_evicted");
    instruments_.workers = metrics_->GetGauge("scheduler.workers");
    instruments_.queue_depth = metrics_->GetGauge("scheduler.queue_depth");
    instruments_.jobs_tracked = metrics_->GetGauge("scheduler.jobs_tracked");
    instruments_.result_cache_bytes =
        metrics_->GetGauge("scheduler.result_cache_bytes");
    instruments_.queue_seconds =
        metrics_->GetLatency("scheduler.queue_seconds");
    instruments_.run_seconds = metrics_->GetLatency("scheduler.run_seconds");
  }
  if (options_.enable_rank_cache) {
    RankCacheOptions rank_options;
    rank_options.byte_budget = options_.rank_cache_byte_budget;
    rank_cache_ =
        std::make_unique<RankCache>(rank_options, metrics_, tracer_);
  }
  int workers = options_.workers > 0 ? options_.workers : DefaultThreadCount();
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (instruments_.workers != nullptr) {
    instruments_.workers->Set(workers);
    instruments_.queue_depth->Set(0);
  }
}

JobScheduler::~JobScheduler() { Shutdown(); }

std::string JobScheduler::CacheKey(const JobSpec& spec, uint64_t generation) {
  // %a renders the exact bits of p, so 0.1 and 0.1000000001 never collide.
  // The dataset generation (bumped by GraphStore::Replace) is part of the
  // key so a replaced dataset can never serve results computed against its
  // predecessor from the result cache, nor coalesce onto its jobs.
  return StrFormat("%s|g%llu|%s|%a|%llu|%s", spec.dataset.c_str(),
                   static_cast<unsigned long long>(generation),
                   spec.method.c_str(), spec.p,
                   static_cast<unsigned long long>(spec.seed),
                   spec.output_path.c_str());
}

StatusOr<JobId> JobScheduler::Submit(const JobSpec& spec) {
  EDGESHED_RETURN_IF_ERROR(core::ValidatePreservationRatio(spec.p));
  if (spec.dataset.empty()) {
    return Status::InvalidArgument("job spec needs a dataset name");
  }
  const auto known = core::KnownShedderNames();
  if (std::find(known.begin(), known.end(), spec.method) == known.end()) {
    return Status::InvalidArgument(
        StrFormat("unknown shedding method '%s'", spec.method.c_str()));
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    return Status::FailedPrecondition("scheduler is shut down");
  }
  const auto now = Clock::now();
  Job job;
  job.id = next_id_;
  job.spec = spec;
  job.cache_key = CacheKey(spec, store_->Generation(spec.dataset));
  job.submit_time = now;
  job.deadline = spec.deadline.count() > 0 ? now + spec.deadline
                                           : Clock::time_point::max();
  if (tracer_ != nullptr) {
    job.trace_id = tracer_->NewTraceId();
    job.root_span_id = tracer_->NewTraceId();
    job.submit_ns = tracer_->NowNs();
  }

  if (options_.enable_result_cache) {
    auto cached = result_cache_.find(job.cache_key);
    if (cached != result_cache_.end()) {
      cache_lru_.splice(cache_lru_.begin(), cache_lru_,
                        cached->second.lru_pos);
      job.state = JobState::kDone;
      job.result = cached->second.result;
      job.deduplicated = true;
      if (instruments_.submitted != nullptr) {
        instruments_.submitted->Increment();
        instruments_.result_cache_hit->Increment();
        instruments_.jobs_done->Increment();
      }
      const JobId id = next_id_++;
      job.id = id;
      auto [it, inserted] = jobs_.emplace(id, std::move(job));
      EmitJobTraceLocked(it->second, JobState::kDone, it->second.result);
      RecordTerminalLocked(it->second, now);
      GcRetainedJobsLocked(now);
      return id;
    }
  }

  auto inflight = inflight_.find(job.cache_key);
  if (inflight != inflight_.end()) {
    // An identical job is queued or running: ride along instead of doing the
    // same work twice. The follower shares the primary's outcome.
    job.primary = inflight->second;
    job.deduplicated = true;
    const JobId id = next_id_++;
    jobs_.at(job.primary).followers.push_back(id);
    jobs_.emplace(id, std::move(job));
    if (instruments_.submitted != nullptr) {
      instruments_.submitted->Increment();
      instruments_.coalesced->Increment();
    }
    return id;
  }

  if (live_queued_ >= options_.queue_capacity) {
    if (instruments_.rejected_queue_full != nullptr) {
      instruments_.rejected_queue_full->Increment();
    }
    return Status::ResourceExhausted(
        StrFormat("submission queue is full (%zu jobs)",
                  options_.queue_capacity));
  }

  const JobId id = next_id_++;
  job.id = id;
  inflight_[job.cache_key] = id;
  jobs_.emplace(id, std::move(job));
  queue_.push_back(id);
  ++live_queued_;
  PublishQueueDepthLocked();
  if (instruments_.submitted != nullptr) instruments_.submitted->Increment();
  GcRetainedJobsLocked(now);
  work_available_.notify_one();
  return id;
}

StatusOr<JobResult> JobScheduler::Wait(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound(StrFormat(
        "unknown job id %llu", static_cast<unsigned long long>(id)));
  }
  Job& job = it->second;
  // Pin the record against retention GC while blocked: the map node (and
  // this reference) must stay valid across the wait.
  ++job.waiters;
  job_terminal_.wait(lock, [&job] { return IsTerminal(job.state); });
  --job.waiters;
  if (job.state == JobState::kDone) return job.result;
  return job.status;
}

Status JobScheduler::Cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound(StrFormat(
        "unknown job id %llu", static_cast<unsigned long long>(id)));
  }
  Job& job = it->second;
  if (IsTerminal(job.state)) {
    return Status::FailedPrecondition(
        StrFormat("job %llu is already %s",
                  static_cast<unsigned long long>(id),
                  std::string(JobStateToString(job.state)).c_str()));
  }
  job.cancel_requested = true;
  if (job.state == JobState::kQueued) {
    // Queued (or coalesced) jobs cancel immediately; their id stays in
    // queue_ and is skipped by the worker that pops it.
    if (job.primary == 0) {
      --live_queued_;
      PublishQueueDepthLocked();
    }
    FinishLocked(job, JobState::kCancelled,
                 Status::Cancelled("cancelled by caller"), nullptr);
  } else if (job.state == JobState::kRunning && job.token != nullptr) {
    // Trip the running kernel's token: the reduction aborts at its next
    // cooperative poll instead of running to completion.
    job.token->Cancel();
  }
  return Status::OK();
}

StatusOr<JobStatus> JobScheduler::GetStatus(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound(StrFormat(
        "unknown job id %llu", static_cast<unsigned long long>(id)));
  }
  const Job& job = it->second;
  JobStatus status;
  status.id = job.id;
  status.state = job.state;
  status.status = job.status;
  status.deduplicated = job.deduplicated;
  status.queue_seconds = job.queue_seconds;
  status.run_seconds = job.run_seconds;
  return status;
}

size_t JobScheduler::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_queued_;
}

size_t JobScheduler::TrackedJobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

void JobScheduler::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    for (JobId id : queue_) {
      auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;  // cancelled entry already GC'd
      Job& job = it->second;
      if (IsTerminal(job.state)) continue;
      FinishLocked(job, JobState::kCancelled,
                   Status::Cancelled("scheduler shutdown"), nullptr);
    }
    queue_.clear();
    live_queued_ = 0;
    PublishQueueDepthLocked();
    work_available_.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void JobScheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_available_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    const JobId id = queue_.front();
    queue_.pop_front();
    auto job_it = jobs_.find(id);
    // Cancelled-while-queued entries keep their queue slot; the record may
    // even have been retired by retention GC before this pop.
    if (job_it == jobs_.end()) continue;
    Job& job = job_it->second;  // map nodes are stable across the unlock below
    if (IsTerminal(job.state)) continue;  // cancelled while queued
    --live_queued_;
    PublishQueueDepthLocked();
    const auto picked_up = Clock::now();
    job.queue_seconds = SecondsBetween(job.submit_time, picked_up);
    if (job.cancel_requested) {
      FinishLocked(job, JobState::kCancelled,
                   Status::Cancelled("cancelled by caller"), nullptr);
      continue;
    }
    if (picked_up > job.deadline) {
      if (instruments_.deadline_expired != nullptr) {
        instruments_.deadline_expired->Increment();
      }
      FinishLocked(job, JobState::kCancelled,
                   Status::DeadlineExceeded(
                       "deadline passed before the job was dispatched"),
                   nullptr);
      continue;
    }
    job.state = JobState::kRunning;
    // Arm the cooperative token with the job's deadline; Cancel() trips it.
    // Shared with this worker so a concurrent GC/erase can never leave the
    // kernel polling freed memory.
    job.token = std::make_shared<CancellationToken>(job.deadline);
    const std::shared_ptr<CancellationToken> token = job.token;
    const JobSpec spec = job.spec;  // worker's copy; run with no lock held
    const uint64_t trace_id = job.trace_id;
    const uint64_t root_span_id = job.root_span_id;
    if (tracer_ != nullptr) {
      // The queue wait was observed as two timestamps, not a scope; commit
      // it as a synthesized span now that it is over.
      obs::SpanRecord queued;
      queued.trace_id = trace_id;
      queued.span_id = tracer_->NewTraceId();
      queued.parent_id = root_span_id;
      queued.name = "queued";
      queued.start_ns = job.submit_ns;
      queued.duration_ns = tracer_->NowNs() - job.submit_ns;
      queued.tid = obs::Tracer::ThreadIndex();
      tracer_->Record(std::move(queued));
    }
    lock.unlock();
    double run_seconds = 0.0;
    uint64_t run_span_id = 0;
    int64_t run_start_ns = 0;
    StatusOr<core::SheddingResult> outcome =
        Status::Internal("job never executed");
    {
      // While this RAII span is alive it is the worker's ambient span, so
      // GraphStore's `store.load` (and anything else traced inside Execute)
      // nests under it.
      obs::Span run_span =
          obs::Tracer::StartSpanInTrace(tracer_, "run", trace_id, root_span_id);
      run_span.Annotate("dataset", spec.dataset);
      run_span.Annotate("method", spec.method);
      run_span.Annotate("p", StrFormat("%g", spec.p));
      run_span_id = run_span.span_id();
      run_start_ns = tracer_ != nullptr ? tracer_->NowNs() : 0;
      outcome = Execute(spec, token.get(), &run_seconds);
      run_span.Annotate("ok", outcome.ok() ? "true" : "false");
    }
    lock.lock();
    job.run_seconds = run_seconds;
    job.run_span_id = run_span_id;
    job.run_start_ns = run_start_ns;
    job.token.reset();
    const bool kernel_deadline =
        !outcome.ok() &&
        outcome.status().code() == StatusCode::kDeadlineExceeded;
    const bool kernel_cancelled =
        !outcome.ok() &&
        (outcome.status().code() == StatusCode::kCancelled || kernel_deadline);
    if (job.cancel_requested || kernel_cancelled) {
      if (job.cancel_requested &&
          instruments_.cancelled_while_running != nullptr) {
        instruments_.cancelled_while_running->Increment();
      }
      if (kernel_deadline && instruments_.deadline_expired != nullptr) {
        instruments_.deadline_expired->Increment();
      }
      // A caller Cancel beats the kernel's own deadline report; otherwise
      // surface exactly what the kernel returned.
      Status why = job.cancel_requested
                       ? Status::Cancelled("cancelled while running")
                       : outcome.status();
      FinishLocked(job, JobState::kCancelled, std::move(why), nullptr);
    } else if (!outcome.ok()) {
      FinishLocked(job, JobState::kFailed, outcome.status(), nullptr);
    } else {
      FinishLocked(job, JobState::kDone, Status::OK(),
                   std::make_shared<const core::SheddingResult>(
                       std::move(outcome).value()));
    }
  }
}

StatusOr<core::SheddingResult> JobScheduler::Execute(
    const JobSpec& spec, const CancellationToken* cancel,
    double* run_seconds) {
  Stopwatch watch;
  // The graph load itself is not interruptible (it may be shared with other
  // jobs via the store); check before and after instead.
  if (CancellationRequested(cancel)) {
    *run_seconds = watch.ElapsedSeconds();
    return cancel->ToStatus();
  }
  uint64_t generation = 0;
  auto graph = store_->Get(spec.dataset, &generation);
  if (!graph.ok()) {
    *run_seconds = watch.ElapsedSeconds();
    return graph.status();
  }
  auto shedder = core::MakeShedderByName(spec.method, spec.seed);
  if (!shedder.ok()) {
    *run_seconds = watch.ElapsedSeconds();
    return shedder.status();
  }
  core::ShedOptions shed_options;
  shed_options.p = spec.p;
  shed_options.cancel = cancel;
  shed_options.seed = spec.seed;
  if (rank_cache_ != nullptr) {
    // Route the shedder's Phase-1 ranking through the cross-job cache,
    // keyed by the generation observed with the graph lease above so a
    // ranking is never paired with a replaced dataset. Methods that do not
    // rank by betweenness simply never invoke the provider.
    RankCache* cache = rank_cache_.get();
    const std::string dataset = spec.dataset;
    shed_options.rank_provider =
        [cache, dataset, generation](
            const graph::Graph& g,
            const analytics::BetweennessOptions& betweenness) {
          return cache->GetOrCompute(dataset, generation, g, betweenness);
        };
  }
  StatusOr<core::SheddingResult> result =
      (*shedder)->Shed(**graph, shed_options);
  if (result.ok() && !spec.output_path.empty()) {
    // Materialize G' and snapshot it for out-of-band consumers (the shed-
    // fleet coordinator reads per-shard kept subgraphs this way). The write
    // is part of the job: a caller that asked for a snapshot must not see
    // kDone without one existing on disk.
    Stopwatch write_watch;
    graph::Graph reduced = result->BuildReducedGraph(**graph);
    if (Status saved = graph::SaveBinaryGraph(reduced, spec.output_path);
        !saved.ok()) {
      *run_seconds = watch.ElapsedSeconds();
      return saved;
    }
    result->stats.emplace_back("output_write_seconds",
                               write_watch.ElapsedSeconds());
  }
  *run_seconds = watch.ElapsedSeconds();
  return result;
}

void JobScheduler::FinishLocked(Job& job, JobState state, Status status,
                                JobResult result) {
  const auto now = Clock::now();
  job.state = state;
  job.status = std::move(status);
  job.result = result;
  if (job.queue_seconds == 0.0) {
    job.queue_seconds = SecondsBetween(job.submit_time, now);
  }
  // A cancelled primary must not drag its coalesced followers down with it:
  // they asked for the same result, not for this job's fate. Promote the
  // first still-live follower to primary and re-queue it; the remaining
  // live followers ride along with the promoted job. (Not during shutdown,
  // where everything is being cancelled anyway.)
  if (state == JobState::kCancelled && !shutdown_ && !job.followers.empty()) {
    JobId promoted_id = 0;
    size_t promoted_index = 0;
    for (size_t i = 0; i < job.followers.size(); ++i) {
      auto it = jobs_.find(job.followers[i]);
      if (it != jobs_.end() && !IsTerminal(it->second.state)) {
        promoted_id = job.followers[i];
        promoted_index = i;
        break;
      }
    }
    if (promoted_id != 0) {
      Job& promoted = jobs_.at(promoted_id);
      promoted.primary = 0;
      promoted.deduplicated = false;
      for (size_t i = promoted_index + 1; i < job.followers.size(); ++i) {
        auto it = jobs_.find(job.followers[i]);
        if (it == jobs_.end() || IsTerminal(it->second.state)) continue;
        it->second.primary = promoted_id;
        promoted.followers.push_back(job.followers[i]);
      }
      job.followers.clear();
      inflight_[job.cache_key] = promoted_id;
      queue_.push_back(promoted_id);
      ++live_queued_;
      PublishQueueDepthLocked();
      if (instruments_.follower_promoted != nullptr) {
        instruments_.follower_promoted->Increment();
      }
      work_available_.notify_one();
    }
  }
  if (!job.cache_key.empty()) {
    auto inflight = inflight_.find(job.cache_key);
    if (inflight != inflight_.end() && inflight->second == job.id) {
      inflight_.erase(inflight);
    }
  }
  if (state == JobState::kDone && options_.enable_result_cache) {
    InsertResultCacheLocked(job.cache_key, result);
  }
  CountTerminalLocked(state);
  if (instruments_.queue_seconds != nullptr) {
    instruments_.queue_seconds->Record(job.queue_seconds);
    if (job.run_seconds > 0.0) {
      instruments_.run_seconds->Record(job.run_seconds);
    }
  }
  if (metrics_ != nullptr && state == JobState::kDone && result != nullptr) {
    // Publish per-phase shedding timings (phase1_seconds/phase2_seconds
    // and any other *_seconds counter the shedder reports) as latency
    // series. Done here — on the executing job only — so coalesced
    // followers sharing this result do not double-count the work. The stat
    // set varies by shedder, so these go through the string-keyed shim.
    constexpr std::string_view kSecondsSuffix = "_seconds";
    for (const auto& [key, value] : result->stats) {
      if (key.size() > kSecondsSuffix.size() &&
          key.compare(key.size() - kSecondsSuffix.size(),
                      kSecondsSuffix.size(), kSecondsSuffix) == 0) {
        metrics_->RecordLatency("scheduler." + key, value);
      }
    }
  }
  EmitJobTraceLocked(job, state, result);
  RecordTerminalLocked(job, now);
  for (JobId follower_id : job.followers) {
    auto follower_it = jobs_.find(follower_id);
    if (follower_it == jobs_.end()) continue;  // already retired by GC
    Job& follower = follower_it->second;
    if (IsTerminal(follower.state)) continue;  // cancelled individually
    follower.state = state;
    follower.status = job.status;
    follower.result = result;
    follower.queue_seconds = SecondsBetween(follower.submit_time, now);
    EmitJobTraceLocked(follower, state, nullptr);
    RecordTerminalLocked(follower, now);
    CountTerminalLocked(state);
  }
  job.followers.clear();
  GcRetainedJobsLocked(now);
  job_terminal_.notify_all();
}

void JobScheduler::CountTerminalLocked(JobState state) {
  obs::Counter* counter = nullptr;
  switch (state) {
    case JobState::kDone:
      counter = instruments_.jobs_done;
      break;
    case JobState::kFailed:
      counter = instruments_.jobs_failed;
      break;
    case JobState::kCancelled:
      counter = instruments_.jobs_cancelled;
      break;
    default:
      break;
  }
  if (counter != nullptr) counter->Increment();
}

void JobScheduler::EmitJobTraceLocked(const Job& job, JobState state,
                                      const JobResult& result) {
  if (tracer_ == nullptr || job.trace_id == 0) return;
  const int64_t now_ns = tracer_->NowNs();
  // Per-phase children: the kernels report phase durations as stats rather
  // than scopes (core/ stays free of obs dependencies), so lay the
  // `phase<N>_seconds` stats out sequentially from the run start. Other
  // `*_seconds` stats were already exported as latency series above.
  if (result != nullptr && job.run_span_id != 0) {
    int64_t cursor_ns = job.run_start_ns;
    for (const auto& [key, value] : result->stats) {
      if (key.size() < 8 || key.compare(0, 5, "phase") != 0) continue;
      const size_t digits = key.find_first_not_of("0123456789", 5);
      if (digits == 5 || digits == std::string::npos ||
          key.compare(digits, std::string::npos, "_seconds") != 0) {
        continue;
      }
      obs::SpanRecord phase;
      phase.trace_id = job.trace_id;
      phase.span_id = tracer_->NewTraceId();
      phase.parent_id = job.run_span_id;
      phase.name = key.substr(0, digits);
      phase.start_ns = cursor_ns;
      phase.duration_ns = static_cast<int64_t>(value * 1e9);
      phase.tid = obs::Tracer::ThreadIndex();
      cursor_ns += phase.duration_ns;
      tracer_->Record(std::move(phase));
    }
  }
  obs::SpanRecord root;
  root.trace_id = job.trace_id;
  root.span_id = job.root_span_id;
  root.parent_id = 0;
  root.name = "job";
  root.start_ns = job.submit_ns;
  root.duration_ns = now_ns - job.submit_ns;
  root.tid = obs::Tracer::ThreadIndex();
  root.annotations.emplace_back(
      "id", StrFormat("%llu", static_cast<unsigned long long>(job.id)));
  root.annotations.emplace_back("dataset", job.spec.dataset);
  root.annotations.emplace_back("method", job.spec.method);
  root.annotations.emplace_back("p", StrFormat("%g", job.spec.p));
  root.annotations.emplace_back("state",
                                std::string(JobStateToString(state)));
  root.annotations.emplace_back("deduplicated",
                                job.deduplicated ? "true" : "false");
  tracer_->Record(std::move(root));
}

void JobScheduler::RecordTerminalLocked(Job& job, Clock::time_point now) {
  job.finish_time = now;
  terminal_order_.push_back(job.id);
}

void JobScheduler::GcRetainedJobsLocked(Clock::time_point now) {
  // Scan from the oldest finish; each record is visited at most once per
  // call, so a run of pinned (waited-on) jobs cannot spin this loop.
  const size_t scan_limit = terminal_order_.size();
  for (size_t scanned = 0;
       scanned < scan_limit && !terminal_order_.empty(); ++scanned) {
    const JobId id = terminal_order_.front();
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {  // stale entry (shouldn't happen; be safe)
      terminal_order_.pop_front();
      continue;
    }
    Job& job = it->second;
    const bool over_count = terminal_order_.size() > options_.max_retained_jobs;
    const bool expired = options_.job_retention.count() > 0 &&
                         now - job.finish_time >= options_.job_retention;
    if (!over_count && !expired) break;  // front is oldest: rest are newer
    terminal_order_.pop_front();
    if (job.waiters > 0) {
      // A Wait() holds a reference into the map; requeue and retry later.
      terminal_order_.push_back(id);
      continue;
    }
    jobs_.erase(it);
    if (instruments_.jobs_gc != nullptr) instruments_.jobs_gc->Increment();
  }
  if (instruments_.jobs_tracked != nullptr) {
    instruments_.jobs_tracked->Set(static_cast<int64_t>(jobs_.size()));
  }
}

uint64_t JobScheduler::ApproxResultBytes(const core::SheddingResult& result) {
  uint64_t bytes = sizeof(core::SheddingResult);
  bytes += result.kept_edges.capacity() * sizeof(graph::EdgeId);
  for (const auto& [key, value] : result.stats) {
    (void)value;
    bytes += key.capacity() + sizeof(double) + 2 * sizeof(void*);
  }
  return bytes;
}

void JobScheduler::InsertResultCacheLocked(const std::string& key,
                                           const JobResult& result) {
  auto existing = result_cache_.find(key);
  if (existing != result_cache_.end()) {
    cache_bytes_ -= existing->second.bytes;
    cache_lru_.erase(existing->second.lru_pos);
    result_cache_.erase(existing);
  }
  cache_lru_.push_front(key);
  CacheEntry entry{result, ApproxResultBytes(*result), cache_lru_.begin()};
  cache_bytes_ += entry.bytes;
  result_cache_.emplace(key, std::move(entry));
  // Evict least-recently-used entries past the budget — but never the entry
  // just inserted, so an oversized single result still gets cached once.
  while (cache_bytes_ > options_.result_cache_byte_budget &&
         cache_lru_.size() > 1) {
    auto victim = result_cache_.find(cache_lru_.back());
    cache_bytes_ -= victim->second.bytes;
    result_cache_.erase(victim);
    cache_lru_.pop_back();
    if (instruments_.result_cache_evicted != nullptr) {
      instruments_.result_cache_evicted->Increment();
    }
  }
  if (instruments_.result_cache_bytes != nullptr) {
    instruments_.result_cache_bytes->Set(static_cast<int64_t>(cache_bytes_));
  }
}

void JobScheduler::PublishQueueDepthLocked() {
  if (instruments_.queue_depth != nullptr) {
    instruments_.queue_depth->Set(static_cast<int64_t>(live_queued_));
  }
}

}  // namespace edgeshed::service
