#include "service/job_scheduler.h"

#include <algorithm>
#include <utility>

#include "common/parallel_for.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/shedder_factory.h"
#include "graph/binary_io.h"

namespace edgeshed::service {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

/// The stateful incremental re-shed method (dyn::ShedSession), dispatched
/// by the scheduler itself rather than core::MakeShedderByName. Not on the
/// degradation cost ladder: degrading a stateful session to a stateless
/// method would silently discard its incremental state.
constexpr std::string_view kIncrementalMethod = "crr-inc";

}  // namespace

std::string_view JobStateToString(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

JobScheduler::JobScheduler(GraphStore* store, MetricsRegistry* metrics,
                           JobSchedulerOptions options, obs::Tracer* tracer)
    : store_(store), metrics_(metrics), tracer_(tracer), options_(options) {
  if (metrics_ != nullptr) {
    // Resolve every fixed-name instrument once; per-event updates through
    // these handles are lock-free and never touch the registry map again.
    instruments_.submitted = metrics_->GetCounter("scheduler.submitted");
    instruments_.result_cache_hit =
        metrics_->GetCounter("scheduler.result_cache_hit");
    instruments_.coalesced = metrics_->GetCounter("scheduler.coalesced");
    instruments_.rejected_queue_full =
        metrics_->GetCounter("scheduler.rejected_queue_full");
    instruments_.jobs_done = metrics_->GetCounter("scheduler.jobs_done");
    instruments_.jobs_failed = metrics_->GetCounter("scheduler.jobs_failed");
    instruments_.jobs_cancelled =
        metrics_->GetCounter("scheduler.jobs_cancelled");
    instruments_.deadline_expired =
        metrics_->GetCounter("scheduler.deadline_expired");
    instruments_.cancelled_while_running =
        metrics_->GetCounter("scheduler.cancelled_while_running");
    instruments_.follower_promoted =
        metrics_->GetCounter("scheduler.follower_promoted");
    instruments_.jobs_gc = metrics_->GetCounter("scheduler.jobs_gc");
    instruments_.result_cache_evicted =
        metrics_->GetCounter("scheduler.result_cache_evicted");
    instruments_.degraded_tier =
        metrics_->GetCounter("scheduler.degraded_tier");
    instruments_.degraded_cached_p =
        metrics_->GetCounter("scheduler.degraded_cached_p");
    instruments_.priority_boosted =
        metrics_->GetCounter("scheduler.priority_boosted");
    instruments_.workers = metrics_->GetGauge("scheduler.workers");
    instruments_.queue_depth = metrics_->GetGauge("scheduler.queue_depth");
    instruments_.jobs_tracked = metrics_->GetGauge("scheduler.jobs_tracked");
    instruments_.result_cache_bytes =
        metrics_->GetGauge("scheduler.result_cache_bytes");
    instruments_.queue_seconds =
        metrics_->GetLatency("scheduler.queue_seconds");
    instruments_.run_seconds = metrics_->GetLatency("scheduler.run_seconds");
  }
  if (options_.enable_rank_cache) {
    RankCacheOptions rank_options;
    rank_options.byte_budget = options_.rank_cache_byte_budget;
    rank_cache_ =
        std::make_unique<RankCache>(rank_options, metrics_, tracer_);
  }
  int workers = options_.workers > 0 ? options_.workers : DefaultThreadCount();
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (instruments_.workers != nullptr) {
    instruments_.workers->Set(workers);
    instruments_.queue_depth->Set(0);
  }
}

JobScheduler::~JobScheduler() { Shutdown(); }

std::string JobScheduler::CacheKey(const JobSpec& spec, uint64_t generation) {
  // %a renders the exact bits of p, so 0.1 and 0.1000000001 never collide.
  // The dataset generation (bumped by GraphStore::Replace) is part of the
  // key so a replaced dataset can never serve results computed against its
  // predecessor from the result cache, nor coalesce onto its jobs.
  //
  // Dedup-key audit vs. the wire's ShedRequest fields (every field a client
  // retry resends must either be in the key or provably result-neutral):
  //   dataset, method, p, seed, output -> in the key;
  //   tenant -> in the key (QoS isolation: no cross-tenant coalescing or
  //     cache sharing);
  //   deadline_ms -> excluded: the result is deadline-independent, and a
  //     retry coalescing onto the original submission is exactly the
  //     double-submit protection this key exists for;
  //   wait -> excluded: client-side delivery mode only;
  //   priority -> excluded: lane choice, result-independent — a priority
  //     duplicate boosts the queued primary instead of forking the work.
  return StrFormat("%s|g%llu|%s|%a|%llu|%s|%s", spec.dataset.c_str(),
                   static_cast<unsigned long long>(generation),
                   spec.method.c_str(), spec.p,
                   static_cast<unsigned long long>(spec.seed),
                   spec.output_path.c_str(), spec.tenant.c_str());
}

std::string JobScheduler::FamilyKey(const JobSpec& spec, uint64_t generation) {
  return StrFormat("%s|g%llu|%s|%llu|%s|%s", spec.dataset.c_str(),
                   static_cast<unsigned long long>(generation),
                   spec.method.c_str(),
                   static_cast<unsigned long long>(spec.seed),
                   spec.output_path.c_str(), spec.tenant.c_str());
}

JobScheduler::TenantQueue& JobScheduler::TenantLocked(
    const std::string& name) {
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return it->second;
  TenantQueue tq;
  TenantConfig config = options_.default_tenant;
  auto configured = options_.tenants.find(name);
  if (configured != options_.tenants.end()) config = configured->second;
  tq.weight = std::max<uint32_t>(1, config.weight);
  tq.max_running = config.max_running;
  if (metrics_ != nullptr) {
    // Per-tenant series are dynamic by nature; resolve the handles once at
    // tenant creation so per-event updates stay lock-free.
    const std::string label = name.empty() ? "default" : name;
    tq.submitted =
        metrics_->GetCounter("scheduler.tenant_submitted." + label);
    tq.done = metrics_->GetCounter("scheduler.tenant_done." + label);
    tq.rejected =
        metrics_->GetCounter("scheduler.tenant_rejected." + label);
    tq.queued_gauge =
        metrics_->GetGauge("scheduler.tenant_queued." + label);
    tq.running_gauge =
        metrics_->GetGauge("scheduler.tenant_running." + label);
  }
  auto [inserted, ok] = tenants_.emplace(name, std::move(tq));
  tenant_ring_.push_back(name);
  return inserted->second;
}

void JobScheduler::PruneLaneFrontLocked(TenantQueue& tq, int lane) {
  std::deque<JobId>& q = tq.lanes[lane];
  while (!q.empty()) {
    auto it = jobs_.find(q.front());
    if (it == jobs_.end()) {  // record already retired by retention GC
      q.pop_front();
      continue;
    }
    const Job& job = it->second;
    // Stale entries: terminal (cancelled while queued), already dispatched,
    // coalesced onto a primary, or re-laned by a priority boost (the live
    // entry is in job.lane; this one is the leftover).
    if (job.state != JobState::kQueued || job.primary != 0 ||
        job.lane != lane) {
      q.pop_front();
      continue;
    }
    break;
  }
}

bool JobScheduler::HasDispatchableLocked() {
  for (int lane = 0; lane < kNumLanes; ++lane) {
    for (const std::string& name : tenant_ring_) {
      TenantQueue& tq = tenants_.at(name);
      PruneLaneFrontLocked(tq, lane);
      if (!tq.lanes[lane].empty() && UnderQuota(tq)) return true;
    }
  }
  return false;
}

JobId JobScheduler::PopDispatchableLocked(TenantQueue** out_tenant) {
  for (int lane = 0; lane < kNumLanes; ++lane) {
    // Two rounds: one with existing credit, one after a replenish. Weights
    // are >= 1, so every eligible tenant can afford a slot after one
    // replenish — the second round always pops if anyone is eligible.
    for (int round = 0; round < 2; ++round) {
      bool any_eligible = false;
      const size_t ring_size = tenant_ring_.size();
      for (size_t i = 0; i < ring_size; ++i) {
        const size_t idx = (ring_pos_ + i) % ring_size;
        TenantQueue& tq = tenants_.at(tenant_ring_[idx]);
        PruneLaneFrontLocked(tq, lane);
        if (tq.lanes[lane].empty() || !UnderQuota(tq)) continue;
        any_eligible = true;
        if (tq.credit < 1.0) continue;
        tq.credit -= 1.0;
        const JobId id = tq.lanes[lane].front();
        tq.lanes[lane].pop_front();
        // Advance past this tenant so equal-credit tenants interleave
        // instead of the lowest ring index winning every scan.
        ring_pos_ = (idx + 1) % ring_size;
        *out_tenant = &tq;
        return id;
      }
      if (!any_eligible) break;  // this lane has nothing dispatchable
      for (const std::string& name : tenant_ring_) {
        TenantQueue& tq = tenants_.at(name);
        if (!tq.lanes[lane].empty() && UnderQuota(tq)) {
          // Cap the balance at one full quantum above a slot so a tenant
          // alone on the system does not bank unbounded credit to spend
          // the moment a competitor shows up.
          tq.credit = std::min(tq.credit + tq.weight,
                               static_cast<double>(tq.weight) + 1.0);
        }
      }
    }
  }
  return 0;
}

StatusOr<JobId> JobScheduler::Submit(const JobSpec& spec) {
  EDGESHED_RETURN_IF_ERROR(core::ValidatePreservationRatio(spec.p));
  if (spec.dataset.empty()) {
    return Status::InvalidArgument("job spec needs a dataset name");
  }
  const auto known = core::KnownShedderNames();
  if (spec.method != kIncrementalMethod &&
      std::find(known.begin(), known.end(), spec.method) == known.end()) {
    return Status::InvalidArgument(
        StrFormat("unknown shedding method '%s'", spec.method.c_str()));
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    return Status::FailedPrecondition("scheduler is shut down");
  }
  const auto now = Clock::now();
  TenantQueue& tenant = TenantLocked(spec.tenant);
  Job job;
  job.id = next_id_;
  job.spec = spec;
  job.requested_method = spec.method;
  job.applied_p = spec.p;
  job.lane = spec.priority ? kPriorityLane : kNormalLane;
  job.submit_time = now;
  job.deadline = spec.deadline.count() > 0 ? now + spec.deadline
                                           : Clock::time_point::max();
  if (tracer_ != nullptr) {
    job.trace_id = tracer_->NewTraceId();
    job.root_span_id = tracer_->NewTraceId();
    job.submit_ns = tracer_->NowNs();
  }

  const uint64_t generation = store_->Generation(spec.dataset);
  // Degradation first: it may rewrite job.spec.method (and therefore the
  // dedup key) or hand back a cached coarser-p result to serve outright.
  JobResult coarser = MaybeDegradeLocked(job, generation);
  job.cache_key = CacheKey(job.spec, generation);
  job.family_key = FamilyKey(job.spec, generation);

  if (tenant.submitted != nullptr) tenant.submitted->Increment();

  if (coarser != nullptr) {
    job.state = JobState::kDone;
    job.result = std::move(coarser);
    job.deduplicated = true;
    if (instruments_.submitted != nullptr) {
      instruments_.submitted->Increment();
      instruments_.result_cache_hit->Increment();
      instruments_.jobs_done->Increment();
    }
    if (tenant.done != nullptr) tenant.done->Increment();
    const JobId id = next_id_++;
    job.id = id;
    auto [it, inserted] = jobs_.emplace(id, std::move(job));
    EmitJobTraceLocked(it->second, JobState::kDone, it->second.result);
    RecordTerminalLocked(it->second, now);
    GcRetainedJobsLocked(now);
    return id;
  }

  if (options_.enable_result_cache) {
    auto cached = result_cache_.find(job.cache_key);
    if (cached != result_cache_.end()) {
      cache_lru_.splice(cache_lru_.begin(), cache_lru_,
                        cached->second.lru_pos);
      job.state = JobState::kDone;
      job.result = cached->second.result;
      job.deduplicated = true;
      if (instruments_.submitted != nullptr) {
        instruments_.submitted->Increment();
        instruments_.result_cache_hit->Increment();
        instruments_.jobs_done->Increment();
      }
      if (tenant.done != nullptr) tenant.done->Increment();
      const JobId id = next_id_++;
      job.id = id;
      auto [it, inserted] = jobs_.emplace(id, std::move(job));
      EmitJobTraceLocked(it->second, JobState::kDone, it->second.result);
      RecordTerminalLocked(it->second, now);
      GcRetainedJobsLocked(now);
      return id;
    }
  }

  auto inflight = inflight_.find(job.cache_key);
  if (inflight != inflight_.end()) {
    // An identical job is queued or running: ride along instead of doing the
    // same work twice. The follower shares the primary's outcome. A
    // priority follower boosts a still-queued normal-lane primary into the
    // priority lane (re-pushed there; the old entry is pruned on pop), so
    // priority semantics survive dedup.
    job.primary = inflight->second;
    job.deduplicated = true;
    const JobId id = next_id_++;
    Job& primary = jobs_.at(job.primary);
    primary.followers.push_back(id);
    if (spec.priority && primary.state == JobState::kQueued &&
        primary.primary == 0 && primary.lane == kNormalLane) {
      primary.lane = kPriorityLane;
      TenantLocked(primary.spec.tenant)
          .lanes[kPriorityLane]
          .push_back(primary.id);
      if (instruments_.priority_boosted != nullptr) {
        instruments_.priority_boosted->Increment();
      }
      work_available_.notify_one();
    }
    jobs_.emplace(id, std::move(job));
    if (instruments_.submitted != nullptr) {
      instruments_.submitted->Increment();
      instruments_.coalesced->Increment();
    }
    return id;
  }

  if (live_queued_ >= options_.queue_capacity) {
    if (instruments_.rejected_queue_full != nullptr) {
      instruments_.rejected_queue_full->Increment();
    }
    if (tenant.rejected != nullptr) tenant.rejected->Increment();
    return Status::ResourceExhausted(
        StrFormat("submission queue is full (%zu jobs)",
                  options_.queue_capacity));
  }

  const JobId id = next_id_++;
  job.id = id;
  const int lane = job.lane;
  inflight_[job.cache_key] = id;
  jobs_.emplace(id, std::move(job));
  tenant.lanes[lane].push_back(id);
  ++tenant.queued;
  ++live_queued_;
  PublishQueueDepthLocked();
  PublishTenantGaugesLocked(tenant);
  if (instruments_.submitted != nullptr) instruments_.submitted->Increment();
  GcRetainedJobsLocked(now);
  work_available_.notify_one();
  return id;
}

JobResult JobScheduler::MaybeDegradeLocked(Job& job, uint64_t generation) {
  const DegradePolicy& policy = options_.degrade;
  if (!policy.enabled || !job.spec.allow_degrade) return nullptr;
  const double queue_fraction =
      options_.queue_capacity == 0
          ? 0.0
          : static_cast<double>(live_queued_) /
                static_cast<double>(options_.queue_capacity);
  const double pressure = std::max(job.spec.pressure, queue_fraction);
  int steps = 0;
  if (pressure >= policy.tier3_pressure) {
    steps = 3;
  } else if (pressure >= policy.tier2_pressure) {
    steps = 2;
  } else if (pressure >= policy.tier1_pressure) {
    steps = 1;
  }
  if (steps == 0) return nullptr;

  if (options_.enable_result_cache) {
    // A cached exact answer for the requested spec beats any degradation —
    // let the normal cache-hit path serve it.
    if (result_cache_.count(CacheKey(job.spec, generation)) > 0) {
      return nullptr;
    }
    if (policy.serve_cached_coarser_p) {
      // Next best: an already-computed result for the *requested* method at
      // a coarser p' < p (within the policy gap). Costs nothing and keeps
      // the method the caller asked for.
      auto family = cache_families_.find(FamilyKey(job.spec, generation));
      if (family != cache_families_.end() && !family->second.empty()) {
        auto candidate = family->second.lower_bound(job.spec.p);
        if (candidate != family->second.begin()) {
          --candidate;  // largest cached p' strictly below the requested p
          if (job.spec.p - candidate->first <= policy.max_p_gap) {
            auto entry = result_cache_.find(candidate->second);
            if (entry != result_cache_.end()) {
              cache_lru_.splice(cache_lru_.begin(), cache_lru_,
                                entry->second.lru_pos);
              job.applied_p = candidate->first;
              job.degrade_kind =
                  static_cast<uint8_t>(DegradeKind::kCachedCoarserP);
              if (instruments_.degraded_cached_p != nullptr) {
                instruments_.degraded_cached_p->Increment();
              }
              return entry->second.result;
            }
          }
        }
      }
    }
  }

  const std::string applied =
      core::DegradeShedderMethod(job.spec.method, steps);
  if (applied != job.spec.method) {
    job.spec.method = applied;
    job.degrade_kind = static_cast<uint8_t>(DegradeKind::kCheaperTier);
    if (instruments_.degraded_tier != nullptr) {
      instruments_.degraded_tier->Increment();
    }
  }
  return nullptr;
}

StatusOr<JobResult> JobScheduler::Wait(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound(StrFormat(
        "unknown job id %llu", static_cast<unsigned long long>(id)));
  }
  Job& job = it->second;
  // Pin the record against retention GC while blocked: the map node (and
  // this reference) must stay valid across the wait.
  ++job.waiters;
  job_terminal_.wait(lock, [&job] { return IsTerminal(job.state); });
  --job.waiters;
  if (job.state == JobState::kDone) return job.result;
  return job.status;
}

Status JobScheduler::Cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound(StrFormat(
        "unknown job id %llu", static_cast<unsigned long long>(id)));
  }
  Job& job = it->second;
  if (IsTerminal(job.state)) {
    return Status::FailedPrecondition(
        StrFormat("job %llu is already %s",
                  static_cast<unsigned long long>(id),
                  std::string(JobStateToString(job.state)).c_str()));
  }
  job.cancel_requested = true;
  if (job.state == JobState::kQueued) {
    // Queued (or coalesced) jobs cancel immediately; their id stays in its
    // tenant lane and is pruned by the dispatcher that reaches it.
    if (job.primary == 0) {
      --live_queued_;
      TenantQueue& tenant = TenantLocked(job.spec.tenant);
      if (tenant.queued > 0) --tenant.queued;
      PublishQueueDepthLocked();
      PublishTenantGaugesLocked(tenant);
    }
    FinishLocked(job, JobState::kCancelled,
                 Status::Cancelled("cancelled by caller"), nullptr);
  } else if (job.state == JobState::kRunning && job.token != nullptr) {
    // Trip the running kernel's token: the reduction aborts at its next
    // cooperative poll instead of running to completion.
    job.token->Cancel();
  }
  return Status::OK();
}

StatusOr<JobStatus> JobScheduler::GetStatus(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound(StrFormat(
        "unknown job id %llu", static_cast<unsigned long long>(id)));
  }
  const Job& job = it->second;
  JobStatus status;
  status.id = job.id;
  status.state = job.state;
  status.status = job.status;
  status.deduplicated = job.deduplicated;
  status.queue_seconds = job.queue_seconds;
  status.run_seconds = job.run_seconds;
  status.tenant = job.spec.tenant;
  status.requested_method = job.requested_method;
  status.applied_method = job.spec.method;
  status.requested_p = job.spec.p;
  status.applied_p = job.applied_p;
  status.degrade_kind = job.degrade_kind;
  return status;
}

size_t JobScheduler::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_queued_;
}

size_t JobScheduler::TrackedJobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return jobs_.size();
}

void JobScheduler::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    for (auto& [name, tenant] : tenants_) {
      for (int lane = 0; lane < kNumLanes; ++lane) {
        for (JobId id : tenant.lanes[lane]) {
          auto it = jobs_.find(id);
          if (it == jobs_.end()) continue;  // cancelled entry already GC'd
          Job& job = it->second;
          if (IsTerminal(job.state)) continue;
          FinishLocked(job, JobState::kCancelled,
                       Status::Cancelled("scheduler shutdown"), nullptr);
        }
        tenant.lanes[lane].clear();
      }
      tenant.queued = 0;
      PublishTenantGaugesLocked(tenant);
    }
    live_queued_ = 0;
    PublishQueueDepthLocked();
    work_available_.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void JobScheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_available_.wait(lock,
                         [&] { return shutdown_ || HasDispatchableLocked(); });
    if (shutdown_) return;
    TenantQueue* tenant = nullptr;
    const JobId id = PopDispatchableLocked(&tenant);
    if (id == 0) continue;  // raced another worker for the last job
    // PopDispatchableLocked only returns live kQueued primaries.
    Job& job = jobs_.at(id);  // map nodes are stable across the unlock below
    --live_queued_;
    if (tenant->queued > 0) --tenant->queued;
    if (tenant->queued == 0) {
      // Classic DRR: an emptied queue forfeits its deficit, so an idle
      // tenant cannot bank credit while nobody competes with it.
      tenant->credit = 0.0;
    }
    PublishQueueDepthLocked();
    const auto picked_up = Clock::now();
    job.queue_seconds = SecondsBetween(job.submit_time, picked_up);
    if (job.cancel_requested) {
      FinishLocked(job, JobState::kCancelled,
                   Status::Cancelled("cancelled by caller"), nullptr);
      continue;
    }
    if (picked_up > job.deadline) {
      if (instruments_.deadline_expired != nullptr) {
        instruments_.deadline_expired->Increment();
      }
      FinishLocked(job, JobState::kCancelled,
                   Status::DeadlineExceeded(
                       "deadline passed before the job was dispatched"),
                   nullptr);
      continue;
    }
    job.state = JobState::kRunning;
    ++tenant->running;
    PublishTenantGaugesLocked(*tenant);
    // Arm the cooperative token with the job's deadline; Cancel() trips it.
    // Shared with this worker so a concurrent GC/erase can never leave the
    // kernel polling freed memory.
    job.token = std::make_shared<CancellationToken>(job.deadline);
    const std::shared_ptr<CancellationToken> token = job.token;
    const JobSpec spec = job.spec;  // worker's copy; run with no lock held
    const uint64_t trace_id = job.trace_id;
    const uint64_t root_span_id = job.root_span_id;
    if (tracer_ != nullptr) {
      // The queue wait was observed as two timestamps, not a scope; commit
      // it as a synthesized span now that it is over.
      obs::SpanRecord queued;
      queued.trace_id = trace_id;
      queued.span_id = tracer_->NewTraceId();
      queued.parent_id = root_span_id;
      queued.name = "queued";
      queued.start_ns = job.submit_ns;
      queued.duration_ns = tracer_->NowNs() - job.submit_ns;
      queued.tid = obs::Tracer::ThreadIndex();
      tracer_->Record(std::move(queued));
    }
    lock.unlock();
    double run_seconds = 0.0;
    uint64_t run_span_id = 0;
    int64_t run_start_ns = 0;
    StatusOr<core::SheddingResult> outcome =
        Status::Internal("job never executed");
    {
      // While this RAII span is alive it is the worker's ambient span, so
      // GraphStore's `store.load` (and anything else traced inside Execute)
      // nests under it.
      obs::Span run_span =
          obs::Tracer::StartSpanInTrace(tracer_, "run", trace_id, root_span_id);
      run_span.Annotate("dataset", spec.dataset);
      run_span.Annotate("method", spec.method);
      run_span.Annotate("p", StrFormat("%g", spec.p));
      run_span_id = run_span.span_id();
      run_start_ns = tracer_ != nullptr ? tracer_->NowNs() : 0;
      outcome = Execute(spec, token.get(), &run_seconds);
      run_span.Annotate("ok", outcome.ok() ? "true" : "false");
    }
    lock.lock();
    if (tenant->running > 0) --tenant->running;
    PublishTenantGaugesLocked(*tenant);
    if (tenant->max_running != 0) {
      // A quota slot opened up; another worker may now be able to dispatch
      // this tenant's queued work even though no new job arrived.
      work_available_.notify_one();
    }
    job.run_seconds = run_seconds;
    job.run_span_id = run_span_id;
    job.run_start_ns = run_start_ns;
    job.token.reset();
    const bool kernel_deadline =
        !outcome.ok() &&
        outcome.status().code() == StatusCode::kDeadlineExceeded;
    const bool kernel_cancelled =
        !outcome.ok() &&
        (outcome.status().code() == StatusCode::kCancelled || kernel_deadline);
    if (job.cancel_requested || kernel_cancelled) {
      if (job.cancel_requested &&
          instruments_.cancelled_while_running != nullptr) {
        instruments_.cancelled_while_running->Increment();
      }
      if (kernel_deadline && instruments_.deadline_expired != nullptr) {
        instruments_.deadline_expired->Increment();
      }
      // A caller Cancel beats the kernel's own deadline report; otherwise
      // surface exactly what the kernel returned.
      Status why = job.cancel_requested
                       ? Status::Cancelled("cancelled while running")
                       : outcome.status();
      FinishLocked(job, JobState::kCancelled, std::move(why), nullptr);
    } else if (!outcome.ok()) {
      FinishLocked(job, JobState::kFailed, outcome.status(), nullptr);
    } else {
      FinishLocked(job, JobState::kDone, Status::OK(),
                   std::make_shared<const core::SheddingResult>(
                       std::move(outcome).value()));
    }
  }
}

StatusOr<core::SheddingResult> JobScheduler::Execute(
    const JobSpec& spec, const CancellationToken* cancel,
    double* run_seconds) {
  if (spec.method == kIncrementalMethod) {
    return ExecuteIncremental(spec, run_seconds);
  }
  Stopwatch watch;
  // The graph load itself is not interruptible (it may be shared with other
  // jobs via the store); check before and after instead.
  if (CancellationRequested(cancel)) {
    *run_seconds = watch.ElapsedSeconds();
    return cancel->ToStatus();
  }
  uint64_t generation = 0;
  auto graph = store_->Get(spec.dataset, &generation);
  if (!graph.ok()) {
    *run_seconds = watch.ElapsedSeconds();
    return graph.status();
  }
  auto shedder = core::MakeShedderByName(spec.method, spec.seed);
  if (!shedder.ok()) {
    *run_seconds = watch.ElapsedSeconds();
    return shedder.status();
  }
  core::ShedOptions shed_options;
  shed_options.p = spec.p;
  shed_options.cancel = cancel;
  shed_options.seed = spec.seed;
  if (rank_cache_ != nullptr) {
    // Route the shedder's Phase-1 ranking through the cross-job cache,
    // keyed by the generation observed with the graph lease above so a
    // ranking is never paired with a replaced dataset. Methods that do not
    // rank by betweenness simply never invoke the provider.
    RankCache* cache = rank_cache_.get();
    const std::string dataset = spec.dataset;
    shed_options.rank_provider =
        [cache, dataset, generation](
            const graph::Graph& g,
            const analytics::BetweennessOptions& betweenness) {
          return cache->GetOrCompute(dataset, generation, g, betweenness);
        };
  }
  StatusOr<core::SheddingResult> result =
      (*shedder)->Shed(**graph, shed_options);
  if (result.ok() && !spec.output_path.empty()) {
    // Materialize G' and snapshot it for out-of-band consumers (the shed-
    // fleet coordinator reads per-shard kept subgraphs this way). The write
    // is part of the job: a caller that asked for a snapshot must not see
    // kDone without one existing on disk.
    Stopwatch write_watch;
    graph::Graph reduced = result->BuildReducedGraph(**graph);
    // v3 (mmap-ready) so the coordinator merging kept shards — and any
    // later serve of the output — loads it zero-copy.
    if (Status saved = graph::SaveBinaryGraph(reduced, spec.output_path,
                                              graph::SnapshotOptions{});
        !saved.ok()) {
      *run_seconds = watch.ElapsedSeconds();
      return saved;
    }
    result->stats.emplace_back("output_write_seconds",
                               write_watch.ElapsedSeconds());
  }
  *run_seconds = watch.ElapsedSeconds();
  return result;
}

StatusOr<core::SheddingResult> JobScheduler::ExecuteIncremental(
    const JobSpec& spec, double* run_seconds) {
  Stopwatch watch;
  auto dyn_graph = store_->DynGraph(spec.dataset);
  if (!dyn_graph.ok()) {
    *run_seconds = watch.ElapsedSeconds();
    return dyn_graph.status();
  }
  std::shared_ptr<DynSession> slot;
  {
    std::lock_guard<std::mutex> lock(dyn_mu_);
    std::shared_ptr<DynSession>& entry = dyn_sessions_[StrFormat(
        "%s|p=%.17g|seed=%llu", spec.dataset.c_str(), spec.p,
        static_cast<unsigned long long>(spec.seed))];
    if (entry == nullptr || entry->graph != *dyn_graph) {
      // First job for this key, or Replace swapped the dataset's dynamic
      // graph out from under the old session: start fresh.
      entry = std::make_shared<DynSession>();
      entry->graph = *dyn_graph;
    }
    slot = entry;
  }
  std::lock_guard<std::mutex> session_lock(slot->mu);
  if (slot->session == nullptr) {
    dyn::DynamicShedOptions options;
    options.p = spec.p;
    options.seed = spec.seed;
    if (rank_cache_ != nullptr) {
      // Full ranking passes share the cross-job cache, keyed by the graph
      // version in place of the store generation. The "#dyn" suffix keeps
      // version and generation numberings from colliding among one
      // dataset's cache entries.
      RankCache* cache = rank_cache_.get();
      const std::string key = spec.dataset + "#dyn";
      options.rank_provider =
          [cache, key](const graph::Graph& g,
                       const analytics::BetweennessOptions& betweenness,
                       uint64_t version) {
            return cache->GetOrCompute(key, version, g, betweenness);
          };
    }
    slot->session = std::make_unique<dyn::ShedSession>(slot->graph, options);
  }
  auto reshed = slot->session->Reshed();
  if (!reshed.ok()) {
    *run_seconds = watch.ElapsedSeconds();
    return reshed.status();
  }

  // Map the kept pairs onto EdgeIds in the result version's canonical
  // order — both lists are sorted, so one merge pass suffices — making the
  // answer shape-identical to a from-scratch job on the materialized graph.
  core::SheddingResult result;
  result.kept_edges.reserve(reshed->kept.size());
  {
    size_t next = 0;
    graph::EdgeId id = 0;
    reshed->snapshot->ForEachLiveEdge([&](const graph::Edge& e) {
      if (next < reshed->kept.size() && e == reshed->kept[next]) {
        result.kept_edges.push_back(id);
        ++next;
      }
      ++id;
    });
    if (next != reshed->kept.size()) {
      *run_seconds = watch.ElapsedSeconds();
      return Status::Internal(
          "incremental re-shed kept an edge not in its own snapshot");
    }
  }
  result.total_delta = reshed->total_delta;
  result.average_delta = reshed->average_delta;
  result.reduction_seconds = reshed->seconds;
  result.stats = std::move(reshed->stats);
  result.stats.emplace_back("version", static_cast<double>(reshed->version));
  result.stats.emplace_back("full_rank", reshed->full_rank ? 1.0 : 0.0);
  result.stats.emplace_back("dirty_vertices",
                            static_cast<double>(reshed->dirty_vertices));
  if (!spec.output_path.empty()) {
    Stopwatch write_watch;
    EDGESHED_ASSIGN_OR_RETURN(graph::Graph parent,
                              reshed->snapshot->Materialize());
    graph::Graph reduced = result.BuildReducedGraph(parent);
    if (Status saved = graph::SaveBinaryGraph(reduced, spec.output_path,
                                              graph::SnapshotOptions{});
        !saved.ok()) {
      *run_seconds = watch.ElapsedSeconds();
      return saved;
    }
    result.stats.emplace_back("output_write_seconds",
                              write_watch.ElapsedSeconds());
  }
  *run_seconds = watch.ElapsedSeconds();
  return result;
}

void JobScheduler::FinishLocked(Job& job, JobState state, Status status,
                                JobResult result) {
  const auto now = Clock::now();
  job.state = state;
  job.status = std::move(status);
  job.result = result;
  if (job.queue_seconds == 0.0) {
    job.queue_seconds = SecondsBetween(job.submit_time, now);
  }
  // A cancelled primary must not drag its coalesced followers down with it:
  // they asked for the same result, not for this job's fate. Promote the
  // first still-live follower to primary and re-queue it; the remaining
  // live followers ride along with the promoted job. (Not during shutdown,
  // where everything is being cancelled anyway.)
  if (state == JobState::kCancelled && !shutdown_ && !job.followers.empty()) {
    JobId promoted_id = 0;
    size_t promoted_index = 0;
    for (size_t i = 0; i < job.followers.size(); ++i) {
      auto it = jobs_.find(job.followers[i]);
      if (it != jobs_.end() && !IsTerminal(it->second.state)) {
        promoted_id = job.followers[i];
        promoted_index = i;
        break;
      }
    }
    if (promoted_id != 0) {
      Job& promoted = jobs_.at(promoted_id);
      promoted.primary = 0;
      promoted.deduplicated = false;
      for (size_t i = promoted_index + 1; i < job.followers.size(); ++i) {
        auto it = jobs_.find(job.followers[i]);
        if (it == jobs_.end() || IsTerminal(it->second.state)) continue;
        it->second.primary = promoted_id;
        promoted.followers.push_back(job.followers[i]);
      }
      job.followers.clear();
      inflight_[job.cache_key] = promoted_id;
      promoted.lane =
          promoted.spec.priority ? kPriorityLane : kNormalLane;
      TenantQueue& promoted_tenant = TenantLocked(promoted.spec.tenant);
      promoted_tenant.lanes[promoted.lane].push_back(promoted_id);
      ++promoted_tenant.queued;
      ++live_queued_;
      PublishQueueDepthLocked();
      PublishTenantGaugesLocked(promoted_tenant);
      if (instruments_.follower_promoted != nullptr) {
        instruments_.follower_promoted->Increment();
      }
      work_available_.notify_one();
    }
  }
  if (!job.cache_key.empty()) {
    auto inflight = inflight_.find(job.cache_key);
    if (inflight != inflight_.end() && inflight->second == job.id) {
      inflight_.erase(inflight);
    }
  }
  if (state == JobState::kDone && options_.enable_result_cache) {
    InsertResultCacheLocked(job.cache_key, job.family_key, job.spec.p,
                            result);
  }
  CountTerminalLocked(job, state);
  if (instruments_.queue_seconds != nullptr) {
    instruments_.queue_seconds->Record(job.queue_seconds);
    if (job.run_seconds > 0.0) {
      instruments_.run_seconds->Record(job.run_seconds);
    }
  }
  if (metrics_ != nullptr && state == JobState::kDone && result != nullptr) {
    // Publish per-phase shedding timings (phase1_seconds/phase2_seconds
    // and any other *_seconds counter the shedder reports) as latency
    // series. Done here — on the executing job only — so coalesced
    // followers sharing this result do not double-count the work. The stat
    // set varies by shedder, so these go through the string-keyed shim.
    constexpr std::string_view kSecondsSuffix = "_seconds";
    for (const auto& [key, value] : result->stats) {
      if (key.size() > kSecondsSuffix.size() &&
          key.compare(key.size() - kSecondsSuffix.size(),
                      kSecondsSuffix.size(), kSecondsSuffix) == 0) {
        metrics_->RecordLatency("scheduler." + key, value);
      }
    }
  }
  EmitJobTraceLocked(job, state, result);
  RecordTerminalLocked(job, now);
  for (JobId follower_id : job.followers) {
    auto follower_it = jobs_.find(follower_id);
    if (follower_it == jobs_.end()) continue;  // already retired by GC
    Job& follower = follower_it->second;
    if (IsTerminal(follower.state)) continue;  // cancelled individually
    follower.state = state;
    follower.status = job.status;
    follower.result = result;
    follower.queue_seconds = SecondsBetween(follower.submit_time, now);
    // Degradation applied to the primary is shared by its followers (they
    // coalesced on the *applied* key, so their requested method matches).
    follower.applied_p = job.applied_p;
    follower.degrade_kind = job.degrade_kind;
    EmitJobTraceLocked(follower, state, nullptr);
    RecordTerminalLocked(follower, now);
    CountTerminalLocked(follower, state);
  }
  job.followers.clear();
  GcRetainedJobsLocked(now);
  job_terminal_.notify_all();
}

void JobScheduler::CountTerminalLocked(const Job& job, JobState state) {
  obs::Counter* counter = nullptr;
  switch (state) {
    case JobState::kDone:
      counter = instruments_.jobs_done;
      break;
    case JobState::kFailed:
      counter = instruments_.jobs_failed;
      break;
    case JobState::kCancelled:
      counter = instruments_.jobs_cancelled;
      break;
    default:
      break;
  }
  if (counter != nullptr) counter->Increment();
  if (state == JobState::kDone) {
    TenantQueue& tenant = TenantLocked(job.spec.tenant);
    if (tenant.done != nullptr) tenant.done->Increment();
  }
}

void JobScheduler::EmitJobTraceLocked(const Job& job, JobState state,
                                      const JobResult& result) {
  if (tracer_ == nullptr || job.trace_id == 0) return;
  const int64_t now_ns = tracer_->NowNs();
  // Per-phase children: the kernels report phase durations as stats rather
  // than scopes (core/ stays free of obs dependencies), so lay the
  // `phase<N>_seconds` stats out sequentially from the run start. Other
  // `*_seconds` stats were already exported as latency series above.
  if (result != nullptr && job.run_span_id != 0) {
    int64_t cursor_ns = job.run_start_ns;
    for (const auto& [key, value] : result->stats) {
      if (key.size() < 8 || key.compare(0, 5, "phase") != 0) continue;
      const size_t digits = key.find_first_not_of("0123456789", 5);
      if (digits == 5 || digits == std::string::npos ||
          key.compare(digits, std::string::npos, "_seconds") != 0) {
        continue;
      }
      obs::SpanRecord phase;
      phase.trace_id = job.trace_id;
      phase.span_id = tracer_->NewTraceId();
      phase.parent_id = job.run_span_id;
      phase.name = key.substr(0, digits);
      phase.start_ns = cursor_ns;
      phase.duration_ns = static_cast<int64_t>(value * 1e9);
      phase.tid = obs::Tracer::ThreadIndex();
      cursor_ns += phase.duration_ns;
      tracer_->Record(std::move(phase));
    }
  }
  obs::SpanRecord root;
  root.trace_id = job.trace_id;
  root.span_id = job.root_span_id;
  root.parent_id = 0;
  root.name = "job";
  root.start_ns = job.submit_ns;
  root.duration_ns = now_ns - job.submit_ns;
  root.tid = obs::Tracer::ThreadIndex();
  root.annotations.emplace_back(
      "id", StrFormat("%llu", static_cast<unsigned long long>(job.id)));
  root.annotations.emplace_back("dataset", job.spec.dataset);
  root.annotations.emplace_back("method", job.spec.method);
  root.annotations.emplace_back("p", StrFormat("%g", job.spec.p));
  root.annotations.emplace_back("state",
                                std::string(JobStateToString(state)));
  root.annotations.emplace_back("deduplicated",
                                job.deduplicated ? "true" : "false");
  tracer_->Record(std::move(root));
}

void JobScheduler::RecordTerminalLocked(Job& job, Clock::time_point now) {
  job.finish_time = now;
  terminal_order_.push_back(job.id);
}

void JobScheduler::GcRetainedJobsLocked(Clock::time_point now) {
  // Scan from the oldest finish; each record is visited at most once per
  // call, so a run of pinned (waited-on) jobs cannot spin this loop.
  const size_t scan_limit = terminal_order_.size();
  for (size_t scanned = 0;
       scanned < scan_limit && !terminal_order_.empty(); ++scanned) {
    const JobId id = terminal_order_.front();
    auto it = jobs_.find(id);
    if (it == jobs_.end()) {  // stale entry (shouldn't happen; be safe)
      terminal_order_.pop_front();
      continue;
    }
    Job& job = it->second;
    const bool over_count = terminal_order_.size() > options_.max_retained_jobs;
    const bool expired = options_.job_retention.count() > 0 &&
                         now - job.finish_time >= options_.job_retention;
    if (!over_count && !expired) break;  // front is oldest: rest are newer
    terminal_order_.pop_front();
    if (job.waiters > 0) {
      // A Wait() holds a reference into the map; requeue and retry later.
      terminal_order_.push_back(id);
      continue;
    }
    jobs_.erase(it);
    if (instruments_.jobs_gc != nullptr) instruments_.jobs_gc->Increment();
  }
  if (instruments_.jobs_tracked != nullptr) {
    instruments_.jobs_tracked->Set(static_cast<int64_t>(jobs_.size()));
  }
}

uint64_t JobScheduler::ApproxResultBytes(const core::SheddingResult& result) {
  uint64_t bytes = sizeof(core::SheddingResult);
  bytes += result.kept_edges.capacity() * sizeof(graph::EdgeId);
  for (const auto& [key, value] : result.stats) {
    (void)value;
    bytes += key.capacity() + sizeof(double) + 2 * sizeof(void*);
  }
  return bytes;
}

void JobScheduler::InsertResultCacheLocked(const std::string& key,
                                           const std::string& family,
                                           double p,
                                           const JobResult& result) {
  // Keeps the coarser-p family index (family key -> p -> full key) in
  // lockstep with the cache map on replace, insert, and eviction.
  const auto unindex = [this](const CacheEntry& entry,
                              const std::string& full_key) {
    auto fam = cache_families_.find(entry.family);
    if (fam == cache_families_.end()) return;
    auto at_p = fam->second.find(entry.p);
    if (at_p != fam->second.end() && at_p->second == full_key) {
      fam->second.erase(at_p);
    }
    if (fam->second.empty()) cache_families_.erase(fam);
  };
  auto existing = result_cache_.find(key);
  if (existing != result_cache_.end()) {
    cache_bytes_ -= existing->second.bytes;
    cache_lru_.erase(existing->second.lru_pos);
    unindex(existing->second, key);
    result_cache_.erase(existing);
  }
  cache_lru_.push_front(key);
  CacheEntry entry{result, ApproxResultBytes(*result), cache_lru_.begin(),
                   family, p};
  cache_bytes_ += entry.bytes;
  result_cache_.emplace(key, std::move(entry));
  cache_families_[family][p] = key;
  // Evict least-recently-used entries past the budget — but never the entry
  // just inserted, so an oversized single result still gets cached once.
  while (cache_bytes_ > options_.result_cache_byte_budget &&
         cache_lru_.size() > 1) {
    auto victim = result_cache_.find(cache_lru_.back());
    cache_bytes_ -= victim->second.bytes;
    unindex(victim->second, victim->first);
    result_cache_.erase(victim);
    cache_lru_.pop_back();
    if (instruments_.result_cache_evicted != nullptr) {
      instruments_.result_cache_evicted->Increment();
    }
  }
  if (instruments_.result_cache_bytes != nullptr) {
    instruments_.result_cache_bytes->Set(static_cast<int64_t>(cache_bytes_));
  }
}

void JobScheduler::PublishQueueDepthLocked() {
  if (instruments_.queue_depth != nullptr) {
    instruments_.queue_depth->Set(static_cast<int64_t>(live_queued_));
  }
}

void JobScheduler::PublishTenantGaugesLocked(TenantQueue& tq) {
  if (tq.queued_gauge != nullptr) {
    tq.queued_gauge->Set(static_cast<int64_t>(tq.queued));
    tq.running_gauge->Set(static_cast<int64_t>(tq.running));
  }
}

}  // namespace edgeshed::service
