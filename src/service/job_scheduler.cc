#include "service/job_scheduler.h"

#include <algorithm>
#include <utility>

#include "common/parallel_for.h"
#include "common/stopwatch.h"
#include "common/strings.h"
#include "core/shedder_factory.h"

namespace edgeshed::service {

namespace {

using Clock = std::chrono::steady_clock;

double SecondsBetween(Clock::time_point from, Clock::time_point to) {
  return std::chrono::duration<double>(to - from).count();
}

}  // namespace

std::string_view JobStateToString(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "unknown";
}

JobScheduler::JobScheduler(GraphStore* store, MetricsRegistry* metrics,
                           JobSchedulerOptions options)
    : store_(store), metrics_(metrics), options_(options) {
  int workers = options_.workers > 0 ? options_.workers : DefaultThreadCount();
  workers_.reserve(static_cast<size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  if (metrics_ != nullptr) {
    metrics_->SetGauge("scheduler.workers", workers);
    metrics_->SetGauge("scheduler.queue_depth", 0);
  }
}

JobScheduler::~JobScheduler() { Shutdown(); }

std::string JobScheduler::CacheKey(const JobSpec& spec) {
  // %a renders the exact bits of p, so 0.1 and 0.1000000001 never collide.
  return StrFormat("%s|%s|%a|%llu", spec.dataset.c_str(),
                   spec.method.c_str(), spec.p,
                   static_cast<unsigned long long>(spec.seed));
}

StatusOr<JobId> JobScheduler::Submit(const JobSpec& spec) {
  EDGESHED_RETURN_IF_ERROR(core::ValidatePreservationRatio(spec.p));
  if (spec.dataset.empty()) {
    return Status::InvalidArgument("job spec needs a dataset name");
  }
  const auto known = core::KnownShedderNames();
  if (std::find(known.begin(), known.end(), spec.method) == known.end()) {
    return Status::InvalidArgument(
        StrFormat("unknown shedding method '%s'", spec.method.c_str()));
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (shutdown_) {
    return Status::FailedPrecondition("scheduler is shut down");
  }
  const auto now = Clock::now();
  Job job;
  job.id = next_id_;
  job.spec = spec;
  job.cache_key = CacheKey(spec);
  job.submit_time = now;
  job.deadline = spec.deadline.count() > 0 ? now + spec.deadline
                                           : Clock::time_point::max();

  if (options_.enable_result_cache) {
    auto cached = result_cache_.find(job.cache_key);
    if (cached != result_cache_.end()) {
      job.state = JobState::kDone;
      job.result = cached->second;
      job.deduplicated = true;
      if (metrics_ != nullptr) {
        metrics_->IncrementCounter("scheduler.submitted");
        metrics_->IncrementCounter("scheduler.result_cache_hit");
        metrics_->IncrementCounter("scheduler.jobs_done");
      }
      const JobId id = next_id_++;
      jobs_.emplace(id, std::move(job));
      return id;
    }
  }

  auto inflight = inflight_.find(job.cache_key);
  if (inflight != inflight_.end()) {
    // An identical job is queued or running: ride along instead of doing the
    // same work twice. The follower shares the primary's outcome.
    job.primary = inflight->second;
    job.deduplicated = true;
    const JobId id = next_id_++;
    jobs_.at(job.primary).followers.push_back(id);
    jobs_.emplace(id, std::move(job));
    if (metrics_ != nullptr) {
      metrics_->IncrementCounter("scheduler.submitted");
      metrics_->IncrementCounter("scheduler.coalesced");
    }
    return id;
  }

  if (live_queued_ >= options_.queue_capacity) {
    if (metrics_ != nullptr) {
      metrics_->IncrementCounter("scheduler.rejected_queue_full");
    }
    return Status::ResourceExhausted(
        StrFormat("submission queue is full (%zu jobs)",
                  options_.queue_capacity));
  }

  const JobId id = next_id_++;
  inflight_[job.cache_key] = id;
  jobs_.emplace(id, std::move(job));
  queue_.push_back(id);
  ++live_queued_;
  PublishQueueDepthLocked();
  if (metrics_ != nullptr) metrics_->IncrementCounter("scheduler.submitted");
  work_available_.notify_one();
  return id;
}

StatusOr<JobResult> JobScheduler::Wait(JobId id) {
  std::unique_lock<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound(StrFormat(
        "unknown job id %llu", static_cast<unsigned long long>(id)));
  }
  job_terminal_.wait(lock, [&] { return IsTerminal(it->second.state); });
  const Job& job = it->second;
  if (job.state == JobState::kDone) return job.result;
  return job.status;
}

Status JobScheduler::Cancel(JobId id) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound(StrFormat(
        "unknown job id %llu", static_cast<unsigned long long>(id)));
  }
  Job& job = it->second;
  if (IsTerminal(job.state)) {
    return Status::FailedPrecondition(
        StrFormat("job %llu is already %s",
                  static_cast<unsigned long long>(id),
                  std::string(JobStateToString(job.state)).c_str()));
  }
  job.cancel_requested = true;
  if (job.state == JobState::kQueued) {
    // Queued (or coalesced) jobs cancel immediately; their id stays in
    // queue_ and is skipped by the worker that pops it.
    if (job.primary == 0) {
      --live_queued_;
      PublishQueueDepthLocked();
    }
    FinishLocked(job, JobState::kCancelled,
                 Status::Cancelled("cancelled by caller"), nullptr);
  }
  // Running jobs finish their reduction; the flag discards the result.
  return Status::OK();
}

StatusOr<JobStatus> JobScheduler::GetStatus(JobId id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound(StrFormat(
        "unknown job id %llu", static_cast<unsigned long long>(id)));
  }
  const Job& job = it->second;
  JobStatus status;
  status.id = job.id;
  status.state = job.state;
  status.status = job.status;
  status.deduplicated = job.deduplicated;
  status.queue_seconds = job.queue_seconds;
  status.run_seconds = job.run_seconds;
  return status;
}

size_t JobScheduler::QueueDepth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return live_queued_;
}

void JobScheduler::Shutdown() {
  std::lock_guard<std::mutex> shutdown_lock(shutdown_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
    for (JobId id : queue_) {
      Job& job = jobs_.at(id);
      if (IsTerminal(job.state)) continue;
      FinishLocked(job, JobState::kCancelled,
                   Status::Cancelled("scheduler shutdown"), nullptr);
    }
    queue_.clear();
    live_queued_ = 0;
    PublishQueueDepthLocked();
    work_available_.notify_all();
  }
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

void JobScheduler::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_available_.wait(lock, [&] { return shutdown_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (shutdown_) return;
      continue;
    }
    const JobId id = queue_.front();
    queue_.pop_front();
    Job& job = jobs_.at(id);  // map nodes are stable across the unlock below
    if (IsTerminal(job.state)) continue;  // cancelled while queued
    --live_queued_;
    PublishQueueDepthLocked();
    const auto picked_up = Clock::now();
    job.queue_seconds = SecondsBetween(job.submit_time, picked_up);
    if (job.cancel_requested) {
      FinishLocked(job, JobState::kCancelled,
                   Status::Cancelled("cancelled by caller"), nullptr);
      continue;
    }
    if (picked_up > job.deadline) {
      if (metrics_ != nullptr) {
        metrics_->IncrementCounter("scheduler.deadline_expired");
      }
      FinishLocked(job, JobState::kCancelled,
                   Status::DeadlineExceeded(
                       "deadline passed before the job was dispatched"),
                   nullptr);
      continue;
    }
    job.state = JobState::kRunning;
    const JobSpec spec = job.spec;  // worker's copy; run with no lock held
    lock.unlock();
    double run_seconds = 0.0;
    StatusOr<core::SheddingResult> outcome = Execute(spec, &run_seconds);
    lock.lock();
    job.run_seconds = run_seconds;
    if (job.cancel_requested) {
      FinishLocked(job, JobState::kCancelled,
                   Status::Cancelled("cancelled while running"), nullptr);
    } else if (!outcome.ok()) {
      FinishLocked(job, JobState::kFailed, outcome.status(), nullptr);
    } else {
      FinishLocked(job, JobState::kDone, Status::OK(),
                   std::make_shared<const core::SheddingResult>(
                       std::move(outcome).value()));
    }
  }
}

StatusOr<core::SheddingResult> JobScheduler::Execute(const JobSpec& spec,
                                                     double* run_seconds) {
  Stopwatch watch;
  auto graph = store_->Get(spec.dataset);
  if (!graph.ok()) {
    *run_seconds = watch.ElapsedSeconds();
    return graph.status();
  }
  auto shedder = core::MakeShedderByName(spec.method, spec.seed);
  if (!shedder.ok()) {
    *run_seconds = watch.ElapsedSeconds();
    return shedder.status();
  }
  StatusOr<core::SheddingResult> result = (*shedder)->Reduce(**graph, spec.p);
  *run_seconds = watch.ElapsedSeconds();
  return result;
}

void JobScheduler::FinishLocked(Job& job, JobState state, Status status,
                                JobResult result) {
  const auto now = Clock::now();
  job.state = state;
  job.status = std::move(status);
  job.result = result;
  if (job.queue_seconds == 0.0) {
    job.queue_seconds = SecondsBetween(job.submit_time, now);
  }
  if (!job.cache_key.empty()) {
    auto inflight = inflight_.find(job.cache_key);
    if (inflight != inflight_.end() && inflight->second == job.id) {
      inflight_.erase(inflight);
    }
  }
  if (state == JobState::kDone && options_.enable_result_cache) {
    result_cache_[job.cache_key] = result;
  }
  if (metrics_ != nullptr) {
    switch (state) {
      case JobState::kDone:
        metrics_->IncrementCounter("scheduler.jobs_done");
        break;
      case JobState::kFailed:
        metrics_->IncrementCounter("scheduler.jobs_failed");
        break;
      case JobState::kCancelled:
        metrics_->IncrementCounter("scheduler.jobs_cancelled");
        break;
      default:
        break;
    }
    metrics_->RecordLatency("scheduler.queue_seconds", job.queue_seconds);
    if (job.run_seconds > 0.0) {
      metrics_->RecordLatency("scheduler.run_seconds", job.run_seconds);
    }
    if (state == JobState::kDone && result != nullptr) {
      // Publish per-phase shedding timings (phase1_seconds/phase2_seconds
      // and any other *_seconds counter the shedder reports) as latency
      // series. Done here — on the executing job only — so coalesced
      // followers sharing this result do not double-count the work.
      constexpr std::string_view kSecondsSuffix = "_seconds";
      for (const auto& [key, value] : result->stats) {
        if (key.size() > kSecondsSuffix.size() &&
            key.compare(key.size() - kSecondsSuffix.size(),
                        kSecondsSuffix.size(), kSecondsSuffix) == 0) {
          metrics_->RecordLatency("scheduler." + key, value);
        }
      }
    }
  }
  for (JobId follower_id : job.followers) {
    Job& follower = jobs_.at(follower_id);
    if (IsTerminal(follower.state)) continue;  // cancelled individually
    follower.state = state;
    follower.status = job.status;
    follower.result = result;
    follower.queue_seconds = SecondsBetween(follower.submit_time, now);
    if (metrics_ != nullptr) {
      switch (state) {
        case JobState::kDone:
          metrics_->IncrementCounter("scheduler.jobs_done");
          break;
        case JobState::kFailed:
          metrics_->IncrementCounter("scheduler.jobs_failed");
          break;
        case JobState::kCancelled:
          metrics_->IncrementCounter("scheduler.jobs_cancelled");
          break;
        default:
          break;
      }
    }
  }
  job.followers.clear();
  job_terminal_.notify_all();
}

void JobScheduler::PublishQueueDepthLocked() {
  if (metrics_ != nullptr) {
    metrics_->SetGauge("scheduler.queue_depth",
                       static_cast<int64_t>(live_queued_));
  }
}

}  // namespace edgeshed::service
