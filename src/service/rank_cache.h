#ifndef EDGESHED_SERVICE_RANK_CACHE_H_
#define EDGESHED_SERVICE_RANK_CACHE_H_

#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "analytics/betweenness.h"
#include "common/statusor.h"
#include "core/shedding.h"
#include "graph/graph.h"
#include "obs/tracer.h"
#include "service/metrics_registry.h"

namespace edgeshed::service {

/// Configuration for RankCache.
struct RankCacheOptions {
  /// Approximate cap on summed ranking bytes (|E| ids per entry).
  uint64_t byte_budget = 128ull << 20;
};

/// Thread-safe LRU cache of Phase-1 edge rankings, shared across shedding
/// jobs (DESIGN.md §12).
///
/// BENCH_hotpath.json shows the betweenness ranking dominating every CRR
/// job; yet the ranking depends only on the graph and the estimator options
/// — not on the preservation ratio `p` or the swap seed — so N jobs against
/// one dataset at different `p` were paying for N identical rankings. This
/// cache keys rankings by (dataset, dataset generation, estimator-options
/// fingerprint) and hands the scheduler a `core::RankProvider` view, so
/// those N jobs share exactly one betweenness pass.
///
/// Concurrency contract, modeled on GraphStore's load waves with one
/// deliberate difference: concurrent misses on a key coalesce (one thread
/// computes, the rest block and share the result, `rank_cache_wait_hit`),
/// but a *failed* compute — in practice a cancelled or deadline-expired job
/// — is never shared. The failing job takes its own status, the entry is
/// erased, and the next waiter computes afresh: one cancelled job must not
/// poison independent jobs that merely wanted the same ranking.
///
/// Invalidation: the dataset generation (GraphStore::Generation, bumped by
/// GraphStore::Replace) is part of the key, so replacing a dataset makes
/// every cached ranking for it unreachable immediately; InvalidateDataset
/// additionally reclaims those bytes eagerly.
///
/// Provenance: a fresh compute returns `computed = true` with the measured
/// wall-clock; a hit (waited or not) returns `computed = false` and
/// `seconds = 0.0` exactly, so per-job `betweenness_seconds` stats stay
/// honest — exactly one job reports ranking time for a shared ranking.
///
/// Metrics (when a registry is supplied): `scheduler.rank_cache_hit`,
/// `scheduler.rank_cache_wait_hit`, `scheduler.rank_cache_miss`,
/// `scheduler.rank_cache_compute_failed`, `scheduler.rank_cache_evicted`,
/// `scheduler.rank_cache_invalidated` counters;
/// `scheduler.rank_cache_bytes` / `scheduler.rank_cache_entries` gauges;
/// `scheduler.rank_cache_compute_seconds` latency. When a tracer is
/// supplied each fresh compute records a `rank_cache.compute` span under
/// the calling thread's ambient span (a job's `run` span in the scheduler).
class RankCache {
 public:
  using Options = RankCacheOptions;

  explicit RankCache(RankCacheOptions options = {},
                     MetricsRegistry* metrics = nullptr,
                     obs::Tracer* tracer = nullptr);

  RankCache(const RankCache&) = delete;
  RankCache& operator=(const RankCache&) = delete;

  /// Returns the ranking for (`dataset`, `generation`, `options`), running
  /// analytics::EdgesByBetweennessDescending(g, options) on a miss.
  /// `options.cancel` governs only this caller's compute; a tripped token
  /// surfaces as its ToStatus() and the result is discarded, never cached.
  StatusOr<core::EdgeRanking> GetOrCompute(
      const std::string& dataset, uint64_t generation, const graph::Graph& g,
      const analytics::BetweennessOptions& options);

  /// Eagerly drops every cached ranking of `dataset` (any generation).
  /// In-flight computes are unaffected — their entries complete under keys
  /// nothing references anymore and age out via LRU.
  void InvalidateDataset(const std::string& dataset);

  /// Drops every cached ranking (in-flight computes unaffected).
  void Clear();

  size_t entries() const;
  uint64_t bytes() const;
  uint64_t byte_budget() const { return options_.byte_budget; }

  /// Cache key for a (dataset, generation, estimator options) triple.
  /// Covers every option that can change scores or the early-stop point;
  /// `threads` and `cancel` are deliberately excluded — results are
  /// bit-identical across thread counts, and the token is per-caller.
  static std::string Key(const std::string& dataset, uint64_t generation,
                         const analytics::BetweennessOptions& options);

 private:
  using Ranking = std::shared_ptr<const std::vector<graph::EdgeId>>;

  struct Entry {
    Ranking ranking;        // null while the initial compute is in flight
    bool computing = false;
    uint64_t bytes = 0;
    // Position in lru_; valid iff ranking != nullptr.
    std::list<std::string>::iterator lru_pos;
  };

  /// Evicts LRU entries (never `keep`) until within budget. Caller holds
  /// mu_. Entries still computing are not in lru_ and cannot be evicted.
  void EvictLocked(const std::string& keep);
  void PublishGaugesLocked();

  struct Instruments {
    obs::Counter* hit = nullptr;
    obs::Counter* wait_hit = nullptr;
    obs::Counter* miss = nullptr;
    obs::Counter* compute_failed = nullptr;
    obs::Counter* evicted = nullptr;
    obs::Counter* invalidated = nullptr;
    obs::Gauge* bytes = nullptr;
    obs::Gauge* entries = nullptr;
    obs::LatencySeries* compute_seconds = nullptr;
  };

  const RankCacheOptions options_;
  obs::Tracer* const tracer_;  // may be null
  Instruments instruments_;

  mutable std::mutex mu_;
  std::condition_variable compute_done_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent; installed entries only
  uint64_t bytes_ = 0;
};

}  // namespace edgeshed::service

#endif  // EDGESHED_SERVICE_RANK_CACHE_H_
