#ifndef EDGESHED_SERVICE_GRAPH_STORE_H_
#define EDGESHED_SERVICE_GRAPH_STORE_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/statusor.h"
#include "dyn/versioned_graph.h"
#include "graph/graph.h"
#include "graph/mutation_io.h"
#include "obs/tracer.h"
#include "service/metrics_registry.h"

namespace edgeshed::service {

/// Configuration for GraphStore.
struct GraphStoreOptions {
  /// Approximate cap on summed GraphStore::ApproxBytes() of resident graphs.
  uint64_t byte_budget = 256ull << 20;
};

/// Thread-safe LRU cache of loaded/generated graphs, keyed by dataset name.
///
/// Every entry point of the library used to reload (or regenerate) its input
/// graph per run; a long-lived service cannot afford that. GraphStore owns
/// one lazily-loaded `Graph` per registered name and hands out
/// `shared_ptr<const Graph>` leases, so a graph can be evicted while jobs
/// still hold it — the lease keeps the storage alive, the store merely
/// forgets it and reloads on the next request.
///
/// Concurrency contract:
///  * `Get` for a resident name is a cheap map lookup under the store mutex.
///  * A miss runs the registered loader *outside* the mutex, so distinct
///    datasets load in parallel. Concurrent misses on the same name are
///    coalesced: one thread loads, the rest block on a condition variable
///    and share the result (counted as `store.wait_hit`). A *failed* load is
///    shared the same way — every Get already blocked on that load wave gets
///    the loader's failure Status (`store.wait_failure`) instead of serially
///    re-running a loader that just failed. Gets arriving after the failure
///    start a fresh wave, so transient failures still recover.
///  * Eviction is LRU by last `Get`, triggered after each insert while
///    resident bytes exceed `Options::byte_budget`. The entry just inserted
///    is never evicted by its own insert, so a single over-budget graph
///    still gets served (and is dropped by the *next* insert).
///
/// Metrics (when a registry is supplied): `store.hit`, `store.miss`,
/// `store.wait_hit`, `store.load_failure`, `store.wait_failure`,
/// `store.eviction` counters;
/// `store.bytes_resident` and `store.graphs_resident` gauges;
/// `store.load_seconds` latency. Instrument handles are resolved once at
/// construction; per-event updates are lock-free.
///
/// When a tracer is supplied, each load wave records a `store.load` span
/// (annotated with the dataset name) parented onto the loading thread's
/// ambient span — inside a scheduler worker that is the job's `run` span, so
/// graph loads show up inside job traces.
class GraphStore {
 public:
  /// Produces the graph for a registered name; called outside the store
  /// lock. Must be safe to invoke concurrently with loaders of other names.
  using Loader = std::function<StatusOr<graph::Graph>()>;
  using Options = GraphStoreOptions;

  explicit GraphStore(GraphStoreOptions options = {},
                      MetricsRegistry* metrics = nullptr,
                      obs::Tracer* tracer = nullptr);

  GraphStore(const GraphStore&) = delete;
  GraphStore& operator=(const GraphStore&) = delete;

  /// Registers `loader` under `name`. InvalidArgument on empty name,
  /// FailedPrecondition if the name is already registered.
  Status Register(const std::string& name, Loader loader);

  /// Replaces the loader under `name` (registering it when new), drops any
  /// resident graph and the store's dynamic-graph handle (handles already
  /// held by callers keep working against the old history), and bumps the
  /// dataset's generation — the signal
  /// downstream caches key on to invalidate derived data (rank cache,
  /// DESIGN.md §12). A load in flight when Replace lands still completes
  /// for its own waiters with the *old* loader's graph and generation; it is
  /// not installed, so the next Get reloads fresh. InvalidArgument on empty
  /// name or null loader.
  Status Replace(const std::string& name, Loader loader);

  /// Monotonic per-dataset version, starting at 1 on registration and
  /// bumped by every Replace. 0 for unregistered names.
  uint64_t Generation(const std::string& name) const;

  /// Maps a not-yet-registered dataset name to a loader, or std::nullopt to
  /// decline. Called under the store lock, so it must be fast and must not
  /// call back into the store; the loader it returns runs outside the lock
  /// like any other.
  using LoaderFactory =
      std::function<std::optional<Loader>(const std::string& name)>;

  /// Installs a fallback consulted by Get for unregistered names: when the
  /// factory yields a loader, the name is registered on the spot and the Get
  /// proceeds as a normal miss. This is how fleet workers serve shard
  /// snapshots that did not exist when the process started — the coordinator
  /// writes `<name>.esg` into a shared directory and names it in a Shed
  /// request; no pre-registration round trip is needed (DESIGN.md §11).
  /// Names the factory declines still return NotFound. Pass nullptr to
  /// uninstall.
  void SetFallbackLoaderFactory(LoaderFactory factory);

  /// Returns the graph for `name`, loading it on a miss. NotFound for
  /// unregistered names; loader failures are returned verbatim to the
  /// loading Get *and* to every Get blocked on the same load wave (and not
  /// cached — a fresh Get retries). When `generation` is non-null it
  /// receives the dataset generation the returned graph belongs to,
  /// observed atomically with the graph itself.
  StatusOr<std::shared_ptr<const graph::Graph>> Get(
      const std::string& name, uint64_t* generation = nullptr);

  /// Returns the dataset's dynamic (mutable, versioned) handle, creating it
  /// from the currently loaded graph on first use — the base CSR is shared
  /// with the store's resident lease, not copied. The handle stays valid
  /// for the caller's lifetime even if the dataset is later evicted or
  /// Replace()d (a Replace discards the *store's* reference and starts a
  /// fresh dynamic history on next use; see Replace). NotFound for
  /// unregistered names; loader failures propagate.
  StatusOr<std::shared_ptr<dyn::VersionedGraph>> DynGraph(
      const std::string& name);

  /// Applies one mutation batch to `name`'s dynamic graph (created on
  /// first use) and returns the new version. On success the dataset's
  /// generation is bumped and its loader is swapped for one that
  /// materializes the new head snapshot — exactly the Replace contract, so
  /// the next Get serves the mutated graph and every generation-keyed
  /// downstream cache (rank cache, scheduler result cache) invalidates.
  /// Validation failures (self-loop / duplicate / non-live delete /
  /// already-live insert, each naming the offending pair) reject the whole
  /// batch and leave the dataset untouched.
  StatusOr<uint64_t> ApplyMutations(const std::string& name,
                                    graph::MutationBatch batch);

  /// True iff `name` is currently resident (testing / introspection).
  bool IsResident(const std::string& name) const;

  /// Registered dataset names, sorted.
  std::vector<std::string> RegisteredNames() const;

  /// Drops every resident graph (registrations survive).
  void Clear();

  uint64_t bytes_resident() const;
  uint64_t byte_budget() const { return options_.byte_budget; }

  /// Heap footprint charged against the budget: the owned CSR arrays, or a
  /// near-zero constant for mmap-backed graphs (their pages live in the
  /// page cache and are reclaimable, so they shouldn't force evictions).
  static uint64_t ApproxBytes(const graph::Graph& g);

 private:
  struct Entry {
    Loader loader;
    std::shared_ptr<const graph::Graph> graph;  // null when not resident
    /// Dynamic handle, created lazily by DynGraph/ApplyMutations and
    /// dropped by Replace (a replaced dataset starts a fresh history).
    std::shared_ptr<dyn::VersionedGraph> dyn;
    /// Dataset version; bumped by Replace so generation-keyed caches of
    /// derived data invalidate without coordination.
    uint64_t generation = 1;
    uint64_t bytes = 0;
    bool loading = false;  // a thread is running `loader` right now
    /// Load-wave bookkeeping: `load_epoch` is bumped when a load starts;
    /// `failed_epoch`/`last_failure` record the most recent failed wave so
    /// waiters of exactly that wave share the failure instead of retrying.
    uint64_t load_epoch = 0;
    uint64_t failed_epoch = 0;
    Status last_failure;
    // Position in lru_ when resident; valid iff graph != nullptr.
    std::list<std::string>::iterator lru_pos;
  };

  /// Evicts LRU entries (never `keep`) until within budget. Caller holds mu_.
  void EvictLocked(const std::string& keep);
  void PublishGaugesLocked();

  /// Typed instrument handles, resolved once at construction. All null when
  /// no registry is attached.
  struct Instruments {
    obs::Counter* hit = nullptr;
    obs::Counter* miss = nullptr;
    obs::Counter* wait_hit = nullptr;
    obs::Counter* load_failure = nullptr;
    obs::Counter* wait_failure = nullptr;
    obs::Counter* eviction = nullptr;
    obs::Gauge* bytes_resident = nullptr;
    obs::Gauge* graphs_resident = nullptr;
    obs::LatencySeries* load_seconds = nullptr;
  };

  const GraphStoreOptions options_;
  obs::Tracer* const tracer_;  // may be null
  Instruments instruments_;

  mutable std::mutex mu_;
  std::condition_variable load_done_;
  LoaderFactory fallback_factory_;  // may be null; guarded by mu_
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  uint64_t bytes_resident_ = 0;
};

}  // namespace edgeshed::service

#endif  // EDGESHED_SERVICE_GRAPH_STORE_H_
