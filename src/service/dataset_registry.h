#ifndef EDGESHED_SERVICE_DATASET_REGISTRY_H_
#define EDGESHED_SERVICE_DATASET_REGISTRY_H_

#include <string>

#include "graph/datasets.h"
#include "service/graph_store.h"

namespace edgeshed::service {

/// Registers the four paper surrogates in `store` under the CLI's dataset
/// names ("grqc", "hepph", "enron", "livejournal"). Each loader calls
/// graph::MakeDataset with `options` on first use; nothing is generated up
/// front. Callers serving livejournal should pick `options.scale` with care
/// — the full-size surrogate is ~35M edges.
Status RegisterSurrogateDatasets(GraphStore& store,
                                 const graph::DatasetOptions& options = {});

/// Registers `name` as a lazily-loaded SNAP edge-list file. The file is
/// read (and validated) on first Get; a missing file surfaces as that Get's
/// error, not here.
Status RegisterEdgeListDataset(GraphStore& store, const std::string& name,
                               const std::string& path);

}  // namespace edgeshed::service

#endif  // EDGESHED_SERVICE_DATASET_REGISTRY_H_
