#ifndef EDGESHED_SERVICE_DATASET_REGISTRY_H_
#define EDGESHED_SERVICE_DATASET_REGISTRY_H_

#include <string>

#include "graph/datasets.h"
#include "service/graph_store.h"

namespace edgeshed::service {

/// Registers the four paper surrogates in `store` under the CLI's dataset
/// names ("grqc", "hepph", "enron", "livejournal"). Each loader calls
/// graph::MakeDataset with `options` on first use; nothing is generated up
/// front. Callers serving livejournal should pick `options.scale` with care
/// — the full-size surrogate is ~35M edges.
Status RegisterSurrogateDatasets(GraphStore& store,
                                 const graph::DatasetOptions& options = {});

/// Registers `name` as a lazily-loaded graph file of any supported format
/// (text edge list, binary edge list, or snapshot — auto-detected; v3
/// snapshots are served zero-copy from a file mapping). The file is read
/// (and validated) on first Get; a missing file surfaces as that Get's
/// error, not here.
Status RegisterEdgeListDataset(GraphStore& store, const std::string& name,
                               const std::string& path);

/// True iff `name` is safe to splice into a filesystem path as a single
/// component: non-empty, only [A-Za-z0-9._-], no leading '.', at most 255
/// bytes. Shared by every layer that maps wire-supplied dataset/output names
/// to files (shard-dir fallback loading, Shed output snapshots), so a remote
/// caller can never traverse outside the configured directory.
bool IsSafeDatasetName(const std::string& name);

/// Installs a GraphStore fallback (SetFallbackLoaderFactory) that resolves
/// any safe, not-yet-registered dataset name to the binary snapshot
/// `<dir>/<name>.esg` (any snapshot version; v3 is memory-mapped and
/// served zero-copy when `mmap` is set), loaded lazily on first Get. Files
/// may appear after the worker starts — the shed-fleet coordinator writes
/// shard snapshots into `dir` and then submits jobs naming them (DESIGN.md
/// §11). Unsafe names are declined (the Get reports NotFound); a safe name
/// whose file is missing or corrupt fails that Get with the loader's
/// IOError/DataLoss.
void InstallShardDirFallback(GraphStore& store, const std::string& dir,
                             bool mmap = true);

}  // namespace edgeshed::service

#endif  // EDGESHED_SERVICE_DATASET_REGISTRY_H_
