#include "analytics/approx_neighborhood.h"

#include <gtest/gtest.h>

#include "analytics/shortest_paths.h"
#include "testing/test_graphs.h"

namespace edgeshed::analytics {
namespace {

ApproxNeighborhoodOptions HighPrecision() {
  ApproxNeighborhoodOptions options;
  options.precision = 12;  // ~1.6% standard error, plenty for small graphs
  options.seed = 7;
  return options;
}

TEST(ApproxNeighborhoodTest, EmptyGraphHasNoPairs) {
  graph::Graph g;
  auto nf = ApproximateNeighborhoodFunction(g, HighPrecision());
  EXPECT_DOUBLE_EQ(nf.HopFraction(1), 0.0);
  EXPECT_DOUBLE_EQ(nf.HopFraction(10), 0.0);
}

TEST(ApproxNeighborhoodTest, CliqueConvergesAtDistanceOne) {
  const graph::Graph g = testing::Clique(20);
  auto nf = ApproximateNeighborhoodFunction(g, HighPrecision());
  ASSERT_GE(nf.pairs_within.size(), 2u);
  // All 20*19 ordered pairs are within one hop.
  EXPECT_NEAR(nf.pairs_within.back(), 380.0, 380.0 * 0.1);
  EXPECT_NEAR(nf.HopFraction(1), 1.0, 0.05);
  // Effective diameter of a clique is ~1.
  EXPECT_LE(nf.EffectiveDiameter(), 1.05);
}

TEST(ApproxNeighborhoodTest, HopFractionIsMonotoneAndCapsAtOne) {
  const graph::Graph g = testing::Path(32);
  auto nf = ApproximateNeighborhoodFunction(g, HighPrecision());
  double prev = 0.0;
  for (uint32_t k = 0; k < 40; ++k) {
    const double frac = nf.HopFraction(k);
    EXPECT_GE(frac, prev - 1e-12);
    EXPECT_LE(frac, 1.0 + 1e-12);
    prev = frac;
  }
  EXPECT_DOUBLE_EQ(nf.HopFraction(1000), 1.0);
}

TEST(ApproxNeighborhoodTest, TracksExactDistanceProfileOnAPath) {
  const graph::Graph g = testing::Path(24);
  auto nf = ApproximateNeighborhoodFunction(g, HighPrecision());
  const auto profile = DistanceProfile(g);
  // Exact ordered pairs within k on a path of n nodes: sum over d<=k of
  // 2*(n-d). Compare the sketch at a few distances.
  const uint64_t n = g.NumNodes();
  for (uint32_t k : {1u, 3u, 8u}) {
    uint64_t exact = 0;
    for (uint32_t d = 1; d <= k; ++d) exact += 2 * (n - d);
    ASSERT_GT(nf.pairs_within.size(), k);
    EXPECT_NEAR(nf.pairs_within[k], static_cast<double>(exact),
                static_cast<double>(exact) * 0.15)
        << "k=" << k;
  }
  // And the hop-plot fractions agree with the exact profile.
  EXPECT_NEAR(nf.HopFraction(4), HopPlotFraction(profile, 4), 0.1);
}

TEST(ApproxNeighborhoodTest, DisconnectedPairsNeverCounted) {
  // Two far-apart cliques: reachable ordered pairs = 2 * 6*5 = 60.
  const graph::Graph g = testing::MustBuild(
      12, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {0, 5}, {1, 2}, {1, 3}, {1, 4},
           {1, 5}, {2, 3}, {2, 4}, {2, 5}, {3, 4}, {3, 5}, {4, 5},
           {6, 7}, {6, 8}, {6, 9}, {6, 10}, {6, 11}, {7, 8}, {7, 9},
           {7, 10}, {7, 11}, {8, 9}, {8, 10}, {8, 11}, {9, 10}, {9, 11},
           {10, 11}});
  auto nf = ApproximateNeighborhoodFunction(g, HighPrecision());
  EXPECT_NEAR(nf.pairs_within.back(), 60.0, 60.0 * 0.15);
}

TEST(ApproxNeighborhoodTest, DeterministicGivenSeed) {
  const graph::Graph g = testing::Path(16);
  auto a = ApproximateNeighborhoodFunction(g, HighPrecision());
  auto b = ApproximateNeighborhoodFunction(g, HighPrecision());
  EXPECT_EQ(a.pairs_within, b.pairs_within);
}

TEST(ApproxNeighborhoodTest, MaxDistanceCapsIterations) {
  const graph::Graph g = testing::Path(64);  // diameter 63
  ApproxNeighborhoodOptions options = HighPrecision();
  options.max_distance = 5;
  auto nf = ApproximateNeighborhoodFunction(g, options);
  EXPECT_LE(nf.pairs_within.size(), 6u + 1u);  // index 0 + at most 5 rounds (+slack)
}

}  // namespace
}  // namespace edgeshed::analytics
