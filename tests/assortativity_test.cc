#include "analytics/assortativity.h"

#include <gtest/gtest.h>

#include "analytics/eigenvector.h"
#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::analytics {
namespace {

using ::edgeshed::testing::Clique;
using ::edgeshed::testing::Cycle;
using ::edgeshed::testing::MustBuild;
using ::edgeshed::testing::Star;

TEST(AssortativityTest, RegularGraphIsDegenerate) {
  // All degrees equal: zero variance -> defined as 0.
  EXPECT_DOUBLE_EQ(DegreeAssortativity(Cycle(10)), 0.0);
  EXPECT_DOUBLE_EQ(DegreeAssortativity(Clique(6)), 0.0);
}

TEST(AssortativityTest, StarIsPerfectlyDisassortative) {
  // Every edge joins degree n-1 with degree 1: r = -1.
  EXPECT_NEAR(DegreeAssortativity(Star(10)), -1.0, 1e-9);
}

TEST(AssortativityTest, TwoCliquesJoinedByPath) {
  // Hub-hub and leaf-leaf links -> positive assortativity.
  // Two triangles (deg 2) plus a chain of degree-2 vertices: build a graph
  // where high-degree vertices attach to each other.
  auto g = MustBuild(6, {{0, 1}, {0, 2}, {1, 2}, {2, 3}, {3, 4}, {3, 5},
                         {4, 5}});
  double r = DegreeAssortativity(g);
  EXPECT_GE(r, -1.0);
  EXPECT_LE(r, 1.0);
}

TEST(AssortativityTest, BarabasiAlbertIsDisassortativeIsh) {
  Rng rng(51);
  auto g = graph::BarabasiAlbert(2000, 3, rng);
  double r = DegreeAssortativity(g);
  // Preferential attachment without aging gives r <= 0 (hubs connect to
  // leaves).
  EXPECT_LT(r, 0.05);
  EXPECT_GT(r, -1.0);
}

TEST(AssortativityTest, FewerThanTwoEdges) {
  EXPECT_DOUBLE_EQ(DegreeAssortativity(MustBuild(3, {{0, 1}})), 0.0);
  EXPECT_DOUBLE_EQ(DegreeAssortativity(graph::Graph()), 0.0);
}

TEST(AverageNeighborDegreesTest, StarValues) {
  auto values = AverageNeighborDegrees(Star(5));
  EXPECT_DOUBLE_EQ(values[0], 1.0);   // center's neighbors are leaves
  for (int u = 1; u < 5; ++u) EXPECT_DOUBLE_EQ(values[u], 4.0);
}

TEST(AverageNeighborDegreesTest, IsolatedIsZero) {
  auto g = MustBuild(3, {{0, 1}});
  auto values = AverageNeighborDegrees(g);
  EXPECT_DOUBLE_EQ(values[2], 0.0);
}

TEST(EigenvectorTest, RegularGraphIsUniform) {
  auto scores = EigenvectorCentrality(Cycle(8));
  for (double s : scores) {
    EXPECT_NEAR(s, scores[0], 1e-8);
    EXPECT_GT(s, 0.0);
  }
}

TEST(EigenvectorTest, NormIsOne) {
  Rng rng(52);
  auto g = graph::BarabasiAlbert(200, 3, rng);
  auto scores = EigenvectorCentrality(g);
  double norm = 0.0;
  for (double s : scores) norm += s * s;
  EXPECT_NEAR(norm, 1.0, 1e-9);
}

TEST(EigenvectorTest, StarCenterDominates) {
  auto scores = EigenvectorCentrality(Star(10));
  for (int u = 1; u < 10; ++u) {
    EXPECT_GT(scores[0], scores[u]);
    EXPECT_NEAR(scores[u], scores[1], 1e-9);
  }
}

TEST(EigenvectorTest, HubsOutrankLeavesOnBa) {
  Rng rng(53);
  auto g = graph::BarabasiAlbert(500, 3, rng);
  auto scores = EigenvectorCentrality(g);
  // The max-degree vertex should be near the top of the centrality order.
  graph::NodeId hub = 0;
  for (graph::NodeId u = 1; u < g.NumNodes(); ++u) {
    if (g.Degree(u) > g.Degree(hub)) hub = u;
  }
  uint32_t better = 0;
  for (double s : scores) {
    if (s > scores[hub]) ++better;
  }
  EXPECT_LT(better, 10u);
}

TEST(EigenvectorTest, EdgelessGraphIsZero) {
  auto scores = EigenvectorCentrality(MustBuild(5, {}));
  for (double s : scores) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(EigenvectorTest, EmptyGraph) {
  EXPECT_TRUE(EigenvectorCentrality(graph::Graph()).empty());
}

}  // namespace
}  // namespace edgeshed::analytics
