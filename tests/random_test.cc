#include "common/random.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <set>
#include <vector>

namespace edgeshed {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int differences = 0;
  for (int i = 0; i < 16; ++i) {
    if (a.Next() != b.Next()) ++differences;
  }
  EXPECT_GT(differences, 0);
}

TEST(RngTest, UniformU64RespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.UniformU64(17), 17u);
  }
}

TEST(RngTest, UniformU64CoversRange) {
  Rng rng(7);
  std::set<uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformU64(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformU64IsRoughlyUniform) {
  Rng rng(99);
  std::vector<int> counts(8, 0);
  constexpr int kDraws = 80000;
  for (int i = 0; i < kDraws; ++i) ++counts[rng.UniformU64(8)];
  for (int c : counts) {
    EXPECT_NEAR(c, kDraws / 8, kDraws / 8 * 0.1);
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
  EXPECT_EQ(rng.UniformInt(7, 7), 7);
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(5);
  int hits = 0;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits, kDraws * 0.3, kDraws * 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(11);
  std::vector<int> values{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> shuffled = values;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(RngTest, ShuffleActuallyPermutes) {
  Rng rng(11);
  std::vector<int> values(100);
  std::iota(values.begin(), values.end(), 0);
  std::vector<int> original = values;
  rng.Shuffle(&values);
  EXPECT_NE(values, original);
}

TEST(RngTest, SampleIndicesDistinctAndInRange) {
  Rng rng(13);
  auto sample = rng.SampleIndices(100, 30);
  EXPECT_EQ(sample.size(), 30u);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (uint64_t v : sample) EXPECT_LT(v, 100u);
}

TEST(RngTest, SampleIndicesFullPopulation) {
  Rng rng(13);
  auto sample = rng.SampleIndices(10, 10);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 10u);
}

TEST(RngTest, SampleIndicesZero) {
  Rng rng(13);
  EXPECT_TRUE(rng.SampleIndices(10, 0).empty());
}

TEST(RngTest, ForkProducesIndependentStream) {
  Rng parent(17);
  Rng child = parent.Fork();
  // The child should not replay the parent's stream.
  Rng parent_copy(17);
  (void)parent_copy.Next();  // advance like the fork did
  int same = 0;
  for (int i = 0; i < 16; ++i) {
    if (child.Next() == parent_copy.Next()) ++same;
  }
  EXPECT_LT(same, 16);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t s1 = 42;
  uint64_t s2 = 42;
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(SplitMix64Next(&s1), SplitMix64Next(&s2));
  }
}

}  // namespace
}  // namespace edgeshed
