#include "core/shedding.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/random_shedding.h"
#include "testing/test_graphs.h"

namespace edgeshed::core {
namespace {

TEST(ValidatePreservationRatioTest, AcceptsInteriorValues) {
  EXPECT_TRUE(ValidatePreservationRatio(0.5).ok());
  EXPECT_TRUE(ValidatePreservationRatio(0.0001).ok());
  EXPECT_TRUE(ValidatePreservationRatio(0.9999).ok());
}

TEST(ValidatePreservationRatioTest, RejectsBoundariesAndOutside) {
  for (double p : {0.0, 1.0, -0.3, 1.7,
                   std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity()}) {
    EXPECT_EQ(ValidatePreservationRatio(p).code(),
              StatusCode::kInvalidArgument)
        << "p=" << p;
  }
}

TEST(ValidatePreservationRatioTest, RejectsNanExplicitly) {
  const Status status = ValidatePreservationRatio(std::nan(""));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("NaN"), std::string::npos);
}

TEST(TargetEdgeCountTest, RoundsHalfUp) {
  const graph::Graph g = testing::PaperExampleGraph();  // 11 edges
  EXPECT_EQ(TargetEdgeCount(g, 0.4), 4u);   // 4.4 -> 4
  EXPECT_EQ(TargetEdgeCount(g, 0.5), 6u);   // 5.5 -> 6
  EXPECT_EQ(TargetEdgeCount(g, 0.9), 10u);  // 9.9 -> 10
}

// Regression: round(p * |E|) < 0.5 used to produce an empty E', making
// every shedder degenerate on tiny graphs with perfectly valid p.
TEST(TargetEdgeCountTest, NeverZeroOnNonEmptyGraphs) {
  const graph::Graph tiny = testing::Path(4);  // 3 edges
  EXPECT_EQ(TargetEdgeCount(tiny, 0.1), 1u);   // round(0.3) would be 0
  EXPECT_EQ(TargetEdgeCount(tiny, 0.05), 1u);
  const graph::Graph single = testing::Path(2);  // 1 edge
  EXPECT_EQ(TargetEdgeCount(single, 0.01), 1u);
}

TEST(TargetEdgeCountTest, EmptyGraphStaysZero) {
  const graph::Graph empty = testing::MustBuild(5, {});
  EXPECT_EQ(TargetEdgeCount(empty, 0.5), 0u);
}

TEST(TargetEdgeCountTest, SheddersKeepAtLeastOneEdgeOnTinyGraphs) {
  const graph::Graph tiny = testing::Path(4);
  RandomShedding shedder(/*seed=*/1);
  auto result = shedder.Reduce(tiny, 0.1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kept_edges.size(), 1u);
}

}  // namespace
}  // namespace edgeshed::core
