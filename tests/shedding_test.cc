#include "core/shedding.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "core/random_shedding.h"
#include "testing/test_graphs.h"

namespace edgeshed::core {
namespace {

TEST(ValidatePreservationRatioTest, AcceptsInteriorValues) {
  EXPECT_TRUE(ValidatePreservationRatio(0.5).ok());
  EXPECT_TRUE(ValidatePreservationRatio(0.0001).ok());
  EXPECT_TRUE(ValidatePreservationRatio(0.9999).ok());
}

TEST(ValidatePreservationRatioTest, RejectsBoundariesAndOutside) {
  for (double p : {0.0, 1.0, -0.3, 1.7,
                   std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity()}) {
    EXPECT_EQ(ValidatePreservationRatio(p).code(),
              StatusCode::kInvalidArgument)
        << "p=" << p;
  }
}

TEST(ValidatePreservationRatioTest, RejectsNanExplicitly) {
  const Status status = ValidatePreservationRatio(std::nan(""));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("NaN"), std::string::npos);
}

TEST(TargetEdgeCountTest, RoundsHalfUp) {
  const graph::Graph g = testing::PaperExampleGraph();  // 11 edges
  EXPECT_EQ(TargetEdgeCount(g, 0.4), 4u);   // 4.4 -> 4
  EXPECT_EQ(TargetEdgeCount(g, 0.5), 6u);   // 5.5 -> 6
  EXPECT_EQ(TargetEdgeCount(g, 0.9), 10u);  // 9.9 -> 10
}

// Regression: round(p * |E|) < 0.5 used to produce an empty E', making
// every shedder degenerate on tiny graphs with perfectly valid p.
TEST(TargetEdgeCountTest, NeverZeroOnNonEmptyGraphs) {
  const graph::Graph tiny = testing::Path(4);  // 3 edges
  EXPECT_EQ(TargetEdgeCount(tiny, 0.1), 1u);   // round(0.3) would be 0
  EXPECT_EQ(TargetEdgeCount(tiny, 0.05), 1u);
  const graph::Graph single = testing::Path(2);  // 1 edge
  EXPECT_EQ(TargetEdgeCount(single, 0.01), 1u);
}

TEST(TargetEdgeCountTest, EmptyGraphStaysZero) {
  const graph::Graph empty = testing::MustBuild(5, {});
  EXPECT_EQ(TargetEdgeCount(empty, 0.5), 0u);
}

TEST(TargetEdgeCountTest, SheddersKeepAtLeastOneEdgeOnTinyGraphs) {
  const graph::Graph tiny = testing::Path(4);
  RandomShedding shedder(/*seed=*/1);
  auto result = shedder.Reduce(tiny, 0.1);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kept_edges.size(), 1u);
}

// ---------------------------------------------------------------------------
// ShedOptions (ISSUE 4 satellite): every shedder accepts the consolidated
// options struct through the virtual Shed; the legacy positional Reduce is a
// non-virtual shim that must behave identically.

TEST(ShedOptionsTest, ReduceDelegatesToShedWithDefaults) {
  const graph::Graph g = testing::Cycle(20);
  RandomShedding shedder(/*seed=*/7);
  auto via_reduce = shedder.Reduce(g, 0.5);
  ShedOptions options;
  options.p = 0.5;
  auto via_shed = shedder.Shed(g, options);
  ASSERT_TRUE(via_reduce.ok());
  ASSERT_TRUE(via_shed.ok());
  EXPECT_EQ(via_reduce->kept_edges, via_shed->kept_edges);
}

TEST(ShedOptionsTest, SeedOverrideChangesAndReproducesSelection) {
  const graph::Graph g = testing::Cycle(64);
  RandomShedding shedder(/*seed=*/7);
  ShedOptions options;
  options.p = 0.5;
  options.seed = 1234;
  auto a = shedder.Shed(g, options);
  auto b = shedder.Shed(g, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->kept_edges, b->kept_edges);  // deterministic given the seed

  ShedOptions other;
  other.p = 0.5;
  other.seed = 4321;
  auto c = shedder.Shed(g, other);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->kept_edges, c->kept_edges);  // the override is actually used

  // No override -> constructor seed, i.e. the plain Reduce result.
  ShedOptions unset;
  unset.p = 0.5;
  auto d = shedder.Shed(g, unset);
  auto e = shedder.Reduce(g, 0.5);
  ASSERT_TRUE(d.ok());
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(d->kept_edges, e->kept_edges);
}

TEST(ShedOptionsTest, CancellationFlowsThroughOptions) {
  const graph::Graph g = testing::Cycle(20);
  RandomShedding shedder(/*seed=*/7);
  CancellationToken token;
  token.Cancel();
  ShedOptions options;
  options.p = 0.5;
  options.cancel = &token;
  auto result = shedder.Shed(g, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled);
}

}  // namespace
}  // namespace edgeshed::core
