#include "common/parallel.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <random>
#include <string>
#include <utility>
#include <vector>

namespace edgeshed {
namespace {

TEST(ParallelSortTest, EmptyAndSingleElement) {
  std::vector<int> empty;
  ParallelSort(empty.begin(), empty.end());
  EXPECT_TRUE(empty.empty());

  std::vector<int> one = {42};
  ParallelSort(one.begin(), one.end(), std::less<int>(), /*threads=*/8);
  EXPECT_EQ(one, std::vector<int>({42}));
}

TEST(ParallelSortTest, AgreesWithStdSortOnRandomInput) {
  std::mt19937_64 gen(7);
  std::vector<uint64_t> values(200000);
  for (auto& v : values) v = gen();
  std::vector<uint64_t> expected = values;
  std::sort(expected.begin(), expected.end());
  for (int threads : {1, 2, 8}) {
    std::vector<uint64_t> got = values;
    ParallelSort(got.begin(), got.end(), std::less<uint64_t>(), threads);
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(ParallelSortTest, StableOnDuplicateHeavyInput) {
  // Only 4 distinct keys over 100k elements; stability requires the original
  // index order to survive within each key for every thread count.
  constexpr size_t kSize = 100000;
  std::mt19937_64 gen(11);
  std::vector<std::pair<int, size_t>> values(kSize);
  for (size_t i = 0; i < kSize; ++i) {
    values[i] = {static_cast<int>(gen() % 4), i};
  }
  auto by_key_only = [](const std::pair<int, size_t>& a,
                        const std::pair<int, size_t>& b) {
    return a.first < b.first;
  };
  std::vector<std::pair<int, size_t>> expected = values;
  std::stable_sort(expected.begin(), expected.end(), by_key_only);
  for (int threads : {1, 3, 8}) {
    std::vector<std::pair<int, size_t>> got = values;
    ParallelSort(got.begin(), got.end(), by_key_only, threads);
    EXPECT_EQ(got, expected) << "threads=" << threads;
  }
}

TEST(ParallelSortTest, CustomComparatorDescending) {
  std::vector<int> values(50000);
  std::iota(values.begin(), values.end(), 0);
  ParallelSort(values.begin(), values.end(), std::greater<int>(),
               /*threads=*/4);
  EXPECT_TRUE(std::is_sorted(values.begin(), values.end(),
                             std::greater<int>()));
  EXPECT_EQ(values.front(), 49999);
  EXPECT_EQ(values.back(), 0);
}

TEST(ParallelReduceTest, EmptyRangeReturnsIdentity) {
  const uint64_t result = ParallelReduce<uint64_t>(
      10, 10, 7,
      [](uint64_t, uint64_t) -> uint64_t { return 123; },
      [](uint64_t a, uint64_t b) { return a + b; });
  EXPECT_EQ(result, 7u);
}

TEST(ParallelReduceTest, SumMatchesClosedForm) {
  constexpr uint64_t kSize = 1 << 20;
  for (int threads : {1, 8}) {
    const uint64_t sum = ParallelReduce<uint64_t>(
        0, kSize, 0,
        [](uint64_t begin, uint64_t end) {
          uint64_t acc = 0;
          for (uint64_t i = begin; i < end; ++i) acc += i;
          return acc;
        },
        [](uint64_t a, uint64_t b) { return a + b; }, threads);
    EXPECT_EQ(sum, kSize * (kSize - 1) / 2) << "threads=" << threads;
  }
}

TEST(ParallelReduceTest, FloatingPointResultIsThreadCountInvariant) {
  // The chunk grid depends only on the range size and partials combine in
  // fixed order, so even a non-associative double sum is bit-identical.
  constexpr uint64_t kSize = 300000;
  auto run = [&](int threads) {
    return ParallelReduce<double>(
        0, kSize, 0.0,
        [](uint64_t begin, uint64_t end) {
          double acc = 0.0;
          for (uint64_t i = begin; i < end; ++i) {
            acc += 1.0 / static_cast<double>(i + 1);
          }
          return acc;
        },
        [](double a, double b) { return a + b; }, threads);
  };
  const double one_thread = run(1);
  const double eight_threads = run(8);
  EXPECT_EQ(one_thread, eight_threads);  // exact bit equality, not near
}

TEST(ParallelReduceTest, NonCommutativeCombinePreservesChunkOrder) {
  // Concatenation is associative but not commutative: the reduced string
  // must equal the serial left-to-right concatenation.
  constexpr uint64_t kSize = 200000;
  auto chunk_fn = [](uint64_t begin, uint64_t end) {
    std::string s;
    for (uint64_t i = begin; i < end; ++i) {
      s += static_cast<char>('a' + (i % 26));
    }
    return s;
  };
  std::string expected = chunk_fn(0, kSize);
  const std::string got = ParallelReduce<std::string>(
      0, kSize, std::string(), chunk_fn,
      [](std::string a, std::string b) { return std::move(a) + b; },
      /*threads=*/8);
  EXPECT_EQ(got, expected);
}

TEST(TemplatedParallelForTest, GrainOneDispatchesSmallRanges) {
  // grain=1 lets chunk-level work (a handful of coarse tasks) fan out
  // instead of collapsing to the inline fallback.
  std::vector<int> touched(8, 0);
  ParallelForEach(
      0, touched.size(), [&](uint64_t i) { touched[i]++; },
      /*threads=*/4, /*grain=*/1);
  for (size_t i = 0; i < touched.size(); ++i) {
    EXPECT_EQ(touched[i], 1) << "index " << i;
  }
}

}  // namespace
}  // namespace edgeshed
