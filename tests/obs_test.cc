// Tests for src/obs/: typed-instrument metrics, the span tracer (including
// the chrome://tracing golden rendering), the Prometheus exporter (golden
// exposition), and the embedded stats server — ending with an end-to-end
// check that a real CRR job through the service layer yields a coherent
// trace and valid /metrics over HTTP.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/prometheus.h"
#include "obs/stats_server.h"
#include "obs/tracer.h"
#include "service/graph_store.h"
#include "service/job_scheduler.h"
#include "testing/test_graphs.h"

namespace edgeshed::obs {
namespace {

using edgeshed::testing::Clique;

// ---------------------------------------------------------------------------
// Metrics: typed handles

TEST(ObsMetricsTest, HandlesAreStableAndSharedWithShims) {
  MetricsRegistry registry;
  Counter* hits = registry.GetCounter("hits");
  // Creating other instruments must not invalidate or move the handle.
  for (int i = 0; i < 100; ++i) {
    registry.GetCounter("other." + std::to_string(i));
  }
  EXPECT_EQ(registry.GetCounter("hits"), hits);

  hits->Increment(3);
  registry.IncrementCounter("hits", 2);  // string shim, same instrument
  EXPECT_EQ(hits->Value(), 5u);
  EXPECT_EQ(registry.CounterValue("hits"), 5u);

  Gauge* depth = registry.GetGauge("depth");
  registry.SetGauge("depth", 9);
  depth->Add(-2);
  EXPECT_EQ(registry.GaugeValue("depth"), 7);

  LatencySeries* lat = registry.GetLatency("lat");
  registry.RecordLatency("lat", 0.25);
  lat->Record(0.75);
  LatencySnapshot snapshot = registry.LatencyValue("lat");
  EXPECT_EQ(snapshot.count, 2u);
  EXPECT_DOUBLE_EQ(snapshot.sum_seconds, 1.0);
}

TEST(ObsMetricsTest, ReadsOfAbsentNamesDoNotCreateInstruments) {
  MetricsRegistry registry;
  EXPECT_EQ(registry.CounterValue("ghost"), 0u);
  EXPECT_EQ(registry.GaugeValue("ghost"), 0);
  EXPECT_EQ(registry.LatencyValue("ghost").count, 0u);
  EXPECT_TRUE(registry.CounterNames().empty());
  MetricsSnapshot snapshot = registry.Snapshot();
  EXPECT_TRUE(snapshot.counters.empty());
  EXPECT_TRUE(snapshot.gauges.empty());
  EXPECT_TRUE(snapshot.latencies.empty());
}

// Regression (ISSUE 4 satellite): an empty series must be explicit —
// count == 0, no fabricated min/max — and the first observation must define
// min and max exactly. The old representation defaulted min/max to 0.0,
// making "no data" indistinguishable from "observed zero".
TEST(ObsMetricsTest, EmptySeriesIsExplicitAndFirstObservationDefinesMinMax) {
  LatencySeries series;
  LatencySnapshot empty = series.Snapshot();
  EXPECT_EQ(empty.count, 0u);

  series.Record(0.125);
  LatencySnapshot one = series.Snapshot();
  EXPECT_EQ(one.count, 1u);
  EXPECT_DOUBLE_EQ(one.min_seconds, 0.125);
  EXPECT_DOUBLE_EQ(one.max_seconds, 0.125);
}

TEST(ObsMetricsTest, MergeOfEmptyAndNonEmptyEqualsNonEmpty) {
  LatencySnapshot filled;
  filled.count = 3;
  filled.sum_seconds = 0.6;
  filled.min_seconds = 0.1;
  filled.max_seconds = 0.3;

  LatencySnapshot merged;  // empty
  merged.Merge(filled);
  EXPECT_EQ(merged.count, 3u);
  EXPECT_DOUBLE_EQ(merged.min_seconds, 0.1);
  EXPECT_DOUBLE_EQ(merged.max_seconds, 0.3);

  // The other direction: folding an empty snapshot changes nothing.
  filled.Merge(LatencySnapshot{});
  EXPECT_EQ(filled.count, 3u);
  EXPECT_DOUBLE_EQ(filled.min_seconds, 0.1);

  LatencySnapshot other;
  other.count = 2;
  other.sum_seconds = 1.0;
  other.min_seconds = 0.05;
  other.max_seconds = 0.5;
  filled.Merge(other);
  EXPECT_EQ(filled.count, 5u);
  EXPECT_DOUBLE_EQ(filled.sum_seconds, 1.6);
  EXPECT_DOUBLE_EQ(filled.min_seconds, 0.05);
  EXPECT_DOUBLE_EQ(filled.max_seconds, 0.5);
}

TEST(ObsMetricsTest, BucketCountsMatchLatencyBucket) {
  LatencySeries series;
  series.Record(1024e-6);  // 2^10 us -> bucket 10
  series.Record(1500e-6);  // floor(log2(1500)) = 10
  series.Record(1e-9);     // sub-microsecond -> bucket 0
  std::vector<uint64_t> buckets = series.BucketCounts();
  ASSERT_EQ(buckets.size(), static_cast<size_t>(LatencySeries::kNumBuckets));
  EXPECT_EQ(buckets[10], 2u);
  EXPECT_EQ(buckets[0], 1u);
  EXPECT_EQ(LatencySeries::LatencyBucket(1024e-6), 10);
  EXPECT_EQ(LatencySeries::LatencyBucket(1e-9), 0);
}

// 8-thread hammer over typed handles and string shims together; run under
// TSan in CI. Totals must come out exact — instrument updates are atomic.
TEST(ObsMetricsTest, EightThreadHammerYieldsExactTotals) {
  MetricsRegistry registry;
  Counter* events = registry.GetCounter("hammer.events");
  Gauge* level = registry.GetGauge("hammer.level");
  LatencySeries* lat = registry.GetLatency("hammer.seconds");

  constexpr int kThreads = 8;
  constexpr int kIterations = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIterations; ++i) {
        events->Increment();
        level->Add(1);
        lat->Record(1e-6 * static_cast<double>(t + 1));
        if (i % 1000 == 0) {
          // Mixed-in shim traffic and snapshot reads from the same threads.
          registry.IncrementCounter("hammer.events", 0);
          LatencySnapshot snapshot = registry.LatencyValue("hammer.seconds");
          ASSERT_LE(snapshot.count,
                    static_cast<uint64_t>(kThreads) * kIterations);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(events->Value(), static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_EQ(level->Value(), static_cast<int64_t>(kThreads) * kIterations);
  LatencySnapshot snapshot = lat->Snapshot();
  EXPECT_EQ(snapshot.count, static_cast<uint64_t>(kThreads) * kIterations);
  EXPECT_DOUBLE_EQ(snapshot.min_seconds, 1e-6);
  EXPECT_DOUBLE_EQ(snapshot.max_seconds, 8e-6);
}

// ---------------------------------------------------------------------------
// Tracer

TEST(TracerTest, NullTracerSpansAreInert) {
  Span span = Tracer::StartSpan(nullptr, "noop");
  EXPECT_FALSE(span.ok());
  span.Annotate("k", "v");
  span.End();
  span.End();  // idempotent on inert spans too

  Span in_trace = Tracer::StartSpanInTrace(nullptr, "noop", 7, 3);
  EXPECT_FALSE(in_trace.ok());
}

TEST(TracerTest, AmbientNestingParentsChildSpans) {
  Tracer tracer;
  uint64_t outer_id = 0;
  uint64_t inner_id = 0;
  {
    Span outer = Tracer::StartSpan(&tracer, "outer");
    ASSERT_TRUE(outer.ok());
    outer_id = outer.span_id();
    {
      Span inner = Tracer::StartSpan(&tracer, "inner");
      inner_id = inner.span_id();
      EXPECT_EQ(inner.trace_id(), outer.trace_id());
    }
  }
  std::vector<SpanRecord> spans = tracer.Spans();
  ASSERT_EQ(spans.size(), 2u);
  const SpanRecord* outer = nullptr;
  const SpanRecord* inner = nullptr;
  for (const SpanRecord& span : spans) {
    if (span.span_id == outer_id) outer = &span;
    if (span.span_id == inner_id) inner = &span;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent_id, 0u);  // root
  EXPECT_EQ(inner->parent_id, outer_id);
  EXPECT_GE(inner->start_ns, outer->start_ns);
  EXPECT_GE(outer->duration_ns, inner->duration_ns);
}

TEST(TracerTest, StartSpanInTraceCrossesThreads) {
  Tracer tracer;
  const uint64_t trace_id = tracer.NewTraceId();
  const uint64_t parent_id = tracer.NewTraceId();
  std::thread worker([&] {
    Span span = Tracer::StartSpanInTrace(&tracer, "worker", trace_id,
                                         parent_id);
    span.Annotate("ok", "true");
  });
  worker.join();
  std::vector<SpanRecord> spans = tracer.TraceSpans(trace_id);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "worker");
  EXPECT_EQ(spans[0].parent_id, parent_id);
  ASSERT_EQ(spans[0].annotations.size(), 1u);
  EXPECT_EQ(spans[0].annotations[0].first, "ok");
}

TEST(TracerTest, RingBufferRetainsAtMostCapacity) {
  TracerOptions options;
  options.capacity = 16;
  options.stripes = 2;
  Tracer tracer(options);
  for (int i = 0; i < 100; ++i) {
    std::string name = "s";
    name += std::to_string(i);
    Span span = Tracer::StartSpan(&tracer, std::move(name));
  }
  std::vector<SpanRecord> spans = tracer.Spans();
  EXPECT_LE(spans.size(), 16u);
  EXPECT_FALSE(spans.empty());
  // This thread wrote to one stripe; the newest span must have survived.
  std::set<std::string> names;
  for (const SpanRecord& span : spans) names.insert(span.name);
  EXPECT_TRUE(names.count("s99") == 1);
}

TEST(TracerTest, TraceSpansFiltersOtherTraces) {
  Tracer tracer;
  Span a = Tracer::StartSpan(&tracer, "a");
  const uint64_t trace_a = a.trace_id();
  a.End();
  Span b = Tracer::StartSpan(&tracer, "b");
  b.End();
  std::vector<SpanRecord> spans = tracer.TraceSpans(trace_a);
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0].name, "a");
}

// Golden rendering: hand-built records with fixed timestamps so the JSON is
// byte-stable. Field order (name, cat, ph, ts, dur, pid, tid, id, args) is
// part of the exporter's contract.
TEST(TracerTest, GoldenTraceEventJson) {
  SpanRecord root;
  root.trace_id = 1;
  root.span_id = 2;
  root.parent_id = 0;
  root.name = "job";
  root.start_ns = 1500;
  root.duration_ns = 2000000;
  root.tid = 0;
  root.annotations = {{"dataset", "grqc"}, {"method", "crr"}};

  SpanRecord child;
  child.trace_id = 1;
  child.span_id = 3;
  child.parent_id = 2;
  child.name = "run \"p2\"";  // exercises JSON escaping
  child.start_ns = 2500;
  child.duration_ns = 1000000;
  child.tid = 1;

  const std::string json = Tracer::TraceEventJson({root, child});
  EXPECT_EQ(
      json,
      R"({"traceEvents":[)"
      R"({"name":"job","cat":"edgeshed","ph":"X","ts":1.500,"dur":2000.000,)"
      R"("pid":1,"tid":0,"id":"1","args":{"span_id":"2","parent_id":"0",)"
      R"("dataset":"grqc","method":"crr"}},)"
      R"({"name":"run \"p2\"","cat":"edgeshed","ph":"X","ts":2.500,)"
      R"("dur":1000.000,"pid":1,"tid":1,"id":"1","args":{"span_id":"3",)"
      R"("parent_id":"2"}}]})");
}

// ---------------------------------------------------------------------------
// Prometheus exporter

// Golden exposition over one counter, one gauge (with a sanitized name), an
// empty latency series, and a populated one. Byte-exact by construction:
// MetricsSnapshot is sorted and the renderer's field order is fixed.
TEST(PrometheusTest, GoldenExposition) {
  MetricsRegistry registry;
  registry.GetCounter("scheduler.jobs_done")->Increment(3);
  registry.GetGauge("store.bytes-resident")->Set(1024);
  registry.GetLatency("idle.seconds");  // registered, never recorded
  LatencySeries* run = registry.GetLatency("run.seconds");
  run->Record(0.001);  // 1000 us -> bucket 9, upper bound 0.001024s
  run->Record(0.004);  // 4000 us -> bucket 11, upper bound 0.004096s

  EXPECT_EQ(PrometheusText(registry),
            "# TYPE edgeshed_scheduler_jobs_done_total counter\n"
            "edgeshed_scheduler_jobs_done_total 3\n"
            "# TYPE edgeshed_store_bytes_resident gauge\n"
            "edgeshed_store_bytes_resident 1024\n"
            "# TYPE edgeshed_idle_seconds histogram\n"
            "edgeshed_idle_seconds_bucket{le=\"+Inf\"} 0\n"
            "edgeshed_idle_seconds_sum 0\n"
            "edgeshed_idle_seconds_count 0\n"
            "# TYPE edgeshed_run_seconds histogram\n"
            "edgeshed_run_seconds_bucket{le=\"0.001024\"} 1\n"
            "edgeshed_run_seconds_bucket{le=\"0.004096\"} 2\n"
            "edgeshed_run_seconds_bucket{le=\"+Inf\"} 2\n"
            "edgeshed_run_seconds_sum 0.005\n"
            "edgeshed_run_seconds_count 2\n"
            "# TYPE edgeshed_run_seconds_min_seconds gauge\n"
            "edgeshed_run_seconds_min_seconds 0.001\n"
            "# TYPE edgeshed_run_seconds_max_seconds gauge\n"
            "edgeshed_run_seconds_max_seconds 0.004\n");
}

TEST(PrometheusTest, EmptyRegistryRendersEmpty) {
  MetricsRegistry registry;
  EXPECT_EQ(PrometheusText(registry), "");
}

TEST(PrometheusTest, BucketsAreCumulative) {
  MetricsRegistry registry;
  LatencySeries* series = registry.GetLatency("s");
  for (int i = 0; i < 5; ++i) series->Record(2e-6);   // bucket 1
  for (int i = 0; i < 3; ++i) series->Record(32e-6);  // bucket 5
  const std::string text = PrometheusText(registry);
  EXPECT_NE(text.find("edgeshed_s_bucket{le=\"4e-06\"} 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("edgeshed_s_bucket{le=\"6.4e-05\"} 8\n"),
            std::string::npos);
  EXPECT_NE(text.find("edgeshed_s_bucket{le=\"+Inf\"} 8\n"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// Stats server

/// Blocking one-shot HTTP GET against 127.0.0.1:`port`; returns the raw
/// response (headers + body). Small enough to not need a client library.
std::string HttpGet(int port, const std::string& request_line) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);
  const std::string request = request_line + "\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, request.data(), request.size(), 0),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buffer[4096];
  ssize_t n = 0;
  while ((n = ::recv(fd, buffer, sizeof(buffer), 0)) > 0) {
    response.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return response;
}

std::string Body(const std::string& response) {
  const size_t split = response.find("\r\n\r\n");
  return split == std::string::npos ? "" : response.substr(split + 4);
}

TEST(StatsServerTest, ServesHandlersHealthzAndErrors) {
  StatsServer server;  // port 0 = ephemeral
  std::atomic<int> calls{0};
  server.Handle("/custom", [&calls] {
    ++calls;
    return HttpResponse{200, "text/plain", "hello"};
  });
  ASSERT_TRUE(server.Start().ok());
  ASSERT_GT(server.port(), 0);

  const std::string custom = HttpGet(server.port(), "GET /custom HTTP/1.1");
  EXPECT_NE(custom.find("200"), std::string::npos);
  EXPECT_EQ(Body(custom), "hello");
  EXPECT_EQ(calls.load(), 1);

  // Query strings are stripped before dispatch.
  EXPECT_EQ(Body(HttpGet(server.port(), "GET /custom?x=1 HTTP/1.1")),
            "hello");

  EXPECT_EQ(Body(HttpGet(server.port(), "GET /healthz HTTP/1.1")), "ok\n");
  EXPECT_NE(HttpGet(server.port(), "GET /nope HTTP/1.1").find("404"),
            std::string::npos);
  EXPECT_NE(HttpGet(server.port(), "POST /custom HTTP/1.1").find("405"),
            std::string::npos);
  server.Stop();
  server.Stop();  // idempotent
}

TEST(StatsServerTest, StartFailsOnTakenPort) {
  StatsServer first;
  ASSERT_TRUE(first.Start().ok());
  StatsServerOptions options;
  options.port = first.port();
  StatsServer second(options);
  EXPECT_FALSE(second.Start().ok());
}

// End-to-end: a real CRR job through GraphStore + JobScheduler with a live
// tracer, served over HTTP. One job must yield one coherent trace — root
// "job" span plus queued/run/store.load children — and /metrics must carry
// the scheduler counters in Prometheus form.
TEST(StatsServerTest, RealJobYieldsMetricsAndTraceOverHttp) {
  Tracer tracer;
  MetricsRegistry metrics;
  service::GraphStore store({}, &metrics, &tracer);
  ASSERT_TRUE(store
                  .Register("clique",
                            []() -> StatusOr<graph::Graph> {
                              return Clique(24);
                            })
                  .ok());
  service::JobScheduler scheduler(&store, &metrics, {}, &tracer);

  service::JobSpec spec;
  spec.dataset = "clique";
  spec.method = "crr";
  spec.p = 0.5;
  auto id = scheduler.Submit(spec);
  ASSERT_TRUE(id.ok());
  auto result = scheduler.Wait(*id);
  ASSERT_TRUE(result.ok());

  StatsServer server;
  server.Handle("/metrics", [&metrics] {
    return HttpResponse{200, "text/plain; version=0.0.4; charset=utf-8",
                        PrometheusText(metrics)};
  });
  server.Handle("/tracez", [&tracer] {
    return HttpResponse{200, "application/json; charset=utf-8",
                        tracer.TraceEventJson()};
  });
  ASSERT_TRUE(server.Start().ok());

  const std::string exposition =
      Body(HttpGet(server.port(), "GET /metrics HTTP/1.1"));
  EXPECT_NE(exposition.find("edgeshed_scheduler_jobs_done_total 1\n"),
            std::string::npos);
  EXPECT_NE(exposition.find("edgeshed_store_miss_total 1\n"),
            std::string::npos);
  EXPECT_NE(
      exposition.find("# TYPE edgeshed_scheduler_run_seconds histogram\n"),
      std::string::npos);
  EXPECT_NE(exposition.find("edgeshed_scheduler_run_seconds_count 1\n"),
            std::string::npos);

  const std::string trace =
      Body(HttpGet(server.port(), "GET /tracez HTTP/1.1"));
  EXPECT_EQ(trace.rfind("{\"traceEvents\":[", 0), 0u);
  EXPECT_EQ(trace.substr(trace.size() - 2), "]}");
  for (const char* name : {"\"name\":\"job\"", "\"name\":\"queued\"",
                           "\"name\":\"run\"", "\"name\":\"store.load\""}) {
    EXPECT_NE(trace.find(name), std::string::npos) << name;
  }
  EXPECT_NE(trace.find("\"dataset\":\"clique\""), std::string::npos);
  EXPECT_NE(trace.find("\"method\":\"crr\""), std::string::npos);

  // One coherent trace: every span of the job's trace id shares it, and the
  // run/queued spans parent onto the root job span.
  std::vector<SpanRecord> spans = tracer.Spans();
  uint64_t trace_id = 0;
  uint64_t root_id = 0;
  for (const SpanRecord& span : spans) {
    if (span.name == "job") {
      trace_id = span.trace_id;
      root_id = span.span_id;
    }
  }
  ASSERT_NE(trace_id, 0u);
  std::set<std::string> in_trace;
  for (const SpanRecord& span : tracer.TraceSpans(trace_id)) {
    in_trace.insert(span.name);
    if (span.name == "queued" || span.name == "run") {
      EXPECT_EQ(span.parent_id, root_id) << span.name;
    }
  }
  EXPECT_TRUE(in_trace.count("job") == 1);
  EXPECT_TRUE(in_trace.count("queued") == 1);
  EXPECT_TRUE(in_trace.count("run") == 1);
  EXPECT_TRUE(in_trace.count("store.load") == 1);
}

}  // namespace
}  // namespace edgeshed::obs
