// Tests for src/dist/partitioner.h and src/dist/shard.h: the streaming edge
// partitioners' contracts (single ownership, load balance, bounded
// replication, determinism across thread counts and runs, K=1 identity),
// shard materialization in local id space, the local->global edge maps the
// merge stage leans on, and the largest-remainder budget apportionment.

#include <algorithm>
#include <cstdint>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "core/shedding.h"
#include "dist/partitioner.h"
#include "dist/shard.h"
#include "graph/datasets.h"
#include "testing/test_graphs.h"

namespace edgeshed::dist {
namespace {

using edgeshed::testing::Clique;
using edgeshed::testing::Path;
using edgeshed::testing::Star;

/// A realistically skewed graph: the ca-GrQc surrogate at 30% scale
/// (thousands of edges, heavy-tailed degrees) — small enough for tests,
/// large enough that balance/replication statistics are meaningful.
graph::Graph SkewedGraph() {
  graph::DatasetOptions options;
  options.scale = 0.3;
  return graph::MakeDataset(graph::DatasetId::kCaGrQc, options);
}

EdgePartitionOptions Options(PartitionerKind kind, int shards,
                             int threads = 0) {
  EdgePartitionOptions options;
  options.kind = kind;
  options.shards = shards;
  options.threads = threads;
  return options;
}

// ---------------------------------------------------------------------------
// Parsing

TEST(ParsePartitionerKindTest, RoundTripsAllKinds) {
  for (PartitionerKind kind :
       {PartitionerKind::kHash, PartitionerKind::kDbh, PartitionerKind::kHdrf}) {
    auto parsed = ParsePartitionerKind(PartitionerKindToString(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
}

TEST(ParsePartitionerKindTest, RejectsUnknownName) {
  EXPECT_EQ(ParsePartitionerKind("metis").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParsePartitionerKind("").status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Core partition contracts, all three kinds

class AllPartitionersTest
    : public ::testing::TestWithParam<PartitionerKind> {};

INSTANTIATE_TEST_SUITE_P(Kinds, AllPartitionersTest,
                         ::testing::Values(PartitionerKind::kHash,
                                           PartitionerKind::kDbh,
                                           PartitionerKind::kHdrf),
                         [](const auto& info) {
                           return std::string(
                               PartitionerKindToString(info.param));
                         });

TEST_P(AllPartitionersTest, AssignsEveryEdgeToExactlyOneShard) {
  const graph::Graph g = SkewedGraph();
  const int k = 4;
  auto partition = PartitionEdges(g, Options(GetParam(), k));
  ASSERT_TRUE(partition.ok());
  ASSERT_EQ(partition->shard_of_edge.size(), g.NumEdges());
  for (uint32_t shard : partition->shard_of_edge) {
    ASSERT_LT(shard, static_cast<uint32_t>(k));
  }
  const PartitionStats stats = ComputePartitionStats(g, *partition);
  EXPECT_EQ(std::accumulate(stats.shard_edges.begin(),
                            stats.shard_edges.end(), uint64_t{0}),
            g.NumEdges());
}

TEST_P(AllPartitionersTest, BalanceFactorIsBounded) {
  const graph::Graph g = SkewedGraph();
  for (int k : {2, 4}) {
    auto partition = PartitionEdges(g, Options(GetParam(), k));
    ASSERT_TRUE(partition.ok());
    const PartitionStats stats = ComputePartitionStats(g, *partition);
    // Hash/DBH balance by uniform hashing over thousands of edges; HDRF
    // balances explicitly via its λ term. 1.25 is loose for all three.
    EXPECT_GE(stats.balance_factor, 1.0);
    EXPECT_LT(stats.balance_factor, 1.25)
        << PartitionerKindToString(GetParam()) << " K=" << k;
  }
}

TEST_P(AllPartitionersTest, ReplicationFactorIsBounded) {
  const graph::Graph g = SkewedGraph();
  const int k = 4;
  auto partition = PartitionEdges(g, Options(GetParam(), k));
  ASSERT_TRUE(partition.ok());
  const PartitionStats stats = ComputePartitionStats(g, *partition);
  // Average copies per touched vertex: at least one, at most one per shard.
  EXPECT_GE(stats.replication_factor, 1.0);
  EXPECT_LE(stats.replication_factor, static_cast<double>(k));
  EXPECT_LE(stats.cut_vertices, g.NumNodes());
}

TEST_P(AllPartitionersTest, SingleShardIsIdentity) {
  const graph::Graph g = SkewedGraph();
  auto partition = PartitionEdges(g, Options(GetParam(), 1));
  ASSERT_TRUE(partition.ok());
  EXPECT_EQ(partition->num_shards, 1);
  for (uint32_t shard : partition->shard_of_edge) EXPECT_EQ(shard, 0u);
}

TEST_P(AllPartitionersTest, DeterministicAcrossRuns) {
  const graph::Graph g = SkewedGraph();
  auto first = PartitionEdges(g, Options(GetParam(), 4));
  auto second = PartitionEdges(g, Options(GetParam(), 4));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->shard_of_edge, second->shard_of_edge);
}

TEST_P(AllPartitionersTest, RejectsInvalidShardCount) {
  const graph::Graph g = Path(4);
  EXPECT_EQ(PartitionEdges(g, Options(GetParam(), 0)).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(PartitionEdges(g, Options(GetParam(), -2)).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PartitionerTest, StatelessKindsAreBitIdenticalAcrossThreadCounts) {
  const graph::Graph g = SkewedGraph();
  for (PartitionerKind kind : {PartitionerKind::kHash, PartitionerKind::kDbh}) {
    auto serial = PartitionEdges(g, Options(kind, 4, /*threads=*/1));
    auto parallel = PartitionEdges(g, Options(kind, 4, /*threads=*/8));
    ASSERT_TRUE(serial.ok());
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(serial->shard_of_edge, parallel->shard_of_edge)
        << PartitionerKindToString(kind);
  }
}

TEST(PartitionerTest, SeedDecorrelatesHashAssignments) {
  const graph::Graph g = SkewedGraph();
  EdgePartitionOptions a = Options(PartitionerKind::kHash, 4);
  EdgePartitionOptions b = a;
  b.seed = a.seed + 1;
  auto pa = PartitionEdges(g, a);
  auto pb = PartitionEdges(g, b);
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  EXPECT_NE(pa->shard_of_edge, pb->shard_of_edge);
}

TEST(PartitionerTest, HdrfRejectsNonPositiveLambda) {
  EdgePartitionOptions options = Options(PartitionerKind::kHdrf, 2);
  options.hdrf_lambda = 0.0;
  EXPECT_EQ(PartitionEdges(Path(4), options).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PartitionerTest, HdrfCutsTheHubOnAStar) {
  // On a star every edge shares the center: HDRF must replicate the hub
  // across shards (cut_vertices == 1) while every leaf stays whole.
  const graph::Graph g = Star(64);
  auto partition = PartitionEdges(g, Options(PartitionerKind::kHdrf, 4));
  ASSERT_TRUE(partition.ok());
  const PartitionStats stats = ComputePartitionStats(g, *partition);
  EXPECT_EQ(stats.cut_vertices, 1u);
  // A star is HDRF's pathological input: the hub-affinity term holds edges
  // in the first shard until the balance term overtakes it, so the bound
  // here is looser than the general-graph 1.25 asserted elsewhere.
  EXPECT_LT(stats.balance_factor, 1.5);
}

// ---------------------------------------------------------------------------
// Shards and the local<->global maps

TEST(ShardTest, SingleShardIsTheIdentityOverTheFullVertexSet) {
  // An isolated vertex (id 5 in a 6-node path-of-5) must survive the K=1
  // round trip so a one-shard fleet matches single-node shedding exactly.
  const graph::Graph g = edgeshed::testing::MustBuild(
      6, {{0, 1}, {1, 2}, {2, 3}, {3, 4}});
  auto partition = PartitionEdges(g, Options(PartitionerKind::kHash, 1));
  ASSERT_TRUE(partition.ok());
  auto shards = BuildShards(g, *partition);
  ASSERT_TRUE(shards.ok());
  ASSERT_EQ(shards->size(), 1u);
  const Shard& shard = (*shards)[0];
  EXPECT_EQ(shard.graph.NumNodes(), g.NumNodes());
  EXPECT_EQ(shard.graph.NumEdges(), g.NumEdges());
  for (graph::NodeId u = 0; u < g.NumNodes(); ++u) {
    EXPECT_EQ(shard.to_global[u], u);
  }
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_EQ(shard.global_edge_ids[e], e);
  }
}

TEST(ShardTest, ShardsPartitionTheEdgeSetWithMonotoneMaps) {
  const graph::Graph g = SkewedGraph();
  auto partition = PartitionEdges(g, Options(PartitionerKind::kHdrf, 4));
  ASSERT_TRUE(partition.ok());
  auto shards = BuildShards(g, *partition);
  ASSERT_TRUE(shards.ok());
  ASSERT_EQ(shards->size(), 4u);

  std::vector<graph::EdgeId> all_edges;
  for (const Shard& shard : *shards) {
    ASSERT_TRUE(std::is_sorted(shard.to_global.begin(),
                               shard.to_global.end()));
    ASSERT_TRUE(std::is_sorted(shard.global_edge_ids.begin(),
                               shard.global_edge_ids.end()));
    ASSERT_EQ(shard.global_edge_ids.size(), shard.graph.NumEdges());
    // Each local edge maps to the canonical global edge it came from.
    const auto edges = shard.graph.edges();
    for (graph::EdgeId e = 0; e < shard.graph.NumEdges(); ++e) {
      const graph::Edge global = g.edges()[shard.global_edge_ids[e]];
      EXPECT_EQ(shard.to_global[edges[e].u], global.u);
      EXPECT_EQ(shard.to_global[edges[e].v], global.v);
    }
    all_edges.insert(all_edges.end(), shard.global_edge_ids.begin(),
                     shard.global_edge_ids.end());
  }
  // Exact single-ownership cover of the parent edge set.
  std::sort(all_edges.begin(), all_edges.end());
  ASSERT_EQ(all_edges.size(), g.NumEdges());
  for (graph::EdgeId e = 0; e < g.NumEdges(); ++e) {
    EXPECT_EQ(all_edges[e], e);
  }
}

TEST(ShardTest, MapLocalEdgesToGlobalRoundTrips) {
  const graph::Graph g = Clique(12);
  auto partition = PartitionEdges(g, Options(PartitionerKind::kDbh, 3));
  ASSERT_TRUE(partition.ok());
  auto shards = BuildShards(g, *partition);
  ASSERT_TRUE(shards.ok());
  for (const Shard& shard : *shards) {
    std::vector<graph::EdgeId> locals(shard.graph.NumEdges());
    std::iota(locals.begin(), locals.end(), 0);
    EXPECT_EQ(MapLocalEdgesToGlobal(shard, locals), shard.global_edge_ids);
  }
}

TEST(ShardTest, MapKeptSubgraphToGlobalMapsAKeptSubset) {
  const graph::Graph g = Clique(12);
  auto partition = PartitionEdges(g, Options(PartitionerKind::kHash, 3));
  ASSERT_TRUE(partition.ok());
  auto shards = BuildShards(g, *partition);
  ASSERT_TRUE(shards.ok());
  const Shard& shard = (*shards)[0];
  ASSERT_GE(shard.graph.NumEdges(), 4u);
  // Keep every other local edge, materialize the subgraph (as a worker
  // would), and map it back: expect exactly those global ids.
  std::vector<graph::EdgeId> keep;
  for (graph::EdgeId e = 0; e < shard.graph.NumEdges(); e += 2) {
    keep.push_back(e);
  }
  const graph::Graph kept = graph::SubgraphFromEdgeIds(shard.graph, keep);
  auto mapped = MapKeptSubgraphToGlobal(shard, kept);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(*mapped, MapLocalEdgesToGlobal(shard, keep));
}

TEST(ShardTest, MapKeptSubgraphRejectsForeignEdgesAndWrongNodeCount) {
  const graph::Graph g = Path(6);  // edges 0-1,1-2,2-3,3-4,4-5
  EdgePartition partition;
  partition.num_shards = 2;
  partition.shard_of_edge = {0, 0, 1, 1, 1};
  auto shards = BuildShards(g, partition);
  ASSERT_TRUE(shards.ok());
  const Shard& shard = (*shards)[0];  // nodes {0,1,2}, edges 0-1, 1-2

  // Wrong node count: a snapshot of some other graph.
  EXPECT_EQ(MapKeptSubgraphToGlobal(shard, Path(5)).status().code(),
            StatusCode::kInvalidArgument);
  // Right node count, but an edge the shard does not own (0-2).
  const graph::Graph foreign =
      edgeshed::testing::MustBuild(3, {{0, 2}});
  EXPECT_EQ(MapKeptSubgraphToGlobal(shard, foreign).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Budget apportionment (core::ApportionEdgeBudget)

TEST(ApportionEdgeBudgetTest, SumsExactlyToTargetProportionally) {
  const std::vector<uint64_t> shards = {1000, 500, 250, 250};
  const auto targets = core::ApportionEdgeBudget(1000, shards);
  ASSERT_EQ(targets.size(), shards.size());
  EXPECT_EQ(std::accumulate(targets.begin(), targets.end(), uint64_t{0}),
            1000u);
  EXPECT_EQ(targets[0], 500u);
  EXPECT_EQ(targets[1], 250u);
  EXPECT_EQ(targets[2], 125u);
  EXPECT_EQ(targets[3], 125u);
}

TEST(ApportionEdgeBudgetTest, RemainderSeatsBreakTiesTowardLowerIndex) {
  // 10 over {6,6,6}: quotas 3.33.. each, one remainder seat -> shard 0.
  const auto targets = core::ApportionEdgeBudget(10, {6, 6, 6});
  EXPECT_EQ(targets, (std::vector<uint64_t>{4, 3, 3}));
}

TEST(ApportionEdgeBudgetTest, NeverExceedsShardCapacity) {
  // Proportional quota for the big shard exceeds nothing, but an uneven
  // split {9, 1} with target 9 gives shard 1 a fractional quota; its seat
  // must not push it past capacity 1.
  const auto targets = core::ApportionEdgeBudget(9, {9, 1});
  EXPECT_LE(targets[0], 9u);
  EXPECT_LE(targets[1], 1u);
  EXPECT_EQ(targets[0] + targets[1], 9u);
}

TEST(ApportionEdgeBudgetTest, InfeasibleTargetClampsToTotal) {
  const auto targets = core::ApportionEdgeBudget(100, {10, 20});
  EXPECT_EQ(targets, (std::vector<uint64_t>{10, 20}));
}

TEST(ApportionEdgeBudgetTest, ZeroTargetAndEmptyShards) {
  EXPECT_EQ(core::ApportionEdgeBudget(0, {5, 5}),
            (std::vector<uint64_t>{0, 0}));
  EXPECT_EQ(core::ApportionEdgeBudget(7, {0, 7, 0}),
            (std::vector<uint64_t>{0, 7, 0}));
  EXPECT_TRUE(core::ApportionEdgeBudget(3, {}).empty());
}

TEST(ApportionEdgeBudgetTest, ExactOnRealisticSkewedSizes) {
  const graph::Graph g = SkewedGraph();
  auto partition = PartitionEdges(g, Options(PartitionerKind::kHdrf, 4));
  ASSERT_TRUE(partition.ok());
  const PartitionStats stats = ComputePartitionStats(g, *partition);
  const uint64_t target = g.NumEdges() / 2;
  const auto targets = core::ApportionEdgeBudget(target, stats.shard_edges);
  EXPECT_EQ(std::accumulate(targets.begin(), targets.end(), uint64_t{0}),
            target);
  for (size_t i = 0; i < targets.size(); ++i) {
    EXPECT_LE(targets[i], stats.shard_edges[i]);
  }
}

}  // namespace
}  // namespace edgeshed::dist
