#include "embedding/kmeans.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace edgeshed::embedding {
namespace {

/// Three well-separated 2-D blobs of `per_blob` points each.
std::vector<float> MakeBlobs(int per_blob, Rng& rng) {
  std::vector<float> data;
  const float centers[3][2] = {{0.f, 0.f}, {10.f, 10.f}, {-10.f, 10.f}};
  for (int blob = 0; blob < 3; ++blob) {
    for (int i = 0; i < per_blob; ++i) {
      data.push_back(centers[blob][0] +
                     static_cast<float>(rng.UniformDouble()) - 0.5f);
      data.push_back(centers[blob][1] +
                     static_cast<float>(rng.UniformDouble()) - 0.5f);
    }
  }
  return data;
}

TEST(KMeansTest, RecoversSeparatedBlobs) {
  Rng rng(91);
  const int per_blob = 50;
  auto data = MakeBlobs(per_blob, rng);
  KMeansOptions options;
  options.clusters = 3;
  auto result = KMeans(data, 3 * per_blob, 2, options);
  // All points in a blob share a label, and the three labels differ.
  for (int blob = 0; blob < 3; ++blob) {
    uint32_t label = result.assignment[blob * per_blob];
    for (int i = 1; i < per_blob; ++i) {
      EXPECT_EQ(result.assignment[blob * per_blob + i], label);
    }
  }
  EXPECT_NE(result.assignment[0], result.assignment[per_blob]);
  EXPECT_NE(result.assignment[0], result.assignment[2 * per_blob]);
  EXPECT_NE(result.assignment[per_blob], result.assignment[2 * per_blob]);
}

TEST(KMeansTest, InertiaIsLowForTightBlobs) {
  Rng rng(92);
  auto data = MakeBlobs(30, rng);
  KMeansOptions options;
  options.clusters = 3;
  auto result = KMeans(data, 90, 2, options);
  // Each point is within ~0.7 of its blob center.
  EXPECT_LT(result.inertia / 90.0, 1.0);
}

TEST(KMeansTest, MoreClustersNeverIncreaseInertia) {
  Rng rng(93);
  auto data = MakeBlobs(40, rng);
  KMeansOptions k3;
  k3.clusters = 3;
  KMeansOptions k6;
  k6.clusters = 6;
  auto r3 = KMeans(data, 120, 2, k3);
  auto r6 = KMeans(data, 120, 2, k6);
  EXPECT_LE(r6.inertia, r3.inertia * 1.05);  // small slack for local optima
}

TEST(KMeansTest, KLargerThanPoints) {
  std::vector<float> data{0.f, 0.f, 1.f, 1.f};
  KMeansOptions options;
  options.clusters = 10;
  auto result = KMeans(data, 2, 2, options);
  EXPECT_EQ(result.assignment.size(), 2u);
  for (uint32_t label : result.assignment) EXPECT_LT(label, 2u);
}

TEST(KMeansTest, EmptyInput) {
  auto result = KMeans({}, 0, 2);
  EXPECT_TRUE(result.assignment.empty());
}

TEST(KMeansTest, SinglePoint) {
  std::vector<float> data{3.f, 4.f};
  KMeansOptions options;
  options.clusters = 1;
  auto result = KMeans(data, 1, 2, options);
  EXPECT_EQ(result.assignment[0], 0u);
  EXPECT_FLOAT_EQ(result.centroids[0], 3.f);
  EXPECT_FLOAT_EQ(result.centroids[1], 4.f);
}

TEST(KMeansTest, DeterministicGivenSeed) {
  Rng rng(94);
  auto data = MakeBlobs(20, rng);
  auto a = KMeans(data, 60, 2);
  auto b = KMeans(data, 60, 2);
  EXPECT_EQ(a.assignment, b.assignment);
}

TEST(KMeansTest, IdenticalPointsOneCluster) {
  std::vector<float> data(20, 5.0f);  // 10 identical 2-D points
  KMeansOptions options;
  options.clusters = 3;
  auto result = KMeans(data, 10, 2, options);
  EXPECT_NEAR(result.inertia, 0.0, 1e-9);
}

TEST(KMeansTest, AssignmentLabelsAreInRange) {
  Rng rng(95);
  auto data = MakeBlobs(25, rng);
  KMeansOptions options;
  options.clusters = 5;
  auto result = KMeans(data, 75, 2, options);
  for (uint32_t label : result.assignment) EXPECT_LT(label, 5u);
}

TEST(KMeansTest, IterationsBounded) {
  Rng rng(96);
  auto data = MakeBlobs(30, rng);
  KMeansOptions options;
  options.clusters = 3;
  options.max_iterations = 2;
  auto result = KMeans(data, 90, 2, options);
  EXPECT_LE(result.iterations, 2u);
}

}  // namespace
}  // namespace edgeshed::embedding
