#include "graph/binary_io.h"

#include <gtest/gtest.h>

#include <fstream>

#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::graph {
namespace {

using ::edgeshed::testing::PaperExampleGraph;

class BinaryIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }
};

TEST_F(BinaryIoTest, RoundTripPreservesEverything) {
  auto g = PaperExampleGraph();
  const std::string path = TempPath("paper.esg");
  ASSERT_TRUE(SaveBinaryGraph(g, path).ok());
  auto loaded = LoadBinaryGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumNodes(), g.NumNodes());
  EXPECT_EQ(loaded->edges(), g.edges());
}

TEST_F(BinaryIoTest, RoundTripKeepsIsolatedVertices) {
  auto g = edgeshed::testing::MustBuild(10, {{0, 1}});
  const std::string path = TempPath("isolated.esg");
  ASSERT_TRUE(SaveBinaryGraph(g, path).ok());
  auto loaded = LoadBinaryGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumNodes(), 10u);  // unlike text edge lists
}

TEST_F(BinaryIoTest, RoundTripLargeRandomGraph) {
  Rng rng(9);
  Graph g = ErdosRenyi(2000, 8000, rng);
  const std::string path = TempPath("large.esg");
  ASSERT_TRUE(SaveBinaryGraph(g, path).ok());
  auto loaded = LoadBinaryGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->edges(), g.edges());
}

TEST_F(BinaryIoTest, EmptyGraphRoundTrip) {
  Graph g;
  const std::string path = TempPath("empty.esg");
  ASSERT_TRUE(SaveBinaryGraph(g, path).ok());
  auto loaded = LoadBinaryGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumNodes(), 0u);
  EXPECT_EQ(loaded->NumEdges(), 0u);
}

TEST_F(BinaryIoTest, MissingFileIsIOError) {
  auto loaded = LoadBinaryGraph(TempPath("missing.esg"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(BinaryIoTest, WrongMagicRejected) {
  const std::string path = TempPath("bad_magic.esg");
  std::ofstream(path) << "definitely not a graph file, sorry";
  auto loaded = LoadBinaryGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BinaryIoTest, TruncatedFileRejected) {
  auto g = PaperExampleGraph();
  const std::string path = TempPath("trunc.esg");
  ASSERT_TRUE(SaveBinaryGraph(g, path).ok());
  // Chop off the last 6 bytes.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<long>(bytes.size() - 6));
  out.close();
  auto loaded = LoadBinaryGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BinaryIoTest, SaveToBadPathFails) {
  auto g = PaperExampleGraph();
  EXPECT_FALSE(SaveBinaryGraph(g, "/no_such_dir_xyz/g.esg").ok());
}

}  // namespace
}  // namespace edgeshed::graph
