#include "graph/binary_io.h"

#include <gtest/gtest.h>

#include <fstream>

#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::graph {
namespace {

using ::edgeshed::testing::PaperExampleGraph;

class BinaryIoTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    return ::testing::TempDir() + "/" + name;
  }
};

TEST_F(BinaryIoTest, RoundTripPreservesEverything) {
  auto g = PaperExampleGraph();
  const std::string path = TempPath("paper.esg");
  ASSERT_TRUE(SaveBinaryGraph(g, path).ok());
  auto loaded = LoadBinaryGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumNodes(), g.NumNodes());
  EXPECT_EQ(loaded->edges(), g.edges());
}

TEST_F(BinaryIoTest, RoundTripKeepsIsolatedVertices) {
  auto g = edgeshed::testing::MustBuild(10, {{0, 1}});
  const std::string path = TempPath("isolated.esg");
  ASSERT_TRUE(SaveBinaryGraph(g, path).ok());
  auto loaded = LoadBinaryGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumNodes(), 10u);  // unlike text edge lists
}

TEST_F(BinaryIoTest, RoundTripLargeRandomGraph) {
  Rng rng(9);
  Graph g = ErdosRenyi(2000, 8000, rng);
  const std::string path = TempPath("large.esg");
  ASSERT_TRUE(SaveBinaryGraph(g, path).ok());
  auto loaded = LoadBinaryGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->edges(), g.edges());
}

TEST_F(BinaryIoTest, EmptyGraphRoundTrip) {
  Graph g;
  const std::string path = TempPath("empty.esg");
  ASSERT_TRUE(SaveBinaryGraph(g, path).ok());
  auto loaded = LoadBinaryGraph(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->NumNodes(), 0u);
  EXPECT_EQ(loaded->NumEdges(), 0u);
}

TEST_F(BinaryIoTest, MissingFileIsIOError) {
  auto loaded = LoadBinaryGraph(TempPath("missing.esg"));
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIOError);
}

TEST_F(BinaryIoTest, WrongMagicRejected) {
  const std::string path = TempPath("bad_magic.esg");
  std::ofstream(path) << "definitely not a graph file, sorry";
  auto loaded = LoadBinaryGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BinaryIoTest, TruncatedFileRejected) {
  auto g = PaperExampleGraph();
  const std::string path = TempPath("trunc.esg");
  ASSERT_TRUE(SaveBinaryGraph(g, path).ok());
  // Chop off the last 6 bytes.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<long>(bytes.size() - 6));
  out.close();
  auto loaded = LoadBinaryGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BinaryIoTest, SaveToBadPathFails) {
  auto g = PaperExampleGraph();
  EXPECT_FALSE(SaveBinaryGraph(g, "/no_such_dir_xyz/g.esg").ok());
}

// ---------------------------------------------------------------------------
// Version-2 checksum footer

namespace {

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<long>(bytes.size()));
}

}  // namespace

TEST_F(BinaryIoTest, SavesVersionTwoMagic) {
  const std::string path = TempPath("v2_magic.esg");
  ASSERT_TRUE(SaveBinaryGraph(PaperExampleGraph(), path).ok());
  EXPECT_EQ(ReadAll(path).substr(0, 8), "EDGSHED2");
}

TEST_F(BinaryIoTest, AnyFlippedByteIsDataLoss) {
  // Flip every checksummed byte in turn (counts and edge section); each
  // corruption must be caught by the footer, not silently accepted. The
  // magic itself is outside the checksum and covered by WrongMagicRejected.
  auto g = edgeshed::testing::MustBuild(4, {{0, 1}, {1, 2}, {2, 3}});
  const std::string path = TempPath("bitrot.esg");
  ASSERT_TRUE(SaveBinaryGraph(g, path).ok());
  const std::string pristine = ReadAll(path);
  int data_loss = 0;
  for (size_t i = 8; i + 4 < pristine.size(); ++i) {
    SCOPED_TRACE(i);
    std::string corrupt = pristine;
    corrupt[i] = static_cast<char>(corrupt[i] ^ 0x01);
    WriteAll(path, corrupt);
    auto loaded = LoadBinaryGraph(path);
    ASSERT_FALSE(loaded.ok());
    // Flips that wreck structure first (a node count beyond NodeId range, an
    // edge count that outruns the file) fail as InvalidArgument before the
    // footer is ever reached; everything else is the checksum's catch.
    EXPECT_TRUE(loaded.status().code() == StatusCode::kDataLoss ||
                loaded.status().code() == StatusCode::kInvalidArgument)
        << loaded.status();
    if (loaded.status().code() == StatusCode::kDataLoss) ++data_loss;
  }
  EXPECT_GT(data_loss, 0);
}

TEST_F(BinaryIoTest, FlippedFooterByteIsDataLoss) {
  const std::string path = TempPath("bad_footer.esg");
  ASSERT_TRUE(SaveBinaryGraph(PaperExampleGraph(), path).ok());
  std::string bytes = ReadAll(path);
  bytes.back() = static_cast<char>(bytes.back() ^ 0xFF);
  WriteAll(path, bytes);
  auto loaded = LoadBinaryGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
}

TEST_F(BinaryIoTest, MissingFooterIsInvalidArgumentNotDataLoss) {
  const std::string path = TempPath("no_footer.esg");
  ASSERT_TRUE(SaveBinaryGraph(PaperExampleGraph(), path).ok());
  std::string bytes = ReadAll(path);
  WriteAll(path, bytes.substr(0, bytes.size() - 4));
  auto loaded = LoadBinaryGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(BinaryIoTest, LegacyVersionOneFilesStillLoad) {
  // A v1 file is a v2 file with the old magic and no footer. Build one by
  // hand so this keeps passing even when no writer emits v1 anymore.
  const std::string path = TempPath("legacy.esg");
  ASSERT_TRUE(SaveBinaryGraph(
                  edgeshed::testing::MustBuild(3, {{0, 1}, {1, 2}}), path)
                  .ok());
  std::string bytes = ReadAll(path);
  bytes = bytes.substr(0, bytes.size() - 4);  // drop footer
  bytes[7] = '1';                             // EDGSHED2 -> EDGSHED1
  WriteAll(path, bytes);
  auto loaded = LoadBinaryGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->NumNodes(), 3u);
  EXPECT_EQ(loaded->NumEdges(), 2u);
}

TEST_F(BinaryIoTest, CorruptLegacyFileIsNotChecksumChecked) {
  // Documenting the compatibility tradeoff: v1 has no footer, so a bit flip
  // in the edge section that still yields a structurally valid graph loads
  // without complaint. (This is exactly why v2 exists.)
  const std::string path = TempPath("legacy_corrupt.esg");
  ASSERT_TRUE(SaveBinaryGraph(
                  edgeshed::testing::MustBuild(300, {{0, 1}, {1, 2}}), path)
                  .ok());
  std::string bytes = ReadAll(path);
  bytes = bytes.substr(0, bytes.size() - 4);
  bytes[7] = '1';
  bytes[bytes.size() - 8] ^= 0x01;  // perturb edge {1,2}'s u within range
  WriteAll(path, bytes);
  auto loaded = LoadBinaryGraph(path);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
}

}  // namespace
}  // namespace edgeshed::graph
