#include "core/random_shedding.h"

#include <gtest/gtest.h>

#include <set>

#include "core/discrepancy.h"
#include "core/shedding.h"
#include "graph/generators/generators.h"
#include "testing/test_graphs.h"

namespace edgeshed::core {
namespace {

using ::edgeshed::testing::PaperExampleGraph;

TEST(RandomSheddingTest, KeepsTargetEdgeCount) {
  auto g = PaperExampleGraph();
  auto result = RandomShedding().Reduce(g, 0.4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->kept_edges.size(), 4u);
}

TEST(RandomSheddingTest, EdgesAreDistinctAndValid) {
  Rng rng(71);
  auto g = graph::ErdosRenyi(200, 600, rng);
  auto result = RandomShedding().Reduce(g, 0.5);
  ASSERT_TRUE(result.ok());
  std::set<graph::EdgeId> unique(result->kept_edges.begin(),
                                 result->kept_edges.end());
  EXPECT_EQ(unique.size(), 300u);
  for (graph::EdgeId e : result->kept_edges) EXPECT_LT(e, 600u);
}

TEST(RandomSheddingTest, DeterministicBySeed) {
  auto g = PaperExampleGraph();
  auto a = RandomShedding(5).Reduce(g, 0.5);
  auto b = RandomShedding(5).Reduce(g, 0.5);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->kept_edges, b->kept_edges);
  auto c = RandomShedding(6).Reduce(g, 0.5);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->kept_edges.size(), a->kept_edges.size());
}

TEST(RandomSheddingTest, RejectsInvalidP) {
  auto g = PaperExampleGraph();
  EXPECT_FALSE(RandomShedding().Reduce(g, 0.0).ok());
  EXPECT_FALSE(RandomShedding().Reduce(g, 1.0).ok());
}

TEST(RandomSheddingTest, DeltaIsConsistent) {
  auto g = PaperExampleGraph();
  auto result = RandomShedding().Reduce(g, 0.4);
  ASSERT_TRUE(result.ok());
  DegreeDiscrepancy d(g, 0.4);
  for (graph::EdgeId e : result->kept_edges) {
    d.AddEdge(g.edge(e).u, g.edge(e).v);
  }
  EXPECT_NEAR(result->total_delta, d.RecomputeTotalDelta(), 1e-9);
}

TEST(RandomSheddingTest, NameIsStable) {
  EXPECT_EQ(RandomShedding().name(), "random");
}

TEST(ValidatePreservationRatioTest, Boundaries) {
  EXPECT_TRUE(ValidatePreservationRatio(0.5).ok());
  EXPECT_TRUE(ValidatePreservationRatio(0.0001).ok());
  EXPECT_FALSE(ValidatePreservationRatio(0.0).ok());
  EXPECT_FALSE(ValidatePreservationRatio(1.0).ok());
  EXPECT_FALSE(ValidatePreservationRatio(-1.0).ok());
  EXPECT_FALSE(ValidatePreservationRatio(2.0).ok());
}

}  // namespace
}  // namespace edgeshed::core
